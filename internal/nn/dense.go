package nn

import (
	"fmt"
	"math"

	"repro/internal/prng"
	"repro/internal/tensor"
)

// denseLayer is a fully connected layer: y = xW + b, with W stored [in,out].
type denseLayer struct {
	in, out int
	w, b    []float64      // views into the model's flat parameter vector
	dw, db  []float64      // views into the model's flat gradient vector
	wView   *tensor.Tensor // [in,out] matrix view of w, fixed at Bind
	dwView  *tensor.Tensor // [in,out] matrix view of dw, fixed at Bind
	x       *tensor.Tensor // cached input for backward
	dx      *tensor.Tensor // scratch for input gradient
	y       *tensor.Tensor // scratch for output
}

// Dense appends a fully connected layer with the given output width.
func (b *Builder) Dense(out int) *Builder {
	if out <= 0 {
		b.fail(fmt.Errorf("nn: Dense width must be positive, got %d", out))
		return b
	}
	b.add(&denseLayer{out: out})
	return b
}

func (l *denseLayer) Name() string { return "dense" }

func (l *denseLayer) Resolve(in []int) ([]int, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("nn: dense layer needs flat input, got shape %v (insert Flatten)", in)
	}
	l.in = in[0]
	return []int{l.out}, nil
}

func (l *denseLayer) ParamCount() int { return l.in*l.out + l.out }

func (l *denseLayer) Bind(params, grads []float64, rng *prng.Rand) {
	l.w, l.b = params[:l.in*l.out], params[l.in*l.out:]
	l.dw, l.db = grads[:l.in*l.out], grads[l.in*l.out:]
	l.wView = tensor.FromSlice(l.w, l.in, l.out)
	l.dwView = tensor.FromSlice(l.dw, l.in, l.out)
	// He initialisation, appropriate for the ReLU networks used here.
	std := math.Sqrt(2.0 / float64(l.in))
	for i := range l.w {
		l.w[i] = rng.NormFloat64() * std
	}
	for i := range l.b {
		l.b[i] = 0
	}
}

func (l *denseLayer) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Dim(0)
	l.x = x
	if l.y == nil {
		l.y = tensor.New(n, l.out)
	} else if l.y.Dim(0) != n {
		l.y.SetDim0(n)
	}
	tensor.MatMulAddBias(l.y, x, l.wView, l.b)
	return l.y
}

func (l *denseLayer) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n := dy.Dim(0)
	// dW += x^T dy, accumulated straight into the model's gradient vector
	// so repeated Backward calls within one optimizer step add up.
	tensor.MatMulATBAdd(l.dwView, l.x, dy)
	// db += column sums of dy.
	for i := 0; i < n; i++ {
		row := dy.Data[i*l.out : (i+1)*l.out]
		for j, v := range row {
			l.db[j] += v
		}
	}
	// dx = dy W^T.
	if l.dx == nil {
		l.dx = tensor.New(n, l.in)
	} else if l.dx.Dim(0) != n {
		l.dx.SetDim0(n)
	}
	tensor.MatMulABT(l.dx, dy, l.wView)
	return l.dx
}

func (l *denseLayer) FwdFLOPs() float64 {
	// One MAC = 2 FLOPs, plus the bias add.
	return float64(2*l.in*l.out + l.out)
}
