package algos

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/tensor"
)

func testConfig(t *testing.T, algo core.Algorithm) core.Config {
	t.Helper()
	train, test, err := data.Generate(data.Spec{Kind: data.KindMNIST, Train: 480, Test: 150, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	parts, err := partition.Partition(partition.Dirichlet(0.5), train.Y, train.Classes, 6, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	return core.Config{
		Model:           nn.ModelSpec{Arch: nn.ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10},
		Train:           train,
		Test:            test,
		Parts:           parts,
		Rounds:          3,
		ClientsPerRound: 3,
		BatchSize:       20,
		LocalEpochs:     1,
		LR:              0.01,
		Momentum:        0.9,
		Algo:            algo,
		Seed:            1,
	}
}

func TestRegistryAllNames(t *testing.T) {
	for _, name := range Names() {
		a, err := New(name, Params{})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if a.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, a.Name())
		}
	}
	if _, err := New("bogus", Params{}); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestRegistryDefaults(t *testing.T) {
	a, _ := New("fedprox", Params{})
	if a.(*FedProx).Mu != 0.1 {
		t.Fatal("fedprox default mu")
	}
	m, _ := New("moon", Params{})
	if mm := m.(*MOON); mm.Mu != 1 || mm.Tau != 0.5 {
		t.Fatal("moon defaults")
	}
	d, _ := New("feddyn", Params{})
	if d.(*FedDyn).Alpha != 0.1 {
		t.Fatal("feddyn default alpha")
	}
	s, _ := New("slowmo", Params{})
	if sm := s.(*SlowMo); sm.Beta != 0.5 || sm.SlowLR != 1 {
		t.Fatal("slowmo defaults")
	}
	// Overrides stick.
	p, _ := New("fedprox", Params{Mu: 0.9})
	if p.(*FedProx).Mu != 0.9 {
		t.Fatal("fedprox override")
	}
}

// Every method must run end-to-end for a few rounds without diverging.
func TestAllAlgorithmsSmoke(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			algo, err := New(name, Params{})
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Run(testConfig(t, algo))
			if err != nil {
				t.Fatal(err)
			}
			if res.Rounds != 3 {
				t.Fatalf("ran %d rounds", res.Rounds)
			}
			for _, a := range res.Accuracy {
				if math.IsNaN(a) || a < 0 || a > 1 {
					t.Fatalf("bad accuracy %v", a)
				}
			}
			if res.TotalGFLOPs() <= 0 {
				t.Fatal("no FLOPs metered")
			}
		})
	}
}

func TestFedProxGradFormula(t *testing.T) {
	f := &FedProx{Mu: 0.5}
	cfg := testConfig(t, f)
	s, err := core.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clients()[0]
	n := c.NumParams()
	global := make([]float64, n)
	w := make([]float64, n)
	for i := range global {
		global[i] = 1
		w[i] = 3
	}
	f.BeginRound(c, 1, global)
	g := make([]float64, n)
	f.TransformGrad(c, 1, w, g)
	for i := range g {
		if math.Abs(g[i]-1.0) > 1e-12 { // 0.5*(3-1)
			t.Fatalf("g[%d]=%v want 1", i, g[i])
		}
	}
}

// MOON's analytic contrastive gradient must match finite differences of
// ContrastiveLoss.
func TestMOONContrastiveGradient(t *testing.T) {
	m := &MOON{Mu: 1.3, Tau: 0.5}
	rng := rand.New(rand.NewSource(5))
	n, d := 4, 7
	z := tensor.New(n, d)
	zg := tensor.New(n, d)
	zp := tensor.New(n, d)
	z.RandNormal(rng, 1)
	zg.RandNormal(rng, 1)
	zp.RandNormal(rng, 1)
	grad := tensor.New(n, d)
	scale := m.Mu / float64(n)
	for i := 0; i < n; i++ {
		contrastiveGrad(
			z.Data[i*d:(i+1)*d], zg.Data[i*d:(i+1)*d], zp.Data[i*d:(i+1)*d],
			m.Tau, scale, grad.Data[i*d:(i+1)*d])
	}
	const h = 1e-6
	for probe := 0; probe < 40; probe++ {
		i := rng.Intn(n * d)
		orig := z.Data[i]
		z.Data[i] = orig + h
		lp := m.ContrastiveLoss(z, zg, zp)
		z.Data[i] = orig - h
		lm := m.ContrastiveLoss(z, zg, zp)
		z.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-grad.Data[i]) > 1e-5*math.Max(1, math.Abs(num)) {
			t.Fatalf("coord %d: analytic %v numeric %v", i, grad.Data[i], num)
		}
	}
}

// When the previous model equals the global model (first participation),
// MOON's contrastive gradient is exactly zero.
func TestMOONFirstRoundZeroGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := 9
	z := make([]float64, d)
	a := make([]float64, d)
	for i := range z {
		z[i] = rng.NormFloat64()
		a[i] = rng.NormFloat64()
	}
	o := make([]float64, d)
	contrastiveGrad(z, a, a, 0.5, 1, o)
	for i, v := range o {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("o[%d]=%v, want 0 when z_glob == z_prev", i, v)
		}
	}
}

func TestMOONDegenerateRepresentation(t *testing.T) {
	d := 5
	o := make([]float64, d)
	contrastiveGrad(make([]float64, d), make([]float64, d), make([]float64, d), 0.5, 1, o)
	for _, v := range o {
		if v != 0 {
			t.Fatal("degenerate vectors must contribute nothing")
		}
	}
}

func TestMOONFeatureGradWiring(t *testing.T) {
	m, _ := New("moon", Params{})
	cfg := testConfig(t, m)
	s, err := core.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clients()[0]
	u := c.LocalTrain(1, s.Global())
	if !tensor.AllFinite(u.Params) {
		t.Fatal("MOON round produced non-finite params")
	}
	// Second participation uses a real historical model.
	u2 := c.LocalTrain(2, s.Global())
	if !tensor.AllFinite(u2.Params) {
		t.Fatal("MOON second round non-finite")
	}
}

// MOON must meter dramatically more FLOPs than FedProx (2 extra forward
// passes per batch) — the resource story of Table V.
func TestMOONCostsMoreThanFedProx(t *testing.T) {
	moonAlgo, _ := New("moon", Params{})
	rMoon, err := core.Run(testConfig(t, moonAlgo))
	if err != nil {
		t.Fatal(err)
	}
	proxAlgo, _ := New("fedprox", Params{})
	rProx, err := core.Run(testConfig(t, proxAlgo))
	if err != nil {
		t.Fatal(err)
	}
	if rMoon.TotalGFLOPs() < 1.4*rProx.TotalGFLOPs() {
		t.Fatalf("MOON GFLOPs %.3f not clearly above FedProx %.3f", rMoon.TotalGFLOPs(), rProx.TotalGFLOPs())
	}
}

func TestFedDynGradAndState(t *testing.T) {
	f := &FedDyn{Alpha: 0.2}
	cfg := testConfig(t, f)
	s, err := core.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clients()[0]
	n := c.NumParams()
	global := make([]float64, n)
	for i := range global {
		global[i] = 1
	}
	f.BeginRound(c, 1, global)
	w := make([]float64, n)
	for i := range w {
		w[i] = 2
	}
	g := make([]float64, n)
	f.TransformGrad(c, 1, w, g)
	// h_k = 0 initially: g = alpha*(w-global) = 0.2.
	for i := range g {
		if math.Abs(g[i]-0.2) > 1e-12 {
			t.Fatalf("g[%d]=%v want 0.2", i, g[i])
		}
	}
	// EndRound: h_k -= alpha*(w_k - global); with model params set to w.
	c.Model().SetParams(w)
	f.EndRound(c, 1)
	hk := c.StateVec("feddyn.h")
	for i := range hk {
		if math.Abs(hk[i]-(-0.2)) > 1e-12 {
			t.Fatalf("h[%d]=%v want -0.2", i, hk[i])
		}
	}
}

func TestFedDynAggregateFormula(t *testing.T) {
	f := &FedDyn{Alpha: 0.5}
	global := []float64{1, 1}
	updates := []core.Update{
		{Params: []float64{2, 0}, NumSamples: 10},
		{Params: []float64{4, 2}, NumSamples: 10},
	}
	next := f.Aggregate(1, global, updates)
	// mean = (3,1); h = 0 - 0.5*((3,1)-(1,1)) = (-1,0);
	// next = mean - h/alpha = (3,1) - (-2,0) = (5,1).
	if math.Abs(next[0]-5) > 1e-12 || math.Abs(next[1]-1) > 1e-12 {
		t.Fatalf("next=%v", next)
	}
}

func TestSlowMoBetaZeroIsFedAvg(t *testing.T) {
	s := &SlowMo{Beta: 0, SlowLR: 1}
	global := []float64{0, 0}
	updates := []core.Update{
		{Params: []float64{1, 1}, NumSamples: 30},
		{Params: []float64{4, 0}, NumSamples: 10},
	}
	next := s.Aggregate(1, global, updates)
	// Weighted avg: (30*1+10*4)/40 = 1.75; (30*1+10*0)/40 = 0.75.
	if math.Abs(next[0]-1.75) > 1e-12 || math.Abs(next[1]-0.75) > 1e-12 {
		t.Fatalf("next=%v", next)
	}
}

func TestSlowMoMomentumAccumulates(t *testing.T) {
	s := &SlowMo{Beta: 0.5, SlowLR: 1}
	global := []float64{1}
	updates := []core.Update{{Params: []float64{0}, NumSamples: 1}}
	// Round 1: d=1-0=1; m=1; next = 1-1 = 0.
	n1 := s.Aggregate(1, global, updates)
	if math.Abs(n1[0]-0) > 1e-12 {
		t.Fatalf("round1 %v", n1)
	}
	// Round 2 from global=0, avg=0: d=0; m=0.5; next = 0-0.5 = -0.5
	// (momentum keeps pushing past the average).
	n2 := s.Aggregate(2, []float64{0}, updates)
	if math.Abs(n2[0]-(-0.5)) > 1e-12 {
		t.Fatalf("round2 %v", n2)
	}
}

func TestSCAFFOLDIntegration(t *testing.T) {
	algo, _ := New("scaffold", Params{})
	cfg := testConfig(t, algo)
	cfg.Rounds = 4
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 4 {
		t.Fatal("rounds")
	}
	// Extra communication must be metered (factor 2 on top of base 2).
	base := testConfig(t, &FedAvg{})
	base.Rounds = 4
	rBase, err := core.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommBytesByRound[3] != 2*rBase.CommBytesByRound[3] {
		t.Fatalf("scaffold comm %d want 2x fedavg %d", res.CommBytesByRound[3], rBase.CommBytesByRound[3])
	}
}

func TestFedDANEPreRoundAveragesGradients(t *testing.T) {
	f := &FedDANE{Mu: 0.1}
	cfg := testConfig(t, f)
	s, err := core.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clients := s.Clients()[:2]
	f.PreRound(1, clients, s.Global())
	g0 := clients[0].StateVec("feddane.localgrad")
	g1 := clients[1].StateVec("feddane.localgrad")
	want := make([]float64, len(g0))
	tensor.Axpy(0.5, g0, want)
	tensor.Axpy(0.5, g1, want)
	if d := tensor.MaxAbsDiff(f.avgGrad, want); d > 1e-12 {
		t.Fatalf("avgGrad off by %v", d)
	}
	if tensor.Norm2(f.avgGrad) == 0 {
		t.Fatal("zero average gradient — FullGrad not wired")
	}
}

func TestMimeLiteTransformGrad(t *testing.T) {
	m := &MimeLite{Beta: 0.9}
	m.s = []float64{1, 1}
	m.pending = []float64{0, 0}
	cfg := testConfig(t, m)
	srv, err := core.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := srv.Clients()[0]
	g := []float64{2, 0}
	// Only first 2 coords matter for the check; build full-size vectors.
	full := make([]float64, c.NumParams())
	copy(full, g)
	m.s = make([]float64, c.NumParams())
	m.s[0], m.s[1] = 1, 1
	w := make([]float64, c.NumParams())
	m.TransformGrad(c, 1, w, full)
	// g' = 0.1*g + 0.9*s -> (0.2+0.9, 0+0.9).
	if math.Abs(full[0]-1.1) > 1e-12 || math.Abs(full[1]-0.9) > 1e-12 {
		t.Fatalf("g=%v", full[:2])
	}
}

// Momentum-state methods must also advance their server state through
// Aggregate.
func TestMimeLiteAggregateAdvancesState(t *testing.T) {
	m := &MimeLite{Beta: 0.5}
	m.s = []float64{2}
	m.pending = []float64{4}
	next := m.Aggregate(1, []float64{0}, []core.Update{{Params: []float64{6}, NumSamples: 3}})
	if math.Abs(next[0]-6) > 1e-12 {
		t.Fatalf("aggregate avg %v", next)
	}
	if math.Abs(m.s[0]-3) > 1e-12 { // 0.5*4 + 0.5*2
		t.Fatalf("s=%v want 3", m.s)
	}
}
