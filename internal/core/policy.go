package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// AggregationPolicy owns the server's merge decisions: *when* buffered
// arrivals are aggregated and *how* each update is weighted and applied.
// The runtimes (synchronous, barrier, buffered async) stay mechanism —
// dispatching clients, advancing the clock, metering — while the policy
// supplies the algorithm-family decisions that the async-FL literature
// varies: FedAvg's data-size average, FedBuff's staleness-discounted
// buffers, FedAsync's single-arrival mixing, importance-weighted buffers,
// and server learning-rate schedules (compose any policy with a schedule
// via WithServerLR).
//
// The synchronous and barrier runtimes merge exactly once per round, so
// they consult only Weight and MergeRate; the buffered async runtime also
// asks ReadyToMerge after every arrival.
//
// An Algorithm's Aggregator override still wins over any policy (it is a
// method-defined aggregation rule, e.g. SlowMo's server momentum), and an
// Algorithm's StalenessWeighter overrides the staleness discount of the
// built-in discount-based policies.
type AggregationPolicy interface {
	// Name identifies the policy ("fedavg", "fedbuff", ...).
	Name() string
	// ReadyToMerge reports whether the buffered async runtime should
	// aggregate now, given the number of buffered arrivals. Called after
	// every arrival; must eventually return true as buffered grows.
	ReadyToMerge(buffered int) bool
	// Weight maps one buffered update (Staleness filled) to its
	// unnormalized aggregation weight. Weights are normalized to sum to 1
	// before merging; an all-zero buffer merges as a no-op.
	Weight(u Update) float64
	// MergeRate returns the server learning rate eta applied to
	// aggregation t: global' = global + eta*(weightedAvg - global).
	// eta = 1 replaces the global model with the weighted average (the
	// classic FedAvg arithmetic, taken bit-for-bit on the legacy path).
	MergeRate(t int, updates []Update) float64
}

// bufferSizer is implemented by built-in policies whose merge threshold
// can be defaulted from RunSpec.BufferSize when left zero.
type bufferSizer interface{ defaultBuffer(k int) }

// discounter is implemented by built-in policies whose staleness discount
// participates in the runtime's resolution chain: an Algorithm's
// StalenessWeighter force-overrides, otherwise RunSpec.Discount (then
// PolyDiscount(0.5)) fills a nil Discount field.
type discounter interface {
	defaultDiscount(d func(int) float64, force bool)
}

// FedAvgPolicy is the paper's Eq. 2: data-size weights, no staleness
// discount, full replacement on merge. It is the synchronous runtime's
// default. Under the buffered async runtime it merges every K arrivals
// (FedBuff's cadence without the discount).
type FedAvgPolicy struct {
	// K is the buffered-mode merge threshold (0 = RunSpec.BufferSize).
	K int
}

func (p *FedAvgPolicy) Name() string                    { return "fedavg" }
func (p *FedAvgPolicy) ReadyToMerge(buffered int) bool  { return buffered >= p.K }
func (p *FedAvgPolicy) Weight(u Update) float64         { return float64(u.NumSamples) }
func (p *FedAvgPolicy) MergeRate(int, []Update) float64 { return 1 }
func (p *FedAvgPolicy) defaultBuffer(k int) {
	if p.K <= 0 {
		p.K = k
	}
}

// FedBuffPolicy is buffered asynchronous aggregation with staleness
// discounting: merge every K arrivals, weight each update by its data
// size times Discount(staleness). It is the async runtime's default and,
// with the zero-staleness discount of exactly 1, reproduces FedAvgPolicy
// bit-for-bit in the barrier mode.
type FedBuffPolicy struct {
	// K is the number of arrivals per aggregation (0 = RunSpec.BufferSize).
	K int
	// Discount maps staleness to a weight multiplier (nil = the runtime's
	// resolution chain: StalenessWeighter, RunSpec.Discount,
	// PolyDiscount(0.5)). Must return 1 at staleness 0 for the barrier
	// equivalence mode to hold.
	Discount func(staleness int) float64
}

func (p *FedBuffPolicy) Name() string                   { return "fedbuff" }
func (p *FedBuffPolicy) ReadyToMerge(buffered int) bool { return buffered >= p.K }
func (p *FedBuffPolicy) Weight(u Update) float64 {
	return float64(u.NumSamples) * p.Discount(u.Staleness)
}
func (p *FedBuffPolicy) MergeRate(int, []Update) float64 { return 1 }
func (p *FedBuffPolicy) defaultBuffer(k int) {
	if p.K <= 0 {
		p.K = k
	}
}
func (p *FedBuffPolicy) defaultDiscount(d func(int) float64, force bool) {
	if force || p.Discount == nil {
		p.Discount = d
	}
}

// FedAsyncPolicy merges every single arrival FedAsync-style: the global
// model moves toward the arriving model by a mixing rate
// Alpha * Discount(staleness). The buffer always holds exactly one
// update, so the weight is immaterial (it normalizes to 1); all of the
// staleness handling lives in the merge rate.
type FedAsyncPolicy struct {
	// Alpha is the base mixing rate (0 = the customary 0.6).
	Alpha float64
	// Discount dampens the mixing rate by staleness (nil = resolution
	// chain, see FedBuffPolicy.Discount).
	Discount func(staleness int) float64
}

func (p *FedAsyncPolicy) Name() string                   { return "fedasync" }
func (p *FedAsyncPolicy) ReadyToMerge(buffered int) bool { return buffered >= 1 }
func (p *FedAsyncPolicy) Weight(Update) float64          { return 1 }
func (p *FedAsyncPolicy) MergeRate(t int, updates []Update) float64 {
	alpha := p.Alpha
	if alpha == 0 {
		alpha = 0.6
	}
	// Single arrival in practice; average the discount if a caller merges
	// a larger buffer through this policy.
	var d float64
	for _, u := range updates {
		d += p.Discount(u.Staleness)
	}
	if len(updates) > 0 {
		d /= float64(len(updates))
	}
	return alpha * d
}
func (p *FedAsyncPolicy) defaultDiscount(d func(int) float64, force bool) {
	if force || p.Discount == nil {
		p.Discount = d
	}
}

// ImportancePolicy is a FedBuff-style buffer whose weights also scale
// with each update's training loss: weight = |D_k| * Discount(staleness)
// * (Beta + trainLoss). Clients whose local data the global model fits
// worst carry the most new information, so their updates are amplified;
// Beta smooths the weighting so well-fit clients are dampened, never
// dropped. Beta = 0 weights purely by loss.
type ImportancePolicy struct {
	// K is the number of arrivals per aggregation (0 = RunSpec.BufferSize).
	K int
	// Beta is the loss-smoothing constant (0 keeps pure loss weighting;
	// the parser defaults it to 0.1).
	Beta float64
	// Discount is the staleness discount (nil = resolution chain).
	Discount func(staleness int) float64
}

func (p *ImportancePolicy) Name() string                   { return "importance" }
func (p *ImportancePolicy) ReadyToMerge(buffered int) bool { return buffered >= p.K }
func (p *ImportancePolicy) Weight(u Update) float64 {
	return float64(u.NumSamples) * p.Discount(u.Staleness) * (p.Beta + u.TrainLoss)
}
func (p *ImportancePolicy) MergeRate(int, []Update) float64 { return 1 }
func (p *ImportancePolicy) defaultBuffer(k int) {
	if p.K <= 0 {
		p.K = k
	}
}
func (p *ImportancePolicy) defaultDiscount(d func(int) float64, force bool) {
	if force || p.Discount == nil {
		p.Discount = d
	}
}

// MaxStalenessPolicy is a hard staleness admission cutoff decorating any
// policy (promoted from the README's custom-policy example, where it
// lived as ~20 user lines): an update whose Staleness exceeds MaxStale
// weighs 0 at aggregation — it contributes nothing, and a buffer of
// nothing but cutoff updates merges as a no-op (the weighted-average
// guard, not a NaN). The pooled upload buffer is recycled either way.
// It is the admission control a churning fleet needs: a client that
// drops mid-flight and rejoins much later arrives with an update many
// aggregations stale, which a polynomial discount only dampens.
type MaxStalenessPolicy struct {
	// AggregationPolicy is the decorated policy (nil = the runtime's
	// default policy at Validate time).
	AggregationPolicy
	// MaxStale is the largest admissible staleness (inclusive).
	MaxStale int
}

// WithMaxStaleness wraps a policy (nil = the runtime's default policy)
// with a hard staleness cutoff.
func WithMaxStaleness(p AggregationPolicy, maxStale int) AggregationPolicy {
	return &MaxStalenessPolicy{AggregationPolicy: p, MaxStale: maxStale}
}

func (p *MaxStalenessPolicy) Name() string {
	if p.AggregationPolicy == nil {
		return "+maxstale"
	}
	return p.AggregationPolicy.Name() + "+maxstale"
}

func (p *MaxStalenessPolicy) Weight(u Update) float64 {
	if u.Staleness > p.MaxStale {
		return 0
	}
	return p.AggregationPolicy.Weight(u)
}

func (p *MaxStalenessPolicy) defaultBuffer(k int) {
	if bs, ok := p.AggregationPolicy.(bufferSizer); ok {
		bs.defaultBuffer(k)
	}
}

func (p *MaxStalenessPolicy) defaultDiscount(d func(int) float64, force bool) {
	if dc, ok := p.AggregationPolicy.(discounter); ok {
		dc.defaultDiscount(d, force)
	}
}

// ScheduledLR decorates a policy with a server learning-rate schedule:
// the merged delta is scaled by Schedule(t) on aggregation t, on top of
// whatever rate the inner policy reports. A nil inner policy is filled
// with the runtime's default policy at Validate time, so a schedule can
// be configured on its own.
type ScheduledLR struct {
	AggregationPolicy
	// Schedule maps the aggregation index t (1-based) to a rate
	// multiplier.
	Schedule func(t int) float64
}

func (p *ScheduledLR) Name() string {
	if p.AggregationPolicy == nil {
		return "+lr"
	}
	return p.AggregationPolicy.Name() + "+lr"
}

func (p *ScheduledLR) MergeRate(t int, updates []Update) float64 {
	return p.AggregationPolicy.MergeRate(t, updates) * p.Schedule(t)
}

func (p *ScheduledLR) defaultBuffer(k int) {
	if bs, ok := p.AggregationPolicy.(bufferSizer); ok {
		bs.defaultBuffer(k)
	}
}

func (p *ScheduledLR) defaultDiscount(d func(int) float64, force bool) {
	if dc, ok := p.AggregationPolicy.(discounter); ok {
		dc.defaultDiscount(d, force)
	}
}

// WithServerLR wraps a policy (nil = the runtime's default policy) with a
// server learning-rate schedule.
func WithServerLR(p AggregationPolicy, schedule func(t int) float64) AggregationPolicy {
	return &ScheduledLR{AggregationPolicy: p, Schedule: schedule}
}

// ParseLRSchedule parses a CLI server learning-rate schedule spec:
//
//	const:ETA          fixed rate ETA every merge
//	invsqrt:ETA0       ETA0 / sqrt(t)
//	step:ETA0,G,E      ETA0 * G^floor((t-1)/E)  (decay by G every E merges)
func ParseLRSchedule(spec string) (func(t int) float64, error) {
	name, args, err := parseSpec(spec, "server-lr")
	if err != nil {
		return nil, err
	}
	want := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("core: server-lr %q wants %d args, got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "const":
		if err := want(1); err != nil {
			return nil, err
		}
		if args[0] < 0 {
			return nil, fmt.Errorf("core: negative server lr %g", args[0])
		}
		eta := args[0]
		return func(int) float64 { return eta }, nil
	case "invsqrt":
		if err := want(1); err != nil {
			return nil, err
		}
		if args[0] <= 0 {
			return nil, fmt.Errorf("core: invsqrt server lr %g must be positive", args[0])
		}
		eta0 := args[0]
		return func(t int) float64 {
			if t < 1 {
				t = 1
			}
			return eta0 / math.Sqrt(float64(t))
		}, nil
	case "step":
		if err := want(3); err != nil {
			return nil, err
		}
		if args[0] <= 0 || args[1] <= 0 || args[1] > 1 || args[2] < 1 {
			return nil, fmt.Errorf("core: step server lr wants eta0 > 0, 0 < gamma <= 1, every >= 1, got %v", args)
		}
		eta0, gamma, every := args[0], args[1], int(args[2])
		return func(t int) float64 {
			if t < 1 {
				t = 1
			}
			return eta0 * math.Pow(gamma, float64((t-1)/every))
		}, nil
	}
	return nil, fmt.Errorf("core: unknown server-lr schedule %q (const|invsqrt|step)", name)
}

// ParsePolicy parses a CLI aggregation-policy spec of the form "name" or
// "name:arg1[,arg2]":
//
//	fedavg               data-size weights, no discount (sync default)
//	fedbuff[:EXP]        staleness-discounted buffer, PolyDiscount(EXP)
//	                     (no EXP: the runtime's discount chain applies)
//	fedasync[:ALPHA[,EXP]]  single-arrival mixing at rate ALPHA (0.6)
//	importance[:BETA[,EXP]] loss-weighted buffer, smoothing BETA (0.1)
//	maxstale:MAX         hard staleness cutoff (weight 0 past MAX) on
//	                     the runtime's default policy
//	median               coordinate-wise median of the admitted buffer
//	trimmedmean:F        coordinate-wise mean after trimming the F
//	                     fraction from each tail (0 <= F < 0.5)
//	krum:F               multi-Krum selector assuming a Byzantine
//	                     fraction F of the buffer (0 <= F < 0.5)
//	clip:C               norm-clip guard (updates rescaled within L2
//	                     distance C of the global model) on the
//	                     runtime's default policy
//
// A trailing "+maxstale:MAX" or "+clip:C" composes onto any other spec
// (e.g. "fedbuff:0.5+maxstale:8", "trimmedmean:0.25+clip:5"); suffixes
// stack rightmost-first. Merge thresholds (K) default from
// RunSpec.BufferSize at Validate time. Compose a server learning-rate
// schedule with WithServerLR / ParseLRSchedule.
func ParsePolicy(spec string) (AggregationPolicy, error) {
	if i := strings.LastIndex(spec, "+"); i >= 0 {
		base, suffix := spec[:i], spec[i+1:]
		sufName, sufArg, _ := strings.Cut(suffix, ":")
		var inner AggregationPolicy
		var err error
		if base != "" {
			inner, err = ParsePolicy(base)
			if err != nil {
				return nil, err
			}
		}
		switch sufName {
		case "maxstale":
			max, err := strconv.Atoi(strings.TrimSpace(sufArg))
			if err != nil || max < 0 {
				return nil, fmt.Errorf("core: maxstale cutoff %q must be a nonnegative integer", sufArg)
			}
			return WithMaxStaleness(inner, max), nil
		case "clip":
			c, err := strconv.ParseFloat(strings.TrimSpace(sufArg), 64)
			if err != nil || c <= 0 || math.IsInf(c, 0) {
				return nil, fmt.Errorf("core: clip bound %q must be a positive number", sufArg)
			}
			return WithNormClip(inner, c), nil
		}
		return nil, fmt.Errorf("core: unknown policy suffix %q (maxstale|clip)", sufName)
	}
	name, args, err := parseSpec(spec, "policy")
	if err != nil {
		return nil, err
	}
	atMost := func(n int) error {
		if len(args) > n {
			return fmt.Errorf("core: policy %q wants at most %d args, got %d", name, n, len(args))
		}
		return nil
	}
	// optDiscount maps an optional trailing exponent arg to a discount
	// (nil = defer to the runtime's resolution chain).
	optDiscount := func(i int) (func(int) float64, error) {
		if len(args) <= i {
			return nil, nil
		}
		if args[i] < 0 {
			return nil, fmt.Errorf("core: policy %q discount exponent %g must be >= 0", name, args[i])
		}
		return PolyDiscount(args[i]), nil
	}
	// trimFrac validates a tail-trim / Byzantine fraction argument.
	trimFrac := func() (float64, error) {
		if len(args) != 1 || args[0] < 0 || args[0] >= 0.5 {
			return 0, fmt.Errorf("core: policy %q wants one fraction in [0, 0.5), got %v", name, args)
		}
		return args[0], nil
	}
	switch name {
	case "maxstale":
		if len(args) != 1 || args[0] < 0 || args[0] != math.Trunc(args[0]) {
			return nil, fmt.Errorf("core: policy maxstale wants one nonnegative integer cutoff, got %v", args)
		}
		return WithMaxStaleness(nil, int(args[0])), nil
	case "clip":
		if len(args) != 1 || args[0] <= 0 || math.IsInf(args[0], 0) {
			return nil, fmt.Errorf("core: policy clip wants one positive norm bound, got %v", args)
		}
		return WithNormClip(nil, args[0]), nil
	case "median":
		if err := atMost(0); err != nil {
			return nil, err
		}
		return &MedianPolicy{}, nil
	case "trimmedmean":
		f, err := trimFrac()
		if err != nil {
			return nil, err
		}
		return &TrimmedMeanPolicy{Frac: f}, nil
	case "krum":
		f, err := trimFrac()
		if err != nil {
			return nil, err
		}
		return &KrumPolicy{Frac: f}, nil
	case "fedavg":
		if err := atMost(0); err != nil {
			return nil, err
		}
		return &FedAvgPolicy{}, nil
	case "fedbuff":
		if err := atMost(1); err != nil {
			return nil, err
		}
		d, err := optDiscount(0)
		if err != nil {
			return nil, err
		}
		return &FedBuffPolicy{Discount: d}, nil
	case "fedasync":
		if err := atMost(2); err != nil {
			return nil, err
		}
		alpha := 0.0
		if len(args) > 0 {
			alpha = args[0]
			if alpha <= 0 || alpha > 1 {
				return nil, fmt.Errorf("core: fedasync alpha %g outside (0,1]", alpha)
			}
		}
		d, err := optDiscount(1)
		if err != nil {
			return nil, err
		}
		return &FedAsyncPolicy{Alpha: alpha, Discount: d}, nil
	case "importance":
		if err := atMost(2); err != nil {
			return nil, err
		}
		beta := 0.1
		if len(args) > 0 {
			beta = args[0]
			if beta < 0 {
				return nil, fmt.Errorf("core: importance beta %g must be >= 0", beta)
			}
		}
		d, err := optDiscount(1)
		if err != nil {
			return nil, err
		}
		return &ImportancePolicy{Beta: beta, Discount: d}, nil
	}
	return nil, fmt.Errorf("core: unknown aggregation policy %q (fedavg|fedbuff|fedasync|importance|maxstale|median|trimmedmean|krum|clip)", name)
}
