package core

import "fmt"

// Runtime selects how a RunSpec executes.
type Runtime string

const (
	// RuntimeSync is the paper's lock-step loop (Server.Run): select K
	// clients, wait for all of them, aggregate. No simulated clock.
	RuntimeSync Runtime = "sync"
	// RuntimeAsync is the event-driven buffered runtime: Concurrency
	// clients are always in flight under the latency model, and the
	// aggregation policy decides when arrivals merge.
	RuntimeAsync Runtime = "async"
	// RuntimeBarrier is lock-step semantics priced under the latency
	// model: each round waits for its slowest client. With ZeroLatency it
	// reproduces RuntimeSync bit-for-bit on the same seed.
	RuntimeBarrier Runtime = "barrier"
)

// ParseRuntime resolves a CLI runtime name ("" = sync).
func ParseRuntime(name string) (Runtime, error) {
	switch Runtime(name) {
	case "", RuntimeSync:
		return RuntimeSync, nil
	case RuntimeAsync:
		return RuntimeAsync, nil
	case RuntimeBarrier:
		return RuntimeBarrier, nil
	}
	return "", fmt.Errorf("core: unknown runtime %q (sync|async|barrier)", name)
}

// RunSpec is the single description of a federated run: the base Config
// plus the runtime selector, the asynchronous knobs, and the aggregation
// policy. Start is its entrypoint; Run and RunAsync are thin wrappers
// over it for the legacy call sites.
type RunSpec struct {
	Config
	// Runtime picks the execution mode ("" = RuntimeSync).
	Runtime Runtime
	// Concurrency is the number of clients training simultaneously in
	// simulated time (RuntimeAsync; FedBuff's M). 0 = ClientsPerRound.
	// Real parallelism is bounded separately by Config.Shards.
	Concurrency int
	// BufferSize seeds the default merge threshold of buffer-based
	// policies (FedBuff's K). 0 = ClientsPerRound. A policy with an
	// explicit K wins.
	BufferSize int
	// Latency models each dispatch's virtual duration (RuntimeAsync and
	// RuntimeBarrier). nil = ZeroLatency. Must be nil for RuntimeSync,
	// which has no simulated clock — use RuntimeBarrier to price the
	// lock-step loop under a latency model.
	Latency LatencyModel
	// Discount is the staleness discount for discount-based policies that
	// do not carry their own. Resolution order: the Algorithm's
	// StalenessWeighter override, then this field, then PolyDiscount(0.5).
	Discount func(staleness int) float64
	// Policy decides when buffered arrivals merge and how updates are
	// weighted. nil selects the runtime default: FedAvgPolicy for
	// RuntimeSync, FedBuffPolicy otherwise. An Algorithm's Aggregator
	// override still wins over any policy.
	Policy AggregationPolicy
	// Devices samples one compute-speed multiplier per client (device.go)
	// for the async and barrier runtimes. With a fleet configured, each
	// dispatch's virtual duration derives from the round's *metered*
	// FLOPs — flops / (FlopRate * speed) — so Latency must be left nil
	// (or ZeroLatency): compute heterogeneity replaces the independent
	// latency draw. nil = homogeneous fleet, Latency prices dispatches.
	Devices DeviceDistribution
	// FlopRate is the simulated throughput, in FLOPs per virtual second,
	// of a speed-1.0 device (Devices runs only). 0 = 1e9 (1 GFLOP/s, an
	// edge-class device).
	FlopRate float64
	// Network samples one link profile (uplink/downlink bandwidth, RTT)
	// per client (network.go) for the async and barrier runtimes. With a
	// fleet configured, each dispatch's duration gains the transfer time
	// of the bytes its transport actually moved — RTT + bytes*8/bandwidth
	// per direction — on top of its compute (Devices) or latency-model
	// duration. Composes freely with both. nil = free communication.
	Network NetDistribution
	// AdaptiveLocalSteps makes each client's local step budget scale
	// with its device speed (deadline-style partial work): a 0.25x
	// client runs a quarter of the round's mini-batch steps, never fewer
	// than one, never more than the full count. Requires Devices. The
	// budget reaches algorithms as the ScalarDeviceSteps client scalar.
	AdaptiveLocalSteps bool
	// Churn is the fleet's availability process (per-client on/off
	// Markov churn plus mass-dropout events) for the buffered async
	// runtime. Offline clients are never dispatched; clients that drop
	// mid-flight arrive late (after rejoin) or, if permanently dropped,
	// lose the update (Result.DroppedUpdates). nil = always available.
	Churn *ChurnModel
	// Faults is the fleet's adversarial composition (adversary.go): a
	// Byzantine fraction with a behaviour mode plus a crash-faulty
	// fraction, assigned per client from the dedicated adversary seed
	// stream and applied at upload time in every runtime. Faulty uploads
	// still pay FLOPs and wire bytes, and flow through transports,
	// staleness, and churn like honest ones; the merge path's screen and
	// any robust policy are the defense. nil = every client honest.
	Faults *FaultModel
}

// Validate checks the spec and fills every default in one place: the base
// Config's (via Config.Validate), the async knobs', and the policy's
// (merge threshold from BufferSize, staleness discount from the
// resolution chain). It is idempotent; Start calls it on its own copy, so
// validate explicitly when the caller wants to observe resolved defaults.
func (sp *RunSpec) Validate() error {
	if sp.Runtime == "" {
		sp.Runtime = RuntimeSync
	}
	switch sp.Runtime {
	case RuntimeSync, RuntimeAsync, RuntimeBarrier:
	default:
		return fmt.Errorf("core: unknown runtime %q (sync|async|barrier)", sp.Runtime)
	}
	if err := sp.Config.Validate(); err != nil {
		return err
	}
	if sp.Runtime == RuntimeSync {
		if sp.Latency != nil {
			if _, isZero := sp.Latency.(ZeroLatency); !isZero {
				return fmt.Errorf("core: the sync runtime has no simulated clock; use the barrier runtime to price lock-step rounds under a latency model")
			}
		}
		if sp.Devices != nil {
			return fmt.Errorf("core: the sync runtime has no simulated clock; device profiles need the async or barrier runtime")
		}
		if sp.Network != nil {
			return fmt.Errorf("core: the sync runtime has no simulated clock; network profiles need the async or barrier runtime")
		}
		if sp.BufferSize == 0 {
			sp.BufferSize = sp.ClientsPerRound
		}
	} else {
		if sp.Concurrency == 0 {
			sp.Concurrency = sp.ClientsPerRound
		}
		if sp.Concurrency < 1 || sp.Concurrency > len(sp.Parts) {
			return fmt.Errorf("core: async concurrency %d outside [1,%d]", sp.Concurrency, len(sp.Parts))
		}
		if sp.BufferSize == 0 {
			sp.BufferSize = sp.ClientsPerRound
		}
		if sp.BufferSize < 1 {
			return fmt.Errorf("core: async buffer size %d", sp.BufferSize)
		}
		if sp.Devices != nil {
			if sp.Latency != nil {
				if _, isZero := sp.Latency.(ZeroLatency); !isZero {
					return fmt.Errorf("core: device profiles derive each dispatch's latency from its metered FLOPs; drop the %s latency model", sp.Latency)
				}
			}
			if sp.FlopRate < 0 {
				return fmt.Errorf("core: device flop rate %g must be positive", sp.FlopRate)
			}
			if sp.FlopRate == 0 {
				sp.FlopRate = 1e9
			}
		}
		if sp.Latency == nil {
			sp.Latency = ZeroLatency{}
		}
	}
	if sp.Devices == nil {
		if sp.AdaptiveLocalSteps {
			return fmt.Errorf("core: adaptive local steps scale with device speed; configure a device distribution")
		}
		if sp.FlopRate != 0 {
			return fmt.Errorf("core: FlopRate prices device-profile dispatches; configure a device distribution")
		}
	}
	if sp.Churn != nil {
		if sp.Runtime != RuntimeAsync {
			return fmt.Errorf("core: client churn needs the buffered async runtime (the lock-step loops have no dropout semantics)")
		}
		if err := sp.Churn.Validate(); err != nil {
			return err
		}
	}
	if sp.Faults != nil {
		if err := sp.Faults.Validate(); err != nil {
			return err
		}
		if _, ok := sp.Algo.(Aggregator); ok {
			// An Aggregator override bypasses the weighted-merge funnel and
			// with it the non-finite screen — a nan/crash fault would reach
			// the global model unchecked.
			return fmt.Errorf("core: %s overrides server aggregation and bypasses the fault screen; fault injection needs a policy-merged method", sp.Algo.Name())
		}
	}
	if sp.Runtime == RuntimeAsync {
		// The algos package contract makes PreRound and Aggregate
		// single-threaded calls with no client phase in flight. Buffered
		// mode aggregates while other clients are mid-training, so
		// methods with server-side struct state (SCAFFOLD, SlowMo,
		// FedDyn, FedNova, FedDANE, MimeLite) would race and see a bogus
		// "selected" set. The barrier runtime joins every client first
		// and so remains safe for them.
		if _, ok := sp.Algo.(PreRounder); ok {
			return fmt.Errorf("core: %s needs a pre-round phase; the buffered async runtime cannot run it (use the barrier runtime or a client-side method)", sp.Algo.Name())
		}
		if _, ok := sp.Algo.(Aggregator); ok {
			return fmt.Errorf("core: %s overrides server aggregation; the buffered async runtime cannot run it (use the barrier runtime or a client-side method)", sp.Algo.Name())
		}
	}
	return sp.resolvePolicy()
}

// clonedForRun returns a copy of a built-in policy so resolvePolicy's
// default-filling never mutates the caller's instance — a RunSpec has
// copy semantics, and the same policy value must be reusable across
// Starts (a stale resolved K or discount from an earlier run would
// otherwise leak into the next). Custom policies pass through untouched:
// the defaulting interfaces are unexported, so the runtime never writes
// to them.
func clonedForRun(p AggregationPolicy) AggregationPolicy {
	switch p := p.(type) {
	case nil:
		return nil
	case *FedAvgPolicy:
		cp := *p
		return &cp
	case *FedBuffPolicy:
		cp := *p
		return &cp
	case *FedAsyncPolicy:
		cp := *p
		return &cp
	case *ImportancePolicy:
		cp := *p
		return &cp
	case *MedianPolicy:
		cp := *p
		return &cp
	case *TrimmedMeanPolicy:
		cp := *p
		return &cp
	case *KrumPolicy:
		cp := *p
		return &cp
	case *NormClipPolicy:
		cp := *p
		cp.AggregationPolicy = clonedForRun(cp.AggregationPolicy)
		return &cp
	case *MaxStalenessPolicy:
		cp := *p
		cp.AggregationPolicy = clonedForRun(cp.AggregationPolicy)
		return &cp
	case *ScheduledLR:
		cp := *p
		cp.AggregationPolicy = clonedForRun(cp.AggregationPolicy)
		return &cp
	}
	return p
}

// resolvePolicy fills the default policy for the runtime and pushes the
// spec-level defaults (merge threshold, staleness discount) into built-in
// policies that accept them. It operates on a private copy of built-in
// policies (see clonedForRun); the resolved policy is observable as
// sp.Policy after Validate.
func (sp *RunSpec) resolvePolicy() error {
	defaultPolicy := func() AggregationPolicy {
		if sp.Runtime == RuntimeSync {
			return &FedAvgPolicy{}
		}
		return &FedBuffPolicy{}
	}
	// fillInner pushes the runtime default into decorator policies
	// (ScheduledLR, MaxStalenessPolicy) whose wrapped policy was left
	// nil, at any nesting depth.
	var fillInner func(p AggregationPolicy) (AggregationPolicy, error)
	fillInner = func(p AggregationPolicy) (AggregationPolicy, error) {
		switch p := p.(type) {
		case nil:
			return defaultPolicy(), nil
		case *MaxStalenessPolicy:
			if p.MaxStale < 0 {
				return nil, fmt.Errorf("core: max staleness cutoff %d must be >= 0", p.MaxStale)
			}
			inner, err := fillInner(p.AggregationPolicy)
			if err != nil {
				return nil, err
			}
			p.AggregationPolicy = inner
		case *ScheduledLR:
			if p.Schedule == nil {
				return nil, fmt.Errorf("core: ScheduledLR policy with nil schedule")
			}
			inner, err := fillInner(p.AggregationPolicy)
			if err != nil {
				return nil, err
			}
			p.AggregationPolicy = inner
		case *NormClipPolicy:
			if p.MaxNorm <= 0 {
				return nil, fmt.Errorf("core: norm-clip bound %g must be positive", p.MaxNorm)
			}
			inner, err := fillInner(p.AggregationPolicy)
			if err != nil {
				return nil, err
			}
			p.AggregationPolicy = inner
		case *TrimmedMeanPolicy:
			if p.Frac < 0 || p.Frac >= 0.5 {
				return nil, fmt.Errorf("core: trimmed-mean fraction %g outside [0, 0.5)", p.Frac)
			}
		case *KrumPolicy:
			if p.Frac < 0 || p.Frac >= 0.5 {
				return nil, fmt.Errorf("core: krum Byzantine fraction %g outside [0, 0.5)", p.Frac)
			}
		}
		return p, nil
	}
	pol, err := fillInner(clonedForRun(sp.Policy))
	if err != nil {
		return err
	}
	sp.Policy = pol
	if bs, ok := sp.Policy.(bufferSizer); ok {
		bs.defaultBuffer(sp.BufferSize)
	}
	if dc, ok := sp.Policy.(discounter); ok {
		d, force := sp.Discount, false
		if sw, ok := sp.Algo.(StalenessWeighter); ok {
			d, force = sw.StalenessWeight, true
		}
		if d == nil {
			d = PolyDiscount(0.5)
		}
		dc.defaultDiscount(d, force)
	}
	return nil
}

// Start validates the spec and executes the run on the selected runtime.
// It is the one entrypoint every runtime and policy combination goes
// through — literally NewRunState + Run; a zero-latency barrier spec
// reproduces the synchronous loop bit-for-bit on the same seed. Callers
// that need round-at-a-time control, checkpointing, or resume use
// RunState directly.
func Start(spec RunSpec) (*Result, error) {
	rs, err := NewRunState(spec)
	if err != nil {
		return nil, err
	}
	return rs.Run()
}
