package optim

import (
	"math"
	"testing"
)

func TestSGDStep(t *testing.T) {
	o := NewSGD(0.1)
	w := []float64{1, 2}
	o.Step(w, []float64{10, -10})
	if w[0] != 0 || w[1] != 3 {
		t.Fatalf("w = %v", w)
	}
	o.Reset() // no-op, must not panic
	if o.Name() != "sgd" {
		t.Fatal("name")
	}
}

func TestSGDMomentumMatchesClosedForm(t *testing.T) {
	// With constant gradient g, buf after k steps is g*(1-m^k)/(1-m), so
	// w_k = w_0 - lr*g*sum_{i=1..k} (1-m^i)/(1-m).
	o := NewSGDMomentum(0.1, 0.9)
	w := []float64{0}
	g := []float64{1}
	var wantDelta float64
	for k := 1; k <= 5; k++ {
		o.Step(w, g)
		wantDelta += (1 - math.Pow(0.9, float64(k))) / (1 - 0.9)
	}
	want := -0.1 * wantDelta
	if math.Abs(w[0]-want) > 1e-12 {
		t.Fatalf("w=%v want %v", w[0], want)
	}
}

func TestSGDMomentumZeroMomentumEqualsSGD(t *testing.T) {
	a := NewSGDMomentum(0.05, 0)
	b := NewSGD(0.05)
	wa, wb := []float64{1, -1}, []float64{1, -1}
	g := []float64{0.3, 0.7}
	for i := 0; i < 3; i++ {
		a.Step(wa, g)
		b.Step(wb, g)
	}
	for i := range wa {
		if math.Abs(wa[i]-wb[i]) > 1e-15 {
			t.Fatalf("divergence at %d: %v vs %v", i, wa[i], wb[i])
		}
	}
}

func TestSGDMomentumReset(t *testing.T) {
	o := NewSGDMomentum(0.1, 0.9)
	w := []float64{0}
	o.Step(w, []float64{1})
	o.Reset()
	w2 := []float64{0}
	o.Step(w2, []float64{1})
	// After reset the first step must equal a fresh optimizer's first step.
	if math.Abs(w2[0]-(-0.1)) > 1e-15 {
		t.Fatalf("post-reset step %v", w2[0])
	}
}

// TestSlotsRoundScoped documents the invariant core run snapshots rely
// on: optimizer slot state accumulates within a round and Reset clears
// it, so state taken at a round boundary (where every engine has been
// Reset or will be Reset before its next use) never needs serializing.
func TestSlotsRoundScoped(t *testing.T) {
	o := NewSGDMomentum(0.1, 0.9)
	var _ Stateful = o // compile-time: SGDMomentum is inspectable

	if got := o.Slots()["momentum"]; len(got) != 0 {
		t.Fatalf("fresh optimizer has %d momentum entries", len(got))
	}
	w := []float64{0, 0}
	o.Step(w, []float64{1, -1})
	slots := o.Slots()["momentum"]
	if len(slots) != 2 || slots[0] == 0 || slots[1] == 0 {
		t.Fatalf("mid-round momentum %v should be non-zero", slots)
	}
	// Slots is a copy: mutating it must not touch the optimizer.
	slots[0] = 123
	if o.Slots()["momentum"][0] == 123 {
		t.Fatal("Slots returned the live buffer")
	}
	o.Reset()
	for i, v := range o.Slots()["momentum"] {
		if v != 0 {
			t.Fatalf("post-Reset momentum[%d] = %v, want 0", i, v)
		}
	}
}

func TestConstructorsPanicOnBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { NewSGD(0) },
		func() { NewSGD(-1) },
		func() { NewSGDMomentum(0, 0.9) },
		func() { NewSGDMomentum(0.1, 1) },
		func() { NewSGDMomentum(0.1, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
