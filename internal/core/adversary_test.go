package core

import (
	"math"
	"strings"
	"testing"
)

// --- fault-model grammar ---

func TestParseFaultsGrammar(t *testing.T) {
	cases := []struct {
		spec string
		want FaultModel
	}{
		{"byz:0.2,signflip", FaultModel{ByzFraction: 0.2, Mode: "signflip"}},
		{"byz:0.3,scale:10", FaultModel{ByzFraction: 0.3, Mode: "scale", Arg: 10}},
		{"byz:0.1,noise:0.5", FaultModel{ByzFraction: 0.1, Mode: "noise", Arg: 0.5}},
		{"byz:0.05,nan", FaultModel{ByzFraction: 0.05, Mode: "nan"}},
		{"byz:0.25,labelflip", FaultModel{ByzFraction: 0.25, Mode: "labelflip"}},
		{"crash:0.1", FaultModel{CrashFraction: 0.1}},
		{"byz:0.2,signflip+crash:0.05", FaultModel{ByzFraction: 0.2, Mode: "signflip", CrashFraction: 0.05}},
		{"byz:0,signflip", FaultModel{ByzFraction: 0, Mode: "signflip"}},
	}
	for _, tc := range cases {
		m, err := ParseFaults(tc.spec)
		if err != nil {
			t.Fatalf("ParseFaults(%q): %v", tc.spec, err)
		}
		if *m != tc.want {
			t.Fatalf("ParseFaults(%q) = %+v, want %+v", tc.spec, *m, tc.want)
		}
		// String renders the canonical grammar: reparsing must round-trip.
		m2, err := ParseFaults(m.String())
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", m.String(), tc.spec, err)
		}
		if *m2 != *m {
			t.Fatalf("String round-trip %q -> %q -> %+v", tc.spec, m.String(), *m2)
		}
	}
	for _, spec := range []string{"", "none"} {
		m, err := ParseFaults(spec)
		if err != nil || m != nil {
			t.Fatalf("ParseFaults(%q) = %v, %v, want nil, nil", spec, m, err)
		}
	}
}

func TestParseFaultsErrors(t *testing.T) {
	bad := []string{
		"byz:0.2",                       // missing mode
		"byz:0.2,warp",                  // unknown mode
		"byz:0.2,scale",                 // scale needs an argument
		"byz:0.2,scale:0",               // nonpositive factor
		"byz:0.2,noise:-1",              // nonpositive sigma
		"byz:0.2,signflip:3",            // signflip takes no argument
		"byz:1.5,signflip",              // fraction out of range
		"byz:0.6,signflip+crash:0.6",    // fractions exceed 1
		"crash:-0.1",                    // fraction out of range
		"crash:x",                       // not a number
		"byz:0.1,nan+byz:0.1,nan",       // repeated segment
		"crash:0.1+crash:0.1",           // repeated segment
		"drop:0.1",                      // unknown segment
		"byz:0.2,signflip+latency:exp2", // unknown segment
	}
	for _, spec := range bad {
		if _, err := ParseFaults(spec); err == nil {
			t.Fatalf("ParseFaults(%q) accepted", spec)
		}
	}
}

// TestSampleFaultsDeterministic: the assignment is a pure function of
// (population, model, seed), drawn in client-ID order from the dedicated
// adversary stream, with empirical fractions near the configured ones.
func TestSampleFaultsDeterministic(t *testing.T) {
	m := &FaultModel{ByzFraction: 0.2, Mode: "signflip", CrashFraction: 0.1}
	a := sampleFaults(1000, m, 7)
	b := sampleFaults(1000, m, 7)
	byz, crash := 0, 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("client %d: assignment %d vs %d on the same seed", i, a[i], b[i])
		}
		switch a[i] {
		case faultSignFlip:
			byz++
		case faultCrash:
			crash++
		}
	}
	if byz < 150 || byz > 250 {
		t.Fatalf("byzantine count %d far from expected 200", byz)
	}
	if crash < 60 || crash > 140 {
		t.Fatalf("crash count %d far from expected 100", crash)
	}
	c := sampleFaults(1000, m, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced an identical assignment")
	}
}

// --- robust merge arithmetic (hand-computed pins) ---

// robustMergeServer builds a tiny run whose server has the given policy
// installed, with the global model zeroed so merge results are pure
// functions of the synthetic updates.
func robustMergeServer(t *testing.T, p AggregationPolicy) (*RunState, *Server) {
	t.Helper()
	spec := RunSpec{Config: snapTestConfig(t, 2), Policy: p}
	rs, err := NewRunState(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rs.Close)
	s := rs.Server()
	for i := range s.global {
		s.global[i] = 0
	}
	return rs, s
}

// constUpdates builds one constant-vector update per value (equal data
// sizes, so weights are uniform and only the estimator matters).
func constUpdates(n int, vals ...float64) []Update {
	us := make([]Update, len(vals))
	for i, v := range vals {
		p := make([]float64, n)
		for j := range p {
			p[j] = v
		}
		us[i] = Update{ClientID: i, Params: p, NumSamples: 10}
	}
	return us
}

func requireGlobalConst(t *testing.T, s *Server, want float64, label string) {
	t.Helper()
	for i, v := range s.global {
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("%s: global[%d] = %g, want %g", label, i, v, want)
		}
	}
}

func TestMedianMergePins(t *testing.T) {
	cases := []struct {
		name string
		vals []float64
		want float64
	}{
		{"odd", []float64{1, 4, 10}, 4},
		{"even", []float64{1, 3, 7, 9}, 5},
		{"ties", []float64{2, 2, 5}, 2},
		{"single", []float64{6}, 6},
		{"unsorted", []float64{9, 1, 7, 3}, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, s := robustMergeServer(t, &MedianPolicy{})
			s.aggregate(1, constUpdates(len(s.global), tc.vals...))
			requireGlobalConst(t, s, tc.want, "median")
		})
	}
}

func TestTrimmedMeanMergePins(t *testing.T) {
	cases := []struct {
		name string
		frac float64
		vals []float64
		want float64
	}{
		// g = int(0.25*4) = 1: drop 1 and 9, mean(3, 7) = 5.
		{"quarter-of-four", 0.25, []float64{1, 3, 7, 9}, 5},
		// g = int(0.2*5) = 1: drop -100 and 100, mean(2, 3, 4) = 3.
		{"outliers-both-tails", 0.2, []float64{-100, 2, 3, 4, 100}, 3},
		// g = int(0.4*3) = 1, window [1,1]: degenerates to the median.
		{"degenerate-to-median", 0.4, []float64{1, 5, 30}, 5},
		// g = 0: plain mean.
		{"no-trim", 0.1, []float64{2, 4}, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, s := robustMergeServer(t, &TrimmedMeanPolicy{Frac: tc.frac})
			s.aggregate(1, constUpdates(len(s.global), tc.vals...))
			requireGlobalConst(t, s, tc.want, "trimmedmean")
		})
	}
}

// TestKrumMergePin: a cluster of four near-identical updates plus one
// far outlier; krum:0.2 on a buffer of 5 filters exactly the outlier and
// averages the cluster.
func TestKrumMergePin(t *testing.T) {
	_, s := robustMergeServer(t, &KrumPolicy{Frac: 0.2})
	s.aggregate(1, constUpdates(len(s.global), 0.1, 0.12, 0.08, 0.1, 50))
	requireGlobalConst(t, s, (0.1+0.12+0.08+0.1)/4, "krum")
}

// TestNormClipGuard: fedavg+clip rescales an update onto the admissible
// ball around the global model before the merge; updates inside the ball
// are untouched.
func TestNormClipGuard(t *testing.T) {
	maxNorm := 1.0
	_, s := robustMergeServer(t, WithNormClip(&FedAvgPolicy{}, maxNorm))
	n := len(s.global)
	// u1 sits at distance 3*sqrt(n) (clipped onto the ball: each
	// coordinate becomes 1/sqrt(n)); u2 is well inside (untouched).
	inside := 0.5 / math.Sqrt(float64(n))
	s.aggregate(1, constUpdates(n, 3, inside))
	want := (maxNorm/math.Sqrt(float64(n)) + inside) / 2
	requireGlobalConst(t, s, want, "clip")
}

// TestNonFiniteRejection: nan and crash uploads are zero-weighted out and
// counted; the finite updates still merge exactly.
func TestNonFiniteRejection(t *testing.T) {
	_, s := robustMergeServer(t, &FedAvgPolicy{})
	us := constUpdates(len(s.global), 2, 4)
	bad := make([]float64, len(s.global))
	for i := range bad {
		bad[i] = math.NaN()
	}
	us = append(us, Update{ClientID: 2, Params: bad, NumSamples: 10})
	s.aggregate(1, us)
	requireGlobalConst(t, s, 3, "screened fedavg")
	if s.rejectedUpdates != 1 {
		t.Fatalf("rejectedUpdates = %d, want 1", s.rejectedUpdates)
	}
	// An all-rejected buffer merges as a no-op, not a NaN model.
	s.aggregate(2, []Update{{ClientID: 2, Params: bad, NumSamples: 10}})
	requireGlobalConst(t, s, 3, "all-rejected merge")
	if s.rejectedUpdates != 2 {
		t.Fatalf("rejectedUpdates = %d, want 2", s.rejectedUpdates)
	}
}

// --- fault application semantics ---

// faultServer builds a server with a forced single-class assignment so a
// specific fault can be exercised without stream lottery.
func faultServer(t *testing.T, m *FaultModel, class faultClass) *Server {
	t.Helper()
	spec := RunSpec{Config: snapTestConfig(t, 2)}
	rs, err := NewRunState(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rs.Close)
	s := rs.Server()
	s.faultModel = m
	s.faults = make([]faultClass, len(s.clients))
	s.faults[0] = class
	return s
}

func TestApplyFaultSemantics(t *testing.T) {
	base := []float64{1, -2, 3}
	mk := func() *Update { return &Update{ClientID: 0, Params: append([]float64(nil), base...)} }

	t.Run("signflip", func(t *testing.T) {
		s := faultServer(t, &FaultModel{ByzFraction: 1, Mode: "signflip"}, faultSignFlip)
		u := mk()
		s.applyFault(s.clients[0], u)
		for i := range base {
			if u.Params[i] != -base[i] {
				t.Fatalf("signflip[%d] = %g, want %g", i, u.Params[i], -base[i])
			}
		}
	})
	t.Run("scale", func(t *testing.T) {
		s := faultServer(t, &FaultModel{ByzFraction: 1, Mode: "scale", Arg: 10}, faultScale)
		u := mk()
		s.applyFault(s.clients[0], u)
		for i := range base {
			if u.Params[i] != 10*base[i] {
				t.Fatalf("scale[%d] = %g, want %g", i, u.Params[i], 10*base[i])
			}
		}
	})
	t.Run("nan", func(t *testing.T) {
		s := faultServer(t, &FaultModel{ByzFraction: 1, Mode: "nan"}, faultNaN)
		u := mk()
		s.applyFault(s.clients[0], u)
		for i := range u.Params {
			if !math.IsNaN(u.Params[i]) {
				t.Fatalf("nan[%d] = %g, want NaN", i, u.Params[i])
			}
		}
	})
	t.Run("crash", func(t *testing.T) {
		s := faultServer(t, &FaultModel{CrashFraction: 1}, faultCrash)
		u := mk()
		s.applyFault(s.clients[0], u)
		finite := false
		for _, v := range u.Params {
			if !math.IsInf(v, 0) {
				finite = true
			}
		}
		if finite {
			t.Fatal("crash upload still carries finite values")
		}
		if len(u.Params) != len(base) {
			t.Fatalf("crash upload truncated to %d of %d params", len(u.Params), len(base))
		}
	})
	t.Run("honest-untouched", func(t *testing.T) {
		s := faultServer(t, &FaultModel{ByzFraction: 1, Mode: "signflip"}, faultSignFlip)
		u := mk()
		s.applyFault(s.clients[1], u) // client 1 is honest
		for i := range base {
			if u.Params[i] != base[i] {
				t.Fatalf("honest client's upload mutated at %d", i)
			}
		}
	})
}

func TestRotateLabels(t *testing.T) {
	y := []int{0, 1, 9, 4}
	rotateLabels(y, 3, 10)
	want := []int{3, 4, 2, 7}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("rotateLabels[%d] = %d, want %d", i, y[i], want[i])
		}
	}
}

// --- end-to-end pins ---

// TestZeroByzantineMatchesBaseline: enabling a zero-fraction fault model
// must leave the async trajectory bit-for-bit identical — the adversary
// draws only from its own stream.
func TestZeroByzantineMatchesBaseline(t *testing.T) {
	mkSpec := func() RunSpec {
		return RunSpec{
			Config:      snapTestConfig(t, 6),
			Runtime:     RuntimeAsync,
			Concurrency: 4,
			BufferSize:  2,
			Latency:     ExponentialLatency{Mean: 2},
		}
	}
	base, err := Start(mkSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []string{"byz:0,signflip", "byz:0,scale:10", "byz:0,noise:1", "byz:0,nan", "byz:0,labelflip", "crash:0"} {
		fm, err := ParseFaults(spec)
		if err != nil {
			t.Fatal(err)
		}
		sp := mkSpec()
		sp.Faults = fm
		adv, err := Start(sp)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if adv.Digest() != base.Digest() {
			t.Fatalf("zero-adversary run %q diverged from baseline: digest %s vs %s", spec, adv.Digest(), base.Digest())
		}
	}
}

// TestAdversarialRunSurvives: a fleet with every fault family active
// (nan + crash arrive non-finite; they must be rejected, the run must
// finish, and the model must stay finite).
func TestAdversarialRunSurvives(t *testing.T) {
	fm, err := ParseFaults("byz:0.3,nan+crash:0.2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Start(RunSpec{
		Config:      snapTestConfig(t, 6),
		Runtime:     RuntimeAsync,
		Concurrency: 4,
		BufferSize:  2,
		Latency:     ExponentialLatency{Mean: 2},
		Faults:      fm,
	})
	if err != nil {
		t.Fatalf("adversarial run must survive: %v", err)
	}
	if res.RejectedUpdates == 0 {
		t.Fatal("a 50% non-finite fleet produced zero rejections")
	}
	// Rejected uploads still trained and still rode the wire.
	if res.TotalGFLOPs() == 0 || res.CommBytesByRound[len(res.CommBytesByRound)-1] == 0 {
		t.Fatal("faulty clients' compute/comm went unmetered")
	}
	for _, a := range res.Accuracy {
		if math.IsNaN(a) {
			t.Fatal("accuracy series went NaN")
		}
	}
}

// TestFaultsRejectAggregatorOverride: Aggregator methods bypass the
// weighted-merge funnel and with it the non-finite screen, so the spec
// must refuse the combination up front.
func TestFaultsRejectAggregatorOverride(t *testing.T) {
	fm, _ := ParseFaults("byz:0.2,nan")
	cfg := snapTestConfig(t, 2)
	cfg.Algo = aggAlgo{}
	_, err := Start(RunSpec{Config: cfg, Faults: fm})
	if err == nil || !strings.Contains(err.Error(), "fault screen") {
		t.Fatalf("Aggregator + faults accepted (err=%v)", err)
	}
}

// TestResumeEquivalenceAdversarial is the ISSUE's resume pin: a churning
// fleet with 20% sign-flipping Byzantine clients under trimmed-mean — an
// uninterrupted run, snapshot-and-continue, and a fresh-process resume
// must all agree bit-for-bit.
func TestResumeEquivalenceAdversarial(t *testing.T) {
	fm, err := ParseFaults("byz:0.2,signflip")
	if err != nil {
		t.Fatal(err)
	}
	runResumeScenario(t, RunSpec{
		Config:      snapTestConfig(t, 8),
		Runtime:     RuntimeAsync,
		Concurrency: 4,
		BufferSize:  2,
		Latency:     ExponentialLatency{Mean: 2},
		Policy:      &TrimmedMeanPolicy{Frac: 0.25},
		Faults:      fm,
		Churn: &ChurnModel{
			MeanUp:   30,
			MeanDown: 8,
			Drops:    []MassDrop{{At: 4, Fraction: 0.5, Duration: 6}},
		},
	}, 4)
}

// TestResumeEquivalenceNoiseFault exercises the adversary RNG section of
// the snapshot: noise clients' private stream positions must serialize,
// or the resumed run's corrupted uploads diverge.
func TestResumeEquivalenceNoiseFault(t *testing.T) {
	fm, err := ParseFaults("byz:0.4,noise:0.3")
	if err != nil {
		t.Fatal(err)
	}
	runResumeScenario(t, RunSpec{
		Config:      snapTestConfig(t, 6),
		Runtime:     RuntimeAsync,
		Concurrency: 4,
		BufferSize:  2,
		Latency:     ExponentialLatency{Mean: 2},
		Policy:      &MedianPolicy{},
		Faults:      fm,
	}, 3)
}

// TestRobustRecovery is the ISSUE's recovery pin: under byz:0.3,scale:10
// the trimmed mean holds the accuracy target that plain fedavg cannot
// reach.
func TestRobustRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("learning pin; skipped in -short")
	}
	fm, err := ParseFaults("byz:0.3,scale:10")
	if err != nil {
		t.Fatal(err)
	}
	mkSpec := func(p AggregationPolicy) RunSpec {
		cfg := snapTestConfig(t, 16)
		cfg.ClientsPerRound = 6
		cfg.TargetAccuracy = 0.55
		// Small merge buffers let the two scale:10 attackers dominate
		// individual merges — that is what breaks the plain mean; the
		// trimmed mean (g = 1 on k = 4) sheds the extremes each time.
		return RunSpec{
			Config:      cfg,
			Runtime:     RuntimeAsync,
			Concurrency: 6,
			BufferSize:  4,
			Latency:     ExponentialLatency{Mean: 2},
			Policy:      p,
			Faults:      fm,
		}
	}
	robust, err := Start(mkSpec(&TrimmedMeanPolicy{Frac: 0.34}))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Start(mkSpec(&FedAvgPolicy{}))
	if err != nil {
		t.Fatal(err)
	}
	if robust.RoundsToTarget < 0 {
		t.Fatalf("trimmed mean never reached %.2f under byz:0.3,scale:10 (best %.4f)", robust.TargetAccuracy, robust.BestAccuracy)
	}
	if plain.RoundsToTarget >= 0 {
		t.Fatalf("plain fedavg reached %.2f under byz:0.3,scale:10 (round %d) — the attack is too weak to pin robustness", plain.TargetAccuracy, plain.RoundsToTarget)
	}
}

// TestPolicyParseRobust covers the new ParsePolicy surface.
func TestPolicyParseRobust(t *testing.T) {
	good := []struct {
		spec string
		name string
	}{
		{"median", "median"},
		{"trimmedmean:0.25", "trimmedmean"},
		{"krum:0.2", "krum"},
		{"clip:5", "+clip"},
		{"trimmedmean:0.25+clip:5", "trimmedmean+clip"},
		{"fedbuff+clip:5", "fedbuff+clip"},
		{"fedbuff:0.5+maxstale:8+clip:5", "fedbuff+maxstale+clip"},
		{"median+maxstale:4", "median+maxstale"},
	}
	for _, tc := range good {
		p, err := ParsePolicy(tc.spec)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", tc.spec, err)
		}
		if p.Name() != tc.name {
			t.Fatalf("ParsePolicy(%q).Name() = %q, want %q", tc.spec, p.Name(), tc.name)
		}
	}
	bad := []string{
		"trimmedmean",                 // needs a fraction
		"trimmedmean:0.5",             // fraction must be < 0.5
		"krum:-0.1",                   // negative fraction
		"median:3",                    // takes no args
		"clip:0",                      // bound must be positive
		"clip",                        // needs a bound
		"fedbuff+clip",                // suffix needs a bound
		"fedbuff+clamp:3",             // unknown suffix
		"median+clip:-2",              // negative bound
		"trimmedmean:0.25+maxstale:x", // non-integer cutoff
	}
	for _, spec := range bad {
		if _, err := ParsePolicy(spec); err == nil {
			t.Fatalf("ParsePolicy(%q) accepted", spec)
		}
	}
}
