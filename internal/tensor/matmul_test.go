package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMatMul is the reference implementation all kernels are checked
// against.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += a.Data[i*k+p] * b.Data[p*n+j]
			}
			c.Data[i*n+j] = s
		}
	}
	return c
}

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	t.RandNormal(rng, 1)
	return t
}

// gemmShapes exercises every routing decision of the blocked GEMM: the
// degenerate m/n/k = 1 fast paths, the small-m direct-B path, tiles with
// row/column remainders (non-multiples of the 4x4 micro-tile), shapes
// that straddle one k/n block boundary, and the conv/dense shapes the
// paper's models actually produce.
var gemmShapes = [][3]int{
	{1, 1, 1}, {1, 7, 1}, {1, 1, 9}, {7, 1, 1},
	{2, 3, 4}, {5, 1, 7}, {3, 128, 2}, {17, 23, 9},
	{4, 4, 4}, {5, 5, 5}, {8, 8, 8}, {64, 31, 64},
	{6, 25, 31}, {16, 150, 10}, {33, 400, 1}, {50, 120, 84},
	{65, 257, 19}, {40, 300, 5}, {34, 12, 34},
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range gemmShapes {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randTensor(rng, m, k), randTensor(rng, k, n)
		c := New(m, n)
		MatMul(c, a, b)
		want := naiveMatMul(a, b)
		if d := MaxAbsDiff(c.Data, want.Data); d > 1e-10 {
			t.Fatalf("MatMul %v: max diff %v", dims, d)
		}
	}
}

// TestMatMulDeterministic pins the kernel's fixed accumulation order: the
// same inputs must produce bitwise-identical outputs on every run (the
// trajectory-reproducibility contract of the FL runtimes rests on this).
func TestMatMulDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, dims := range gemmShapes {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randTensor(rng, m, k), randTensor(rng, k, n)
		c1, c2 := New(m, n), New(m, n)
		MatMul(c1, a, b)
		MatMul(c2, a, b)
		for i := range c1.Data {
			if c1.Data[i] != c2.Data[i] {
				t.Fatalf("MatMul %v: element %d differs between runs: %v vs %v", dims, i, c1.Data[i], c2.Data[i])
			}
		}
	}
}

// TestMatMulSteadyStateAllocFree pins the scratch pooling: after warm-up,
// the kernels must not allocate.
func TestMatMulSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pin runs in the non-race job")
	}
	rng := rand.New(rand.NewSource(13))
	a, b := randTensor(rng, 40, 57), randTensor(rng, 57, 33)
	c := New(40, 33)
	MatMul(c, a, b) // warm the pool
	allocs := testing.AllocsPerRun(20, func() {
		MatMul(c, a, b)
	})
	if allocs > 0 {
		t.Fatalf("MatMul allocates %v objects per call in steady state", allocs)
	}
}

func TestMatMulOverwritesOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a, b := randTensor(rng, 3, 4), randTensor(rng, 4, 5)
	c := New(3, 5)
	c.Fill(99) // stale values must be overwritten, not accumulated
	MatMul(c, a, b)
	want := naiveMatMul(a, b)
	if d := MaxAbsDiff(c.Data, want.Data); d > 1e-10 {
		t.Fatalf("stale output leaked: %v", d)
	}
}

func TestMatMulAddBias(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// {40,57,33} and up exercise the tiled path's per-worker bias init
	// (m > gemmSmallM), not just the small-m direct path.
	for _, dims := range [][3]int{{6, 3, 4}, {1, 5, 3}, {10, 784, 100}, {40, 57, 33}, {65, 257, 19}, {200, 30, 10}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randTensor(rng, m, k), randTensor(rng, k, n)
		bias := make([]float64, n)
		for j := range bias {
			bias[j] = rng.NormFloat64()
		}
		c := New(m, n)
		MatMulAddBias(c, a, b, bias)
		want := naiveMatMul(a, b)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				want.Data[i*n+j] += bias[j]
			}
		}
		if d := MaxAbsDiff(c.Data, want.Data); d > 1e-10 {
			t.Fatalf("MatMulAddBias %v: max diff %v", dims, d)
		}
	}
}

func TestMatMulATB(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, dims := range gemmShapes {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randTensor(rng, m, k), randTensor(rng, m, n)
		c := New(k, n)
		c.Fill(5)
		MatMulATB(c, a, b)
		// Reference: transpose A explicitly.
		at := New(k, m)
		for i := 0; i < m; i++ {
			for p := 0; p < k; p++ {
				at.Data[p*m+i] = a.Data[i*k+p]
			}
		}
		want := naiveMatMul(at, b)
		if d := MaxAbsDiff(c.Data, want.Data); d > 1e-10 {
			t.Fatalf("MatMulATB %v: max diff %v", dims, d)
		}
	}
}

func TestMatMulATBAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, dims := range gemmShapes {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randTensor(rng, m, k), randTensor(rng, m, n)
		c := randTensor(rng, k, n)
		base := c.Clone()
		MatMulATBAdd(c, a, b)
		at := New(k, m)
		for i := 0; i < m; i++ {
			for p := 0; p < k; p++ {
				at.Data[p*m+i] = a.Data[i*k+p]
			}
		}
		want := naiveMatMul(at, b)
		AddInto(want.Data, want.Data, base.Data)
		if d := MaxAbsDiff(c.Data, want.Data); d > 1e-10 {
			t.Fatalf("MatMulATBAdd %v: max diff %v", dims, d)
		}
	}
}

func TestMatMulABT(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range gemmShapes {
		m, n, k := dims[0], dims[1], dims[2]
		a, b := randTensor(rng, m, n), randTensor(rng, k, n)
		c := New(m, k)
		c.Fill(-3)
		MatMulABT(c, a, b)
		bt := New(n, k)
		for i := 0; i < k; i++ {
			for j := 0; j < n; j++ {
				bt.Data[j*k+i] = b.Data[i*n+j]
			}
		}
		want := naiveMatMul(a, bt)
		if d := MaxAbsDiff(c.Data, want.Data); d > 1e-10 {
			t.Fatalf("MatMulABT %v: max diff %v", dims, d)
		}
	}
}

func TestMatMulABTAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, dims := range gemmShapes {
		m, n, k := dims[0], dims[1], dims[2]
		a, b := randTensor(rng, m, n), randTensor(rng, k, n)
		c := randTensor(rng, m, k)
		base := c.Clone()
		MatMulABTAdd(c, a, b)
		bt := New(n, k)
		for i := 0; i < k; i++ {
			for j := 0; j < n; j++ {
				bt.Data[j*k+i] = b.Data[i*n+j]
			}
		}
		want := naiveMatMul(a, bt)
		AddInto(want.Data, want.Data, base.Data)
		if d := MaxAbsDiff(c.Data, want.Data); d > 1e-10 {
			t.Fatalf("MatMulABTAdd %v: max diff %v", dims, d)
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer expectPanic(t, "shape mismatch")
	MatMul(New(2, 2), New(2, 3), New(4, 2))
}

func TestMatMulRankPanics(t *testing.T) {
	defer expectPanic(t, "rank")
	MatMul(New(2, 2), New(4), New(2, 2))
}

// Property: the blocked kernel agrees with the naive triple loop on
// random shapes, including shapes larger than one micro-tile and shapes
// that hit every remainder path.
func TestMatMulMatchesNaiveQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(50), 1+r.Intn(50), 1+r.Intn(50)
		a, b := randTensor(r, m, k), randTensor(r, k, n)
		c := New(m, n)
		MatMul(c, a, b)
		want := naiveMatMul(a, b)
		return MaxAbsDiff(c.Data, want.Data) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: matrix multiplication distributes over addition.
func TestMatMulDistributive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a := randTensor(rng, m, k)
		b1, b2 := randTensor(rng, k, n), randTensor(rng, k, n)
		sum := New(k, n)
		AddInto(sum.Data, b1.Data, b2.Data)
		left := New(m, n)
		MatMul(left, a, sum)
		r1, r2 := New(m, n), New(m, n)
		MatMul(r1, a, b1)
		MatMul(r2, a, b2)
		right := New(m, n)
		AddInto(right.Data, r1.Data, r2.Data)
		return MaxAbsDiff(left.Data, right.Data) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := randTensor(rng, 128, 128), randTensor(rng, 128, 128)
	c := New(128, 128)
	b.SetBytes(128 * 128 * 128 * 2 * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(c, x, y)
	}
}

// BenchmarkGEMMConvShape measures the im2col matmul of the paper CNN's
// second conv layer (W[16,150] x col[150,100]) — a small-m direct-B
// shape.
func BenchmarkGEMMConvShape(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	w, col := randTensor(rng, 16, 150), randTensor(rng, 150, 100)
	c := New(16, 100)
	b.SetBytes(16 * 150 * 100 * 2 * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(c, w, col)
	}
}

// BenchmarkGEMMDenseBackward measures the dense weight-gradient kernel at
// MLP scale (dW = X^T dY with X[10,784], dY[10,100]) — a large-m, tiny-k
// accumulating shape.
func BenchmarkGEMMDenseBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x, dy := randTensor(rng, 10, 784), randTensor(rng, 10, 100)
	c := New(784, 100)
	b.SetBytes(784 * 100 * 10 * 2 * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulATBAdd(c, x, dy)
	}
}
