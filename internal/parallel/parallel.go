// Package parallel provides small data-parallel building blocks used by the
// tensor kernels and by the federated-learning server to train selected
// clients concurrently.
//
// The helpers are deliberately simple: a parallel for over an index range
// with static chunking, and a bounded worker pool. Both size themselves from
// GOMAXPROCS so the library scales with the machine without configuration.
package parallel

import (
	"runtime"
	"sync"
)

// DefaultMinWork is the smallest index range worth splitting across
// goroutines; below it the scheduling overhead dominates. It is exported
// so hot paths can ask Serial whether ForChunked would run inline and, if
// so, call their chunk body directly without allocating a closure.
const DefaultMinWork = 256

const minParallelWork = DefaultMinWork

// Workers returns the degree of parallelism used by For and ForChunked.
func Workers() int {
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n) using up to Workers() goroutines.
// Iterations must be independent. Small ranges run inline on the caller's
// goroutine.
func For(n int, fn func(i int)) {
	ForChunked(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForChunked splits [0, n) into contiguous chunks and runs fn(lo, hi) for
// each chunk, using up to Workers() goroutines. Chunked form lets kernels
// amortise per-iteration overhead (index math, bounds hoisting).
func ForChunked(n int, fn func(lo, hi int)) {
	ForChunkedMin(n, minParallelWork, fn)
}

// Serial reports whether ForChunkedMin(n, minWork, ...) would run inline on
// the caller's goroutine. Hot paths use it to call their chunk body
// directly in the serial case, so the closure they would otherwise hand to
// ForChunked never escapes to the heap.
func Serial(n, minWork int) bool {
	return Workers() <= 1 || n < minWork
}

// ForChunkedMin is ForChunked with an explicit parallelism threshold:
// ranges smaller than minWork run inline. Kernels whose per-index work is
// much heavier than a scalar op (e.g. a GEMM row tile) pass a smaller
// threshold than the package default.
func ForChunkedMin(n, minWork int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := Workers()
	if p <= 1 || n < minWork {
		fn(0, n)
		return
	}
	if p > n {
		p = n
	}
	chunk := (n + p - 1) / p
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Do runs every task concurrently, bounded by Workers() goroutines, and
// waits for all of them. It is used by the FL server to run the selected
// clients' local training in parallel, mirroring the "clients train in
// parallel" step of each communication round.
func Do(tasks ...func()) {
	n := len(tasks)
	switch n {
	case 0:
		return
	case 1:
		tasks[0]()
		return
	}
	sem := make(chan struct{}, Workers())
	var wg sync.WaitGroup
	for _, t := range tasks {
		wg.Add(1)
		sem <- struct{}{}
		go func(t func()) {
			defer wg.Done()
			t()
			<-sem
		}(t)
	}
	wg.Wait()
}

// Map applies fn to every index in [0, n) and collects the results in
// order. It is a convenience wrapper over For for fan-out/fan-in patterns
// such as "evaluate every client's model".
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	For(n, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// Pool is a persistent bounded worker pool. Unlike Do, which spins up
// goroutines per call, a Pool keeps its workers alive across many Submit
// calls, and each submitted task learns which worker runs it. That worker
// index is the hook for sharded state: a caller can keep one expensive
// resource per worker (the FL core keeps one training engine — model,
// optimizer, batch buffers — per shard) and access it without locking,
// because a worker executes its tasks sequentially.
type Pool struct {
	tasks chan func(worker int)
	wg    sync.WaitGroup
	size  int
}

// NewPool starts a pool with the given number of workers (values < 1 are
// clamped to 1). Close must be called to release the workers.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{
		// A small queue decouples submitters from workers; Submit blocks
		// once it fills, which bounds in-flight memory.
		tasks: make(chan func(worker int), 2*workers),
		size:  workers,
	}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer p.wg.Done()
			for fn := range p.tasks {
				fn(w)
			}
		}(w)
	}
	return p
}

// Size returns the number of workers.
func (p *Pool) Size() int { return p.size }

// Submit enqueues one task. It blocks while the queue is full (bounded
// backpressure) and must not be called after Close. The worker index passed
// to fn is in [0, Size()).
func (p *Pool) Submit(fn func(worker int)) {
	p.tasks <- fn
}

// Close waits for every submitted task to finish and releases the workers.
// The pool cannot be reused afterwards.
func (p *Pool) Close() {
	close(p.tasks)
	p.wg.Wait()
}
