package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean %v", Mean(xs))
	}
	if Variance(xs) != 4 {
		t.Fatalf("variance %v", Variance(xs))
	}
	if StdDev(xs) != 2 {
		t.Fatalf("std %v", StdDev(xs))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("empty/singleton cases")
	}
}

func TestEMA(t *testing.T) {
	out := EMA([]float64{1, 2, 3}, 0.5)
	if out[0] != 1 || out[1] != 1.5 || out[2] != 2.25 {
		t.Fatalf("EMA %v", out)
	}
	// alpha=1 is identity.
	id := EMA([]float64{3, 1, 4}, 1)
	if id[0] != 3 || id[1] != 1 || id[2] != 4 {
		t.Fatalf("alpha=1 EMA %v", id)
	}
	if len(EMA(nil, 0.5)) != 0 {
		t.Fatal("empty EMA")
	}
}

func TestEMAPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EMA([]float64{1}, 0)
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5} // unsorted on purpose
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("extremes")
	}
	if Quantile(xs, 0.5) != 3 {
		t.Fatalf("median %v", Quantile(xs, 0.5))
	}
	if Quantile(xs, 0.25) != 2 || Quantile(xs, 0.75) != 4 {
		t.Fatal("quartiles")
	}
	// Interpolation: quantile 0.5 of {1,2} is 1.5.
	if Quantile([]float64{2, 1}, 0.5) != 1.5 {
		t.Fatal("interpolation")
	}
	if Quantile([]float64{7}, 0.3) != 7 {
		t.Fatal("singleton")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestBoxStats(t *testing.T) {
	b := BoxStats([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Q1 != 2 || b.Median != 3 || b.Q3 != 4 || b.Max != 5 {
		t.Fatalf("box %+v", b)
	}
	if b.String() == "" {
		t.Fatal("box string")
	}
}

func TestRoundsToTarget(t *testing.T) {
	acc := []float64{0.1, 0.3, 0.5, 0.4, 0.9}
	if RoundsToTarget(acc, 0.5) != 3 {
		t.Fatalf("got %d", RoundsToTarget(acc, 0.5))
	}
	if RoundsToTarget(acc, 0.95) != -1 {
		t.Fatal("unreachable target")
	}
	if RoundsToTarget(acc, 0.05) != 1 {
		t.Fatal("immediate target")
	}
	if RoundsToTarget(nil, 0.5) != -1 {
		t.Fatal("empty series")
	}
}

func TestSummarize(t *testing.T) {
	m := Summarize([]float64{1, 3})
	if m.Mean != 2 || m.N != 2 || m.Std != 1 {
		t.Fatalf("%+v", m)
	}
	if Summarize([]float64{5}).String() != "5" {
		t.Fatalf("singleton string %q", Summarize([]float64{5}).String())
	}
	if Summarize([]float64{1, 3}).String() == "" {
		t.Fatal("string")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: EMA output is bounded by the input range.
func TestEMABounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		xs := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		for _, v := range EMA(xs, 0.3) {
			if v < lo-1e-12 || v > hi+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
