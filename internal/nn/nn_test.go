package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/flops"
	"repro/internal/tensor"
)

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder().Dense(3).Build(1); err == nil {
		t.Fatal("empty input shape accepted")
	}
	if _, err := NewBuilder(-2).Dense(3).Build(1); err == nil {
		t.Fatal("negative input dim accepted")
	}
	if _, err := NewBuilder(4).Build(1); err == nil {
		t.Fatal("layerless model accepted")
	}
	if _, err := NewBuilder(4).Dense(0).Build(1); err == nil {
		t.Fatal("zero-width dense accepted")
	}
	if _, err := NewBuilder(4).Dropout(1.5).Build(1); err == nil {
		t.Fatal("bad dropout p accepted")
	}
	if _, err := NewBuilder(2, 4, 4).Dense(3).Build(1); err == nil {
		t.Fatal("dense on CHW input accepted without Flatten")
	}
	if _, err := NewBuilder(8).Conv2D(2, 3, 1, 0).Flatten().Dense(2).Build(1); err == nil {
		t.Fatal("conv on flat input accepted")
	}
	if _, err := NewBuilder(1, 7, 7).MaxPool2D(2).Flatten().Dense(2).Build(1); err == nil {
		t.Fatal("non-dividing pool accepted")
	}
	if _, err := NewBuilder(1, 8, 8).Conv2D(2, 3, 1, 0).Build(1); err == nil {
		t.Fatal("non-flat output accepted")
	}
}

func TestModelDeterministicInit(t *testing.T) {
	spec := ModelSpec{Arch: ArchMLP, Channels: 1, Height: 8, Width: 8, Classes: 5}
	m1, err := spec.Build(42)
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := spec.Build(42)
	if tensor.MaxAbsDiff(m1.Params(), m2.Params()) != 0 {
		t.Fatal("same seed gave different init")
	}
	m3, _ := spec.Build(43)
	if tensor.MaxAbsDiff(m1.Params(), m3.Params()) == 0 {
		t.Fatal("different seeds gave identical init")
	}
}

func TestSetParamsRoundTrip(t *testing.T) {
	m, err := NewBuilder(4).Dense(3).Build(1)
	if err != nil {
		t.Fatal(err)
	}
	v := m.ParamsCopy()
	for i := range v {
		v[i] = float64(i)
	}
	m.SetParams(v)
	if tensor.MaxAbsDiff(m.Params(), v) != 0 {
		t.Fatal("SetParams did not copy")
	}
	v[0] = 999
	if m.Params()[0] == 999 {
		t.Fatal("SetParams aliased caller slice")
	}
}

func TestZeroGradAccumulation(t *testing.T) {
	m, err := NewBuilder(3).Dense(2).Build(1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x, labels := randBatch(rng, m, 2)
	g1 := analyticGrad(m, x, labels)
	// Backward twice without ZeroGrad must double the gradient.
	m.ZeroGrad()
	for k := 0; k < 2; k++ {
		logits := m.Forward(x, false)
		d := tensor.New(logits.Shape()...)
		SoftmaxCrossEntropy(logits, labels, d)
		m.Backward(d, nil)
	}
	for i := range g1 {
		if math.Abs(m.Grads()[i]-2*g1[i]) > 1e-12 {
			t.Fatalf("grad accumulation wrong at %d: %v vs %v", i, m.Grads()[i], 2*g1[i])
		}
	}
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	// Uniform logits: loss = ln(C), gradient rows sum to 0.
	logits := tensor.New(2, 4)
	d := tensor.New(2, 4)
	loss := SoftmaxCrossEntropy(logits, []int{0, 3}, d)
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Fatalf("uniform loss %v != ln4", loss)
	}
	for i := 0; i < 2; i++ {
		var sum float64
		for j := 0; j < 4; j++ {
			sum += d.At(i, j)
		}
		if math.Abs(sum) > 1e-12 {
			t.Fatalf("gradient row %d sums to %v", i, sum)
		}
	}
	// Gradient at true label must be negative, others positive.
	if d.At(0, 0) >= 0 || d.At(0, 1) <= 0 {
		t.Fatal("gradient signs wrong")
	}
}

func TestSoftmaxStability(t *testing.T) {
	logits := tensor.FromSlice([]float64{1000, 0, -1000}, 1, 3)
	loss := SoftmaxCrossEntropy(logits, []int{0}, nil)
	if math.IsNaN(loss) || math.IsInf(loss, 0) || loss > 1e-6 {
		t.Fatalf("unstable loss %v", loss)
	}
}

func TestSoftmaxPanics(t *testing.T) {
	defer expectPanic(t)
	SoftmaxCrossEntropy(tensor.New(2, 3), []int{0}, nil)
}

func TestSoftmaxLabelRangePanics(t *testing.T) {
	defer expectPanic(t)
	SoftmaxCrossEntropy(tensor.New(1, 3), []int{3}, nil)
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float64{
		1, 2, 0, // argmax 1
		5, 0, 0, // argmax 0
		0, 0, 9, // argmax 2
		7, 0, 0, // argmax 0
	}, 4, 3)
	got := Accuracy(logits, []int{1, 0, 2, 1})
	if got != 0.75 {
		t.Fatalf("accuracy %v", got)
	}
}

func TestDropoutTrainEval(t *testing.T) {
	m, err := NewBuilder(1000).Dropout(0.5).Dense(1).Build(1)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 1000)
	x.Fill(1)
	// Eval mode: dropout is identity, repeated calls deterministic.
	a := m.Forward(x, false).Clone()
	b := m.Forward(x, false)
	if tensor.MaxAbsDiff(a.Data, b.Data) != 0 {
		t.Fatal("eval-mode forward not deterministic")
	}
	// Train mode: some activations change (dropout fired).
	c := m.Forward(x, true)
	if tensor.MaxAbsDiff(a.Data, c.Data) == 0 {
		t.Fatal("train-mode dropout had no effect on 1000 units (p=0.5)")
	}
}

func TestDropoutMaskStatistics(t *testing.T) {
	b := NewBuilder(10000)
	b.Dropout(0.3)
	b.Dense(1)
	m, err := b.Build(7)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 10000)
	x.Fill(1)
	out := m.layers[0].Forward(x, true)
	zeros := 0
	for _, v := range out.Data {
		if v == 0 {
			zeros++
		} else if math.Abs(v-1/0.7) > 1e-12 {
			t.Fatalf("survivor scaled wrong: %v", v)
		}
	}
	frac := float64(zeros) / 10000
	if math.Abs(frac-0.3) > 0.03 {
		t.Fatalf("dropped fraction %v far from 0.3", frac)
	}
}

func TestFeaturesShapeAndCache(t *testing.T) {
	spec := ModelSpec{Arch: ArchMLP, Channels: 1, Height: 4, Width: 4, Classes: 3}
	m, err := spec.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(5, 16)
	m.Forward(x, false)
	f := m.Features()
	if f.Dim(0) != 5 || f.Dim(1) != m.FeatureDim() {
		t.Fatalf("features shape %v, want [5 %d]", f.Shape(), m.FeatureDim())
	}
	if m.FeatureDim() != 100 {
		t.Fatalf("MLP feature dim %d != 100", m.FeatureDim())
	}
}

func TestFeaturesBeforeForwardPanics(t *testing.T) {
	m, _ := NewBuilder(4).Dense(2).Build(1)
	defer expectPanic(t)
	m.Features()
}

func TestFLOPCounterMetersForwardBackward(t *testing.T) {
	m, err := NewBuilder(10).Dense(4).Build(1)
	if err != nil {
		t.Fatal(err)
	}
	var c flops.Counter
	m.SetCounter(&c)
	x := tensor.New(3, 10)
	logits := m.Forward(x, false)
	perSample := m.Cost().Forward
	if got := c.Total(); got != int64(3*perSample) {
		t.Fatalf("forward metered %d want %d", got, int64(3*perSample))
	}
	d := tensor.New(logits.Shape()...)
	SoftmaxCrossEntropy(logits, []int{0, 1, 2}, d)
	m.Backward(d, nil)
	want := int64(3*perSample) + int64(3*2*perSample)
	if got := c.Total(); got != want {
		t.Fatalf("backward metered %d want %d", got, want)
	}
}

func TestModelSpecTableIII(t *testing.T) {
	// The paper's Table III sizes (within tolerance; see DESIGN.md for the
	// params-column typo discussion): MLP ~0.08M params, CNN ~0.06M params,
	// AlexNet ~2-3M params.
	mlp, err := ModelSpec{Arch: ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10}.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	if n := mlp.NumParams(); n != 784*100+100+100*10+10 {
		t.Fatalf("MLP params %d", n)
	}
	cnn, err := ModelSpec{Arch: ArchCNN, Channels: 1, Height: 28, Width: 28, Classes: 10}.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	if n := cnn.NumParams(); n < 55000 || n > 70000 {
		t.Fatalf("CNN params %d outside LeNet5 range", n)
	}
	alex, err := ModelSpec{Arch: ArchAlexNet, Channels: 3, Height: 32, Width: 32, Classes: 10}.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	if n := alex.NumParams(); n < 2_000_000 || n > 3_500_000 {
		t.Fatalf("AlexNet params %d outside paper range", n)
	}
	if alex.Cost().Forward < 50e6 {
		t.Fatalf("AlexNet forward MFLOPs %v implausibly low", alex.Cost().Forward/1e6)
	}
}

func TestModelSpecValidate(t *testing.T) {
	s := ModelSpec{Arch: ArchMLP, Channels: 1, Height: 8, Width: 8, Classes: 10}
	if err := s.Validate(); err != nil || s.Scale != 1 {
		t.Fatalf("default scale not applied: %v %v", err, s.Scale)
	}
	bad := ModelSpec{Arch: ArchMLP, Channels: 1, Height: 8, Width: 8, Classes: 10, Scale: 2}
	if err := bad.Validate(); err == nil {
		t.Fatal("scale > 1 accepted")
	}
	if _, err := (ModelSpec{Arch: "nope", Channels: 1, Height: 8, Width: 8, Classes: 10}).Build(1); err == nil {
		t.Fatal("unknown arch accepted")
	}
	if _, err := (ModelSpec{Arch: ArchMLP, Channels: 1, Height: 8, Width: 8, Classes: 1}).Build(1); err == nil {
		t.Fatal("single-class model accepted")
	}
}

func TestScaledModelSmaller(t *testing.T) {
	full, err := ModelSpec{Arch: ArchCNN, Channels: 1, Height: 28, Width: 28, Classes: 10}.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	half, err := ModelSpec{Arch: ArchCNN, Channels: 1, Height: 28, Width: 28, Classes: 10, Scale: 0.5}.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	if half.NumParams() >= full.NumParams() {
		t.Fatalf("scale 0.5 not smaller: %d vs %d", half.NumParams(), full.NumParams())
	}
	if half.OutDim() != 10 {
		t.Fatal("scaling must not change class count")
	}
}

// Training sanity: a few SGD steps on a separable toy problem must reduce
// the loss.
func TestModelLearnsToyProblem(t *testing.T) {
	m, err := NewBuilder(2).Dense(16).ReLU().Dense(2).Build(3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	n := 64
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cl := i % 2
		labels[i] = cl
		x.Data[i*2] = rng.NormFloat64()*0.3 + float64(cl*2-1)
		x.Data[i*2+1] = rng.NormFloat64() * 0.3
	}
	first := -1.0
	var last float64
	for step := 0; step < 60; step++ {
		m.ZeroGrad()
		logits := m.Forward(x, true)
		d := tensor.New(logits.Shape()...)
		last = SoftmaxCrossEntropy(logits, labels, d)
		if first < 0 {
			first = last
		}
		m.Backward(d, nil)
		tensor.Axpy(-0.5, m.Grads(), m.Params())
	}
	if last > first/4 {
		t.Fatalf("loss did not drop: first %v last %v", first, last)
	}
	if acc := Accuracy(m.Forward(x, false), labels); acc < 0.95 {
		t.Fatalf("toy accuracy %v", acc)
	}
}

func expectPanic(t *testing.T) {
	t.Helper()
	if recover() == nil {
		t.Fatal("expected panic")
	}
}
