// Heterogeneity study: how data skew affects each method.
//
// This example reproduces the spirit of the paper's Fig. 5/6: it runs
// FedTrip, FedAvg, FedProx, and MOON on the same task under increasingly
// skewed partitions (IID, Dir-0.5, Dir-0.1, Orthogonal-5) and prints the
// final accuracy of each, showing how regularization pays off as
// heterogeneity grows.
//
//	go run ./examples/heterogeneity
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/algos"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
)

func main() {
	const (
		clients   = 10
		perClient = 60
		rounds    = 20
	)
	train, test, err := data.Generate(data.Spec{
		Kind: data.KindMNIST, Train: clients * perClient, Test: 300, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	schemes := []partition.Scheme{
		partition.IID(),
		partition.Dirichlet(0.5),
		partition.Dirichlet(0.1),
		partition.Orthogonal(5),
	}
	methods := []string{"fedtrip", "fedavg", "fedprox", "moon"}

	fmt.Printf("%-14s", "scheme")
	for _, m := range methods {
		fmt.Printf("  %-8s", m)
	}
	fmt.Println()
	for _, scheme := range schemes {
		parts, err := partition.Partition(scheme, train.Y, train.Classes,
			clients, perClient, rand.New(rand.NewSource(5)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s", scheme)
		for _, m := range methods {
			algo, err := algos.New(m, algos.Params{Mu: muFor(m)})
			if err != nil {
				log.Fatal(err)
			}
			res, err := core.Run(core.Config{
				Model: nn.ModelSpec{
					Arch: nn.ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10,
				},
				Train: train, Test: test, Parts: parts,
				Rounds: rounds, ClientsPerRound: 4,
				BatchSize: 10, LocalEpochs: 1,
				LR: 0.01, Momentum: 0.9,
				Algo: algo, Seed: 6,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8.4f", res.FinalAccuracy)
		}
		fmt.Println()
	}
	fmt.Println("\n(final accuracy after", rounds, "rounds, MLP; higher is better)")
}

// muFor applies the paper's per-method regularization strengths for MLP.
func muFor(method string) float64 {
	switch method {
	case "fedtrip":
		return 1.0
	case "fedprox":
		return 0.1
	case "moon":
		return 1.0
	default:
		return 0
	}
}
