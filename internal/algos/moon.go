package algos

import (
	"math"

	"repro/internal/core"
	"repro/internal/tensor"
)

// MOON (Li, He, Song — CVPR 2021) is the model-contrastive representation
// method: the local loss gains
//
//	mu * l_con,  l_con = -log( exp(sim(z, z_glob)/tau) /
//	                          (exp(sim(z, z_glob)/tau) + exp(sim(z, z_prev)/tau)) )
//
// where z, z_glob, z_prev are the representations of the current batch
// under the local, global, and previous-local models, and sim is cosine
// similarity. Each batch therefore costs two extra forward passes (the
// (1+p)*FP attaching term of Appendix A with p=1 history model), which is
// what makes MOON resource-hungry relative to FedTrip.
//
// Without autograd, the gradient of l_con with respect to z is computed
// analytically here and injected at the representation boundary via the
// FeatureGradder hook.
type MOON struct {
	core.Base
	// Mu weights the contrastive term (paper: 1.0).
	Mu float64
	// Tau is the temperature (paper: 0.5).
	Tau float64
}

// Name implements core.Algorithm.
func (*MOON) Name() string { return "moon" }

// BeginRound loads the global and previous-local parameters into the
// client's scratch models. At a client's first participation the previous
// model is the global model, under which the contrastive gradient is
// exactly zero (both similarities coincide) — matching MOON's init.
func (m *MOON) BeginRound(c *core.Client, round int, global []float64) {
	gm, pm := c.ScratchModels()
	gm.SetParams(global)
	if c.Hist != nil {
		pm.SetParams(c.Hist)
	} else {
		pm.SetParams(global)
	}
}

// FeatureGrad implements core.FeatureGradder: it runs the two extra
// forward passes and writes mu/N * d l_con/dz into out.
func (m *MOON) FeatureGrad(c *core.Client, x *tensor.Tensor, labels []int, features, out *tensor.Tensor) bool {
	gm, pm := c.ScratchModels()
	gm.Forward(x, false)
	pm.Forward(x, false)
	zg := gm.Features()
	zp := pm.Features()
	n, d := features.Dim(0), features.Dim(1)
	out.Zero()
	scale := m.Mu / float64(n)
	for i := 0; i < n; i++ {
		z := features.Data[i*d : (i+1)*d]
		g := zg.Data[i*d : (i+1)*d]
		p := zp.Data[i*d : (i+1)*d]
		o := out.Data[i*d : (i+1)*d]
		contrastiveGrad(z, g, p, m.Tau, scale, o)
	}
	// The gradient arithmetic itself is O(d) vector work; meter it like
	// the other attaching operations (the dominant 2x forward pass cost
	// was already metered by the scratch models).
	c.Counter.Add(int64(8 * n * d))
	return true
}

// ContrastiveLoss evaluates mu * mean l_con for a batch of representations
// (used by tests to finite-difference check contrastiveGrad).
func (m *MOON) ContrastiveLoss(z, zg, zp *tensor.Tensor) float64 {
	n, d := z.Dim(0), z.Dim(1)
	var sum float64
	for i := 0; i < n; i++ {
		zi := z.Data[i*d : (i+1)*d]
		gi := zg.Data[i*d : (i+1)*d]
		pi := zp.Data[i*d : (i+1)*d]
		sg := cosine(zi, gi) / m.Tau
		sp := cosine(zi, pi) / m.Tau
		mx := math.Max(sg, sp)
		sum += -sg + mx + math.Log(math.Exp(sg-mx)+math.Exp(sp-mx))
	}
	return m.Mu * sum / float64(n)
}

// contrastiveGrad writes scale * d l_con / dz into o for one sample.
func contrastiveGrad(z, zg, zp []float64, tau, scale float64, o []float64) {
	nz := tensor.Norm2(z)
	ng := tensor.Norm2(zg)
	np := tensor.Norm2(zp)
	const eps = 1e-12
	if nz < eps || ng < eps || np < eps {
		return // degenerate representation: no contrastive signal
	}
	cg := tensor.Dot(z, zg) / (nz * ng)
	cp := tensor.Dot(z, zp) / (nz * np)
	sg, sp := cg/tau, cp/tau
	// softmax over {sg, sp}, stable.
	mx := math.Max(sg, sp)
	eg := math.Exp(sg - mx)
	ep := math.Exp(sp - mx)
	sigG := eg / (eg + ep)
	sigP := ep / (eg + ep)
	// dl/dsg = sigG - 1, dl/dsp = sigP; ds/dcos = 1/tau.
	ag := (sigG - 1) / tau
	ap := sigP / tau
	// dcos(z,a)/dz = a/(|z||a|) - cos * z/|z|^2.
	for i := range o {
		dg := zg[i]/(nz*ng) - cg*z[i]/(nz*nz)
		dp := zp[i]/(nz*np) - cp*z[i]/(nz*nz)
		o[i] += scale * (ag*dg + ap*dp)
	}
}

func cosine(a, b []float64) float64 {
	na, nb := tensor.Norm2(a), tensor.Norm2(b)
	if na < 1e-12 || nb < 1e-12 {
		return 0
	}
	return tensor.Dot(a, b) / (na * nb)
}
