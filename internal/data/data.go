// Package data synthesises the image-classification datasets the paper
// evaluates on. The module is built offline, so MNIST / FashionMNIST /
// EMNIST / CIFAR-10 are replaced by procedural class-conditional
// generators that preserve what matters for federated-learning dynamics:
// class structure (a learnable class-conditional signal), per-dataset
// difficulty ordering, and the exact class/channel/dimension layout of
// each original dataset (Table II).
//
// Generation model: each class gets a smooth random "prototype" image
// (coarse Gaussian field, bilinearly upsampled) that is a blend of a
// dataset-shared component and a class-unique component; the blend factor
// sets class separability and therefore task difficulty. A sample is its
// class prototype after a random translation, amplitude jitter, and pixel
// noise — the synthetic analogue of writing-style variation.
package data

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Kind names one of the four paper datasets.
type Kind string

const (
	KindMNIST  Kind = "mnist"
	KindFMNIST Kind = "fmnist"
	KindEMNIST Kind = "emnist"
	KindCIFAR  Kind = "cifar"
)

// Kinds lists the datasets in the paper's Table II order.
func Kinds() []Kind { return []Kind{KindMNIST, KindFMNIST, KindEMNIST, KindCIFAR} }

// params holds the per-kind generation parameters.
type params struct {
	classes, channels, h, w int
	separation              float64 // class-unique blend weight in (0,1]
	noise                   float64 // pixel noise std
	maxShift                int     // translation jitter in pixels
	clientSamples           int     // Table II "Client Samples" column
	totalSamples            int     // Table II "Total Samples" column
}

func kindParams(k Kind) (params, error) {
	switch k {
	case KindMNIST:
		return params{classes: 10, channels: 1, h: 28, w: 28, separation: 0.80, noise: 0.90, maxShift: 2, clientSamples: 600, totalSamples: 60000}, nil
	case KindFMNIST:
		return params{classes: 10, channels: 1, h: 28, w: 28, separation: 0.62, noise: 0.95, maxShift: 2, clientSamples: 1000, totalSamples: 60000}, nil
	case KindEMNIST:
		return params{classes: 47, channels: 1, h: 28, w: 28, separation: 0.68, noise: 0.80, maxShift: 2, clientSamples: 3000, totalSamples: 112800}, nil
	case KindCIFAR:
		return params{classes: 10, channels: 3, h: 32, w: 32, separation: 0.62, noise: 0.75, maxShift: 3, clientSamples: 2000, totalSamples: 50000}, nil
	}
	return params{}, fmt.Errorf("data: unknown dataset kind %q", k)
}

// Stats is one row of the paper's Table II.
type Stats struct {
	Kind          Kind
	TotalSamples  int
	Classes       int
	Channels      int
	Height, Width int
	ClientSamples int
}

// TableII returns the dataset-description row for kind k.
func TableII(k Kind) (Stats, error) {
	p, err := kindParams(k)
	if err != nil {
		return Stats{}, err
	}
	return Stats{Kind: k, TotalSamples: p.totalSamples, Classes: p.classes, Channels: p.channels, Height: p.h, Width: p.w, ClientSamples: p.clientSamples}, nil
}

// Spec configures dataset synthesis.
type Spec struct {
	Kind Kind
	// Train and Test sample counts. Zero selects the per-kind defaults
	// scaled to SizeScale.
	Train, Test int
	// Seed makes generation deterministic.
	Seed int64
}

// Dataset is an in-memory labelled image set, row-major [N, C*H*W].
type Dataset struct {
	Kind          Kind
	Classes       int
	Channels      int
	Height, Width int
	X             []float64
	Y             []int
}

// SampleSize returns C*H*W.
func (d *Dataset) SampleSize() int { return d.Channels * d.Height * d.Width }

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// Generate synthesises train and test sets that share class prototypes
// (so a model trained on train generalises to test exactly when it learned
// the class signal, not the noise).
func Generate(spec Spec) (train, test *Dataset, err error) {
	p, err := kindParams(spec.Kind)
	if err != nil {
		return nil, nil, err
	}
	nTrain, nTest := spec.Train, spec.Test
	if nTrain <= 0 {
		nTrain = p.totalSamples
	}
	if nTest <= 0 {
		nTest = nTrain / 6
		if nTest < p.classes*10 {
			nTest = p.classes * 10
		}
	}
	rng := rand.New(rand.NewSource(spec.Seed)) //fedtripvet:allow dataset synthesis is pinned by the spec's own seed, outside any run's stream space
	protos := makePrototypes(rng, p)
	train = synthesise(rng, p, spec.Kind, protos, nTrain)
	test = synthesise(rng, p, spec.Kind, protos, nTest)
	return train, test, nil
}

// makePrototypes builds one smooth prototype image per class: a blend of a
// shared field (common to all classes) and a class-unique field.
func makePrototypes(rng *rand.Rand, p params) [][]float64 { //fedtripvet:allow rng is the spec-seeded synthesis generator threaded from Load
	size := p.channels * p.h * p.w
	shared := smoothField(rng, p.channels, p.h, p.w)
	protos := make([][]float64, p.classes)
	common := 1 - p.separation
	for c := range protos {
		unique := smoothField(rng, p.channels, p.h, p.w)
		img := make([]float64, size)
		for i := range img {
			img[i] = common*shared[i] + p.separation*unique[i]
		}
		protos[c] = img
	}
	return protos
}

// smoothField samples a coarse Gaussian grid and bilinearly upsamples it,
// producing a band-limited random image per channel (so small translations
// change pixels smoothly, as in natural images).
func smoothField(rng *rand.Rand, channels, h, w int) []float64 { //fedtripvet:allow rng is the spec-seeded synthesis generator threaded from Load
	const coarse = 7
	out := make([]float64, channels*h*w)
	grid := make([]float64, (coarse+1)*(coarse+1))
	for c := 0; c < channels; c++ {
		for i := range grid {
			grid[i] = rng.NormFloat64()
		}
		base := c * h * w
		for y := 0; y < h; y++ {
			fy := float64(y) / float64(h-1) * float64(coarse-1)
			y0 := int(fy)
			ty := fy - float64(y0)
			for x := 0; x < w; x++ {
				fx := float64(x) / float64(w-1) * float64(coarse-1)
				x0 := int(fx)
				tx := fx - float64(x0)
				v00 := grid[y0*(coarse+1)+x0]
				v01 := grid[y0*(coarse+1)+x0+1]
				v10 := grid[(y0+1)*(coarse+1)+x0]
				v11 := grid[(y0+1)*(coarse+1)+x0+1]
				out[base+y*w+x] = (1-ty)*((1-tx)*v00+tx*v01) + ty*((1-tx)*v10+tx*v11)
			}
		}
	}
	return out
}

func synthesise(rng *rand.Rand, p params, kind Kind, protos [][]float64, n int) *Dataset { //fedtripvet:allow rng is the spec-seeded synthesis generator threaded from Load
	size := p.channels * p.h * p.w
	d := &Dataset{
		Kind: kind, Classes: p.classes, Channels: p.channels,
		Height: p.h, Width: p.w,
		X: make([]float64, n*size),
		Y: make([]int, n),
	}
	for i := 0; i < n; i++ {
		cls := rng.Intn(p.classes)
		d.Y[i] = cls
		dst := d.X[i*size : (i+1)*size]
		dx := rng.Intn(2*p.maxShift+1) - p.maxShift
		dy := rng.Intn(2*p.maxShift+1) - p.maxShift
		amp := 1 + 0.2*rng.NormFloat64()
		shiftInto(dst, protos[cls], p.channels, p.h, p.w, dx, dy, amp)
		for j := range dst {
			dst[j] += rng.NormFloat64() * p.noise
		}
	}
	return d
}

// shiftInto writes amp * translate(src, dx, dy) into dst, zero-padding
// pixels shifted in from outside.
func shiftInto(dst, src []float64, channels, h, w, dx, dy int, amp float64) {
	for c := 0; c < channels; c++ {
		base := c * h * w
		for y := 0; y < h; y++ {
			sy := y - dy
			for x := 0; x < w; x++ {
				sx := x - dx
				if sy < 0 || sy >= h || sx < 0 || sx >= w {
					dst[base+y*w+x] = 0
				} else {
					dst[base+y*w+x] = amp * src[base+sy*w+sx]
				}
			}
		}
	}
}

// FillBatch copies the samples at idx into x (shape [len(idx), C, H, W] or
// [len(idx), C*H*W]) and their labels into labels.
func (d *Dataset) FillBatch(x *tensor.Tensor, labels []int, idx []int) {
	size := d.SampleSize()
	if x.Numel() != len(idx)*size {
		panic(fmt.Sprintf("data: batch tensor %v cannot hold %d samples of %d", x.Shape(), len(idx), size))
	}
	if len(labels) != len(idx) {
		panic("data: labels length mismatch")
	}
	for bi, si := range idx {
		if si < 0 || si >= d.Len() {
			panic(fmt.Sprintf("data: sample index %d out of range [0,%d)", si, d.Len()))
		}
		copy(x.Data[bi*size:(bi+1)*size], d.X[si*size:(si+1)*size])
		labels[bi] = d.Y[si]
	}
}

// ClassCounts returns how many samples of each class the index subset
// contains (all samples when idx is nil).
func (d *Dataset) ClassCounts(idx []int) []int {
	counts := make([]int, d.Classes)
	if idx == nil {
		for _, y := range d.Y {
			counts[y]++
		}
		return counts
	}
	for _, i := range idx {
		counts[d.Y[i]]++
	}
	return counts
}
