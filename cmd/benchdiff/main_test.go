package main

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestDiff(t *testing.T) {
	old := []Benchmark{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 100, "allocs/op": 10}},
		{Name: "BenchmarkGone", Metrics: map[string]float64{"ns/op": 5}},
	}
	cur := []Benchmark{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 150, "allocs/op": 10, "updates/sec": 3}},
		{Name: "BenchmarkNew", Metrics: map[string]float64{"ns/op": 7}},
	}
	rows := Diff(old, cur)
	// BenchmarkA: ns/op and allocs/op compared (updates/sec missing in
	// old), then BenchmarkGone removed, BenchmarkNew added — sorted by
	// name.
	if len(rows) != 4 {
		t.Fatalf("rows %d: %+v", len(rows), rows)
	}
	if rows[0].Name != "BenchmarkA" || rows[0].Metric != "ns/op" || math.Abs(rows[0].Delta-50) > 1e-9 {
		t.Fatalf("ns/op row %+v", rows[0])
	}
	if rows[1].Metric != "allocs/op" || rows[1].Delta != 0 {
		t.Fatalf("allocs/op row %+v", rows[1])
	}
	if rows[2].Name != "BenchmarkGone" || rows[2].Status != "removed" {
		t.Fatalf("removed row %+v", rows[2])
	}
	if rows[3].Name != "BenchmarkNew" || rows[3].Status != "added" {
		t.Fatalf("added row %+v", rows[3])
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	rows := Diff(
		[]Benchmark{{Name: "B", Metrics: map[string]float64{"ns/op": 0}}},
		[]Benchmark{{Name: "B", Metrics: map[string]float64{"ns/op": 9}}},
	)
	if len(rows) != 1 || !math.IsInf(rows[0].Delta, 1) {
		t.Fatalf("zero-baseline rows %+v", rows)
	}
}

func TestRender(t *testing.T) {
	var buf bytes.Buffer
	Render(&buf, Diff(
		[]Benchmark{{Name: "BenchmarkX", Metrics: map[string]float64{"ns/op": 200}}},
		[]Benchmark{{Name: "BenchmarkX", Metrics: map[string]float64{"ns/op": 100}}},
	))
	out := buf.String()
	for _, frag := range []string{"BenchmarkX", "ns/op", "-50.0%"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}
	buf.Reset()
	Render(&buf, nil)
	if !strings.Contains(buf.String(), "no comparable benchmarks") {
		t.Fatalf("empty render %q", buf.String())
	}
}

func TestMergeBaselineBestOfHistory(t *testing.T) {
	h1 := []Benchmark{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 100, "updates/sec": 50}},
		{Name: "BenchmarkOld", Metrics: map[string]float64{"ns/op": 1}},
	}
	h2 := []Benchmark{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 120, "updates/sec": 80, "allocs/op": 4}},
	}
	base := MergeBaseline([][]Benchmark{h1, h2})
	if len(base) != 2 {
		t.Fatalf("baseline %d entries: %+v", len(base), base)
	}
	a := base[0]
	if a.Name != "BenchmarkA" {
		t.Fatalf("order: %+v", base)
	}
	// ns/op: lower is better -> 100; updates/sec: higher is better -> 80;
	// allocs/op present only once -> 4.
	if a.Metrics["ns/op"] != 100 || a.Metrics["updates/sec"] != 80 || a.Metrics["allocs/op"] != 4 {
		t.Fatalf("baseline metrics %+v", a.Metrics)
	}
}

func TestRegressionsGateOnlyCostMetrics(t *testing.T) {
	rows := []DiffRow{
		{Name: "BenchmarkA", Metric: "ns/op", Delta: 25},        // regression
		{Name: "BenchmarkA", Metric: "allocs/op", Delta: 5},     // within threshold
		{Name: "BenchmarkA", Metric: "B/op", Delta: 400},        // not gated
		{Name: "BenchmarkA", Metric: "updates/sec", Delta: -90}, // not gated
		{Name: "BenchmarkB", Metric: "ns/op", Delta: -50},       // improvement
		{Name: "BenchmarkC", Status: "added"},
	}
	gate, err := parseGate(defaultGate)
	if err != nil {
		t.Fatal(err)
	}
	bad := Regressions(rows, 20, gate)
	if len(bad) != 1 || bad[0].Name != "BenchmarkA" || bad[0].Metric != "ns/op" {
		t.Fatalf("regressions %+v", bad)
	}
	if got := Regressions(rows, 30, gate); len(got) != 0 {
		t.Fatalf("threshold 30 should pass, got %+v", got)
	}
}

// The -gate flag narrows which metrics can fail the build: CI gates on
// allocs/op alone, so a noisy ns/op swing on a shared runner passes
// while an allocation regression still exits non-zero.
func TestGateNarrowsGatedMetrics(t *testing.T) {
	rows := []DiffRow{
		{Name: "BenchmarkA", Metric: "ns/op", Delta: 80},    // noisy runner swing
		{Name: "BenchmarkA", Metric: "allocs/op", Delta: 3}, // real regression
	}
	gate, err := parseGate("allocs/op")
	if err != nil {
		t.Fatal(err)
	}
	if got := Regressions(rows, 20, gate); len(got) != 0 {
		t.Fatalf("allocs-only gate flagged %+v", got)
	}
	bad := Regressions(rows, 1, gate)
	if len(bad) != 1 || bad[0].Metric != "allocs/op" {
		t.Fatalf("allocs-only gate missed the allocation regression: %+v", bad)
	}
	for _, spec := range []string{"", "bogus/op", "allocs/op,nope"} {
		if _, err := parseGate(spec); err == nil {
			t.Errorf("parseGate(%q) accepted", spec)
		}
	}
	if g, err := parseGate(" allocs/op , ns/op "); err != nil || !g["allocs/op"] || !g["ns/op"] || len(g) != 2 {
		t.Fatalf("parseGate with spaces = %v, %v", g, err)
	}
}

// CI's actual gate: allocs/op plus the transport benchmarks' commB/op.
// A wire-format regression (encoded bytes grew) must fail even when
// every timing metric is flat, and a flat commB/op must pass next to a
// noisy ns/op swing.
func TestGateCommBytes(t *testing.T) {
	gate, err := parseGate("allocs/op,commB/op")
	if err != nil {
		t.Fatal(err)
	}
	rows := Diff(
		[]Benchmark{
			{Name: "BenchmarkTransportTopKEF", Metrics: map[string]float64{"ns/op": 100, "allocs/op": 11, "commB/op": 163220}},
			{Name: "BenchmarkTransportF32", Metrics: map[string]float64{"ns/op": 100, "allocs/op": 37, "commB/op": 320024}},
		},
		[]Benchmark{
			// Sparsifier now keeps more entries: bytes up 9%, timings flat.
			{Name: "BenchmarkTransportTopKEF", Metrics: map[string]float64{"ns/op": 100, "allocs/op": 11, "commB/op": 177910}},
			// Noisy runner: ns/op doubles, wire bytes identical.
			{Name: "BenchmarkTransportF32", Metrics: map[string]float64{"ns/op": 200, "allocs/op": 37, "commB/op": 320024}},
		},
	)
	bad := Regressions(rows, 2, gate)
	if len(bad) != 1 || bad[0].Name != "BenchmarkTransportTopKEF" || bad[0].Metric != "commB/op" {
		t.Fatalf("comm gate = %+v, want the top-k wire-size regression alone", bad)
	}
}

// events/s is higher-is-better: the gate trips on decreases and ignores
// increases — the exact opposite direction of the cost metrics.
func TestRegressionsEventsPerSecBothDirections(t *testing.T) {
	gate, err := parseGate("events/s")
	if err != nil {
		t.Fatal(err)
	}
	old := []Benchmark{{Name: "BenchmarkAsync1MClients", Metrics: map[string]float64{"events/s": 1000}}}

	slower := Diff(old, []Benchmark{{Name: "BenchmarkAsync1MClients", Metrics: map[string]float64{"events/s": 970}}})
	bad := Regressions(slower, 2, gate)
	if len(bad) != 1 || bad[0].Metric != "events/s" {
		t.Fatalf("events/s -3%% must trip the 2%% gate, got %+v", bad)
	}

	faster := Diff(old, []Benchmark{{Name: "BenchmarkAsync1MClients", Metrics: map[string]float64{"events/s": 1030}}})
	if bad := Regressions(faster, 2, gate); len(bad) != 0 {
		t.Fatalf("events/s +3%% is an improvement, not a regression: %+v", bad)
	}
}

// B/client is lower-is-better and deterministic: growth past the
// threshold fails, shrinkage passes. This is the scale trajectory's
// compact-state gate.
func TestRegressionsBytesPerClientBothDirections(t *testing.T) {
	gate, err := parseGate("allocs/op,commB/op,B/client")
	if err != nil {
		t.Fatal(err)
	}
	old := []Benchmark{{Name: "BenchmarkAsync100kClients", Metrics: map[string]float64{"B/client": 216}}}

	grown := Diff(old, []Benchmark{{Name: "BenchmarkAsync100kClients", Metrics: map[string]float64{"B/client": 224}}})
	bad := Regressions(grown, 2, gate)
	if len(bad) != 1 || bad[0].Metric != "B/client" {
		t.Fatalf("B/client 216->224 must trip the 2%% gate, got %+v", bad)
	}

	shrunk := Diff(old, []Benchmark{{Name: "BenchmarkAsync100kClients", Metrics: map[string]float64{"B/client": 208}}})
	if bad := Regressions(shrunk, 2, gate); len(bad) != 0 {
		t.Fatalf("B/client 216->208 is an improvement, not a regression: %+v", bad)
	}
}

// The history baseline folds events/s by maximum, like updates/sec.
func TestMergeBaselineEventsPerSec(t *testing.T) {
	base := MergeBaseline([][]Benchmark{
		{{Name: "B", Metrics: map[string]float64{"events/s": 900, "B/client": 220}}},
		{{Name: "B", Metrics: map[string]float64{"events/s": 1100, "B/client": 216}}},
		{{Name: "B", Metrics: map[string]float64{"events/s": 1000, "B/client": 218}}},
	})
	if len(base) != 1 {
		t.Fatalf("baseline %+v", base)
	}
	if base[0].Metrics["events/s"] != 1100 {
		t.Fatalf("events/s baseline %v, want the maximum 1100", base[0].Metrics["events/s"])
	}
	if base[0].Metrics["B/client"] != 216 {
		t.Fatalf("B/client baseline %v, want the minimum 216", base[0].Metrics["B/client"])
	}
}
