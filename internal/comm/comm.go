// Package comm provides a realistic client-server transport for the FL
// runtime: every model transfer is actually marshalled to the float32 wire
// format the paper's communication columns assume (internal/tensor's
// versioned binary encoding), then unmarshalled on the receiving side.
// This makes two things real instead of analytic:
//
//   - byte accounting: Stats counts the exact encoded bytes that crossed
//     the "network", per direction;
//   - quantization: clients and server genuinely see float32-rounded
//     parameters, so transport precision effects show up in accuracy.
//
// Install with core.Config.Transport = comm.NewF32Transport().
package comm

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"repro/internal/tensor"
)

// Stats counts transport traffic. Safe for concurrent use.
type Stats struct {
	downBytes atomic.Int64
	upBytes   atomic.Int64
	downMsgs  atomic.Int64
	upMsgs    atomic.Int64
}

// DownBytes returns total server->client bytes.
func (s *Stats) DownBytes() int64 { return s.downBytes.Load() }

// UpBytes returns total client->server bytes.
func (s *Stats) UpBytes() int64 { return s.upBytes.Load() }

// TotalBytes returns traffic in both directions.
func (s *Stats) TotalBytes() int64 { return s.DownBytes() + s.UpBytes() }

// Messages returns the number of transfers in each direction.
func (s *Stats) Messages() (down, up int64) {
	return s.downMsgs.Load(), s.upMsgs.Load()
}

// String renders a compact summary.
func (s *Stats) String() string {
	d, u := s.Messages()
	return fmt.Sprintf("down %.2f MB (%d msgs), up %.2f MB (%d msgs)",
		float64(s.DownBytes())/1e6, d, float64(s.UpBytes())/1e6, u)
}

// F32Transport implements core.Transport by round-tripping every vector
// through the float32 wire encoding.
type F32Transport struct {
	stats Stats
}

// NewF32Transport returns a transport with fresh counters.
func NewF32Transport() *F32Transport { return &F32Transport{} }

// String names the transport for run fingerprints and banners.
func (t *F32Transport) String() string { return "f32" }

// Stats exposes the traffic counters.
func (t *F32Transport) Stats() *Stats { return &t.stats }

// WireBytes implements core.MeteredTransport: the runtime records these
// measured bytes in Result.CommBytesByRound instead of the analytic
// formula.
func (t *F32Transport) WireBytes() (down, up int64) {
	return t.stats.DownBytes(), t.stats.UpBytes()
}

func (t *F32Transport) roundTrip(v []float64) []float64 {
	var buf bytes.Buffer
	if err := tensor.WriteVectorF32(&buf, v); err != nil {
		// bytes.Buffer writes cannot fail; an error here is programmer
		// error in the encoder.
		panic(fmt.Sprintf("comm: encode: %v", err))
	}
	out, err := tensor.ReadVectorF32(&buf)
	if err != nil {
		panic(fmt.Sprintf("comm: decode: %v", err))
	}
	return out
}

// Down implements core.Transport.
//
//fedtripvet:hotpath
func (t *F32Transport) Down(clientID, round int, global []float64) []float64 {
	out := t.roundTrip(global)
	t.stats.downBytes.Add(tensor.VectorWireSizeF32(len(global)))
	t.stats.downMsgs.Add(1)
	return out
}

// Up implements core.Transport.
//
//fedtripvet:hotpath
func (t *F32Transport) Up(clientID, round int, params []float64) []float64 {
	out := t.roundTrip(params)
	t.stats.upBytes.Add(tensor.VectorWireSizeF32(len(params)))
	t.stats.upMsgs.Add(1)
	return out
}

// DownSized implements core.SizedTransport: the runtime prices each
// dispatch's network time from these per-transfer bytes.
//
//fedtripvet:hotpath
func (t *F32Transport) DownSized(clientID, round int, global []float64) ([]float64, int64) {
	return t.Down(clientID, round, global), tensor.VectorWireSizeF32(len(global))
}

// UpSized implements core.SizedTransport.
//
//fedtripvet:hotpath
func (t *F32Transport) UpSized(clientID, round int, params []float64) ([]float64, int64) {
	return t.Up(clientID, round, params), tensor.VectorWireSizeF32(len(params))
}

// LosslessTransport is the identity transport with byte accounting at
// float64 width — useful to compare the cost of full-precision shipping.
type LosslessTransport struct {
	stats Stats
}

// NewLosslessTransport returns an identity transport with counters.
func NewLosslessTransport() *LosslessTransport { return &LosslessTransport{} }

// String names the transport for run fingerprints and banners.
func (t *LosslessTransport) String() string { return "lossless" }

// Stats exposes the traffic counters.
func (t *LosslessTransport) Stats() *Stats { return &t.stats }

// WireBytes implements core.MeteredTransport.
func (t *LosslessTransport) WireBytes() (down, up int64) {
	return t.stats.DownBytes(), t.stats.UpBytes()
}

// Down implements core.Transport.
//
//fedtripvet:hotpath
func (t *LosslessTransport) Down(clientID, round int, global []float64) []float64 {
	t.stats.downBytes.Add(int64(8 * len(global)))
	t.stats.downMsgs.Add(1)
	return global
}

// Up implements core.Transport.
//
//fedtripvet:hotpath
func (t *LosslessTransport) Up(clientID, round int, params []float64) []float64 {
	t.stats.upBytes.Add(int64(8 * len(params)))
	t.stats.upMsgs.Add(1)
	return params
}

// DownSized implements core.SizedTransport.
func (t *LosslessTransport) DownSized(clientID, round int, global []float64) ([]float64, int64) {
	return t.Down(clientID, round, global), int64(8 * len(global))
}

// UpSized implements core.SizedTransport.
func (t *LosslessTransport) UpSized(clientID, round int, params []float64) ([]float64, int64) {
	return t.Up(clientID, round, params), int64(8 * len(params))
}
