// Network heterogeneity: per-client bandwidth/RTT profiles that price
// communication in simulated time.
//
// Device profiles (device.go) made *compute* a priced resource: a
// dispatch's duration derives from its metered FLOPs. This file does the
// same for the *network*. A NetDistribution samples one NetProfile per
// client at fleet construction — uplink and downlink bandwidth plus a
// round-trip latency — and the async runtimes add, on top of each
// dispatch's compute (or latency-model) duration, the time its transfers
// actually took:
//
//	rtt + downBytes*8/downBps + upBytes*8/upBps
//
// where downBytes/upBytes are the bytes the configured Transport really
// moved for that dispatch (a SizedTransport reports exact encoded sizes;
// without one the analytic float32 accounting is used). Compression
// therefore genuinely buys simulated time, not just smaller comm columns.
//
// Profiles draw from a dedicated named seed stream (streamNet), so
// enabling them never perturbs the selection, latency, device, or churn
// streams — and an infinite-bandwidth zero-RTT fleet reproduces the
// unpriced trajectory bit-for-bit (pinned by
// TestInfiniteBandwidthMatchesPlainAsync).
package core

import (
	"fmt"
	"math"

	"repro/internal/prng"
)

// Bandwidths are clamped at sampling time so a heavy-tailed draw cannot
// mint a client whose transfer time is effectively infinite. +Inf is
// allowed explicitly (the unpriced reference link); zero and negative
// draws are floored.
const minNetMbps = 0.01

// NetProfile is one client's link: bandwidths in bits per simulated
// second and round-trip time in simulated seconds. Infinite bandwidth
// and zero RTT (the zero cost profile) price every transfer at 0.
type NetProfile struct {
	UpBps, DownBps float64
	RTT            float64
}

// transferTime prices one dispatch's wire traffic under this profile.
func (p NetProfile) transferTime(downBytes, upBytes int64) float64 {
	return p.RTT + float64(downBytes)*8/p.DownBps + float64(upBytes)*8/p.UpBps
}

// NetDistribution samples per-client network profiles. SampleNet must
// draw all randomness from the supplied rng; the runtime samples every
// client once at construction from a dedicated seed stream, in
// client-ID order. Implementations take bandwidths in Mbps and RTTs in
// milliseconds (the CLI units) and return profiles in base units.
type NetDistribution interface {
	SampleNet(clientID int, rng *prng.Rand) NetProfile
	String() string
}

// netProfile converts CLI units (Mbps, ms) into a NetProfile in base
// units, flooring finite bandwidths at minNetMbps.
func netProfile(upMbps, downMbps, rttMs float64) NetProfile {
	clamp := func(mbps float64) float64 {
		if math.IsInf(mbps, 1) {
			return mbps
		}
		if mbps < minNetMbps {
			mbps = minNetMbps
		}
		return mbps * 1e6
	}
	if rttMs < 0 {
		rttMs = 0
	}
	return NetProfile{UpBps: clamp(upMbps), DownBps: clamp(downMbps), RTT: rttMs / 1000}
}

// ConstNet gives every client the same link. const:inf,inf,0 is the
// zero-cost reference fleet.
type ConstNet struct{ Up, Down, RTT float64 } // Mbps, Mbps, ms

func (d ConstNet) SampleNet(int, *prng.Rand) NetProfile {
	return netProfile(d.Up, d.Down, d.RTT)
}
func (d ConstNet) String() string { return fmt.Sprintf("const:%g,%g,%g", d.Up, d.Down, d.RTT) }

// UniformNet draws uplink and downlink bandwidth independently and
// uniformly from [Min, Max] Mbps (uplink first), with a fixed RTT.
type UniformNet struct{ Min, Max, RTT float64 }

func (d UniformNet) SampleNet(_ int, rng *prng.Rand) NetProfile {
	up := d.Min + rng.Float64()*(d.Max-d.Min)
	down := d.Min + rng.Float64()*(d.Max-d.Min)
	return netProfile(up, down, d.RTT)
}
func (d UniformNet) String() string { return fmt.Sprintf("uniform:%g,%g,%g", d.Min, d.Max, d.RTT) }

// LognormalNet draws each direction's bandwidth as exp(Mu + Sigma*N(0,1))
// Mbps (uplink first) — the heavy-tailed link spread of real fleets —
// with a fixed RTT.
type LognormalNet struct{ Mu, Sigma, RTT float64 }

func (d LognormalNet) SampleNet(_ int, rng *prng.Rand) NetProfile {
	up := math.Exp(d.Mu + d.Sigma*rng.NormFloat64())
	down := math.Exp(d.Mu + d.Sigma*rng.NormFloat64())
	return netProfile(up, down, d.RTT)
}
func (d LognormalNet) String() string {
	return fmt.Sprintf("lognormal:%g,%g,%g", d.Mu, d.Sigma, d.RTT)
}

// NetTier is one slice of a TieredNet fleet: Frac of the clients get the
// (Up, Down, RTT) link.
type NetTier struct{ Up, Down, RTT, Frac float64 }

// TieredNet assigns each client to a link tier by fraction — the
// edge/mobile/server split of the device tiers applied to the network.
// Fractions are normalized at sampling time.
type TieredNet struct{ Tiers []NetTier }

// DefaultNetTiers is the canonical three-tier fleet, mirroring
// DefaultTiers' fractions: 30% constrained edge links (5 Mbps up, 20
// down, 80 ms), 60% mobile (20 up, 50 down, 40 ms), 10% server-class
// (1000/1000, 5 ms).
func DefaultNetTiers() TieredNet {
	return TieredNet{Tiers: []NetTier{
		{Up: 5, Down: 20, RTT: 80, Frac: 0.3},
		{Up: 20, Down: 50, RTT: 40, Frac: 0.6},
		{Up: 1000, Down: 1000, RTT: 5, Frac: 0.1},
	}}
}

func (d TieredNet) SampleNet(_ int, rng *prng.Rand) NetProfile {
	var total float64
	for _, t := range d.Tiers {
		total += t.Frac
	}
	u := rng.Float64() * total
	pick := d.Tiers[len(d.Tiers)-1]
	for _, t := range d.Tiers {
		u -= t.Frac
		if u < 0 {
			pick = t
			break
		}
	}
	return netProfile(pick.Up, pick.Down, pick.RTT)
}

func (d TieredNet) String() string {
	s := "tiered"
	for i, t := range d.Tiers {
		if i == 0 {
			s += ":"
		} else {
			s += ","
		}
		s += fmt.Sprintf("%g,%g,%g,%g", t.Up, t.Down, t.RTT, t.Frac)
	}
	return s
}

// ParseNetDist parses a CLI bandwidth-distribution spec. Bandwidths are
// in Mbps ("inf" accepted — an unpriced direction), RTTs in
// milliseconds:
//
//	none                      no network pricing (free communication)
//	const:UP,DOWN[,RTT]       every client the same link (RTT default 0)
//	uniform:MIN,MAX[,RTT]     each direction uniform in [MIN, MAX] Mbps
//	lognormal:MU,SIGMA[,RTT]  each direction exp(MU + SIGMA*N(0,1)) Mbps
//	tiered                    the default edge/mobile/server link fleet
//	tiered:UP,DOWN,RTT,FRAC,...  custom link tiers (quadruples)
func ParseNetDist(spec string) (NetDistribution, error) {
	name, args, err := parseSpec(spec, "bandwidth-dist")
	if err != nil {
		return nil, err
	}
	optRTT := func(min int) (float64, error) {
		switch len(args) {
		case min:
			return 0, nil
		case min + 1:
			if args[min] < 0 {
				return 0, fmt.Errorf("core: bandwidth-dist %s RTT %g must be >= 0", name, args[min])
			}
			return args[min], nil
		}
		return 0, fmt.Errorf("core: bandwidth-dist %s wants %d or %d args, got %d", name, min, min+1, len(args))
	}
	switch name {
	case "", "none":
		if len(args) != 0 {
			return nil, fmt.Errorf("core: bandwidth-dist %q takes no args", name)
		}
		return nil, nil
	case "const":
		rtt, err := optRTT(2)
		if err != nil {
			return nil, err
		}
		if args[0] <= 0 || args[1] <= 0 {
			return nil, fmt.Errorf("core: const bandwidths want positive Mbps, got %g,%g", args[0], args[1])
		}
		return ConstNet{Up: args[0], Down: args[1], RTT: rtt}, nil
	case "uniform":
		rtt, err := optRTT(2)
		if err != nil {
			return nil, err
		}
		if args[0] <= 0 || args[1] < args[0] || math.IsInf(args[1], 1) {
			return nil, fmt.Errorf("core: uniform bandwidths want 0 < min <= max < inf, got [%g,%g]", args[0], args[1])
		}
		return UniformNet{Min: args[0], Max: args[1], RTT: rtt}, nil
	case "lognormal":
		rtt, err := optRTT(2)
		if err != nil {
			return nil, err
		}
		if args[1] < 0 || !isFiniteF(args[0]) || !isFiniteF(args[1]) {
			return nil, fmt.Errorf("core: lognormal bandwidth wants finite mu and sigma >= 0, got %g,%g", args[0], args[1])
		}
		return LognormalNet{Mu: args[0], Sigma: args[1], RTT: rtt}, nil
	case "tiered":
		if len(args) == 0 {
			return DefaultNetTiers(), nil
		}
		if len(args)%4 != 0 {
			return nil, fmt.Errorf("core: tiered bandwidth-dist wants up,down,rtt,fraction quadruples, got %d args", len(args))
		}
		d := TieredNet{}
		for i := 0; i < len(args); i += 4 {
			up, down, rtt, frac := args[i], args[i+1], args[i+2], args[i+3]
			if up <= 0 || down <= 0 || rtt < 0 || frac <= 0 {
				return nil, fmt.Errorf("core: tiered bandwidth-dist wants positive bandwidths and fractions and rtt >= 0, got %g,%g,%g,%g", up, down, rtt, frac)
			}
			d.Tiers = append(d.Tiers, NetTier{Up: up, Down: down, RTT: rtt, Frac: frac})
		}
		return d, nil
	}
	return nil, fmt.Errorf("core: unknown bandwidth distribution %q (none|const|uniform|lognormal|tiered)", name)
}

func isFiniteF(v float64) bool { return !math.IsInf(v, 0) && !math.IsNaN(v) }

// clientNetProfile derives client id's link statelessly from the id-th
// instance of the network stream. scratch is re-seeded in place, so a
// lookup allocates nothing; the same id always yields the same profile,
// which is what lets the runtime drop the fleet-wide profile array.
func clientNetProfile(id int, dist NetDistribution, seed int64, scratch *prng.Rand) NetProfile {
	scratch.Reseed(streamSeed(seed, streamNet, id))
	return dist.SampleNet(id, scratch)
}

// sampleNetProfiles materializes the per-ID rule for a whole fleet — a
// test/diagnostic helper; the runtime derives profiles on demand instead.
func sampleNetProfiles(n int, dist NetDistribution, seed int64) []NetProfile {
	var scratch prng.Rand
	profiles := make([]NetProfile, n)
	for id := 0; id < n; id++ {
		profiles[id] = clientNetProfile(id, dist, seed, &scratch)
	}
	return profiles
}
