package tsne

import (
	"math/rand"
	"testing"
)

// BenchmarkEmbed150 measures the Fig. 2 workload: t-SNE of 150 points in
// 84 dimensions (the CNN's representation width).
func BenchmarkEmbed150(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, dim := 150, 84
	x := make([]float64, n*dim)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Embed(x, n, dim, Config{Iters: 250, Seed: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSilhouette measures the separability metric on the same
// workload.
func BenchmarkSilhouette(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n, dim := 150, 84
	x := make([]float64, n*dim)
	labels := make([]int, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range labels {
		labels[i] = i % 10
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Silhouette(x, labels, n, dim); err != nil {
			b.Fatal(err)
		}
	}
}
