package algos

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/tensor"
)

// The distillation gradient must match finite differences of DistillLoss
// with respect to the student logits.
func TestFedGKDGradientMatchesLoss(t *testing.T) {
	f := &FedGKD{Gamma: 0.7, Tau: 2}
	rng := rand.New(rand.NewSource(3))
	n, k := 5, 8
	student := tensor.New(n, k)
	teacher := tensor.New(n, k)
	student.RandNormal(rng, 1)
	teacher.RandNormal(rng, 1)

	// Analytic gradient via the same code path LogitGrad uses.
	grad := tensor.New(n, k)
	scale := f.Gamma * f.Tau / float64(n)
	pS := make([]float64, k)
	pT := make([]float64, k)
	for i := 0; i < n; i++ {
		softmaxInto(student.Data[i*k:(i+1)*k], f.Tau, pS)
		softmaxInto(teacher.Data[i*k:(i+1)*k], f.Tau, pT)
		for j := 0; j < k; j++ {
			grad.Data[i*k+j] = scale * (pS[j] - pT[j])
		}
	}
	const h = 1e-6
	for probe := 0; probe < 40; probe++ {
		i := rng.Intn(n * k)
		orig := student.Data[i]
		student.Data[i] = orig + h
		lp := f.DistillLoss(student, teacher)
		student.Data[i] = orig - h
		lm := f.DistillLoss(student, teacher)
		student.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-grad.Data[i]) > 1e-5*math.Max(1, math.Abs(num)) {
			t.Fatalf("coord %d: analytic %v numeric %v", i, grad.Data[i], num)
		}
	}
}

// When student == teacher the distillation gradient vanishes.
func TestFedGKDZeroWhenAligned(t *testing.T) {
	f := &FedGKD{Gamma: 1, Tau: 2}
	rng := rand.New(rand.NewSource(4))
	z := tensor.New(3, 5)
	z.RandNormal(rng, 1)
	if loss := f.DistillLoss(z, z); math.Abs(loss) > 1e-12 {
		t.Fatalf("self-distillation loss %v", loss)
	}
}

func TestSoftmaxIntoProperties(t *testing.T) {
	out := make([]float64, 4)
	softmaxInto([]float64{1000, 0, -1000, 500}, 1, out)
	var sum float64
	for _, v := range out {
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("bad softmax value %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax sums to %v", sum)
	}
	// Higher temperature flattens the distribution.
	sharp := make([]float64, 3)
	soft := make([]float64, 3)
	softmaxInto([]float64{2, 1, 0}, 0.5, sharp)
	softmaxInto([]float64{2, 1, 0}, 5, soft)
	if sharp[0] <= soft[0] {
		t.Fatal("temperature did not sharpen")
	}
}

func TestFedGKDEndToEnd(t *testing.T) {
	algo, err := New("fedgkd", Params{})
	if err != nil {
		t.Fatal(err)
	}
	if algo.(*FedGKD).Gamma != 0.2 || algo.(*FedGKD).Tau != 2 {
		t.Fatal("fedgkd defaults")
	}
	res, err := core.Run(testConfig(t, algo))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 || res.TotalGFLOPs() <= 0 {
		t.Fatal("fedgkd run incomplete")
	}
	// One extra forward per batch: more FLOPs than FedAvg, less than MOON.
	avg, _ := New("fedavg", Params{})
	rAvg, err := core.Run(testConfig(t, avg))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalGFLOPs() <= rAvg.TotalGFLOPs() {
		t.Fatal("fedgkd should cost more than fedavg (teacher forward)")
	}
}

func TestFedNovaEqualStepsMatchesFedAvg(t *testing.T) {
	// With equal data sizes and epochs FedNova reduces exactly to FedAvg
	// aggregation.
	f := &FedNova{}
	cfg := testConfig(t, f)
	s, err := core.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clients := s.Clients()[:2]
	f.PreRound(1, clients, s.Global())
	n := 4
	global := make([]float64, n)
	u1 := core.Update{ClientID: clients[0].ID, Params: []float64{1, 1, 1, 1}, NumSamples: clients[0].NumSamples()}
	u2 := core.Update{ClientID: clients[1].ID, Params: []float64{3, 3, 3, 3}, NumSamples: clients[1].NumSamples()}
	next := f.Aggregate(1, global, []core.Update{u1, u2})
	for i := range next {
		if math.Abs(next[i]-2) > 1e-12 {
			t.Fatalf("next[%d]=%v want 2 (plain average)", i, next[i])
		}
	}
}

func TestFedNovaNormalisesUnequalSteps(t *testing.T) {
	// Craft unequal client data sizes so tau_k differ: client A has 2x
	// the batches of client B. A's update direction must be downweighted
	// per step but the effective step count preserves scale.
	f := &FedNova{}
	cfg := testConfig(t, f)
	// Rebuild partitions: client 0 gets 40 samples, client 1 gets 20.
	cfg.Parts = [][]int{cfg.Parts[0][:40], cfg.Parts[1][:20]}
	cfg.ClientsPerRound = 2
	cfg.BatchSize = 10
	s, err := core.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clients := s.Clients()
	f.PreRound(1, clients, s.Global())
	global := []float64{0}
	// Both clients moved by -4 from global. tau_A=4, tau_B=2,
	// p_A=2/3, p_B=1/3.
	uA := core.Update{ClientID: 0, Params: []float64{-4}, NumSamples: 40}
	uB := core.Update{ClientID: 1, Params: []float64{-4}, NumSamples: 20}
	next := f.Aggregate(1, global, []core.Update{uA, uB})
	// d_A = (0-(-4))/4 = 1, d_B = 4/2 = 2; dir = 2/3*1 + 1/3*2 = 4/3;
	// tau_eff = 2/3*4 + 1/3*2 = 10/3; next = 0 - 10/3*4/3 = -40/9.
	want := -40.0 / 9
	if math.Abs(next[0]-want) > 1e-12 {
		t.Fatalf("next %v want %v", next[0], want)
	}
}

func TestFedNovaEndToEnd(t *testing.T) {
	algo, err := New("fednova", Params{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(testConfig(t, algo))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 {
		t.Fatal("fednova run incomplete")
	}
}
