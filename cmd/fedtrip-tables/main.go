// Command fedtrip-tables regenerates the paper's tables and figures.
//
//	fedtrip-tables                       # run everything (fast profile)
//	fedtrip-tables -exp table4,table5    # selected experiments
//	fedtrip-tables -profile paper        # paper-scale settings (slow)
//	fedtrip-tables -list                 # list experiment ids
//
// Output is plain-text tables on stdout (or -o file); progress lines go to
// stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		expList = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		profile = flag.String("profile", "fast", "profile: fast|paper|tiny")
		outPath = flag.String("o", "", "write tables to this file instead of stdout")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		verbose = flag.Bool("v", true, "print progress to stderr")
	)
	flag.Parse()
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	if err := run(*expList, *profile, *outPath, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "fedtrip-tables:", err)
		os.Exit(1)
	}
}

func run(expList, profile, outPath string, verbose bool) error {
	p, err := experiments.ByName(profile)
	if err != nil {
		return err
	}
	var out io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	var logf experiments.Logf
	if verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "  "+format+"\n", args...)
		}
	}
	var selected []experiments.Experiment
	if expList == "all" || expList == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(expList, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.Get(id)
			if !ok {
				return experiments.ErrUnknown(id)
			}
			selected = append(selected, e)
		}
	}
	fmt.Fprintf(out, "FedTrip reproduction — profile %q, %d experiment(s)\n\n", p.Name, len(selected))
	for _, e := range selected {
		start := time.Now()
		if verbose {
			fmt.Fprintf(os.Stderr, "== running %s: %s\n", e.ID, e.Title)
		}
		tables, err := e.Run(p, logf)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, t := range tables {
			t.Render(out)
		}
		if verbose {
			fmt.Fprintf(os.Stderr, "== %s done in %s\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}
