package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewConvGeom(t *testing.T) {
	g, err := NewConvGeom(3, 32, 32, 5, 5, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.OutH != 32 || g.OutW != 32 {
		t.Fatalf("same-pad 5x5 should preserve dims, got %dx%d", g.OutH, g.OutW)
	}
	g, err = NewConvGeom(1, 28, 28, 5, 5, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.OutH != 24 || g.OutW != 24 {
		t.Fatalf("valid conv dims wrong: %dx%d", g.OutH, g.OutW)
	}
	if g.ColRows() != 25 || g.ColCols() != 24*24 {
		t.Fatalf("col dims wrong: %dx%d", g.ColRows(), g.ColCols())
	}
}

func TestNewConvGeomErrors(t *testing.T) {
	if _, err := NewConvGeom(0, 8, 8, 3, 3, 1, 0); err == nil {
		t.Fatal("zero channels accepted")
	}
	if _, err := NewConvGeom(1, 2, 2, 5, 5, 1, 0); err == nil {
		t.Fatal("kernel larger than padded input accepted")
	}
	if _, err := NewConvGeom(1, 8, 8, 3, 3, 0, 0); err == nil {
		t.Fatal("zero stride accepted")
	}
	if _, err := NewConvGeom(1, 8, 8, 3, 3, 1, -1); err == nil {
		t.Fatal("negative pad accepted")
	}
}

// naiveConv computes a direct convolution for reference.
func naiveConv(g ConvGeom, img, kernel []float64, outC int) []float64 {
	out := make([]float64, outC*g.OutH*g.OutW)
	for f := 0; f < outC; f++ {
		for oy := 0; oy < g.OutH; oy++ {
			for ox := 0; ox < g.OutW; ox++ {
				var s float64
				for c := 0; c < g.InC; c++ {
					for ky := 0; ky < g.KH; ky++ {
						for kx := 0; kx < g.KW; kx++ {
							iy := oy*g.Stride - g.Pad + ky
							ix := ox*g.Stride - g.Pad + kx
							if iy < 0 || iy >= g.InH || ix < 0 || ix >= g.InW {
								continue
							}
							kidx := ((f*g.InC+c)*g.KH+ky)*g.KW + kx
							s += kernel[kidx] * img[(c*g.InH+iy)*g.InW+ix]
						}
					}
				}
				out[(f*g.OutH+oy)*g.OutW+ox] = s
			}
		}
	}
	return out
}

func TestIm2ColMatMulMatchesNaiveConv(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []struct{ c, h, w, kh, kw, s, p, f int }{
		{1, 6, 6, 3, 3, 1, 0, 2},
		{2, 8, 7, 3, 3, 1, 1, 3},
		{3, 9, 9, 5, 5, 2, 2, 4},
		{1, 5, 5, 5, 5, 1, 0, 1},
	}
	for _, tc := range cases {
		g, err := NewConvGeom(tc.c, tc.h, tc.w, tc.kh, tc.kw, tc.s, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		img := make([]float64, tc.c*tc.h*tc.w)
		for i := range img {
			img[i] = rng.NormFloat64()
		}
		kernel := make([]float64, tc.f*tc.c*tc.kh*tc.kw)
		for i := range kernel {
			kernel[i] = rng.NormFloat64()
		}
		col := New(g.ColRows(), g.ColCols())
		g.Im2Col(img, col.Data)
		w := FromSlice(kernel, tc.f, g.ColRows())
		out := New(tc.f, g.ColCols())
		MatMul(out, w, col)
		want := naiveConv(g, img, kernel, tc.f)
		if d := MaxAbsDiff(out.Data, want); d > 1e-10 {
			t.Fatalf("case %+v: im2col conv differs from naive by %v", tc, d)
		}
	}
}

// Adjoint property: <Im2Col(x), y> == <x, Col2Im(y)> for all x, y. This is
// exactly the condition for Col2Im to backpropagate gradients correctly.
func TestIm2ColCol2ImAdjoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c, h, w := 1+r.Intn(3), 4+r.Intn(5), 4+r.Intn(5)
		k := 2 + r.Intn(2)
		pad := r.Intn(2)
		stride := 1 + r.Intn(2)
		g, err := NewConvGeom(c, h, w, k, k, stride, pad)
		if err != nil {
			return true // geometry invalid, skip
		}
		x := make([]float64, c*h*w)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		cx := make([]float64, g.ColRows()*g.ColCols())
		g.Im2Col(x, cx)
		y := make([]float64, len(cx))
		for i := range y {
			y[i] = r.NormFloat64()
		}
		xy := make([]float64, len(x))
		g.Col2Im(y, xy)
		return math.Abs(Dot(cx, y)-Dot(x, xy)) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2ColLengthPanics(t *testing.T) {
	g, _ := NewConvGeom(1, 4, 4, 3, 3, 1, 0)
	defer expectPanic(t, "img len")
	g.Im2Col(make([]float64, 3), make([]float64, g.ColRows()*g.ColCols()))
}

func TestCol2ImLengthPanics(t *testing.T) {
	g, _ := NewConvGeom(1, 4, 4, 3, 3, 1, 0)
	defer expectPanic(t, "col len")
	g.Col2Im(make([]float64, 3), make([]float64, 16))
}
