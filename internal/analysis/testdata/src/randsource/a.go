package randsource

import (
	"math/rand"
	"time"
)

// gen draws directly from math/rand: both selector references on the
// construction line are diagnostics.
func gen(n int) []float64 {
	r := rand.New(rand.NewSource(7)) // want "direct rand.New:" "direct rand.NewSource:"
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64()
	}
	return out
}

// fill's signature references the banned type itself.
func fill(r *rand.Rand, out []float64) { // want "direct rand.Rand:"
	for i := range out {
		out[i] = r.Float64()
	}
}

// stamp reads the wall clock.
func stamp() int64 {
	return time.Now().UnixNano() // want "wall-clock time.Now"
}

// elapsed is fine: only Now/Since/Until are wall-clock entry points.
func elapsed(d time.Duration) float64 {
	return d.Seconds()
}

// seeded is suppressed by the trailing allow form.
func seeded() float64 {
	r := rand.New(rand.NewSource(1)) //fedtripvet:allow fixture: synthesis pinned by an explicit spec seed
	return r.Float64()
}

// deadline is suppressed by the standalone (next-line) allow form.
func deadline() int64 {
	//fedtripvet:allow fixture: logging-only timestamp, not trajectory-relevant
	t := time.Now()
	return t.Unix()
}
