package tensor

import (
	"sync"

	"repro/internal/parallel"
)

// Cache-blocked, register-tiled GEMM micro-kernel. One kernel backs every
// matmul variant in the package (MatMul, MatMulAddBias, MatMulATB,
// MatMulABT and their accumulating forms): the variants differ only in how
// the A and B operands are *addressed*, which the pack routines absorb as
// row/column strides, and in how C is initialised (zero, bias broadcast,
// or left in place to accumulate).
//
// Structure (GotoBLAS/BLIS "gebp" decomposition):
//
//   - degenerate shapes (a single shared dimension, a single output row or
//     column) take pack-free dot/axpy paths — im2col turns the last conv
//     of a LeNet-style net into exactly these shapes, where tiling would
//     waste most of its work on padding;
//   - k is split into panels of gemmKC so the packed operands stay
//     cache-resident across the whole row sweep;
//   - n is split into blocks of gemmNC; each worker packs the B panel
//     (gemmKC x gemmNC, zero-padded to multiples of gemmNR) once per
//     block into its own scratch buffer;
//   - m is split into blocks of gemmMC whose A rows are packed
//     (zero-padded to multiples of gemmMR) and then swept by the
//     register-tiled micro-kernels, which keep the full C tile in locals
//     across the k loop. Remainder tiles run narrower kernels instead of
//     computing padded lanes.
//
// Determinism: block sizes are compile-time constants, every C element
// accumulates its k terms in strictly increasing k order (panel order,
// then in-panel order), there are no atomics and no data-dependent
// shortcuts, and parallel workers own disjoint row ranges. Results are
// identical run to run and do not depend on the worker count, because
// row-tile boundaries never change an element's accumulation order. Zero
// padding only ever feeds discarded pad slots, never a live element.
const (
	gemmMR = 4   // micro-tile rows (register-resident C rows)
	gemmNR = 4   // micro-tile cols (register-resident C cols)
	gemmKC = 256 // k panel: one packed A micro-panel is gemmKC*gemmMR*8 = 8 KiB (L1)
	gemmMC = 64  // m block: packed A block is gemmMC*gemmKC*8 = 128 KiB (L2)
	gemmNC = 256 // n block: packed B panel is gemmKC*gemmNC*8 = 512 KiB (L2/L3)

	// gemmParMin is the minimum number of row tiles worth splitting across
	// goroutines — 64 tiles is 256 rows, matching the old per-row kernels'
	// parallelism threshold.
	gemmParMin = 64

	// gemmSmallM is the row count below which packing B cannot amortise
	// (each packed element would be reused at most gemmSmallM/gemmMR
	// times): such calls take the direct-B path, which packs only A and
	// streams B in place. Batch-sized dense layers and few-filter conv
	// layers live here.
	gemmSmallM = 32
)

// gemmScratch is one worker's packing storage. Buffers grow to the
// high-water mark and are recycled through gemmPool, so steady-state GEMM
// calls allocate nothing.
type gemmScratch struct {
	a, b []float64
	tile [gemmMR * gemmNR]float64
}

var gemmPool = sync.Pool{New: func() any { return new(gemmScratch) }}

func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// gemm computes C += A x B over strided operand views, after initialising
// C according to bias/accumulate (nil bias: zeroed; accumulate: left in
// place). Operands are addressed as A[i,p] = ad[i*ars + p*acs] (m x k) and
// B[p,j] = bd[p*brs + j*bcs] (k x n); C is row-major m x n. Transposed
// variants are expressed purely through the strides.
//
//fedtripvet:hotpath
func gemm(cd []float64, m, n, k int, ad []float64, ars, acs int, bd []float64, brs, bcs int, bias []float64, accumulate bool) {
	// Degenerate shapes: pack-free vector paths.
	if n == 1 && gemvN1(cd, m, k, ad, ars, acs, bd, brs, bias, accumulate) {
		return
	}
	if k == 1 && bcs == 1 {
		outerK1(cd, m, n, ad, ars, bd, bias, accumulate)
		return
	}
	if m == 1 && bcs == 1 {
		gemvM1(cd, n, k, ad, acs, bd, brs, bias, accumulate)
		return
	}
	if m <= gemmSmallM && (bcs == 1 || brs == 1) {
		gemmDirect(cd, m, n, k, ad, ars, acs, bd, brs, bcs, bias, accumulate)
		return
	}
	mTiles := (m + gemmMR - 1) / gemmMR
	if parallel.Serial(mTiles, gemmParMin) {
		gemmRows(cd, 0, m, n, k, ad, ars, acs, bd, brs, bcs, bias, accumulate)
		return
	}
	parallel.ForChunkedMin(mTiles, gemmParMin, func(tlo, thi int) {
		ilo, ihi := tlo*gemmMR, thi*gemmMR
		if ihi > m {
			ihi = m
		}
		gemmRows(cd, ilo, ihi, n, k, ad, ars, acs, bd, brs, bcs, bias, accumulate)
	})
}

// gemvN1 handles n == 1 (C is a column vector): a row-major A runs one dot
// product per output element, a column-major A (a transposed operand)
// accumulates axpy columns. Reports false when neither operand layout
// admits a contiguous path (the caller falls through to the tiled kernel).
//
//fedtripvet:hotpath
func gemvN1(cd []float64, m, k int, ad []float64, ars, acs int, bd []float64, brs int, bias []float64, accumulate bool) bool {
	switch {
	case acs == 1 && brs == 1:
		// C[i] = A_row(i) . B; both contiguous.
		bcol := bd[:k]
		for i := 0; i < m; i++ {
			s := dotKernel(ad[i*ars:i*ars+k], bcol)
			switch {
			case accumulate:
				cd[i] += s
			case bias != nil:
				cd[i] = bias[0] + s
			default:
				cd[i] = s
			}
		}
		return true
	case ars == 1:
		// Columns of the A view are contiguous: C += B[p] * A_col(p),
		// accumulating every element's k terms in increasing k order.
		c := cd[:m]
		if !accumulate {
			v := 0.0
			if bias != nil {
				v = bias[0]
			}
			for i := range c {
				c[i] = v
			}
		}
		for p := 0; p < k; p++ {
			axpyKernel(c, ad[p*acs:p*acs+m], bd[p*brs])
		}
		return true
	}
	return false
}

// outerK1 handles k == 1: C (+)= A_col x B_row, one axpy per output row.
//
//fedtripvet:hotpath
func outerK1(cd []float64, m, n int, ad []float64, ars int, bd []float64, bias []float64, accumulate bool) {
	brow := bd[:n]
	for i := 0; i < m; i++ {
		ci := cd[i*n : (i+1)*n]
		if !accumulate {
			if bias == nil {
				for j := range ci {
					ci[j] = 0
				}
			} else {
				copy(ci, bias)
			}
		}
		axpyKernel(ci, brow, ad[i*ars])
	}
}

// gemvM1 handles m == 1 (C is a row vector): C (+)= sum_p A[p] * B_row(p).
//
//fedtripvet:hotpath
func gemvM1(cd []float64, n, k int, ad []float64, acs int, bd []float64, brs int, bias []float64, accumulate bool) {
	c := cd[:n]
	if !accumulate {
		if bias == nil {
			for j := range c {
				c[j] = 0
			}
		} else {
			copy(c, bias)
		}
	}
	for p := 0; p < k; p++ {
		axpyKernel(c, bd[p*brs:p*brs+n], ad[p*acs])
	}
}

// gemmRows runs the blocked GEMM over the row range [ilo, ihi) of C. Row
// ranges handed to different workers start at multiples of gemmMR, so
// micro-tiles never straddle workers.
//
//fedtripvet:hotpath
func gemmRows(cd []float64, ilo, ihi, n, k int, ad []float64, ars, acs int, bd []float64, brs, bcs int, bias []float64, accumulate bool) {
	sc := gemmPool.Get().(*gemmScratch)
	if !accumulate {
		gemmInit(cd, ilo, ihi, n, bias)
	}
	for p0 := 0; p0 < k; p0 += gemmKC {
		kc := k - p0
		if kc > gemmKC {
			kc = gemmKC
		}
		for j0 := 0; j0 < n; j0 += gemmNC {
			nc := n - j0
			if nc > gemmNC {
				nc = gemmNC
			}
			packB(sc, bd, p0, kc, j0, nc, brs, bcs)
			for i0 := ilo; i0 < ihi; i0 += gemmMC {
				mc := ihi - i0
				if mc > gemmMC {
					mc = gemmMC
				}
				packA(sc, ad, i0, mc, p0, kc, ars, acs)
				gebp(cd, n, i0, mc, j0, nc, kc, sc)
			}
		}
	}
	gemmPool.Put(sc)
}

// gemmInit prepares the C rows a worker owns: zeroed, or set to the bias
// vector broadcast over rows.
//
//fedtripvet:hotpath
func gemmInit(cd []float64, ilo, ihi, n int, bias []float64) {
	for i := ilo; i < ihi; i++ {
		ci := cd[i*n : (i+1)*n]
		if bias == nil {
			for j := range ci {
				ci[j] = 0
			}
		} else {
			copy(ci, bias)
		}
	}
}

// packA copies the mc x kc block of A at (i0, p0) into sc.a as
// ceil(mc/gemmMR) row micro-panels, each laid out k-major:
// dst[panel*kc*MR + p*MR + r]. Rows past mc are zero-padded (the pad lanes
// are only read by the full 4-row kernel on interior tiles, never written
// back).
//
//fedtripvet:hotpath
func packA(sc *gemmScratch, ad []float64, i0, mc, p0, kc, ars, acs int) {
	panels := (mc + gemmMR - 1) / gemmMR
	dst := grow(sc.a, panels*kc*gemmMR)
	sc.a = dst
	di := 0
	for ib := 0; ib < panels; ib++ {
		base := i0 + ib*gemmMR
		rows := mc - ib*gemmMR
		if rows >= gemmMR && acs == 1 {
			// Full panel over contiguous A rows: copy by source row.
			r0 := ad[(base+0)*ars+p0 : (base+0)*ars+p0+kc]
			r1 := ad[(base+1)*ars+p0 : (base+1)*ars+p0+kc]
			r2 := ad[(base+2)*ars+p0 : (base+2)*ars+p0+kc]
			r3 := ad[(base+3)*ars+p0 : (base+3)*ars+p0+kc]
			for p := 0; p < kc; p++ {
				dst[di] = r0[p]
				dst[di+1] = r1[p]
				dst[di+2] = r2[p]
				dst[di+3] = r3[p]
				di += gemmMR
			}
			continue
		}
		if rows > gemmMR {
			rows = gemmMR
		}
		for p := 0; p < kc; p++ {
			off := (p0 + p) * acs
			for r := 0; r < gemmMR; r++ {
				if r < rows {
					dst[di] = ad[(base+r)*ars+off]
				} else {
					dst[di] = 0
				}
				di++
			}
		}
	}
}

// packB copies the kc x nc block of B at (p0, j0) into sc.b as
// ceil(nc/gemmNR) column micro-panels, each laid out k-major:
// dst[panel*kc*NR + p*NR + c]. Columns past nc are zero-padded.
//
//fedtripvet:hotpath
func packB(sc *gemmScratch, bd []float64, p0, kc, j0, nc, brs, bcs int) {
	panels := (nc + gemmNR - 1) / gemmNR
	dst := grow(sc.b, panels*kc*gemmNR)
	sc.b = dst
	for jb := 0; jb < panels; jb++ {
		base := j0 + jb*gemmNR
		cols := nc - jb*gemmNR
		di := jb * kc * gemmNR
		if cols >= gemmNR && bcs == 1 {
			// Full panel over contiguous B rows: 4-wide row copies.
			for p := 0; p < kc; p++ {
				src := bd[(p0+p)*brs+base : (p0+p)*brs+base+gemmNR]
				dst[di] = src[0]
				dst[di+1] = src[1]
				dst[di+2] = src[2]
				dst[di+3] = src[3]
				di += gemmNR
			}
			continue
		}
		if cols > gemmNR {
			cols = gemmNR
		}
		for p := 0; p < kc; p++ {
			off := (p0 + p) * brs
			for c := 0; c < gemmNR; c++ {
				if c < cols {
					dst[di] = bd[off+(base+c)*bcs]
				} else {
					dst[di] = 0
				}
				di++
			}
		}
	}
}

// gebp sweeps the packed A block against the packed B panel, updating the
// C block at (i0, j0). Interior tiles run the full 4x4 register kernel;
// remainder rows and columns run narrower kernels so no padded lane is
// ever computed, except at the (rare) corner tile, which stages through
// the scratch tile.
//
//fedtripvet:hotpath
func gebp(cd []float64, ldc, i0, mc, j0, nc, kc int, sc *gemmScratch) {
	mPanels := (mc + gemmMR - 1) / gemmMR
	nPanels := (nc + gemmNR - 1) / gemmNR
	for ib := 0; ib < mPanels; ib++ {
		ap := sc.a[ib*kc*gemmMR : (ib+1)*kc*gemmMR]
		row := i0 + ib*gemmMR
		rows := mc - ib*gemmMR
		if rows > gemmMR {
			rows = gemmMR
		}
		for jb := 0; jb < nPanels; jb++ {
			bp := sc.b[jb*kc*gemmNR : (jb+1)*kc*gemmNR]
			col := j0 + jb*gemmNR
			cols := nc - jb*gemmNR
			if cols > gemmNR {
				cols = gemmNR
			}
			off := row*ldc + col
			switch {
			case rows == 4 && cols == 4:
				kern4x4(kc, ap, bp, cd[off:off+4], cd[off+ldc:off+ldc+4], cd[off+2*ldc:off+2*ldc+4], cd[off+3*ldc:off+3*ldc+4])
			case rows == 4:
				kern4xN(kc, cols, ap, bp, cd, off, ldc)
			case cols == 4:
				kernMx4(kc, rows, ap, bp, cd[off:off+4], cd[off+(rows-1)*ldc:], ldc)
			default:
				// Corner tile: stage the live sub-tile through scratch so
				// stores stay inside C. Each live element still accumulates
				// c + t_0 + t_1 + ... in k order, like every other path.
				t := &sc.tile
				for i := range t {
					t[i] = 0
				}
				for r := 0; r < rows; r++ {
					copy(t[r*gemmNR:r*gemmNR+cols], cd[(row+r)*ldc+col:(row+r)*ldc+col+cols])
				}
				kernMx4(kc, rows, ap, bp, t[0:4], t[(rows-1)*gemmNR:], gemmNR)
				for r := 0; r < rows; r++ {
					copy(cd[(row+r)*ldc+col:(row+r)*ldc+col+cols], t[r*gemmNR:r*gemmNR+cols])
				}
			}
		}
	}
}

// gemmDirect is the small-m GEMM: A is packed once (k-major micro-panels,
// padded rows only ever land in staged scratch), B is read in place —
// either row-major (bcs == 1, loads of four consecutive elements per k
// step) or k-contiguous per output column (brs == 1, the A x B^T case,
// four parallel column streams). C tiles stay in registers across the
// whole k extent, so there is no k blocking and no C re-load at panel
// boundaries; every element still accumulates its k terms in increasing
// k order.
//
//fedtripvet:hotpath
func gemmDirect(cd []float64, m, n, k int, ad []float64, ars, acs int, bd []float64, brs, bcs int, bias []float64, accumulate bool) {
	sc := gemmPool.Get().(*gemmScratch)
	packA(sc, ad, 0, m, 0, k, ars, acs)
	if !accumulate {
		gemmInit(cd, 0, m, n, bias)
	}
	mPanels := (m + gemmMR - 1) / gemmMR
	nFull := n - n%gemmNR
	for ib := 0; ib < mPanels; ib++ {
		ap := sc.a[ib*k*gemmMR : (ib+1)*k*gemmMR]
		row := ib * gemmMR
		rows := m - row
		if rows > gemmMR {
			rows = gemmMR
		}
		for j0 := 0; j0 < nFull; j0 += gemmNR {
			off := row*n + j0
			if bcs == 1 {
				if rows == gemmMR {
					kernDir4x4(k, ap, bd[j0:], brs, cd, off, n)
				} else {
					kernDirMx4(k, rows, ap, bd[j0:], brs, cd, off, n)
				}
			} else {
				b0 := bd[(j0+0)*bcs:]
				b1 := bd[(j0+1)*bcs:]
				b2 := bd[(j0+2)*bcs:]
				b3 := bd[(j0+3)*bcs:]
				if rows == gemmMR {
					kernDirT4x4(k, ap, b0, b1, b2, b3, cd, off, n)
				} else {
					kernDirTMx4(k, rows, ap, b0, b1, b2, b3, cd, off, n)
				}
			}
		}
		// Column tail (n % 4 columns): scalar dots, still in k order.
		for j := nFull; j < n; j++ {
			for r := 0; r < rows; r++ {
				s := cd[(row+r)*n+j]
				for p := 0; p < k; p++ {
					s += ap[p*gemmMR+r] * bd[p*brs+j*bcs]
				}
				cd[(row+r)*n+j] = s
			}
		}
	}
	gemmPool.Put(sc)
}

// kernDir4x4 is kern4x4 with B read in place from row-major storage:
// four consecutive elements at row stride brs per k step.
//
//fedtripvet:hotpath
func kernDir4x4(kc int, a, b []float64, brs int, cd []float64, off, ldc int) {
	r0 := cd[off : off+gemmNR]
	r1 := cd[off+ldc : off+ldc+gemmNR]
	r2 := cd[off+2*ldc : off+2*ldc+gemmNR]
	r3 := cd[off+3*ldc : off+3*ldc+gemmNR]
	c00, c01, c02, c03 := r0[0], r0[1], r0[2], r0[3]
	c10, c11, c12, c13 := r1[0], r1[1], r1[2], r1[3]
	c20, c21, c22, c23 := r2[0], r2[1], r2[2], r2[3]
	c30, c31, c32, c33 := r3[0], r3[1], r3[2], r3[3]
	a = a[:gemmMR*kc]
	for p := 0; p < kc; p++ {
		bp := b[p*brs : p*brs+gemmNR : p*brs+gemmNR]
		ap := a[gemmMR*p : gemmMR*p+gemmMR : gemmMR*p+gemmMR]
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		a0, a1 := ap[0], ap[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		a2, a3 := ap[2], ap[3]
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	r0[0], r0[1], r0[2], r0[3] = c00, c01, c02, c03
	r1[0], r1[1], r1[2], r1[3] = c10, c11, c12, c13
	r2[0], r2[1], r2[2], r2[3] = c20, c21, c22, c23
	r3[0], r3[1], r3[2], r3[3] = c30, c31, c32, c33
}

// kernDirMx4 is kernDir4x4 for 1..3 live rows.
//
//fedtripvet:hotpath
func kernDirMx4(kc, rows int, a, b []float64, brs int, cd []float64, off, ldc int) {
	a = a[:gemmMR*kc]
	for r := 0; r < rows; r++ {
		cr := cd[off+r*ldc : off+r*ldc+gemmNR]
		c0, c1, c2, c3 := cr[0], cr[1], cr[2], cr[3]
		for p := 0; p < kc; p++ {
			bp := b[p*brs : p*brs+gemmNR : p*brs+gemmNR]
			av := a[gemmMR*p+r]
			c0 += av * bp[0]
			c1 += av * bp[1]
			c2 += av * bp[2]
			c3 += av * bp[3]
		}
		cr[0], cr[1], cr[2], cr[3] = c0, c1, c2, c3
	}
}

// kernDirT4x4 is the A x B^T micro-kernel with B read in place: four
// parallel k-contiguous column streams (b0..b3 are the four output
// columns' strides-1 views).
//
//fedtripvet:hotpath
func kernDirT4x4(kc int, a, b0, b1, b2, b3 []float64, cd []float64, off, ldc int) {
	r0 := cd[off : off+gemmNR]
	r1 := cd[off+ldc : off+ldc+gemmNR]
	r2 := cd[off+2*ldc : off+2*ldc+gemmNR]
	r3 := cd[off+3*ldc : off+3*ldc+gemmNR]
	c00, c01, c02, c03 := r0[0], r0[1], r0[2], r0[3]
	c10, c11, c12, c13 := r1[0], r1[1], r1[2], r1[3]
	c20, c21, c22, c23 := r2[0], r2[1], r2[2], r2[3]
	c30, c31, c32, c33 := r3[0], r3[1], r3[2], r3[3]
	a = a[:gemmMR*kc]
	b0 = b0[:kc]
	b1 = b1[:kc]
	b2 = b2[:kc]
	b3 = b3[:kc]
	for p := 0; p < kc; p++ {
		ap := a[gemmMR*p : gemmMR*p+gemmMR : gemmMR*p+gemmMR]
		v0, v1, v2, v3 := b0[p], b1[p], b2[p], b3[p]
		a0, a1 := ap[0], ap[1]
		c00 += a0 * v0
		c01 += a0 * v1
		c02 += a0 * v2
		c03 += a0 * v3
		c10 += a1 * v0
		c11 += a1 * v1
		c12 += a1 * v2
		c13 += a1 * v3
		a2, a3 := ap[2], ap[3]
		c20 += a2 * v0
		c21 += a2 * v1
		c22 += a2 * v2
		c23 += a2 * v3
		c30 += a3 * v0
		c31 += a3 * v1
		c32 += a3 * v2
		c33 += a3 * v3
	}
	r0[0], r0[1], r0[2], r0[3] = c00, c01, c02, c03
	r1[0], r1[1], r1[2], r1[3] = c10, c11, c12, c13
	r2[0], r2[1], r2[2], r2[3] = c20, c21, c22, c23
	r3[0], r3[1], r3[2], r3[3] = c30, c31, c32, c33
}

// kernDirTMx4 is kernDirT4x4 for 1..3 live rows.
//
//fedtripvet:hotpath
func kernDirTMx4(kc, rows int, a, b0, b1, b2, b3 []float64, cd []float64, off, ldc int) {
	a = a[:gemmMR*kc]
	b0 = b0[:kc]
	b1 = b1[:kc]
	b2 = b2[:kc]
	b3 = b3[:kc]
	for r := 0; r < rows; r++ {
		cr := cd[off+r*ldc : off+r*ldc+gemmNR]
		c0, c1, c2, c3 := cr[0], cr[1], cr[2], cr[3]
		for p := 0; p < kc; p++ {
			av := a[gemmMR*p+r]
			c0 += av * b0[p]
			c1 += av * b1[p]
			c2 += av * b2[p]
			c3 += av * b3[p]
		}
		cr[0], cr[1], cr[2], cr[3] = c0, c1, c2, c3
	}
}

// kern4x4 is the register micro-kernel: C_tile += Apanel x Bpanel, where
// Apanel is kc x 4 (k-major) and Bpanel is kc x 4 (k-major). The 16 C
// accumulators live in locals across the whole k loop, so C traffic is
// one load and one store per element per panel instead of per k step.
//
//fedtripvet:hotpath
func kern4x4(kc int, a, b []float64, r0, r1, r2, r3 []float64) {
	r0 = r0[:gemmNR]
	r1 = r1[:gemmNR]
	r2 = r2[:gemmNR]
	r3 = r3[:gemmNR]
	c00, c01, c02, c03 := r0[0], r0[1], r0[2], r0[3]
	c10, c11, c12, c13 := r1[0], r1[1], r1[2], r1[3]
	c20, c21, c22, c23 := r2[0], r2[1], r2[2], r2[3]
	c30, c31, c32, c33 := r3[0], r3[1], r3[2], r3[3]
	a = a[:gemmMR*kc]
	b = b[:gemmNR*kc]
	for p := 0; p < kc; p++ {
		bp := b[gemmNR*p : gemmNR*p+gemmNR : gemmNR*p+gemmNR]
		ap := a[gemmMR*p : gemmMR*p+gemmMR : gemmMR*p+gemmMR]
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		a0, a1 := ap[0], ap[1]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		a2, a3 := ap[2], ap[3]
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	r0[0], r0[1], r0[2], r0[3] = c00, c01, c02, c03
	r1[0], r1[1], r1[2], r1[3] = c10, c11, c12, c13
	r2[0], r2[1], r2[2], r2[3] = c20, c21, c22, c23
	r3[0], r3[1], r3[2], r3[3] = c30, c31, c32, c33
}

// kern4xN updates a 4-row tile with 1..3 live columns (the n remainder):
// one accumulator column per live column, no padded-lane compute.
//
//fedtripvet:hotpath
func kern4xN(kc, cols int, a, b []float64, cd []float64, off, ldc int) {
	a = a[:gemmMR*kc]
	b = b[:gemmNR*kc]
	for j := 0; j < cols; j++ {
		c0, c1, c2, c3 := cd[off+j], cd[off+ldc+j], cd[off+2*ldc+j], cd[off+3*ldc+j]
		for p := 0; p < kc; p++ {
			ap := a[gemmMR*p : gemmMR*p+gemmMR : gemmMR*p+gemmMR]
			bv := b[gemmNR*p+j]
			c0 += ap[0] * bv
			c1 += ap[1] * bv
			c2 += ap[2] * bv
			c3 += ap[3] * bv
		}
		cd[off+j], cd[off+ldc+j], cd[off+2*ldc+j], cd[off+3*ldc+j] = c0, c1, c2, c3
	}
}

// kernMx4 updates a 4-column tile with 1..3 live rows (the m remainder).
// r0 addresses the first row (4 valid elements), rlast the last live row;
// intermediate rows are reached through ldc.
//
//fedtripvet:hotpath
func kernMx4(kc, rows int, a, b []float64, r0, rlast []float64, ldc int) {
	a = a[:gemmMR*kc]
	b = b[:gemmNR*kc]
	switch rows {
	case 1:
		c00, c01, c02, c03 := r0[0], r0[1], r0[2], r0[3]
		for p := 0; p < kc; p++ {
			bp := b[gemmNR*p : gemmNR*p+gemmNR : gemmNR*p+gemmNR]
			a0 := a[gemmMR*p]
			c00 += a0 * bp[0]
			c01 += a0 * bp[1]
			c02 += a0 * bp[2]
			c03 += a0 * bp[3]
		}
		r0[0], r0[1], r0[2], r0[3] = c00, c01, c02, c03
	case 2:
		r1 := rlast[:gemmNR]
		c00, c01, c02, c03 := r0[0], r0[1], r0[2], r0[3]
		c10, c11, c12, c13 := r1[0], r1[1], r1[2], r1[3]
		for p := 0; p < kc; p++ {
			bp := b[gemmNR*p : gemmNR*p+gemmNR : gemmNR*p+gemmNR]
			b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
			a0, a1 := a[gemmMR*p], a[gemmMR*p+1]
			c00 += a0 * b0
			c01 += a0 * b1
			c02 += a0 * b2
			c03 += a0 * b3
			c10 += a1 * b0
			c11 += a1 * b1
			c12 += a1 * b2
			c13 += a1 * b3
		}
		r0[0], r0[1], r0[2], r0[3] = c00, c01, c02, c03
		r1[0], r1[1], r1[2], r1[3] = c10, c11, c12, c13
	default: // 3 rows
		r1 := r0[ldc : ldc+gemmNR]
		r2 := rlast[:gemmNR]
		c00, c01, c02, c03 := r0[0], r0[1], r0[2], r0[3]
		c10, c11, c12, c13 := r1[0], r1[1], r1[2], r1[3]
		c20, c21, c22, c23 := r2[0], r2[1], r2[2], r2[3]
		for p := 0; p < kc; p++ {
			bp := b[gemmNR*p : gemmNR*p+gemmNR : gemmNR*p+gemmNR]
			b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
			a0, a1, a2 := a[gemmMR*p], a[gemmMR*p+1], a[gemmMR*p+2]
			c00 += a0 * b0
			c01 += a0 * b1
			c02 += a0 * b2
			c03 += a0 * b3
			c10 += a1 * b0
			c11 += a1 * b1
			c12 += a1 * b2
			c13 += a1 * b3
			c20 += a2 * b0
			c21 += a2 * b1
			c22 += a2 * b2
			c23 += a2 * b3
		}
		r0[0], r0[1], r0[2], r0[3] = c00, c01, c02, c03
		r1[0], r1[1], r1[2], r1[3] = c10, c11, c12, c13
		r2[0], r2[1], r2[2], r2[3] = c20, c21, c22, c23
	}
}
