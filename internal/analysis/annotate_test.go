package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const annotateSrc = `package p

func trailing() int {
	x := 1 //fedtripvet:allow pooled buffer, capacity ensured
	return x
}

func standalone() int {
	//fedtripvet:allow cold error path
	y := 2
	return y
}

func sortedForm() int {
	//fedtripvet:sorted summation commutes
	z := 3
	return z
}

func bare() int {
	w := 4 //fedtripvet:allow
	return w
}

func unknown() int {
	v := 5 //fedtripvet:frobnicate because
	return v
}

//fedtripvet:hotpath
func hot() {}

func cool() {}
`

func TestAnnotate(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "anno.go", annotateSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	a := annotate(fset, f)

	// Trailing form guards its own line (4); standalone guards the line
	// below the comment (10).
	if got := a.allow[4]; got != "pooled buffer, capacity ensured" {
		t.Errorf("allow[4] = %q", got)
	}
	if got := a.allow[10]; got != "cold error path" {
		t.Errorf("allow[10] = %q", got)
	}
	if !a.sortedAt(16) {
		t.Error("sorted directive on line 15 should guard line 16")
	}
	if a.sortedAt(15) {
		t.Error("standalone sorted directive must not guard its own line")
	}

	// A reason-less allow and an unknown verb are malformed, and neither
	// suppresses anything.
	if len(a.malformed) != 2 {
		t.Fatalf("malformed = %d directives, want 2", len(a.malformed))
	}
	if _, ok := a.allow[21]; ok {
		t.Error("reason-less allow on line 21 must not register a suppression")
	}
}

func TestIsHotpath(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "anno.go", annotateSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			got[fd.Name.Name] = isHotpath(fd)
		}
	}
	if !got["hot"] {
		t.Error("hot() should carry the hotpath marker")
	}
	if got["cool"] {
		t.Error("cool() must not carry the hotpath marker")
	}
}
