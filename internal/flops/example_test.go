package flops_test

import (
	"fmt"

	"repro/internal/flops"
)

// The Appendix A cost model: FedTrip's attaching cost is 4K|w| FLOPs per
// round — double FedProx's, and vanishing next to MOON's extra forward
// passes.
func ExampleAttachCost() {
	model := flops.ModelCost{Params: 61706, Forward: 0.85e6, Backward: 1.7e6}
	round := flops.RoundParams{K: 12, M: 50, N: 600, P: 1}
	for _, method := range []string{"fedprox", "fedtrip", "moon"} {
		c, err := flops.AttachCost(method, model, round)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %.2f MFLOPs\n", method, c.AttachFLOPs/1e6)
	}
	// Output:
	// fedprox: 1.48 MFLOPs
	// fedtrip: 2.96 MFLOPs
	// moon: 1020.00 MFLOPs
}
