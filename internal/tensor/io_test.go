package tensor

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorRoundTripF64(t *testing.T) {
	v := []float64{0, 1, -1, math.Pi, math.MaxFloat64, math.SmallestNonzeroFloat64, math.Inf(1), math.NaN()}
	var buf bytes.Buffer
	if err := WriteVector(&buf, v); err != nil {
		t.Fatal(err)
	}
	got, err := ReadVector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(v) {
		t.Fatalf("len %d", len(got))
	}
	for i := range v {
		if math.IsNaN(v[i]) {
			if !math.IsNaN(got[i]) {
				t.Fatalf("NaN not preserved at %d", i)
			}
			continue
		}
		if got[i] != v[i] {
			t.Fatalf("elem %d: %v != %v", i, got[i], v[i])
		}
	}
}

func TestVectorRoundTripF32(t *testing.T) {
	v := []float64{0, 0.5, -2, 1e10}
	var buf bytes.Buffer
	if err := WriteVectorF32(&buf, v); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != VectorWireSizeF32(len(v)) {
		t.Fatalf("wire size %d want %d", buf.Len(), VectorWireSizeF32(len(v)))
	}
	got, err := ReadVectorF32(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if got[i] != float64(float32(v[i])) {
			t.Fatalf("elem %d: %v", i, got[i])
		}
	}
}

func TestVectorEmptyRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteVector(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadVector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("len %d", len(got))
	}
}

func TestVectorBadMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteVectorF32(&buf, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadVector(&buf); err == nil {
		t.Fatal("f64 reader accepted f32 stream")
	}
	if _, err := ReadVector(bytes.NewReader([]byte("junkdata"))); err == nil {
		t.Fatal("junk accepted")
	}
}

func TestVectorTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteVector(&buf, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadVector(bytes.NewReader(raw[:len(raw)-4])); err == nil {
		t.Fatal("truncated payload accepted")
	}
	if _, err := ReadVector(bytes.NewReader(raw[:6])); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, err := ReadVector(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestVectorCorruptLength(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteVector(&buf, []float64{1}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for i := 4; i < 12; i++ {
		raw[i] = 0xFF // absurd length
	}
	if _, err := ReadVector(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupt length accepted")
	}
}

// Property: f64 round trip is exact for arbitrary finite vectors.
func TestVectorRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10))
		}
		var buf bytes.Buffer
		if err := WriteVector(&buf, v); err != nil {
			return false
		}
		got, err := ReadVector(&buf)
		if err != nil || len(got) != n {
			return false
		}
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
