package tensor

import "fmt"

// ConvGeom captures the geometry of a 2D convolution or pooling over NCHW
// tensors. All fields are in elements.
type ConvGeom struct {
	InC, InH, InW int // input channels / height / width
	KH, KW        int // kernel height / width
	Stride        int
	Pad           int
	OutH, OutW    int // derived output spatial dims
}

// NewConvGeom computes output dimensions and validates the geometry.
func NewConvGeom(inC, inH, inW, kh, kw, stride, pad int) (ConvGeom, error) {
	if inC <= 0 || inH <= 0 || inW <= 0 || kh <= 0 || kw <= 0 || stride <= 0 || pad < 0 {
		return ConvGeom{}, fmt.Errorf("tensor: invalid conv geometry c=%d h=%d w=%d k=%dx%d s=%d p=%d", inC, inH, inW, kh, kw, stride, pad)
	}
	oh := (inH+2*pad-kh)/stride + 1
	ow := (inW+2*pad-kw)/stride + 1
	if oh <= 0 || ow <= 0 {
		return ConvGeom{}, fmt.Errorf("tensor: conv output empty (in %dx%d kernel %dx%d stride %d pad %d)", inH, inW, kh, kw, stride, pad)
	}
	return ConvGeom{InC: inC, InH: inH, InW: inW, KH: kh, KW: kw, Stride: stride, Pad: pad, OutH: oh, OutW: ow}, nil
}

// ColRows returns the row count of the im2col matrix: C*KH*KW.
func (g ConvGeom) ColRows() int { return g.InC * g.KH * g.KW }

// ColCols returns the column count of the im2col matrix: OutH*OutW.
func (g ConvGeom) ColCols() int { return g.OutH * g.OutW }

// Im2Col expands one image (CHW layout, len = C*H*W) into the column matrix
// col (len = ColRows x ColCols, row-major) so that convolution becomes a
// matrix multiply: out[F, OH*OW] = W[F, C*KH*KW] x col.
// Out-of-bounds (padding) taps contribute zeros.
func (g ConvGeom) Im2Col(img, col []float64) {
	if len(img) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: im2col image len %d != %d", len(img), g.InC*g.InH*g.InW))
	}
	cols := g.ColCols()
	if len(col) != g.ColRows()*cols {
		panic(fmt.Sprintf("tensor: im2col col len %d != %d", len(col), g.ColRows()*cols))
	}
	row := 0
	for c := 0; c < g.InC; c++ {
		chBase := c * g.InH * g.InW
		for ky := 0; ky < g.KH; ky++ {
			for kx := 0; kx < g.KW; kx++ {
				dst := col[row*cols : (row+1)*cols]
				di := 0
				for oy := 0; oy < g.OutH; oy++ {
					iy := oy*g.Stride - g.Pad + ky
					if iy < 0 || iy >= g.InH {
						for ox := 0; ox < g.OutW; ox++ {
							dst[di] = 0
							di++
						}
						continue
					}
					rowBase := chBase + iy*g.InW
					for ox := 0; ox < g.OutW; ox++ {
						ix := ox*g.Stride - g.Pad + kx
						if ix < 0 || ix >= g.InW {
							dst[di] = 0
						} else {
							dst[di] = img[rowBase+ix]
						}
						di++
					}
				}
				row++
			}
		}
	}
}

// Col2Im scatter-adds the column matrix back into an image, accumulating
// overlapping taps. It is the adjoint of Im2Col and is used to propagate
// gradients to a convolution layer's input. The caller must zero img first
// if accumulation from a clean slate is desired.
func (g ConvGeom) Col2Im(col, img []float64) {
	if len(img) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: col2im image len %d != %d", len(img), g.InC*g.InH*g.InW))
	}
	cols := g.ColCols()
	if len(col) != g.ColRows()*cols {
		panic(fmt.Sprintf("tensor: col2im col len %d != %d", len(col), g.ColRows()*cols))
	}
	row := 0
	for c := 0; c < g.InC; c++ {
		chBase := c * g.InH * g.InW
		for ky := 0; ky < g.KH; ky++ {
			for kx := 0; kx < g.KW; kx++ {
				src := col[row*cols : (row+1)*cols]
				si := 0
				for oy := 0; oy < g.OutH; oy++ {
					iy := oy*g.Stride - g.Pad + ky
					if iy < 0 || iy >= g.InH {
						si += g.OutW
						continue
					}
					rowBase := chBase + iy*g.InW
					for ox := 0; ox < g.OutW; ox++ {
						ix := ox*g.Stride - g.Pad + kx
						if ix >= 0 && ix < g.InW {
							img[rowBase+ix] += src[si]
						}
						si++
					}
				}
				row++
			}
		}
	}
}
