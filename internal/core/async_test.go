package core

import (
	"math"
	"sync"
	"testing"
)

// asyncTestConfig wraps testConfig's Config into async defaults.
func asyncTestConfig(t *testing.T, algo Algorithm) AsyncConfig {
	t.Helper()
	return AsyncConfig{Config: testConfig(t, algo)}
}

// The headline equivalence: the async runtime in barrier mode with zero
// latency must reproduce the synchronous Server.Run trajectory bit-for-bit
// on the same seed — same accuracies, losses, FLOPs, and comm bytes.
func TestAsyncBarrierZeroLatencyMatchesSync(t *testing.T) {
	syncRes, err := Run(testConfig(t, NewFedTrip(0.4)))
	if err != nil {
		t.Fatal(err)
	}
	acfg := asyncTestConfig(t, NewFedTrip(0.4))
	acfg.RoundBarrier = true
	asyncRes, err := RunAsync(acfg)
	if err != nil {
		t.Fatal(err)
	}
	if asyncRes.Rounds != syncRes.Rounds {
		t.Fatalf("rounds %d vs %d", asyncRes.Rounds, syncRes.Rounds)
	}
	for i := range syncRes.Accuracy {
		if asyncRes.Accuracy[i] != syncRes.Accuracy[i] {
			t.Fatalf("round %d accuracy %v vs sync %v", i+1, asyncRes.Accuracy[i], syncRes.Accuracy[i])
		}
		if asyncRes.TrainLoss[i] != syncRes.TrainLoss[i] {
			t.Fatalf("round %d loss %v vs sync %v", i+1, asyncRes.TrainLoss[i], syncRes.TrainLoss[i])
		}
		if asyncRes.GFLOPsByRound[i] != syncRes.GFLOPsByRound[i] {
			t.Fatalf("round %d gflops %v vs sync %v", i+1, asyncRes.GFLOPsByRound[i], syncRes.GFLOPsByRound[i])
		}
		if asyncRes.CommBytesByRound[i] != syncRes.CommBytesByRound[i] {
			t.Fatalf("round %d comm %v vs sync %v", i+1, asyncRes.CommBytesByRound[i], syncRes.CommBytesByRound[i])
		}
		if asyncRes.SimTimeByRound[i] != 0 {
			t.Fatalf("zero latency but sim time %v", asyncRes.SimTimeByRound[i])
		}
	}
	if asyncRes.BestAccuracy != syncRes.BestAccuracy || asyncRes.FinalAccuracy != syncRes.FinalAccuracy {
		t.Fatalf("summary metrics differ: best %v/%v final %v/%v",
			asyncRes.BestAccuracy, syncRes.BestAccuracy, asyncRes.FinalAccuracy, syncRes.FinalAccuracy)
	}
}

// The buffered runtime under straggler latency must stay deterministic,
// keep a monotone simulated clock, record nonnegative staleness, and
// still learn.
func TestAsyncBufferedStragglersLearnAndMeter(t *testing.T) {
	build := func() AsyncConfig {
		acfg := asyncTestConfig(t, NewFedTrip(0.4))
		acfg.Rounds = 12
		acfg.Concurrency = 4
		acfg.BufferSize = 2
		acfg.Latency = StragglerLatency{Fast: 1, Slow: 10, SlowEvery: 3}
		return acfg
	}
	res, err := RunAsync(build())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 12 {
		t.Fatalf("rounds %d", res.Rounds)
	}
	if len(res.SimTimeByRound) != 12 || len(res.MeanStalenessByRound) != 12 {
		t.Fatal("async metric lengths")
	}
	prev := 0.0
	for i, ts := range res.SimTimeByRound {
		if ts < prev {
			t.Fatalf("sim time decreased at round %d: %v -> %v", i+1, prev, ts)
		}
		prev = ts
		if res.MeanStalenessByRound[i] < 0 {
			t.Fatalf("negative staleness at round %d", i+1)
		}
	}
	if res.SimTimeByRound[11] <= 0 {
		t.Fatal("latency model produced no simulated time")
	}
	if res.BestAccuracy < 0.3 {
		t.Fatalf("async run failed to learn: %v", res.BestAccuracy)
	}
	// Determinism: the whole trajectory must replay exactly.
	res2, err := RunAsync(build())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Accuracy {
		if res.Accuracy[i] != res2.Accuracy[i] || res.SimTimeByRound[i] != res2.SimTimeByRound[i] {
			t.Fatalf("async run not deterministic at round %d", i+1)
		}
	}
}

// gapAlgo wraps FedTrip and records, at every BeginRound, the dispatch
// round and the client's LastRound as the runtime presented them.
type gapAlgo struct {
	*FedTrip
	mu    sync.Mutex
	seen  map[int][]int // clientID -> dispatch rounds in training order
	prevs map[int][]int // clientID -> LastRound observed at BeginRound
}

func (g *gapAlgo) BeginRound(c *Client, round int, global []float64) {
	g.mu.Lock()
	g.seen[c.ID] = append(g.seen[c.ID], round)
	g.prevs[c.ID] = append(g.prevs[c.ID], c.LastRound)
	g.mu.Unlock()
	g.FedTrip.BeginRound(c, round, global)
}

// Staleness bookkeeping equivalence: the LastRound chain each client sees
// must be exactly its own dispatch history shifted by one (0 first), so
// FedTrip's xi is computed from genuine participation gaps; and every
// merged update's Staleness must sit in [0, t-1].
func TestAsyncStalenessBookkeepingMatchesLastRound(t *testing.T) {
	algo := &gapAlgo{FedTrip: NewFedTrip(0.4), seen: map[int][]int{}, prevs: map[int][]int{}}
	acfg := asyncTestConfig(t, algo)
	acfg.Rounds = 10
	acfg.Concurrency = 3
	acfg.BufferSize = 2
	acfg.Latency = UniformLatency{Min: 0.5, Max: 5}
	var mu sync.Mutex
	type obs struct{ round, staleness int }
	var merged []obs
	acfg.OnUpdates = func(round int, global []float64, updates []Update) {
		mu.Lock()
		for _, u := range updates {
			merged = append(merged, obs{round, u.Staleness})
		}
		mu.Unlock()
	}
	if _, err := RunAsync(acfg); err != nil {
		t.Fatal(err)
	}
	if len(merged) == 0 {
		t.Fatal("no updates observed")
	}
	sawStale := false
	for _, o := range merged {
		if o.staleness < 0 || o.staleness > o.round-1 {
			t.Fatalf("staleness %d outside [0,%d]", o.staleness, o.round-1)
		}
		if o.staleness > 0 {
			sawStale = true
		}
	}
	if !sawStale {
		t.Fatal("heterogeneous latency produced no stale update — buffer never lagged")
	}
	for id, rounds := range algo.seen {
		prevs := algo.prevs[id]
		if prevs[0] != 0 {
			t.Fatalf("client %d first LastRound %d, want 0", id, prevs[0])
		}
		for i := 1; i < len(rounds); i++ {
			if prevs[i] != rounds[i-1] {
				t.Fatalf("client %d dispatch %d: LastRound %d, want previous dispatch round %d",
					id, i, prevs[i], rounds[i-1])
			}
			if rounds[i] < rounds[i-1] {
				t.Fatalf("client %d dispatch rounds not monotone: %v", id, rounds)
			}
		}
	}
}

// Under partial participation with uniform random dispatch, FedTrip's
// XiInverseGap must actually see gaps larger than one — the regime the
// sync lock-step loop with full participation never produces.
func TestAsyncExercisesXiGaps(t *testing.T) {
	algo := &gapAlgo{FedTrip: NewFedTrip(0.4), seen: map[int][]int{}, prevs: map[int][]int{}}
	acfg := asyncTestConfig(t, algo)
	acfg.Rounds = 15
	acfg.Concurrency = 2 // 2 of 6 clients in flight: most sit out each round
	acfg.BufferSize = 2
	acfg.Latency = ExponentialLatency{Mean: 2}
	if _, err := RunAsync(acfg); err != nil {
		t.Fatal(err)
	}
	maxGap := 0
	for id, rounds := range algo.seen {
		prevs := algo.prevs[id]
		for i := range rounds {
			if prevs[i] == 0 {
				continue
			}
			if gap := rounds[i] - prevs[i]; gap > maxGap {
				maxGap = gap
			}
		}
		_ = id
	}
	if maxGap < 2 {
		t.Fatalf("max participation gap %d — async runtime not exercising staleness", maxGap)
	}
}

func TestAsyncConfigValidation(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*AsyncConfig)
		wantErr bool
	}{
		{"defaults", func(c *AsyncConfig) {}, false},
		{"explicit", func(c *AsyncConfig) { c.Concurrency = 2; c.BufferSize = 3 }, false},
		{"concurrency over population", func(c *AsyncConfig) { c.Concurrency = 7 }, true},
		{"negative concurrency", func(c *AsyncConfig) { c.Concurrency = -1 }, true},
		{"negative buffer", func(c *AsyncConfig) { c.BufferSize = -1 }, true},
		{"bad base config", func(c *AsyncConfig) { c.Rounds = 0 }, true},
	}
	for _, tc := range cases {
		acfg := asyncTestConfig(t, NewFedTrip(0.4))
		tc.mutate(&acfg)
		_, err := NewAsyncServer(acfg)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err=%v wantErr=%v", tc.name, err, tc.wantErr)
		}
	}
	// Defaults must be filled from ClientsPerRound.
	acfg := asyncTestConfig(t, NewFedTrip(0.4))
	if err := acfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if acfg.Concurrency != acfg.ClientsPerRound || acfg.BufferSize != acfg.ClientsPerRound {
		t.Fatalf("defaults %d/%d want %d", acfg.Concurrency, acfg.BufferSize, acfg.ClientsPerRound)
	}
	if _, ok := acfg.Latency.(ZeroLatency); !ok {
		t.Fatalf("default latency %T", acfg.Latency)
	}
}

// aggAlgo overrides server aggregation; preAlgo needs a pre-round phase.
// Both are unsafe under buffered async (Aggregate/PreRound run while
// other clients are mid-training) and must be rejected there, while the
// barrier mode — which joins every client first — still accepts them.
type aggAlgo struct{ Base }

func (aggAlgo) Name() string { return "agg-test" }
func (aggAlgo) Aggregate(round int, global []float64, updates []Update) []float64 {
	return updates[0].Params
}

type preAlgo struct{ Base }

func (preAlgo) Name() string                                             { return "pre-test" }
func (preAlgo) PreRound(round int, selected []*Client, global []float64) {}

func TestBufferedModeRejectsServerHookAlgorithms(t *testing.T) {
	for _, algo := range []Algorithm{aggAlgo{}, preAlgo{}} {
		acfg := asyncTestConfig(t, algo)
		if _, err := NewAsyncServer(acfg); err == nil {
			t.Errorf("buffered mode accepted %s", algo.Name())
		}
		barrier := asyncTestConfig(t, algo)
		barrier.RoundBarrier = true
		if _, err := NewAsyncServer(barrier); err != nil {
			t.Errorf("barrier mode rejected %s: %v", algo.Name(), err)
		}
	}
}

// A discount that zeroes every weight (hard staleness cutoff taken to the
// extreme) must leave the global model untouched and finite, not divide
// it into NaNs.
func TestFullyDiscountedBufferLeavesModelFinite(t *testing.T) {
	acfg := asyncTestConfig(t, NewFedTrip(0.4))
	acfg.Rounds = 3
	acfg.Discount = func(int) float64 { return 0 }
	a, err := NewAsyncServer(acfg)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), a.Server().Global()...)
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds %d", res.Rounds)
	}
	after := a.Server().Global()
	for i := range after {
		if after[i] != before[i] {
			t.Fatalf("zero-weight merges moved the global model at %d", i)
		}
	}
}

func TestPolyDiscount(t *testing.T) {
	d := PolyDiscount(0.5)
	if d(0) != 1 {
		t.Fatalf("discount at staleness 0 must be exactly 1, got %v", d(0))
	}
	if got := d(3); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("discount(3) = %v want 0.5", got)
	}
	prev := 1.0
	for s := 1; s < 10; s++ {
		if d(s) >= prev {
			t.Fatalf("discount not decreasing at %d", s)
		}
		prev = d(s)
	}
	if flat := PolyDiscount(0); flat(7) != 1 {
		t.Fatal("exponent 0 must disable discounting")
	}
}

// stalenessAlgo overrides the runtime discount via StalenessWeighter.
type stalenessAlgo struct {
	Base
	calls map[int]int
	mu    sync.Mutex
}

func (s *stalenessAlgo) Name() string { return "stale-test" }
func (s *stalenessAlgo) StalenessWeight(st int) float64 {
	s.mu.Lock()
	s.calls[st]++
	s.mu.Unlock()
	return 1 / (1 + float64(st))
}

func TestStalenessWeighterOverridesDiscount(t *testing.T) {
	algo := &stalenessAlgo{calls: map[int]int{}}
	acfg := asyncTestConfig(t, algo)
	acfg.Rounds = 8
	acfg.Concurrency = 4
	acfg.BufferSize = 2
	acfg.Latency = UniformLatency{Min: 1, Max: 9}
	acfg.Discount = func(int) float64 { t.Fatal("algorithm override must win"); return 0 }
	if _, err := RunAsync(acfg); err != nil {
		t.Fatal(err)
	}
	if len(algo.calls) == 0 {
		t.Fatal("StalenessWeight never consulted")
	}
}

// Stragglers make buffered async reach a virtual-time budget far sooner
// than the lock-step barrier: the barrier pays the slow client's latency
// every round it participates, buffered aggregation does not wait.
func TestAsyncBeatsBarrierWallClockUnderStragglers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: virtual-time outcome, not concurrency, under test")
	}
	lat := StragglerLatency{Fast: 1, Slow: 20, SlowEvery: 2} // ids 0,2,4 slow
	barrier := asyncTestConfig(t, NewFedTrip(0.4))
	barrier.Rounds = 8
	barrier.RoundBarrier = true
	barrier.Latency = lat
	bres, err := RunAsync(barrier)
	if err != nil {
		t.Fatal(err)
	}
	buffered := asyncTestConfig(t, NewFedTrip(0.4))
	buffered.Rounds = 8
	buffered.Concurrency = 3
	buffered.BufferSize = 3
	buffered.Latency = lat
	ares, err := RunAsync(buffered)
	if err != nil {
		t.Fatal(err)
	}
	bt := bres.SimTimeByRound[len(bres.SimTimeByRound)-1]
	at := ares.SimTimeByRound[len(ares.SimTimeByRound)-1]
	if at >= bt {
		t.Fatalf("buffered async total time %.1fs not below barrier %.1fs", at, bt)
	}
}
