// Package nn implements the neural-network substrate: layers with manual
// backpropagation, models assembled by a builder, and the three
// architectures the paper evaluates (MLP, LeNet5-style CNN, AlexNet-style
// conv net).
//
// Design: every parameter of a model lives in ONE flat []float64, and every
// gradient in a parallel flat []float64. Layers receive subslice views at
// build time. The federated-learning layer then treats models as plain
// vectors — aggregation (Eq. 2 of the paper), the FedProx/FedTrip/FedDyn
// gradient transforms, and the optimizers are all BLAS-1 kernels over these
// vectors, exactly matching the paper's O(|w|) attaching-cost analysis.
package nn

import (
	"repro/internal/prng"

	"repro/internal/tensor"
)

// Layer is one differentiable stage of a model. Layers are created through
// the Builder, which resolves shapes and binds parameter storage; they are
// stateful (they cache forward activations for the backward pass) and
// therefore belong to exactly one Model.
type Layer interface {
	// Name identifies the layer kind for diagnostics ("dense", "conv2d"...).
	Name() string
	// Resolve fixes the per-sample input shape, returning the per-sample
	// output shape or an error if the input is incompatible.
	Resolve(in []int) (out []int, err error)
	// ParamCount reports the number of scalar parameters (valid after
	// Resolve).
	ParamCount() int
	// Bind hands the layer its parameter and gradient storage (subslices
	// of the model's flat vectors) and initialises the parameters.
	Bind(params, grads []float64, rng *prng.Rand)
	// Forward computes the layer output for a batch x of shape
	// [N, inShape...]. train enables training-only behaviour (dropout).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward receives dL/d(output) and returns dL/d(input), accumulating
	// parameter gradients into the bound gradient slice.
	Backward(dy *tensor.Tensor) *tensor.Tensor
	// FwdFLOPs is the analytic per-sample forward cost (FLOPs), valid
	// after Resolve. Backward cost is modelled as 2x forward, the standard
	// approximation the paper also uses.
	FwdFLOPs() float64
}

// prependBatch builds a full batch shape [n, per-sample dims...].
func prependBatch(n int, per []int) []int {
	s := make([]int, 0, len(per)+1)
	s = append(s, n)
	return append(s, per...)
}

// numel multiplies the dims of a per-sample shape.
func numel(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}
