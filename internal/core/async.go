// Asynchronous, staleness-aware federated runtime.
//
// The synchronous Server.Run is the paper's lock-step loop: select K
// clients, wait for all of them, aggregate. Under heterogeneous client
// speeds every round costs the straggler's latency. The AsyncServer
// instead keeps a fixed number of clients training at all times and
// aggregates every BufferSize arrivals (FedBuff-style buffered async),
// discounting each merged update by its staleness — the number of
// aggregations the server completed while the update was in flight.
//
// Time is simulated: a LatencyModel assigns each dispatch a virtual
// duration, and the event loop processes arrivals in virtual-time order
// (ties broken by dispatch order, so runs are deterministic). Local
// training itself really executes — on the bounded shard pool, one
// training engine per shard — which is what the throughput benchmarks
// measure; only the clock is virtual.
//
// The loop is built to survive populations of 100k–1M clients:
//
//   - In-flight jobs sit in an indexed min-heap keyed on (finish, seq), so
//     finding the next arrival is O(log M) instead of a linear scan.
//   - Idle clients live in the population registry's O(1) uniform-pick
//     set, so dispatch never scans the fleet.
//   - The number of *simulated* in-flight clients (Concurrency) is
//     decoupled from the number of training engines (Config.Shards):
//     thousands of virtual dispatches queue behind a handful of engines,
//     keeping memory O(shards * |w|), not O(population * |w|).
//   - Derivable per-client values — latency bases, device speeds, network
//     profiles, fault classes — are regenerated on demand from seed
//     streams keyed by client ID (one scratch-RNG reseed per lookup), so
//     no fleet-wide float or profile array exists at all; availability
//     runs as an aggregate sampled process (device.go) with O(1) clock
//     state instead of one Markov chain per client.
//   - trainJobs are pooled and the event heap tracks clients by int32
//     slot index, so steady-state event processing allocates nothing and
//     GC scan cost stops growing with the population.
//   - Evaluation runs off the loop on the snapshot-based evaluator, so a
//     merge never stalls behind the test set.
//
// Staleness is exactly FedTrip's xi regime: a client dispatched for round
// d whose previous participation was round r trains with a genuine
// participation gap d-r, so the XiInverseGap schedule is exercised under
// real partial participation and stale uploads rather than the uniform
// gaps of lock-step rounds.
package core

import (
	"fmt"
	"math"
	"unsafe"

	"repro/internal/prng"
	"repro/internal/tensor"
)

// PolyDiscount returns the polynomial staleness discount of the async FL
// literature (FedAsync/FedBuff): weight(s) = (1+s)^(-a). a = 0 disables
// discounting; a = 0.5 is the customary default. The discount at
// staleness 0 is exactly 1, which the barrier equivalence mode relies on.
func PolyDiscount(a float64) func(staleness int) float64 {
	return func(s int) float64 {
		if s <= 0 {
			return 1
		}
		return math.Pow(1+float64(s), -a)
	}
}

// AsyncConfig configures the asynchronous runtime on top of a base
// Config. Config.Rounds counts buffered aggregations (the async analogue
// of a communication round); Config.ClientsPerRound seeds the defaults
// for Concurrency and BufferSize. It is the legacy async surface — a thin
// mapping onto the unified RunSpec (Runtime async, or barrier when
// RoundBarrier is set); new callers should build a RunSpec and call Start
// directly, which also exposes the pluggable AggregationPolicy.
type AsyncConfig struct {
	Config
	// Concurrency is the number of clients training simultaneously in
	// simulated time (FedBuff's M). Defaults to ClientsPerRound. Must not
	// exceed the population. Real parallelism is bounded separately by
	// Config.Shards.
	Concurrency int
	// BufferSize is the number of arrivals per aggregation (FedBuff's K).
	// Defaults to ClientsPerRound.
	BufferSize int
	// Latency models each dispatch's virtual duration. Defaults to
	// ZeroLatency.
	Latency LatencyModel
	// RoundBarrier switches to lock-step semantics: each round selects
	// ClientsPerRound clients exactly like the synchronous server, waits
	// for all of them (round time = straggler's latency), and merges with
	// staleness 0. With ZeroLatency this reproduces Server.Run bit-for-bit
	// on the same seed; with a real latency model it prices the
	// synchronous straggler tax in simulated time.
	RoundBarrier bool
	// Discount maps staleness to a weight multiplier on the update's
	// data-size aggregation weight. Resolution order: the Algorithm's
	// StalenessWeighter override if implemented, then this field, then
	// PolyDiscount(0.5).
	Discount func(staleness int) float64
}

// spec maps the legacy async configuration onto the unified RunSpec.
func (c *AsyncConfig) spec() RunSpec {
	rt := RuntimeAsync
	if c.RoundBarrier {
		rt = RuntimeBarrier
	}
	return RunSpec{
		Config:      c.Config,
		Runtime:     rt,
		Concurrency: c.Concurrency,
		BufferSize:  c.BufferSize,
		Latency:     c.Latency,
		Discount:    c.Discount,
	}
}

// Validate checks the async knobs and fills defaults. It delegates to the
// unified RunSpec.Validate — the one place run defaults live — and copies
// the resolved values back.
func (c *AsyncConfig) Validate() error {
	sp := c.spec()
	if err := sp.Validate(); err != nil {
		return err
	}
	c.Config = sp.Config
	c.Concurrency = sp.Concurrency
	c.BufferSize = sp.BufferSize
	c.Latency = sp.Latency
	return nil
}

// AsyncServer drives the asynchronous runtime over a regular Server (same
// population, global model, metering, and evaluation).
type AsyncServer struct {
	s      *Server
	spec   RunSpec
	latRng *prng.Rand
	now    float64
	pop    *population
	// derive is the scratch RNG behind stateless per-client derivation:
	// device speeds (spec.Devices) and link profiles (spec.Network) are
	// recomputed per dispatch/arrival by re-seeding it from the client's
	// indexed stream, instead of materializing fleet-wide arrays. Event-
	// loop-only (never touched by shard workers).
	derive prng.Rand
	// churn is the fleet availability process (nil without RunSpec.Churn).
	churn *churn
	// joinScratch gathers the jobs a device-mode dispatch burst submitted
	// before they are joined in dispatch order (event-loop scratch).
	joinScratch []*trainJob
}

// NewAsyncServer validates the legacy configuration and builds the
// population; it is RunSpec/Start's async path behind the old API.
func NewAsyncServer(cfg AsyncConfig) (*AsyncServer, error) {
	sp := cfg.spec()
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return newAsyncServer(sp)
}

// NewAsyncServerSpec validates a RunSpec and builds its async runtime —
// Start's async path for callers that want the server handle (fleet
// statistics: Participation, Offline, DeviceSpeeds) around the run. The
// spec's runtime must be async or barrier.
func NewAsyncServerSpec(sp RunSpec) (*AsyncServer, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if sp.Runtime == RuntimeSync {
		return nil, fmt.Errorf("core: NewAsyncServerSpec wants the async or barrier runtime, got %q", sp.Runtime)
	}
	return newAsyncServer(sp)
}

// newAsyncServer builds the runtime from a validated spec (policy
// resolved, defaults filled).
func newAsyncServer(sp RunSpec) (*AsyncServer, error) {
	s, err := NewServer(sp.Config)
	if err != nil {
		return nil, err
	}
	s.installPolicy(sp.Policy)
	s.installFaults(sp.Faults)
	a := &AsyncServer{
		s:    s,
		spec: sp,
		// A dedicated latency source keeps the selection stream
		// (s.rng) identical to the synchronous server's, which the
		// barrier equivalence mode depends on.
		latRng: seedStream(sp.Seed, streamLatency),
		pop:    newPopulation(len(s.clients), sp.Latency),
	}
	if sp.Churn != nil {
		a.churn = newChurn(len(s.clients), sp.Churn, sp.Seed)
	}
	return a, nil
}

// adaptiveSteps is a device's per-round mini-batch step budget: the
// round's full step count scaled by the client's speed, clamped to
// [1, full]. A speed-1 device trains the full round, so the homogeneous
// fleet reproduces the plain trajectory bit-for-bit.
func adaptiveSteps(speed float64, samples, batch, epochs int) int {
	full := epochs * ((samples + batch - 1) / batch)
	steps := int(math.Round(speed * float64(full)))
	if steps < 1 {
		steps = 1
	}
	if steps > full {
		steps = full
	}
	return steps
}

// deviceDuration prices one completed dispatch: the round's metered
// FLOPs over the client's effective throughput.
func (a *AsyncServer) deviceDuration(j *trainJob) float64 {
	return float64(j.flops) / (a.spec.FlopRate * j.speed)
}

// netDuration prices one completed dispatch's wire traffic under the
// client's link profile: RTT plus the measured download and upload bytes
// over the respective bandwidths. The profile is derived statelessly
// from the client's indexed network stream. Zero without a network fleet
// (and for an infinite-bandwidth zero-RTT profile), so unpriced runs are
// bit-for-bit unchanged.
func (a *AsyncServer) netDuration(j *trainJob) float64 {
	if a.spec.Network == nil {
		return 0
	}
	p := clientNetProfile(j.c.ID, a.spec.Network, a.spec.Seed, &a.derive)
	return p.transferTime(j.downBytes, j.upBytes)
}

// armJob fills a job's device dispatch parameters, derived statelessly
// from the client's indexed device stream (no-ops without a device
// fleet).
func (a *AsyncServer) armJob(j *trainJob, id int) {
	if a.spec.Devices == nil {
		return
	}
	j.speed = deviceSpeed(id, a.spec.Devices, a.spec.Seed, &a.derive)
	if a.spec.AdaptiveLocalSteps {
		j.steps = adaptiveSteps(j.speed, len(j.c.Indices), a.spec.BatchSize, a.spec.LocalEpochs)
	}
}

// Server exposes the underlying synchronous server (global model, clients,
// evaluation) for tests and hooks.
func (a *AsyncServer) Server() *Server { return a.s }

// Now returns the current virtual time in seconds.
func (a *AsyncServer) Now() float64 { return a.now }

// Participation reports how many distinct clients have been dispatched at
// least once and the total number of dispatches — the fleet-coverage
// statistics of the population registry.
func (a *AsyncServer) Participation() (distinct int, dispatches int64) {
	return a.pop.participants()
}

// Offline reports how many clients are currently offline or permanently
// dropped (0 without a churn process).
func (a *AsyncServer) Offline() int {
	if a.churn == nil {
		return 0
	}
	return a.churn.offlineCount()
}

// DeviceSpeeds materializes the fleet's per-client compute-speed
// multipliers (nil without a device distribution). The runtime itself
// derives speeds on demand; this allocates a fresh O(N) array per call —
// a diagnostic surface, not a hot path.
func (a *AsyncServer) DeviceSpeeds() []float64 {
	if a.spec.Devices == nil {
		return nil
	}
	return sampleDeviceSpeeds(len(a.s.clients), a.spec.Devices, a.spec.Seed)
}

// NetProfiles materializes the fleet's per-client link profiles (nil
// without a network distribution). Like DeviceSpeeds, a diagnostic
// surface: the runtime derives profiles on demand.
func (a *AsyncServer) NetProfiles() []NetProfile {
	if a.spec.Network == nil {
		return nil
	}
	return sampleNetProfiles(len(a.s.clients), a.spec.Network, a.spec.Seed)
}

// PerClientStateBytes reports the runtime's deterministic per-client
// bookkeeping footprint in bytes: the scheduler registry (dispatch
// counter plus idle-set entry), the event heap's client→slot map, the
// aggregate churn permutation, the fault assignment (plus the noise
// adversary's stream pointers when derived), and the client objects
// themselves (slice entry, struct, sample indices). Lazily allocated
// training state — per-client RNGs, historical models, method vectors
// and scalar maps — is excluded: it scales with participation, not with
// population. The number is a pure function of the spec, which is what
// lets CI gate it as a regression metric (cmd/benchdiff, B/client).
func (a *AsyncServer) PerClientStateBytes() float64 {
	n := len(a.s.clients)
	if n == 0 {
		return 0
	}
	// Registry: dispatches + idle ids + idle pos (int32 each), and the
	// buffered runtime's heap slot map.
	total := int64(n) * (4 + 4 + 4 + 4)
	if a.churn != nil {
		// Aggregate churn: the segment permutation and its inverse.
		total += int64(n) * 8
	}
	if a.s.faults != nil {
		total += int64(n) // fault class byte
		if a.s.advRng != nil {
			total += int64(n) * 8 // noise-stream pointer
		}
	}
	total += int64(n) * int64(8+unsafe.Sizeof(Client{}))
	for _, c := range a.s.clients {
		total += int64(8 * cap(c.Indices))
	}
	return float64(total) / float64(n)
}

// RunAsync executes the legacy async configuration through the unified
// facade (equivalent to Start on the corresponding RunSpec).
func RunAsync(cfg AsyncConfig) (*Result, error) {
	a, err := NewAsyncServer(cfg)
	if err != nil {
		return nil, err
	}
	return a.Run()
}

// Run executes the configured number of aggregations.
func (a *AsyncServer) Run() (*Result, error) {
	var r runner
	var err error
	if a.spec.Runtime == RuntimeBarrier {
		r, err = newBarrierRunner(a)
	} else {
		r, err = newBufferedRunner(a)
	}
	if err != nil {
		return nil, err
	}
	return runToCompletion(r)
}

// barrierRunner is lock-step with a simulated clock in stepper form: the
// synchronous trajectory priced under the latency model, one round per
// step.
type barrierRunner struct {
	a          *AsyncServer
	rec        *recorder
	sp         *shardPool
	t          int // completed rounds
	flopsTotal int64
}

func newBarrierRunner(a *AsyncServer) (*barrierRunner, error) {
	rec, err := newRecorder(a.s)
	if err != nil {
		return nil, err
	}
	return &barrierRunner{
		a:   a,
		rec: rec,
		sp:  newShardPool(a.s, a.s.cfg.Shards, a.s.cfg.ClientsPerRound),
	}, nil
}

func (r *barrierRunner) server() *Server     { return r.a.s }
func (r *barrierRunner) recorder() *recorder { return r.rec }

// quiesce is a no-op: the barrier joins every client inside step, so a
// round boundary has nothing in flight.
func (r *barrierRunner) quiesce() {}

func (r *barrierRunner) close() {
	r.sp.close()
	r.rec.finalize()
}

func (r *barrierRunner) step() (bool, error) {
	a, s := r.a, r.a.s
	cfg := &s.cfg
	res := r.rec.res
	if r.t >= cfg.Rounds {
		return true, nil
	}
	t := r.t + 1
	selected := s.selectClients()
	if pr, ok := cfg.Algo.(PreRounder); ok {
		pr.PreRound(t, selected, s.global)
	}
	jobs := s.growJobs(len(selected))
	for i, c := range selected {
		j := jobs[i]
		j.c, j.round, j.seq, j.global = c, t, i, s.global
		j.steps, j.speed = 0, 0
		a.armJob(j, c.ID)
		if a.spec.Devices == nil {
			j.finish = a.now + a.pop.sampleLatency(a.spec.Latency, c.ID, a.latRng)
		}
		a.pop.dispatched(c.ID)
		// All jobs read the same pre-aggregation global; no writer
		// until every one of them has joined below.
		r.sp.submit(j)
	}
	roundEnd := a.now
	updates := s.growUpdates(len(jobs))
	weights := s.growWeights(len(jobs))
	for i, j := range jobs {
		<-j.done
		if a.spec.Devices != nil {
			// Device-profiled fleet: the round time is the metered
			// compute itself, not an independent latency draw.
			j.finish = a.now + a.deviceDuration(j)
		}
		if a.spec.Network != nil {
			// Network-priced fleet: the transfers' time stacks on top of
			// the compute (or latency-model) duration.
			j.finish += a.netDuration(j)
		}
		a.pop.arrived(j.c.ID, true)
		if j.finish > roundEnd {
			roundEnd = j.finish
		}
		updates[i] = j.update // staleness 0 by construction
		j.update = Update{}
		weights[i] = a.s.policy.Weight(updates[i])
		r.flopsTotal += j.flops
		r.rec.addWire(j.downBytes + j.upBytes)
	}
	a.now = roundEnd
	if cfg.OnUpdates != nil {
		cfg.OnUpdates(t, s.global, updates)
	}
	a.aggregate(t, weights, updates, a.s.policy.MergeRate(t, updates))
	if !tensor.AllFinite(s.global) {
		return true, fmt.Errorf("core: %s diverged at round %d (non-finite global model)", cfg.Algo.Name(), t)
	}
	acc := r.rec.record(t, cfg.Rounds, updates, r.flopsTotal)
	recycleUpdates(updates)
	res.SimTimeByRound = append(res.SimTimeByRound, a.now)
	res.MeanStalenessByRound = append(res.MeanStalenessByRound, 0)
	if cfg.Logf != nil {
		cfg.Logf("round %3d/%d algo=%s acc=%.4f loss=%.4f t=%.1fs (barrier)", t, cfg.Rounds, cfg.Algo.Name(), acc, res.TrainLoss[t-1], a.now)
	}
	if cfg.OnRound != nil {
		cfg.OnRound(t, s)
	}
	r.t = t
	if cfg.StopAtTarget && res.RoundsToTarget > 0 {
		return true, nil
	}
	return t >= cfg.Rounds, nil
}

// bufferedRunner is the event-driven asynchronous loop in stepper form:
// keep Concurrency clients in flight and let the aggregation policy
// decide when arrivals merge (FedBuff merges every K, FedAsync every
// single one) and how each buffered update is weighted. One step = the
// event-loop iterations up to and including the next aggregation, so
// between steps the run is at an aggregation boundary: the policy buffer
// is exactly the not-yet-merged arrivals and every in-flight job is
// either still training (joinable) or priced and queued in the event
// heap — precisely the state Snapshot serializes.
type bufferedRunner struct {
	a   *AsyncServer
	rec *recorder
	sp  *shardPool
	// The formerly loop-local event state, promoted to fields so a step
	// can return mid-run and a snapshot can serialize the loop.
	inflight   jobHeap
	buffer     []*trainJob
	flopsTotal int64
	seq        int // dispatch sequence (total dispatches so far)
	aggs       int // completed aggregations
	// free is the trainJob pool: jobs recycle after their update merges
	// (or is voided by a permanent drop), so steady-state dispatch
	// allocates neither jobs nor done channels. Bounded by
	// Concurrency + BufferSize live jobs.
	free []*trainJob
	// dropCB/rejoinCB are the availability callbacks as stored method
	// values — bound once so churn.advance in the hot loop does not
	// allocate a closure per call.
	dropCB   func(id int, at float64, permanent bool)
	rejoinCB func(id int, at float64)
}

func newBufferedRunner(a *AsyncServer) (*bufferedRunner, error) {
	rec, err := newRecorder(a.s)
	if err != nil {
		return nil, err
	}
	r := &bufferedRunner{
		a:   a,
		rec: rec,
		// Closing the pool joins every submitted job, so training
		// goroutines never outlive the run: they hold client state and
		// the transport.
		sp: newShardPool(a.s, a.s.cfg.Shards, a.spec.Concurrency),
	}
	// The heap's client index is how the churn process finds a dropped
	// client's in-flight job without a fleet-wide pointer array.
	r.inflight.trackClients(len(a.s.clients))
	r.dropCB = r.onDrop
	r.rejoinCB = r.onRejoin
	return r, nil
}

// getJob takes a job from the pool (or allocates the pool's next one,
// with its re-armed done channel), reset except for the channel.
func (r *bufferedRunner) getJob() *trainJob {
	if n := len(r.free); n > 0 {
		j := r.free[n-1]
		r.free = r.free[:n-1]
		return j
	}
	return &trainJob{done: make(chan struct{}, 1), heapIdx: -1}
}

// recycleJob returns a drained job (update extracted or voided, done
// token consumed) to the pool.
func (r *bufferedRunner) recycleJob(j *trainJob) {
	done := j.done
	*j = trainJob{done: done, heapIdx: -1}
	r.free = append(r.free, j) //fedtripvet:allow pool free list, bounded by Concurrency+BufferSize
}

func (r *bufferedRunner) server() *Server     { return r.a.s }
func (r *bufferedRunner) recorder() *recorder { return r.rec }

// quiesce joins every in-flight job whose local training has not been
// waited on yet. Training physically completes before its virtual
// arrival is processed in any case, so joining early never changes a
// trajectory — it only makes the per-client state (Hist, RNG position,
// FLOP counters) and the job's update serializable at this boundary.
func (r *bufferedRunner) quiesce() {
	for _, j := range r.inflight.js {
		if !j.trained {
			<-j.done
			j.trained = true
		}
	}
}

func (r *bufferedRunner) close() {
	r.sp.close()
	r.rec.finalize()
}

// Availability callbacks. A drop pulls the client out of the idle set
// and, when it is mid-flight, parks the job — the unserved remainder of
// its transfer is stashed and the arrival pushed to +Inf — until the
// rejoin restores finish = rejoin + remainder (the device pauses and
// uploads late, which is how updates stale enough for a
// MaxStalenessPolicy cutoff arise). A permanent drop voids the update
// instead: a parked job first gets a finite arrival back so the void
// drains through the loop. A rejoin makes an idle client dispatchable
// again; an in-flight one returns through its unparked arrival. A parked
// job can never pop while parked: its owner is offline, so a future
// churn event for it always precedes +Inf.
func (r *bufferedRunner) onDrop(id int, at float64, permanent bool) {
	a := r.a
	a.pop.idle.remove(id)
	j := r.inflight.byClient(id)
	if j == nil {
		return
	}
	if permanent {
		if j.remaining != 0 {
			j.finish = at + j.remaining
			j.remaining = 0
			r.inflight.fix(j.heapIdx)
		}
		j.dropped = true
		return
	}
	if j.finish > at {
		j.remaining = j.finish - at
		j.finish = math.Inf(1)
		r.inflight.fix(j.heapIdx)
	}
}

func (r *bufferedRunner) onRejoin(id int, at float64) {
	j := r.inflight.byClient(id)
	if j == nil {
		r.a.pop.idle.add(id)
		return
	}
	if j.remaining != 0 {
		j.finish = at + j.remaining
		j.remaining = 0
		r.inflight.fix(j.heapIdx)
	}
}

//fedtripvet:hotpath
func (r *bufferedRunner) dispatch() {
	a, s := r.a, r.a.s
	pending := a.joinScratch[:0]
	for r.inflight.len()+len(pending) < a.spec.Concurrency {
		id, ok := a.pickAvailable()
		if !ok {
			break
		}
		j := r.getJob()
		j.c, j.round, j.seq = s.clients[id], r.aggs+1, r.seq
		r.seq++
		a.armJob(j, id)
		// Snapshot: the global model mutates under in-flight jobs. The
		// buffer comes from the pool and goes back on arrival — and the
		// job itself from the runner's free list — so steady-state
		// dispatch allocates nothing.
		j.global = paramsPool.getCopy(s.global)
		a.pop.dispatched(id)
		r.sp.submit(j)
		if a.spec.Devices == nil {
			j.finish = a.now + a.pop.sampleLatency(a.spec.Latency, id, a.latRng)
			if a.spec.Network == nil {
				r.inflight.push(j)
				continue
			}
			// Network-priced fleet: the upload's size exists only once
			// training ran. The latency draw happened above, in pick
			// order — the stream is identical to the unpriced run's —
			// and only the heap push is deferred to the join below,
			// where the transfer time is added.
		}
		// Device-profiled or network-priced fleet: the arrival time
		// needs quantities (metered FLOPs, encoded wire bytes) that
		// exist only once training ran. Submit the whole burst first —
		// the shards train it in parallel — then join in dispatch order
		// below.
		pending = append(pending, j) //fedtripvet:allow joinScratch-backed burst list, reset to [:0] every dispatch
	}
	for _, j := range pending {
		<-j.done
		j.trained = true
		if a.spec.Devices != nil {
			j.finish = a.now + a.deviceDuration(j)
		}
		if a.spec.Network != nil {
			j.finish += a.netDuration(j)
		}
		r.inflight.push(j)
	}
	a.joinScratch = pending[:0]
}

//fedtripvet:hotpath
func (r *bufferedRunner) step() (bool, error) {
	a, s := r.a, r.a.s
	cfg := &s.cfg
	res := r.rec.res
	if r.aggs >= cfg.Rounds {
		return true, nil
	}
	for {
		// Availability first: every drop/rejoin up to the current clock
		// must land before this instant's dispatch decisions.
		if a.churn != nil {
			a.churn.advance(a.now, r.dropCB, r.rejoinCB)
		}
		r.dispatch()
		j := r.inflight.peek()
		if a.churn != nil {
			// The next event is the earlier of the next arrival and the
			// next availability change; an exact tie processes the
			// availability change first. (A drop tied with an arrival
			// does not defer it — onDrop only defers jobs with
			// finish > drop time, so an update that is already due
			// merges before its client goes dark.)
			if at, ok := a.churn.next(); ok && (j == nil || at <= j.finish) {
				if at > a.now {
					a.now = at
				}
				continue
			}
		}
		if j == nil {
			return true, fmt.Errorf("core: async runtime stalled: no client in flight and none dispatchable (offline clients with no rejoin scheduled cannot return)") //fedtripvet:allow cold terminal error path
		}
		r.inflight.pop()
		if j.finish > a.now {
			a.now = j.finish
		}
		if !j.trained {
			<-j.done
		}
		a.pop.arrived(j.c.ID, a.churn == nil || a.churn.online(j.c.ID))
		r.flopsTotal += j.flops
		r.rec.addWire(j.downBytes + j.upBytes)
		// Training is over for this job; its global snapshot has been
		// consumed and can serve the next dispatch.
		paramsPool.put(j.global)
		j.global = nil
		if j.dropped {
			// The device died mid-flight: the update is lost. Its FLOPs
			// stay metered (the work was burned before the drop); the
			// pooled upload buffer goes straight back, and so does the
			// job.
			if j.update.pooled {
				paramsPool.put(j.update.Params)
			}
			j.update = Update{}
			res.DroppedUpdates++
			r.recycleJob(j)
			continue
		}
		r.buffer = append(r.buffer, j) //fedtripvet:allow grows once to the merge policy's buffer size, then reused at [:0]
		if !a.s.policy.ReadyToMerge(len(r.buffer)) {
			continue
		}

		t := r.aggs + 1
		updates := s.growUpdates(len(r.buffer))
		weights := s.growWeights(len(r.buffer))
		var staleSum float64
		for i, bj := range r.buffer {
			u := bj.update
			bj.update = Update{}
			u.Staleness = t - bj.round
			if u.Staleness < 0 {
				u.Staleness = 0
			}
			updates[i] = u
			weights[i] = a.s.policy.Weight(u)
			staleSum += float64(u.Staleness)
			r.recycleJob(bj)
		}
		r.buffer = r.buffer[:0]
		if cfg.OnUpdates != nil {
			cfg.OnUpdates(t, s.global, updates)
		}
		a.aggregate(t, weights, updates, a.s.policy.MergeRate(t, updates))
		if !tensor.AllFinite(s.global) {
			return true, fmt.Errorf("core: %s diverged at aggregation %d (non-finite global model)", cfg.Algo.Name(), t) //fedtripvet:allow cold terminal error path
		}
		acc := r.rec.record(t, cfg.Rounds, updates, r.flopsTotal)
		recycleUpdates(updates)
		res.SimTimeByRound = append(res.SimTimeByRound, a.now)                                      //fedtripvet:allow per-aggregation series, amortized growth over the run
		res.MeanStalenessByRound = append(res.MeanStalenessByRound, staleSum/float64(len(updates))) //fedtripvet:allow per-aggregation series, amortized growth over the run
		if cfg.Logf != nil {
			cfg.Logf("agg %3d/%d algo=%s acc=%.4f loss=%.4f t=%.1fs stale=%.2f", t, cfg.Rounds, cfg.Algo.Name(), acc, res.TrainLoss[t-1], a.now, res.MeanStalenessByRound[t-1])
		}
		if cfg.OnRound != nil {
			cfg.OnRound(t, s)
		}
		r.aggs = t
		if cfg.StopAtTarget && res.RoundsToTarget > 0 {
			return true, nil
		}
		return r.aggs >= cfg.Rounds, nil
	}
}

// aggregate merges a buffer. An Algorithm's Aggregator override wins (it
// sees Update.Staleness); otherwise the policy's weights and merge rate
// go through the shared weighted average. Validate rejects Aggregator
// methods in buffered mode, so the override branch is only reachable from
// the barrier loop, where no client is in flight.
func (a *AsyncServer) aggregate(t int, weights []float64, updates []Update, eta float64) {
	if agg, ok := a.s.cfg.Algo.(Aggregator); ok {
		next := agg.Aggregate(t, a.s.global, updates)
		copy(a.s.global, next)
		return
	}
	a.s.aggregateWeightedRate(weights, updates, eta)
}

// pickAvailable draws one idle client uniformly at random (the async
// analogue of the paper's uniform selection), or reports none idle. O(1)
// via the population registry's dense idle set; it consumes exactly one
// draw from the selection stream per successful pick.
func (a *AsyncServer) pickAvailable() (int, bool) {
	return a.pop.idle.pick(a.s.rng)
}
