// Package algos implements the baseline federated-learning methods the
// paper compares FedTrip against (§V.A: FedAvg, FedProx, SlowMo, MOON,
// FedDyn) plus the appendix/related-work methods (SCAFFOLD, FedDANE,
// MimeLite). Each method is a core.Algorithm; FedTrip itself lives in
// internal/core as the paper's primary contribution.
//
// Concurrency contract: the server invokes BeginRound / TransformGrad /
// EndRound on client goroutines concurrently, so methods keep all
// per-client state in Client.StateVec / Client.Scalar and treat their own
// struct fields as read-only during the client phase; struct fields are
// only mutated in PreRound and Aggregate, which the server calls
// single-threaded. One Algorithm instance must not be shared between
// concurrent Runs.
package algos

import (
	"fmt"

	"repro/internal/core"
)

// Params carries the per-method hyperparameters of §V.A. Zero values are
// replaced by the paper's defaults in New.
type Params struct {
	// Mu is the regularization strength: FedTrip (1.0 MLP / 0.4 others),
	// FedProx (0.1), MOON (1.0), FedDANE (0.1).
	Mu float64
	// Tau is MOON's contrastive temperature (0.5).
	Tau float64
	// Alpha is FedDyn's regularization coefficient (1.0 on MNIST, 0.1
	// elsewhere).
	Alpha float64
	// Beta is the server momentum of SlowMo (0.5) and MimeLite (0.9).
	Beta float64
	// SlowLR is SlowMo's slow learning rate (1.0).
	SlowLR float64
}

// Names lists the registry in the paper's table order, appendix methods
// and related-work extensions (FedGKD §II.B, FedNova [22]) last.
func Names() []string {
	return []string{"fedtrip", "fedavg", "fedprox", "slowmo", "moon", "feddyn", "scaffold", "feddane", "mimelite", "fedgkd", "fednova"}
}

// New builds a fresh algorithm instance by registry name, applying the
// paper's default hyperparameters for any zero Params field.
func New(name string, p Params) (core.Algorithm, error) {
	switch name {
	case "fedavg":
		return &FedAvg{}, nil
	case "fedtrip":
		if p.Mu == 0 {
			p.Mu = 0.4
		}
		return core.NewFedTrip(p.Mu), nil
	case "fedprox":
		if p.Mu == 0 {
			p.Mu = 0.1
		}
		return &FedProx{Mu: p.Mu}, nil
	case "moon":
		if p.Mu == 0 {
			p.Mu = 1
		}
		if p.Tau == 0 {
			p.Tau = 0.5
		}
		return &MOON{Mu: p.Mu, Tau: p.Tau}, nil
	case "feddyn":
		if p.Alpha == 0 {
			p.Alpha = 0.1
		}
		return &FedDyn{Alpha: p.Alpha}, nil
	case "slowmo":
		if p.Beta == 0 {
			p.Beta = 0.5
		}
		if p.SlowLR == 0 {
			p.SlowLR = 1
		}
		return &SlowMo{Beta: p.Beta, SlowLR: p.SlowLR}, nil
	case "scaffold":
		return &SCAFFOLD{}, nil
	case "feddane":
		if p.Mu == 0 {
			p.Mu = 0.1
		}
		return &FedDANE{Mu: p.Mu}, nil
	case "mimelite":
		if p.Beta == 0 {
			p.Beta = 0.9
		}
		return &MimeLite{Beta: p.Beta}, nil
	case "fedgkd":
		if p.Mu == 0 {
			p.Mu = 0.2
		}
		if p.Tau == 0 {
			p.Tau = 2
		}
		return &FedGKD{Gamma: p.Mu, Tau: p.Tau}, nil
	case "fednova":
		return &FedNova{}, nil
	}
	return nil, fmt.Errorf("algos: unknown method %q (known: %v)", name, Names())
}

// FedAvg is the fundamental method (McMahan et al.): plain local SGDm and
// data-size-weighted averaging. It is core.Base with a name.
type FedAvg struct {
	core.Base
}

// Name implements core.Algorithm.
func (FedAvg) Name() string { return "fedavg" }

// FedProx (Li et al., MLSys 2020) adds the proximal term mu/2*||w-w_t||^2
// to the local objective, i.e. g += mu*(w - w_global) each iteration.
type FedProx struct {
	core.Base
	Mu float64
}

// Name implements core.Algorithm.
func (*FedProx) Name() string { return "fedprox" }

// BeginRound snapshots the received global model.
func (f *FedProx) BeginRound(c *core.Client, round int, global []float64) {
	copy(c.RoundVec("fedprox.global"), global)
}

// TransformGrad applies the proximal gradient (attach cost 2|w|).
func (f *FedProx) TransformGrad(c *core.Client, round int, w, g []float64) {
	global := c.RoundVec("fedprox.global")
	for i := range g {
		g[i] += f.Mu * (w[i] - global[i])
	}
	c.Counter.Add(int64(2 * len(w)))
}
