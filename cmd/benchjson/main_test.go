package main

import "testing"

func TestParseLine(t *testing.T) {
	line := "BenchmarkAsync10kClients-4   \t       1\t  99141931 ns/op\t      1291 updates/sec\t215744648 B/op\t   31186 allocs/op"
	b, ok := parseLine(line)
	if !ok {
		t.Fatal("benchmark line rejected")
	}
	if b.Name != "BenchmarkAsync10kClients" || b.FullName != "BenchmarkAsync10kClients-4" {
		t.Fatalf("names %q / %q", b.Name, b.FullName)
	}
	if b.Iterations != 1 {
		t.Fatalf("iterations %d", b.Iterations)
	}
	want := map[string]float64{
		"ns/op": 99141931, "updates/sec": 1291, "B/op": 215744648, "allocs/op": 31186,
	}
	for unit, v := range want {
		if b.Metrics[unit] != v {
			t.Fatalf("metric %s = %v want %v", unit, b.Metrics[unit], v)
		}
	}
}

func TestParseLineNoProcsSuffix(t *testing.T) {
	b, ok := parseLine("BenchmarkSync1kClients \t 2\t  500 ns/op")
	if !ok || b.Name != "BenchmarkSync1kClients" || b.Iterations != 2 || b.Metrics["ns/op"] != 500 {
		t.Fatalf("parsed %+v ok=%v", b, ok)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro\t1.467s",
		"Benchmark", // header-only, no fields
		"BenchmarkBroken notanumber 5 ns/op",
		"| fedtrip | 12 |", // rendered table rows
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("accepted noise line %q", line)
		}
	}
}

// A benchmark that prints a trailing odd field (e.g. a stray token) keeps
// the parsed pairs it could read.
func TestParseLineOddFieldCount(t *testing.T) {
	b, ok := parseLine("BenchmarkX-8 10 123 ns/op 77")
	if !ok {
		t.Fatal("rejected")
	}
	if b.Metrics["ns/op"] != 123 || len(b.Metrics) != 1 {
		t.Fatalf("metrics %+v", b.Metrics)
	}
}

// TestParseLineAllocMetrics pins the artifact schema the perf trajectory
// relies on: a -benchmem/ReportAllocs line's B/op and allocs/op land in
// the metrics map alongside ns/op and any custom units.
func TestParseLineAllocMetrics(t *testing.T) {
	b, ok := parseLine("BenchmarkLocalTrainRound-4 \t 162 \t 13255896 ns/op \t 22289 B/op \t 3 allocs/op \t 951.2 updates/sec")
	if !ok {
		t.Fatal("rejected benchmem line")
	}
	want := map[string]float64{
		"ns/op": 13255896, "B/op": 22289, "allocs/op": 3, "updates/sec": 951.2,
	}
	for k, v := range want {
		if b.Metrics[k] != v {
			t.Fatalf("metric %s = %v, want %v (all: %+v)", k, b.Metrics[k], v, b.Metrics)
		}
	}
}
