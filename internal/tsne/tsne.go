// Package tsne implements exact t-SNE (van der Maaten & Hinton, 2008) and
// the silhouette score. The paper's Fig. 2 uses t-SNE to show that the
// global model's representations separate classes better than a client's
// local model, and that newer local models beat older ones; this package
// reproduces that experiment quantitatively (silhouette on the embedding)
// since the repository cannot render scatter plots.
//
// The implementation is the exact O(n^2) algorithm — fine for the few
// hundred test points Fig. 2 visualises.
package tsne

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/parallel"
)

// Config controls the embedding.
type Config struct {
	// Perplexity is the effective number of neighbours (default 30,
	// clamped to (n-1)/3).
	Perplexity float64
	// Iters is the number of gradient-descent iterations (default 400).
	Iters int
	// LearningRate is the embedding step size (default 100).
	LearningRate float64
	// Seed makes the embedding deterministic.
	Seed int64
}

func (c *Config) defaults(n int) {
	if c.Perplexity <= 0 {
		c.Perplexity = 30
	}
	if max := float64(n-1) / 3; c.Perplexity > max && max > 1 {
		c.Perplexity = max
	}
	if c.Iters <= 0 {
		c.Iters = 400
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 100
	}
}

// Embed computes a 2-D t-SNE embedding of n points with dim features
// (x is row-major [n*dim]). Returns [n*2] row-major coordinates.
func Embed(x []float64, n, dim int, cfg Config) ([]float64, error) {
	if n <= 1 || dim <= 0 || len(x) != n*dim {
		return nil, fmt.Errorf("tsne: bad input n=%d dim=%d len=%d", n, dim, len(x))
	}
	cfg.defaults(n)
	p := jointProbabilities(x, n, dim, cfg.Perplexity)

	rng := rand.New(rand.NewSource(cfg.Seed))
	y := make([]float64, n*2)
	for i := range y {
		y[i] = rng.NormFloat64() * 1e-2
	}
	vel := make([]float64, n*2)
	grad := make([]float64, n*2)
	q := make([]float64, n*n)
	num := make([]float64, n*n)

	const earlyExaggeration = 4.0
	exaggerationUntil := cfg.Iters / 4
	for iter := 0; iter < cfg.Iters; iter++ {
		// Student-t affinities in embedding space.
		var qsum float64
		for i := 0; i < n; i++ {
			yi0, yi1 := y[i*2], y[i*2+1]
			for j := i + 1; j < n; j++ {
				d0 := yi0 - y[j*2]
				d1 := yi1 - y[j*2+1]
				v := 1 / (1 + d0*d0 + d1*d1)
				num[i*n+j] = v
				num[j*n+i] = v
				qsum += 2 * v
			}
		}
		if qsum < 1e-12 {
			qsum = 1e-12
		}
		for i := range q {
			q[i] = num[i] / qsum
			if q[i] < 1e-12 {
				q[i] = 1e-12
			}
		}
		exag := 1.0
		if iter < exaggerationUntil {
			exag = earlyExaggeration
		}
		// Gradient: 4 * sum_j (exag*p_ij - q_ij) * num_ij * (y_i - y_j).
		parallel.For(n, func(i int) {
			var g0, g1 float64
			yi0, yi1 := y[i*2], y[i*2+1]
			row := i * n
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				mult := (exag*p[row+j] - q[row+j]) * num[row+j]
				g0 += mult * (yi0 - y[j*2])
				g1 += mult * (yi1 - y[j*2+1])
			}
			grad[i*2] = 4 * g0
			grad[i*2+1] = 4 * g1
		})
		momentum := 0.5
		if iter >= 250 {
			momentum = 0.8
		}
		for i := range y {
			vel[i] = momentum*vel[i] - cfg.LearningRate*grad[i]
			y[i] += vel[i]
		}
		// Centre the embedding.
		var m0, m1 float64
		for i := 0; i < n; i++ {
			m0 += y[i*2]
			m1 += y[i*2+1]
		}
		m0 /= float64(n)
		m1 /= float64(n)
		for i := 0; i < n; i++ {
			y[i*2] -= m0
			y[i*2+1] -= m1
		}
	}
	return y, nil
}

// jointProbabilities computes symmetrised input affinities with a
// per-point bandwidth found by binary search to match the perplexity.
func jointProbabilities(x []float64, n, dim int, perplexity float64) []float64 {
	d2 := make([]float64, n*n)
	parallel.For(n, func(i int) {
		xi := x[i*dim : (i+1)*dim]
		for j := i + 1; j < n; j++ {
			xj := x[j*dim : (j+1)*dim]
			var s float64
			for k := range xi {
				df := xi[k] - xj[k]
				s += df * df
			}
			d2[i*n+j] = s
			d2[j*n+i] = s
		}
	})
	logU := math.Log(perplexity)
	p := make([]float64, n*n)
	parallel.For(n, func(i int) {
		row := d2[i*n : (i+1)*n]
		prow := p[i*n : (i+1)*n]
		beta := 1.0
		betaMin, betaMax := math.Inf(-1), math.Inf(1)
		for tries := 0; tries < 50; tries++ {
			var sum float64
			for j := 0; j < n; j++ {
				if j == i {
					prow[j] = 0
					continue
				}
				prow[j] = math.Exp(-row[j] * beta)
				sum += prow[j]
			}
			if sum < 1e-300 {
				sum = 1e-300
			}
			// Shannon entropy of the conditional distribution.
			var h float64
			for j := 0; j < n; j++ {
				if j == i || prow[j] == 0 {
					continue
				}
				pj := prow[j] / sum
				h -= pj * math.Log(pj)
			}
			diff := h - logU
			if math.Abs(diff) < 1e-5 {
				for j := 0; j < n; j++ {
					prow[j] /= sum
				}
				return
			}
			if diff > 0 { // entropy too high: sharpen
				betaMin = beta
				if math.IsInf(betaMax, 1) {
					beta *= 2
				} else {
					beta = (beta + betaMax) / 2
				}
			} else {
				betaMax = beta
				if math.IsInf(betaMin, -1) {
					beta /= 2
				} else {
					beta = (beta + betaMin) / 2
				}
			}
			_ = sum
		}
		// Normalise with the final beta even if not converged.
		var sum float64
		for j := 0; j < n; j++ {
			if j != i {
				sum += prow[j]
			}
		}
		if sum > 0 {
			for j := 0; j < n; j++ {
				prow[j] /= sum
			}
		}
	})
	// Symmetrise: p_ij = (p_j|i + p_i|j) / (2n), floored.
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (p[i*n+j] + p[j*n+i]) / (2 * float64(n))
			if v < 1e-12 {
				v = 1e-12
			}
			out[i*n+j] = v
			out[j*n+i] = v
		}
	}
	return out
}

// Silhouette computes the mean silhouette coefficient of labelled points
// (x row-major [n*dim]) using Euclidean distance: values near 1 mean
// tight, well-separated clusters; near 0, overlapping clusters. Points in
// singleton classes contribute 0, per the standard definition.
func Silhouette(x []float64, labels []int, n, dim int) (float64, error) {
	if n <= 1 || len(x) != n*dim || len(labels) != n {
		return 0, fmt.Errorf("tsne: bad silhouette input n=%d dim=%d len=%d labels=%d", n, dim, len(x), len(labels))
	}
	classes := 0
	for _, l := range labels {
		if l < 0 {
			return 0, fmt.Errorf("tsne: negative label")
		}
		if l+1 > classes {
			classes = l + 1
		}
	}
	counts := make([]int, classes)
	for _, l := range labels {
		counts[l]++
	}
	sil := parallel.Map(n, func(i int) float64 {
		xi := x[i*dim : (i+1)*dim]
		sums := make([]float64, classes)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			xj := x[j*dim : (j+1)*dim]
			var s float64
			for k := range xi {
				d := xi[k] - xj[k]
				s += d * d
			}
			sums[labels[j]] += math.Sqrt(s)
		}
		own := labels[i]
		if counts[own] <= 1 {
			return 0
		}
		a := sums[own] / float64(counts[own]-1)
		b := math.Inf(1)
		for c := 0; c < classes; c++ {
			if c == own || counts[c] == 0 {
				continue
			}
			if v := sums[c] / float64(counts[c]); v < b {
				b = v
			}
		}
		if math.IsInf(b, 1) {
			return 0 // only one non-empty class
		}
		den := math.Max(a, b)
		if den == 0 {
			return 0
		}
		return (b - a) / den
	})
	var total float64
	for _, s := range sil {
		total += s
	}
	return total / float64(n), nil
}
