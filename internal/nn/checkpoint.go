package nn

import (
	"fmt"
	"io"

	"repro/internal/tensor"
)

// SaveParams writes the model's parameter vector as a checkpoint (full
// float64 precision).
func (m *Model) SaveParams(w io.Writer) error {
	return tensor.WriteVector(w, m.params)
}

// LoadParams restores a checkpoint written by SaveParams. The stored
// vector must match the model's parameter count exactly — loading an MLP
// checkpoint into a CNN is an error, not a silent truncation.
func (m *Model) LoadParams(r io.Reader) error {
	v, err := tensor.ReadVector(r)
	if err != nil {
		return err
	}
	if len(v) != len(m.params) {
		return fmt.Errorf("nn: checkpoint has %d parameters, model has %d", len(v), len(m.params))
	}
	copy(m.params, v)
	return nil
}
