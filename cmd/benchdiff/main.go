// Command benchdiff compares two benchjson artifacts (the CI BENCH_*.json
// files) and prints per-benchmark metric deltas, so a PR's effect on the
// population-scale runtime benchmarks is visible at a glance:
//
//	benchdiff BENCH_old.json BENCH_new.json
//
// It is report-only: the exit status is 0 regardless of how the metrics
// moved (CI runners are too noisy to gate on), and non-zero only when an
// artifact cannot be read or parsed. Benchmarks present in only one
// artifact are listed as added/removed.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Benchmark mirrors cmd/benchjson's output object.
type Benchmark struct {
	Name       string             `json:"name"`
	FullName   string             `json:"full_name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// diffMetrics is the ordered subset of metrics worth reporting.
var diffMetrics = []string{"ns/op", "allocs/op", "B/op", "updates/sec"}

// DiffRow is one rendered comparison line.
type DiffRow struct {
	Name   string
	Metric string
	Old    float64
	New    float64
	// Delta is the relative change in percent ((new-old)/old * 100);
	// +Inf when old == 0 and new != 0.
	Delta float64
	// Status is "" for a compared metric, "added" / "removed" for
	// benchmarks present in only one artifact.
	Status string
}

// Diff matches benchmarks by name and computes metric deltas. Rows are
// ordered by benchmark name, then by diffMetrics order; added/removed
// benchmarks produce a single row each.
func Diff(prev, cur []Benchmark) []DiffRow {
	oldBy := map[string]Benchmark{}
	for _, b := range prev {
		oldBy[b.Name] = b
	}
	newBy := map[string]Benchmark{}
	for _, b := range cur {
		newBy[b.Name] = b
	}
	names := map[string]bool{}
	for n := range oldBy {
		names[n] = true
	}
	for n := range newBy {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	var rows []DiffRow
	for _, name := range sorted {
		o, inOld := oldBy[name]
		n, inNew := newBy[name]
		switch {
		case !inOld:
			rows = append(rows, DiffRow{Name: name, Status: "added"})
		case !inNew:
			rows = append(rows, DiffRow{Name: name, Status: "removed"})
		default:
			for _, m := range diffMetrics {
				ov, hasOld := o.Metrics[m]
				nv, hasNew := n.Metrics[m]
				if !hasOld || !hasNew {
					continue
				}
				r := DiffRow{Name: name, Metric: m, Old: ov, New: nv}
				if ov != 0 {
					r.Delta = (nv - ov) / ov * 100
				} else if nv != 0 {
					r.Delta = inf()
				}
				rows = append(rows, r)
			}
		}
	}
	return rows
}

func inf() float64 { var zero float64; return 1 / zero }

// Render writes the rows as an aligned report.
func Render(w io.Writer, rows []DiffRow) {
	if len(rows) == 0 {
		fmt.Fprintln(w, "benchdiff: no comparable benchmarks")
		return
	}
	fmt.Fprintf(w, "%-40s %-12s %15s %15s %9s\n", "benchmark", "metric", "old", "new", "delta")
	for _, r := range rows {
		if r.Status != "" {
			fmt.Fprintf(w, "%-40s %-12s %15s %15s %9s\n", r.Name, "-", "-", "-", r.Status)
			continue
		}
		fmt.Fprintf(w, "%-40s %-12s %15.4g %15.4g %+8.1f%%\n", r.Name, r.Metric, r.Old, r.New, r.Delta)
	}
}

func load(path string) ([]Benchmark, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var benches []Benchmark
	if err := json.Unmarshal(data, &benches); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return benches, nil
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff OLD.json NEW.json")
		os.Exit(1)
	}
	old, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	cur, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	Render(os.Stdout, Diff(old, cur))
}
