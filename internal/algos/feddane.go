package algos

import (
	"repro/internal/core"
	"repro/internal/tensor"
)

// FedDANE (Li et al., ACSSC 2019) is a federated Newton-type method: each
// round starts with a gradient exchange — selected clients send their
// full-batch gradients at w_global, the server averages them — and local
// training minimises
//
//	F_k(w) + <avgGrad - gradK, w> + mu/2 * ||w - w_global||^2
//
// so the mini-batch gradient picks up (avgGrad - grad_k) + mu*(w - w_global).
// The gradient exchange costs an extra 2|w| communication and a full-batch
// forward+backward (n(FP+BP)) per client (Appendix A).
type FedDANE struct {
	core.Base
	// Mu is the proximal coefficient.
	Mu float64

	avgGrad []float64 // set in PreRound, read-only during the client phase
}

// Name implements core.Algorithm.
func (*FedDANE) Name() string { return "feddane" }

// ExtraCommFactor implements core.CommCoster: gradients up, average down.
func (*FedDANE) ExtraCommFactor() float64 { return 2 }

// PreRound runs the gradient-exchange phase.
func (f *FedDANE) PreRound(round int, selected []*core.Client, global []float64) {
	if f.avgGrad == nil {
		f.avgGrad = make([]float64, len(global))
	}
	tensor.ZeroVec(f.avgGrad)
	inv := 1 / float64(len(selected))
	for _, c := range selected {
		// The gradient lands directly in the client's persistent state
		// vector — no per-round allocation.
		gk := c.StateVec("feddane.localgrad")
		c.FullGradInto(gk, global)
		tensor.Axpy(inv, gk, f.avgGrad)
	}
}

// BeginRound snapshots the global model for the proximal term.
func (f *FedDANE) BeginRound(c *core.Client, round int, global []float64) {
	copy(c.RoundVec("feddane.global"), global)
}

// TransformGrad applies the DANE correction and proximal pull.
func (f *FedDANE) TransformGrad(c *core.Client, round int, w, g []float64) {
	local := c.StateVec("feddane.localgrad")
	global := c.RoundVec("feddane.global")
	for i := range g {
		g[i] += (f.avgGrad[i] - local[i]) + f.Mu*(w[i]-global[i])
	}
	c.Counter.Add(int64(4 * len(w)))
}
