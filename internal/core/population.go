package core

import "repro/internal/prng"

// population is the scheduler-facing registry of the client fleet. The
// asynchronous event loop only ever needs a few words per client — is it
// busy, when was it last dispatched — and at 100k+ clients chasing those
// through per-client structs costs a cache miss per touch. The registry
// therefore keeps them in struct-of-arrays form: flat slices indexed by
// client ID, sized once at construction, so the dispatch path allocates
// nothing and scans nothing. Everything derivable — latency bases, device
// speeds, network profiles, fault classes — is regenerated on demand from
// seed streams keyed by client ID instead of being materialized here;
// the per-client footprint of the registry itself is 12 bytes.
type population struct {
	idle idleSet
	// jitter is the latency model's per-client decomposition when it
	// exposes one (PerClientLatency); nil otherwise. The base is
	// recomputed per dispatch — the PerClientLatency contract pins
	// JitterOn(ClientBase(id), rng) to consume the same draws as
	// Sample(id, rng), so the stateless path can never change a
	// trajectory.
	jitter PerClientLatency
	// dispatches[k] counts client k's dispatches; the per-client staleness
	// state itself (round of last participation) lives on the Client,
	// because an in-flight update's dispatch round must survive the
	// client being re-dispatched before the update merges.
	dispatches []int32
}

func newPopulation(n int, lat LatencyModel) *population {
	p := &population{
		idle:       newIdleSet(n),
		dispatches: make([]int32, n),
	}
	if pcl, ok := lat.(PerClientLatency); ok {
		p.jitter = pcl
	}
	return p
}

// sampleLatency draws client id's dispatch duration. Both paths consume
// the same rng draws (the PerClientLatency contract), so which one runs
// never changes a trajectory.
func (p *population) sampleLatency(lat LatencyModel, id int, rng *prng.Rand) float64 {
	if p.jitter != nil {
		return p.jitter.JitterOn(p.jitter.ClientBase(id), rng)
	}
	return lat.Sample(id, rng)
}

// dispatched records that client id was sent out and removes it from the
// idle set. The job itself is tracked by the event heap's client index,
// not here.
func (p *population) dispatched(id int) {
	p.idle.remove(id)
	p.dispatches[id]++
}

// arrived returns client id to the idle set when it is still online (an
// offline client rejoins the idle set at its rejoin event instead).
func (p *population) arrived(id int, online bool) {
	if online {
		p.idle.add(id)
	}
}

// participants returns how many distinct clients have been dispatched at
// least once, and the total number of dispatches.
func (p *population) participants() (distinct int, total int64) {
	for _, d := range p.dispatches {
		if d > 0 {
			distinct++
			total += int64(d)
		}
	}
	return distinct, total
}

// idleSet supports the three operations the dispatcher hammers — pick a
// uniformly random idle client, mark it busy, mark it idle again — each in
// O(1). It is the classic dense set with a position index: ids holds the
// idle clients in arbitrary order, pos[id] is id's slot in ids (-1 when
// busy).
type idleSet struct {
	ids []int32
	pos []int32
}

func newIdleSet(n int) idleSet {
	s := idleSet{ids: make([]int32, n), pos: make([]int32, n)}
	for i := 0; i < n; i++ {
		s.ids[i] = int32(i)
		s.pos[i] = int32(i)
	}
	return s
}

// size returns the number of idle clients.
func (s *idleSet) size() int { return len(s.ids) }

// pick returns a uniformly random idle client without removing it, or
// (0, false) when everyone is busy. It consumes exactly one rng draw, so
// the dispatch stream stays aligned across refactors of the set's
// internals.
func (s *idleSet) pick(rng *prng.Rand) (int, bool) {
	if len(s.ids) == 0 {
		return 0, false
	}
	return int(s.ids[rng.Intn(len(s.ids))]), true
}

// remove marks id busy. Removing an already-busy id is a no-op.
func (s *idleSet) remove(id int) {
	p := s.pos[id]
	if p < 0 {
		return
	}
	last := s.ids[len(s.ids)-1]
	s.ids[p] = last
	s.pos[last] = p
	s.ids = s.ids[:len(s.ids)-1]
	s.pos[id] = -1
}

// add marks id idle again. Adding an already-idle id is a no-op.
func (s *idleSet) add(id int) {
	if s.pos[id] >= 0 {
		return
	}
	s.pos[id] = int32(len(s.ids))
	s.ids = append(s.ids, int32(id)) // never reallocates: cap is the population size
}
