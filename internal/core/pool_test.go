package core

import (
	"repro/internal/prng"
	"testing"
)

func TestVecPoolGetPut(t *testing.T) {
	p := &vecPool{free: map[int][][]float64{}}
	a := p.get(8)
	if len(a) != 8 {
		t.Fatalf("get(8) returned len %d", len(a))
	}
	p.put(a)
	b := p.get(8)
	if &b[0] != &a[0] {
		t.Fatal("pool did not reuse the returned buffer")
	}
	if c := p.get(8); &c[0] == &b[0] {
		t.Fatal("pool handed the same buffer out twice")
	}
	if d := p.get(16); len(d) != 16 {
		t.Fatalf("size-keyed get broken: len %d", len(d))
	}
	p.put(nil) // must be a no-op
}

func TestVecPoolGetCopy(t *testing.T) {
	p := &vecPool{free: map[int][][]float64{}}
	src := []float64{1, 2, 3}
	c := p.getCopy(src)
	if &c[0] == &src[0] {
		t.Fatal("getCopy aliased the source")
	}
	src[0] = 99
	if c[0] != 1 {
		t.Fatal("getCopy did not copy")
	}
}

// TestRandPermIntoMatchesRandPerm pins the drop-in property: the same
// generator state yields the same permutation AND leaves the stream in
// the same state as prng.Rand.Perm, so swapping it in never shifts a
// trajectory.
func TestRandPermIntoMatchesRandPerm(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100} {
		r1 := prng.New(42)
		r2 := prng.New(42)
		want := r1.Perm(n)
		got := randPermInto(r2, nil, n)
		if len(got) != len(want) {
			t.Fatalf("n=%d: length %d != %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: element %d: %d != %d", n, i, got[i], want[i])
			}
		}
		if r1.Int63() != r2.Int63() {
			t.Fatalf("n=%d: stream state diverged after permutation", n)
		}
	}
	// Reuse: a large-enough buffer must be reused in place.
	buf := make([]int, 10)
	out := randPermInto(prng.New(1), buf, 5)
	if &out[0] != &buf[0] {
		t.Fatal("randPermInto did not reuse the provided buffer")
	}
}

// TestUpdateBuffersNotAliasedSyncRun proves the checkout/return cycle of
// Update.Params end to end on the synchronous runtime: within a round no
// two uploads share a buffer, every upload's contents are exactly the
// uploading client's historical model (corruption from a mis-recycled
// buffer would break this), and buffers really are recycled across
// rounds.
func TestUpdateBuffersNotAliasedSyncRun(t *testing.T) {
	cfg := testConfig(t, NewFedTrip(0.4))
	cfg.Rounds = 4
	cfg.EvalEvery = 100
	var s *Server
	seen := map[*float64]int{} // first element pointer -> times seen
	cfg.OnUpdates = func(round int, globalBefore []float64, updates []Update) {
		ptrs := map[*float64]bool{}
		for _, u := range updates {
			p := &u.Params[0]
			if ptrs[p] {
				t.Errorf("round %d: two in-flight updates share one buffer", round)
			}
			ptrs[p] = true
			seen[p]++
			hist := s.Clients()[u.ClientID].Hist
			for i := range u.Params {
				if u.Params[i] != hist[i] {
					t.Fatalf("round %d: client %d upload corrupted at %d (%v != %v)",
						round, u.ClientID, i, u.Params[i], hist[i])
				}
			}
		}
	}
	var err error
	s, err = NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	reused := false
	for _, times := range seen {
		if times > 1 {
			reused = true
		}
	}
	if !reused {
		t.Error("no upload buffer was ever recycled across rounds — pool inactive")
	}
}

// TestUpdateBuffersNotAliasedAsyncRun is the concurrent variant (run
// under -race in CI): many clients in flight at once on the buffered
// async runtime, with every merge checked for buffer sharing.
func TestUpdateBuffersNotAliasedAsyncRun(t *testing.T) {
	cfg := testConfig(t, NewFedTrip(0.4))
	cfg.Rounds = 6
	cfg.EvalEvery = 100
	cfg.OnUpdates = func(round int, globalBefore []float64, updates []Update) {
		ptrs := map[*float64]bool{}
		for _, u := range updates {
			p := &u.Params[0]
			if ptrs[p] {
				t.Errorf("agg %d: two buffered updates share one buffer", round)
			}
			ptrs[p] = true
		}
	}
	res, err := RunAsync(AsyncConfig{
		Config:      cfg,
		Concurrency: 4,
		BufferSize:  2,
		Latency:     UniformLatency{Min: 1, Max: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 6 {
		t.Fatalf("expected 6 aggregations, got %d", res.Rounds)
	}
}

// TestLocalTrainSteadyStateAllocFree pins the allocation criterion at the
// client level: once a client has participated (engine batch buffers,
// Hist, round vectors built) and the server recycles its uploads, a full
// local round performs zero heap allocations.
func TestLocalTrainSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pin runs in the non-race job")
	}
	cfg := testConfig(t, NewFedTrip(0.4))
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clients()[0]
	global := s.Global()
	scratch := make([]Update, 1)
	// Warm up: engine buffers, Hist, state vectors, params pool.
	for i := 1; i <= 2; i++ {
		scratch[0] = c.LocalTrain(i, global)
		recycleUpdates(scratch)
	}
	round := 3
	allocs := testing.AllocsPerRun(5, func() {
		scratch[0] = c.LocalTrain(round, global)
		recycleUpdates(scratch)
		round++
	})
	if allocs > 0 {
		t.Fatalf("LocalTrain allocates %v objects per round in steady state", allocs)
	}
}
