package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// serializationScoped reports whether a file is in maprange's scope: it
// writes FTRS run snapshots or FTCK model checkpoints (detected by the
// magic string literal), implements the recorder (whose series become
// the Result's trajectory), or carries transport snapshot state
// (SnapshotState/RestoreState). In these files a `for range` over a map
// lets Go's randomized iteration order reach serialized bytes or metric
// series — the exact class of bug the bit-for-bit resume pins exist to
// catch, surfaced at vet time instead.
func serializationScoped(f *ast.File) bool {
	scoped := false
	ast.Inspect(f, func(n ast.Node) bool {
		if scoped {
			return false
		}
		switch n := n.(type) {
		case *ast.BasicLit:
			if v, err := strconv.Unquote(n.Value); err == nil && (v == "FTRS" || v == "FTCK") {
				scoped = true
			}
		case *ast.TypeSpec:
			if n.Name.Name == "recorder" {
				scoped = true
			}
		case *ast.FuncDecl:
			if n.Name.Name == "SnapshotState" || n.Name.Name == "RestoreState" {
				scoped = true
			}
			if n.Recv != nil && len(n.Recv.List) == 1 {
				t := n.Recv.List[0].Type
				if star, ok := t.(*ast.StarExpr); ok {
					t = star.X
				}
				if id, ok := t.(*ast.Ident); ok && id.Name == "recorder" {
					scoped = true
				}
			}
		}
		return true
	})
	return scoped
}

// NewMapRange returns the maprange analyzer: no raw map iteration in
// files that serialize run state or record trajectory series.
func NewMapRange() *Analyzer {
	a := &Analyzer{
		Name: "maprange",
		Doc: "forbid map iteration order from reaching serialized output\n\n" +
			"In files that write FTRS/FTCK envelopes or recorder series, `for\n" +
			"range` over a map must collect keys for sorting (the one-statement\n" +
			"keys-append idiom), count without binding, or carry an explicit\n" +
			"//fedtripvet:sorted <reason> justification.",
	}
	a.Run = func(pass *Pass) (any, error) {
		for _, f := range pass.Files {
			if !serializationScoped(f) {
				continue
			}
			notes := annotate(pass.Fset, f)
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypesInfo.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				line := pass.Fset.Position(rs.Pos()).Line
				if notes.sortedAt(line) {
					return true
				}
				if keyCollectionLoop(pass.TypesInfo, rs) || bindinglessLoop(rs) {
					return true
				}
				pass.Reportf(rs.Pos(), "map iteration order can reach serialized output; collect keys and sort first, or justify with //fedtripvet:sorted <reason>")
				return true
			})
		}
		return nil, nil
	}
	return a
}

// bindinglessLoop reports a `for range m { ... }` loop that binds
// neither key nor value: whatever the body does is repeated len(m)
// times independent of order (counting, pre-sizing).
func bindinglessLoop(rs *ast.RangeStmt) bool {
	return rs.Key == nil && rs.Value == nil
}

// keyCollectionLoop recognizes the sorted-keys idiom's first half —
//
//	for k := range m { keys = append(keys, k) }
//
// a single append of the key (and nothing else), which is order-
// insensitive once the collected slice is sorted.
func keyCollectionLoop(info *types.Info, rs *ast.RangeStmt) bool {
	keyID, ok := rs.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" || rs.Value != nil {
		return false
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	assign, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || call.Ellipsis.IsValid() || len(call.Args) != 2 {
		return false
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	if !ok {
		return false
	}
	keyObj := info.Defs[keyID]
	return keyObj != nil && info.Uses[arg] == keyObj
}
