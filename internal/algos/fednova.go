package algos

import (
	"repro/internal/core"
	"repro/internal/optim"
)

// FedNova (Wang et al., NeurIPS 2020 — "Tackling the objective
// inconsistency problem") normalises client updates by their local step
// counts before averaging, removing the bias towards clients that take
// more local iterations:
//
//	d_k     = (w_global - w_k) / tau_k        (normalised update direction)
//	tau_eff = sum_k p_k * tau_k
//	w_next  = w_global - tau_eff * sum_k p_k * d_k
//
// where p_k = |D_k|/|D_St| and tau_k is client k's local iteration count.
// With equal tau_k this reduces exactly to FedAvg; it differs when clients
// have unequal data sizes or epochs. Local optimizer is plain SGD so that
// tau_k is the exact normaliser.
type FedNova struct {
	core.Base

	selected []*core.Client // stashed by PreRound for Aggregate
}

// Name implements core.Algorithm.
func (*FedNova) Name() string { return "fednova" }

// NewOptimizer implements core.OptimizerChooser.
func (*FedNova) NewOptimizer(lr, momentum float64) optim.Optimizer {
	return optim.NewSGD(lr)
}

// PreRound records the round's participants so Aggregate can compute
// their step counts. The slice is copied: the runtime reuses its
// selection scratch across rounds.
func (f *FedNova) PreRound(round int, selected []*core.Client, global []float64) {
	f.selected = append(f.selected[:0], selected...)
}

// localSteps returns tau_k for a client under the run configuration.
func localSteps(c *core.Client) float64 {
	cfg := c.Config()
	n := c.NumSamples()
	batches := (n + cfg.BatchSize - 1) / cfg.BatchSize
	return float64(cfg.LocalEpochs * batches)
}

// Aggregate applies normalised averaging.
func (f *FedNova) Aggregate(round int, global []float64, updates []core.Update) []float64 {
	stepsByID := make(map[int]float64, len(f.selected))
	for _, c := range f.selected {
		stepsByID[c.ID] = localSteps(c)
	}
	var totalSamples float64
	for _, u := range updates {
		totalSamples += float64(u.NumSamples)
	}
	n := len(global)
	dir := make([]float64, n) // sum_k p_k * d_k
	var tauEff float64
	for _, u := range updates {
		p := float64(u.NumSamples) / totalSamples
		tau := stepsByID[u.ClientID]
		if tau <= 0 {
			tau = 1
		}
		tauEff += p * tau
		w := p / tau
		for i := range dir {
			dir[i] += w * (global[i] - u.Params[i])
		}
	}
	next := make([]float64, n)
	for i := range next {
		next[i] = global[i] - tauEff*dir[i]
	}
	return next
}

// verify FedNova implements the optional interfaces it relies on.
var (
	_ core.Aggregator       = (*FedNova)(nil)
	_ core.PreRounder       = (*FedNova)(nil)
	_ core.OptimizerChooser = (*FedNova)(nil)
)
