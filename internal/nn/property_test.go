package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// Property: softmax-CE logit gradients sum to zero per row (probabilities
// minus a one-hot both sum to 1) for arbitrary logits and labels.
func TestSoftmaxGradientRowsSumZero(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, c := 1+rng.Intn(8), 2+rng.Intn(10)
		logits := tensor.New(n, c)
		logits.RandNormal(rng, 3)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(c)
		}
		d := tensor.New(n, c)
		loss := SoftmaxCrossEntropy(logits, labels, d)
		if math.IsNaN(loss) || loss < 0 {
			return false
		}
		for i := 0; i < n; i++ {
			var sum float64
			for j := 0; j < c; j++ {
				sum += d.At(i, j)
			}
			if math.Abs(sum) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: loss is minimal exactly when logits are concentrated on the
// label — pushing extra mass onto the true class cannot increase loss.
func TestSoftmaxMonotoneInTrueLogit(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 2 + rng.Intn(8)
		logits := tensor.New(1, c)
		logits.RandNormal(rng, 2)
		labels := []int{rng.Intn(c)}
		before := SoftmaxCrossEntropy(logits, labels, nil)
		logits.Data[labels[0]] += 1
		after := SoftmaxCrossEntropy(logits, labels, nil)
		return after <= before+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Accuracy is invariant to adding a constant to every logit in
// a row (softmax shift invariance carries to argmax).
func TestAccuracyShiftInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, c := 1+rng.Intn(6), 2+rng.Intn(6)
		logits := tensor.New(n, c)
		logits.RandNormal(rng, 1)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(c)
		}
		a1 := Accuracy(logits, labels)
		shift := rng.NormFloat64() * 100
		for i := 0; i < n; i++ {
			for j := 0; j < c; j++ {
				logits.Data[i*c+j] += shift
			}
		}
		return Accuracy(logits, labels) == a1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a forward pass is deterministic in eval mode (no dropout
// randomness, no hidden state leaks) for arbitrary inputs.
func TestForwardEvalDeterministic(t *testing.T) {
	spec := ModelSpec{Arch: ArchCNN, Channels: 1, Height: 28, Width: 28, Classes: 10, Scale: 0.34}
	m, err := spec.Build(5)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := tensor.New(2, 1, 28, 28)
		x.RandNormal(rng, 1)
		a := m.Forward(x, false).Clone()
		b := m.Forward(x, false)
		return tensor.MaxAbsDiff(a.Data, b.Data) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: gradient accumulation is linear — grad(batch A) + grad(batch B)
// equals accumulated grads from backward on A then B.
func TestGradAccumulationLinear(t *testing.T) {
	m, err := NewBuilder(6).Dense(5).ReLU().Dense(3).Build(9)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	xa, la := randBatch(rng, m, 3)
	xb, lb := randBatch(rng, m, 3)
	ga := analyticGrad(m, xa, la)
	gb := analyticGrad(m, xb, lb)
	m.ZeroGrad()
	for _, p := range []struct {
		x *tensor.Tensor
		l []int
	}{{xa, la}, {xb, lb}} {
		logits := m.Forward(p.x, false)
		d := tensor.New(logits.Shape()...)
		SoftmaxCrossEntropy(logits, p.l, d)
		m.Backward(d, nil)
	}
	want := make([]float64, len(ga))
	tensor.AddInto(want, ga, gb)
	if d := tensor.MaxAbsDiff(m.Grads(), want); d > 1e-12 {
		t.Fatalf("accumulated grads differ by %v", d)
	}
}
