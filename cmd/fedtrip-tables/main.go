// Command fedtrip-tables regenerates the paper's tables and figures.
//
//	fedtrip-tables                       # run everything (fast profile)
//	fedtrip-tables -exp table4,table5    # selected experiments
//	fedtrip-tables -profile paper        # paper-scale settings (slow)
//	fedtrip-tables -list                 # list experiment ids
//
// Experiments are runtime-agnostic: -runtime, -latency, -policy,
// -server-lr, -concurrency, and -buffer select the runtime and the
// aggregation policy every case runs on (methods with server-side hooks
// fall back from async to the barrier runtime). The tta experiment
// compares the FedBuff and FedAsync policies side by side under a
// straggler latency model:
//
//	fedtrip-tables -exp tta                                # barrier vs fedbuff vs fedasync + policy sweep
//	fedtrip-tables -exp table4 -runtime async -policy fedasync -latency straggler:1,10,3
//
// Device heterogeneity is selected with -device-dist (FLOP-coupled
// compute speeds), -dropout (availability churn), and
// -local-steps-adaptive; the hetero experiment compares FedTrip against
// FedAvg/FedProx across uniform, tiered, and churning lognormal fleets:
//
//	fedtrip-tables -exp hetero
//	fedtrip-tables -exp table4 -runtime async -device-dist tiered -local-steps-adaptive
//
// Communication is priced with -bandwidth-dist (per-client link tiers;
// each dispatch pays rtt + measured-bytes/bandwidth in simulated time)
// and encoded with -transport (dense f32, delta quantization, top-k /
// rand-k sparsification, +ef error feedback). The comm-tta experiment
// compares transports on a bandwidth-tiered churning fleet:
//
//	fedtrip-tables -exp comm-tta
//	fedtrip-tables -exp table4 -runtime async -bandwidth-dist tiered -transport q8+ef
//
// Adversarial robustness is selected with -faults (the fraction of the
// fleet uploading corrupted models and how) together with a robust
// -policy (median, trimmedmean:F, krum:F, or a +clip:C guard). The
// robust experiment races the policies across Byzantine fractions on a
// churning tiered fleet:
//
//	fedtrip-tables -exp robust
//	fedtrip-tables -exp table4 -runtime async -faults byz:0.2,signflip -policy trimmedmean:0.25
//
// Output is plain-text tables on stdout (or -o file); progress lines go to
// stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	var (
		expList   = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		profile   = flag.String("profile", "fast", "profile: fast|paper|tiny")
		outPath   = flag.String("o", "", "write tables to this file instead of stdout")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		verbose   = flag.Bool("v", true, "print progress to stderr")
		runtime   = flag.String("runtime", "", "runtime every case runs on: sync|async|barrier (default sync)")
		latency   = flag.String("latency", "", "latency model for async/barrier runtimes (zero|const:D|uniform:MIN,MAX|exp:MEAN|lognormal:MU,SIGMA|straggler:F,S,E)")
		policy    = flag.String("policy", "", "aggregation policy: fedavg|fedbuff[:EXP]|fedasync[:ALPHA[,EXP]]|importance[:BETA[,EXP]] (default: runtime default)")
		serverLR  = flag.String("server-lr", "", "server learning-rate schedule on merge: const:ETA|invsqrt:ETA0|step:ETA0,G,E")
		conc      = flag.Int("concurrency", 0, "async: clients training simultaneously (0 = K)")
		buffer    = flag.Int("buffer", 0, "async: arrivals per aggregation (0 = K)")
		devDist   = flag.String("device-dist", "", "device compute-speed distribution for async/barrier cases (none|uniform:MIN,MAX|lognormal:MU,SIGMA|tiered[:S1,F1,...])")
		dropout   = flag.String("dropout", "", "client availability churn for async cases (none|markov:UP,DOWN[+drop:AT,FRAC,DUR]...)")
		adaptive  = flag.Bool("local-steps-adaptive", false, "scale each client's local step budget by its device speed (needs -device-dist)")
		transport = flag.String("transport", "", "wire transport every case ships models through (none|f32|lossless|q<bits>|topk:R|randk:R, +ef for error feedback)")
		bandDist  = flag.String("bandwidth-dist", "", "per-client link distribution for async/barrier cases (none|const:UP,DOWN[,RTT]|uniform:MIN,MAX[,RTT]|lognormal:MU,SIGMA[,RTT]|tiered[:UP,DOWN,RTT,FRAC,...])")
		faults    = flag.String("faults", "", "adversarial faults every case runs under (none|byz:FRAC,MODE[+crash:FRAC]; modes signflip|scale:K|noise:SIGMA|nan|labelflip)")
	)
	flag.Parse()
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	sel := runtimeSelection{
		runtime: *runtime, latency: *latency, policy: *policy,
		serverLR: *serverLR, concurrency: *conc, buffer: *buffer,
		devices: *devDist, churn: *dropout, adaptiveSteps: *adaptive,
		transport: *transport, bandwidth: *bandDist, faults: *faults,
	}
	if err := run(*expList, *profile, *outPath, *verbose, sel); err != nil {
		fmt.Fprintln(os.Stderr, "fedtrip-tables:", err)
		os.Exit(1)
	}
}

// runtimeSelection carries the runtime/policy flags onto the profile.
type runtimeSelection struct {
	runtime, latency, policy, serverLR string
	concurrency, buffer                int
	devices, churn                     string
	transport, bandwidth               string
	adaptiveSteps                      bool
	faults                             string
}

func (s runtimeSelection) apply(p *experiments.Profile) error {
	rt, err := core.ParseRuntime(s.runtime)
	if err != nil {
		return err
	}
	if s.runtime != "" {
		p.Runtime = rt
	}
	if s.latency != "" {
		if _, err := core.ParseLatency(s.latency); err != nil {
			return err
		}
		p.Latency = s.latency
	}
	if s.policy != "" {
		if _, err := core.ParsePolicy(s.policy); err != nil {
			return err
		}
		p.Policy = s.policy
	}
	if s.serverLR != "" {
		if _, err := core.ParseLRSchedule(s.serverLR); err != nil {
			return err
		}
		p.ServerLR = s.serverLR
	}
	if s.devices != "" {
		if _, err := core.ParseDeviceDist(s.devices); err != nil {
			return err
		}
		p.Devices = s.devices
	}
	if s.churn != "" {
		if _, err := core.ParseChurn(s.churn); err != nil {
			return err
		}
		p.Churn = s.churn
	}
	if s.transport != "" {
		if _, err := comm.ParseTransport(s.transport); err != nil {
			return err
		}
		p.Transport = s.transport
	}
	if s.bandwidth != "" {
		if _, err := core.ParseNetDist(s.bandwidth); err != nil {
			return err
		}
		p.Bandwidth = s.bandwidth
	}
	if s.faults != "" {
		if _, err := core.ParseFaults(s.faults); err != nil {
			return err
		}
		p.Faults = s.faults
	}
	p.AdaptiveSteps = s.adaptiveSteps
	p.Concurrency = s.concurrency
	p.Buffer = s.buffer
	return nil
}

func run(expList, profile, outPath string, verbose bool, sel runtimeSelection) error {
	p, err := experiments.ByName(profile)
	if err != nil {
		return err
	}
	if err := sel.apply(&p); err != nil {
		return err
	}
	var out io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	var logf experiments.Logf
	if verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "  "+format+"\n", args...)
		}
	}
	var selected []experiments.Experiment
	if expList == "all" || expList == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(expList, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.Get(id)
			if !ok {
				return experiments.ErrUnknown(id)
			}
			selected = append(selected, e)
		}
	}
	fmt.Fprintf(out, "FedTrip reproduction — profile %q, %d experiment(s)\n\n", p.Name, len(selected))
	for _, e := range selected {
		start := time.Now()
		if verbose {
			fmt.Fprintf(os.Stderr, "== running %s: %s\n", e.ID, e.Title)
		}
		tables, err := e.Run(p, logf)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, t := range tables {
			t.Render(out)
		}
		if verbose {
			fmt.Fprintf(os.Stderr, "== %s done in %s\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}
