package seedstream

import "repro/internal/prng"

// use passes a registered constant: clean.
func use(seed int64) *prng.Rand {
	return prng.Stream(seed, streamGood, 0)
}

// bad passes an unregistered literal and a dynamic name.
func bad(seed int64, name string) int64 {
	a := prng.StreamSeed(seed, "rogue", 1) // want "not registered in seeds.go"
	b := prng.StreamSeed(seed, name, 0)    // want "dynamic stream name"
	return a + b
}

// seedStream is a registry trampoline: the dynamic forward inside it is
// annotated, and call sites are checked instead.
func seedStream(seed int64, name string) *prng.Rand {
	//fedtripvet:allow fixture trampoline: name is the caller's registered constant
	return prng.New(prng.StreamSeed(seed, name, 0))
}

// viaTrampoline passes a registered constant through the trampoline.
func viaTrampoline(seed int64) *prng.Rand {
	return seedStream(seed, streamSpare)
}

// badTrampoline leaks an unregistered literal through the trampoline.
func badTrampoline(seed int64) *prng.Rand {
	return seedStream(seed, "loose") // want "not registered in seeds.go"
}
