package quantize

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/tensor"
)

func TestTransportDeltaEncoding(t *testing.T) {
	tr, err := NewTransport(8)
	if err != nil {
		t.Fatal(err)
	}
	n := 1000
	global := make([]float64, n)
	for i := range global {
		global[i] = float64(i) / 100
	}
	received := tr.Down(0, 1, global)
	// Small local update: delta spans [0, 0.05).
	upload := make([]float64, n)
	for i := range upload {
		upload[i] = received[i] + 0.05*float64(i)/float64(n)
	}
	got := tr.Up(0, 1, upload)
	// 8-bit quantization of a 0.05-span delta: max error ~1e-4.
	for i := range upload {
		if e := math.Abs(got[i] - upload[i]); e > 2e-4 {
			t.Fatalf("elem %d reconstruction error %v", i, e)
		}
	}
	// The header amortizes over 1000 elements: ~4x smaller than f32.
	if tr.UpBytes() >= tensor.VectorWireSizeF32(n)/3 {
		t.Fatalf("8-bit upload %d bytes not ~4x smaller than f32 %d", tr.UpBytes(), tensor.VectorWireSizeF32(n))
	}
}

func TestTransportWithoutDownFallsBack(t *testing.T) {
	tr, err := NewTransport(8)
	if err != nil {
		t.Fatal(err)
	}
	v := []float64{math.Pi}
	got := tr.Up(7, 1, v)
	if got[0] != float64(float32(math.Pi)) {
		t.Fatal("fallback must be float32 shipping")
	}
}

func TestTransportBadBits(t *testing.T) {
	if _, err := NewTransport(0); err == nil {
		t.Fatal("0 bits accepted")
	}
	if _, err := NewTransport(20); err == nil {
		t.Fatal("20 bits accepted")
	}
}

// End-to-end: FedTrip over an 8-bit uplink must still learn, with ~4x less
// upload traffic than float32.
func TestQuantizedUplinkEndToEnd(t *testing.T) {
	train, test, err := data.Generate(data.Spec{Kind: data.KindMNIST, Train: 300, Test: 100, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := partition.Partition(partition.Dirichlet(0.5), train.Y, train.Classes, 6, 50, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTransport(8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(core.Config{
		Model:           nn.ModelSpec{Arch: nn.ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10},
		Train:           train,
		Test:            test,
		Parts:           parts,
		Rounds:          10,
		ClientsPerRound: 3,
		BatchSize:       10,
		LocalEpochs:     1,
		LR:              0.01,
		Momentum:        0.9,
		Algo:            core.NewFedTrip(1.0),
		Seed:            10,
		Transport:       tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestAccuracy < 0.4 {
		t.Fatalf("8-bit uplink broke learning: best %.3f", res.BestAccuracy)
	}
	if tr.UpBytes() >= tr.DownBytes()/3 {
		t.Fatalf("8-bit uplink %d bytes vs f32 downlink %d: expected ~4x saving", tr.UpBytes(), tr.DownBytes())
	}
}
