package data

import (
	"math/rand"
	"testing"
)

func TestShiftIntoTranslation(t *testing.T) {
	// 1-channel 3x3 image with a single hot pixel at (1,1).
	src := []float64{
		0, 0, 0,
		0, 5, 0,
		0, 0, 0,
	}
	dst := make([]float64, 9)
	shiftInto(dst, src, 1, 3, 3, 1, 0, 2) // shift right by 1, amp 2
	want := []float64{
		0, 0, 0,
		0, 0, 10,
		0, 0, 0,
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst=%v want %v", dst, want)
		}
	}
}

func TestShiftIntoZeroPadsEdges(t *testing.T) {
	src := []float64{1, 2, 3, 4}
	dst := make([]float64, 4)
	shiftInto(dst, src, 1, 2, 2, 1, 1, 1) // shift down-right by 1
	// Only src(0,0) survives at dst(1,1); the rest is zero-padded.
	want := []float64{0, 0, 0, 1}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst=%v want %v", dst, want)
		}
	}
}

func TestShiftIntoMultiChannel(t *testing.T) {
	// 2 channels of 2x2; channels shift independently but identically.
	src := []float64{
		1, 0, 0, 0, // channel 0: hot at (0,0)
		0, 0, 0, 2, // channel 1: hot at (1,1)
	}
	dst := make([]float64, 8)
	shiftInto(dst, src, 2, 2, 2, 1, 0, 1) // shift right by 1
	if dst[1] != 1 {                      // channel 0 pixel moved to (0,1)
		t.Fatalf("channel 0: %v", dst[:4])
	}
	if dst[4+3] != 0 { // channel 1 (1,1) pushed out of bounds
		t.Fatalf("channel 1: %v", dst[4:])
	}
}

func TestSmoothFieldDimensions(t *testing.T) {
	rngField := smoothField(newTestRng(), 3, 8, 9)
	if len(rngField) != 3*8*9 {
		t.Fatalf("field len %d", len(rngField))
	}
	// Smoothness: neighbouring pixels correlate far more than distant
	// ones (the field is a bilinear upsample of a 7x7 grid).
	var adjDiff, farDiff float64
	var nAdj, nFar int
	for y := 0; y < 8; y++ {
		for x := 0; x+1 < 9; x++ {
			d := rngField[y*9+x] - rngField[y*9+x+1]
			adjDiff += d * d
			nAdj++
		}
	}
	for y := 0; y < 8; y++ {
		d := rngField[y*9] - rngField[y*9+8]
		farDiff += d * d
		nFar++
	}
	if adjDiff/float64(nAdj) >= farDiff/float64(nFar) {
		t.Fatal("field not smooth: adjacent pixels differ as much as distant ones")
	}
}

func newTestRng() *rand.Rand { return rand.New(rand.NewSource(99)) }
