package experiments

import (
	"fmt"

	"repro/internal/algos"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/hetero"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/prng"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/tsne"
)

// runFig2 reproduces the motivation experiment of Fig. 2: train FedAvg
// (CNN, MNIST-like, Dir-0.5), snapshot the global model at the final round
// and client 0's local model at the final and an earlier round, then
// quantify class separability of the test-set representations via t-SNE
// embeddings and silhouette scores. The paper's qualitative claims become
// two inequalities: silhouette(global) > silhouette(local@final) >
// silhouette(local@earlier).
func runFig2(p Profile, logf Logf) ([]*Table, error) {
	clients := p.Clients
	perClient, err := p.samplesPerClient(data.KindMNIST)
	if err != nil {
		return nil, err
	}
	train, test, err := p.datasets(data.KindMNIST, clients, perClient, 0)
	if err != nil {
		return nil, err
	}
	spec, err := p.modelSpec(nn.ArchCNN, data.KindMNIST)
	if err != nil {
		return nil, err
	}
	rng := prng.Stream(p.Seed, streamPartition, 0)
	parts, err := partition.Partition(partition.Dirichlet(0.5), train.Y, train.Classes, clients, perClient, rng)
	if err != nil {
		return nil, err
	}
	algo, err := algos.New("fedavg", algos.Params{})
	if err != nil {
		return nil, err
	}
	earlierRound := (p.Rounds * 3) / 5
	if earlierRound < 1 {
		earlierRound = 1
	}
	var globalFinal, localFinal, localEarlier []float64
	cfg := core.Config{
		Model:           spec,
		Train:           train,
		Test:            test,
		Parts:           parts,
		Rounds:          p.Rounds,
		ClientsPerRound: p.PerRound,
		BatchSize:       p.Batch,
		LocalEpochs:     p.LocalEpochs,
		LR:              p.LR,
		Momentum:        p.Momentum,
		Algo:            algo,
		Seed:            p.Seed,
		OnRound: func(round int, s *core.Server) {
			c0 := s.Clients()[0]
			if round == earlierRound && c0.Hist != nil {
				localEarlier = append([]float64(nil), c0.Hist...)
			}
			if round == p.Rounds {
				globalFinal = append([]float64(nil), s.Global()...)
				if c0.Hist != nil {
					localFinal = append([]float64(nil), c0.Hist...)
				}
			}
		},
	}
	// The run goes through Case.runSpec so the profile-level runtime
	// selection (-runtime/-latency/-device-dist/...) reaches this harness
	// like any table case; the snapshot hook rides along as OnRound,
	// which every runtime honors.
	rspec, err := (Case{Kind: data.KindMNIST, Arch: nn.ArchCNN, Scheme: partition.Dirichlet(0.5), Algo: "fedavg"}).runSpec(p, cfg)
	if err != nil {
		return nil, err
	}
	logf.printf("fig2: training FedAvg CNN for %d rounds (%s/%s)", p.Rounds, rspec.Runtime, rspec.Policy.Name())
	if _, err := core.Start(rspec); err != nil {
		return nil, err
	}
	if localEarlier == nil {
		localEarlier = globalFinal // client 0 never selected early: degenerate but safe
	}
	if localFinal == nil {
		localFinal = localEarlier
	}

	nEmbed := 150
	if test.Len() < nEmbed {
		nEmbed = test.Len()
	}
	t := &Table{
		ID:      "fig2",
		Title:   fmt.Sprintf("Representation separability (silhouette), CNN/MNIST Dir-0.5, %d test points", nEmbed),
		Headers: []string{"Model snapshot", "Silhouette (features)", "Silhouette (t-SNE 2D)"},
	}
	snaps := []struct {
		label  string
		params []float64
	}{
		{fmt.Sprintf("global @ round %d", p.Rounds), globalFinal},
		{fmt.Sprintf("client0 local @ round %d", p.Rounds), localFinal},
		{fmt.Sprintf("client0 local @ round %d", earlierRound), localEarlier},
	}
	model, err := spec.Build(1)
	if err != nil {
		return nil, err
	}
	for _, snap := range snaps {
		feat, labels, err := featuresOf(model, snap.params, test, nEmbed)
		if err != nil {
			return nil, err
		}
		d := model.FeatureDim()
		silF, err := tsne.Silhouette(feat, labels, nEmbed, d)
		if err != nil {
			return nil, err
		}
		emb, err := tsne.Embed(feat, nEmbed, d, tsne.Config{Iters: 250, Seed: p.Seed})
		if err != nil {
			return nil, err
		}
		silE, err := tsne.Silhouette(emb, labels, nEmbed, 2)
		if err != nil {
			return nil, err
		}
		t.AddRow(snap.label, fmt.Sprintf("%.4f", silF), fmt.Sprintf("%.4f", silE))
	}
	t.Notes = append(t.Notes,
		"paper claim: global features separate best; newer local models beat older ones",
		"silhouette quantifies the paper's qualitative t-SNE scatter plots")
	return []*Table{t}, nil
}

// featuresOf loads params into model and extracts the representation of
// the first n test samples.
func featuresOf(model *nn.Model, params []float64, ds *data.Dataset, n int) ([]float64, []int, error) {
	model.SetParams(params)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	shape := append([]int{n}, model.InShape()...)
	x := tensor.New(shape...)
	labels := make([]int, n)
	ds.FillBatch(x, labels, idx)
	model.Forward(x, false)
	feat := model.Features()
	out := make([]float64, feat.Numel())
	copy(out, feat.Data)
	return out, labels, nil
}

// runFig4 reproduces Fig. 4: per-client label distributions on MNIST under
// the four heterogeneity settings.
func runFig4(p Profile, logf Logf) ([]*Table, error) {
	perClient, err := p.samplesPerClient(data.KindMNIST)
	if err != nil {
		return nil, err
	}
	train, _, err := p.datasets(data.KindMNIST, p.Clients, perClient, 0)
	if err != nil {
		return nil, err
	}
	schemes := []partition.Scheme{
		partition.Dirichlet(0.1),
		partition.Dirichlet(0.5),
		partition.Orthogonal(5),
		partition.Orthogonal(10),
	}
	summary := &Table{
		ID:      "fig4",
		Title:   "Heterogeneity indices per scheme (internal/hetero)",
		Headers: []string{"Scheme", "Mean entropy", "Pairwise TV", "TV to global", "Mean #classes"},
	}
	var tables []*Table
	for _, s := range schemes {
		rng := prng.Stream(p.Seed, streamPartition, 0)
		parts, err := partition.Partition(s, train.Y, train.Classes, p.Clients, perClient, rng)
		if err != nil {
			return nil, err
		}
		counts := partition.LabelCounts(parts, train.Y, train.Classes)
		headers := []string{"Client"}
		for c := 0; c < train.Classes; c++ {
			headers = append(headers, fmt.Sprintf("c%d", c))
		}
		headers = append(headers, "#classes")
		t := &Table{
			ID:      "fig4",
			Title:   fmt.Sprintf("Label distribution under %s (MNIST, %d clients x %d samples)", s, p.Clients, perClient),
			Headers: headers,
		}
		eff := partition.EffectiveClasses(counts)
		for k, row := range counts {
			cells := []string{fmt.Sprintf("%d", k+1)}
			for _, v := range row {
				cells = append(cells, fmt.Sprintf("%d", v))
			}
			cells = append(cells, fmt.Sprintf("%d", eff[k]))
			t.AddRow(cells...)
		}
		tables = append(tables, t)
		h, err := hetero.Analyze(counts)
		if err != nil {
			return nil, err
		}
		summary.AddRow(s.String(),
			fmt.Sprintf("%.3f", h.MeanEntropy),
			fmt.Sprintf("%.3f", h.MeanTVDistance),
			fmt.Sprintf("%.3f", h.MeanDivergence),
			fmt.Sprintf("%.1f", h.MeanEffectiveClasses))
	}
	tables = append(tables, summary)
	return tables, nil
}

// runFig5 reproduces Fig. 5: EMA-smoothed convergence curves of the CNN on
// three datasets under Dir-0.5 and Orthogonal-5, one table per panel.
func runFig5(p Profile, logf Logf) ([]*Table, error) {
	kinds := []data.Kind{data.KindMNIST, data.KindFMNIST, data.KindEMNIST}
	schemes := []partition.Scheme{partition.Dirichlet(0.5), partition.Orthogonal(5)}
	var tables []*Table
	for _, scheme := range schemes {
		for _, kind := range kinds {
			bc := benchCase{arch: nn.ArchCNN, kind: kind}
			results, err := methodResults(p, bc, scheme, 0, 0, 0, 0, logf)
			if err != nil {
				return nil, err
			}
			every := p.Fig5EveryRounds
			if every <= 0 {
				every = 5
			}
			headers := []string{"Method"}
			for r := every; r <= p.Rounds; r += every {
				headers = append(headers, fmt.Sprintf("r%d", r))
			}
			t := &Table{
				ID:      "fig5",
				Title:   fmt.Sprintf("Test accuracy (EMA-smoothed) of CNN on %s under %s", kind, scheme),
				Headers: headers,
			}
			for _, method := range PaperMethods() {
				// Average the accuracy trajectories over trials, then smooth.
				rs := results[method]
				avg := make([]float64, p.Rounds)
				for _, r := range rs {
					for i := range r.Accuracy {
						avg[i] += r.Accuracy[i] / float64(len(rs))
					}
				}
				sm := stats.EMA(avg, 0.3)
				row := []string{method}
				for r := every; r <= p.Rounds; r += every {
					row = append(row, fmt.Sprintf("%.3f", sm[r-1]))
				}
				t.AddRow(row...)
			}
			tables = append(tables, t)
		}
	}
	return tables, nil
}

// runFig6 reproduces Fig. 6: boxplots of final accuracy (mean of the last
// 10 rounds per the paper; here the box is over the last-10-round
// accuracies pooled across trials) for CNN and MLP on FMNIST under four
// heterogeneity types.
func runFig6(p Profile, logf Logf) ([]*Table, error) {
	schemes := []partition.Scheme{
		partition.Orthogonal(10),
		partition.Orthogonal(5),
		partition.Dirichlet(0.1),
		partition.Dirichlet(0.5),
	}
	var tables []*Table
	for _, arch := range []nn.Arch{nn.ArchCNN, nn.ArchMLP} {
		headers := []string{"Method"}
		for _, s := range schemes {
			headers = append(headers, s.String())
		}
		t := &Table{
			ID:      "fig6",
			Title:   fmt.Sprintf("Final accuracy distribution (%s on FMNIST): median [q1,q3]", arch),
			Headers: headers,
		}
		for _, method := range PaperMethods() {
			row := []string{method}
			for _, scheme := range schemes {
				bc := benchCase{arch: arch, kind: data.KindFMNIST}
				results, err := methodResults(p, bc, scheme, 0, 0, 0, 0, logf)
				if err != nil {
					return nil, err
				}
				var pool []float64
				for _, r := range results[method] {
					lo := len(r.Accuracy) - 10
					if lo < 0 {
						lo = 0
					}
					pool = append(pool, r.Accuracy[lo:]...)
				}
				b := stats.BoxStats(pool)
				row = append(row, fmt.Sprintf("%.3f [%.3f,%.3f]", b.Median, b.Q1, b.Q3))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// runFig7 reproduces Fig. 7: FedTrip's sensitivity to mu. For each panel
// (CNN/MNIST under Dir-0.1, Dir-0.5, Orthogonal-5; MLP/FMNIST under
// Dir-0.5) it sweeps mu and reports the best test accuracy and the rounds
// to the panel's adaptive target.
func runFig7(p Profile, logf Logf) ([]*Table, error) {
	panels := []struct {
		arch   nn.Arch
		kind   data.Kind
		scheme partition.Scheme
	}{
		{nn.ArchCNN, data.KindMNIST, partition.Dirichlet(0.1)},
		{nn.ArchCNN, data.KindMNIST, partition.Dirichlet(0.5)},
		{nn.ArchCNN, data.KindMNIST, partition.Orthogonal(5)},
		{nn.ArchMLP, data.KindFMNIST, partition.Dirichlet(0.5)},
	}
	var tables []*Table
	for _, panel := range panels {
		// Target derives from the FedAvg baseline of the same panel.
		fedavg, err := p.RunTrials(Case{
			Kind: panel.kind, Arch: panel.arch, Scheme: panel.scheme,
			Algo: "fedavg",
		}, logf)
		if err != nil {
			return nil, err
		}
		target := adaptiveTarget(fedavg)
		t := &Table{
			ID:      "fig7",
			Title:   fmt.Sprintf("FedTrip mu sensitivity: %s/%s under %s (target %.4f)", panel.arch, panel.kind, panel.scheme, target),
			Headers: []string{"mu", "best accuracy", "rounds to target"},
		}
		for _, mu := range p.MuSweep {
			rs, err := p.RunTrials(Case{
				Kind: panel.kind, Arch: panel.arch, Scheme: panel.scheme,
				Algo: "fedtrip", Params: algos.Params{Mu: mu},
			}, logf)
			if err != nil {
				return nil, err
			}
			var best []float64
			for _, r := range rs {
				best = append(best, r.BestAccuracy)
			}
			mean, reached := meanRoundsToTarget(rs, target)
			t.AddRow(fmt.Sprintf("%.2f", mu),
				stats.Summarize(best).String(),
				formatRounds(mean, reached))
		}
		tables = append(tables, t)
	}
	return tables, nil
}
