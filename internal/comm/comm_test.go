package comm

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/tensor"
)

func TestF32TransportQuantizes(t *testing.T) {
	tr := NewF32Transport()
	v := []float64{math.Pi, 1e-300, 2.5}
	got := tr.Down(0, 1, v)
	if got[0] == math.Pi {
		t.Fatal("pi survived float32 transport unrounded")
	}
	if got[0] != float64(float32(math.Pi)) {
		t.Fatalf("got %v want float32 rounding", got[0])
	}
	if got[1] != 0 {
		t.Fatalf("denormal-beyond-f32 value should flush to 0, got %v", got[1])
	}
	if got[2] != 2.5 {
		t.Fatal("exactly representable value changed")
	}
}

func TestStatsCounting(t *testing.T) {
	tr := NewF32Transport()
	v := make([]float64, 100)
	tr.Down(0, 1, v)
	tr.Down(1, 1, v)
	tr.Up(0, 1, v)
	s := tr.Stats()
	wantPer := tensor.VectorWireSizeF32(100)
	if s.DownBytes() != 2*wantPer || s.UpBytes() != wantPer {
		t.Fatalf("bytes down=%d up=%d want %d/%d", s.DownBytes(), s.UpBytes(), 2*wantPer, wantPer)
	}
	d, u := s.Messages()
	if d != 2 || u != 1 {
		t.Fatalf("msgs %d/%d", d, u)
	}
	if s.TotalBytes() != 3*wantPer {
		t.Fatal("total")
	}
	if !strings.Contains(s.String(), "MB") {
		t.Fatal("stats string")
	}
}

func TestLosslessTransportIdentity(t *testing.T) {
	tr := NewLosslessTransport()
	v := []float64{math.Pi}
	if got := tr.Down(0, 1, v); got[0] != math.Pi {
		t.Fatal("lossless transport changed data")
	}
	tr.Up(0, 1, v)
	if tr.Stats().TotalBytes() != 16 {
		t.Fatalf("bytes %d", tr.Stats().TotalBytes())
	}
}

// End-to-end: a run over the float32 transport must track the lossless run
// closely (quantization is benign) and meter exactly the analytic wire
// bytes.
func TestF32TransportEndToEnd(t *testing.T) {
	build := func(tr core.Transport) core.Config {
		train, test, err := data.Generate(data.Spec{Kind: data.KindMNIST, Train: 300, Test: 100, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		parts, err := partition.Partition(partition.Dirichlet(0.5), train.Y, train.Classes, 6, 50, rand.New(rand.NewSource(6)))
		if err != nil {
			t.Fatal(err)
		}
		return core.Config{
			Model:           nn.ModelSpec{Arch: nn.ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10},
			Train:           train,
			Test:            test,
			Parts:           parts,
			Rounds:          6,
			ClientsPerRound: 3,
			BatchSize:       10,
			LocalEpochs:     1,
			LR:              0.01,
			Momentum:        0.9,
			Algo:            core.NewFedTrip(0.4),
			Seed:            7,
			Transport:       tr,
		}
	}
	tr := NewF32Transport()
	resF32, err := core.Run(build(tr))
	if err != nil {
		t.Fatal(err)
	}
	resRef, err := core.Run(build(nil))
	if err != nil {
		t.Fatal(err)
	}
	// Wire bytes: 6 rounds x 3 clients x (down + up).
	m, _ := (nn.ModelSpec{Arch: nn.ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10}).Build(1)
	per := tensor.VectorWireSizeF32(m.NumParams())
	want := int64(6 * 3 * 2 * per)
	if tr.Stats().TotalBytes() != want {
		t.Fatalf("wire bytes %d want %d", tr.Stats().TotalBytes(), want)
	}
	// Accuracy: float32 quantization must not change the outcome much.
	d := math.Abs(resF32.FinalAccuracy - resRef.FinalAccuracy)
	if d > 0.1 {
		t.Fatalf("f32 transport moved final accuracy by %.3f (%.3f vs %.3f)", d, resF32.FinalAccuracy, resRef.FinalAccuracy)
	}
	if resF32.BestAccuracy < 0.3 {
		t.Fatalf("f32 run failed to learn: %v", resF32.BestAccuracy)
	}
}

// The runtime must prefer the transport's measured wire bytes over the
// analytic 4|w| formula: with an F32Transport installed, CommBytesByRound
// has to equal the Stats counters exactly (headers included), and each
// round's increment must match the per-transfer wire size.
func TestMeteredTransportFeedsCommBytes(t *testing.T) {
	train, test, err := data.Generate(data.Spec{Kind: data.KindMNIST, Train: 300, Test: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := partition.Partition(partition.Dirichlet(0.5), train.Y, train.Classes, 6, 50, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	tr := NewF32Transport()
	cfg := core.Config{
		Model:           nn.ModelSpec{Arch: nn.ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10},
		Train:           train,
		Test:            test,
		Parts:           parts,
		Rounds:          4,
		ClientsPerRound: 3,
		BatchSize:       10,
		LocalEpochs:     1,
		LR:              0.01,
		Momentum:        0.9,
		Algo:            core.NewFedTrip(0.4),
		Seed:            7,
		Transport:       tr,
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.CommBytesByRound[len(res.CommBytesByRound)-1], tr.Stats().TotalBytes(); got != want {
		t.Fatalf("CommBytesByRound final %d, measured stats %d", got, want)
	}
	m, _ := cfg.Model.Build(1)
	perRound := int64(cfg.ClientsPerRound) * 2 * tensor.VectorWireSizeF32(m.NumParams())
	prev := int64(0)
	for i, cum := range res.CommBytesByRound {
		if cum-prev != perRound {
			t.Fatalf("round %d delta %d want %d", i+1, cum-prev, perRound)
		}
		prev = cum
	}
	// Without a transport the analytic formula remains in force (no
	// header bytes).
	cfg.Transport = nil
	resA, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	analytic := int64(cfg.Rounds) * int64(cfg.ClientsPerRound) * 2 * int64(4*m.NumParams())
	if got := resA.CommBytesByRound[len(resA.CommBytesByRound)-1]; got != analytic {
		t.Fatalf("analytic fallback %d want %d", got, analytic)
	}
}
