package prng

import (
	"math"
	"testing"
)

// TestUniformMoments sanity-checks Float64: mean ~0.5, variance ~1/12.
func TestUniformMoments(t *testing.T) {
	r := New(1)
	const n = 200_000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		u := r.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64() = %v outside [0,1)", u)
		}
		sum += u
		sumSq += u * u
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("variance = %v, want ~%v", variance, 1.0/12)
	}
}

// TestNormalMoments sanity-checks NormFloat64: mean ~0, variance ~1.
func TestNormalMoments(t *testing.T) {
	r := New(2)
	const n = 200_000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

// TestExpMoments sanity-checks ExpFloat64: mean ~1.
func TestExpMoments(t *testing.T) {
	r := New(3)
	const n = 200_000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatalf("ExpFloat64() = %v < 0", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("mean = %v, want ~1", mean)
	}
}

// TestIntnUniform checks Intn's rejection sampler covers [0,n) roughly
// uniformly, including a non-power-of-two n.
func TestIntnUniform(t *testing.T) {
	r := New(4)
	const n = 7
	const draws = 140_000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
		counts[v]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("Intn(%d): value %d drawn %d times, want ~%.0f", n, v, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(5).Intn(0)
}

// TestPermIsPermutation checks Perm returns each element exactly once.
func TestPermIsPermutation(t *testing.T) {
	r := New(6)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

// TestStateRoundTrip pins the resume guarantee: exporting the state
// mid-stream and restoring it into a fresh Rand continues bit-for-bit —
// including between the two halves of a NormFloat64 pair, which exercises
// the buffered spare.
func TestStateRoundTrip(t *testing.T) {
	r := New(7)
	for i := 0; i < 100; i++ {
		r.Float64()
	}
	r.NormFloat64() // leaves a spare buffered

	st := r.State()
	if !st.HasSpare {
		t.Fatal("expected a buffered spare after one NormFloat64")
	}
	enc, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var dec State
	if err := dec.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	r2 := New(0)
	r2.SetState(dec)

	for i := 0; i < 1000; i++ {
		switch i % 4 {
		case 0:
			if a, b := r.Uint64(), r2.Uint64(); a != b {
				t.Fatalf("draw %d: Uint64 diverged: %d vs %d", i, a, b)
			}
		case 1:
			if a, b := r.NormFloat64(), r2.NormFloat64(); a != b {
				t.Fatalf("draw %d: NormFloat64 diverged: %v vs %v", i, a, b)
			}
		case 2:
			if a, b := r.Intn(13), r2.Intn(13); a != b {
				t.Fatalf("draw %d: Intn diverged: %d vs %d", i, a, b)
			}
		case 3:
			if a, b := r.ExpFloat64(), r2.ExpFloat64(); a != b {
				t.Fatalf("draw %d: ExpFloat64 diverged: %v vs %v", i, a, b)
			}
		}
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	var st State
	if err := st.UnmarshalBinary(make([]byte, 5)); err == nil {
		t.Error("short buffer accepted")
	}
	bad := make([]byte, 17)
	bad[16] = 7
	if err := st.UnmarshalBinary(bad); err == nil {
		t.Error("corrupt spare flag accepted")
	}
}

// TestSeedsDecorrelated: adjacent seeds must produce uncorrelated streams
// (the registry derives many streams from one run seed).
func TestSeedsDecorrelated(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	const n = 10_000
	for i := 0; i < n; i++ {
		if a.Uint64()&1 == b.Uint64()&1 {
			same++
		}
	}
	if same < n*45/100 || same > n*55/100 {
		t.Errorf("adjacent-seed bit agreement %d/%d, want ~50%%", same, n)
	}
}
