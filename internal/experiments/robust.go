package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/stats"
)

// runRobust races aggregation policies against a growing Byzantine
// fraction on the churning tiered fleet — the graceful-degradation
// counterpart to the hetero table. Every run is FedTrip on the buffered
// async runtime with FLOP-coupled tiered devices, adaptive local steps,
// and horizon-calibrated Markov churn; the adversary sign-flips the
// configured fraction of the fleet's uploads. The policies:
//
//   - "fedavg": the plain sample-weighted mean — every admitted update
//     moves the model, so flipped uploads pull it straight backwards.
//   - "median": coordinate-wise median — breakdown point 1/2.
//   - "trimmedmean:0.25": drops the extreme quarter of each coordinate's
//     tails before averaging.
//   - "fedavg+clip:1": the mean behind a norm-clip guard — corrupted
//     updates still count, but only after being pulled back onto the
//     admissible ball around the global model.
//
// Cells report mean final accuracy per Byzantine fraction, with ">"
// marking runs that never reached the honest-fleet adaptive target —
// the table shows where each policy stops holding the target as the
// adversary grows.
func runRobust(p Profile, logf Logf) ([]*Table, error) {
	policies := []string{"fedavg", "median", "trimmedmean:0.25", "fedavg+clip:1"}
	fractions := []float64{0, 0.1, 0.2, 0.3}
	perRound := p.PerRound
	buffer := p.Buffer
	if buffer == 0 {
		buffer = perRound
	}
	baseCase := func(policy string, frac float64, churnSpec string) Case {
		c := Case{
			Kind:          data.KindMNIST,
			Arch:          nn.ArchMLP,
			Scheme:        partition.Dirichlet(0.5),
			Algo:          "fedtrip",
			Params:        DefaultParams("fedtrip", nn.ArchMLP, data.KindMNIST),
			Runtime:       core.RuntimeAsync,
			Policy:        policy,
			Buffer:        buffer,
			Devices:       "tiered",
			AdaptiveSteps: true,
			Churn:         churnSpec,
			// Update-budget equalization as in the hetero table: Rounds
			// counts aggregations and each merges `buffer` updates.
			Rounds: (p.Rounds*perRound + buffer - 1) / buffer,
		}
		if frac > 0 {
			c.Faults = fmt.Sprintf("byz:%g,signflip", frac)
		}
		return c
	}
	// Calibrate the target and the churn timescales from the honest
	// fedavg fleet, exactly like the hetero table: availability must live
	// on the flop-derived clock, and every policy is measured against the
	// same honest-fleet bar.
	ref, err := p.RunTrials(baseCase("fedavg", 0, ""), logf)
	if err != nil {
		return nil, err
	}
	target := adaptiveTarget(ref)
	var horizon []float64
	for _, r := range ref {
		horizon = append(horizon, r.SimTimeByRound[len(r.SimTimeByRound)-1])
	}
	h := stats.Mean(horizon)
	churnSpec := fmt.Sprintf("markov:%.6g,%.6g", h/3, h/15)

	t := &Table{
		ID:      "robust",
		Title:   "Robust aggregation under Byzantine sign-flip (FedTrip MLP/MNIST, Dir-0.5, churning tiered fleet)",
		Headers: []string{"Policy", "Byz 0%", "Byz 10%", "Byz 20%", "Byz 30%"},
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("cells: mean final accuracy; > marks runs that never reached the adaptive target %.4f (0.97x honest-fleet FedAvg final)", target),
		fmt.Sprintf("buffer %d, update-budget-equalized; tiered 0.25x/1x/4x devices, adaptive local steps, churn %s", buffer, churnSpec),
		"byz:F,signflip negates the trained model of fraction F of the fleet at upload time; faults ride transports and churn like honest updates",
	)
	for _, policy := range policies {
		row := []string{policy}
		for _, frac := range fractions {
			results, err := p.RunTrials(baseCase(policy, frac, churnSpec), logf)
			if err != nil {
				return nil, err
			}
			var finals []float64
			reached := true
			for _, r := range results {
				finals = append(finals, r.FinalAccuracy)
				if _, ok := roundsToTargetClamped(r, target); !ok {
					reached = false
				}
			}
			mark := ""
			if !reached {
				mark = ">"
			}
			row = append(row, mark+fmt.Sprintf("%.4f", stats.Mean(finals)))
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}
