package data

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestTableIIMatchesPaper(t *testing.T) {
	want := map[Kind]Stats{
		KindMNIST:  {Kind: KindMNIST, TotalSamples: 60000, Classes: 10, Channels: 1, Height: 28, Width: 28, ClientSamples: 600},
		KindFMNIST: {Kind: KindFMNIST, TotalSamples: 60000, Classes: 10, Channels: 1, Height: 28, Width: 28, ClientSamples: 1000},
		KindEMNIST: {Kind: KindEMNIST, TotalSamples: 112800, Classes: 47, Channels: 1, Height: 28, Width: 28, ClientSamples: 3000},
		KindCIFAR:  {Kind: KindCIFAR, TotalSamples: 50000, Classes: 10, Channels: 3, Height: 32, Width: 32, ClientSamples: 2000},
	}
	for _, k := range Kinds() {
		got, err := TableII(k)
		if err != nil {
			t.Fatal(err)
		}
		if got != want[k] {
			t.Errorf("TableII(%s) = %+v, want %+v", k, got, want[k])
		}
	}
	if _, err := TableII(Kind("bogus")); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestGenerateShapesAndLabels(t *testing.T) {
	train, test, err := Generate(Spec{Kind: KindMNIST, Train: 500, Test: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 500 || test.Len() != 100 {
		t.Fatalf("sizes %d/%d", train.Len(), test.Len())
	}
	if train.SampleSize() != 784 {
		t.Fatalf("sample size %d", train.SampleSize())
	}
	for _, y := range train.Y {
		if y < 0 || y >= train.Classes {
			t.Fatalf("label %d out of range", y)
		}
	}
	if len(train.X) != 500*784 {
		t.Fatalf("X len %d", len(train.X))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _, err := Generate(Spec{Kind: KindCIFAR, Train: 50, Test: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, _, _ := Generate(Spec{Kind: KindCIFAR, Train: 50, Test: 10, Seed: 7})
	if tensor.MaxAbsDiff(a.X, b.X) != 0 {
		t.Fatal("same seed, different data")
	}
	c, _, _ := Generate(Spec{Kind: KindCIFAR, Train: 50, Test: 10, Seed: 8})
	if tensor.MaxAbsDiff(a.X, c.X) == 0 {
		t.Fatal("different seed, identical data")
	}
}

func TestGenerateUnknownKind(t *testing.T) {
	if _, _, err := Generate(Spec{Kind: "nope", Train: 10, Test: 10}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestDefaultSizes(t *testing.T) {
	train, test, err := Generate(Spec{Kind: KindMNIST, Seed: 1, Train: 0, Test: 0})
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 60000 {
		t.Fatalf("default train size %d != Table II total", train.Len())
	}
	if test.Len() <= 0 {
		t.Fatal("default test size not positive")
	}
}

func TestClassesRoughlyBalanced(t *testing.T) {
	train, _, err := Generate(Spec{Kind: KindMNIST, Train: 5000, Test: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	counts := train.ClassCounts(nil)
	for c, n := range counts {
		if n < 300 || n > 700 {
			t.Fatalf("class %d has %d samples (expected ~500)", c, n)
		}
	}
}

// Class signal sanity: the mean intra-class distance must be smaller than
// the mean inter-class distance, otherwise nothing is learnable.
func TestClassSeparationExists(t *testing.T) {
	for _, k := range Kinds() {
		train, _, err := Generate(Spec{Kind: k, Train: 400, Test: 10, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		size := train.SampleSize()
		var intra, inter float64
		var nIntra, nInter int
		for i := 0; i < 100; i++ {
			for j := i + 1; j < 100; j++ {
				d := tensor.DistSq(train.X[i*size:(i+1)*size], train.X[j*size:(j+1)*size])
				if train.Y[i] == train.Y[j] {
					intra += d
					nIntra++
				} else {
					inter += d
					nInter++
				}
			}
		}
		if nIntra == 0 || nInter == 0 {
			t.Fatalf("%s: degenerate label draw", k)
		}
		intra /= float64(nIntra)
		inter /= float64(nInter)
		if inter <= intra*1.05 {
			t.Errorf("%s: inter-class distance %.3f not larger than intra-class %.3f", k, inter, intra)
		}
	}
}

// Difficulty ordering: MNIST-like must have the largest class-separation
// margin of the four kinds (it is the easy dataset everywhere in the
// paper), and every kind must retain a positive margin. FMNIST/EMNIST/
// CIFAR difficulty additionally comes from class count and input size, so
// only MNIST's dominance is asserted on raw pixels.
func TestDifficultyOrdering(t *testing.T) {
	margin := func(k Kind) float64 {
		train, _, err := Generate(Spec{Kind: k, Train: 300, Test: 10, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		size := train.SampleSize()
		var intra, inter float64
		var nIntra, nInter int
		for i := 0; i < 150; i++ {
			for j := i + 1; j < 150; j++ {
				d := tensor.DistSq(train.X[i*size:(i+1)*size], train.X[j*size:(j+1)*size]) / float64(size)
				if train.Y[i] == train.Y[j] {
					intra += d
					nIntra++
				} else {
					inter += d
					nInter++
				}
			}
		}
		return (inter / float64(nInter)) / (intra / float64(nIntra))
	}
	mnist := margin(KindMNIST)
	for _, k := range []Kind{KindFMNIST, KindEMNIST, KindCIFAR} {
		if m := margin(k); m <= 1.0 {
			t.Errorf("%s margin %.3f: no class signal", k, m)
		}
	}
	// Same-class-count comparisons: MNIST must be the easiest 10-class
	// set (EMNIST's difficulty is its 47 classes, not pixel distance).
	for _, k := range []Kind{KindFMNIST, KindCIFAR} {
		if m := margin(k); mnist <= m {
			t.Errorf("MNIST margin %.3f should exceed %s margin %.3f", mnist, k, m)
		}
	}
}

func TestFillBatch(t *testing.T) {
	train, _, err := Generate(Spec{Kind: KindMNIST, Train: 20, Test: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(3, 1, 28, 28)
	labels := make([]int, 3)
	idx := []int{5, 0, 19}
	train.FillBatch(x, labels, idx)
	for bi, si := range idx {
		if labels[bi] != train.Y[si] {
			t.Fatalf("label %d mismatch", bi)
		}
		if x.Data[bi*784] != train.X[si*784] {
			t.Fatalf("pixel 0 of batch row %d mismatch", bi)
		}
	}
}

func TestFillBatchPanics(t *testing.T) {
	train, _, _ := Generate(Spec{Kind: KindMNIST, Train: 5, Test: 10, Seed: 2})
	t.Run("shape", func(t *testing.T) {
		defer expectPanic(t)
		train.FillBatch(tensor.New(2, 10), make([]int, 2), []int{0, 1})
	})
	t.Run("labels", func(t *testing.T) {
		defer expectPanic(t)
		train.FillBatch(tensor.New(2, 784), make([]int, 1), []int{0, 1})
	})
	t.Run("index", func(t *testing.T) {
		defer expectPanic(t)
		train.FillBatch(tensor.New(1, 784), make([]int, 1), []int{99})
	})
}

func TestClassCountsSubset(t *testing.T) {
	train, _, _ := Generate(Spec{Kind: KindMNIST, Train: 100, Test: 10, Seed: 4})
	idx := []int{0, 1, 2}
	counts := train.ClassCounts(idx)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("subset counts sum %d", total)
	}
}

// Train/test must share prototypes: a nearest-class-mean classifier fit on
// train must beat chance on test by a wide margin.
func TestTrainTestShareClassStructure(t *testing.T) {
	train, test, err := Generate(Spec{Kind: KindMNIST, Train: 1000, Test: 300, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	size := train.SampleSize()
	means := make([][]float64, train.Classes)
	counts := make([]int, train.Classes)
	for c := range means {
		means[c] = make([]float64, size)
	}
	for i := 0; i < train.Len(); i++ {
		y := train.Y[i]
		counts[y]++
		tensor.Axpy(1, train.X[i*size:(i+1)*size], means[y])
	}
	for c := range means {
		if counts[c] > 0 {
			tensor.Scale(1/float64(counts[c]), means[c])
		}
	}
	correct := 0
	for i := 0; i < test.Len(); i++ {
		x := test.X[i*size : (i+1)*size]
		best, bestD := -1, math.Inf(1)
		for c := range means {
			if d := tensor.DistSq(x, means[c]); d < bestD {
				best, bestD = c, d
			}
		}
		if best == test.Y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(test.Len())
	if acc < 0.5 {
		t.Fatalf("nearest-mean test accuracy %.3f — class signal does not generalise", acc)
	}
}

func expectPanic(t *testing.T) {
	t.Helper()
	if recover() == nil {
		t.Fatal("expected panic")
	}
}
