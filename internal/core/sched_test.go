package core

import (
	"repro/internal/prng"
	"sort"
	"testing"
)

func job(finish float64, seq, clientID int) *trainJob {
	return &trainJob{c: &Client{ID: clientID}, finish: finish, seq: seq}
}

// The heap must deliver jobs in (finish, seq) order regardless of push
// order.
func TestJobHeapOrdering(t *testing.T) {
	var h jobHeap
	jobs := []*trainJob{
		job(5, 0, 0), job(1, 1, 1), job(3, 2, 2), job(1, 3, 3),
		job(0.5, 4, 4), job(3, 5, 5), job(7, 6, 6), job(0.5, 7, 7),
	}
	for _, j := range jobs {
		h.push(j)
	}
	want := append([]*trainJob(nil), jobs...)
	sort.SliceStable(want, func(i, k int) bool { return jobLess(want[i], want[k]) })
	for i, w := range want {
		got := h.pop()
		if got != w {
			t.Fatalf("pop %d: finish=%v seq=%d, want finish=%v seq=%d", i, got.finish, got.seq, w.finish, w.seq)
		}
	}
	if h.pop() != nil {
		t.Fatal("empty heap must pop nil")
	}
}

// Ties on both finish and seq break by client index, so a replay is
// deterministic even for jobs that are otherwise indistinguishable.
func TestJobHeapTieBreakByClientIndex(t *testing.T) {
	var h jobHeap
	for _, id := range []int{4, 0, 3, 1, 2} {
		h.push(job(2.0, 9, id))
	}
	for want := 0; want < 5; want++ {
		if got := h.pop().c.ID; got != want {
			t.Fatalf("tie pop returned client %d, want %d", got, want)
		}
	}
}

// Interleaved pushes and pops (the event loop's actual access pattern)
// against an exact mirror: every pop must return the jobLess-minimum of
// everything currently queued.
func TestJobHeapInterleaved(t *testing.T) {
	rng := prng.New(8)
	var h jobHeap
	var mirror []*trainJob
	seq := 0
	for step := 0; step < 3000; step++ {
		if len(mirror) == 0 || rng.Intn(2) == 0 {
			// A coarse finish grid forces plenty of ties through the
			// seq tie-break.
			j := job(float64(rng.Intn(20)), seq, seq)
			seq++
			h.push(j)
			mirror = append(mirror, j)
		} else {
			best := 0
			for i := 1; i < len(mirror); i++ {
				if jobLess(mirror[i], mirror[best]) {
					best = i
				}
			}
			want := mirror[best]
			mirror = append(mirror[:best], mirror[best+1:]...)
			got := h.pop()
			if got != want {
				t.Fatalf("step %d: popped (finish=%v seq=%d), want (finish=%v seq=%d)",
					step, got.finish, got.seq, want.finish, want.seq)
			}
			if got.heapIdx != -1 {
				t.Fatal("popped job still carries a heap index")
			}
		}
		if h.len() != len(mirror) {
			t.Fatalf("heap len %d want %d", h.len(), len(mirror))
		}
	}
}

// The idle set must pick only idle clients, uniformly, and report
// exhaustion when everyone is busy.
func TestIdleSetPickRemoveAdd(t *testing.T) {
	const n = 10
	s := newIdleSet(n)
	rng := prng.New(3)
	if s.size() != n {
		t.Fatalf("size %d", s.size())
	}
	// Partially busy: remove the even ids; picks must all be odd.
	for id := 0; id < n; id += 2 {
		s.remove(id)
	}
	for trial := 0; trial < 200; trial++ {
		id, ok := s.pick(rng)
		if !ok {
			t.Fatal("pick failed with idle clients present")
		}
		if id%2 == 0 {
			t.Fatalf("picked busy client %d", id)
		}
	}
	// All busy: pick must fail.
	for id := 1; id < n; id += 2 {
		s.remove(id)
	}
	if _, ok := s.pick(rng); ok {
		t.Fatal("pick succeeded with everyone busy")
	}
	if s.size() != 0 {
		t.Fatalf("size %d after removing all", s.size())
	}
	// Releasing brings clients back; duplicates are no-ops.
	s.add(4)
	s.add(4)
	if s.size() != 1 {
		t.Fatalf("size %d after re-adding one client twice", s.size())
	}
	id, ok := s.pick(rng)
	if !ok || id != 4 {
		t.Fatalf("pick after release: %d %v", id, ok)
	}
	s.remove(4)
	s.remove(4) // no-op
	if s.size() != 0 {
		t.Fatal("double remove corrupted the set")
	}
}

// Every idle client must be reachable: over many draws a partially busy
// population yields each idle id.
func TestIdleSetCoversAllIdle(t *testing.T) {
	const n = 32
	s := newIdleSet(n)
	rng := prng.New(5)
	busy := map[int]bool{}
	for id := 0; id < n; id += 3 {
		s.remove(id)
		busy[id] = true
	}
	seen := map[int]bool{}
	for trial := 0; trial < 5000; trial++ {
		id, ok := s.pick(rng)
		if !ok {
			t.Fatal("pick failed")
		}
		if busy[id] {
			t.Fatalf("picked busy client %d", id)
		}
		seen[id] = true
	}
	for id := 0; id < n; id++ {
		if !busy[id] && !seen[id] {
			t.Fatalf("idle client %d never picked in 5000 draws", id)
		}
	}
}

// pickAvailable through a live AsyncServer: all-busy and partially-busy
// populations behave like the registry promises, and every pick consumes
// exactly one selection draw.
func TestPickAvailableBusyStates(t *testing.T) {
	acfg := asyncTestConfig(t, NewFedTrip(0.4))
	a, err := NewAsyncServer(acfg)
	if err != nil {
		t.Fatal(err)
	}
	n := len(a.s.clients)
	// Fully idle: picks succeed and land in range.
	for trial := 0; trial < 50; trial++ {
		id, ok := a.pickAvailable()
		if !ok || id < 0 || id >= n {
			t.Fatalf("pick %d ok=%v", id, ok)
		}
	}
	// Partially busy: mark half the fleet dispatched.
	for id := 0; id < n/2; id++ {
		a.pop.dispatched(id)
	}
	for trial := 0; trial < 50; trial++ {
		id, ok := a.pickAvailable()
		if !ok {
			t.Fatal("pick failed with idle clients present")
		}
		if id < n/2 {
			t.Fatalf("picked dispatched client %d", id)
		}
	}
	// All busy: pick reports exhaustion.
	for id := n / 2; id < n; id++ {
		a.pop.dispatched(id)
	}
	if _, ok := a.pickAvailable(); ok {
		t.Fatal("pick succeeded with the whole fleet in flight")
	}
	// Arrivals free clients again.
	a.pop.arrived(2, true)
	id, ok := a.pickAvailable()
	if !ok || id != 2 {
		t.Fatalf("pick after arrival: %d %v", id, ok)
	}
}

// The registry's dispatch counters and participation stats must track
// dispatches, and per-client latency models must route through the
// stateless jitter path with draws identical to Sample.
func TestPopulationParticipationStats(t *testing.T) {
	model := StragglerLatency{Fast: 1, Slow: 10, SlowEvery: 2}
	p := newPopulation(5, model)
	if p.jitter == nil {
		t.Fatal("straggler model must register its per-client jitter decomposition")
	}
	for id, want := range []float64{10, 1, 10, 1, 10} {
		if got := p.jitter.ClientBase(id); got != want {
			t.Fatalf("ClientBase(%d)=%v want %v", id, got, want)
		}
	}
	r1 := prng.New(9)
	r2 := prng.New(9)
	for i := 0; i < 20; i++ {
		if p.sampleLatency(model, i%5, r1) != model.Sample(i%5, r2) {
			t.Fatal("jitter path diverged from Sample")
		}
	}
	p.dispatched(1)
	p.arrived(1, true)
	p.dispatched(1)
	p.dispatched(4)
	distinct, total := p.participants()
	if distinct != 2 || total != 3 {
		t.Fatalf("participants %d/%d want 2/3", distinct, total)
	}
	// Models without a per-client base must not pretend to have one, and
	// sampleLatency must fall through to Sample with identical draws.
	q := newPopulation(5, UniformLatency{Min: 1, Max: 2})
	if q.jitter != nil {
		t.Fatal("uniform model must not pretend to have per-client bases")
	}
	r3 := prng.New(9)
	r4 := prng.New(9)
	for i := 0; i < 20; i++ {
		if q.sampleLatency(UniformLatency{Min: 1, Max: 2}, i%5, r3) != (UniformLatency{Min: 1, Max: 2}).Sample(i%5, r4) {
			t.Fatal("sampleLatency fallback diverged from Sample")
		}
	}
}

// Barrier mode must feed the participation registry too: a run of R
// rounds with K clients each records exactly R*K dispatches.
func TestBarrierModeRecordsParticipation(t *testing.T) {
	acfg := asyncTestConfig(t, NewFedTrip(0.4))
	acfg.RoundBarrier = true
	a, err := NewAsyncServer(acfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(); err != nil {
		t.Fatal(err)
	}
	distinct, dispatches := a.Participation()
	if want := int64(acfg.Rounds * acfg.ClientsPerRound); dispatches != want {
		t.Fatalf("dispatches %d want %d", dispatches, want)
	}
	if distinct < 1 || distinct > len(acfg.Parts) {
		t.Fatalf("distinct participants %d outside [1,%d]", distinct, len(acfg.Parts))
	}
}

// Server-side engine work outside the shard pool (FullGrad in PreRound,
// direct test access) must go through the server's single shared loaner —
// never a private per-client engine, which would rebuild the O(N*|w|)
// memory footprint this architecture removed.
func TestServerClientsShareLoanerEngine(t *testing.T) {
	cfg := testConfig(t, NewFedTrip(0.4))
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	at := s.Global()
	var engines []*engine
	for _, c := range s.Clients() {
		c.FullGrad(at)
		if c.ownEng != nil {
			t.Fatalf("client %d built a private engine inside a server population", c.ID)
		}
		engines = append(engines, c.engine())
	}
	for _, e := range engines[1:] {
		if e != engines[0] {
			t.Fatal("server-side engine work is not sharing the loaner")
		}
	}
	// The loaner's FLOP metering must follow the borrower.
	c0, c1 := s.Clients()[0], s.Clients()[1]
	before := c1.Counter.Total()
	c0.FullGrad(at)
	if c1.Counter.Total() != before {
		t.Fatal("loaner credited FLOPs to the wrong client")
	}
}

// The cached-base path must produce exactly the draws Sample would.
func TestPopulationLatencyCacheMatchesSample(t *testing.T) {
	lat := StragglerLatency{Fast: 1, Slow: 10, SlowEvery: 3}
	p := newPopulation(6, lat)
	r1 := prng.New(17)
	r2 := prng.New(17)
	for i := 0; i < 100; i++ {
		id := i % 6
		if got, want := p.sampleLatency(lat, id, r1), lat.Sample(id, r2); got != want {
			t.Fatalf("cached sample %v want %v (client %d)", got, want, id)
		}
	}
}
