package main

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestDiff(t *testing.T) {
	old := []Benchmark{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 100, "allocs/op": 10}},
		{Name: "BenchmarkGone", Metrics: map[string]float64{"ns/op": 5}},
	}
	cur := []Benchmark{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 150, "allocs/op": 10, "updates/sec": 3}},
		{Name: "BenchmarkNew", Metrics: map[string]float64{"ns/op": 7}},
	}
	rows := Diff(old, cur)
	// BenchmarkA: ns/op and allocs/op compared (updates/sec missing in
	// old), then BenchmarkGone removed, BenchmarkNew added — sorted by
	// name.
	if len(rows) != 4 {
		t.Fatalf("rows %d: %+v", len(rows), rows)
	}
	if rows[0].Name != "BenchmarkA" || rows[0].Metric != "ns/op" || math.Abs(rows[0].Delta-50) > 1e-9 {
		t.Fatalf("ns/op row %+v", rows[0])
	}
	if rows[1].Metric != "allocs/op" || rows[1].Delta != 0 {
		t.Fatalf("allocs/op row %+v", rows[1])
	}
	if rows[2].Name != "BenchmarkGone" || rows[2].Status != "removed" {
		t.Fatalf("removed row %+v", rows[2])
	}
	if rows[3].Name != "BenchmarkNew" || rows[3].Status != "added" {
		t.Fatalf("added row %+v", rows[3])
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	rows := Diff(
		[]Benchmark{{Name: "B", Metrics: map[string]float64{"ns/op": 0}}},
		[]Benchmark{{Name: "B", Metrics: map[string]float64{"ns/op": 9}}},
	)
	if len(rows) != 1 || !math.IsInf(rows[0].Delta, 1) {
		t.Fatalf("zero-baseline rows %+v", rows)
	}
}

func TestRender(t *testing.T) {
	var buf bytes.Buffer
	Render(&buf, Diff(
		[]Benchmark{{Name: "BenchmarkX", Metrics: map[string]float64{"ns/op": 200}}},
		[]Benchmark{{Name: "BenchmarkX", Metrics: map[string]float64{"ns/op": 100}}},
	))
	out := buf.String()
	for _, frag := range []string{"BenchmarkX", "ns/op", "-50.0%"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}
	buf.Reset()
	Render(&buf, nil)
	if !strings.Contains(buf.String(), "no comparable benchmarks") {
		t.Fatalf("empty render %q", buf.String())
	}
}
