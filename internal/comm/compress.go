// Compressing transports: delta-coded uplinks through a lossy codec
// (top-k / rand-k sparsification, b-bit quantization), optionally wrapped
// in error-feedback residual accumulation (SEAGuL/EF-SGD style: what the
// codec drops this round is added back into the next round's delta, so
// the compression error telescopes instead of accumulating).
//
// Every transfer reports its exact encoded wire size, so the runtime's
// bandwidth pricing (core.RunSpec.Network) charges compressed uploads
// proportionally less simulated time — compression genuinely buys
// sim-time, not just smaller counters.
package comm

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"repro/internal/prng"
	"repro/internal/quantize"
	"repro/internal/tensor"
)

// codec is one lossy uplink compression scheme. compressInto writes the
// decoded (lossy) reconstruction of delta into rec — same length — and
// returns the exact encoded wire size in bytes. An error means delta is
// not encodable (non-finite values); the transport then falls back to
// dense float32 shipping.
type codec interface {
	compressInto(rec, delta []float64, clientID, round int) (int64, error)
	name() string
}

// keepCount translates a sparsification ratio into an entry count:
// ceil(ratio*n), at least 1 (an empty upload carries no information).
func keepCount(ratio float64, n int) int {
	if n == 0 {
		return 0
	}
	k := int(math.Ceil(ratio * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// topKCodec keeps the ratio*n largest-magnitude delta entries.
type topKCodec struct{ ratio float64 }

func (c topKCodec) name() string { return fmt.Sprintf("topk:%g", c.ratio) }

func (c topKCodec) compressInto(rec, delta []float64, clientID, round int) (int64, error) {
	s, err := quantize.TopK(delta, keepCount(c.ratio, len(delta)))
	if err != nil {
		return 0, err
	}
	for i := range rec {
		rec[i] = 0
	}
	if err := s.DenseInto(rec); err != nil {
		return 0, err
	}
	return s.WireSize(), nil
}

// randkStream seeds rand-k's per-transfer index draws. The rng is derived
// statelessly from (clientID, round), so the codec carries no mutable
// state and resumes from a snapshot bit-for-bit with no serialization.
const randkStream uint64 = 0x72616e646b // "randk"

// randKCodec keeps ratio*n uniformly random delta entries — unbiased
// (in expectation the identity, scaled), unlike top-k.
type randKCodec struct{ ratio float64 }

func (c randKCodec) name() string { return fmt.Sprintf("randk:%g", c.ratio) }

func (c randKCodec) compressInto(rec, delta []float64, clientID, round int) (int64, error) {
	rng := prng.New(int64(prng.Mix(prng.Mix(randkStream+uint64(clientID)) + uint64(round))))
	s, err := quantize.RandK(delta, keepCount(c.ratio, len(delta)), rng)
	if err != nil {
		return 0, err
	}
	for i := range rec {
		rec[i] = 0
	}
	if err := s.DenseInto(rec); err != nil {
		return 0, err
	}
	return s.WireSize(), nil
}

// quantCodec uniformly quantizes the delta to bits per element.
type quantCodec struct{ bits int }

func (c quantCodec) name() string { return fmt.Sprintf("q%d", c.bits) }

func (c quantCodec) compressInto(rec, delta []float64, clientID, round int) (int64, error) {
	q, err := quantize.Quantize(delta, c.bits)
	if err != nil {
		return 0, err
	}
	copy(rec, q.Dequantize())
	return q.WireSize(), nil
}

// CompressedTransport implements core.Transport with a float32 downlink
// and a codec-compressed, delta-encoded uplink: the server reconstructs
// w_k = w_received + decode(encode(w_trained - w_received [+ residual])).
// Build one with ParseTransport ("topk:0.01+ef", "q8", "randk:0.05").
//
// It implements core.SizedTransport (exact per-transfer bytes, priced by
// the network model), core.MeteredTransport (cumulative counters), and —
// when error feedback is on — core.StatefulTransport, so residuals ride
// in run snapshots and resume is bit-for-bit.
//
// Memory: downlink references live only while a dispatch is in flight
// (evicted on Up), bounding that map by the runtime's concurrency.
// Error-feedback residuals are inherently per-client state and grow with
// the number of distinct participating clients.
type CompressedTransport struct {
	spec string
	cod  codec
	ef   bool

	stats Stats
	mu    sync.Mutex
	ref   map[int][]float64 // per-in-flight-dispatch downlink reference
	resid map[int][]float64 // per-client EF residual (nil unless ef)
}

// newCompressedTransport wires a codec into a transport. spec is the
// canonical form reproduced by String().
func newCompressedTransport(cod codec, ef bool) *CompressedTransport {
	spec := cod.name()
	if ef {
		spec += "+ef"
	}
	t := &CompressedTransport{
		spec: spec,
		cod:  cod,
		ef:   ef,
		ref:  make(map[int][]float64),
	}
	if ef {
		t.resid = make(map[int][]float64)
	}
	return t
}

// String returns the canonical transport spec (parseable by
// ParseTransport); run fingerprints embed it.
func (t *CompressedTransport) String() string { return t.spec }

// Stats exposes the traffic counters.
func (t *CompressedTransport) Stats() *Stats { return &t.stats }

// WireBytes implements core.MeteredTransport.
func (t *CompressedTransport) WireBytes() (down, up int64) {
	return t.stats.DownBytes(), t.stats.UpBytes()
}

// ErrorFeedback reports whether the uplink accumulates dropped mass.
func (t *CompressedTransport) ErrorFeedback() bool { return t.ef }

// Down implements core.Transport.
//
//fedtripvet:hotpath
func (t *CompressedTransport) Down(clientID, round int, global []float64) []float64 {
	out, _ := t.DownSized(clientID, round, global)
	return out
}

// DownSized implements core.SizedTransport: float32 downlink, recorded as
// the client's delta reference until its upload arrives.
//
//fedtripvet:hotpath
func (t *CompressedTransport) DownSized(clientID, round int, global []float64) ([]float64, int64) {
	received := make([]float64, len(global))
	for i, x := range global {
		received[i] = float64(float32(x))
	}
	t.mu.Lock()
	t.ref[clientID] = received
	t.mu.Unlock()
	wire := tensor.VectorWireSizeF32(len(global))
	t.stats.downBytes.Add(wire)
	t.stats.downMsgs.Add(1)
	return received, wire
}

// Up implements core.Transport.
//
//fedtripvet:hotpath
func (t *CompressedTransport) Up(clientID, round int, params []float64) []float64 {
	out, _ := t.UpSized(clientID, round, params)
	return out
}

// UpSized implements core.SizedTransport: delta against the recorded
// downlink (plus the EF residual), compressed through the codec. The
// downlink reference is evicted. Non-encodable deltas (non-finite) fall
// back to dense float32 and leave the residual untouched.
//
//fedtripvet:hotpath
func (t *CompressedTransport) UpSized(clientID, round int, params []float64) ([]float64, int64) {
	t.mu.Lock()
	ref := t.ref[clientID]
	delete(t.ref, clientID)
	var resid []float64
	if t.ef {
		resid = t.resid[clientID]
	}
	t.mu.Unlock()
	if len(resid) != len(params) {
		resid = nil
	}
	if ref == nil || len(ref) != len(params) {
		// No recorded downlink (shouldn't happen in a normal round loop):
		// no delta base, ship dense float32.
		return t.denseFallback(params)
	}
	delta := make([]float64, len(params))
	tensor.SubInto(delta, params, ref)
	if resid != nil {
		tensor.AddInto(delta, delta, resid)
	}
	rec := make([]float64, len(params))
	wire, err := t.cod.compressInto(rec, delta, clientID, round)
	if err != nil {
		return t.denseFallback(params)
	}
	if t.ef {
		if resid == nil {
			resid = make([]float64, len(params))
		}
		// The residual is exactly what the codec dropped this round.
		tensor.SubInto(resid, delta, rec)
		t.mu.Lock()
		t.resid[clientID] = resid
		t.mu.Unlock()
	}
	// Reconstruct in place over the reference; it leaves the transport as
	// the returned value (the runtime copies it immediately).
	tensor.AddInto(ref, ref, rec)
	t.stats.upBytes.Add(wire)
	t.stats.upMsgs.Add(1)
	return ref, wire
}

// denseFallback ships params at float32 width.
func (t *CompressedTransport) denseFallback(params []float64) ([]float64, int64) {
	wire := tensor.VectorWireSizeF32(len(params))
	t.stats.upBytes.Add(wire)
	t.stats.upMsgs.Add(1)
	out := make([]float64, len(params))
	for i, x := range params {
		out[i] = float64(float32(x))
	}
	return out, wire
}

// maxResidEntries caps RestoreState allocation against corrupt input.
const maxResidEntries = 1 << 24

// SnapshotState implements core.StatefulTransport: the EF residual map,
// sorted by client ID (float64 bit patterns, little endian). Downlink
// references are deliberately absent — snapshots are taken at quiesced
// round boundaries, where no dispatch is in flight.
func (t *CompressedTransport) SnapshotState(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make([]int, 0, len(t.resid))
	for id := range t.resid {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	if err := binary.Write(w, binary.LittleEndian, uint64(len(ids))); err != nil {
		return err
	}
	for _, id := range ids {
		v := t.resid[id]
		if err := binary.Write(w, binary.LittleEndian, uint64(id)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint64(len(v))); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

// RestoreState implements core.StatefulTransport, replacing any current
// residuals with the snapshot's.
func (t *CompressedTransport) RestoreState(r io.Reader) error {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return fmt.Errorf("comm: transport state: %w", err)
	}
	if n > maxResidEntries {
		return fmt.Errorf("comm: transport state: %d residuals exceeds cap", n)
	}
	resid := make(map[int][]float64, n)
	for i := uint64(0); i < n; i++ {
		var id, ln uint64
		if err := binary.Read(r, binary.LittleEndian, &id); err != nil {
			return fmt.Errorf("comm: transport state: %w", err)
		}
		if err := binary.Read(r, binary.LittleEndian, &ln); err != nil {
			return fmt.Errorf("comm: transport state: %w", err)
		}
		if ln > maxResidEntries {
			return fmt.Errorf("comm: transport state: residual length %d exceeds cap", ln)
		}
		v := make([]float64, ln)
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("comm: transport state: %w", err)
		}
		resid[int(id)] = v
	}
	t.mu.Lock()
	t.resid = resid
	t.ref = make(map[int][]float64)
	t.mu.Unlock()
	return nil
}
