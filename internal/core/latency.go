package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/prng"
)

// LatencyModel assigns each client dispatch a simulated wall-clock
// duration in seconds: the time between the server shipping the global
// model and the client's update arriving back. The asynchronous runtime
// advances its virtual clock with these samples; it never sleeps, so
// "seconds" are simulation units, deterministic for a fixed seed.
//
// Sample must draw all randomness from the supplied rng (the runtime's
// dedicated latency source) and must be safe to call from a single
// goroutine; the runtime samples at dispatch time on the event loop.
type LatencyModel interface {
	Sample(clientID int, rng *prng.Rand) float64
	String() string
}

// PerClientLatency is an optional LatencyModel capability for models whose
// systematic per-client component is fixed for the whole run (straggler
// tiers, constants). The population registry caches ClientBase per client
// at construction, so a dispatch in a 10k-client fleet costs one cached
// load plus the jitter draw instead of re-deriving the client's tier.
// Implementations must keep Sample(id, rng) ==
// JitterOn(ClientBase(id), rng) draw-for-draw, so the cache can never
// change a trajectory.
type PerClientLatency interface {
	LatencyModel
	// ClientBase returns the client's systematic duration in seconds.
	ClientBase(clientID int) float64
	// JitterOn turns a base duration into one sampled dispatch duration.
	JitterOn(base float64, rng *prng.Rand) float64
}

// ZeroLatency makes every dispatch complete instantly. It draws nothing
// from the rng, so it is the model to use for the sync-equivalence barrier
// mode.
type ZeroLatency struct{}

func (ZeroLatency) Sample(int, *prng.Rand) float64              { return 0 }
func (ZeroLatency) String() string                              { return "zero" }
func (ZeroLatency) ClientBase(int) float64                      { return 0 }
func (ZeroLatency) JitterOn(base float64, _ *prng.Rand) float64 { return base }

// ConstantLatency gives every client the same fixed duration.
type ConstantLatency struct{ D float64 }

func (l ConstantLatency) Sample(int, *prng.Rand) float64              { return l.D }
func (l ConstantLatency) String() string                              { return fmt.Sprintf("const:%g", l.D) }
func (l ConstantLatency) ClientBase(int) float64                      { return l.D }
func (l ConstantLatency) JitterOn(base float64, _ *prng.Rand) float64 { return base }

// UniformLatency draws uniformly from [Min, Max].
type UniformLatency struct{ Min, Max float64 }

func (l UniformLatency) Sample(_ int, rng *prng.Rand) float64 {
	return l.Min + rng.Float64()*(l.Max-l.Min)
}
func (l UniformLatency) String() string { return fmt.Sprintf("uniform:%g,%g", l.Min, l.Max) }

// ExponentialLatency draws from an exponential distribution with the
// given mean — the classic memoryless arrival model.
type ExponentialLatency struct{ Mean float64 }

func (l ExponentialLatency) Sample(_ int, rng *prng.Rand) float64 {
	return l.Mean * rng.ExpFloat64()
}
func (l ExponentialLatency) String() string { return fmt.Sprintf("exp:%g", l.Mean) }

// LognormalLatency draws exp(Mu + Sigma*N(0,1)) — the heavy-tailed
// device-speed distribution observed in production FL fleets, where a
// small fraction of devices is dramatically slower.
type LognormalLatency struct{ Mu, Sigma float64 }

func (l LognormalLatency) Sample(_ int, rng *prng.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}
func (l LognormalLatency) String() string { return fmt.Sprintf("lognormal:%g,%g", l.Mu, l.Sigma) }

// StragglerLatency models a fleet with systematic stragglers: every
// SlowEvery-th client (by ID) takes Slow seconds, the rest take Fast,
// each with ±10% uniform jitter. It is the scenario where synchronous
// rounds pay the straggler tax every round and buffered async does not.
type StragglerLatency struct {
	Fast, Slow float64
	SlowEvery  int
}

func (l StragglerLatency) Sample(clientID int, rng *prng.Rand) float64 {
	return l.JitterOn(l.ClientBase(clientID), rng)
}

// ClientBase implements PerClientLatency: the client's tier.
func (l StragglerLatency) ClientBase(clientID int) float64 {
	if l.SlowEvery > 0 && clientID%l.SlowEvery == 0 {
		return l.Slow
	}
	return l.Fast
}

// JitterOn implements PerClientLatency: ±10% uniform jitter on the tier.
func (l StragglerLatency) JitterOn(base float64, rng *prng.Rand) float64 {
	return base * (0.9 + 0.2*rng.Float64())
}
func (l StragglerLatency) String() string {
	return fmt.Sprintf("straggler:%g,%g,%d", l.Fast, l.Slow, l.SlowEvery)
}

// parseSpec splits a CLI "name" or "name:arg1,arg2,..." spec into its
// name and numeric args — the grammar shared by the latency, policy,
// and server-lr parsers. label names the spec family in errors.
func parseSpec(spec, label string) (name string, args []float64, err error) {
	name, rest, _ := strings.Cut(spec, ":")
	if rest != "" {
		for _, p := range strings.Split(rest, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return "", nil, fmt.Errorf("core: %s spec %q: %v", label, spec, err)
			}
			args = append(args, v)
		}
	}
	return name, args, nil
}

// ParseLatency parses a CLI latency spec of the form "name" or
// "name:arg1,arg2,...":
//
//	zero                 no latency (sync-equivalence mode)
//	const:D              every dispatch takes D seconds
//	uniform:MIN,MAX      uniform in [MIN, MAX]
//	exp:MEAN             exponential with the given mean
//	lognormal:MU,SIGMA   exp(MU + SIGMA*N(0,1))
//	straggler:F,S,E      every E-th client takes S, others F (±10% jitter)
func ParseLatency(spec string) (LatencyModel, error) {
	name, args, err := parseSpec(spec, "latency")
	if err != nil {
		return nil, err
	}
	want := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("core: latency %q wants %d args, got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "zero", "":
		return ZeroLatency{}, want(0)
	case "const":
		if err := want(1); err != nil {
			return nil, err
		}
		if args[0] < 0 {
			return nil, fmt.Errorf("core: negative latency %g", args[0])
		}
		return ConstantLatency{D: args[0]}, nil
	case "uniform":
		if err := want(2); err != nil {
			return nil, err
		}
		if args[0] < 0 || args[1] < args[0] {
			return nil, fmt.Errorf("core: uniform latency wants 0 <= min <= max, got [%g,%g]", args[0], args[1])
		}
		return UniformLatency{Min: args[0], Max: args[1]}, nil
	case "exp":
		if err := want(1); err != nil {
			return nil, err
		}
		if args[0] <= 0 {
			return nil, fmt.Errorf("core: exp latency mean %g must be positive", args[0])
		}
		return ExponentialLatency{Mean: args[0]}, nil
	case "lognormal":
		if err := want(2); err != nil {
			return nil, err
		}
		if args[1] < 0 {
			return nil, fmt.Errorf("core: lognormal sigma %g must be >= 0", args[1])
		}
		return LognormalLatency{Mu: args[0], Sigma: args[1]}, nil
	case "straggler":
		if err := want(3); err != nil {
			return nil, err
		}
		if args[0] <= 0 || args[1] < args[0] || args[2] < 1 {
			return nil, fmt.Errorf("core: straggler latency wants 0 < fast <= slow and every >= 1, got %v", args)
		}
		return StragglerLatency{Fast: args[0], Slow: args[1], SlowEvery: int(args[2])}, nil
	}
	return nil, fmt.Errorf("core: unknown latency model %q (zero|const|uniform|exp|lognormal|straggler)", name)
}
