package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// A Finding is a positioned diagnostic ready for printing or comparison:
// a Diagnostic after suppression filtering, with its position resolved.
type Finding struct {
	Pos      token.Position
	Category string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Category)
}

// Analyze runs the analyzers over one type-checked package and returns
// the surviving findings: test files are skipped entirely, diagnostics
// on lines guarded by a //fedtripvet:allow annotation are dropped, and
// malformed annotations (unknown verb, missing reason) are themselves
// reported. Findings come back sorted by position.
func Analyze(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	fset := pkg.Fset
	files := pkg.Syntax[:0:0]
	for _, f := range pkg.Syntax {
		if !isTestFile(fset, f) {
			files = append(files, f)
		}
	}
	// Index annotations once per file; the same maps serve suppression
	// for every analyzer.
	notes := make(map[string]*annotations, len(files))
	var findings []Finding
	for _, f := range files {
		a := annotate(fset, f)
		notes[fset.File(f.Pos()).Name()] = a
		for _, d := range a.malformed {
			findings = append(findings, Finding{
				Pos:      fset.Position(d.pos),
				Category: "fedtripvet",
				Message:  fmt.Sprintf("malformed %s%s annotation: a one-line reason is required", directivePrefix, d.verb),
			})
		}
	}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		pass.Report = func(d Diagnostic) {
			p := fset.Position(d.Pos)
			if n, ok := notes[p.Filename]; ok {
				if _, allowed := n.allow[p.Line]; allowed {
					return
				}
			}
			findings = append(findings, Finding{Pos: p, Category: a.Name, Message: d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.ImportPath, a.Name, err)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Category < b.Category
	})
	return findings, nil
}

// AnalyzePackages applies the analyzers to every loaded package.
func AnalyzePackages(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var all []Finding
	for _, p := range pkgs {
		fs, err := Analyze(p, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	return all, nil
}
