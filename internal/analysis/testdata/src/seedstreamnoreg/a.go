// A package that derives seed streams without declaring a seeds.go
// registry at all: every lookup is a diagnostic.
package seedstreamnoreg

import "repro/internal/prng"

func use(seed int64) int64 {
	return prng.StreamSeed(seed, "anything", 0) // want "no seeds.go stream registry"
}
