package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/stats"
)

// runHetero measures FedTrip against FedAvg/FedProx under *system*
// heterogeneity — the device dimension the paper's resource argument is
// about but its experiments hold fixed. Every variant runs the buffered
// async runtime with FLOP-coupled device profiles: a client's dispatch
// latency is its metered training FLOPs over its sampled device speed,
// so slow devices are slow because they compute, not because a latency
// distribution says so. The fleets:
//
//   - "uniform fleet": every device at speed 1 — the homogeneous
//     baseline the adaptive target calibrates against.
//   - "tiered devices": the 0.25x/1x/4x edge/mobile/server split, with
//     adaptive local steps (slow devices train proportionally fewer
//     mini-batch steps before their deadline-style upload).
//   - "lognormal + churn": a heavy-tailed speed spread under on/off
//     Markov availability churn, with the MaxStalenessPolicy admission
//     cutoff dropping rejoin updates staler than 8 aggregations.
//
// Columns report resources to the adaptive target (aggregations,
// training GFLOPs, simulated wall-clock) plus the slowdown each fleet
// inflicts relative to the same method's uniform-fleet time. Budgets are
// update-equalized like the tta table: every variant trains the same
// total number of client updates.
func runHetero(p Profile, logf Logf) ([]*Table, error) {
	// Methods must be client-side only: churn needs the buffered async
	// runtime, which rejects server-hook methods.
	methods := []string{"fedtrip", "fedavg", "fedprox"}
	type variant struct {
		label    string
		devices  string
		churn    bool
		policy   string
		adaptive bool
	}
	variants := []variant{
		{"uniform fleet", "uniform:1,1", false, "fedbuff", false},
		{"tiered devices", "tiered", false, "fedbuff", true},
		{"lognormal + churn", "lognormal:0,0.6", true, "fedbuff+maxstale:8", true},
	}
	perRound := p.PerRound
	buffer := p.Buffer
	if buffer == 0 {
		buffer = max(1, perRound/2)
	}
	baseCase := func(method string, v variant, churnSpec string) Case {
		c := Case{
			Kind:          data.KindMNIST,
			Arch:          nn.ArchMLP,
			Scheme:        partition.Dirichlet(0.5),
			Algo:          method,
			Params:        DefaultParams(method, nn.ArchMLP, data.KindMNIST),
			Runtime:       core.RuntimeAsync,
			Policy:        v.policy,
			Buffer:        buffer,
			Devices:       v.devices,
			AdaptiveSteps: v.adaptive,
			// Update-budget equalization: Rounds counts aggregations and
			// each merges `buffer` updates where a sync round merges K.
			Rounds: (p.Rounds*perRound + buffer - 1) / buffer,
		}
		if v.churn {
			c.Churn = churnSpec
		}
		return c
	}
	fedavgRef, err := p.RunTrials(baseCase("fedavg", variants[0], ""), logf)
	if err != nil {
		return nil, err
	}
	target := adaptiveTarget(fedavgRef)
	// The availability timescales must live on the flop-derived clock,
	// whose unit depends on the profile's model and data sizes — seconds
	// of Markov churn against a 50ms horizon would never fire. Calibrate
	// from the uniform-fleet reference: mean up-time of a third of the
	// horizon and down-time of a fifteenth gives every client a couple
	// of outages per run and ~17% of the fleet offline at any moment.
	var horizon []float64
	for _, r := range fedavgRef {
		horizon = append(horizon, r.SimTimeByRound[len(r.SimTimeByRound)-1])
	}
	h := stats.Mean(horizon)
	churnSpec := fmt.Sprintf("markov:%.6g,%.6g", h/3, h/15)

	t := &Table{
		ID:    "hetero",
		Title: "Device heterogeneity and churn (MLP/MNIST, Dir-0.5, async FedBuff, FLOP-coupled latency)",
		Headers: []string{
			"Method", "Fleet", "Aggs to target", "GFLOPs", "Sim time (s)", "vs uniform",
		},
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("buffer %d, update-budget-equalized; adaptive target %.4f (0.97x FedAvg uniform-fleet final)", buffer, target),
		"dispatch latency = metered FLOPs / (1 GFLOP/s * device speed); tiered = 0.25x/1x/4x edge/mobile/server",
		fmt.Sprintf("churn = %s (~17%% offline, horizon-calibrated) with a fedbuff+maxstale:8 admission cutoff; adaptive local steps on the heterogeneous fleets", churnSpec),
		"vs uniform = variant sim-time / same method's uniform-fleet sim-time (>marks: target not reached, full-run resources shown)",
	)
	for _, method := range methods {
		var uniformTime float64
		uniformReached := false
		for i, v := range variants {
			results, err := p.RunTrials(baseCase(method, v, churnSpec), logf)
			if err != nil {
				return nil, err
			}
			var aggs, gflops, simTime []float64
			reached := true
			for _, r := range results {
				rt, ok := roundsToTargetClamped(r, target)
				if !ok {
					reached = false
				}
				aggs = append(aggs, float64(rt))
				gflops = append(gflops, r.GFLOPsByRound[rt-1])
				simTime = append(simTime, r.SimTimeByRound[rt-1])
			}
			meanTime := stats.Mean(simTime)
			if i == 0 {
				uniformTime = meanTime
				uniformReached = reached
			}
			mark := ""
			if !reached {
				mark = ">"
			}
			slowdown := "-"
			if i > 0 && uniformTime > 0 && reached && uniformReached {
				slowdown = fmt.Sprintf("%.1fx", meanTime/uniformTime)
			}
			// Flop-derived times on small models are fractions of a
			// second; %g keeps them legible at any scale.
			t.AddRow(method, v.label,
				mark+fmt.Sprintf("%.0f", stats.Mean(aggs)),
				mark+fmt.Sprintf("%.2f", stats.Mean(gflops)),
				mark+fmt.Sprintf("%.3g", meanTime),
				slowdown)
		}
	}
	return []*Table{t}, nil
}
