package quantize

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func TestQuantizeRoundTripError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := make([]float64, 1000)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	for _, bits := range []int{1, 2, 4, 8, 12, 16} {
		q, err := Quantize(v, bits)
		if err != nil {
			t.Fatal(err)
		}
		got := q.Dequantize()
		maxErr := q.MaxError()
		for i := range v {
			if e := math.Abs(got[i] - v[i]); e > maxErr+1e-12 {
				t.Fatalf("bits=%d elem %d err %v > bound %v", bits, i, e, maxErr)
			}
		}
	}
}

func TestQuantizeHigherBitsSmallerError(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := make([]float64, 500)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	var prev float64 = math.Inf(1)
	for _, bits := range []int{2, 4, 8, 12} {
		q, _ := Quantize(v, bits)
		if e := q.MaxError(); e >= prev {
			t.Fatalf("bits=%d error %v not smaller than %v", bits, e, prev)
		} else {
			prev = e
		}
	}
}

func TestQuantizeEdgeCases(t *testing.T) {
	// Constant vector reconstructs exactly.
	q, err := Quantize([]float64{3, 3, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range q.Dequantize() {
		if x != 3 {
			t.Fatalf("constant vector broke: %v", x)
		}
	}
	// Empty vector.
	q0, err := Quantize(nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(q0.Dequantize()) != 0 {
		t.Fatal("empty dequantize")
	}
	// Errors.
	if _, err := Quantize([]float64{1}, 0); err == nil {
		t.Fatal("0 bits accepted")
	}
	if _, err := Quantize([]float64{1}, 17); err == nil {
		t.Fatal("17 bits accepted")
	}
	if _, err := Quantize([]float64{math.NaN()}, 8); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := Quantize([]float64{math.Inf(1)}, 8); err == nil {
		t.Fatal("Inf accepted")
	}
}

func TestQuantizeWireSize(t *testing.T) {
	v := make([]float64, 1000)
	q8, _ := Quantize(v, 8)
	q4, _ := Quantize(v, 4)
	if q8.WireSize() != 25+1000 {
		t.Fatalf("8-bit wire size %d", q8.WireSize())
	}
	if q4.WireSize() != 25+500 {
		t.Fatalf("4-bit wire size %d", q4.WireSize())
	}
}

// Property: quantization error bound holds for arbitrary vectors and bit
// widths.
func TestQuantizeBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		bits := 1 + rng.Intn(12)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(6)-3))
		}
		q, err := Quantize(v, bits)
		if err != nil {
			return false
		}
		got := q.Dequantize()
		bound := q.MaxError() + 1e-9*(math.Abs(q.Max)+math.Abs(q.Min))
		for i := range v {
			if math.Abs(got[i]-v[i]) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKSelectsLargest(t *testing.T) {
	v := []float64{0.1, -5, 2, 0, 3, -0.2}
	s, err := TopK(v, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Indices) != 3 {
		t.Fatalf("kept %d", len(s.Indices))
	}
	kept := map[int32]bool{}
	for _, idx := range s.Indices {
		kept[idx] = true
	}
	if !kept[1] || !kept[4] || !kept[2] {
		t.Fatalf("wrong selection: %v", s.Indices)
	}
	dst := make([]float64, len(v))
	if err := s.DenseInto(dst); err != nil {
		t.Fatal(err)
	}
	if dst[1] != -5 || dst[4] != 3 || dst[2] != 2 || dst[0] != 0 {
		t.Fatalf("dense: %v", dst)
	}
}

func TestTopKEdgeCases(t *testing.T) {
	if _, err := TopK([]float64{1}, 2); err == nil {
		t.Fatal("k > n accepted")
	}
	if _, err := TopK([]float64{1}, -1); err == nil {
		t.Fatal("negative k accepted")
	}
	s, err := TopK([]float64{1, 2}, 0)
	if err != nil || len(s.Indices) != 0 {
		t.Fatal("k=0")
	}
	// Ties at the threshold must still return exactly k entries.
	s2, err := TopK([]float64{1, 1, 1, 1}, 2)
	if err != nil || len(s2.Indices) != 2 {
		t.Fatalf("tie handling: %v", s2)
	}
	if err := s2.DenseInto(make([]float64, 3)); err == nil {
		t.Fatal("bad dense target accepted")
	}
}

// Property: top-k keeps exactly k entries and they are the k largest by
// magnitude.
func TestTopKProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		k := rng.Intn(n + 1)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		s, err := TopK(v, k)
		if err != nil || len(s.Indices) != k {
			return false
		}
		// The smallest kept magnitude must be >= the largest dropped one
		// (up to ties).
		mags := make([]float64, n)
		for i, x := range v {
			mags[i] = math.Abs(x)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(mags)))
		if k == 0 || k == n {
			return true
		}
		minKept := math.Inf(1)
		for _, idx := range s.Indices {
			if m := math.Abs(v[idx]); m < minKept {
				minKept = m
			}
		}
		return minKept >= mags[k]-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseWireSize(t *testing.T) {
	s, _ := TopK(make([]float64, 100), 0)
	if s.WireSize() != 8 {
		t.Fatalf("empty wire %d", s.WireSize())
	}
}

func TestRandK(t *testing.T) {
	v := make([]float64, 200)
	for i := range v {
		v[i] = float64(i) * 0.5
	}
	s, err := RandK(v, 20, prng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Indices) != 20 || len(s.Values) != 20 {
		t.Fatalf("rand-k kept %d/%d entries, want 20", len(s.Indices), len(s.Values))
	}
	seen := map[int32]bool{}
	for i, idx := range s.Indices {
		if i > 0 && idx <= s.Indices[i-1] {
			t.Fatalf("indices not strictly ascending at %d: %v", i, s.Indices)
		}
		if seen[idx] {
			t.Fatalf("index %d sampled twice", idx)
		}
		seen[idx] = true
		if float64(s.Values[i]) != float64(float32(v[idx])) {
			t.Fatalf("value mismatch at index %d", idx)
		}
	}
	if s.WireSize() != 8+20*8 {
		t.Fatalf("wire size %d", s.WireSize())
	}
	// Same rng seed reproduces the draw; a different seed changes it.
	s2, _ := RandK(v, 20, prng.New(7))
	for i := range s.Indices {
		if s.Indices[i] != s2.Indices[i] {
			t.Fatal("same seed drew different support")
		}
	}
	// Degenerate and error cases.
	if s, _ := RandK(v, 0, prng.New(1)); len(s.Indices) != 0 {
		t.Fatal("k=0 must keep nothing")
	}
	if s, _ := RandK(v, len(v), prng.New(1)); len(s.Indices) != len(v) {
		t.Fatal("k=n must keep everything")
	}
	if _, err := RandK(v, -1, prng.New(1)); err == nil {
		t.Fatal("negative k accepted")
	}
	if _, err := RandK(v, len(v)+1, prng.New(1)); err == nil {
		t.Fatal("k>n accepted")
	}
}
