// Scalability: low client participation (the paper's §V.D).
//
// With 4 of 50 clients per round each client participates rarely, so
// FedTrip's historical models grow stale and its staleness-scaled xi
// matters. This example compares FedTrip and FedAvg at 4-of-10 vs 4-of-50
// participation and prints rounds-to-target for each, plus the xi values a
// FedTrip client actually sees.
//
//	go run ./examples/scalability
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/algos"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/stats"
)

func main() {
	const perClient = 50
	for _, clients := range []int{10, 50} {
		train, test, err := data.Generate(data.Spec{
			Kind: data.KindMNIST, Train: clients * perClient, Test: 300, Seed: 31,
		})
		if err != nil {
			log.Fatal(err)
		}
		parts, err := partition.Partition(partition.Dirichlet(0.5), train.Y,
			train.Classes, clients, perClient, rand.New(rand.NewSource(32)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== 4-of-%d participation (rate %.0f%%) ===\n", clients, 400.0/float64(clients))

		var fedavgFinal float64
		for _, method := range []string{"fedavg", "fedtrip"} {
			algo, err := algos.New(method, algos.Params{Mu: 1.0})
			if err != nil {
				log.Fatal(err)
			}
			res, err := core.Run(core.Config{
				Model: nn.ModelSpec{
					Arch: nn.ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10,
				},
				Train: train, Test: test, Parts: parts,
				Rounds: 25, ClientsPerRound: 4,
				BatchSize: 10, LocalEpochs: 1,
				LR: 0.01, Momentum: 0.9,
				Algo: algo, Seed: 33,
			})
			if err != nil {
				log.Fatal(err)
			}
			if method == "fedavg" {
				fedavgFinal = res.FinalAccuracy
				fmt.Printf("  %-8s final %.4f\n", method, res.FinalAccuracy)
			} else {
				target := 0.97 * fedavgFinal
				rt := stats.RoundsToTarget(res.Accuracy, target)
				rtStr := fmt.Sprintf("%d", rt)
				if rt < 0 {
					rtStr = ">25"
				}
				fmt.Printf("  %-8s final %.4f, rounds to FedAvg bar (%.4f): %s\n",
					method, res.FinalAccuracy, target, rtStr)
			}
		}

		// Show the xi schedule a client experiences at this participation
		// rate: xi = 1/gap, so rare participation -> small xi, matching
		// the paper's E[xi] = p*ln(p)/(p-1) analysis.
		f := core.NewFedTrip(1.0)
		rng := rand.New(rand.NewSource(34))
		last := 0
		var xis []float64
		for round := 1; round <= 200; round++ {
			if rng.Float64() < 4.0/float64(clients) { // participates
				if xi := f.Xi(round, last); last > 0 {
					xis = append(xis, xi)
				}
				last = round
			}
		}
		fmt.Printf("  simulated E[xi] at this rate: %.3f over %d participations\n\n",
			stats.Mean(xis), len(xis))
	}
}
