package core

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/prng"
)

// pinAlgo is plain FedAvg with a name: its per-round FLOPs depend only on
// the client's data size, never on participation history, which the
// bit-for-bit device pin relies on (identical work => identical
// flop-derived durations => identical arrival order).
type pinAlgo struct{ Base }

func (pinAlgo) Name() string { return "pin-fedavg" }

func deviceSpec(t *testing.T, algo Algorithm) RunSpec {
	t.Helper()
	sp := RunSpec{Config: testConfig(t, algo), Runtime: RuntimeAsync}
	sp.Rounds = 10
	sp.Concurrency = 4
	sp.BufferSize = 2
	return sp
}

func TestParseDeviceDist(t *testing.T) {
	good := map[string]string{
		"none":                   "",
		"":                       "",
		"uniform:0.5,2":          "uniform:0.5,2",
		"lognormal:0,0.6":        "lognormal:0,0.6",
		"tiered":                 "tiered:0.25,0.3,1,0.6,4,0.1",
		"tiered:0.5,0.5,2,0.5":   "tiered:0.5,0.5,2,0.5",
		"lognormal:-0.2,0":       "lognormal:-0.2,0",
		"uniform:1,1":            "uniform:1,1",
		"tiered:1,1":             "tiered:1,1",
		"lognormal:0.25,0.00125": "lognormal:0.25,0.00125",
	}
	for spec, want := range good {
		d, err := ParseDeviceDist(spec)
		if err != nil {
			t.Fatalf("ParseDeviceDist(%q): %v", spec, err)
		}
		if want == "" {
			if d != nil {
				t.Fatalf("ParseDeviceDist(%q) = %v, want nil", spec, d)
			}
			continue
		}
		if d.String() != want {
			t.Fatalf("ParseDeviceDist(%q).String() = %q want %q", spec, d.String(), want)
		}
	}
	for _, spec := range []string{
		"uniform", "uniform:1", "uniform:0,1", "uniform:2,1", "uniform:1,2,3",
		"lognormal:0", "lognormal:0,-1", "tiered:1", "tiered:1,0", "tiered:-1,0.5",
		"gauss:1,2", "uniform:a,b", "none:1",
	} {
		if _, err := ParseDeviceDist(spec); err == nil {
			t.Errorf("ParseDeviceDist(%q) accepted", spec)
		}
	}
}

func TestDeviceDistributionsSampleInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, d := range []DeviceDistribution{
		UniformDevices{Min: 0.5, Max: 2},
		LognormalDevices{Mu: 0, Sigma: 0.8},
		DefaultTiers(),
	} {
		speeds := sampleDeviceSpeeds(500, d, 11)
		seen := map[float64]bool{}
		for _, s := range speeds {
			if s < minDeviceSpeed || s > maxDeviceSpeed {
				t.Fatalf("%s sampled speed %g outside clamp range", d, s)
			}
			seen[s] = true
		}
		if len(seen) < 2 {
			t.Fatalf("%s produced a degenerate fleet", d)
		}
		_ = rng
	}
	// Tiered sampling must only emit tier speeds.
	tiers := DefaultTiers()
	for _, s := range sampleDeviceSpeeds(200, tiers, 5) {
		if s != 0.25 && s != 1 && s != 4 {
			t.Fatalf("tiered fleet sampled off-tier speed %g", s)
		}
	}
	// Sampling is deterministic per seed.
	a := sampleDeviceSpeeds(100, LognormalDevices{Sigma: 1}, 7)
	b := sampleDeviceSpeeds(100, LognormalDevices{Sigma: 1}, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("device sampling not deterministic per seed")
		}
	}
}

func TestParseChurn(t *testing.T) {
	if m, err := ParseChurn("none"); err != nil || m != nil {
		t.Fatalf("ParseChurn(none) = %v, %v", m, err)
	}
	if m, err := ParseChurn(""); err != nil || m != nil {
		t.Fatalf("ParseChurn(\"\") = %v, %v", m, err)
	}
	m, err := ParseChurn("markov:90,10")
	if err != nil || m.MeanUp != 90 || m.MeanDown != 10 || len(m.Drops) != 0 {
		t.Fatalf("ParseChurn(markov:90,10) = %+v, %v", m, err)
	}
	m, err = ParseChurn("markov:90,10+drop:60,0.3,30+drop:100,0.5,0")
	if err != nil || len(m.Drops) != 2 || m.Drops[1].Duration != 0 {
		t.Fatalf("combined churn spec = %+v, %v", m, err)
	}
	if m.String() != "markov:90,10+drop:60,0.3,30+drop:100,0.5,0" {
		t.Fatalf("String round-trip %q", m.String())
	}
	if m, err := ParseChurn("drop:5,1,0"); err != nil || len(m.Drops) != 1 {
		t.Fatalf("drop-only churn = %+v, %v", m, err)
	}
	for _, spec := range []string{
		"markov", "markov:1", "markov:0,1", "markov:1,0", "markov:1,2+markov:3,4",
		"drop:1,0,5", "drop:1,1.5,5", "drop:-1,0.5,5", "drop:1,0.5",
		"bogus:1", "markov:a,b",
	} {
		if _, err := ParseChurn(spec); err == nil {
			t.Errorf("ParseChurn(%q) accepted", spec)
		}
	}
}

// The acceptance pin: a zero-heterogeneity device fleet (every client at
// speed 1, no churn, adaptive steps enabled but never binding) must
// reproduce the plain async runtime's trajectory bit-for-bit. The
// reference is a constant-latency run — both fleets have
// dispatch-order-invariant durations, so selection, arrival order,
// staleness, and therefore every merged number coincide; only the
// simulated clock's unit differs.
func TestDeviceUniformFleetMatchesConstLatency(t *testing.T) {
	ref := deviceSpec(t, pinAlgo{})
	ref.Latency = ConstantLatency{D: 3}
	refRes, err := Start(ref)
	if err != nil {
		t.Fatal(err)
	}
	dev := deviceSpec(t, pinAlgo{})
	dev.Devices = UniformDevices{Min: 1, Max: 1}
	dev.AdaptiveLocalSteps = true
	devRes, err := Start(dev)
	if err != nil {
		t.Fatal(err)
	}
	if devRes.Rounds != refRes.Rounds {
		t.Fatalf("rounds %d vs %d", devRes.Rounds, refRes.Rounds)
	}
	for i := range refRes.Accuracy {
		if devRes.Accuracy[i] != refRes.Accuracy[i] {
			t.Fatalf("agg %d accuracy %v vs %v", i+1, devRes.Accuracy[i], refRes.Accuracy[i])
		}
		if devRes.TrainLoss[i] != refRes.TrainLoss[i] {
			t.Fatalf("agg %d loss %v vs %v", i+1, devRes.TrainLoss[i], refRes.TrainLoss[i])
		}
		if devRes.GFLOPsByRound[i] != refRes.GFLOPsByRound[i] {
			t.Fatalf("agg %d gflops %v vs %v", i+1, devRes.GFLOPsByRound[i], refRes.GFLOPsByRound[i])
		}
		if devRes.CommBytesByRound[i] != refRes.CommBytesByRound[i] {
			t.Fatalf("agg %d comm %v vs %v", i+1, devRes.CommBytesByRound[i], refRes.CommBytesByRound[i])
		}
		if devRes.MeanStalenessByRound[i] != refRes.MeanStalenessByRound[i] {
			t.Fatalf("agg %d staleness %v vs %v", i+1, devRes.MeanStalenessByRound[i], refRes.MeanStalenessByRound[i])
		}
	}
	if devRes.BestAccuracy != refRes.BestAccuracy || devRes.FinalAccuracy != refRes.FinalAccuracy {
		t.Fatal("summary metrics diverged")
	}
	if devRes.DroppedUpdates != 0 {
		t.Fatalf("no churn but %d dropped updates", devRes.DroppedUpdates)
	}
	// The device clock must be flop-derived and positive.
	if devRes.SimTimeByRound[len(devRes.SimTimeByRound)-1] <= 0 {
		t.Fatal("device fleet produced no simulated time")
	}
}

// A uniformly 4x-slower fleet does identical work at a quarter of the
// throughput: the simulated clock must stretch by exactly 4x.
func TestDeviceSpeedScalesSimTime(t *testing.T) {
	run := func(speed float64) *Result {
		sp := deviceSpec(t, pinAlgo{})
		sp.Devices = UniformDevices{Min: speed, Max: speed}
		res, err := Start(sp)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast, slow := run(1), run(0.25)
	for i := range fast.SimTimeByRound {
		ratio := slow.SimTimeByRound[i] / fast.SimTimeByRound[i]
		if math.Abs(ratio-4) > 1e-9 {
			t.Fatalf("agg %d sim-time ratio %v want 4", i+1, ratio)
		}
		if slow.Accuracy[i] != fast.Accuracy[i] {
			t.Fatalf("agg %d trajectory diverged under a pure speed rescale", i+1)
		}
	}
}

// stepsProbe records the device scalars each participation observed.
type stepsProbe struct {
	Base
	mu    sync.Mutex
	speed []float64
	steps []float64
}

func (*stepsProbe) Name() string { return "steps-probe" }
func (p *stepsProbe) BeginRound(c *Client, round int, global []float64) {
	p.mu.Lock()
	p.speed = append(p.speed, c.Scalar(ScalarDeviceSpeed))
	p.steps = append(p.steps, c.Scalar(ScalarDeviceSteps))
	p.mu.Unlock()
}

// Adaptive local steps: a quarter-speed fleet runs a quarter of the
// round's mini-batch steps (clamped to at least one), burns
// proportionally fewer FLOPs, and surfaces both device scalars to the
// algorithm hook surface.
func TestAdaptiveLocalStepsShrinkWork(t *testing.T) {
	run := func(adaptive bool, algo Algorithm) *Result {
		sp := deviceSpec(t, algo)
		sp.Devices = UniformDevices{Min: 0.25, Max: 0.25}
		sp.AdaptiveLocalSteps = adaptive
		res, err := Start(sp)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	probe := &stepsProbe{}
	full := run(false, pinAlgo{})
	adaptive := run(true, probe)
	fullG := full.GFLOPsByRound[len(full.GFLOPsByRound)-1]
	adG := adaptive.GFLOPsByRound[len(adaptive.GFLOPsByRound)-1]
	// testConfig: 80 samples, batch 20, 1 epoch = 4 full steps; 0.25x
	// speed budgets exactly 1 step, so the adaptive run must cost ~1/4.
	if adG >= fullG/2 {
		t.Fatalf("adaptive steps did not shrink compute: %v vs %v GFLOPs", adG, fullG)
	}
	if len(probe.speed) == 0 {
		t.Fatal("probe never ran")
	}
	for i := range probe.speed {
		if probe.speed[i] != 0.25 {
			t.Fatalf("device.speed scalar %v want 0.25", probe.speed[i])
		}
		if probe.steps[i] != 1 {
			t.Fatalf("device.steps scalar %v want 1", probe.steps[i])
		}
	}
	// And the deadline effect: fewer steps at the same speed make rounds
	// proportionally faster in simulated time.
	if at, ft := adaptive.SimTimeByRound[len(adaptive.SimTimeByRound)-1], full.SimTimeByRound[len(full.SimTimeByRound)-1]; at >= ft {
		t.Fatalf("adaptive run simulated time %v not below full run %v", at, ft)
	}
}

func TestAdaptiveStepsBudget(t *testing.T) {
	cases := []struct {
		speed          float64
		samples, batch int
		epochs         int
		want           int
	}{
		{1, 80, 20, 1, 4},
		{0.25, 80, 20, 1, 1},
		{0.5, 80, 20, 2, 4},
		{0.01, 80, 20, 1, 1}, // never below one step
		{8, 80, 20, 1, 4},    // never above the full budget
		{0.5, 90, 20, 1, 3},  // ceil(90/20)=5 full steps, round(2.5)=2... see below
	}
	for _, c := range cases[:5] {
		if got := adaptiveSteps(c.speed, c.samples, c.batch, c.epochs); got != c.want {
			t.Fatalf("adaptiveSteps(%v,%d,%d,%d) = %d want %d", c.speed, c.samples, c.batch, c.epochs, got, c.want)
		}
	}
	if got := adaptiveSteps(0.5, 90, 20, 1); got != 2 && got != 3 {
		t.Fatalf("adaptiveSteps rounding = %d", got)
	}
}

// All clients permanently dropped mid-run: the event loop must terminate
// with an error instead of deadlocking — there is no arrival and no
// rejoin left to advance the clock.
func TestChurnAllClientsDroppedTerminates(t *testing.T) {
	sp := deviceSpec(t, NewFedTrip(0.4))
	sp.Rounds = 100
	sp.Latency = ConstantLatency{D: 1}
	sp.Churn = &ChurnModel{Drops: []MassDrop{{At: 2.5, Fraction: 1, Duration: 0}}}
	res, err := Start(sp)
	if err == nil {
		t.Fatal("fully dead fleet did not stall the runtime")
	}
	if !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("unexpected stall error: %v", err)
	}
	if res == nil || res.Rounds >= 100 {
		t.Fatalf("expected a partial result, got %+v", res)
	}
	if res.DroppedUpdates == 0 {
		t.Fatal("in-flight updates of permanently dropped clients must be counted as lost")
	}

	// The degenerate corner: everyone dead before the first dispatch.
	sp2 := deviceSpec(t, NewFedTrip(0.4))
	sp2.Churn = &ChurnModel{Drops: []MassDrop{{At: 0, Fraction: 1, Duration: 0}}}
	if _, err := Start(sp2); err == nil {
		t.Fatal("fleet dead at t=0 did not stall the runtime")
	}
}

// A client that drops mid-flight rejoins with its update deferred past
// the outage — stale enough to cross a MaxStalenessPolicy cutoff, whose
// weight-0 admission must not disturb the merge arithmetic (the pooled
// buffer is recycled by the same unconditional path as any admitted
// update).
func TestChurnRejoinStaleUpdatePastCutoff(t *testing.T) {
	const cutoff = 3
	build := func() RunSpec {
		sp := deviceSpec(t, NewFedTrip(0.4))
		sp.Rounds = 25
		sp.Concurrency = 3
		sp.BufferSize = 2
		sp.Latency = ConstantLatency{D: 1}
		// Short lives, long outages: in-flight drops defer arrivals far
		// past the cutoff while the rest of the fleet keeps merging.
		sp.Churn = &ChurnModel{MeanUp: 4, MeanDown: 40}
		sp.Policy = WithMaxStaleness(&FedBuffPolicy{}, cutoff)
		return sp
	}
	sp := build()
	maxStale := 0
	var mu sync.Mutex
	sp.OnUpdates = func(round int, global []float64, updates []Update) {
		mu.Lock()
		for _, u := range updates {
			if u.Staleness > maxStale {
				maxStale = u.Staleness
			}
		}
		mu.Unlock()
	}
	res, err := Start(sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 25 {
		t.Fatalf("rounds %d", res.Rounds)
	}
	if maxStale <= cutoff {
		t.Fatalf("churn produced max staleness %d; the cutoff (%d) was never exercised", maxStale, cutoff)
	}
	// Weight-0 admissions must leave the model finite and the run
	// replayable (the recycled-buffer pin: a corrupted pool would show
	// up as a diverging replay).
	res2, err := Start(build())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Accuracy {
		if res.Accuracy[i] != res2.Accuracy[i] {
			t.Fatalf("churn run not replayable at agg %d", i+1)
		}
	}
}

// Same seed => same dropout schedule and same trajectory; a different
// seed must actually move the churn process.
func TestChurnDeterminismAcrossSeedsAndShards(t *testing.T) {
	build := func(seed int64, shards int) RunSpec {
		sp := deviceSpec(t, NewFedTrip(0.4))
		sp.Rounds = 15
		sp.Seed = seed
		sp.Shards = shards
		sp.Devices = LognormalDevices{Mu: 0, Sigma: 0.6}
		sp.AdaptiveLocalSteps = true
		sp.Churn = &ChurnModel{MeanUp: 10, MeanDown: 5, Drops: []MassDrop{{At: 8, Fraction: 0.3, Duration: 6}}}
		return sp
	}
	r1, err := Start(build(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Start(build(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if r1.DroppedUpdates != r2.DroppedUpdates {
		t.Fatalf("dropped updates %d vs %d on the same seed", r1.DroppedUpdates, r2.DroppedUpdates)
	}
	for i := range r1.Accuracy {
		if r1.Accuracy[i] != r2.Accuracy[i] || r1.SimTimeByRound[i] != r2.SimTimeByRound[i] {
			t.Fatalf("churn run not deterministic at agg %d", i+1)
		}
	}
	// Shard-count independence: the real-parallelism knob must not touch
	// the virtual schedule or the trajectory.
	r3, err := Start(build(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Start(build(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r3.Accuracy {
		if r3.Accuracy[i] != r4.Accuracy[i] || r3.SimTimeByRound[i] != r4.SimTimeByRound[i] {
			t.Fatalf("churn trajectory depends on shard count at agg %d", i+1)
		}
	}
	// A different seed has to produce a different availability history.
	r5, err := Start(build(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range r1.SimTimeByRound {
		if i >= len(r5.SimTimeByRound) || r1.SimTimeByRound[i] != r5.SimTimeByRound[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds replayed an identical virtual schedule")
	}
}

func TestMaxStalenessPolicy(t *testing.T) {
	p := WithMaxStaleness(&FedAvgPolicy{K: 2}, 3)
	if p.Name() != "fedavg+maxstale" {
		t.Fatalf("name %q", p.Name())
	}
	if w := p.Weight(Update{NumSamples: 10, Staleness: 3}); w != 10 {
		t.Fatalf("weight at cutoff %v want 10", w)
	}
	if w := p.Weight(Update{NumSamples: 10, Staleness: 4}); w != 0 {
		t.Fatalf("weight past cutoff %v want 0", w)
	}
	if !p.ReadyToMerge(2) || p.ReadyToMerge(1) {
		t.Fatal("ReadyToMerge must delegate to the inner policy")
	}

	// Parse forms.
	pol, err := ParsePolicy("maxstale:5")
	if err != nil {
		t.Fatal(err)
	}
	ms, ok := pol.(*MaxStalenessPolicy)
	if !ok || ms.MaxStale != 5 || ms.AggregationPolicy != nil {
		t.Fatalf("ParsePolicy(maxstale:5) = %#v", pol)
	}
	pol, err = ParsePolicy("fedbuff:0.5+maxstale:8")
	if err != nil {
		t.Fatal(err)
	}
	ms, ok = pol.(*MaxStalenessPolicy)
	if !ok || ms.MaxStale != 8 {
		t.Fatalf("composed parse = %#v", pol)
	}
	if _, ok := ms.AggregationPolicy.(*FedBuffPolicy); !ok {
		t.Fatalf("composed inner = %#v", ms.AggregationPolicy)
	}
	for _, bad := range []string{"maxstale", "maxstale:-1", "maxstale:1.5", "maxstale:a", "fedbuff+maxstale:-2", "nope+maxstale:1"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q) accepted", bad)
		}
	}

	// Validate fills a nil inner with the runtime default and clones the
	// caller's instance.
	sp := deviceSpec(t, NewFedTrip(0.4))
	caller := &MaxStalenessPolicy{MaxStale: 4}
	sp.Policy = caller
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	resolved, ok := sp.Policy.(*MaxStalenessPolicy)
	if !ok {
		t.Fatalf("resolved policy %#v", sp.Policy)
	}
	if _, ok := resolved.AggregationPolicy.(*FedBuffPolicy); !ok {
		t.Fatalf("nil inner not defaulted: %#v", resolved.AggregationPolicy)
	}
	if caller.AggregationPolicy != nil {
		t.Fatal("Validate mutated the caller's policy instance")
	}
	if resolved.Name() != "fedbuff+maxstale" {
		t.Fatalf("resolved name %q", resolved.Name())
	}
}

func TestRunSpecRejectsDeviceMisuse(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*RunSpec)
	}{
		{"devices on sync", func(sp *RunSpec) { sp.Runtime = RuntimeSync; sp.Devices = UniformDevices{1, 1} }},
		{"devices with latency model", func(sp *RunSpec) {
			sp.Devices = UniformDevices{1, 1}
			sp.Latency = StragglerLatency{Fast: 1, Slow: 10, SlowEvery: 3}
		}},
		{"negative flop rate", func(sp *RunSpec) { sp.Devices = UniformDevices{1, 1}; sp.FlopRate = -1 }},
		{"adaptive without devices", func(sp *RunSpec) { sp.AdaptiveLocalSteps = true }},
		{"flop rate without devices", func(sp *RunSpec) { sp.FlopRate = 2e9 }},
		{"churn on barrier", func(sp *RunSpec) {
			sp.Runtime = RuntimeBarrier
			sp.Churn = &ChurnModel{MeanUp: 10, MeanDown: 5}
		}},
		{"empty churn model", func(sp *RunSpec) { sp.Churn = &ChurnModel{} }},
		{"half-zero markov", func(sp *RunSpec) { sp.Churn = &ChurnModel{MeanUp: 10} }},
		{"bad mass drop", func(sp *RunSpec) { sp.Churn = &ChurnModel{Drops: []MassDrop{{At: -1, Fraction: 0.5}}} }},
		{"negative cutoff", func(sp *RunSpec) { sp.Policy = &MaxStalenessPolicy{MaxStale: -1} }},
	}
	for _, tc := range cases {
		sp := deviceSpec(t, NewFedTrip(0.4))
		tc.mutate(&sp)
		if err := sp.Validate(); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	// The happy path still validates (devices + churn + adaptive steps,
	// zero latency left implicit).
	sp := deviceSpec(t, NewFedTrip(0.4))
	sp.Devices = DefaultTiers()
	sp.AdaptiveLocalSteps = true
	sp.Churn = &ChurnModel{MeanUp: 60, MeanDown: 6}
	if err := sp.Validate(); err != nil {
		t.Fatalf("valid device spec rejected: %v", err)
	}
	if sp.FlopRate != 1e9 {
		t.Fatalf("default flop rate %g", sp.FlopRate)
	}
}

// The aggregate churn process must be distribution-equivalent to the
// per-client Markov chains it replaced: with nUp clients online, the
// fleet's next drop ~ Exp(nUp/MeanUp) with a uniform victim, and
// symmetrically for rejoins. This pins the equivalence at 10k clients by
// running both the aggregate process and an explicit per-client
// reference simulation over the same horizon and comparing event rates,
// the time-averaged offline fraction, and the per-client drop-count
// spread. Both are stochastic, so the comparison is statistical — but
// with fixed seeds the test itself is deterministic.
func TestChurnAggregateMatchesPerClientChains(t *testing.T) {
	const (
		n        = 10_000
		meanUp   = 50.0
		meanDown = 10.0
		horizon  = 200.0
	)
	m := &ChurnModel{MeanUp: meanUp, MeanDown: meanDown}

	// Aggregate process under test.
	c := newChurn(n, m, 77)
	aggDropsPer := make([]int, n)
	var aggDrops, aggRejoins int
	var aggOffTime float64
	lastT := 0.0
	// The callbacks keep their own running offline count (integrated
	// against event times) and cross-check it against the churn state at
	// the end.
	offNow := 0
	onDrop := func(id int, at float64, permanent bool) {
		aggOffTime += float64(offNow) * (at - lastT)
		lastT = at
		offNow++
		aggDrops++
		aggDropsPer[id]++
		if permanent {
			t.Fatalf("pure Markov model produced a permanent drop for client %d", id)
		}
	}
	onRejoin := func(id int, at float64) {
		aggOffTime += float64(offNow) * (at - lastT)
		lastT = at
		offNow--
		aggRejoins++
	}
	c.advance(horizon, onDrop, onRejoin)
	aggOffTime += float64(offNow) * (horizon - lastT)
	if got := c.offlineCount(); got != offNow {
		t.Fatalf("callback bookkeeping drifted: %d offline per callbacks, churn reports %d", offNow, got)
	}

	// Reference: n independent per-client on/off chains, simulated
	// explicitly. Each client alternates Exp(meanUp) online and
	// Exp(meanDown) offline phases from its own stream.
	refDropsPer := make([]int, n)
	var refDrops, refRejoins int
	var refOffTime float64
	for id := 0; id < n; id++ {
		rng := prng.New(int64(1_000_003 + id))
		tNow, online := 0.0, true
		for {
			var dur float64
			if online {
				dur = rng.ExpFloat64() * meanUp
			} else {
				dur = rng.ExpFloat64() * meanDown
			}
			if tNow+dur > horizon {
				if !online {
					refOffTime += horizon - tNow
				}
				break
			}
			tNow += dur
			if online {
				refDrops++
				refDropsPer[id]++
			} else {
				refOffTime += dur
				refRejoins++
			}
			online = !online
		}
	}

	relDiff := func(a, b float64) float64 {
		if b == 0 {
			return math.Abs(a)
		}
		return math.Abs(a-b) / math.Abs(b)
	}
	// Event rates: ~33k drops expected, stochastic spread well under 2%.
	if d := relDiff(float64(aggDrops), float64(refDrops)); d > 0.03 {
		t.Errorf("drop totals diverge: aggregate %d, reference %d (%.1f%%)", aggDrops, refDrops, 100*d)
	}
	if d := relDiff(float64(aggRejoins), float64(refRejoins)); d > 0.03 {
		t.Errorf("rejoin totals diverge: aggregate %d, reference %d (%.1f%%)", aggRejoins, refRejoins, 100*d)
	}
	// Time-averaged offline fraction: both start all-online, so they
	// share the same warm-up transient; compare to each other tightly and
	// to the steady state pi = MeanDown/(MeanUp+MeanDown) loosely (the
	// transient biases the [0,horizon] average low by ~ tau/horizon).
	aggFrac := aggOffTime / (horizon * n)
	refFrac := refOffTime / (horizon * n)
	if d := relDiff(aggFrac, refFrac); d > 0.03 {
		t.Errorf("offline fractions diverge: aggregate %.4f, reference %.4f (%.1f%%)", aggFrac, refFrac, 100*d)
	}
	pi := meanDown / (meanUp + meanDown)
	if d := relDiff(aggFrac, pi); d > 0.10 {
		t.Errorf("aggregate offline fraction %.4f far from steady state %.4f", aggFrac, pi)
	}
	// Per-client spread: uniform victim sampling must reproduce the
	// per-client drop-count distribution, not just the total. Compare
	// mean and variance of the 10k per-client counts.
	moments := func(counts []int) (mean, variance float64) {
		for _, k := range counts {
			mean += float64(k)
		}
		mean /= float64(len(counts))
		for _, k := range counts {
			d := float64(k) - mean
			variance += d * d
		}
		variance /= float64(len(counts) - 1)
		return
	}
	aggMean, aggVar := moments(aggDropsPer)
	refMean, refVar := moments(refDropsPer)
	if d := relDiff(aggMean, refMean); d > 0.03 {
		t.Errorf("per-client drop means diverge: aggregate %.3f, reference %.3f", aggMean, refMean)
	}
	if d := relDiff(aggVar, refVar); d > 0.12 {
		t.Errorf("per-client drop variances diverge: aggregate %.3f, reference %.3f", aggVar, refVar)
	}
}
