package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Annotation grammar. All fedtripvet escape hatches are line comments of
// the form
//
//	//fedtripvet:<verb> <reason>
//
// with no space between "//" and "fedtripvet" (mirroring //go: and
// //lint: directives, so gofmt leaves them alone).
//
//	//fedtripvet:allow <reason>
//	    Suppresses every fedtripvet diagnostic attributed to the
//	    comment's own line (trailing form) or, when the comment stands
//	    alone, to the line directly below it. The reason is mandatory:
//	    an unexplained suppression is itself reported.
//
//	//fedtripvet:sorted <reason>
//	    maprange only: asserts that a map iteration in a serialization
//	    file is order-insensitive (or explicitly ordered afterwards).
//	    Same placement rules as allow; reason mandatory.
//
//	//fedtripvet:hotpath
//	    In a function's doc comment: opts the function into the hotpath
//	    analyzer's allocation checks.
const (
	directivePrefix = "//fedtripvet:"
	verbAllow       = "allow"
	verbSorted      = "sorted"
	verbHotpath     = "hotpath"
)

// directive is one parsed //fedtripvet: comment.
type directive struct {
	verb   string
	reason string
	pos    token.Pos
	// line is the line the directive suppresses: the comment's own line
	// if code precedes it, otherwise the line below the comment.
	line int
}

// parseDirectives extracts every fedtripvet directive from f. The
// suppressed line is resolved against the file's layout: a trailing
// comment guards its own line, a comment alone on a line guards the next
// line.
func parseDirectives(fset *token.FileSet, f *ast.File) []directive {
	var ds []directive
	tf := fset.File(f.Pos())
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			verb, reason, _ := strings.Cut(rest, " ")
			line := tf.Line(c.Pos())
			// A comment that starts a line guards the line below; a
			// trailing comment guards its own line. Column 1..n of the
			// line before the comment holds code iff the comment's
			// column is past the line start and something non-blank
			// precedes it — approximated by the comment's column: gofmt
			// places standalone comments at the statement indent, but a
			// trailing comment never starts the line. Cheap and robust:
			// if the comment's column is 1 it is standalone; otherwise
			// inspect whether any AST node ends on the same line before
			// the comment.
			guarded := line
			if !codeBefore(tf, f, c.Pos(), line) {
				guarded = line + 1
			}
			ds = append(ds, directive{
				verb:   verb,
				reason: strings.TrimSpace(reason),
				pos:    c.Pos(),
				line:   guarded,
			})
		}
	}
	return ds
}

// codeBefore reports whether any syntax node ends on the given line
// before pos (making a comment at pos a trailing comment).
func codeBefore(tf *token.File, f *ast.File, pos token.Pos, line int) bool {
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || found {
			return false
		}
		if n.Pos() >= pos {
			return false
		}
		if _, isFile := n.(*ast.File); !isFile && n.End() <= pos && tf.Line(n.End()-1) == line {
			found = true
			return false
		}
		return true
	})
	return found
}

// annotations indexes one file's directives for the analyzers.
type annotations struct {
	// allow maps guarded line -> reason for //fedtripvet:allow.
	allow map[int]string
	// sorted maps guarded line -> reason for //fedtripvet:sorted.
	sorted map[int]string
	// malformed holds directives with a missing reason or unknown verb,
	// reported by the driver so suppressions stay reviewable.
	malformed []directive
}

// annotate parses and indexes f's directives.
func annotate(fset *token.FileSet, f *ast.File) *annotations {
	a := &annotations{allow: map[int]string{}, sorted: map[int]string{}}
	for _, d := range parseDirectives(fset, f) {
		switch d.verb {
		case verbAllow:
			if d.reason == "" {
				a.malformed = append(a.malformed, d)
				continue
			}
			a.allow[d.line] = d.reason
		case verbSorted:
			if d.reason == "" {
				a.malformed = append(a.malformed, d)
				continue
			}
			a.sorted[d.line] = d.reason
		case verbHotpath:
			// Consumed from doc comments by the hotpath analyzer; no
			// line bookkeeping needed here.
		default:
			a.malformed = append(a.malformed, d)
		}
	}
	return a
}

// isHotpath reports whether the function declaration carries the
// //fedtripvet:hotpath marker in its doc comment.
func isHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, directivePrefix)
		if !ok {
			continue
		}
		verb, _, _ := strings.Cut(rest, " ")
		if verb == verbHotpath {
			return true
		}
	}
	return false
}

// sortedAt reports whether a //fedtripvet:sorted directive guards the
// given line.
func (a *annotations) sortedAt(line int) bool {
	_, ok := a.sorted[line]
	return ok
}
