package nn

import (
	"fmt"

	"repro/internal/prng"
	"repro/internal/tensor"
)

// reluLayer applies max(0, x) elementwise.
type reluLayer struct {
	shape []int
	mask  []bool // true where input was > 0
	y     *tensor.Tensor
	dx    *tensor.Tensor
}

// ReLU appends a rectified-linear activation.
func (b *Builder) ReLU() *Builder {
	b.add(&reluLayer{})
	return b
}

func (l *reluLayer) Name() string { return "relu" }

func (l *reluLayer) Resolve(in []int) ([]int, error) {
	l.shape = append([]int(nil), in...)
	return in, nil
}

func (l *reluLayer) ParamCount() int                              { return 0 }
func (l *reluLayer) Bind(params, grads []float64, rng *prng.Rand) {}

func (l *reluLayer) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Numel()
	if l.y == nil {
		l.y = tensor.New(x.Shape()...)
	} else if l.y.Dim(0) != x.Dim(0) {
		l.y.SetDim0(x.Dim(0))
	}
	if cap(l.mask) >= n {
		l.mask = l.mask[:n]
	} else {
		l.mask = make([]bool, n)
	}
	for i, v := range x.Data {
		if v > 0 {
			l.y.Data[i] = v
			l.mask[i] = true
		} else {
			l.y.Data[i] = 0
			l.mask[i] = false
		}
	}
	return l.y
}

func (l *reluLayer) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if l.dx == nil {
		l.dx = tensor.New(dy.Shape()...)
	} else if l.dx.Dim(0) != dy.Dim(0) {
		l.dx.SetDim0(dy.Dim(0))
	}
	for i, v := range dy.Data {
		if l.mask[i] {
			l.dx.Data[i] = v
		} else {
			l.dx.Data[i] = 0
		}
	}
	return l.dx
}

func (l *reluLayer) FwdFLOPs() float64 { return float64(numel(l.shape)) }

// flattenLayer reshapes [N, C, H, W] (or any rank) to [N, D].
type flattenLayer struct {
	in       []int
	fwd, bwd *tensor.Tensor // cached reshape views, re-used while the
	// neighbouring layers keep handing over the same backing buffer
}

// Flatten appends a reshape to a flat per-sample vector.
func (b *Builder) Flatten() *Builder {
	b.add(&flattenLayer{})
	return b
}

func (l *flattenLayer) Name() string { return "flatten" }

func (l *flattenLayer) Resolve(in []int) ([]int, error) {
	l.in = append([]int(nil), in...)
	return []int{numel(in)}, nil
}

func (l *flattenLayer) ParamCount() int                              { return 0 }
func (l *flattenLayer) Bind(params, grads []float64, rng *prng.Rand) {}

func (l *flattenLayer) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if l.fwd == nil || len(l.fwd.Data) != len(x.Data) || &l.fwd.Data[0] != &x.Data[0] {
		l.fwd = x.Reshape(x.Dim(0), numel(l.in))
	}
	return l.fwd
}

func (l *flattenLayer) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if l.bwd == nil || len(l.bwd.Data) != len(dy.Data) || &l.bwd.Data[0] != &dy.Data[0] {
		l.bwd = dy.Reshape(prependBatch(dy.Dim(0), l.in)...)
	}
	return l.bwd
}

func (l *flattenLayer) FwdFLOPs() float64 { return 0 }

// dropoutLayer implements inverted dropout: at train time each activation
// is zeroed with probability p and survivors are scaled by 1/(1-p); at eval
// time it is the identity.
type dropoutLayer struct {
	p     float64
	shape []int
	rng   *prng.Rand
	keep  []bool
	y     *tensor.Tensor
	dx    *tensor.Tensor
}

// Dropout appends an inverted-dropout layer with drop probability p.
func (b *Builder) Dropout(p float64) *Builder {
	if p < 0 || p >= 1 {
		b.fail(fmt.Errorf("nn: dropout probability %v outside [0,1)", p))
		return b
	}
	b.add(&dropoutLayer{p: p})
	return b
}

func (l *dropoutLayer) Name() string { return "dropout" }

func (l *dropoutLayer) Resolve(in []int) ([]int, error) {
	l.shape = append([]int(nil), in...)
	return in, nil
}

func (l *dropoutLayer) ParamCount() int { return 0 }

func (l *dropoutLayer) Bind(params, grads []float64, rng *prng.Rand) {
	l.rng = rng
}

func (l *dropoutLayer) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || l.p == 0 {
		// Identity at eval time; mark mask as unused.
		l.keep = nil
		return x
	}
	n := x.Numel()
	if l.y == nil {
		l.y = tensor.New(x.Shape()...)
	} else if l.y.Dim(0) != x.Dim(0) {
		l.y.SetDim0(x.Dim(0))
	}
	if cap(l.keep) >= n {
		l.keep = l.keep[:n]
	} else {
		l.keep = make([]bool, n)
	}
	scale := 1 / (1 - l.p)
	for i, v := range x.Data {
		if l.rng.Float64() < l.p {
			l.keep[i] = false
			l.y.Data[i] = 0
		} else {
			l.keep[i] = true
			l.y.Data[i] = v * scale
		}
	}
	return l.y
}

func (l *dropoutLayer) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if l.keep == nil {
		return dy // eval-mode forward: identity
	}
	if l.dx == nil {
		l.dx = tensor.New(dy.Shape()...)
	} else if l.dx.Dim(0) != dy.Dim(0) {
		l.dx.SetDim0(dy.Dim(0))
	}
	scale := 1 / (1 - l.p)
	for i, v := range dy.Data {
		if l.keep[i] {
			l.dx.Data[i] = v * scale
		} else {
			l.dx.Data[i] = 0
		}
	}
	return l.dx
}

func (l *dropoutLayer) FwdFLOPs() float64 { return float64(numel(l.shape)) }
