package algos

import (
	"repro/internal/core"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// SCAFFOLD (Karimireddy et al., ICML 2020) corrects client drift with
// control variates: the server keeps c, each client keeps c_k, and every
// local step uses g + c - c_k. After local training the client refreshes
//
//	c_k^+ = c_k - c + (w_global - w_k) / (K * lr)      (option II)
//
// and ships the delta back; the server folds the deltas into c. SCAFFOLD
// pays 2|w| extra communication per round per client (Appendix A,
// Table VIII) plus control-variate vector math.
type SCAFFOLD struct {
	core.Base

	c        []float64      // server control variate; mutated only in PreRound/Aggregate
	selected []*core.Client // clients of the in-flight round (set in PreRound)
	clients  int            // population size N, learned from PreRound calls
}

// Name implements core.Algorithm.
func (*SCAFFOLD) Name() string { return "scaffold" }

// NewOptimizer implements core.OptimizerChooser: SCAFFOLD analyses plain
// SGD.
func (*SCAFFOLD) NewOptimizer(lr, momentum float64) optim.Optimizer {
	return optim.NewSGD(lr)
}

// ExtraCommFactor implements core.CommCoster: control variates travel both
// ways.
func (*SCAFFOLD) ExtraCommFactor() float64 { return 2 }

// PreRound stashes the selected clients so Aggregate can read their
// control-variate deltas. The slice is copied: the runtime reuses its
// selection scratch across rounds.
func (s *SCAFFOLD) PreRound(round int, selected []*core.Client, global []float64) {
	if s.c == nil {
		s.c = make([]float64, len(global))
	}
	s.selected = append(s.selected[:0], selected...)
}

// BeginRound gives the client this round's server control variate and the
// global model.
func (s *SCAFFOLD) BeginRound(c *core.Client, round int, global []float64) {
	copy(c.RoundVec("scaffold.global"), global)
	copy(c.StateVec("scaffold.c"), s.c) // server c is stable during the client phase
	c.SetScalar("scaffold.steps", 0)
}

// TransformGrad applies the drift correction g += c - c_k.
func (s *SCAFFOLD) TransformGrad(c *core.Client, round int, w, g []float64) {
	cSrv := c.StateVec("scaffold.c")
	ck := c.StateVec("scaffold.ck")
	for i := range g {
		g[i] += cSrv[i] - ck[i]
	}
	c.SetScalar("scaffold.steps", c.Scalar("scaffold.steps")+1)
	c.Counter.Add(int64(2 * len(w)))
}

// EndRound refreshes c_k (option II) and records the delta for the server.
func (s *SCAFFOLD) EndRound(c *core.Client, round int) {
	k := c.Scalar("scaffold.steps")
	if k == 0 {
		return
	}
	lr := c.Config().LR
	global := c.RoundVec("scaffold.global")
	cSrv := c.StateVec("scaffold.c")
	ck := c.StateVec("scaffold.ck")
	dc := c.StateVec("scaffold.dc")
	w := c.Model().Params()
	inv := 1 / (k * lr)
	for i := range ck {
		newCk := ck[i] - cSrv[i] + (global[i]-w[i])*inv
		dc[i] = newCk - ck[i]
		ck[i] = newCk
	}
	c.Counter.Add(int64(4 * len(ck)))
}

// Aggregate averages the models (Eq. 2 weighting) and folds the control
// deltas into the server variate: c += |S|/N * mean_k dc_k.
func (s *SCAFFOLD) Aggregate(round int, global []float64, updates []core.Update) []float64 {
	n := len(global)
	next := make([]float64, n)
	weights := make([]float64, len(updates))
	vecs := make([][]float64, len(updates))
	var total float64
	for i, u := range updates {
		weights[i] = float64(u.NumSamples)
		vecs[i] = u.Params
		total += weights[i]
	}
	for i := range weights {
		weights[i] /= total
	}
	tensor.WeightedSumInto(next, weights, vecs)

	if len(s.selected) > 0 {
		if s.clients < len(s.selected) {
			s.clients = len(s.selected)
		}
		// Population size: use the config's partition count via any client.
		popN := len(s.selected[0].Config().Parts)
		frac := float64(len(s.selected)) / float64(popN)
		inv := frac / float64(len(s.selected))
		for _, c := range s.selected {
			dc := c.StateVec("scaffold.dc")
			tensor.Axpy(inv, dc, s.c)
		}
	}
	return next
}
