// Package trace collects per-round, per-client telemetry from federated
// runs: training loss, the global-local divergence ||w_k - w^{t-1}||, and
// the current-historical distance ||w_k^t - w_k^prev|| — exactly the two
// quantities FedTrip's triplet term manipulates (paper Fig. 3). The
// collector plugs into core.Config.OnUpdates and can export CSV for
// external plotting.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/tensor"
)

// ClientRound is one client's telemetry for one participating round.
type ClientRound struct {
	Round    int
	ClientID int
	// TrainLoss is the client's mean local training loss this round.
	TrainLoss float64
	// GlobalDist is ||w_k^t - w^{t-1}||: how far local training moved the
	// model from the global model it started from.
	GlobalDist float64
	// HistDist is ||w_k^t - w_k^prev||: distance to the model this client
	// uploaded at its previous participation (NaN at first participation).
	HistDist float64
}

// RoundStats aggregates one round across its selected clients.
type RoundStats struct {
	Round          int
	Clients        int
	MeanLoss       float64
	MeanGlobalDist float64
	// MeanHistDist averages over clients that had a history (0 count ->
	// NaN).
	MeanHistDist float64
}

// Collector accumulates telemetry. It is safe for the single-threaded
// OnUpdates callback plus concurrent reads after the run.
type Collector struct {
	mu   sync.Mutex
	rows []ClientRound
	prev map[int][]float64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{prev: make(map[int][]float64)}
}

// Hook returns the function to install as core.Config.OnUpdates.
func (c *Collector) Hook() func(round int, globalBefore []float64, updates []core.Update) {
	return func(round int, globalBefore []float64, updates []core.Update) {
		c.mu.Lock()
		defer c.mu.Unlock()
		for _, u := range updates {
			row := ClientRound{
				Round:      round,
				ClientID:   u.ClientID,
				TrainLoss:  u.TrainLoss,
				GlobalDist: math.Sqrt(tensor.DistSq(u.Params, globalBefore)),
				HistDist:   math.NaN(),
			}
			if prev, ok := c.prev[u.ClientID]; ok {
				row.HistDist = math.Sqrt(tensor.DistSq(u.Params, prev))
			}
			c.prev[u.ClientID] = append([]float64(nil), u.Params...)
			c.rows = append(c.rows, row)
		}
	}
}

// Rows returns the collected telemetry in arrival order.
func (c *Collector) Rows() []ClientRound {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]ClientRound(nil), c.rows...)
}

// Summary aggregates per round, sorted by round.
func (c *Collector) Summary() []RoundStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	byRound := map[int]*RoundStats{}
	histCount := map[int]int{}
	for _, r := range c.rows {
		s, ok := byRound[r.Round]
		if !ok {
			s = &RoundStats{Round: r.Round}
			byRound[r.Round] = s
		}
		s.Clients++
		s.MeanLoss += r.TrainLoss
		s.MeanGlobalDist += r.GlobalDist
		if !math.IsNaN(r.HistDist) {
			s.MeanHistDist += r.HistDist
			histCount[r.Round]++
		}
	}
	out := make([]RoundStats, 0, len(byRound))
	for round, s := range byRound {
		n := float64(s.Clients)
		s.MeanLoss /= n
		s.MeanGlobalDist /= n
		if hc := histCount[round]; hc > 0 {
			s.MeanHistDist /= float64(hc)
		} else {
			s.MeanHistDist = math.NaN()
		}
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Round < out[j].Round })
	return out
}

// TailMeans averages the per-round mean distances over the last k rounds
// (skipping NaN history entries); used by the Fig. 3 mechanism experiment.
func (c *Collector) TailMeans(k int) (globalDist, histDist float64) {
	sum := c.Summary()
	if len(sum) == 0 {
		return math.NaN(), math.NaN()
	}
	lo := len(sum) - k
	if lo < 0 {
		lo = 0
	}
	var g, h float64
	var ng, nh int
	for _, s := range sum[lo:] {
		g += s.MeanGlobalDist
		ng++
		if !math.IsNaN(s.MeanHistDist) {
			h += s.MeanHistDist
			nh++
		}
	}
	if ng > 0 {
		globalDist = g / float64(ng)
	} else {
		globalDist = math.NaN()
	}
	if nh > 0 {
		histDist = h / float64(nh)
	} else {
		histDist = math.NaN()
	}
	return globalDist, histDist
}

// WriteCSV exports the raw rows (round, client, loss, global_dist,
// hist_dist).
func (c *Collector) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"round", "client", "train_loss", "global_dist", "hist_dist"}); err != nil {
		return err
	}
	for _, r := range c.Rows() {
		hist := ""
		if !math.IsNaN(r.HistDist) {
			hist = strconv.FormatFloat(r.HistDist, 'g', 8, 64)
		}
		rec := []string{
			strconv.Itoa(r.Round),
			strconv.Itoa(r.ClientID),
			strconv.FormatFloat(r.TrainLoss, 'g', 8, 64),
			strconv.FormatFloat(r.GlobalDist, 'g', 8, 64),
			hist,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: csv: %w", err)
	}
	return nil
}
