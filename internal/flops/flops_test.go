package flops

import (
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Total() != 0 {
		t.Fatal("fresh counter not zero")
	}
	c.Add(100)
	c.Add(23)
	if c.Total() != 123 {
		t.Fatalf("got %d want 123", c.Total())
	}
	if g := c.GFLOPs(); g != 123e-9 {
		t.Fatalf("GFLOPs = %v", g)
	}
	c.Reset()
	if c.Total() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCounterNilSafe(t *testing.T) {
	var c *Counter
	c.Add(5) // must not panic
	if c.Total() != 0 {
		t.Fatal("nil counter total")
	}
	c.Reset()
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(3)
			}
		}()
	}
	wg.Wait()
	if c.Total() != 8*1000*3 {
		t.Fatalf("total %d", c.Total())
	}
}

func TestCommBytes(t *testing.T) {
	mc := ModelCost{Params: 1000}
	if mc.CommBytesFloat64() != 8000 {
		t.Fatalf("f64 bytes %d", mc.CommBytesFloat64())
	}
	if mc.CommBytesFloat32() != 4000 {
		t.Fatalf("f32 bytes %d", mc.CommBytesFloat32())
	}
}

func TestAttachCostFormulas(t *testing.T) {
	mc := ModelCost{Params: 1000, Forward: 5000, Backward: 10000}
	rp := RoundParams{K: 12, M: 50, N: 600, P: 1}
	cases := []struct {
		method string
		flops  float64
		comm   float64
	}{
		{"fedavg", 0, 0},
		{"fedprox", 2 * 12 * 1000, 0},
		{"fedtrip", 4 * 12 * 1000, 0},
		{"feddyn", 4 * 12 * 1000, 0},
		{"slowmo", 4 * 1000, 0},
		{"moon", 12 * 50 * 2 * 5000, 0},
		{"scaffold", 2*13*1000 + 600*15000, 2},
		{"feddane", 2*12*1000 + 600*15000, 2},
		{"mimelite", 600 * 15000, 2},
		{"fedgkd", 12 * 50 * 5000, 0},
		{"fednova", 4 * 1000, 0},
	}
	for _, c := range cases {
		got, err := AttachCost(c.method, mc, rp)
		if err != nil {
			t.Fatalf("%s: %v", c.method, err)
		}
		if got.AttachFLOPs != c.flops {
			t.Errorf("%s attach FLOPs = %v want %v", c.method, got.AttachFLOPs, c.flops)
		}
		if got.ExtraCommFactor != c.comm {
			t.Errorf("%s extra comm = %v want %v", c.method, got.ExtraCommFactor, c.comm)
		}
	}
}

func TestAttachCostUnknown(t *testing.T) {
	if _, err := AttachCost("nope", ModelCost{}, RoundParams{}); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

// Table VIII ordering claims: MOON's attaching cost dwarfs FedTrip's, and
// FedTrip costs exactly twice FedProx.
func TestPaperCostOrdering(t *testing.T) {
	// CNN-like numbers: FP is ~342x |w| per the paper's Appendix A remark.
	mc := ModelCost{Params: 620_000, Forward: 342 * 620_000, Backward: 2 * 342 * 620_000}
	rp := RoundParams{K: 12, M: 50, N: 600, P: 1}
	trip, _ := AttachCost("fedtrip", mc, rp)
	prox, _ := AttachCost("fedprox", mc, rp)
	moon, _ := AttachCost("moon", mc, rp)
	if trip.AttachFLOPs != 2*prox.AttachFLOPs {
		t.Fatalf("fedtrip %v != 2x fedprox %v", trip.AttachFLOPs, prox.AttachFLOPs)
	}
	if moon.AttachFLOPs < 50*trip.AttachFLOPs {
		t.Fatalf("moon %v should be >>50x fedtrip %v", moon.AttachFLOPs, trip.AttachFLOPs)
	}
}

func TestTrainFLOPsPerRound(t *testing.T) {
	mc := ModelCost{Params: 100, Forward: 1000, Backward: 2000}
	rp := RoundParams{K: 4, M: 10, N: 40}
	got, err := TrainFLOPsPerRound("fedprox", mc, rp)
	if err != nil {
		t.Fatal(err)
	}
	want := 4*10*3000.0 + 2*4*100.0
	if got != want {
		t.Fatalf("got %v want %v", got, want)
	}
	if _, err := TrainFLOPsPerRound("bogus", mc, rp); err == nil {
		t.Fatal("want error")
	}
}

func TestMethodsListMatchesAttachCost(t *testing.T) {
	for _, m := range Methods() {
		if _, err := AttachCost(m, ModelCost{Params: 1, Forward: 1, Backward: 2}, RoundParams{K: 1, M: 1, N: 1}); err != nil {
			t.Errorf("method %q in Methods() but AttachCost rejects it: %v", m, err)
		}
	}
}
