package experiments

import "fmt"

// Experiment is one registered reproduction target: a paper table/figure
// or an ablation.
type Experiment struct {
	// ID is the paper artifact id ("table4", "fig5", "abl-xi"...).
	ID string
	// Title describes what the experiment reproduces.
	Title string
	// Run executes the experiment under a profile and returns its tables.
	Run func(p Profile, logf Logf) ([]*Table, error)
}

// All returns every registered experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Method families: information utilization vs resource cost", Run: runTable1},
		{ID: "table2", Title: "Dataset description", Run: runTable2},
		{ID: "table3", Title: "Model communication/computation statistics", Run: runTable3},
		{ID: "table4", Title: "Rounds to target accuracy (Dir-0.5, 4-of-10)", Run: runTable4},
		{ID: "table5", Title: "GFLOPs to target accuracy", Run: runTable5},
		{ID: "table6", Title: "Rounds to target accuracy (4-of-50 scalability)", Run: runTable6},
		{ID: "table7", Title: "Accuracy with 5/10 local epochs", Run: runTable7},
		{ID: "table8", Title: "Analytic attaching cost per method (Appendix A)", Run: runTable8},
		{ID: "fig2", Title: "Representation separability (t-SNE/silhouette motivation)", Run: runFig2},
		{ID: "fig3", Title: "Update-geometry mechanism (global-local vs current-historical distance)", Run: runFig3},
		{ID: "fig4", Title: "Client label distributions under 4 heterogeneity types", Run: runFig4},
		{ID: "fig5", Title: "Convergence curves (CNN x 3 datasets x 2 schemes)", Run: runFig5},
		{ID: "fig6", Title: "Final-accuracy boxplots (CNN+MLP on FMNIST)", Run: runFig6},
		{ID: "fig7", Title: "FedTrip mu sensitivity", Run: runFig7},
		{ID: "theory-xi", Title: "Theorem 1 staleness coefficient: empirical vs closed form", Run: runTheoryXi},
		{ID: "theory-rho", Title: "Theorem 1 decrease coefficient rho from measured L and B", Run: runTheoryRho},
		{ID: "ext-quant", Title: "Extension: FedTrip with quantized uplink", Run: runExtQuant},
		{ID: "tta", Title: "Time to accuracy under stragglers (barrier vs FedBuff vs FedAsync policies)", Run: runTTA},
		{ID: "hetero", Title: "Device heterogeneity and churn (FLOP-coupled fleets, dropout/rejoin, staleness cutoff)", Run: runHetero},
		{ID: "comm-tta", Title: "Communication-priced time to accuracy (compressing transports on a bandwidth-tiered fleet)", Run: runCommTTA},
		{ID: "robust", Title: "Robust aggregation under Byzantine faults (graceful degradation on a churning tiered fleet)", Run: runRobust},
		{ID: "abl-xi", Title: "Ablation: xi schedule", Run: runAblationXi},
		{ID: "abl-hist", Title: "Ablation: triplet terms", Run: runAblationHistory},
		{ID: "abl-extra", Title: "Ablation: appendix methods resource comparison", Run: runAblationAppendix},
	}
}

// Get looks up an experiment by id.
func Get(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists all experiment ids.
func IDs() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.ID
	}
	return out
}

// ErrUnknown formats the standard unknown-experiment error.
func ErrUnknown(id string) error {
	return fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
}
