package core

// jobHeap is an indexed binary min-heap of in-flight jobs keyed on
// (finish, seq): earliest virtual arrival first, ties broken by dispatch
// sequence so replays are deterministic. The old event loop popped the
// earliest job with a linear scan, which was fine at tens of in-flight
// clients and quadratic pain at thousands; the heap makes every push/pop
// O(log n). Each job carries its heap slot (heapIdx) so membership checks
// and future in-place adjustments are O(1).
type jobHeap struct {
	js []*trainJob
}

// jobLess orders jobs by virtual arrival time, then by dispatch sequence,
// then (defensively — seq is unique in the runtime) by client index.
func jobLess(a, b *trainJob) bool {
	if a.finish != b.finish {
		return a.finish < b.finish
	}
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return a.c.ID < b.c.ID
}

func (h *jobHeap) len() int { return len(h.js) }

// peek returns the earliest job without removing it; nil when empty.
func (h *jobHeap) peek() *trainJob {
	if len(h.js) == 0 {
		return nil
	}
	return h.js[0]
}

// fix restores the heap invariant after the job at slot i changed its
// key — the churn process uses it to defer an in-flight job's arrival
// past the client's rejoin.
func (h *jobHeap) fix(i int) {
	h.down(i)
	h.up(i)
}

// push inserts a job.
func (h *jobHeap) push(j *trainJob) {
	j.heapIdx = len(h.js)
	h.js = append(h.js, j)
	h.up(j.heapIdx)
}

// pop removes and returns the earliest job; nil when empty.
func (h *jobHeap) pop() *trainJob {
	if len(h.js) == 0 {
		return nil
	}
	j := h.js[0]
	last := len(h.js) - 1
	h.js[0] = h.js[last]
	h.js[0].heapIdx = 0
	h.js[last] = nil
	h.js = h.js[:last]
	if last > 0 {
		h.down(0)
	}
	j.heapIdx = -1
	return j
}

func (h *jobHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !jobLess(h.js[i], h.js[parent]) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *jobHeap) down(i int) {
	n := len(h.js)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && jobLess(h.js[l], h.js[smallest]) {
			smallest = l
		}
		if r < n && jobLess(h.js[r], h.js[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *jobHeap) swap(i, k int) {
	h.js[i], h.js[k] = h.js[k], h.js[i]
	h.js[i].heapIdx = i
	h.js[k].heapIdx = k
}
