// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against // want "regex" comments, mirroring
// golang.org/x/tools/go/analysis/analysistest in miniature (that module
// is not vendored here; the build must work offline). Fixtures live in
// testdata/src/<pkg>; their imports are resolved against the enclosing
// module's build cache, so a fixture may import repro/internal/prng and
// exercise the real seed-stream API.
package analysistest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRe extracts the quoted patterns of a `// want "p1" "p2"` comment.
var wantRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// expectation is one want-pattern at a file:line, consumed when a
// diagnostic on that line matches it.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<pkg>, applies the analyzer, and reports any
// mismatch between its diagnostics and the fixture's want comments as
// test errors. It returns the findings for additional assertions.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) []analysis.Finding {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	names, findings := load(t, dir, a, pkg)
	expects, err := parseWants(dir, names)
	if err != nil {
		t.Fatalf("parsing want comments in %s: %v", dir, err)
	}
	for _, f := range findings {
		if !consume(expects, f) {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, f)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s: no diagnostic at %s:%d matching %q", a.Name, e.file, e.line, e.pattern)
		}
	}
	return findings
}

// RunNoWant loads and analyzes the fixture like Run but ignores its
// want comments, returning the raw findings. It exists for asserting a
// configuration under which a fixture's violations must NOT fire.
func RunNoWant(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) []analysis.Finding {
	t.Helper()
	_, findings := load(t, filepath.Join(testdata, "src", pkg), a, pkg)
	return findings
}

// load parses, type-checks, and analyzes one fixture directory.
func load(t *testing.T, dir string, a *analysis.Analyzer, pkg string) ([]string, []analysis.Finding) {
	t.Helper()
	names, err := fixtureFiles(dir)
	if err != nil {
		t.Fatalf("listing fixture %s: %v", dir, err)
	}
	if len(names) == 0 {
		t.Fatalf("fixture %s has no .go files", dir)
	}
	fset := token.NewFileSet()
	files, err := analysis.ParseFiles(fset, dir, names)
	if err != nil {
		t.Fatalf("parsing fixture %s: %v", dir, err)
	}

	// Resolve the fixture's imports through the module's build cache:
	// `go list -export` produces (or reuses) export data for each one.
	imports := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports[p] = true
			}
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		paths := make([]string, 0, len(imports))
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		root, err := moduleRoot(dir)
		if err != nil {
			t.Fatalf("finding module root above %s: %v", dir, err)
		}
		exports, _, err = analysis.GoList(root, paths...)
		if err != nil {
			t.Fatalf("resolving fixture imports: %v", err)
		}
	}

	imp := analysis.NewImporter(fset, analysis.ExportLookup(exports, nil))
	tp, info, err := analysis.Check(fset, pkg, files, imp)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	findings, err := analysis.Analyze(&analysis.Package{
		ImportPath: pkg,
		Dir:        dir,
		Fset:       fset,
		Syntax:     files,
		Types:      tp,
		TypesInfo:  info,
	}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on fixture %s: %v", a.Name, pkg, err)
	}
	return names, findings
}

// consume marks the first unmatched expectation on the finding's line
// whose pattern matches its message.
func consume(expects []*expectation, f analysis.Finding) bool {
	for _, e := range expects {
		if e.matched || e.file != filepath.Base(f.Pos.Filename) || e.line != f.Pos.Line {
			continue
		}
		if e.pattern.MatchString(f.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

// parseWants scans the fixture sources line by line for want comments.
// A plain-text scan (rather than the parsed comment lists) keeps the
// expectation's line number trivially equal to the line it annotates.
func parseWants(dir string, names []string) ([]*expectation, error) {
	var expects []*expectation
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, comment, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			for _, q := range wantRe.FindAllString(comment, -1) {
				text, err := strconv.Unquote(q)
				if err != nil {
					return nil, err
				}
				re, err := regexp.Compile(text)
				if err != nil {
					return nil, err
				}
				expects = append(expects, &expectation{file: name, line: i + 1, pattern: re})
			}
		}
	}
	return expects, nil
}

// fixtureFiles returns the fixture directory's .go files, sorted.
func fixtureFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// moduleRoot walks up from dir to the directory holding go.mod.
func moduleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", os.ErrNotExist
		}
		d = parent
	}
}
