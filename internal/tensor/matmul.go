package tensor

import "fmt"

// The four matmul variants the layers need (plus their accumulating
// forms) are thin shape-checked adapters over the blocked GEMM in gemm.go:
// transposition is expressed through operand strides, so there is exactly
// one compute kernel to optimise and test.

// MatMul computes C = A x B for A[m,k], B[k,n], writing into C[m,n].
// C must not alias A or B.
func MatMul(c, a, b *Tensor) {
	m, k, n := mmDims(c, a, b)
	gemm(c.Data, m, n, k, a.Data, k, 1, b.Data, n, 1, nil, false)
}

// MatMulAddBias computes C = A x B + bias, where bias is a length-n vector
// broadcast over rows. This is the dense-layer forward kernel.
func MatMulAddBias(c, a, b *Tensor, bias []float64) {
	m, k, n := mmDims(c, a, b)
	if len(bias) != n {
		panic(fmt.Sprintf("tensor: bias length %d != %d", len(bias), n))
	}
	gemm(c.Data, m, n, k, a.Data, k, 1, b.Data, n, 1, bias, false)
}

// MatMulATB computes C = A^T x B for A[m,k], B[m,n], writing into C[k,n].
// This is the weight-gradient kernel of a dense layer (dW = X^T dY).
func MatMulATB(c, a, b *Tensor) {
	m, k, n := atbDims(c, a, b)
	gemm(c.Data, k, n, m, a.Data, 1, k, b.Data, n, 1, nil, false)
}

// MatMulATBAdd computes C += A^T x B: the accumulating form of MatMulATB,
// used by layers that add each batch's weight gradient directly into the
// model's gradient vector without a scratch matrix.
func MatMulATBAdd(c, a, b *Tensor) {
	m, k, n := atbDims(c, a, b)
	gemm(c.Data, k, n, m, a.Data, 1, k, b.Data, n, 1, nil, true)
}

// MatMulABT computes C = A x B^T for A[m,n], B[k,n], writing into C[m,k].
// This is the input-gradient kernel of a dense layer (dX = dY W^T).
func MatMulABT(c, a, b *Tensor) {
	m, n, k := abtDims(c, a, b)
	gemm(c.Data, m, k, n, a.Data, n, 1, b.Data, 1, n, nil, false)
}

// MatMulABTAdd computes C += A x B^T: the accumulating form of MatMulABT
// (conv backward accumulates per-sample filter gradients with it).
func MatMulABTAdd(c, a, b *Tensor) {
	m, n, k := abtDims(c, a, b)
	gemm(c.Data, m, k, n, a.Data, n, 1, b.Data, 1, n, nil, true)
}

func mmDims(c, a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 || c.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k = a.Dim(0), a.Dim(1)
	n = b.Dim(1)
	if b.Dim(0) != k || c.Dim(0) != m || c.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch A%v B%v C%v", a.shape, b.shape, c.shape))
	}
	return m, k, n
}

func atbDims(c, a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 || c.Rank() != 2 {
		panic("tensor: MatMulATB requires rank-2 tensors")
	}
	m, k = a.Dim(0), a.Dim(1)
	n = b.Dim(1)
	if b.Dim(0) != m || c.Dim(0) != k || c.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulATB shape mismatch A%v B%v C%v", a.shape, b.shape, c.shape))
	}
	return m, k, n
}

func abtDims(c, a, b *Tensor) (m, n, k int) {
	if a.Rank() != 2 || b.Rank() != 2 || c.Rank() != 2 {
		panic("tensor: MatMulABT requires rank-2 tensors")
	}
	m, n = a.Dim(0), a.Dim(1)
	k = b.Dim(0)
	if b.Dim(1) != n || c.Dim(0) != m || c.Dim(1) != k {
		panic(fmt.Sprintf("tensor: MatMulABT shape mismatch A%v B%v C%v", a.shape, b.shape, c.shape))
	}
	return m, n, k
}

// axpyKernel computes dst += alpha * src with 4-way unrolling. It remains
// the BLAS-1 backbone of vec.go (Axpy, WeightedSumInto).
func axpyKernel(dst, src []float64, alpha float64) {
	n := len(dst)
	_ = src[n-1]
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += alpha * src[i]
		dst[i+1] += alpha * src[i+1]
		dst[i+2] += alpha * src[i+2]
		dst[i+3] += alpha * src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += alpha * src[i]
	}
}

// dotKernel computes the dot product of equal-length slices with 4-way
// unrolling into independent accumulators.
func dotKernel(a, b []float64) float64 {
	n := len(a)
	_ = b[n-1]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}
