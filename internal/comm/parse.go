package comm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// ParseTransport builds a transport from a CLI spec, mirroring the
// ParseLatency/ParsePolicy grammar family. The spec is "+"-composed: a
// base followed by optional modifiers.
//
//	none             no transport (analytic float32 byte accounting)
//	f32              dense float32 round-trip (measured bytes)
//	lossless         identity shipping at float64 width
//	q<bits>          delta-coded uplink, uniform <bits>-bit quantization
//	topk:<ratio>     delta-coded uplink, keep ceil(ratio*n) largest entries
//	randk:<ratio>    delta-coded uplink, keep ceil(ratio*n) random entries
//	+ef              error feedback: accumulate what the codec dropped
//	                 (valid only after q/topk/randk)
//
// Examples: "topk:0.01+ef", "randk:0.05", "q8+ef". Returns (nil, nil)
// for "none"/"".
func ParseTransport(spec string) (core.Transport, error) {
	if spec == "" || spec == "none" {
		return nil, nil
	}
	segs := strings.Split(spec, "+")
	for i, s := range segs {
		if s == "" {
			return nil, fmt.Errorf("comm: transport %q: empty segment %d", spec, i+1)
		}
	}
	base, mods := segs[0], segs[1:]
	if base == "ef" {
		return nil, fmt.Errorf("comm: transport %q: ef is a modifier, not a base — compose as e.g. topk:0.01+ef", spec)
	}
	ef := false
	for _, m := range mods {
		switch m {
		case "ef":
			if ef {
				return nil, fmt.Errorf("comm: transport %q: duplicate ef modifier", spec)
			}
			ef = true
		case "none", "f32", "lossless", "q8", "topk", "randk":
			return nil, fmt.Errorf("comm: transport %q: %q is a base, not a modifier — only one base per spec", spec, m)
		default:
			return nil, fmt.Errorf("comm: transport %q: unknown modifier %q (want ef)", spec, m)
		}
	}
	cod, err := parseCodec(spec, base)
	if err != nil {
		return nil, err
	}
	if cod == nil {
		// Dense base: f32 or lossless, no codec to wrap.
		if ef {
			return nil, fmt.Errorf("comm: transport %q: error feedback requires a lossy compressor (q/topk/randk)", spec)
		}
		if base == "f32" {
			return NewF32Transport(), nil
		}
		return NewLosslessTransport(), nil
	}
	return newCompressedTransport(cod, ef), nil
}

// parseCodec resolves the base segment. A nil codec with nil error means
// a dense base (f32/lossless).
func parseCodec(spec, base string) (codec, error) {
	name, arg := base, ""
	if i := strings.IndexByte(base, ':'); i >= 0 {
		name, arg = base[:i], base[i+1:]
	}
	switch {
	case name == "f32" || name == "lossless":
		if arg != "" {
			return nil, fmt.Errorf("comm: transport %q: %s takes no argument", spec, name)
		}
		return nil, nil
	case name == "topk" || name == "randk":
		ratio, err := strconv.ParseFloat(arg, 64)
		if err != nil {
			return nil, fmt.Errorf("comm: transport %q: %s wants a keep ratio, e.g. %s:0.01", spec, name, name)
		}
		if !(ratio > 0 && ratio <= 1) {
			return nil, fmt.Errorf("comm: transport %q: keep ratio %g outside (0,1]", spec, ratio)
		}
		if name == "topk" {
			return topKCodec{ratio: ratio}, nil
		}
		return randKCodec{ratio: ratio}, nil
	case strings.HasPrefix(name, "q"):
		bits, err := strconv.Atoi(name[1:])
		if err != nil || arg != "" {
			return nil, fmt.Errorf("comm: transport %q: unknown base %q (want f32, lossless, q<bits>, topk:<ratio>, or randk:<ratio>)", spec, base)
		}
		if bits < 1 || bits > 16 {
			return nil, fmt.Errorf("comm: transport %q: quantization bits %d outside [1,16]", spec, bits)
		}
		return quantCodec{bits: bits}, nil
	default:
		return nil, fmt.Errorf("comm: transport %q: unknown base %q (want f32, lossless, q<bits>, topk:<ratio>, or randk:<ratio>)", spec, base)
	}
}
