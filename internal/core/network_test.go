package core

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"sort"
	"sync"
	"testing"
)

func TestParseNetDist(t *testing.T) {
	good := map[string]string{
		"none":                        "",
		"":                            "",
		"const:10,25":                 "const:10,25,0",
		"const:10,25,30":              "const:10,25,30",
		"const:inf,inf,0":             "const:+Inf,+Inf,0",
		"uniform:5,50":                "uniform:5,50,0",
		"uniform:5,50,20":             "uniform:5,50,20",
		"uniform:5,5,20":              "uniform:5,5,20",
		"lognormal:3,0.5":             "lognormal:3,0.5,0",
		"lognormal:-1,0,40":           "lognormal:-1,0,40",
		"tiered":                      "tiered:5,20,80,0.3,20,50,40,0.6,1000,1000,5,0.1",
		"tiered:10,40,20,1":           "tiered:10,40,20,1",
		"tiered:1,2,0,0.5,8,16,0,0.5": "tiered:1,2,0,0.5,8,16,0,0.5",
	}
	for spec, want := range good {
		d, err := ParseNetDist(spec)
		if err != nil {
			t.Fatalf("ParseNetDist(%q): %v", spec, err)
		}
		if want == "" {
			if d != nil {
				t.Fatalf("ParseNetDist(%q) = %v, want nil", spec, d)
			}
			continue
		}
		if d.String() != want {
			t.Fatalf("ParseNetDist(%q).String() = %q want %q", spec, d.String(), want)
		}
	}
	for _, spec := range []string{
		"const", "const:10", "const:0,10", "const:10,-1", "const:10,25,-5",
		"uniform", "uniform:10", "uniform:0,10", "uniform:20,10", "uniform:5,inf",
		"uniform:5,50,20,9", "lognormal:3", "lognormal:3,-1", "lognormal:inf,1",
		"tiered:10", "tiered:10,40,20", "tiered:0,40,20,1", "tiered:10,40,-1,1",
		"tiered:10,40,20,0", "dsl:8,1", "const:a,b", "none:1",
	} {
		if _, err := ParseNetDist(spec); err == nil {
			t.Errorf("ParseNetDist(%q) accepted", spec)
		}
	}
}

func TestNetDistributionsSample(t *testing.T) {
	// Heavy-tailed draws are floored, never zero or negative; the
	// explicit +Inf reference link passes through unclamped.
	for _, p := range sampleNetProfiles(300, LognormalNet{Mu: -8, Sigma: 3}, 11) {
		if p.UpBps < minNetMbps*1e6 || p.DownBps < minNetMbps*1e6 {
			t.Fatalf("sampled link below the clamp floor: %+v", p)
		}
	}
	inf := math.Inf(1)
	p := ConstNet{Up: inf, Down: inf}.SampleNet(0, nil)
	if !math.IsInf(p.UpBps, 1) || !math.IsInf(p.DownBps, 1) || p.RTT != 0 {
		t.Fatalf("infinite link clamped: %+v", p)
	}
	if got := p.transferTime(1<<20, 1<<20); got != 0 {
		t.Fatalf("infinite bandwidth zero-RTT transfer priced at %g", got)
	}
	// Tiered sampling only emits tier links, converted to base units.
	tiers := map[NetProfile]bool{}
	for _, tier := range DefaultNetTiers().Tiers {
		tiers[netProfile(tier.Up, tier.Down, tier.RTT)] = true
	}
	for _, p := range sampleNetProfiles(200, DefaultNetTiers(), 5) {
		if !tiers[p] {
			t.Fatalf("tiered fleet sampled off-tier link %+v", p)
		}
	}
	// Sampling is deterministic per seed and drawn from its own stream.
	a := sampleNetProfiles(100, LognormalNet{Mu: 3, Sigma: 1}, 7)
	b := sampleNetProfiles(100, LognormalNet{Mu: 3, Sigma: 1}, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("network sampling not deterministic per seed")
		}
	}
}

func TestTransferTimePricesBothDirectionsAndRTT(t *testing.T) {
	p := netProfile(10, 25, 40) // 10 Mbps up, 25 Mbps down, 40 ms
	// 1 MB down at 25 Mbps = 0.32 s; 100 kB up at 10 Mbps = 0.08 s.
	want := 0.04 + 1e6*8/25e6 + 1e5*8/10e6
	if got := p.transferTime(1e6, 1e5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("transferTime = %v want %v", got, want)
	}
	if free := p.transferTime(0, 0); free != 0.04 {
		t.Fatalf("empty transfer must cost exactly the RTT, got %v", free)
	}
}

// netSpec is deviceSpec with a network distribution attached.
func netSpec(t *testing.T, net NetDistribution) RunSpec {
	t.Helper()
	sp := deviceSpec(t, pinAlgo{})
	sp.Latency = ConstantLatency{D: 3}
	sp.Network = net
	return sp
}

// The acceptance pin promised by the package doc: an infinite-bandwidth
// zero-RTT fleet adds exactly zero seconds to every dispatch, so the run
// reproduces the unpriced async trajectory bit-for-bit — same metric
// series, same digest, same simulated clock.
func TestInfiniteBandwidthMatchesPlainAsync(t *testing.T) {
	ref, err := Start(netSpec(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	inf := math.Inf(1)
	free, err := Start(netSpec(t, ConstNet{Up: inf, Down: inf, RTT: 0}))
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "infinite-bandwidth fleet", ref, free)
	if ref.Digest() != free.Digest() {
		t.Fatalf("digest %s vs %s", ref.Digest(), free.Digest())
	}
}

// Halving every link's bandwidth exactly doubles each dispatch's
// transfer time and nothing else: the trajectory is untouched (the
// uniform rescale preserves arrival order) and, with zero compute
// latency, every simulated timestamp doubles bit-for-bit.
func TestBandwidthScalesSimTime(t *testing.T) {
	run := func(scale float64) *Result {
		sp := deviceSpec(t, pinAlgo{})
		sp.Network = ConstNet{Up: 20 * scale, Down: 50 * scale, RTT: 0}
		res, err := Start(sp)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast, slow := run(1), run(0.5)
	for i := range fast.SimTimeByRound {
		if slow.SimTimeByRound[i] != 2*fast.SimTimeByRound[i] {
			t.Fatalf("agg %d sim time %v want exactly 2x %v", i+1, slow.SimTimeByRound[i], fast.SimTimeByRound[i])
		}
		if slow.Accuracy[i] != fast.Accuracy[i] {
			t.Fatalf("agg %d trajectory diverged under a pure bandwidth rescale", i+1)
		}
	}
	if last := fast.SimTimeByRound[len(fast.SimTimeByRound)-1]; last <= 0 {
		t.Fatal("bandwidth pricing produced no simulated time")
	}
}

// A network distribution needs the simulated clock.
func TestRunSpecRejectsNetworkOnSync(t *testing.T) {
	sp := RunSpec{Config: testConfig(t, NewFedTrip(0.4)), Network: DefaultNetTiers()}
	if err := sp.Validate(); err == nil {
		t.Fatal("network pricing on the sync runtime accepted")
	}
}

// countingTransport is a minimal stateful, sized transport for the core
// resume pin: each upload is perturbed by a per-client participation
// counter — run-long state the FTRS snapshot must carry — and uplinks
// report half the dense wire size, so the bandwidth pricing path runs
// on measured (not analytic) bytes.
type countingTransport struct {
	mu     sync.Mutex
	counts map[int]int64
}

func newCountingTransport() *countingTransport {
	return &countingTransport{counts: map[int]int64{}}
}

func (c *countingTransport) Down(clientID, round int, global []float64) []float64 {
	enc, _ := c.DownSized(clientID, round, global)
	return enc
}

func (c *countingTransport) Up(clientID, round int, params []float64) []float64 {
	enc, _ := c.UpSized(clientID, round, params)
	return enc
}

func (c *countingTransport) DownSized(clientID, round int, global []float64) ([]float64, int64) {
	return global, int64(len(global)) * 4
}

func (c *countingTransport) UpSized(clientID, round int, params []float64) ([]float64, int64) {
	c.mu.Lock()
	c.counts[clientID]++
	n := c.counts[clientID]
	c.mu.Unlock()
	out := append([]float64(nil), params...)
	out[0] += float64(n) * 1e-5
	return out, int64(len(params)) * 2
}

func (c *countingTransport) SnapshotState(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]int, 0, len(c.counts))
	for id := range c.counts {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	if err := binary.Write(w, binary.LittleEndian, int64(len(ids))); err != nil {
		return err
	}
	for _, id := range ids {
		if err := binary.Write(w, binary.LittleEndian, int64(id)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, c.counts[id]); err != nil {
			return err
		}
	}
	return nil
}

func (c *countingTransport) RestoreState(r io.Reader) error {
	var n int64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	counts := make(map[int]int64, n)
	for i := int64(0); i < n; i++ {
		var id, v int64
		if err := binary.Read(r, binary.LittleEndian, &id); err != nil {
			return err
		}
		if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
			return err
		}
		counts[int(id)] = v
	}
	c.mu.Lock()
	c.counts = counts
	c.mu.Unlock()
	return nil
}

// The core-level resume pin for priced, stateful communication: a
// bandwidth-tiered async run through a transport with run-long state
// snapshots at the halfway round and resumes bit-for-bit, with the
// transport's state restored rather than reset.
func TestResumeEquivalenceAsyncPricedTransport(t *testing.T) {
	build := func() (RunSpec, *countingTransport) {
		sp := RunSpec{Config: snapTestConfig(t, 12), Runtime: RuntimeAsync}
		sp.Concurrency = 3
		sp.BufferSize = 2
		sp.Latency = ConstantLatency{D: 2}
		sp.Network = DefaultNetTiers()
		tr := newCountingTransport()
		sp.Config.Transport = tr
		return sp, tr
	}
	fullSpec, _ := build()
	full, err := Start(fullSpec)
	if err != nil {
		t.Fatal(err)
	}
	snapSpec, _ := build()
	rs, err := NewRunState(snapSpec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if done, err := rs.Step(); err != nil || done {
			t.Fatalf("step %d: done=%v err=%v", i+1, done, err)
		}
	}
	var buf bytes.Buffer
	if err := rs.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	cont, err := rs.Run()
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "priced-transport snapshot-and-continue", full, cont)

	resSpec, tr := build()
	rs2, err := Resume(bytes.NewReader(buf.Bytes()), ResumeSpec{Spec: resSpec})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.counts) == 0 {
		t.Fatal("resume did not restore the transport's state")
	}
	resumed, err := rs2.Run()
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "priced-transport snapshot-and-resume", full, resumed)
	if full.Digest() != resumed.Digest() {
		t.Fatalf("digest %s vs %s", full.Digest(), resumed.Digest())
	}
}
