package core

import (
	"fmt"
	"math/rand"

	"repro/internal/flops"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// Client is one federated participant: its private data indices, its model
// instance, its optimizer, and per-method state. Clients are trained
// concurrently by the server; a Client is confined to one goroutine at a
// time and owns all of its buffers.
type Client struct {
	// ID is the client's index in the population.
	ID int
	// Indices are the client's sample indices in the training set.
	Indices []int
	// Model is the client's working model (parameters overwritten by the
	// global model at the start of each participating round).
	Model *nn.Model
	// Opt is the local optimizer U(.) of Algorithm 1 line 8.
	Opt optim.Optimizer
	// Counter meters this client's training FLOPs (model forward/backward
	// plus the method's attaching operations).
	Counter *flops.Counter

	// Hist is the client's historical local model: the parameters it
	// uploaded the last time it participated (Algorithm 1 line 4). nil
	// until the first participation.
	Hist []float64
	// LastRound is the round of the client's previous participation
	// (0 if never). FedTrip's staleness factor xi derives from it.
	LastRound int

	cfg *Config
	rng *rand.Rand
	// state holds named per-method vectors (FedDyn's h_k, SCAFFOLD's c_k,
	// FedDANE's gradients...), allocated on first use.
	state map[string][]float64
	// scalars holds named per-method scalars (FedTrip's xi for the
	// current round).
	scalars map[string]float64

	// Scratch models for representation methods (MOON): same architecture,
	// parameters loaded on demand. Lazily built.
	scratchA, scratchB *nn.Model

	// Reusable batch buffers.
	batchX   *tensor.Tensor
	batchY   []int
	dLogits  *tensor.Tensor
	featGrad *tensor.Tensor
}

func newClient(cfg *Config, id int, indices []int, seed int64) (*Client, error) {
	m, err := cfg.Model.Build(seed)
	if err != nil {
		return nil, err
	}
	c := &Client{
		ID:      id,
		Indices: indices,
		Model:   m,
		Counter: &flops.Counter{},
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(seed)),
		state:   make(map[string][]float64),
		scalars: make(map[string]float64),
	}
	if oc, ok := cfg.Algo.(OptimizerChooser); ok {
		c.Opt = oc.NewOptimizer(cfg.LR, cfg.Momentum)
	} else {
		c.Opt = optim.NewSGDMomentum(cfg.LR, cfg.Momentum)
	}
	m.SetCounter(c.Counter)
	return c, nil
}

// NumSamples returns |D_k|, the client's data size (the aggregation weight
// numerator in Eq. 2).
func (c *Client) NumSamples() int { return len(c.Indices) }

// NumParams returns |w|.
func (c *Client) NumParams() int { return c.Model.NumParams() }

// StateVec returns the named per-method state vector of length
// Model.NumParams(), allocating it zeroed on first use.
func (c *Client) StateVec(name string) []float64 {
	v, ok := c.state[name]
	if !ok {
		v = make([]float64, c.Model.NumParams())
		c.state[name] = v
	}
	return v
}

// HasStateVec reports whether the named vector has been allocated.
func (c *Client) HasStateVec(name string) bool {
	_, ok := c.state[name]
	return ok
}

// SetScalar stores a named per-method scalar.
func (c *Client) SetScalar(name string, v float64) { c.scalars[name] = v }

// Scalar returns a named per-method scalar (0 if unset).
func (c *Client) Scalar(name string) float64 { return c.scalars[name] }

// Config returns the run configuration (read-only for algorithms).
func (c *Client) Config() *Config { return c.cfg }

// RNG exposes the client's deterministic random source (dropout, method-
// specific sampling).
func (c *Client) RNG() *rand.Rand { return c.rng }

// ScratchModels returns two scratch model instances with the same
// architecture as the client's model, building them on first use. MOON
// loads the global and historical parameters into them for its extra
// forward passes. Their FLOPs are metered on the client's counter.
func (c *Client) ScratchModels() (*nn.Model, *nn.Model) {
	if c.scratchA == nil {
		a, err := c.cfg.Model.Build(c.rng.Int63())
		if err != nil {
			panic(fmt.Sprintf("core: scratch model: %v", err))
		}
		b, err := c.cfg.Model.Build(c.rng.Int63())
		if err != nil {
			panic(fmt.Sprintf("core: scratch model: %v", err))
		}
		a.SetCounter(c.Counter)
		b.SetCounter(c.Counter)
		c.scratchA, c.scratchB = a, b
	}
	return c.scratchA, c.scratchB
}

// ensureBatch sizes the reusable batch buffers for n samples.
func (c *Client) ensureBatch(n int) {
	if c.batchX == nil || c.batchX.Dim(0) != n {
		shape := append([]int{n}, c.Model.InShape()...)
		c.batchX = tensor.New(shape...)
		c.batchY = make([]int, n)
		c.dLogits = tensor.New(n, c.Model.OutDim())
	}
}

// LocalTrain runs one participating round: load the global model, run E
// local epochs of mini-batch SGD with the method's hooks, update the
// historical model, and return the upload.
func (c *Client) LocalTrain(round int, global []float64) Update {
	cfg := c.cfg
	algo := cfg.Algo
	c.Model.SetParams(global)
	c.Opt.Reset()
	algo.BeginRound(c, round, global)
	fg, hasFG := algo.(FeatureGradder)
	lg, hasLG := algo.(LogitGradder)

	var lossSum float64
	var batches int
	n := len(c.Indices)
	idx := make([]int, 0, cfg.BatchSize)
	for e := 0; e < cfg.LocalEpochs; e++ {
		perm := c.rng.Perm(n)
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			idx = idx[:0]
			for _, p := range perm[start:end] {
				idx = append(idx, c.Indices[p])
			}
			c.ensureBatch(len(idx))
			cfg.Train.FillBatch(c.batchX, c.batchY, idx)

			logits := c.Model.Forward(c.batchX, true)
			lossSum += nn.SoftmaxCrossEntropy(logits, c.batchY, c.dLogits)
			batches++

			if hasLG {
				lg.LogitGrad(c, c.batchX, c.batchY, logits, c.dLogits)
			}
			var extra *tensor.Tensor
			if hasFG {
				feat := c.Model.Features()
				if c.featGrad == nil || !tensor.SameShape(c.featGrad, feat) {
					c.featGrad = tensor.New(feat.Shape()...)
				}
				if fg.FeatureGrad(c, c.batchX, c.batchY, feat, c.featGrad) {
					extra = c.featGrad
				}
			}
			c.Model.ZeroGrad()
			c.Model.Backward(c.dLogits, extra)
			algo.TransformGrad(c, round, c.Model.Params(), c.Model.Grads())
			if cfg.ClipNorm > 0 {
				clipToNorm(c.Model.Grads(), cfg.ClipNorm)
			}
			c.Opt.Step(c.Model.Params(), c.Model.Grads())
		}
	}
	algo.EndRound(c, round)

	// Historical-model bookkeeping (Algorithm 1 line 4): remember what
	// this client is about to upload, and when.
	if c.Hist == nil {
		c.Hist = make([]float64, c.Model.NumParams())
	}
	copy(c.Hist, c.Model.Params())
	c.LastRound = round

	var meanLoss float64
	if batches > 0 {
		meanLoss = lossSum / float64(batches)
	}
	return Update{
		ClientID:   c.ID,
		Params:     c.Model.ParamsCopy(),
		NumSamples: len(c.Indices),
		TrainLoss:  meanLoss,
	}
}

// clipToNorm rescales g in place so ||g|| <= maxNorm.
func clipToNorm(g []float64, maxNorm float64) {
	n := tensor.Norm2(g)
	if n > maxNorm {
		tensor.Scale(maxNorm/n, g)
	}
}

// FullGrad computes the full-batch gradient of the client's empirical risk
// at the given parameters (used by FedDANE / MimeLite / SCAFFOLD-style
// methods). The model's parameters are restored afterwards. The cost — one
// forward+backward over all local data — lands on the client's FLOP
// counter, matching the n(FP+BP) term of Appendix A.
func (c *Client) FullGrad(at []float64) []float64 {
	saved := c.Model.ParamsCopy()
	c.Model.SetParams(at)
	grad := make([]float64, c.Model.NumParams())
	n := len(c.Indices)
	bs := c.cfg.BatchSize
	idx := make([]int, 0, bs)
	for start := 0; start < n; start += bs {
		end := start + bs
		if end > n {
			end = n
		}
		idx = append(idx[:0], c.Indices[start:end]...)
		c.ensureBatch(len(idx))
		c.cfg.Train.FillBatch(c.batchX, c.batchY, idx)
		logits := c.Model.Forward(c.batchX, false)
		nn.SoftmaxCrossEntropy(logits, c.batchY, c.dLogits)
		c.Model.ZeroGrad()
		c.Model.Backward(c.dLogits, nil)
		// SoftmaxCrossEntropy mean-reduces per batch; reweight so the sum
		// over batches is the mean over all n samples.
		tensor.Axpy(float64(len(idx))/float64(n), c.Model.Grads(), grad)
	}
	c.Model.SetParams(saved)
	return grad
}
