package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewHotPath returns the hotpath analyzer: functions annotated
// //fedtripvet:hotpath must stay allocation-free. The steady-state
// train->upload->aggregate->merge cycle is pinned at 0 allocs/op by the
// benchmarks; this analyzer catches the regressions at vet time, before
// a benchmark run, by rejecting the constructs that allocate on every
// call:
//
//   - fmt.* calls (interface boxing + formatting state),
//   - map construction (make(map...) or a map literal),
//   - append (growth is amortized away only for pooled, pre-sized
//     buffers — which is exactly what //fedtripvet:allow documents),
//   - closures capturing loop variables (the capture forces the
//     variable, and often the closure, onto the heap).
//
// The checks are intraprocedural and syntactic by design: they gate the
// annotated function's own body, while the alloc-counting benchmarks
// remain the end-to-end proof.
func NewHotPath() *Analyzer {
	a := &Analyzer{
		Name: "hotpath",
		Doc: "forbid allocating constructs in //fedtripvet:hotpath functions\n\n" +
			"No fmt calls, no map construction, no unannotated append, no\n" +
			"closures over loop variables. Escape hatch: //fedtripvet:allow\n" +
			"<reason> (e.g. a pooled buffer whose capacity is ensured, or a\n" +
			"cold error path).",
	}
	a.Run = func(pass *Pass) (any, error) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !isHotpath(fn) {
					continue
				}
				checkHotpathBody(pass, fn.Body)
			}
		}
		return nil, nil
	}
	return a
}

// checkHotpathBody walks one hot function's body, tracking the stack of
// enclosing loops so closures can be checked for loop-variable capture.
func checkHotpathBody(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	var loops []*loopHeader
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, &loopHeader{from: n.Pos(), to: n.Body.Pos(), end: n.End()})
		case *ast.RangeStmt:
			loops = append(loops, &loopHeader{from: n.Pos(), to: n.Body.Pos(), end: n.End()})
		case *ast.FuncLit:
			reportLoopCaptures(pass, n, liveLoops(loops, n.Pos()))
		case *ast.CompositeLit:
			if isMapType(info.TypeOf(n)) {
				pass.Reportf(n.Pos(), "map literal on the hot path allocates; hoist it out of the hot function")
			}
		case *ast.CallExpr:
			checkHotpathCall(pass, n)
		}
		return true
	})
}

// loopHeader records one enclosing loop: variables declared in
// [from, to) are its header variables; the loop's extent ends at end.
type loopHeader struct{ from, to, end token.Pos }

// liveLoops filters the loop stack to loops whose body still encloses
// pos (ast.Inspect has no post-order pop, so stale frames are filtered
// by extent instead).
func liveLoops(loops []*loopHeader, pos token.Pos) []*loopHeader {
	var live []*loopHeader
	for _, l := range loops {
		if pos >= l.to && pos < l.end {
			live = append(live, l)
		}
	}
	return live
}

// reportLoopCaptures reports identifiers inside the closure that
// resolve to variables declared in an enclosing loop's header.
func reportLoopCaptures(pass *Pass, fl *ast.FuncLit, loops []*loopHeader) {
	if len(loops) == 0 {
		return
	}
	reported := map[types.Object]bool{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || reported[obj] {
			return true
		}
		for _, l := range loops {
			if obj.Pos() >= l.from && obj.Pos() < l.to {
				reported[obj] = true
				pass.Reportf(fl.Pos(), "closure captures loop variable %s, forcing it to the heap on the hot path", obj.Name())
				return true
			}
		}
		return true
	})
}

// checkHotpathCall flags fmt calls, the append builtin, and map-typed
// make calls.
func checkHotpathCall(pass *Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if pn, ok := importedPkg(info, fun.X); ok && pn.Imported().Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s on the hot path allocates; move formatting off the hot path (or annotate a cold error path with //fedtripvet:allow <reason>)", fun.Sel.Name)
		}
	case *ast.Ident:
		b, ok := info.Uses[fun].(*types.Builtin)
		if !ok {
			return
		}
		switch b.Name() {
		case "append":
			pass.Reportf(call.Pos(), "append on the hot path may allocate; use a pooled, pre-sized buffer and annotate with //fedtripvet:allow <reason>")
		case "make":
			if isMapType(info.TypeOf(call)) {
				pass.Reportf(call.Pos(), "make(map) on the hot path allocates; hoist the map out of the hot function")
			}
		}
	}
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
