package core

import (
	"math"
	"testing"
)

// Regression for the Fig. 6 metric: FinalAccuracy must average only the
// rounds that were actually evaluated. The old implementation averaged
// Result.Accuracy directly, so EvalEvery gaps duplicated carried-forward
// values (and the pre-first-eval zeros) into the mean.
func TestFinalAccuracyAveragesEvaluatedRoundsOnly(t *testing.T) {
	cfg := testConfig(t, NewFedTrip(0.4))
	cfg.Rounds = 4
	cfg.EvalEvery = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Only rounds 2 and 4 evaluate; rounds 1 and 3 carry forward.
	want := (res.Accuracy[1] + res.Accuracy[3]) / 2
	if math.Abs(res.FinalAccuracy-want) > 1e-15 {
		t.Fatalf("FinalAccuracy %v, want mean of evaluated rounds %v", res.FinalAccuracy, want)
	}
	// The buggy value (mean over all entries incl. the carried round-1
	// zero) must not come back.
	var buggy float64
	for _, a := range res.Accuracy {
		buggy += a
	}
	buggy /= float64(len(res.Accuracy))
	if res.Accuracy[1] != res.Accuracy[3] && math.Abs(res.FinalAccuracy-buggy) < 1e-15 {
		t.Fatalf("FinalAccuracy %v still averages carried-forward duplicates", res.FinalAccuracy)
	}
}

// With EvalEvery=1 every round is evaluated, so the fixed metric must
// agree with the plain last-10 mean over Accuracy.
func TestFinalAccuracyDenseEvalUnchanged(t *testing.T) {
	cfg := testConfig(t, NewFedTrip(0.4))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lo := len(res.Accuracy) - 10
	if lo < 0 {
		lo = 0
	}
	var sum float64
	for _, a := range res.Accuracy[lo:] {
		sum += a
	}
	want := sum / float64(len(res.Accuracy)-lo)
	if math.Abs(res.FinalAccuracy-want) > 1e-15 {
		t.Fatalf("FinalAccuracy %v want %v", res.FinalAccuracy, want)
	}
}

// Misconfigured ClientsPerRound must surface as a validation error from
// NewServer/Run — never as an index-out-of-range panic during selection.
func TestClientsPerRoundGuard(t *testing.T) {
	cases := []struct {
		name    string
		k       int
		wantErr bool
	}{
		{"negative", -3, true},
		{"zero", 0, true},
		{"one", 1, false},
		{"full participation", 6, false},
		{"one over population", 7, true},
		{"far over population", 600, true},
	}
	for _, tc := range cases {
		cfg := testConfig(t, NewFedTrip(0.4))
		cfg.Rounds = 1
		cfg.ClientsPerRound = tc.k
		_, err := Run(cfg)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s (K=%d): err=%v wantErr=%v", tc.name, tc.k, err, tc.wantErr)
		}
	}
	// Defence in depth: even if the config is mutated after validation,
	// selection clamps to the population instead of panicking.
	s, err := NewServer(testConfig(t, NewFedTrip(0.4)))
	if err != nil {
		t.Fatal(err)
	}
	s.cfg.ClientsPerRound = 99
	sel := s.selectClients()
	if len(sel) != len(s.clients) {
		t.Fatalf("clamped selection %d want %d", len(sel), len(s.clients))
	}
}

// The three xi schedules under an irregular participation trace: a client
// that participates at rounds 1, 2, 5, 11 (gaps -, 1, 3, 6) and one that
// never participated before.
func TestXiSchedulesIrregularTrace(t *testing.T) {
	trace := []int{1, 2, 5, 11}
	type want struct{ inv, gap float64 }
	wants := []want{
		{0, 0},       // first participation: no history, xi = 0
		{1, 1},       // gap 1
		{1.0 / 3, 3}, // gap 3
		{1.0 / 6, 6}, // gap 6
	}
	inv := NewFedTrip(0.4)
	gap := NewFedTrip(0.4)
	gap.Mode = XiGap
	fixed := NewFedTrip(0.4)
	fixed.Mode = XiFixed
	fixed.FixedXi = 0.7
	last := 0
	for i, r := range trace {
		if got := inv.Xi(r, last); got != wants[i].inv {
			t.Errorf("inverse-gap round %d (last %d): xi %v want %v", r, last, got, wants[i].inv)
		}
		if got := gap.Xi(r, last); got != wants[i].gap {
			t.Errorf("gap round %d (last %d): xi %v want %v", r, last, got, wants[i].gap)
		}
		wantFixed := 0.7
		if last == 0 {
			wantFixed = 0 // no historical model: the term must vanish
		}
		if got := fixed.Xi(r, last); got != wantFixed {
			t.Errorf("fixed round %d (last %d): xi %v want %v", r, last, got, wantFixed)
		}
		last = r
	}
	// Never-participated clients see xi = 0 under every mode, at any round.
	for _, f := range []*FedTrip{inv, gap, fixed} {
		if got := f.Xi(1000, 0); got != 0 {
			t.Errorf("mode %v never-participated xi %v want 0", f.Mode, got)
		}
	}
	// Same-round redispatch (async can redispatch before an aggregation
	// completes): the gap clamps to 1 rather than exploding or zeroing.
	if got := inv.Xi(7, 7); got != 1 {
		t.Errorf("gap clamp inverse: %v want 1", got)
	}
	if got := gap.Xi(7, 7); got != 1 {
		t.Errorf("gap clamp gap-mode: %v want 1", got)
	}
}
