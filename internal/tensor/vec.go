package tensor

import "math"

// Flat-vector (BLAS-1 style) operations over []float64. These back the
// FL-level math: model aggregation, the FedProx/FedTrip/FedDyn gradient
// transforms, and the optimizers. All functions require equal lengths and
// panic otherwise — a length mismatch at this level is always a programming
// error in model plumbing, never a data condition.

func checkLen(n int, xs ...[]float64) {
	for _, x := range xs {
		if len(x) != n {
			panic("tensor: vector length mismatch")
		}
	}
}

// Axpy computes y += alpha * x.
func Axpy(alpha float64, x, y []float64) {
	checkLen(len(y), x)
	axpyKernel(y, x, alpha)
}

// Scale computes x *= alpha.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Dot returns x . y.
func Dot(x, y []float64) float64 {
	checkLen(len(x), y)
	if len(x) == 0 {
		return 0
	}
	return dotKernel(x, y)
}

// SumSq returns ||x||^2.
func SumSq(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return dotKernel(x, x)
}

// Norm2 returns ||x||.
func Norm2(x []float64) float64 { return math.Sqrt(SumSq(x)) }

// SubInto computes dst = a - b.
func SubInto(dst, a, b []float64) {
	checkLen(len(dst), a, b)
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// AddInto computes dst = a + b.
func AddInto(dst, a, b []float64) {
	checkLen(len(dst), a, b)
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// CopyInto copies src into dst.
func CopyInto(dst, src []float64) {
	checkLen(len(dst), src)
	copy(dst, src)
}

// ZeroVec sets every element to 0.
func ZeroVec(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// WeightedSumInto computes dst = sum_i weights[i] * vecs[i]. It is the
// server aggregation kernel (Eq. 2 of the paper). Weights need not sum to
// one here; the caller normalises.
func WeightedSumInto(dst []float64, weights []float64, vecs [][]float64) {
	if len(weights) != len(vecs) {
		panic("tensor: weights/vectors count mismatch")
	}
	ZeroVec(dst)
	for i, v := range vecs {
		checkLen(len(dst), v)
		if weights[i] == 0 {
			continue
		}
		axpyKernel(dst, v, weights[i])
	}
}

// DistSq returns ||a - b||^2 without allocating.
func DistSq(a, b []float64) float64 {
	checkLen(len(a), b)
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// MaxAbsDiff returns max_i |a[i]-b[i]|, used by tests for approximate
// equality of parameter vectors.
func MaxAbsDiff(a, b []float64) float64 {
	checkLen(len(a), b)
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// AllFinite reports whether every element is a finite number. The FL core
// uses it for failure injection tests and divergence detection.
func AllFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
