// Package tensor implements the dense numerical substrate for the library:
// row-major float64 tensors, goroutine-parallel matrix kernels, image
// layout transforms (im2col/col2im) for convolution, and flat-vector BLAS-1
// style operations used by the federated-learning layer (aggregation,
// regularization, optimizers).
//
// The package is deliberately free of any FL or neural-network concepts so
// it can be tested purely against math.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float64 tensor. Data may be shared between
// tensors (views); Reshape returns a view, Clone copies.
type Tensor struct {
	Data  []float64
	shape []int
}

// New allocates a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{Data: make([]float64, n), shape: append([]int(nil), shape...)}
}

// FromSlice wraps data in a tensor view with the given shape. The slice is
// not copied; len(data) must equal the shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d)", len(data), shape, n))
	}
	return &Tensor{Data: data, shape: append([]int(nil), shape...)}
}

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's dimensions. The returned slice must not be
// mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Numel returns the total number of elements.
func (t *Tensor) Numel() int { return len(t.Data) }

// Reshape returns a view of the same data with a new shape. The element
// count must be unchanged.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.Data), shape, n))
	}
	return &Tensor{Data: t.Data, shape: append([]int(nil), shape...)}
}

// SetDim0 resizes the leading dimension to n in place, reusing the
// existing backing array when its capacity suffices (growing reallocates).
// Element contents after a resize are unspecified — callers are expected
// to overwrite the tensor fully, which is why the batch-sized scratch
// buffers of the nn layers can ride through tail batches without
// reallocating. Must not be used on views that share Data with a tensor
// the caller still reads.
func (t *Tensor) SetDim0(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("tensor: SetDim0 size %d", n))
	}
	row := 1
	for _, d := range t.shape[1:] {
		row *= d
	}
	need := n * row
	if cap(t.Data) >= need {
		t.Data = t.Data[:need]
	} else {
		t.Data = make([]float64, need)
	}
	t.shape[0] = n
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// At returns the element at the given indices (rank must match).
func (t *Tensor) At(idx ...int) float64 {
	return t.Data[t.offset(idx)]
}

// Set stores v at the given indices.
func (t *Tensor) Set(v float64, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dim %d (size %d)", ix, i, t.shape[i]))
		}
		off = off*t.shape[i] + ix
	}
	return off
}

// SameShape reports whether two tensors have identical shapes.
func SameShape(a, b *Tensor) bool {
	if a.Rank() != b.Rank() {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// RandNormal fills the tensor with N(0, std^2) samples from rng.
func (t *Tensor) RandNormal(rng *rand.Rand, std float64) { //fedtripvet:allow rng is caller-supplied; runtime callers derive it from a registered stream
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
}

// RandUniform fills the tensor with U(lo, hi) samples from rng.
func (t *Tensor) RandUniform(rng *rand.Rand, lo, hi float64) { //fedtripvet:allow rng is caller-supplied; runtime callers derive it from a registered stream
	for i := range t.Data {
		t.Data[i] = lo + rng.Float64()*(hi-lo)
	}
}

// MaxAbs returns the largest absolute value in the tensor (0 for empty).
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// String renders a compact description, useful in test failures.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.shape)
}
