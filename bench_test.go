// Package repro's root benchmark harness: one testing.B benchmark per
// table and figure of the paper, each printing the reproduced rows.
//
//	go test -bench=. -benchmem                  # fast profile (~minutes)
//	go test -bench=. -short                     # tiny profile (smoke)
//	go test -bench=BenchmarkTable4 -benchmem    # a single artifact
//
// Benchmarks share the experiments package's run cache, so artifacts that
// reuse the same federated runs (Table IV / Table V / Fig. 5) only pay for
// them once per process.
package repro

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/nn"
	"repro/internal/partition"
)

var (
	benchMu     sync.Mutex
	benchTables = map[string]bool{} // ids already rendered this process
)

func benchProfile() experiments.Profile {
	if testing.Short() {
		return experiments.Tiny()
	}
	return experiments.Fast()
}

// benchExperiment runs one registered experiment. The first execution per
// process renders its tables to stdout — the bench harness is also the
// table generator.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	p := benchProfile()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(p, nil)
		if err != nil {
			b.Fatal(err)
		}
		benchMu.Lock()
		if !benchTables[id] {
			benchTables[id] = true
			fmt.Fprintf(os.Stdout, "\n")
			for _, t := range tables {
				t.Render(os.Stdout)
			}
		}
		benchMu.Unlock()
	}
}

// Table I: method families, information utilization vs resource cost.
func BenchmarkTable1MethodFamilies(b *testing.B) { benchExperiment(b, "table1") }

// Table II: dataset description.
func BenchmarkTable2DatasetStats(b *testing.B) { benchExperiment(b, "table2") }

// Table III: model communication/computation statistics.
func BenchmarkTable3ModelStats(b *testing.B) { benchExperiment(b, "table3") }

// Table IV: communication rounds until target accuracy (Dir-0.5, 4-of-10).
func BenchmarkTable4RoundsToTarget(b *testing.B) { benchExperiment(b, "table4") }

// Table V: GFLOPs until target accuracy.
func BenchmarkTable5GFLOPs(b *testing.B) { benchExperiment(b, "table5") }

// Table VI: rounds to target with 4-of-50 participation.
func BenchmarkTable6Scalability(b *testing.B) { benchExperiment(b, "table6") }

// Table VII: accuracy at rounds 10/20 with 5 and 10 local epochs.
func BenchmarkTable7LocalEpochs(b *testing.B) { benchExperiment(b, "table7") }

// Table VIII (Appendix A): analytic attaching cost per method.
func BenchmarkTable8AttachingCost(b *testing.B) { benchExperiment(b, "table8") }

// Fig. 2: representation separability (t-SNE + silhouette motivation).
func BenchmarkFig2TSNE(b *testing.B) { benchExperiment(b, "fig2") }

// Fig. 3: update-geometry mechanism (global-local divergence vs
// current-historical distance).
func BenchmarkFig3Mechanism(b *testing.B) { benchExperiment(b, "fig3") }

// Fig. 4: client label distributions under the four heterogeneity types.
func BenchmarkFig4LabelDistributions(b *testing.B) { benchExperiment(b, "fig4") }

// Fig. 5: convergence curves of the CNN across datasets and schemes.
func BenchmarkFig5ConvergenceCurves(b *testing.B) { benchExperiment(b, "fig5") }

// Fig. 6: final-accuracy boxplots on FMNIST.
func BenchmarkFig6FinalAccuracyBox(b *testing.B) { benchExperiment(b, "fig6") }

// Fig. 7: FedTrip mu sensitivity.
func BenchmarkFig7MuSensitivity(b *testing.B) { benchExperiment(b, "fig7") }

// Theorem 1: empirical E[xi] vs the closed form p*ln(p)/(p-1).
func BenchmarkTheoryXi(b *testing.B) { benchExperiment(b, "theory-xi") }

// Theorem 1: decrease coefficient rho from measured smoothness (L) and
// gradient-dissimilarity (B) constants.
func BenchmarkTheoryRho(b *testing.B) { benchExperiment(b, "theory-rho") }

// Extension: FedTrip with a quantized uplink (rounds x bytes compose).
func BenchmarkExtQuantizedUplink(b *testing.B) { benchExperiment(b, "ext-quant") }

// Ablation: xi schedule (inverse-gap vs gap vs fixed).
func BenchmarkAblationXi(b *testing.B) { benchExperiment(b, "abl-xi") }

// Ablation: triplet terms in isolation.
func BenchmarkAblationHistoryOnly(b *testing.B) { benchExperiment(b, "abl-hist") }

// Ablation: appendix methods (SCAFFOLD/FedDANE/MimeLite) resource costs.
func BenchmarkAblationAppendixMethods(b *testing.B) { benchExperiment(b, "abl-extra") }

// Time to accuracy under stragglers: barrier vs FedBuff vs FedAsync
// aggregation policies through the unified RunSpec facade.
func BenchmarkTimeToAccuracy(b *testing.B) { benchExperiment(b, "tta") }

// --- Runtime throughput: synchronous vs asynchronous ---
//
// Both benchmarks meter client updates per second of real wall-clock time
// (the simulated latency clock is free). Run with -cpu 1,2,4,8 to see how
// each runtime scales with GOMAXPROCS: the async event loop keeps
// Concurrency clients training in their own goroutines, so its
// updates/sec grows with cores until Concurrency saturates.

// benchRuntimeConfig is a small-but-real FL setup: 16 clients, MLP,
// MNIST-like data.
func benchRuntimeConfig(b *testing.B) core.Config {
	b.Helper()
	const clients, perClient = 16, 40
	train, test, err := data.Generate(data.Spec{
		Kind: data.KindMNIST, Train: clients * perClient, Test: 100, Seed: 61,
	})
	if err != nil {
		b.Fatal(err)
	}
	parts, err := partition.Partition(partition.Dirichlet(0.5), train.Y,
		train.Classes, clients, perClient, rand.New(rand.NewSource(62)))
	if err != nil {
		b.Fatal(err)
	}
	return core.Config{
		Model: nn.ModelSpec{
			Arch: nn.ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10,
		},
		Train: train, Test: test, Parts: parts,
		Rounds: 4, ClientsPerRound: 8,
		BatchSize: 20, LocalEpochs: 1,
		LR: 0.01, Momentum: 0.9,
		Algo: core.NewFedTrip(0.4), Seed: 63,
		EvalEvery: 100, // meter training throughput, not evaluation
	}
}

// BenchmarkSyncRuntimeThroughput: lock-step rounds, clients trained
// concurrently within each round, full barrier between rounds.
func BenchmarkSyncRuntimeThroughput(b *testing.B) {
	cfg := benchRuntimeConfig(b)
	b.ReportAllocs()
	b.ResetTimer()
	updates := 0
	for i := 0; i < b.N; i++ {
		c := cfg
		c.Algo = core.NewFedTrip(0.4)
		res, err := core.Run(c)
		if err != nil {
			b.Fatal(err)
		}
		updates += res.Rounds * c.ClientsPerRound
	}
	b.ReportMetric(float64(updates)/b.Elapsed().Seconds(), "updates/sec")
}

// BenchmarkAsyncRuntimeThroughput: buffered async, 8 clients always in
// flight, aggregate every 4 arrivals — no inter-round barrier, so idle
// cores pick up the next dispatch immediately.
func BenchmarkAsyncRuntimeThroughput(b *testing.B) {
	cfg := benchRuntimeConfig(b)
	b.ReportAllocs()
	b.ResetTimer()
	updates := 0
	for i := 0; i < b.N; i++ {
		c := core.AsyncConfig{
			Config:      cfg,
			Concurrency: 8,
			BufferSize:  4,
			Latency:     core.UniformLatency{Min: 1, Max: 3},
		}
		c.Algo = core.NewFedTrip(0.4)
		res, err := core.RunAsync(c)
		if err != nil {
			b.Fatal(err)
		}
		updates += res.Rounds * c.BufferSize
	}
	b.ReportMetric(float64(updates)/b.Elapsed().Seconds(), "updates/sec")
}

// --- Population scale: 1k and 10k clients ---
//
// These benchmarks are the CI perf trajectory (BENCH_3.json tracks
// their ns/op and allocs/op per PR, and cmd/benchdiff reports the delta
// against the previous artifact). Clients hold 6 samples each; the
// quarter-width MLP keeps per-shard engines small so the numbers measure
// the runtime — registry, heap event loop, dispatch, engine pool — rather
// than raw matmul throughput. Evaluation is disabled (EvalEvery past the
// horizon) for the same reason.

// benchPopulationConfig builds the fleet. Setup (data synthesis and
// partitioning) runs outside the timer.
func benchPopulationConfig(b *testing.B, clients int) core.Config {
	b.Helper()
	const perClient = 6
	train, test, err := data.Generate(data.Spec{
		Kind: data.KindMNIST, Train: clients * perClient, Test: 100, Seed: 81,
	})
	if err != nil {
		b.Fatal(err)
	}
	parts, err := partition.Partition(partition.IID(), train.Y,
		train.Classes, clients, perClient, rand.New(rand.NewSource(82)))
	if err != nil {
		b.Fatal(err)
	}
	return core.Config{
		Model: nn.ModelSpec{
			Arch: nn.ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10, Scale: 0.25,
		},
		Train: train, Test: test, Parts: parts,
		Rounds: 4, ClientsPerRound: 32,
		BatchSize: perClient, LocalEpochs: 1,
		LR: 0.01, Momentum: 0.9,
		Algo: core.NewFedTrip(0.4), Seed: 83,
		EvalEvery: 1 << 20,
	}
}

func benchSyncPopulation(b *testing.B, clients int) {
	cfg := benchPopulationConfig(b, clients)
	b.ReportAllocs()
	b.ResetTimer()
	updates := 0
	for i := 0; i < b.N; i++ {
		c := cfg
		c.Algo = core.NewFedTrip(0.4)
		res, err := core.Run(c)
		if err != nil {
			b.Fatal(err)
		}
		updates += res.Rounds * c.ClientsPerRound
	}
	b.ReportMetric(float64(updates)/b.Elapsed().Seconds(), "updates/sec")
}

func benchAsyncPopulation(b *testing.B, clients int) {
	cfg := benchPopulationConfig(b, clients)
	b.ReportAllocs()
	b.ResetTimer()
	updates := 0
	for i := 0; i < b.N; i++ {
		c := core.AsyncConfig{
			Config:      cfg,
			Concurrency: 128,
			BufferSize:  32,
			Latency:     core.StragglerLatency{Fast: 1, Slow: 10, SlowEvery: 7},
		}
		c.Algo = core.NewFedTrip(0.4)
		res, err := core.RunAsync(c)
		if err != nil {
			b.Fatal(err)
		}
		updates += res.Rounds * c.BufferSize
	}
	b.ReportMetric(float64(updates)/b.Elapsed().Seconds(), "updates/sec")
}

func BenchmarkSync1kClients(b *testing.B)   { benchSyncPopulation(b, 1_000) }
func BenchmarkAsync1kClients(b *testing.B)  { benchAsyncPopulation(b, 1_000) }
func BenchmarkSync10kClients(b *testing.B)  { benchSyncPopulation(b, 10_000) }
func BenchmarkAsync10kClients(b *testing.B) { benchAsyncPopulation(b, 10_000) }

// BenchmarkAsyncChurn1k measures the device-heterogeneity event loop at
// 1k-client scale: lognormal FLOP-coupled device speeds (arrivals priced
// by metered FLOPs, joined at dispatch), adaptive local steps, Markov
// availability churn, and the max-staleness admission cutoff — the full
// hetero scenario machinery on top of the buffered runtime.
func BenchmarkAsyncChurn1k(b *testing.B) {
	cfg := benchPopulationConfig(b, 1_000)
	b.ReportAllocs()
	b.ResetTimer()
	updates := 0
	for i := 0; i < b.N; i++ {
		spec := core.RunSpec{
			Config:             cfg,
			Runtime:            core.RuntimeAsync,
			Concurrency:        128,
			BufferSize:         32,
			Devices:            core.LognormalDevices{Mu: 0, Sigma: 0.6},
			FlopRate:           1e6,
			AdaptiveLocalSteps: true,
			Churn:              &core.ChurnModel{MeanUp: 30, MeanDown: 3},
			Policy:             core.WithMaxStaleness(&core.FedBuffPolicy{}, 8),
		}
		spec.Algo = core.NewFedTrip(0.4)
		res, err := core.Start(spec)
		if err != nil {
			b.Fatal(err)
		}
		updates += res.Rounds * 32
	}
	b.ReportMetric(float64(updates)/b.Elapsed().Seconds(), "updates/sec")
}

// BenchmarkAsyncFedAsync1k measures the FedAsync single-arrival path
// (aggregation policy BufferSize=1 with mixing-rate merges) at 1k-client
// scale through the unified RunSpec facade. The round budget is scaled so
// the run processes the same 128 client updates as the buffered
// benchmark's 4 aggregations of 32 — the numbers meter the per-merge
// overhead of merging on every arrival.
func BenchmarkAsyncFedAsync1k(b *testing.B) {
	cfg := benchPopulationConfig(b, 1_000)
	cfg.Rounds = 128
	b.ReportAllocs()
	b.ResetTimer()
	updates := 0
	for i := 0; i < b.N; i++ {
		spec := core.RunSpec{
			Config:      cfg,
			Runtime:     core.RuntimeAsync,
			Concurrency: 128,
			Latency:     core.StragglerLatency{Fast: 1, Slow: 10, SlowEvery: 7},
			Policy:      &core.FedAsyncPolicy{Alpha: 0.6},
		}
		spec.Algo = core.NewFedTrip(0.4)
		res, err := core.Start(spec)
		if err != nil {
			b.Fatal(err)
		}
		updates += res.Rounds // one merged update per aggregation
	}
	b.ReportMetric(float64(updates)/b.Elapsed().Seconds(), "updates/sec")
}

// BenchmarkRobustMerge1k measures the robust aggregation path at
// 1k-client scale: a 20% sign-flipping / 5% crashing fleet merged with
// the coordinate-wise median (in-place heapsort over the per-coordinate
// column, non-finite screen in front). The CI perf trajectory gates this
// benchmark's allocs/op — the robust estimators must stay on the pooled,
// allocation-free merge path.
func BenchmarkRobustMerge1k(b *testing.B) {
	cfg := benchPopulationConfig(b, 1_000)
	faults, err := core.ParseFaults("byz:0.2,signflip+crash:0.05")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	updates := 0
	for i := 0; i < b.N; i++ {
		spec := core.RunSpec{
			Config:      cfg,
			Runtime:     core.RuntimeAsync,
			Concurrency: 128,
			BufferSize:  32,
			Latency:     core.StragglerLatency{Fast: 1, Slow: 10, SlowEvery: 7},
			Policy:      &core.MedianPolicy{},
			Faults:      faults,
		}
		spec.Algo = core.NewFedTrip(0.4)
		res, err := core.Start(spec)
		if err != nil {
			b.Fatal(err)
		}
		updates += res.Rounds * 32
	}
	b.ReportMetric(float64(updates)/b.Elapsed().Seconds(), "updates/sec")
}

// --- Population scale: 100k and 1M clients ---
//
// The scale trajectory: clients share a small sample pool (overlapping
// indices), so the dataset stays tiny while the runtime's per-client
// machinery — registry, heap slot map, aggregate churn, stateless
// device/latency derivation — runs at full population width. Fleet
// construction happens outside the timer; the metered section is the
// event loop. Two metrics ride into the CI artifact:
//
//	events/s   dispatch+arrival events processed per wall-clock second
//	           (higher is better; benchdiff knows the direction)
//	B/client   the runtime's deterministic per-client bookkeeping bytes
//	           (core.PerClientStateBytes — gated next to allocs/op)

func benchScaleSpec(b *testing.B, clients int) core.RunSpec {
	b.Helper()
	const perClient, pool = 4, 2000
	train, test, err := data.Generate(data.Spec{
		Kind: data.KindMNIST, Train: pool, Test: 100, Seed: 91,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(92))
	parts := make([][]int, clients)
	flat := make([]int, clients*perClient)
	for i := range parts {
		p := flat[i*perClient : (i+1)*perClient : (i+1)*perClient]
		for k := range p {
			p[k] = rng.Intn(pool)
		}
		parts[i] = p
	}
	return core.RunSpec{
		Config: core.Config{
			Model: nn.ModelSpec{
				Arch: nn.ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10, Scale: 0.25,
			},
			Train: train, Test: test, Parts: parts,
			Rounds: 6, ClientsPerRound: 32,
			BatchSize: perClient, LocalEpochs: 1,
			LR: 0.01, Momentum: 0.9,
			Algo: core.NewFedTrip(0.4), Seed: 93,
			EvalEvery: 1 << 20,
		},
		Runtime:     core.RuntimeAsync,
		Concurrency: 256,
		BufferSize:  64,
		Latency:     core.StragglerLatency{Fast: 1, Slow: 10, SlowEvery: 7},
		Churn:       &core.ChurnModel{MeanUp: 400, MeanDown: 40},
	}
}

func benchScalePopulation(b *testing.B, clients int) {
	b.ReportAllocs()
	b.ResetTimer()
	var events int64
	var perClientBytes float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		spec := benchScaleSpec(b, clients)
		a, err := core.NewAsyncServerSpec(spec)
		if err != nil {
			b.Fatal(err)
		}
		perClientBytes = a.PerClientStateBytes()
		b.StartTimer()
		if _, err := a.Run(); err != nil {
			b.Fatal(err)
		}
		_, dispatches := a.Participation()
		events += 2 * dispatches // each dispatch and its arrival
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(perClientBytes, "B/client")
}

func BenchmarkAsync100kClients(b *testing.B) { benchScalePopulation(b, 100_000) }
func BenchmarkAsync1MClients(b *testing.B)   { benchScalePopulation(b, 1_000_000) }
