package core

import (
	"fmt"

	"repro/internal/tensor"
)

// XiMode selects how FedTrip derives the staleness coefficient xi from the
// participation gap (current round minus the client's last participating
// round).
//
// The paper's §IV.B says xi "is set as the interval between the current
// round and the last round of participating in training", while the
// convergence analysis (Theorem 1) requires xi in (0,1] with
// E[xi] = p*ln(p)/(p-1) — which is exactly E[1/gap] for geometric gaps
// under participation rate p, and matches §V.D's observation that E[xi]
// shrinks when participation drops (4-of-50). XiInverseGap therefore
// reproduces the paper's analysis and is the default; XiGap implements the
// literal §IV.B reading and XiFixed supports the ablation benchmarks.
type XiMode int

const (
	// XiInverseGap sets xi = 1/gap (default; matches the convergence
	// analysis and the scalability discussion).
	XiInverseGap XiMode = iota
	// XiGap sets xi = gap (the literal reading of §IV.B).
	XiGap
	// XiFixed sets xi = FixedXi regardless of staleness.
	XiFixed
)

func (m XiMode) String() string {
	switch m {
	case XiInverseGap:
		return "inverse-gap"
	case XiGap:
		return "gap"
	case XiFixed:
		return "fixed"
	}
	return fmt.Sprintf("XiMode(%d)", int(m))
}

// FedTrip is the paper's contribution: triplet model regularization. The
// local loss becomes
//
//	L = F(w) + mu/2 * ( ||w - w_global||^2 - xi * ||w - w_hist||^2 )
//
// so each mini-batch gradient picks up the attaching term
//
//	mu * ( (w - w_global) + xi * (w_hist - w) )        (Algorithm 1, line 7)
//
// pulling the local model toward the global model (update consistency)
// while pushing it away from the client's previous upload (parameter-space
// exploration). The attaching cost is 4|w| FLOPs per iteration and there
// is no extra communication.
type FedTrip struct {
	Base
	// Mu is the regularization strength (paper: 1.0 for MLP, 0.4 others).
	Mu float64
	// Mode selects the xi schedule (default XiInverseGap).
	Mode XiMode
	// FixedXi is the xi value under XiFixed.
	FixedXi float64
	// GlobalWeight and HistWeight scale the two regularization terms for
	// the ablation benchmarks; both default to 1 (NewFedTrip sets them).
	GlobalWeight, HistWeight float64
}

// NewFedTrip returns FedTrip with the paper's xi schedule.
func NewFedTrip(mu float64) *FedTrip {
	return &FedTrip{Mu: mu, Mode: XiInverseGap, GlobalWeight: 1, HistWeight: 1}
}

// Name implements Algorithm.
func (f *FedTrip) Name() string { return "fedtrip" }

// Xi computes the staleness coefficient for a client participating at
// round, whose previous participation was lastRound (0 if never).
func (f *FedTrip) Xi(round, lastRound int) float64 {
	if lastRound <= 0 {
		return 0 // no historical model yet: term vanishes
	}
	gap := round - lastRound
	if gap < 1 {
		gap = 1
	}
	switch f.Mode {
	case XiGap:
		return float64(gap)
	case XiFixed:
		return f.FixedXi
	default:
		return 1 / float64(gap)
	}
}

// BeginRound snapshots the received global model and fixes xi for the
// round.
func (f *FedTrip) BeginRound(c *Client, round int, global []float64) {
	g := c.RoundVec("fedtrip.global")
	copy(g, global)
	c.SetScalar("fedtrip.xi", f.Xi(round, c.LastRound))
}

// TransformGrad applies Algorithm 1 line 7. Cost: 4|w| FLOPs (two
// subtractions, two scaled accumulations), metered on the client.
func (f *FedTrip) TransformGrad(c *Client, round int, w, g []float64) {
	global := c.RoundVec("fedtrip.global")
	xi := c.Scalar("fedtrip.xi") * f.HistWeight
	mu := f.Mu
	gw := f.GlobalWeight
	hist := c.Hist
	if hist == nil || xi == 0 {
		// First participation (or ablated history term): pure proximal
		// pull, like FedProx.
		for i := range g {
			g[i] += mu * gw * (w[i] - global[i])
		}
		c.Counter.Add(int64(2 * len(w)))
		return
	}
	for i := range g {
		g[i] += mu * (gw*(w[i]-global[i]) + xi*(hist[i]-w[i]))
	}
	c.Counter.Add(int64(4 * len(w)))
}

// TripletLoss evaluates the regularization value mu/2*(||w-wg||^2 -
// xi*||w-wh||^2) — used by tests to confirm TransformGrad is its exact
// gradient.
func (f *FedTrip) TripletLoss(w, global, hist []float64, xi float64) float64 {
	v := f.GlobalWeight * tensor.DistSq(w, global)
	if hist != nil {
		v -= xi * f.HistWeight * tensor.DistSq(w, hist)
	}
	return f.Mu / 2 * v
}
