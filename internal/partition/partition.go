// Package partition assigns training samples to federated clients under
// the paper's three data-heterogeneity regimes (§V.A, Fig. 4): IID,
// label-skewed Dirichlet(alpha), and orthogonal class clusters.
//
// A partition is a [][]int: for each client, the indices of its samples in
// the training set. Partitioning is deterministic given the rng.
package partition

import (
	"fmt"
	"math"
)

// Rand is the random source a partition draws from. Both *math/rand.Rand
// (caller-owned, as the examples and CLIs construct) and *prng.Rand
// (derived, named seed streams — what the experiment harnesses use)
// satisfy it, so partitioning stays deterministic given the rng without
// this package deciding where randomness comes from.
type Rand interface {
	Perm(n int) []int
	Shuffle(n int, swap func(i, j int))
	Intn(n int) int
	Float64() float64
	NormFloat64() float64
}

// Scheme names a partitioning regime.
type Scheme struct {
	// Name is one of "iid", "dirichlet", "orthogonal".
	Name string
	// Alpha is the Dirichlet concentration (dirichlet only). The paper
	// uses 0.1 ("Dir-0.1") and 0.5 ("Dir-0.5").
	Alpha float64
	// Clusters is the orthogonal cluster count (orthogonal only). The
	// paper uses 5 ("Orthogonal-5") and 10 ("Orthogonal-10").
	Clusters int
}

// String renders the paper's name for the scheme ("Dir-0.5" etc.).
func (s Scheme) String() string {
	switch s.Name {
	case "dirichlet":
		return fmt.Sprintf("Dir-%g", s.Alpha)
	case "orthogonal":
		return fmt.Sprintf("Orthogonal-%d", s.Clusters)
	default:
		return "IID"
	}
}

// IID returns the scheme with uniformly random assignment.
func IID() Scheme { return Scheme{Name: "iid"} }

// Dirichlet returns the label-skew scheme with concentration alpha.
func Dirichlet(alpha float64) Scheme { return Scheme{Name: "dirichlet", Alpha: alpha} }

// Orthogonal returns the clustered scheme with k clusters.
func Orthogonal(k int) Scheme { return Scheme{Name: "orthogonal", Clusters: k} }

// Partition splits sample indices among clients. labels are the training
// labels, classes the number of classes, perClient the number of samples
// each client receives. Sampling is without replacement; the scheme
// degrades gracefully when a class pool runs dry by renormalising over the
// remaining classes.
func Partition(s Scheme, labels []int, classes, clients, perClient int, rng Rand) ([][]int, error) {
	if clients <= 0 || perClient <= 0 {
		return nil, fmt.Errorf("partition: need positive clients (%d) and perClient (%d)", clients, perClient)
	}
	if clients*perClient > len(labels) {
		return nil, fmt.Errorf("partition: %d clients x %d samples exceeds dataset size %d", clients, perClient, len(labels))
	}
	switch s.Name {
	case "iid":
		return iid(labels, clients, perClient, rng), nil
	case "dirichlet":
		if s.Alpha <= 0 {
			return nil, fmt.Errorf("partition: dirichlet alpha %v must be positive", s.Alpha)
		}
		return dirichlet(labels, classes, clients, perClient, s.Alpha, rng), nil
	case "orthogonal":
		if s.Clusters <= 0 || s.Clusters > clients {
			return nil, fmt.Errorf("partition: clusters %d must be in [1,%d]", s.Clusters, clients)
		}
		if s.Clusters > classes {
			return nil, fmt.Errorf("partition: %d clusters for %d classes", s.Clusters, classes)
		}
		return orthogonal(labels, classes, clients, perClient, s.Clusters, rng), nil
	}
	return nil, fmt.Errorf("partition: unknown scheme %q", s.Name)
}

func iid(labels []int, clients, perClient int, rng Rand) [][]int {
	perm := rng.Perm(len(labels))
	parts := make([][]int, clients)
	for k := range parts {
		parts[k] = append([]int(nil), perm[k*perClient:(k+1)*perClient]...)
	}
	return parts
}

// classPools groups sample indices by label, each pool shuffled.
func classPools(labels []int, classes int, rng Rand) [][]int {
	pools := make([][]int, classes)
	for i, y := range labels {
		pools[y] = append(pools[y], i)
	}
	for _, p := range pools {
		rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	}
	return pools
}

func dirichlet(labels []int, classes, clients, perClient int, alpha float64, rng Rand) [][]int {
	pools := classPools(labels, classes, rng)
	parts := make([][]int, clients)
	for k := 0; k < clients; k++ {
		probs := dirichletVector(rng, classes, alpha)
		part := make([]int, 0, perClient)
		for len(part) < perClient {
			// Renormalise over classes that still have samples.
			var total float64
			for c, p := range pools {
				if len(p) > 0 {
					total += probs[c]
				}
			}
			if total == 0 {
				// This client's preferred classes are exhausted: fall
				// back to uniform over non-empty pools.
				for c := range probs {
					if len(pools[c]) > 0 {
						probs[c] = 1
						total++
					}
				}
				if total == 0 {
					break // dataset fully consumed (guarded by caller)
				}
			}
			u := rng.Float64() * total
			var acc float64
			for c, p := range pools {
				if len(p) == 0 {
					continue
				}
				acc += probs[c]
				if u <= acc {
					part = append(part, p[len(p)-1])
					pools[c] = p[:len(p)-1]
					break
				}
			}
		}
		parts[k] = part
	}
	return parts
}

// dirichletVector draws p ~ Dir(alpha, ..., alpha) via normalised Gamma
// samples.
func dirichletVector(rng Rand, n int, alpha float64) []float64 {
	p := make([]float64, n)
	var sum float64
	for i := range p {
		p[i] = gammaSample(rng, alpha)
		sum += p[i]
	}
	if sum == 0 {
		// Numerically possible for very small alpha: put all mass on one
		// random class, which is the alpha->0 limit anyway.
		p[rng.Intn(n)] = 1
		return p
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// gammaSample draws Gamma(shape=a, scale=1) using Marsaglia-Tsang, with
// the standard boosting trick for a < 1.
func gammaSample(rng Rand, a float64) float64 {
	if a < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, a+1) * math.Pow(u, 1/a)
	}
	d := a - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// orthogonal partitions clients into clusters with disjoint class sets
// (classes distributed round-robin over clusters); within a cluster,
// clients sample IID from the cluster's classes.
func orthogonal(labels []int, classes, clients, perClient, clusters int, rng Rand) [][]int {
	pools := classPools(labels, classes, rng)
	clusterClasses := make([][]int, clusters)
	for c := 0; c < classes; c++ {
		g := c % clusters
		clusterClasses[g] = append(clusterClasses[g], c)
	}
	parts := make([][]int, clients)
	for k := 0; k < clients; k++ {
		own := clusterClasses[k%clusters]
		part := make([]int, 0, perClient)
		for len(part) < perClient {
			// Uniform over the cluster's non-empty classes.
			nonEmpty := own[:0:0]
			for _, c := range own {
				if len(pools[c]) > 0 {
					nonEmpty = append(nonEmpty, c)
				}
			}
			if len(nonEmpty) == 0 {
				// Cluster exhausted: borrow uniformly from any class so
				// every client still gets perClient samples.
				for c := range pools {
					if len(pools[c]) > 0 {
						nonEmpty = append(nonEmpty, c)
					}
				}
				if len(nonEmpty) == 0 {
					break
				}
			}
			c := nonEmpty[rng.Intn(len(nonEmpty))]
			p := pools[c]
			part = append(part, p[len(p)-1])
			pools[c] = p[:len(p)-1]
		}
		parts[k] = part
	}
	return parts
}

// LabelCounts computes the client x class count matrix used for the
// paper's Fig. 4 label-distribution plots.
func LabelCounts(parts [][]int, labels []int, classes int) [][]int {
	m := make([][]int, len(parts))
	for k, part := range parts {
		row := make([]int, classes)
		for _, i := range part {
			row[labels[i]]++
		}
		m[k] = row
	}
	return m
}

// EffectiveClasses returns, per client, how many classes have at least one
// sample — the summary statistic the paper quotes ("most clients contain
// 1 or 2 classes under Dir-0.1").
func EffectiveClasses(counts [][]int) []int {
	out := make([]int, len(counts))
	for k, row := range counts {
		n := 0
		for _, c := range row {
			if c > 0 {
				n++
			}
		}
		out[k] = n
	}
	return out
}
