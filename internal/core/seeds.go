package core

import "repro/internal/prng"

// Named seed streams. One run seed (Config.Seed) fans out into many
// independent PRNG streams — selection, latency, per-client shuffling,
// per-shard engine construction, device sampling, churn — and before this
// registry existed each stream's seed was an ad-hoc magic offset scattered
// across the runtime (seed+99991 for latency, seed+1000+k for clients,
// seed+500000+w for engines, seed+700000/+800000 for devices/churn).
// Offsets compose badly: they collide silently as streams are added, and
// nothing names what a stream is for. Every stream now derives its seed by
// mixing the run seed with a name hash (and an index for per-entity
// streams) through the splitmix64 finalizer, so streams are independent by
// construction, collisions are cryptographically unlikely (pinned by
// TestSeedStreamsCollisionFree), and the set of streams a run consumes is
// this one const block.
//
// Changing a stream's name changes its seed and therefore every
// trajectory downstream of it — treat the names as part of the
// deterministic-run contract, like the snapshot format version.
const (
	// streamSelection drives client selection (the sync server's
	// permutation draw and the async dispatcher's idle pick).
	streamSelection = "selection"
	// streamLatency draws dispatch durations in the async runtimes.
	streamLatency = "latency"
	// streamClient/k is client k's private stream: mini-batch shuffling
	// and method-specific sampling. Keyed to the client, not the worker
	// that trains it, which is why trajectories do not depend on the
	// shard count.
	streamClient = "client"
	// streamEngine/w builds shard worker w's engine (initial model
	// parameters — always overwritten before use).
	streamEngine = "engine"
	// streamLoaner builds the server's shared loaner engine.
	streamLoaner = "loaner"
	// streamScratch/0 derives an engine's scratch-model seed stream from
	// the engine's own seed (second-level derivation).
	streamScratch = "scratch"
	// streamModel initialises the global model (and the eval-model
	// instances, which never contribute — their parameters are overwritten
	// before every use).
	streamModel = "model"
	// streamDevice samples per-client compute-speed multipliers.
	streamDevice = "device"
	// streamChurn drives the fleet availability process.
	streamChurn = "churn"
	// streamNet samples per-client network profiles (bandwidth, RTT).
	streamNet = "net"
	// streamAdversary samples per-client fault assignments (adversary.go),
	// in client-ID order. Dedicated stream: enabling fault injection draws
	// nothing from any other stream, so a zero-fraction fault model leaves
	// the trajectory bit-for-bit identical to a run with no faults at all.
	streamAdversary = "adversary"
	// streamAdvNoise/k is Byzantine client k's private Gaussian-noise
	// stream (the "noise" fault mode). Keyed to the client, like
	// streamClient, so corrupted uploads do not depend on shard
	// scheduling; its position serializes through FTRS snapshots.
	streamAdvNoise = "adversary/noise"
)

// streamSeed derives the seed of stream (name, k) under the given run
// seed via prng.StreamSeed — the shared splitmix64 derivation rule (two
// mixing rounds separate the (name, k) space from the run-seed space, so
// structured inputs still land uniformly in 64 bits). The name parameter
// is forwarded verbatim, so these trampolines are the one place in this
// package allowed to pass a non-constant stream name.
func streamSeed(runSeed int64, name string, k int) int64 {
	return prng.StreamSeed(runSeed, name, k) //fedtripvet:allow registry trampoline: name is the caller's registered constant
}

// seedStream returns a fresh PRNG positioned at the start of the named
// (unindexed) stream.
func seedStream(runSeed int64, name string) *prng.Rand {
	return prng.New(streamSeed(runSeed, name, 0)) //fedtripvet:allow registry trampoline: name is the caller's registered constant
}

// seedStreamN returns a fresh PRNG for the k-th instance of an indexed
// stream (per-client, per-shard).
func seedStreamN(runSeed int64, name string, k int) *prng.Rand {
	return prng.New(streamSeed(runSeed, name, k)) //fedtripvet:allow registry trampoline: name is the caller's registered constant
}
