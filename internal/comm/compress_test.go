package comm

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/tensor"
)

// TestParseTransportAccepts covers every accepted spec form and its
// canonical rendering.
func TestParseTransportAccepts(t *testing.T) {
	cases := []struct {
		spec string
		want string // canonical String(); "" means nil transport
	}{
		{"", ""},
		{"none", ""},
		{"f32", "f32"},
		{"lossless", "lossless"},
		{"q8", "q8"},
		{"q1", "q1"},
		{"q16", "q16"},
		{"q8+ef", "q8+ef"},
		{"topk:0.01", "topk:0.01"},
		{"topk:0.010", "topk:0.01"}, // ratio normalizes
		{"topk:1", "topk:1"},
		{"topk:0.01+ef", "topk:0.01+ef"},
		{"randk:0.05", "randk:0.05"},
		{"randk:0.05+ef", "randk:0.05+ef"},
	}
	for _, c := range cases {
		tr, err := ParseTransport(c.spec)
		if err != nil {
			t.Fatalf("ParseTransport(%q): %v", c.spec, err)
		}
		if c.want == "" {
			if tr != nil {
				t.Fatalf("ParseTransport(%q) = %v, want nil", c.spec, tr)
			}
			continue
		}
		str, ok := tr.(fmt.Stringer)
		if !ok {
			t.Fatalf("ParseTransport(%q) transport has no String()", c.spec)
		}
		if got := str.String(); got != c.want {
			t.Fatalf("ParseTransport(%q).String() = %q, want %q", c.spec, got, c.want)
		}
		// Every parsed transport must report per-transfer sizes so the
		// network model can price it.
		if _, ok := tr.(core.SizedTransport); !ok {
			t.Fatalf("ParseTransport(%q) transport is not SizedTransport", c.spec)
		}
	}
}

// TestParseTransportRejects covers malformed specs and the exact error
// vocabulary.
func TestParseTransportRejects(t *testing.T) {
	cases := []struct {
		spec    string
		errPart string
	}{
		{"ef", "ef is a modifier"},
		{"ef+topk:0.01", "ef is a modifier"}, // composition order matters
		{"q8+ef+ef", "duplicate ef"},
		{"topk:0.01+q8", "only one base"},
		{"q8+topk", "only one base"},
		{"f32+ef", "requires a lossy compressor"},
		{"lossless+ef", "requires a lossy compressor"},
		{"none+ef", "unknown base"},
		{"q8+", "empty segment"},
		{"+ef", "empty segment"},
		{"q0", "outside [1,16]"},
		{"q17", "outside [1,16]"},
		{"qx", "unknown base"},
		{"q8:3", "unknown base"},
		{"topk", "wants a keep ratio"},
		{"topk:", "wants a keep ratio"},
		{"topk:abc", "wants a keep ratio"},
		{"topk:0", "outside (0,1]"},
		{"topk:1.5", "outside (0,1]"},
		{"topk:-0.1", "outside (0,1]"},
		{"randk:0", "outside (0,1]"},
		{"randk:nan", "outside (0,1]"},
		{"f32:1", "takes no argument"},
		{"lossless:x", "takes no argument"},
		{"gzip", "unknown base"},
		{"q8+gzip", "unknown modifier"},
	}
	for _, c := range cases {
		_, err := ParseTransport(c.spec)
		if err == nil {
			t.Fatalf("ParseTransport(%q): accepted, want error containing %q", c.spec, c.errPart)
		}
		if !strings.Contains(err.Error(), c.errPart) {
			t.Fatalf("ParseTransport(%q) error %q missing %q", c.spec, err, c.errPart)
		}
	}
}

// roundTripUp performs one down+up cycle and returns the server-side
// reconstruction plus the measured uplink bytes.
func roundTripUp(t *testing.T, tr core.SizedTransport, clientID, round int, global, trained []float64) ([]float64, int64) {
	t.Helper()
	if _, down := tr.DownSized(clientID, round, global); down != tensor.VectorWireSizeF32(len(global)) {
		t.Fatalf("downlink bytes %d, want f32 dense %d", down, tensor.VectorWireSizeF32(len(global)))
	}
	return tr.UpSized(clientID, round, trained)
}

// TestCompressedTransportTopK checks sparse reconstruction and that the
// wire size is genuinely sparse.
func TestCompressedTransportTopK(t *testing.T) {
	trI, err := ParseTransport("topk:0.01")
	if err != nil {
		t.Fatal(err)
	}
	tr := trI.(*CompressedTransport)
	n := 1000
	global := make([]float64, n)
	trained := make([]float64, n)
	copy(trained, global)
	trained[7] = 5    // the dominant coordinates
	trained[400] = -3 // (k = ceil(0.01*1000) = 10)
	out, up := roundTripUp(t, tr, 0, 1, global, trained)
	if out[7] != 5 || out[400] != -3 {
		t.Fatalf("top-k dropped the dominant coordinates: out[7]=%g out[400]=%g", out[7], out[400])
	}
	if want := int64(8 + 10*8); up != want {
		t.Fatalf("top-k:0.01 uplink %d bytes, want %d", up, want)
	}
	if up >= tensor.VectorWireSizeF32(n)/10 {
		t.Fatalf("sparse uplink %d not ≪ dense %d", up, tensor.VectorWireSizeF32(n))
	}
}

// TestErrorFeedbackRecoversDroppedMass: with top-k so aggressive that a
// coordinate is dropped, EF must carry it into the next round's upload.
func TestErrorFeedbackRecoversDroppedMass(t *testing.T) {
	trI, err := ParseTransport("topk:0.001+ef")
	if err != nil {
		t.Fatal(err)
	}
	tr := trI.(*CompressedTransport)
	n := 1000 // k = 1: only the largest delta entry ships each round
	global := make([]float64, n)
	trained := make([]float64, n)
	trained[3] = 10 // ships round 1
	trained[9] = 4  // dropped round 1, must ship round 2 via the residual
	out, _ := roundTripUp(t, tr, 0, 1, global, trained)
	if out[3] != 10 || out[9] != 0 {
		t.Fatalf("round 1: out[3]=%g out[9]=%g, want 10, 0", out[3], out[9])
	}
	// Round 2: client trains nothing new (upload == received), but the
	// residual still holds the dropped coordinate 9.
	out2, _ := roundTripUp(t, tr, 0, 2, out, out)
	if math.Abs(out2[9]-4) > 1e-6 {
		t.Fatalf("round 2: EF did not resurface dropped coordinate: out2[9]=%g, want 4", out2[9])
	}

	// Without EF the dropped coordinate is gone forever.
	trNoEF, err := ParseTransport("topk:0.001")
	if err != nil {
		t.Fatal(err)
	}
	nf := trNoEF.(*CompressedTransport)
	o1, _ := roundTripUp(t, nf, 0, 1, global, trained)
	o2, _ := roundTripUp(t, nf, 0, 2, o1, o1)
	if o2[9] != 0 {
		t.Fatalf("no-EF transport resurrected dropped mass: %g", o2[9])
	}
}

// TestRandKDeterministicPerDispatch: rand-k's index draw depends only on
// (clientID, round), so two transports agree and resume needs no state.
func TestRandKDeterministicPerDispatch(t *testing.T) {
	mk := func() *CompressedTransport {
		trI, err := ParseTransport("randk:0.05")
		if err != nil {
			t.Fatal(err)
		}
		return trI.(*CompressedTransport)
	}
	n := 400
	global := make([]float64, n)
	trained := make([]float64, n)
	for i := range trained {
		trained[i] = float64(i%7) - 3
	}
	a, _ := roundTripUp(t, mk(), 3, 5, global, trained)
	b, _ := roundTripUp(t, mk(), 3, 5, global, trained)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rand-k not deterministic at %d: %g vs %g", i, a[i], b[i])
		}
	}
	c, _ := roundTripUp(t, mk(), 3, 6, global, trained)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("rand-k drew identical support for different rounds")
	}
}

// TestTransportStateRoundTrip: EF residuals serialize and restore
// bit-for-bit, and a restored transport continues identically.
func TestTransportStateRoundTrip(t *testing.T) {
	mk := func() *CompressedTransport {
		trI, err := ParseTransport("topk:0.001+ef")
		if err != nil {
			t.Fatal(err)
		}
		return trI.(*CompressedTransport)
	}
	tr := mk()
	n := 500
	global := make([]float64, n)
	for c := 0; c < 4; c++ {
		trained := make([]float64, n)
		trained[10+c] = float64(c + 1)
		trained[100+c] = -2
		roundTripUp(t, tr, c, 1, global, trained)
	}
	var buf bytes.Buffer
	if err := tr.SnapshotState(&buf); err != nil {
		t.Fatal(err)
	}
	restored := mk()
	if err := restored.RestoreState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Same next-round behavior from both.
	trained := make([]float64, n)
	trained[42] = 0.5
	a, aw := roundTripUp(t, tr, 2, 2, global, trained)
	b, bw := roundTripUp(t, restored, 2, 2, global, trained)
	if aw != bw {
		t.Fatalf("wire bytes diverge after restore: %d vs %d", aw, bw)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("restored transport diverges at %d: %g vs %g", i, a[i], b[i])
		}
	}
	// Corrupt input is rejected, not crashed on.
	if err := restored.RestoreState(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("truncated state accepted")
	}
}
