package core

import "testing"

// TestSeedStreamsCollisionFree pins the registry's independence guarantee:
// under one run seed, every named stream — including large per-client and
// per-shard index ranges — gets a distinct derived seed, and nearby run
// seeds (the sweep harness uses seed, seed+100000, ...) never alias each
// other's streams.
func TestSeedStreamsCollisionFree(t *testing.T) {
	type stream struct {
		name string
		ks   int // number of indexed instances to check (1 = unindexed)
	}
	streams := []stream{
		{streamSelection, 1},
		{streamLatency, 1},
		{streamModel, 1},
		{streamLoaner, 1},
		{streamScratch, 1},
		{streamDevice, 1},
		{streamChurn, 1},
		{streamClient, 20000},
		{streamEngine, 1024},
	}
	runSeeds := []int64{0, 1, 7, 42, 100001, 200001, -3}
	seen := make(map[int64]string, 1<<16)
	for _, runSeed := range runSeeds {
		for _, st := range streams {
			for k := 0; k < st.ks; k++ {
				s := streamSeed(runSeed, st.name, k)
				if prev, ok := seen[s]; ok {
					t.Fatalf("seed collision: stream %s/%d under run seed %d collides with %s (derived seed %d)",
						st.name, k, runSeed, prev, s)
				}
				seen[s] = st.name
			}
		}
	}
}

// TestSeedStreamsDeterministic: the same (runSeed, name, k) always derives
// the same seed — the property resume depends on to rebuild unmaterialized
// client streams.
func TestSeedStreamsDeterministic(t *testing.T) {
	if streamSeed(42, streamClient, 7) != streamSeed(42, streamClient, 7) {
		t.Fatal("streamSeed is not a pure function")
	}
	if streamSeed(42, streamClient, 7) == streamSeed(43, streamClient, 7) {
		t.Fatal("run seed does not separate streams")
	}
	if streamSeed(42, streamClient, 7) == streamSeed(42, streamClient, 8) {
		t.Fatal("index does not separate streams")
	}
	if streamSeed(42, streamClient, 0) == streamSeed(42, streamEngine, 0) {
		t.Fatal("name does not separate streams")
	}
	// The registry helpers agree with direct derivation.
	if seedStream(42, streamSelection).Uint64() != seedStreamN(42, streamSelection, 0).Uint64() {
		t.Fatal("seedStream and seedStreamN disagree")
	}
}
