// Sync vs async: time-to-target-accuracy under stragglers.
//
// A lock-step round costs the slowest selected client's latency, so a
// fleet with stragglers pays the straggler tax every round. The buffered
// asynchronous runtime aggregates on arrival and never waits for the
// tail — at the price of merging stale updates, which the staleness
// discount and FedTrip's xi schedule absorb.
//
// This example runs FedTrip, FedAvg, and FedProx through the unified
// core.Start facade on three runtime/policy combinations under the same
// straggler latency model — the lock-step barrier, FedBuff-style
// buffered aggregation (merge every 2 arrivals), and FedAsync
// single-arrival mixing — and compares the simulated wall-clock time
// each needs to reach a target accuracy. It then scales the fleet to
// 10,000 clients — the cross-device population regime the paper targets
// — to show the event loop, the sharded engine pool, and the off-loop
// evaluator holding up at population scale.
//
//	go run ./examples/async
//
// -scenario churn runs the device-heterogeneity scenario instead: the
// same 10k-client fleet with lognormal FLOP-coupled device speeds,
// adaptive local steps, ~10% of clients offline at any time (Markov
// churn), a mid-run mass-dropout event, and a max-staleness admission
// cutoff absorbing the rejoin updates.
//
//	go run ./examples/async -scenario churn
//
// -scenario scale runs the population-scale trajectory: a churning
// straggler fleet whose clients share a small sample pool, so the
// population width — not the dataset — is what grows. 100k clients by
// default; -clients raises it (CI runs 1M on pushes to main):
//
//	go run ./examples/async -scenario scale
//	go run ./examples/async -scenario scale -clients 1000000
//
// -scenario participation runs the low-participation ladder (the
// paper's §V.D): FedTrip vs FedAvg at 4-of-10 and 4-of-50 participation
// plus the xi schedule a client actually sees.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/algos"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/stats"
)

func main() {
	scenario := flag.String("scenario", "", "\"\" = sync-vs-async comparison + 10k straggler fleet; \"churn\" = 10k-client device-heterogeneity/churn scenario; \"scale\" = 100k+ population trajectory; \"participation\" = low-participation ladder")
	nClients := flag.Int("clients", 100_000, "fleet size for -scenario scale")
	flag.Parse()
	switch *scenario {
	case "churn":
		churnScenario()
		return
	case "scale":
		scaleScenario(*nClients)
		return
	case "participation":
		participationLadder()
		return
	}
	const (
		clients   = 10
		perClient = 60
		target    = 0.60
		rounds    = 40
	)
	train, test, err := data.Generate(data.Spec{
		Kind: data.KindMNIST, Train: clients * perClient, Test: 300, Seed: 51,
	})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := partition.Partition(partition.Dirichlet(0.5), train.Y,
		train.Classes, clients, perClient, rand.New(rand.NewSource(52)))
	if err != nil {
		log.Fatal(err)
	}
	// Every third client is a 10x straggler.
	latency := core.StragglerLatency{Fast: 1, Slow: 10, SlowEvery: 3}
	base := func(method string) core.RunSpec {
		algo, err := algos.New(method, algos.Params{})
		if err != nil {
			log.Fatal(err)
		}
		return core.RunSpec{
			Config: core.Config{
				Model: nn.ModelSpec{
					Arch: nn.ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10,
				},
				Train: train, Test: test, Parts: parts,
				Rounds: rounds, ClientsPerRound: 4,
				BatchSize: 10, LocalEpochs: 1,
				LR: 0.01, Momentum: 0.9,
				Algo: algo, Seed: 53,
				TargetAccuracy: target,
			},
			Latency: latency,
		}
	}
	variants := []struct {
		label string
		spec  func(method string) core.RunSpec
	}{
		// Sync: the barrier runtime is the lock-step loop priced under
		// the latency model (zero latency reproduces Server.Run
		// bit-for-bit).
		{"sync", func(m string) core.RunSpec {
			sp := base(m)
			sp.Runtime = core.RuntimeBarrier
			return sp
		}},
		// FedBuff: buffered aggregation, merge every 2 arrivals, 4 in
		// flight, staleness discount (1+s)^-0.5.
		{"fedbuff", func(m string) core.RunSpec {
			sp := base(m)
			sp.Runtime = core.RuntimeAsync
			sp.Concurrency = 4
			sp.BufferSize = 2
			return sp
		}},
		// FedAsync: single-arrival mixing at rate 0.6*(1+s)^-0.5 — every
		// arrival merges immediately, nothing ever waits. Rounds counts
		// aggregations, so doubling it processes the same number of
		// client updates as the buffer-of-2 FedBuff run.
		{"fedasync", func(m string) core.RunSpec {
			sp := base(m)
			sp.Runtime = core.RuntimeAsync
			sp.Concurrency = 4
			sp.Rounds = 2 * rounds
			sp.Policy = &core.FedAsyncPolicy{Alpha: 0.6}
			return sp
		}},
	}
	fmt.Printf("straggler fleet (%s), target accuracy %.0f%%\n", latency, target*100)
	fmt.Printf("%-8s  %12s  %12s  %12s  %10s  %10s\n",
		"method", "sync t (s)", "fedbuff (s)", "fedasync (s)", "buff spdup", "asyn spdup")
	for _, method := range []string{"fedtrip", "fedavg", "fedprox"} {
		times := make([]*core.Result, len(variants))
		for i, v := range variants {
			res, err := core.Start(v.spec(method))
			if err != nil {
				log.Fatal(err)
			}
			times[i] = res
		}
		fmtTime := func(r *core.Result) string {
			if r.RoundsToTarget < 0 {
				return fmt.Sprintf(">%.0f", r.TimeToTarget())
			}
			return fmt.Sprintf("%.1f", r.TimeToTarget())
		}
		speedup := func(sync, async *core.Result) string {
			if sync.RoundsToTarget > 0 && async.RoundsToTarget > 0 && async.TimeToTarget() > 0 {
				return fmt.Sprintf("%.1fx", sync.TimeToTarget()/async.TimeToTarget())
			}
			return "-"
		}
		fmt.Printf("%-8s  %12s  %12s  %12s  %10s  %10s\n", method,
			fmtTime(times[0]), fmtTime(times[1]), fmtTime(times[2]),
			speedup(times[0], times[1]), speedup(times[0], times[2]))
	}
	fmt.Println("\nsync = round barrier (each round waits for its slowest client);")
	fmt.Println("fedbuff = buffer of 2, staleness discount (1+s)^-0.5;")
	fmt.Println("fedasync = single-arrival merge, mixing rate 0.6*(1+s)^-0.5.")

	tenThousandClients()
}

// tenThousandClients runs the population-scale straggler scenario: 10,000
// clients, 256 in flight in simulated time, a handful of real training
// engines. Idle clients are registry entries, so the fleet fits in a CI
// runner's memory and the run finishes in well under two minutes.
func tenThousandClients() {
	const (
		clients   = 10_000
		perClient = 6
		aggs      = 30
		buffer    = 64
		inflight  = 256
	)
	start := time.Now()
	train, test, err := data.Generate(data.Spec{
		Kind: data.KindMNIST, Train: clients * perClient, Test: 200, Seed: 61,
	})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := partition.Partition(partition.IID(), train.Y,
		train.Classes, clients, perClient, rand.New(rand.NewSource(62)))
	if err != nil {
		log.Fatal(err)
	}
	algo, err := algos.New("fedtrip", algos.Params{})
	if err != nil {
		log.Fatal(err)
	}
	acfg := core.AsyncConfig{
		Config: core.Config{
			Model: nn.ModelSpec{
				Arch: nn.ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10, Scale: 0.5,
			},
			Train: train, Test: test, Parts: parts,
			Rounds: aggs, ClientsPerRound: buffer,
			BatchSize: perClient, LocalEpochs: 1,
			LR: 0.01, Momentum: 0.9,
			Algo: algo, Seed: 63,
			EvalEvery: 10,
		},
		Concurrency: inflight,
		BufferSize:  buffer,
		// Every 7th client is a 10x straggler: ~1400 slow devices.
		Latency: core.StragglerLatency{Fast: 1, Slow: 10, SlowEvery: 7},
	}
	a, err := core.NewAsyncServer(acfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n10k-client straggler fleet: %d clients, %d in flight, buffer %d, %d aggregations\n",
		clients, inflight, buffer, aggs)
	res, err := a.Run()
	if err != nil {
		log.Fatal(err)
	}
	distinct, dispatches := a.Participation()
	runtime.GC() // settle the heap so the reported footprint is live data
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	defer runtime.KeepAlive(a) // keep the fleet live through the measurement
	fmt.Printf("  final accuracy        %.4f (best %.4f)\n", res.FinalAccuracy, res.BestAccuracy)
	fmt.Printf("  simulated time        %.1f s over %d aggregations\n", res.SimTimeByRound[len(res.SimTimeByRound)-1], res.Rounds)
	fmt.Printf("  mean staleness (last) %.2f aggregations\n", res.MeanStalenessByRound[len(res.MeanStalenessByRound)-1])
	fmt.Printf("  fleet coverage        %d distinct clients over %d dispatches\n", distinct, dispatches)
	fmt.Printf("  train GFLOPs          %.2f\n", res.TotalGFLOPs())
	fmt.Printf("  heap in use           %.0f MB (population + engines + data)\n", float64(mem.HeapInuse)/1e6)
	fmt.Printf("  wall clock            %.1f s\n", time.Since(start).Seconds())
}

// churnScenario is the device-heterogeneity acceptance scenario: 10,000
// clients whose dispatch latency is their metered FLOPs over a
// lognormally distributed device speed (adaptive local steps shrink the
// slow tail's rounds), with ~10% of the fleet offline at any moment
// under Markov churn, a mass-dropout event killing 20% of devices for a
// stretch mid-run, and a FedBuff+max-staleness policy admitting only
// updates at most 16 aggregations stale. Runs in well under the CI
// job's two-minute timeout.
func churnScenario() {
	const (
		clients   = 10_000
		perClient = 6
		aggs      = 30
		buffer    = 64
		inflight  = 256
	)
	start := time.Now()
	train, test, err := data.Generate(data.Spec{
		Kind: data.KindMNIST, Train: clients * perClient, Test: 200, Seed: 71,
	})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := partition.Partition(partition.IID(), train.Y,
		train.Classes, clients, perClient, rand.New(rand.NewSource(72)))
	if err != nil {
		log.Fatal(err)
	}
	algo, err := algos.New("fedtrip", algos.Params{})
	if err != nil {
		log.Fatal(err)
	}
	spec := core.RunSpec{
		Config: core.Config{
			Model: nn.ModelSpec{
				Arch: nn.ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10, Scale: 0.5,
			},
			Train: train, Test: test, Parts: parts,
			Rounds: aggs, ClientsPerRound: buffer,
			// Batch 2 over 6 samples = 3 mini-batch steps per round, so
			// the adaptive budget has room to shrink on the slow tail.
			BatchSize: 2, LocalEpochs: 1,
			LR: 0.01, Momentum: 0.9,
			Algo: algo, Seed: 73,
			EvalEvery: 10,
		},
		Runtime:     core.RuntimeAsync,
		Concurrency: inflight,
		BufferSize:  buffer,
		// Heavy-tailed device speeds, FLOP-coupled: a 0.25x device takes
		// 4x the virtual time of the median — unless adaptive steps cut
		// its round short. The reference throughput is scaled to the toy
		// model so a median device's round lasts a few virtual seconds
		// (what a real CNN costs at phone-class GFLOP/s rates).
		Devices:            core.LognormalDevices{Mu: 0, Sigma: 0.75},
		FlopRate:           1e6,
		AdaptiveLocalSteps: true,
		// ~10% offline in steady state (90s up / 10s down — an outage
		// spans tens of aggregations, far past the staleness cutoff, so
		// rejoin uploads of clients that dropped mid-flight are
		// admission-filtered, not just damped), plus a mass event: 20%
		// of the fleet gone for 5 virtual seconds mid-run, rejoining
		// before the end.
		Churn: &core.ChurnModel{
			MeanUp: 90, MeanDown: 10,
			Drops: []core.MassDrop{{At: 5, Fraction: 0.2, Duration: 5}},
		},
		Policy: core.WithMaxStaleness(&core.FedBuffPolicy{}, 16),
	}
	a, err := core.NewAsyncServerSpec(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("10k-client churn fleet: %d clients, %d in flight, buffer %d, %d aggregations\n",
		clients, inflight, buffer, aggs)
	fmt.Printf("  devices lognormal(0,0.75), adaptive steps, markov:90,10 churn + 20%% mass drop, maxstale:16\n")
	res, err := a.Run()
	if err != nil {
		log.Fatal(err)
	}
	distinct, dispatches := a.Participation()
	runtime.GC()
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	defer runtime.KeepAlive(a)
	fmt.Printf("  final accuracy        %.4f (best %.4f)\n", res.FinalAccuracy, res.BestAccuracy)
	fmt.Printf("  simulated time        %.3f s over %d aggregations\n", res.SimTimeByRound[len(res.SimTimeByRound)-1], res.Rounds)
	fmt.Printf("  mean staleness (last) %.2f aggregations\n", res.MeanStalenessByRound[len(res.MeanStalenessByRound)-1])
	fmt.Printf("  dropped updates       %d (permanently dropped clients)\n", res.DroppedUpdates)
	fmt.Printf("  offline right now     %d of %d clients\n", a.Offline(), clients)
	fmt.Printf("  fleet coverage        %d distinct clients over %d dispatches\n", distinct, dispatches)
	fmt.Printf("  train GFLOPs          %.2f\n", res.TotalGFLOPs())
	fmt.Printf("  heap in use           %.0f MB (population + engines + data)\n", float64(mem.HeapInuse)/1e6)
	fmt.Printf("  wall clock            %.1f s\n", time.Since(start).Seconds())
}

// scaleScenario is the population-scale acceptance scenario: n clients
// (100k by default, 1M on CI pushes to main) sharing a 2000-sample pool,
// every 7th a 10x straggler, ~9% offline under aggregate Markov churn
// plus a mid-run mass-dropout event. Per-client runtime state is compact
// and mostly derived statelessly from seed streams, so the heap grows by
// ~200 B per client — the printed B/client figure is the same
// deterministic accessor CI gates via cmd/benchdiff.
func scaleScenario(clients int) {
	const (
		perClient = 4
		pool      = 2000
		aggs      = 30
		buffer    = 64
		inflight  = 256
	)
	start := time.Now()
	train, test, err := data.Generate(data.Spec{
		Kind: data.KindMNIST, Train: pool, Test: 200, Seed: 81,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Clients overlap in the pool: the dataset is O(pool), the fleet is
	// O(clients) — population width is the variable under test.
	rng := rand.New(rand.NewSource(82))
	parts := make([][]int, clients)
	flat := make([]int, clients*perClient)
	for i := range parts {
		p := flat[i*perClient : (i+1)*perClient : (i+1)*perClient]
		for k := range p {
			p[k] = rng.Intn(pool)
		}
		parts[i] = p
	}
	algo, err := algos.New("fedtrip", algos.Params{})
	if err != nil {
		log.Fatal(err)
	}
	spec := core.RunSpec{
		Config: core.Config{
			Model: nn.ModelSpec{
				Arch: nn.ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10, Scale: 0.25,
			},
			Train: train, Test: test, Parts: parts,
			Rounds: aggs, ClientsPerRound: buffer,
			BatchSize: perClient, LocalEpochs: 1,
			LR: 0.01, Momentum: 0.9,
			Algo: algo, Seed: 83,
			EvalEvery: 10,
		},
		Runtime:     core.RuntimeAsync,
		Concurrency: inflight,
		BufferSize:  buffer,
		Latency:     core.StragglerLatency{Fast: 1, Slow: 10, SlowEvery: 7},
		// Long phases relative to dispatch latencies: ~9% offline in
		// steady state, fleet-level drop/rejoin sampled from two aggregate
		// exponential clocks. The mass event suspends 10% mid-run.
		Churn: &core.ChurnModel{
			MeanUp: 400, MeanDown: 40,
			Drops: []core.MassDrop{{At: 10, Fraction: 0.1, Duration: 10}},
		},
	}
	a, err := core.NewAsyncServerSpec(spec)
	if err != nil {
		log.Fatal(err)
	}
	built := time.Since(start)
	fmt.Printf("%d-client scale fleet: %d in flight, buffer %d, %d aggregations, markov:400,40 churn + 10%% mass drop\n",
		clients, inflight, buffer, aggs)
	res, err := a.Run()
	if err != nil {
		log.Fatal(err)
	}
	distinct, dispatches := a.Participation()
	events := 2 * dispatches // each dispatch and its arrival
	runtime.GC()             // settle the heap so the reported footprint is live data
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	defer runtime.KeepAlive(a)
	fmt.Printf("  final accuracy        %.4f (best %.4f)\n", res.FinalAccuracy, res.BestAccuracy)
	fmt.Printf("  simulated time        %.1f s over %d aggregations\n", res.SimTimeByRound[len(res.SimTimeByRound)-1], res.Rounds)
	fmt.Printf("  fleet coverage        %d distinct clients over %d dispatches\n", distinct, dispatches)
	fmt.Printf("  offline right now     %d of %d clients\n", a.Offline(), clients)
	fmt.Printf("  dropped updates       %d\n", res.DroppedUpdates)
	fmt.Printf("  per-client state      %.0f B/client (deterministic; CI-gated)\n", a.PerClientStateBytes())
	fmt.Printf("  event throughput      %.0f events/s (%d dispatch+arrival events)\n",
		float64(events)/time.Since(start).Seconds(), events)
	fmt.Printf("  heap in use           %.0f MB (population + engines + data)\n", float64(mem.HeapInuse)/1e6)
	fmt.Printf("  wall clock            %.1f s (%.1f s fleet construction)\n",
		time.Since(start).Seconds(), built.Seconds())
}

// participationLadder is the low-participation scalability ladder (the
// paper's §V.D), folded in from the former examples/scalability: with 4
// of 50 clients per round each client participates rarely, so FedTrip's
// historical models grow stale and its staleness-scaled xi matters.
// Compares FedTrip and FedAvg at 4-of-10 vs 4-of-50 participation and
// prints the xi schedule a FedTrip client actually sees.
func participationLadder() {
	const perClient = 50
	for _, clients := range []int{10, 50} {
		train, test, err := data.Generate(data.Spec{
			Kind: data.KindMNIST, Train: clients * perClient, Test: 300, Seed: 31,
		})
		if err != nil {
			log.Fatal(err)
		}
		parts, err := partition.Partition(partition.Dirichlet(0.5), train.Y,
			train.Classes, clients, perClient, rand.New(rand.NewSource(32)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== 4-of-%d participation (rate %.0f%%) ===\n", clients, 400.0/float64(clients))

		var fedavgFinal float64
		for _, method := range []string{"fedavg", "fedtrip"} {
			algo, err := algos.New(method, algos.Params{Mu: 1.0})
			if err != nil {
				log.Fatal(err)
			}
			res, err := core.Run(core.Config{
				Model: nn.ModelSpec{
					Arch: nn.ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10,
				},
				Train: train, Test: test, Parts: parts,
				Rounds: 25, ClientsPerRound: 4,
				BatchSize: 10, LocalEpochs: 1,
				LR: 0.01, Momentum: 0.9,
				Algo: algo, Seed: 33,
			})
			if err != nil {
				log.Fatal(err)
			}
			if method == "fedavg" {
				fedavgFinal = res.FinalAccuracy
				fmt.Printf("  %-8s final %.4f\n", method, res.FinalAccuracy)
			} else {
				target := 0.97 * fedavgFinal
				rt := stats.RoundsToTarget(res.Accuracy, target)
				rtStr := fmt.Sprintf("%d", rt)
				if rt < 0 {
					rtStr = ">25"
				}
				fmt.Printf("  %-8s final %.4f, rounds to FedAvg bar (%.4f): %s\n",
					method, res.FinalAccuracy, target, rtStr)
			}
		}

		// Show the xi schedule a client experiences at this participation
		// rate: xi = 1/gap, so rare participation -> small xi, matching
		// the paper's E[xi] = p*ln(p)/(p-1) analysis.
		f := core.NewFedTrip(1.0)
		rng := rand.New(rand.NewSource(34))
		last := 0
		var xis []float64
		for round := 1; round <= 200; round++ {
			if rng.Float64() < 4.0/float64(clients) { // participates
				if xi := f.Xi(round, last); last > 0 {
					xis = append(xis, xi)
				}
				last = round
			}
		}
		fmt.Printf("  simulated E[xi] at this rate: %.3f over %d participations\n\n",
			stats.Mean(xis), len(xis))
	}
}
