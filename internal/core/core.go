// Package core implements the federated-learning runtime the paper's
// experiments run on, and FedTrip itself — the paper's contribution.
//
// The runtime follows the standard FL template (§III.A): at each
// communication round the server selects K of N clients uniformly at
// random, ships them the global model w^{t-1}, the clients run E local
// epochs of mini-batch training in parallel, and the server aggregates the
// returned models with data-size weights (Eq. 2). Methods plug in through
// the Algorithm interface: a gradient transform on the client (FedProx,
// FedTrip, FedDyn, SCAFFOLD...), an optional representation-level loss
// term (MOON), an optional server-side aggregation override (SlowMo,
// FedDyn), and an optional pre-round communication phase (FedDANE,
// MimeLite).
//
// Everything is metered: training FLOPs (model forward/backward plus each
// method's attaching operations) and client<->server communication bytes,
// so the paper's resource-efficiency tables (IV, V, VI) can be produced
// from a Run's Result.
package core

import (
	"fmt"
	"io"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// Config describes one federated run.
type Config struct {
	// Model is the architecture every client and the server share.
	Model nn.ModelSpec
	// Train and Test are the synthetic datasets.
	Train, Test *data.Dataset
	// Parts assigns training sample indices to clients (see
	// internal/partition); len(Parts) is the client population N.
	Parts [][]int
	// Rounds is the number of communication rounds T.
	Rounds int
	// ClientsPerRound is K, the number of clients selected each round.
	ClientsPerRound int
	// BatchSize is the local mini-batch size (paper default 50).
	BatchSize int
	// LocalEpochs is E, passes over local data per round (paper default 1).
	LocalEpochs int
	// LR and Momentum configure the local optimizer (paper: 0.01, 0.9).
	// Algorithms that require plain SGD (SlowMo, FedDyn) override via the
	// OptimizerChooser interface.
	LR, Momentum float64
	// ClipNorm, when positive, rescales each post-transform mini-batch
	// gradient to at most this global L2 norm before the optimizer step.
	// Long aggregation intervals (Table VII's 5-10 local epochs) compound
	// SGDm amplification with the regularizers' drift terms; clipping is
	// the standard stabiliser and is applied to every method uniformly.
	ClipNorm float64
	// Algo is the federated method under test.
	Algo Algorithm
	// Seed drives every stochastic choice (init, selection, shuffling).
	Seed int64
	// Shards is the number of worker shards client training runs on (both
	// runtimes). Each shard owns one training engine — model, optimizer,
	// batch buffers — reused across every client it serves, so memory
	// scales with Shards, not with the population. 0 selects one shard per
	// available CPU. Trajectories do not depend on the shard count: all
	// per-client randomness comes from per-client streams.
	Shards int
	// TargetAccuracy, if positive, is recorded in Result.RoundsToTarget.
	TargetAccuracy float64
	// StopAtTarget ends the run early once TargetAccuracy is reached
	// (used by the rounds-to-target tables to save compute).
	StopAtTarget bool
	// EvalEvery evaluates test accuracy every k rounds (default 1).
	EvalEvery int
	// Logf, if non-nil, receives per-round progress lines.
	Logf func(format string, args ...any)
	// OnRound, if non-nil, is called at the end of every round with the
	// live server (after aggregation and evaluation). The Fig. 2 harness
	// uses it to snapshot global and local models mid-run.
	OnRound func(round int, s *Server)
	// OnUpdates, if non-nil, observes each round's raw client uploads
	// together with the global model they started from, before
	// aggregation. Slices are only valid during the call; copy to retain.
	// The trace package uses it to measure global-local divergence and
	// current-historical distances (the quantities FedTrip manipulates).
	OnUpdates func(round int, globalBefore []float64, updates []Update)
	// Transport, if non-nil, carries every model transfer between server
	// and clients (the comm package provides a float32 wire transport
	// with true byte metering). nil means lossless in-memory handoff.
	Transport Transport
}

// Transport intercepts model transfers. Down is called once per selected
// client per round with the global model; the returned vector is what the
// client actually receives. Up is called with the client's upload; the
// returned vector is what the server actually receives. Implementations
// must be safe for concurrent calls (clients run in parallel).
//
// Slice lifetimes: the vectors passed to Down and Up are runtime-owned
// buffers that are recycled once the round's merge has consumed them —
// a Transport that wants to keep one must copy it. The runtime consumes
// Down's result within the client's round and copies Up's result into
// its own storage when the length is unchanged; an Up result with a
// different length is adopted as-is and must not be reused or mutated
// by the transport afterwards.
type Transport interface {
	Down(clientID, round int, global []float64) []float64
	Up(clientID, round int, params []float64) []float64
}

// MeteredTransport is an optional Transport capability: implementations
// report the cumulative bytes actually encoded on the wire in each
// direction. When the configured Transport provides it, the runtime
// records these measured bytes in Result.CommBytesByRound instead of the
// analytic float32 formula, so compression and header overhead show up in
// the communication columns. Counters must be safe for concurrent reads
// while transfers are in flight.
type MeteredTransport interface {
	Transport
	WireBytes() (down, up int64)
}

// SizedTransport is an optional Transport capability: each transfer also
// reports the exact bytes it put on the wire, on the call's stack rather
// than in a shared counter. With a network distribution configured
// (RunSpec.Network) the runtime prices each dispatch's upload/download
// durations from these per-transfer sizes, so a compressing transport
// genuinely buys simulated time. Without it, transfers are priced by the
// analytic dense-float32 size. Same concurrency and slice-lifetime
// contract as Transport.
type SizedTransport interface {
	Transport
	DownSized(clientID, round int, global []float64) (enc []float64, wire int64)
	UpSized(clientID, round int, params []float64) (enc []float64, wire int64)
}

// StatefulTransport is an optional Transport capability for transports
// that carry run-long state which must survive checkpoint/resume —
// error-feedback residual accumulators, most prominently. Snapshot calls
// SnapshotState at a quiesced aggregation boundary (no transfer in
// flight) and embeds the blob in the FTRS snapshot; Resume calls
// RestoreState with the same bytes before the run continues.
// Implementations must make the round trip bit-exact: a resumed run's
// trajectory is pinned against the uninterrupted one.
type StatefulTransport interface {
	Transport
	SnapshotState(w io.Writer) error
	RestoreState(r io.Reader) error
}

// Validate checks the configuration and fills defaults.
func (c *Config) Validate() error {
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.Train == nil || c.Test == nil {
		return fmt.Errorf("core: nil dataset")
	}
	if len(c.Parts) == 0 {
		return fmt.Errorf("core: no client partitions")
	}
	for k, p := range c.Parts {
		if len(p) == 0 {
			return fmt.Errorf("core: client %d has no data", k)
		}
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("core: rounds %d", c.Rounds)
	}
	if c.ClientsPerRound <= 0 || c.ClientsPerRound > len(c.Parts) {
		return fmt.Errorf("core: clients per round %d outside [1,%d]", c.ClientsPerRound, len(c.Parts))
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("core: batch size %d", c.BatchSize)
	}
	if c.LocalEpochs <= 0 {
		return fmt.Errorf("core: local epochs %d", c.LocalEpochs)
	}
	if c.LR <= 0 {
		return fmt.Errorf("core: learning rate %v", c.LR)
	}
	if c.Momentum < 0 || c.Momentum >= 1 {
		return fmt.Errorf("core: momentum %v", c.Momentum)
	}
	if c.Algo == nil {
		return fmt.Errorf("core: nil algorithm")
	}
	if c.Shards < 0 {
		return fmt.Errorf("core: shards %d", c.Shards)
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = 1
	}
	return nil
}

// Update is what a client returns to the server after local training.
type Update struct {
	ClientID   int
	Params     []float64
	NumSamples int
	TrainLoss  float64
	// Staleness is the number of aggregations the server completed between
	// this update's dispatch and its merge. Always 0 in the synchronous
	// runtime; the asynchronous runtime fills it before aggregation so
	// Aggregator overrides and OnUpdates observers can react to it.
	Staleness int
	// pooled marks Params as checked out of the server's buffer pool;
	// recycleUpdates returns it after the merge consumed the update.
	// Updates built by hand (tests, custom transports) leave it false and
	// are never recycled.
	pooled bool
}

// Algorithm customises client-side local training. The zero-cost base
// implementation (FedAvg) is the Base struct; methods embed it and
// override what they need. Optional capabilities are expressed as extra
// interfaces: FeatureGradder, Aggregator, PreRounder, OptimizerChooser,
// and CommCoster.
type Algorithm interface {
	// Name returns the registry name ("fedtrip", "fedavg", ...).
	Name() string
	// BeginRound runs on the client after it loaded the global model and
	// before local iterations start.
	BeginRound(c *Client, round int, global []float64)
	// TransformGrad mutates the freshly computed mini-batch gradient g in
	// place, given the current local parameters w. This is where model
	// regularization methods live (Algorithm 1 line 7).
	TransformGrad(c *Client, round int, w, g []float64)
	// EndRound runs after the client's last local iteration, before the
	// model is uploaded.
	EndRound(c *Client, round int)
}

// FeatureGradder is implemented by model-representation methods (MOON)
// that add a loss term on the representation z (the model's penultimate
// activation). FeatureGrad is called after the local forward pass of every
// batch; it writes d(extraLoss)/d(features) into out ([N, featureDim]) and
// reports whether it contributed anything.
type FeatureGradder interface {
	FeatureGrad(c *Client, x *tensor.Tensor, labels []int, features, out *tensor.Tensor) bool
}

// LogitGradder is implemented by methods that add a loss term on the
// model's logits (FedGKD's knowledge distillation). LogitGrad is called
// after the cross-entropy gradient has been written to dLogits; the
// implementation adds its own term in place.
type LogitGradder interface {
	LogitGrad(c *Client, x *tensor.Tensor, labels []int, logits, dLogits *tensor.Tensor)
}

// Aggregator overrides the server's default data-size-weighted averaging
// (Eq. 2). It returns the new global parameter vector.
type Aggregator interface {
	Aggregate(round int, global []float64, updates []Update) []float64
}

// PreRounder runs a pre-round communication phase over the selected
// clients before local training (FedDANE's gradient exchange, MimeLite's
// server-state update). The selected slice is runtime scratch, valid
// only until the next round's selection — implementations that need the
// participants later (e.g. in an Aggregator) must copy it.
type PreRounder interface {
	PreRound(round int, selected []*Client, global []float64)
}

// OptimizerChooser lets a method pick its local optimizer (the paper runs
// SlowMo and FedDyn with plain SGD, everything else with SGDm).
type OptimizerChooser interface {
	NewOptimizer(lr, momentum float64) optim.Optimizer
}

// CommCoster reports extra per-client per-round communication in units of
// one model transfer (SCAFFOLD/FedDANE/MimeLite ship an extra 2|w|).
type CommCoster interface {
	ExtraCommFactor() float64
}

// StalenessWeighter lets an Algorithm override the asynchronous runtime's
// staleness discount: the returned weight multiplies the update's
// data-size aggregation weight. staleness is the number of aggregations
// completed between the update's dispatch and its merge (0 = fresh).
// Implementations must return 1 for staleness 0 if they want the
// zero-latency barrier mode to stay equivalent to the synchronous server.
type StalenessWeighter interface {
	StalenessWeight(staleness int) float64
}

// Base is the no-op Algorithm; embedded by every method. On its own it is
// exactly FedAvg.
type Base struct{}

func (Base) BeginRound(c *Client, round int, global []float64)  {}
func (Base) TransformGrad(c *Client, round int, w, g []float64) {}
func (Base) EndRound(c *Client, round int)                      {}
