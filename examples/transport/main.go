// Transport: real wire-format communication accounting, compression, and
// bandwidth-priced simulated time.
//
// The paper's communication columns assume float32 model shipping. This
// example first runs the same FedTrip task through a ladder of transports
// — lossless float64 handoff, the float32 wire format, 8-bit delta
// quantization, and top-k sparsification with error feedback — and
// reports measured traffic against the accuracy impact.
//
// It then prices the network: the same run on the async runtime over a
// constant 10/25 Mbps fleet, where every dispatch pays
// rtt + measured-bytes/bandwidth in simulated time, so the sparsifying
// transport finishes the run in less simulated time, not just fewer
// bytes.
//
//	go run ./examples/transport
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
)

func main() {
	const (
		clients   = 10
		perClient = 60
		rounds    = 15
	)
	train, test, err := data.Generate(data.Spec{
		Kind: data.KindMNIST, Train: clients * perClient, Test: 300, Seed: 41,
	})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := partition.Partition(partition.Dirichlet(0.5), train.Y,
		train.Classes, clients, perClient, rand.New(rand.NewSource(42)))
	if err != nil {
		log.Fatal(err)
	}

	baseConfig := func(tr core.Transport) core.Config {
		return core.Config{
			Model: nn.ModelSpec{
				Arch: nn.ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10,
			},
			Train: train, Test: test, Parts: parts,
			Rounds: rounds, ClientsPerRound: 4,
			BatchSize: 10, LocalEpochs: 1,
			LR: 0.01, Momentum: 0.9,
			Algo: core.NewFedTrip(1.0), Seed: 43,
			Transport: tr,
		}
	}

	fmt.Println("transport ladder (FedTrip, MLP, 15 rounds, sync):")
	for _, spec := range []string{"lossless", "f32", "q8", "topk:0.01+ef"} {
		trI, err := comm.ParseTransport(spec)
		if err != nil {
			log.Fatal(err)
		}
		tr := trI.(core.MeteredTransport)
		res, err := core.Run(baseConfig(tr))
		if err != nil {
			log.Fatal(err)
		}
		down, up := tr.WireBytes()
		fmt.Printf("  %-13s final acc %.4f, down %6.2f MB, up %6.2f MB\n",
			spec, res.FinalAccuracy, float64(down)/1e6, float64(up)/1e6)
	}

	// Part two: price the network. Same task on the async runtime over a
	// constant 10 Mbps up / 25 Mbps down / 30 ms fleet; upload time now
	// depends on the bytes the transport actually moved, so the
	// sparsifying transport buys simulated wall-clock, not just bytes.
	fmt.Println("\nbandwidth-priced (async, const:10,25,30 links):")
	for _, spec := range []string{"f32", "topk:0.01+ef"} {
		trI, err := comm.ParseTransport(spec)
		if err != nil {
			log.Fatal(err)
		}
		net, err := core.ParseNetDist("const:10,25,30")
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Start(core.RunSpec{
			Config:  baseConfig(trI),
			Runtime: core.RuntimeAsync,
			Network: net,
		})
		if err != nil {
			log.Fatal(err)
		}
		simTime := res.SimTimeByRound[len(res.SimTimeByRound)-1]
		wire := res.CommBytesByRound[len(res.CommBytesByRound)-1]
		fmt.Printf("  %-13s final acc %.4f, wire %6.2f MB, simulated %6.1f s\n",
			spec, res.FinalAccuracy, float64(wire)/1e6, simTime)
	}
}
