package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAxpy(t *testing.T) {
	y := []float64{1, 2, 3, 4, 5}
	Axpy(2, []float64{10, 20, 30, 40, 50}, y)
	want := []float64{21, 42, 63, 84, 105}
	if MaxAbsDiff(y, want) != 0 {
		t.Fatalf("Axpy: %v", y)
	}
}

func TestAxpyLenMismatchPanics(t *testing.T) {
	defer expectPanic(t, "len mismatch")
	Axpy(1, []float64{1}, []float64{1, 2})
}

func TestScaleDotSumSqNorm(t *testing.T) {
	x := []float64{3, 4}
	Scale(2, x)
	if x[0] != 6 || x[1] != 8 {
		t.Fatalf("Scale: %v", x)
	}
	if Dot(x, []float64{1, 1}) != 14 {
		t.Fatal("Dot")
	}
	if SumSq(x) != 100 {
		t.Fatal("SumSq")
	}
	if Norm2(x) != 10 {
		t.Fatal("Norm2")
	}
	if Dot(nil, nil) != 0 || SumSq(nil) != 0 {
		t.Fatal("empty vectors must give 0")
	}
}

func TestSubAddCopyZero(t *testing.T) {
	a, b := []float64{5, 7}, []float64{2, 3}
	d := make([]float64, 2)
	SubInto(d, a, b)
	if d[0] != 3 || d[1] != 4 {
		t.Fatalf("SubInto: %v", d)
	}
	AddInto(d, a, b)
	if d[0] != 7 || d[1] != 10 {
		t.Fatalf("AddInto: %v", d)
	}
	CopyInto(d, a)
	if d[0] != 5 || d[1] != 7 {
		t.Fatalf("CopyInto: %v", d)
	}
	ZeroVec(d)
	if d[0] != 0 || d[1] != 0 {
		t.Fatalf("ZeroVec: %v", d)
	}
}

func TestWeightedSumInto(t *testing.T) {
	dst := []float64{99, 99}
	WeightedSumInto(dst, []float64{0.25, 0.75}, [][]float64{{4, 0}, {0, 8}})
	if dst[0] != 1 || dst[1] != 6 {
		t.Fatalf("WeightedSumInto: %v", dst)
	}
	// Zero weight short-circuits but result still correct.
	WeightedSumInto(dst, []float64{0, 1}, [][]float64{{4, 4}, {2, 2}})
	if dst[0] != 2 || dst[1] != 2 {
		t.Fatalf("WeightedSumInto zero-weight: %v", dst)
	}
}

func TestWeightedSumMismatchPanics(t *testing.T) {
	defer expectPanic(t, "count mismatch")
	WeightedSumInto([]float64{0}, []float64{1, 2}, [][]float64{{1}})
}

func TestDistSqAndMaxAbsDiff(t *testing.T) {
	a, b := []float64{1, 2, 3}, []float64{2, 0, 3}
	if DistSq(a, b) != 1+4 {
		t.Fatalf("DistSq=%v", DistSq(a, b))
	}
	if MaxAbsDiff(a, b) != 2 {
		t.Fatalf("MaxAbsDiff=%v", MaxAbsDiff(a, b))
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, -2, 0}) {
		t.Fatal("finite vector reported non-finite")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Fatal("NaN not caught")
	}
	if AllFinite([]float64{math.Inf(1)}) {
		t.Fatal("+Inf not caught")
	}
	if !AllFinite(nil) {
		t.Fatal("empty vector is vacuously finite")
	}
}

// Property: DistSq(a,b) == SumSq(a-b).
func TestDistSqMatchesSumSq(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		a, b, d := make([]float64, n), make([]float64, n), make([]float64, n)
		for i := range a {
			a[i], b[i] = r.NormFloat64(), r.NormFloat64()
		}
		SubInto(d, a, b)
		return math.Abs(DistSq(a, b)-SumSq(d)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Axpy is linear — axpy(alpha, x, y) then axpy(-alpha, x, y)
// returns y (within fp error).
func TestAxpyInverse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(64)
		x, y, orig := make([]float64, n), make([]float64, n), make([]float64, n)
		for i := range x {
			x[i], y[i] = r.NormFloat64(), r.NormFloat64()
			orig[i] = y[i]
		}
		alpha := r.NormFloat64()
		Axpy(alpha, x, y)
		Axpy(-alpha, x, y)
		return MaxAbsDiff(y, orig) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
