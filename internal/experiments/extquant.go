package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/prng"
	"repro/internal/quantize"
	"repro/internal/stats"
)

// runExtQuant is an extension experiment beyond the paper: FedTrip
// reduces communication by needing fewer rounds; uplink quantization
// (internal/quantize) reduces bytes per round. This experiment shows the
// two compose — FedTrip with an 8-bit delta-quantized uplink keeps its
// convergence while cutting upload traffic ~4x versus float32, and
// degrades gracefully at 4 bits.
func runExtQuant(p Profile, logf Logf) ([]*Table, error) {
	clients := p.Clients
	perClient, err := p.samplesPerClient(data.KindMNIST)
	if err != nil {
		return nil, err
	}
	train, test, err := p.datasets(data.KindMNIST, clients, perClient, 0)
	if err != nil {
		return nil, err
	}
	spec, err := p.modelSpec(nn.ArchCNN, data.KindMNIST)
	if err != nil {
		return nil, err
	}
	rng := prng.Stream(p.Seed, streamPartition, 0)
	parts, err := partition.Partition(partition.Dirichlet(0.5), train.Y, train.Classes, clients, perClient, rng)
	if err != nil {
		return nil, err
	}
	baseConfig := func() core.Config {
		return core.Config{
			Model: spec, Train: train, Test: test, Parts: parts,
			Rounds: p.Rounds, ClientsPerRound: p.PerRound,
			BatchSize: p.Batch, LocalEpochs: p.LocalEpochs,
			LR: p.LR, Momentum: p.Momentum,
			Algo: core.NewFedTrip(0.4), Seed: p.Seed,
		}
	}
	// Every variant goes through Case.runSpec + core.Start, so the
	// profile's runtime selection (-runtime/-latency/-device-dist/
	// -dropout) reaches this experiment like any table-driven one; only
	// the uplink transport varies per row.
	c := Case{Kind: data.KindMNIST, Arch: nn.ArchCNN, Scheme: partition.Dirichlet(0.5), Algo: "fedtrip"}
	runVariant := func(tr core.Transport) (*core.Result, error) {
		cfg := baseConfig()
		cfg.Transport = tr // nil = the paper's analytic float32 accounting
		spec, err := c.runSpec(p, cfg)
		if err != nil {
			return nil, err
		}
		return core.Start(spec)
	}
	runQuantized := func(bits int) (*core.Result, int64, error) {
		tr, err := quantize.NewTransport(bits)
		if err != nil {
			return nil, 0, err
		}
		res, err := runVariant(tr)
		if err != nil {
			return nil, 0, err
		}
		return res, tr.UpBytes(), nil
	}
	t := &Table{
		ID:      "ext-quant",
		Title:   "FedTrip with quantized uplink (CNN/MNIST Dir-0.5): rounds vs upload bytes",
		Headers: []string{"Uplink", "Best accuracy", "Final accuracy", "Rounds to 0.9", "Upload MB"},
	}
	// Baseline: float32 shipping (the paper's convention) = bits 0 path
	// with analytic bytes from the model size.
	model, err := spec.Build(1)
	if err != nil {
		return nil, err
	}
	f32Bytes := func(rounds int) int64 {
		return int64(rounds) * int64(p.PerRound) * int64(4*model.NumParams())
	}
	base, err := runVariant(nil)
	if err != nil {
		return nil, err
	}
	logf.printf("ext-quant: baseline done")
	addRow := func(label string, res *core.Result, upMB float64) {
		rt := stats.RoundsToTarget(res.Accuracy, 0.9)
		rtStr := fmt.Sprintf("%d", rt)
		if rt < 0 {
			rtStr = fmt.Sprintf(">%d", res.Rounds)
		}
		t.AddRow(label,
			fmt.Sprintf("%.4f", res.BestAccuracy),
			fmt.Sprintf("%.4f", res.FinalAccuracy),
			rtStr,
			fmt.Sprintf("%.2f", upMB))
	}
	addRow("float32 (paper)", base, float64(f32Bytes(base.Rounds))/1e6)
	for _, bits := range []int{8, 4} {
		res, up, err := runQuantized(bits)
		if err != nil {
			return nil, err
		}
		logf.printf("ext-quant: %d-bit done", bits)
		addRow(fmt.Sprintf("%d-bit delta", bits), res, float64(up)/1e6)
	}
	t.Notes = append(t.Notes,
		"uplink deltas are quantized against the received model (error feedback-free delta encoding)",
		"downlink stays float32 in all rows; upload MB is measured wire traffic")
	return []*Table{t}, nil
}
