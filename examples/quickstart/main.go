// Quickstart: the smallest complete FedTrip run.
//
// It builds a synthetic MNIST-like dataset, partitions it across 10
// clients with Dirichlet(0.5) label skew, trains a small CNN with FedTrip
// for 15 communication rounds, and prints the accuracy trajectory — the
// minimal version of the paper's experimental loop.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/algos"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
)

func main() {
	// 1. Data: a synthetic 10-class image dataset (60 samples per client
	//    keeps this example fast; see DESIGN.md for the generator).
	const (
		clients   = 10
		perClient = 60
	)
	train, test, err := data.Generate(data.Spec{
		Kind:  data.KindMNIST,
		Train: clients * perClient,
		Test:  300,
		Seed:  1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Heterogeneity: Dirichlet(0.5) label skew, as in the paper's
	//    default setting.
	parts, err := partition.Partition(
		partition.Dirichlet(0.5), train.Y, train.Classes,
		clients, perClient, rand.New(rand.NewSource(2)))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Method: FedTrip with the paper's mu for conv models.
	algo, err := algos.New("fedtrip", algos.Params{Mu: 0.4})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Federated training: 4-of-10 clients per round, SGDm locally.
	res, err := core.Run(core.Config{
		Model: nn.ModelSpec{
			Arch: nn.ArchCNN, Channels: 1, Height: 28, Width: 28,
			Classes: 10, Scale: 0.5,
		},
		Train: train, Test: test, Parts: parts,
		Rounds: 15, ClientsPerRound: 4,
		BatchSize: 10, LocalEpochs: 1,
		LR: 0.01, Momentum: 0.9,
		Algo: algo, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("round  test-accuracy")
	for i, acc := range res.Accuracy {
		fmt.Printf("%5d  %.4f\n", i+1, acc)
	}
	fmt.Printf("\nbest %.4f | final %.4f | %.2f GFLOPs | %.2f MB traffic\n",
		res.BestAccuracy, res.FinalAccuracy, res.TotalGFLOPs(),
		float64(res.CommBytesByRound[len(res.CommBytesByRound)-1])/1e6)
}
