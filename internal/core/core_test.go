package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/tensor"
)

// testConfig builds a small but realistic FL config on MNIST-like data
// with an MLP, 6 clients.
func testConfig(t *testing.T, algo Algorithm) Config {
	t.Helper()
	train, test, err := data.Generate(data.Spec{Kind: data.KindMNIST, Train: 600, Test: 200, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	parts, err := partition.Partition(partition.Dirichlet(0.5), train.Y, train.Classes, 6, 80, rng)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Model:           nn.ModelSpec{Arch: nn.ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10},
		Train:           train,
		Test:            test,
		Parts:           parts,
		Rounds:          5,
		ClientsPerRound: 3,
		BatchSize:       20,
		LocalEpochs:     1,
		LR:              0.01,
		Momentum:        0.9,
		Algo:            algo,
		Seed:            1,
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig(t, NewFedTrip(0.4))
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	check := func(mutate func(*Config), what string) {
		c := testConfig(t, NewFedTrip(0.4))
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s accepted", what)
		}
	}
	check(func(c *Config) { c.Train = nil }, "nil train")
	check(func(c *Config) { c.Test = nil }, "nil test")
	check(func(c *Config) { c.Parts = nil }, "no partitions")
	check(func(c *Config) { c.Parts = [][]int{{1}, {}} }, "empty client")
	check(func(c *Config) { c.Rounds = 0 }, "zero rounds")
	check(func(c *Config) { c.ClientsPerRound = 0 }, "zero K")
	check(func(c *Config) { c.ClientsPerRound = 99 }, "K > N")
	check(func(c *Config) { c.BatchSize = 0 }, "zero batch")
	check(func(c *Config) { c.LocalEpochs = 0 }, "zero epochs")
	check(func(c *Config) { c.LR = 0 }, "zero lr")
	check(func(c *Config) { c.Momentum = 1 }, "momentum 1")
	check(func(c *Config) { c.Algo = nil }, "nil algo")
	check(func(c *Config) { c.Model.Classes = 1 }, "bad model")
}

func TestFedTripXiModes(t *testing.T) {
	f := NewFedTrip(0.4)
	if xi := f.Xi(10, 0); xi != 0 {
		t.Fatalf("never-participated xi = %v, want 0", xi)
	}
	if xi := f.Xi(10, 9); xi != 1 {
		t.Fatalf("gap 1 inverse xi = %v, want 1", xi)
	}
	if xi := f.Xi(10, 5); xi != 0.2 {
		t.Fatalf("gap 5 inverse xi = %v, want 0.2", xi)
	}
	f.Mode = XiGap
	if xi := f.Xi(10, 5); xi != 5 {
		t.Fatalf("gap-mode xi = %v, want 5", xi)
	}
	f.Mode = XiFixed
	f.FixedXi = 0.7
	if xi := f.Xi(10, 5); xi != 0.7 {
		t.Fatalf("fixed xi = %v, want 0.7", xi)
	}
	if XiInverseGap.String() != "inverse-gap" || XiGap.String() != "gap" || XiFixed.String() != "fixed" {
		t.Fatal("XiMode strings")
	}
	if XiMode(99).String() == "" {
		t.Fatal("unknown XiMode string empty")
	}
}

// FedTrip's TransformGrad must be the exact gradient of its triplet
// regularization term: verify against central finite differences of
// TripletLoss.
func TestFedTripGradientMatchesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 40
	w := make([]float64, n)
	global := make([]float64, n)
	hist := make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = rng.NormFloat64()
		global[i] = rng.NormFloat64()
		hist[i] = rng.NormFloat64()
	}
	f := NewFedTrip(0.7)
	cfg := testConfig(t, f)
	cfg.Model = nn.ModelSpec{Arch: nn.ArchMLP, Channels: 1, Height: 2, Width: 2, Classes: 10}
	// Build a client manually to host the state.
	c := newClient(&cfg, 0, []int{0}, 5)
	// Fake vector sizes: use StateVec of model size; instead test the
	// gradient math directly on a synthetic client state.
	nv := c.NumParams()
	if nv < n {
		t.Fatalf("model too small for test: %d", nv)
	}
	w = w[:n]
	const xi = 0.35
	gvec := c.RoundVec("fedtrip.global")
	copy(gvec[:n], global)
	c.Hist = make([]float64, nv)
	copy(c.Hist[:n], hist)
	c.SetScalar("fedtrip.xi", xi)

	wFull := make([]float64, nv)
	copy(wFull[:n], w)
	g := make([]float64, nv)
	f.TransformGrad(c, 2, wFull, g)

	const h = 1e-6
	for probe := 0; probe < 20; probe++ {
		i := rng.Intn(n)
		orig := wFull[i]
		wFull[i] = orig + h
		lp := f.TripletLoss(wFull, gvec, c.Hist, xi)
		wFull[i] = orig - h
		lm := f.TripletLoss(wFull, gvec, c.Hist, xi)
		wFull[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-g[i]) > 1e-6*math.Max(1, math.Abs(num)) {
			t.Fatalf("coord %d: analytic %v numeric %v", i, g[i], num)
		}
	}
}

func TestFedTripFirstParticipationIsProximal(t *testing.T) {
	f := NewFedTrip(0.5)
	cfg := testConfig(t, f)
	c := newClient(&cfg, 0, []int{0}, 5)
	nv := c.NumParams()
	global := make([]float64, nv)
	for i := range global {
		global[i] = 1
	}
	f.BeginRound(c, 1, global)
	if c.Scalar("fedtrip.xi") != 0 {
		t.Fatal("first participation must have xi=0")
	}
	w := make([]float64, nv) // zeros
	g := make([]float64, nv)
	f.TransformGrad(c, 1, w, g)
	// g = mu*(w - global) = -0.5 everywhere.
	for i := range g {
		if math.Abs(g[i]-(-0.5)) > 1e-12 {
			t.Fatalf("g[%d]=%v want -0.5", i, g[i])
		}
	}
}

func TestAggregateWeightedByDataSize(t *testing.T) {
	cfg := testConfig(t, NewFedTrip(0.4))
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nv := len(s.Global())
	a := make([]float64, nv)
	b := make([]float64, nv)
	for i := range a {
		a[i] = 1
		b[i] = 4
	}
	s.aggregate(1, []Update{
		{ClientID: 0, Params: a, NumSamples: 30},
		{ClientID: 1, Params: b, NumSamples: 10},
	})
	// Weighted: (30*1 + 10*4)/40 = 1.75.
	for i := range s.Global() {
		if math.Abs(s.Global()[i]-1.75) > 1e-12 {
			t.Fatalf("aggregate[%d]=%v want 1.75", i, s.Global()[i])
		}
	}
}

func TestLocalTrainUpdatesHistory(t *testing.T) {
	cfg := testConfig(t, NewFedTrip(0.4))
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clients()[0]
	if c.Hist != nil || c.LastRound != 0 {
		t.Fatal("fresh client must have no history")
	}
	u := c.LocalTrain(3, s.Global())
	if c.LastRound != 3 {
		t.Fatalf("LastRound = %d", c.LastRound)
	}
	if tensor.MaxAbsDiff(c.Hist, u.Params) != 0 {
		t.Fatal("Hist must equal the uploaded parameters")
	}
	if u.NumSamples != c.NumSamples() || u.ClientID != 0 {
		t.Fatal("update metadata wrong")
	}
	if !tensor.AllFinite(u.Params) {
		t.Fatal("non-finite upload")
	}
	// Local training must actually move the parameters.
	if tensor.MaxAbsDiff(u.Params, s.Global()) == 0 {
		t.Fatal("local training did not change the model")
	}
}

func TestFullGradMatchesManualAndRestores(t *testing.T) {
	cfg := testConfig(t, NewFedTrip(0.4))
	cfg.BatchSize = 7 // force multiple, uneven batches
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clients()[1]
	before := c.Model().ParamsCopy()
	at := s.Global()
	g1 := c.FullGrad(at)
	if tensor.MaxAbsDiff(c.Model().ParamsCopy(), before) != 0 {
		t.Fatal("FullGrad must restore model parameters")
	}
	// Reference: single batch over all data.
	cfg2 := testConfig(t, NewFedTrip(0.4))
	cfg2.BatchSize = len(c.Indices)
	s2, err := NewServer(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	g2 := s2.Clients()[1].FullGrad(at)
	if d := tensor.MaxAbsDiff(g1, g2); d > 1e-10 {
		t.Fatalf("batched full grad differs from single-batch: %v", d)
	}
}

func TestRunDeterministic(t *testing.T) {
	r1, err := Run(testConfig(t, NewFedTrip(0.4)))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(testConfig(t, NewFedTrip(0.4)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Accuracy {
		if r1.Accuracy[i] != r2.Accuracy[i] {
			t.Fatalf("round %d accuracy differs: %v vs %v", i+1, r1.Accuracy[i], r2.Accuracy[i])
		}
	}
	if r1.TotalGFLOPs() != r2.TotalGFLOPs() {
		t.Fatal("FLOPs not deterministic")
	}
}

func TestRunMetricsShape(t *testing.T) {
	cfg := testConfig(t, NewFedTrip(0.4))
	cfg.TargetAccuracy = 0.05 // trivially reachable
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != cfg.Rounds {
		t.Fatalf("rounds %d", res.Rounds)
	}
	if len(res.Accuracy) != cfg.Rounds || len(res.TrainLoss) != cfg.Rounds ||
		len(res.GFLOPsByRound) != cfg.Rounds || len(res.CommBytesByRound) != cfg.Rounds {
		t.Fatal("metric lengths wrong")
	}
	if res.RoundsToTarget != 1 {
		t.Fatalf("RoundsToTarget = %d want 1", res.RoundsToTarget)
	}
	if res.BestAccuracy <= 0 || res.FinalAccuracy <= 0 {
		t.Fatal("accuracies not recorded")
	}
	// GFLOPs must be positive and nondecreasing.
	prev := 0.0
	for _, g := range res.GFLOPsByRound {
		if g < prev {
			t.Fatal("GFLOPs decreased")
		}
		prev = g
	}
	if res.TotalGFLOPs() <= 0 {
		t.Fatal("no FLOPs metered")
	}
}

func TestStopAtTarget(t *testing.T) {
	cfg := testConfig(t, NewFedTrip(0.4))
	cfg.TargetAccuracy = 0.01
	cfg.StopAtTarget = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("should stop after round 1, ran %d", res.Rounds)
	}
}

func TestCommAccountingFedAvgStyle(t *testing.T) {
	cfg := testConfig(t, NewFedTrip(0.4)) // no CommCoster: 2 transfers/client
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := cfg.Model.Build(1)
	perRound := int64(cfg.ClientsPerRound) * 2 * int64(4*m.NumParams())
	want := perRound * int64(cfg.Rounds)
	if got := res.CommBytesByRound[len(res.CommBytesByRound)-1]; got != want {
		t.Fatalf("comm bytes %d want %d", got, want)
	}
}

// Failure injection: an algorithm that poisons the gradient with NaN.
// The merge path's graceful-degradation screen must reject every
// poisoned upload (counting it in RejectedUpdates) so the run survives
// with a finite global model, instead of dying at the divergence
// backstop the moment one client goes non-finite.
type poisonAlgo struct{ Base }

func (poisonAlgo) Name() string { return "poison" }
func (poisonAlgo) TransformGrad(c *Client, round int, w, g []float64) {
	g[0] = math.NaN()
}

func TestDivergenceDetected(t *testing.T) {
	cfg := testConfig(t, poisonAlgo{})
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("non-finite uploads must be rejected, not kill the run: %v", err)
	}
	// Every upload is poisoned: 3 clients/round over 5 rounds, all
	// rejected, every merge a no-op on a still-finite model.
	want := cfg.ClientsPerRound * cfg.Rounds
	if res.RejectedUpdates != want {
		t.Fatalf("RejectedUpdates = %d want %d", res.RejectedUpdates, want)
	}
	for _, a := range res.Accuracy {
		if math.IsNaN(a) {
			t.Fatal("accuracy series went NaN — a rejected update reached the model")
		}
	}
}

func TestRoundsToTargetUnreached(t *testing.T) {
	cfg := testConfig(t, NewFedTrip(0.4))
	cfg.TargetAccuracy = 1.01 // impossible
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundsToTarget != -1 {
		t.Fatalf("RoundsToTarget = %d want -1", res.RoundsToTarget)
	}
	if res.GFLOPsToTarget() != res.TotalGFLOPs() {
		t.Fatal("GFLOPsToTarget should fall back to total")
	}
	if res.CommBytesToTarget() != res.CommBytesByRound[len(res.CommBytesByRound)-1] {
		t.Fatal("CommBytesToTarget should fall back to total")
	}
}

func TestEvalEverySkipsEvaluations(t *testing.T) {
	cfg := testConfig(t, NewFedTrip(0.4))
	cfg.Rounds = 4
	cfg.EvalEvery = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Rounds 1 and 3 carry the previous eval (0 for round 1).
	if res.Accuracy[0] != 0 {
		t.Fatalf("round 1 should carry initial 0, got %v", res.Accuracy[0])
	}
	if res.Accuracy[1] == 0 {
		t.Fatal("round 2 must be evaluated")
	}
	if res.Accuracy[2] != res.Accuracy[1] {
		t.Fatal("round 3 should carry round 2's accuracy")
	}
}

// End-to-end learning check: 25 rounds of FedTrip on the easy MNIST-like
// task must clearly beat chance.
func TestFedTripLearnsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: learning outcome, not concurrency, under test")
	}
	cfg := testConfig(t, NewFedTrip(0.4))
	cfg.Rounds = 25
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestAccuracy < 0.5 {
		t.Fatalf("best accuracy %.3f after 25 rounds — not learning", res.BestAccuracy)
	}
}

func TestSelectClientsDistinct(t *testing.T) {
	cfg := testConfig(t, NewFedTrip(0.4))
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		sel := s.selectClients()
		if len(sel) != cfg.ClientsPerRound {
			t.Fatalf("selected %d", len(sel))
		}
		seen := map[int]bool{}
		for _, c := range sel {
			if seen[c.ID] {
				t.Fatal("client selected twice in one round")
			}
			seen[c.ID] = true
		}
	}
}

func TestStateVecAndScalars(t *testing.T) {
	cfg := testConfig(t, NewFedTrip(0.4))
	c := newClient(&cfg, 0, []int{0, 1}, 9)
	if c.HasStateVec("x") {
		t.Fatal("unallocated vec reported present")
	}
	v := c.StateVec("x")
	if len(v) != c.NumParams() {
		t.Fatal("state vec size")
	}
	v[0] = 5
	if c.StateVec("x")[0] != 5 {
		t.Fatal("state vec not persistent")
	}
	if !c.HasStateVec("x") {
		t.Fatal("HasStateVec false after allocation")
	}
	if c.Scalar("nope") != 0 {
		t.Fatal("unset scalar not zero")
	}
	c.SetScalar("s", 2.5)
	if c.Scalar("s") != 2.5 {
		t.Fatal("scalar roundtrip")
	}
	if c.Config() != &cfg {
		t.Fatal("Config accessor")
	}
	if c.RNG() == nil {
		t.Fatal("RNG accessor")
	}
}

func TestScratchModelsStable(t *testing.T) {
	cfg := testConfig(t, NewFedTrip(0.4))
	c := newClient(&cfg, 0, []int{0}, 9)
	a1, b1 := c.ScratchModels()
	a2, b2 := c.ScratchModels()
	if a1 != a2 || b1 != b2 {
		t.Fatal("scratch models must be cached")
	}
	if a1 == b1 {
		t.Fatal("scratch models must be distinct instances")
	}
	if a1.NumParams() != c.NumParams() {
		t.Fatal("scratch architecture mismatch")
	}
}
