package tensor

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Vector serialization: a compact, versioned binary format for flat
// parameter vectors (model checkpoints, server state). Layout:
//
//	magic   [4]byte  "FTV1"
//	count   uint64   number of float64 values
//	values  count * float64, little endian
//
// WriteVectorF32/ReadVectorF32 use the same layout with magic "FTV2" and
// float32 payloads — the transport precision the paper's communication
// accounting assumes.

var (
	magicF64 = [4]byte{'F', 'T', 'V', '1'}
	magicF32 = [4]byte{'F', 'T', 'V', '2'}
)

// WriteVector writes v in full float64 precision.
func WriteVector(w io.Writer, v []float64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magicF64[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(v))); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, x := range v {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(x))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadVector reads a float64 vector written by WriteVector.
func ReadVector(r io.Reader) ([]float64, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("tensor: reading vector magic: %w", err)
	}
	if magic != magicF64 {
		return nil, fmt.Errorf("tensor: bad vector magic %q (want %q)", magic, magicF64)
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("tensor: reading vector length: %w", err)
	}
	const maxElems = 1 << 31 // 16 GiB of float64s; reject corrupt headers
	if count > maxElems {
		return nil, fmt.Errorf("tensor: vector length %d implausibly large", count)
	}
	v := make([]float64, count)
	buf := make([]byte, 8)
	for i := range v {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("tensor: reading vector element %d: %w", i, err)
		}
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	return v, nil
}

// WriteVectorF32 writes v at float32 transport precision (half the bytes;
// this is the precision the paper's MB columns assume).
func WriteVectorF32(w io.Writer, v []float64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magicF32[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(v))); err != nil {
		return err
	}
	buf := make([]byte, 4)
	for _, x := range v {
		binary.LittleEndian.PutUint32(buf, math.Float32bits(float32(x)))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadVectorF32 reads a float32 vector written by WriteVectorF32,
// widening to float64.
func ReadVectorF32(r io.Reader) ([]float64, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("tensor: reading vector magic: %w", err)
	}
	if magic != magicF32 {
		return nil, fmt.Errorf("tensor: bad vector magic %q (want %q)", magic, magicF32)
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("tensor: reading vector length: %w", err)
	}
	const maxElems = 1 << 31
	if count > maxElems {
		return nil, fmt.Errorf("tensor: vector length %d implausibly large", count)
	}
	v := make([]float64, count)
	buf := make([]byte, 4)
	for i := range v {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("tensor: reading vector element %d: %w", i, err)
		}
		v[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf)))
	}
	return v, nil
}

// VectorWireSizeF32 returns the encoded size in bytes of a float32
// vector message of length n (header + payload), used by the comm layer's
// byte accounting.
func VectorWireSizeF32(n int) int64 { return 4 + 8 + 4*int64(n) }
