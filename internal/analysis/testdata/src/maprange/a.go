package maprange

import "sort"

// magic puts this file in maprange's serialization scope.
const magic = "FTRS"

type state struct {
	scalars map[string]float64
}

// serialize shows the flagged form and the tolerated sorted-keys idiom.
func serialize(s *state) []string {
	out := []string{magic}
	for k, v := range s.scalars { // want "map iteration order"
		_ = v
		out = append(out, k)
	}
	keys := make([]string, 0, len(s.scalars))
	for k := range s.scalars {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, k)
	}
	return out
}

// count binds neither key nor value: order cannot matter.
func count(s *state) int {
	n := 0
	for range s.scalars {
		n++
	}
	return n
}

// tolerated carries an explicit order-insensitivity justification.
func tolerated(s *state) float64 {
	sum := 0.0
	//fedtripvet:sorted fixture: summation commutes, order never reaches output
	for _, v := range s.scalars {
		sum += v
	}
	return sum
}
