// Command benchjson converts `go test -bench` output on stdin into a JSON
// array on stdout, one object per benchmark with every reported metric
// (ns/op, B/op, allocs/op, custom b.ReportMetric units). CI uses it to
// publish the per-PR benchmark artifact (BENCH_4.json) so the performance
// trajectory of the 1k/10k-client runtime benchmarks is tracked over
// time; cmd/benchdiff compares two such artifacts:
//
//	go test -bench=. -benchtime=1x -run='^$' ./... | benchjson > BENCH_4.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name without the GOMAXPROCS suffix
	// ("BenchmarkAsync10kClients").
	Name string `json:"name"`
	// FullName preserves the suffix ("BenchmarkAsync10kClients-4").
	FullName string `json:"full_name"`
	// Iterations is the b.N the line reports.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every "value unit" pair on the line
	// (e.g. "ns/op", "B/op", "allocs/op", "updates/sec").
	Metrics map[string]float64 `json:"metrics"`
}

// parseLine parses one benchmark result line, reporting ok=false for
// non-benchmark output (headers, PASS, table renders...).
func parseLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	// Minimum: name, iterations, value, unit.
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		FullName:   fields[0],
		Name:       fields[0],
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	// Strip the -GOMAXPROCS suffix, but only when it is purely numeric —
	// benchmark names may legitimately contain dashes.
	if i := strings.LastIndexByte(b.Name, '-'); i > 0 {
		if _, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name = b.Name[:i]
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

func run(out *os.File) error {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	benches := []Benchmark{}
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			benches = append(benches, b)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(benches)
}

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
