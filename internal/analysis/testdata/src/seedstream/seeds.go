// The fixture's stream registry: every string constant declared in this
// file is a registered stream name.
package seedstream

const (
	streamGood  = "good"
	streamSpare = "spare"
	streamDup   = "good" // want "already registered as streamGood"
)
