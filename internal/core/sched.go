package core

// jobHeap is an indexed binary min-heap of in-flight jobs keyed on
// (finish, seq): earliest virtual arrival first, ties broken by dispatch
// sequence so replays are deterministic. The old event loop popped the
// earliest job with a linear scan, which was fine at tens of in-flight
// clients and quadratic pain at thousands; the heap makes every push/pop
// O(log n). Each job carries its heap slot (heapIdx) so membership checks
// and future in-place adjustments are O(1).
//
// With trackClients enabled the heap additionally maintains a client-ID →
// slot index, which is what lets the churn process find a dropped
// client's in-flight job in O(1) without a fleet-wide inflight pointer
// array: every queued job is reachable through the heap it already sits
// in. An int32 per client instead of a pointer per client also halves the
// state the GC has to scan at million-client populations.
type jobHeap struct {
	js []*trainJob
	// slot[id] is 1 + the heap index of client id's queued job, 0 when the
	// client has no job in the heap. nil disables tracking (bare heaps in
	// tests, the barrier runtime which has no churn).
	slot []int32
}

// trackClients sizes the client-ID index for a population of n. Must be
// called before the first push.
func (h *jobHeap) trackClients(n int) {
	h.slot = make([]int32, n)
}

// byClient returns client id's queued job, or nil when the client has no
// job in the heap (idle, offline, or its update is sitting in the merge
// buffer). Only valid after trackClients.
func (h *jobHeap) byClient(id int) *trainJob {
	s := h.slot[id]
	if s == 0 {
		return nil
	}
	return h.js[s-1]
}

// jobLess orders jobs by virtual arrival time, then by dispatch sequence,
// then (defensively — seq is unique in the runtime) by client index.
func jobLess(a, b *trainJob) bool {
	if a.finish != b.finish {
		return a.finish < b.finish
	}
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return a.c.ID < b.c.ID
}

func (h *jobHeap) len() int { return len(h.js) }

// peek returns the earliest job without removing it; nil when empty.
func (h *jobHeap) peek() *trainJob {
	if len(h.js) == 0 {
		return nil
	}
	return h.js[0]
}

// fix restores the heap invariant after the job at slot i changed its
// key — the churn process uses it to park an in-flight job's arrival
// until the client's rejoin.
func (h *jobHeap) fix(i int) {
	h.down(i)
	h.up(i)
}

// push inserts a job.
func (h *jobHeap) push(j *trainJob) {
	j.heapIdx = len(h.js)
	h.js = append(h.js, j)
	if h.slot != nil {
		h.slot[j.c.ID] = int32(j.heapIdx) + 1
	}
	h.up(j.heapIdx)
}

// pop removes and returns the earliest job; nil when empty.
func (h *jobHeap) pop() *trainJob {
	if len(h.js) == 0 {
		return nil
	}
	j := h.js[0]
	last := len(h.js) - 1
	h.js[0] = h.js[last]
	h.js[0].heapIdx = 0
	if h.slot != nil {
		h.slot[h.js[0].c.ID] = 1
		h.slot[j.c.ID] = 0
	}
	h.js[last] = nil
	h.js = h.js[:last]
	if last > 0 {
		h.down(0)
	}
	j.heapIdx = -1
	return j
}

func (h *jobHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !jobLess(h.js[i], h.js[parent]) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *jobHeap) down(i int) {
	n := len(h.js)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && jobLess(h.js[l], h.js[smallest]) {
			smallest = l
		}
		if r < n && jobLess(h.js[r], h.js[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *jobHeap) swap(i, k int) {
	h.js[i], h.js[k] = h.js[k], h.js[i]
	h.js[i].heapIdx = i
	h.js[k].heapIdx = k
	if h.slot != nil {
		h.slot[h.js[i].c.ID] = int32(i) + 1
		h.slot[h.js[k].c.ID] = int32(k) + 1
	}
}
