package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewZeroed(t *testing.T) {
	a := New(2, 3)
	if a.Numel() != 6 || a.Rank() != 2 || a.Dim(0) != 2 || a.Dim(1) != 3 {
		t.Fatalf("bad metadata: %v", a)
	}
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestFromSliceSharesData(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	a := FromSlice(d, 2, 2)
	a.Data[0] = 9
	if d[0] != 9 {
		t.Fatal("FromSlice must not copy")
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer expectPanic(t, "length mismatch")
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestBadShapePanics(t *testing.T) {
	defer expectPanic(t, "non-positive dim")
	New(2, 0)
}

func TestEmptyShapePanics(t *testing.T) {
	defer expectPanic(t, "empty shape")
	New()
}

func TestReshapeView(t *testing.T) {
	a := New(2, 6)
	a.Data[7] = 5
	b := a.Reshape(3, 4)
	if b.At(1, 3) != 5 {
		t.Fatalf("reshape moved data: %v", b.Data)
	}
	b.Set(7, 0, 0)
	if a.Data[0] != 7 {
		t.Fatal("reshape must be a view")
	}
}

func TestReshapeBadCountPanics(t *testing.T) {
	defer expectPanic(t, "bad reshape")
	New(2, 3).Reshape(7)
}

func TestCloneIndependent(t *testing.T) {
	a := New(3)
	a.Data[1] = 2
	b := a.Clone()
	b.Data[1] = 9
	if a.Data[1] != 2 {
		t.Fatal("clone must copy")
	}
}

func TestAtSetOffsets(t *testing.T) {
	a := New(2, 3, 4)
	a.Set(42, 1, 2, 3)
	if a.Data[1*12+2*4+3] != 42 {
		t.Fatal("row-major offset wrong")
	}
	if a.At(1, 2, 3) != 42 {
		t.Fatal("At/Set disagree")
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer expectPanic(t, "out of range")
	New(2, 2).At(0, 2)
}

func TestAtWrongRankPanics(t *testing.T) {
	defer expectPanic(t, "wrong rank")
	New(2, 2).At(1)
}

func TestZeroFill(t *testing.T) {
	a := New(4)
	a.Fill(3)
	for _, v := range a.Data {
		if v != 3 {
			t.Fatal("Fill failed")
		}
	}
	a.Zero()
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestSameShape(t *testing.T) {
	if !SameShape(New(2, 3), New(2, 3)) {
		t.Fatal("equal shapes reported different")
	}
	if SameShape(New(2, 3), New(3, 2)) || SameShape(New(6), New(2, 3)) {
		t.Fatal("different shapes reported equal")
	}
}

func TestRandFills(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(1000)
	a.RandNormal(rng, 0.5)
	mean, varsum := 0.0, 0.0
	for _, v := range a.Data {
		mean += v
	}
	mean /= 1000
	for _, v := range a.Data {
		varsum += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(varsum / 1000)
	if math.Abs(mean) > 0.1 || math.Abs(sd-0.5) > 0.1 {
		t.Fatalf("RandNormal stats off: mean=%v sd=%v", mean, sd)
	}
	b := New(1000)
	b.RandUniform(rng, 2, 3)
	for _, v := range b.Data {
		if v < 2 || v >= 3 {
			t.Fatalf("uniform sample %v outside [2,3)", v)
		}
	}
}

func TestMaxAbs(t *testing.T) {
	a := FromSlice([]float64{-3, 1, 2}, 3)
	if a.MaxAbs() != 3 {
		t.Fatalf("MaxAbs=%v", a.MaxAbs())
	}
}

func TestStringer(t *testing.T) {
	if s := New(2, 3).String(); s != "Tensor[2 3]" {
		t.Fatalf("String()=%q", s)
	}
}

func expectPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("expected panic: %s", what)
	}
}

func TestSetDim0(t *testing.T) {
	x := New(4, 3)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	base := &x.Data[0]
	// Shrink: reuse backing, keep row shape.
	x.SetDim0(2)
	if x.Dim(0) != 2 || x.Dim(1) != 3 || x.Numel() != 6 {
		t.Fatalf("after shrink: shape %v numel %d", x.Shape(), x.Numel())
	}
	if &x.Data[0] != base {
		t.Fatal("shrink reallocated")
	}
	// Grow within capacity: still no reallocation.
	x.SetDim0(4)
	if &x.Data[0] != base || x.Numel() != 12 {
		t.Fatalf("grow-within-cap reallocated or wrong numel %d", x.Numel())
	}
	// Grow past capacity: reallocates, shape follows.
	x.SetDim0(100)
	if x.Dim(0) != 100 || x.Numel() != 300 {
		t.Fatalf("after big grow: shape %v", x.Shape())
	}
}

func TestSetDim0NonPositivePanics(t *testing.T) {
	defer expectPanic(t, "SetDim0")
	New(2, 2).SetDim0(0)
}
