package comm

import (
	"testing"

	"repro/internal/core"
)

// benchParams is the MLP-scale parameter count the transport benchmarks
// round-trip: large enough that header overhead is honest, small enough
// that one op is microseconds.
const benchParams = 40_000

// benchTransport round-trips one client dispatch (DownSized then
// UpSized) per op and reports the measured wire bytes as commB/op. Byte
// counts are exact functions of the spec and the parameter count —
// deterministic across runs and machines — so CI gates commB/op the
// same way it gates allocs/op: any growth in a transport's encoded size
// is a real wire-format regression, not runner noise.
func benchTransport(b *testing.B, spec string) {
	trI, err := ParseTransport(spec)
	if err != nil {
		b.Fatal(err)
	}
	tr, ok := trI.(core.SizedTransport)
	if !ok {
		b.Fatalf("%s transport does not size its transfers", spec)
	}
	global := make([]float64, benchParams)
	trained := make([]float64, benchParams)
	for i := range global {
		global[i] = float64(i%13) / 17
		trained[i] = global[i] + float64(i%7-3)/97
	}
	b.ReportAllocs()
	b.ResetTimer()
	var wire int64
	for i := 0; i < b.N; i++ {
		enc, down := tr.DownSized(1, i, global)
		_, up := tr.UpSized(1, i, append([]float64(nil), enc...))
		wire += down + up
	}
	b.StopTimer()
	b.ReportMetric(float64(wire)/float64(b.N), "commB/op")
}

func BenchmarkTransportF32(b *testing.B)      { benchTransport(b, "f32") }
func BenchmarkTransportLossless(b *testing.B) { benchTransport(b, "lossless") }
func BenchmarkTransportQ8(b *testing.B)       { benchTransport(b, "q8") }
func BenchmarkTransportQ8EF(b *testing.B)     { benchTransport(b, "q8+ef") }
func BenchmarkTransportTopKEF(b *testing.B)   { benchTransport(b, "topk:0.01+ef") }
func BenchmarkTransportRandK(b *testing.B)    { benchTransport(b, "randk:0.05") }

// The snapshot path is on the kill/resume critical section (the event
// loop is quiesced while it runs), so its cost is worth pinning too.
func BenchmarkTransportSnapshotState(b *testing.B) {
	trI, err := ParseTransport("topk:0.01+ef")
	if err != nil {
		b.Fatal(err)
	}
	tr := trI.(*CompressedTransport)
	global := make([]float64, benchParams)
	for i := range global {
		global[i] = float64(i%13) / 17
	}
	// Populate 64 clients' worth of residual state.
	for c := 0; c < 64; c++ {
		enc, _ := tr.DownSized(c, 0, global)
		params := append([]float64(nil), enc...)
		params[c%benchParams] += 0.5
		tr.UpSized(c, 0, params)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.SnapshotState(discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Guard against the benchmark table silently drifting from the parse
// grammar: every spec the benchmarks pin must stay parseable.
func TestBenchTransportSpecsParse(t *testing.T) {
	for _, spec := range []string{"f32", "lossless", "q8", "q8+ef", "topk:0.01+ef", "randk:0.05"} {
		if _, err := ParseTransport(spec); err != nil {
			t.Errorf("ParseTransport(%q): %v", spec, err)
		}
	}
}
