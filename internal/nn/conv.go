package nn

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/parallel"
	"repro/internal/prng"
	"repro/internal/tensor"
)

// convLayer is a 2D convolution over NCHW tensors, implemented as
// im2col + matmul per sample. The per-sample loop parallelises over the
// batch; each worker checks a convScratch out of the layer's pool so
// goroutines never share buffers and steady-state batches allocate
// nothing.
type convLayer struct {
	outC        int
	kh, kw      int
	stride, pad int
	geom        tensor.ConvGeom
	w, b        []float64
	dw, db      []float64
	wView       *tensor.Tensor // [outC, ColRows] view of w, fixed at Bind
	x           *tensor.Tensor
	y, dx       *tensor.Tensor
	dy          *tensor.Tensor // backward input, shared with workers
	scratch     sync.Pool      // *convScratch
}

// convScratch is one worker's im2col and gradient-accumulation storage.
// The out/dout tensors are header-only views whose Data is re-pointed at
// the current sample's slice of the batch output, so per-sample matmul
// calls allocate nothing.
type convScratch struct {
	col, dcol *tensor.Tensor
	dw        *tensor.Tensor
	db        []float64
	out, dout *tensor.Tensor
}

func (l *convLayer) getScratch() *convScratch {
	if v := l.scratch.Get(); v != nil {
		return v.(*convScratch)
	}
	g := l.geom
	return &convScratch{
		col:  tensor.New(g.ColRows(), g.ColCols()),
		dcol: tensor.New(g.ColRows(), g.ColCols()),
		dw:   tensor.New(l.outC, g.ColRows()),
		db:   make([]float64, l.outC),
		out:  tensor.New(l.outC, g.ColCols()),
		dout: tensor.New(l.outC, g.ColCols()),
	}
}

// Conv2D appends a convolution with outC filters of size k x k.
func (b *Builder) Conv2D(outC, k, stride, pad int) *Builder {
	if outC <= 0 || k <= 0 {
		b.fail(fmt.Errorf("nn: Conv2D bad filters=%d k=%d", outC, k))
		return b
	}
	b.add(&convLayer{outC: outC, kh: k, kw: k, stride: stride, pad: pad})
	return b
}

func (l *convLayer) Name() string { return "conv2d" }

func (l *convLayer) Resolve(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("nn: conv2d needs CHW input, got shape %v", in)
	}
	g, err := tensor.NewConvGeom(in[0], in[1], in[2], l.kh, l.kw, l.stride, l.pad)
	if err != nil {
		return nil, err
	}
	l.geom = g
	return []int{l.outC, g.OutH, g.OutW}, nil
}

func (l *convLayer) ParamCount() int {
	return l.outC*l.geom.ColRows() + l.outC
}

func (l *convLayer) Bind(params, grads []float64, rng *prng.Rand) {
	nw := l.outC * l.geom.ColRows()
	l.w, l.b = params[:nw], params[nw:]
	l.dw, l.db = grads[:nw], grads[nw:]
	l.wView = tensor.FromSlice(l.w, l.outC, l.geom.ColRows())
	std := math.Sqrt(2.0 / float64(l.geom.ColRows()))
	for i := range l.w {
		l.w[i] = rng.NormFloat64() * std
	}
	for i := range l.b {
		l.b[i] = 0
	}
}

func (l *convLayer) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Dim(0)
	l.x = x
	if l.y == nil {
		l.y = tensor.New(n, l.outC, l.geom.OutH, l.geom.OutW)
	} else if l.y.Dim(0) != n {
		l.y.SetDim0(n)
	}
	if parallel.Serial(n, parallel.DefaultMinWork) {
		l.forwardChunk(0, n)
	} else {
		parallel.ForChunked(n, l.forwardChunk)
	}
	return l.y
}

func (l *convLayer) forwardChunk(lo, hi int) {
	g := l.geom
	inSize := g.InC * g.InH * g.InW
	outSize := l.outC * g.OutH * g.OutW
	cs := l.getScratch()
	for s := lo; s < hi; s++ {
		img := l.x.Data[s*inSize : (s+1)*inSize]
		g.Im2Col(img, cs.col.Data)
		out := cs.out
		out.Data = l.y.Data[s*outSize : (s+1)*outSize]
		tensor.MatMul(out, l.wView, cs.col)
		// Add per-filter bias across the spatial map.
		for f := 0; f < l.outC; f++ {
			bf := l.b[f]
			row := out.Data[f*g.ColCols() : (f+1)*g.ColCols()]
			for i := range row {
				row[i] += bf
			}
		}
	}
	l.scratch.Put(cs)
}

func (l *convLayer) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n := dy.Dim(0)
	g := l.geom
	if l.dx == nil {
		l.dx = tensor.New(n, g.InC, g.InH, g.InW)
	} else if l.dx.Dim(0) != n {
		l.dx.SetDim0(n)
	}
	l.dy = dy
	if parallel.Serial(n, parallel.DefaultMinWork) {
		l.backwardChunk(0, n)
	} else {
		var mu sync.Mutex // serialises accumulation into l.dw / l.db
		parallel.ForChunked(n, func(lo, hi int) {
			l.backwardChunkLocked(lo, hi, &mu)
		})
	}
	return l.dx
}

// backwardChunk processes samples [lo, hi) with exclusive access to the
// layer's gradient slices (the serial path).
func (l *convLayer) backwardChunk(lo, hi int) {
	l.backwardChunkLocked(lo, hi, nil)
}

// backwardChunkLocked accumulates per-sample gradients into per-worker
// scratch and merges them into the layer's dw/db at the end, under mu when
// chunks run concurrently.
func (l *convLayer) backwardChunkLocked(lo, hi int, mu *sync.Mutex) {
	g := l.geom
	inSize := g.InC * g.InH * g.InW
	outSize := l.outC * g.OutH * g.OutW
	cs := l.getScratch()
	tensor.ZeroVec(cs.dw.Data)
	tensor.ZeroVec(cs.db)
	for s := lo; s < hi; s++ {
		img := l.x.Data[s*inSize : (s+1)*inSize]
		g.Im2Col(img, cs.col.Data)
		dout := cs.dout
		dout.Data = l.dy.Data[s*outSize : (s+1)*outSize]
		// dW += dOut x col^T, accumulated straight into worker scratch.
		tensor.MatMulABTAdd(cs.dw, dout, cs.col)
		// db_s = row sums of dOut.
		for f := 0; f < l.outC; f++ {
			row := dout.Data[f*g.ColCols() : (f+1)*g.ColCols()]
			var sum float64
			for _, v := range row {
				sum += v
			}
			cs.db[f] += sum
		}
		// dcol = W^T x dOut; dx_s = col2im(dcol).
		tensor.MatMulATB(cs.dcol, l.wView, dout)
		dximg := l.dx.Data[s*inSize : (s+1)*inSize]
		for i := range dximg {
			dximg[i] = 0
		}
		g.Col2Im(cs.dcol.Data, dximg)
	}
	if mu != nil {
		mu.Lock()
	}
	tensor.Axpy(1, cs.dw.Data, l.dw)
	tensor.Axpy(1, cs.db, l.db)
	if mu != nil {
		mu.Unlock()
	}
	l.scratch.Put(cs)
}

func (l *convLayer) FwdFLOPs() float64 {
	// MACs = ColRows * outC * spatial positions; 2 FLOPs per MAC + bias add.
	g := l.geom
	return float64(2*g.ColRows()*l.outC*g.ColCols() + l.outC*g.ColCols())
}

// maxPoolLayer is a k x k max pooling with stride k (the only configuration
// the paper's models need).
type maxPoolLayer struct {
	k       int
	c, h, w int
	oh, ow  int
	argmax  []int32 // flat input index of each output's max
	x, dy   *tensor.Tensor
	y, dx   *tensor.Tensor
}

// MaxPool2D appends k x k max pooling with stride k.
func (b *Builder) MaxPool2D(k int) *Builder {
	if k <= 0 {
		b.fail(fmt.Errorf("nn: MaxPool2D bad k=%d", k))
		return b
	}
	b.add(&maxPoolLayer{k: k})
	return b
}

func (l *maxPoolLayer) Name() string { return "maxpool2d" }

func (l *maxPoolLayer) Resolve(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("nn: maxpool needs CHW input, got %v", in)
	}
	l.c, l.h, l.w = in[0], in[1], in[2]
	if l.h%l.k != 0 || l.w%l.k != 0 {
		return nil, fmt.Errorf("nn: maxpool %d does not divide input %dx%d", l.k, l.h, l.w)
	}
	l.oh, l.ow = l.h/l.k, l.w/l.k
	return []int{l.c, l.oh, l.ow}, nil
}

func (l *maxPoolLayer) ParamCount() int                              { return 0 }
func (l *maxPoolLayer) Bind(params, grads []float64, rng *prng.Rand) {}

func (l *maxPoolLayer) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Dim(0)
	outSize := l.c * l.oh * l.ow
	if l.y == nil {
		l.y = tensor.New(n, l.c, l.oh, l.ow)
	} else if l.y.Dim(0) != n {
		l.y.SetDim0(n)
	}
	if cap(l.argmax) >= n*outSize {
		l.argmax = l.argmax[:n*outSize]
	} else {
		l.argmax = make([]int32, n*outSize)
	}
	l.x = x
	if parallel.Serial(n, parallel.DefaultMinWork) {
		l.forwardChunk(0, n)
	} else {
		parallel.ForChunked(n, l.forwardChunk)
	}
	return l.y
}

func (l *maxPoolLayer) forwardChunk(lo, hi int) {
	inSize := l.c * l.h * l.w
	outSize := l.c * l.oh * l.ow
	for s := lo; s < hi; s++ {
		in := l.x.Data[s*inSize : (s+1)*inSize]
		out := l.y.Data[s*outSize : (s+1)*outSize]
		am := l.argmax[s*outSize : (s+1)*outSize]
		o := 0
		for c := 0; c < l.c; c++ {
			base := c * l.h * l.w
			for oy := 0; oy < l.oh; oy++ {
				for ox := 0; ox < l.ow; ox++ {
					best := math.Inf(-1)
					bestIdx := 0
					for ky := 0; ky < l.k; ky++ {
						rowBase := base + (oy*l.k+ky)*l.w + ox*l.k
						for kx := 0; kx < l.k; kx++ {
							if v := in[rowBase+kx]; v > best {
								best = v
								bestIdx = rowBase + kx
							}
						}
					}
					out[o] = best
					am[o] = int32(bestIdx)
					o++
				}
			}
		}
	}
}

func (l *maxPoolLayer) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n := dy.Dim(0)
	if l.dx == nil {
		l.dx = tensor.New(n, l.c, l.h, l.w)
	} else if l.dx.Dim(0) != n {
		l.dx.SetDim0(n)
	}
	l.dy = dy
	if parallel.Serial(n, parallel.DefaultMinWork) {
		l.backwardChunk(0, n)
	} else {
		parallel.ForChunked(n, l.backwardChunk)
	}
	return l.dx
}

func (l *maxPoolLayer) backwardChunk(lo, hi int) {
	inSize := l.c * l.h * l.w
	outSize := l.c * l.oh * l.ow
	for s := lo; s < hi; s++ {
		dxs := l.dx.Data[s*inSize : (s+1)*inSize]
		for i := range dxs {
			dxs[i] = 0
		}
		dys := l.dy.Data[s*outSize : (s+1)*outSize]
		am := l.argmax[s*outSize : (s+1)*outSize]
		for o, v := range dys {
			dxs[am[o]] += v
		}
	}
}

func (l *maxPoolLayer) FwdFLOPs() float64 {
	return float64(l.c * l.oh * l.ow * l.k * l.k)
}
