package core

import (
	"sync"

	"repro/internal/prng"
)

// vecPool is a size-keyed free list for |w|-sized parameter vectors: the
// steady-state train -> upload -> aggregate -> merge cycle checks a buffer
// out in Client.LocalTrain (and for the async runtime's per-dispatch
// global snapshots) and returns it once the merge has consumed it, so a
// long run's upload traffic costs zero allocations after the first few
// rounds. The pool holds as many buffers as were ever simultaneously in
// flight — O(concurrency * |w|), never O(dispatches * |w|).
//
// Buffers are fully overwritten at checkout, so recycling cannot leak one
// client's parameters into another's arithmetic; the aliasing pin in
// pool_test.go proves checked-out buffers are never shared between
// concurrent in-flight clients.
type vecPool struct {
	mu   sync.Mutex
	free map[int][][]float64
}

var paramsPool = &vecPool{free: map[int][][]float64{}}

// get returns a length-n buffer with unspecified contents.
func (p *vecPool) get(n int) []float64 {
	p.mu.Lock()
	list := p.free[n]
	if len(list) > 0 {
		buf := list[len(list)-1]
		p.free[n] = list[:len(list)-1]
		p.mu.Unlock()
		return buf
	}
	p.mu.Unlock()
	return make([]float64, n)
}

// getCopy returns a pooled buffer holding a copy of src.
func (p *vecPool) getCopy(src []float64) []float64 {
	buf := p.get(len(src))
	copy(buf, src)
	return buf
}

// put returns a buffer to the free list. The caller must not retain it.
func (p *vecPool) put(buf []float64) {
	if buf == nil {
		return
	}
	p.mu.Lock()
	p.free[len(buf)] = append(p.free[len(buf)], buf)
	p.mu.Unlock()
}

// recycleUpdates returns every pooled upload buffer in updates to the
// pool and clears the Params fields so a stale reference cannot alias a
// buffer the pool has already handed to another client. Called by every
// runtime after the merge and metrics of an aggregation have consumed the
// updates; updates whose Params came from elsewhere (a Transport that
// swapped buffers, tests building Update literals) are left alone.
func recycleUpdates(updates []Update) {
	for i := range updates {
		if updates[i].pooled {
			paramsPool.put(updates[i].Params)
		}
		updates[i].Params = nil
		updates[i].pooled = false
	}
}

// randPermInto fills buf with a permutation of [0, n), drawing from rng
// exactly like rand.Perm does (same algorithm, same number of Intn calls),
// so replacing rand.Perm with it never shifts a trajectory — it only
// removes the per-call allocation.
func randPermInto(rng *prng.Rand, buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n)
	}
	buf = buf[:n]
	for i := 0; i < n; i++ {
		j := rng.Intn(i + 1)
		buf[i] = buf[j]
		buf[j] = i
	}
	return buf
}
