// Mu sensitivity: the paper's Fig. 7 as a runnable example.
//
// It sweeps FedTrip's regularization strength mu on an MLP task and
// reports the best accuracy and convergence speed of each setting. The
// paper's finding: small mu converges slowly, moderate mu (~0.4-1.0)
// accelerates convergence, and large mu trades accuracy for speed.
//
//	go run ./examples/mu_sensitivity
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/algos"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/stats"
)

func main() {
	const (
		clients   = 10
		perClient = 60
		rounds    = 25
	)
	train, test, err := data.Generate(data.Spec{
		Kind: data.KindFMNIST, Train: clients * perClient, Test: 300, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := partition.Partition(partition.Dirichlet(0.5), train.Y,
		train.Classes, clients, perClient, rand.New(rand.NewSource(22)))
	if err != nil {
		log.Fatal(err)
	}

	runWith := func(name string, p algos.Params) *core.Result {
		algo, err := algos.New(name, p)
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Run(core.Config{
			Model: nn.ModelSpec{
				Arch: nn.ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10,
			},
			Train: train, Test: test, Parts: parts,
			Rounds: rounds, ClientsPerRound: 4,
			BatchSize: 10, LocalEpochs: 1,
			LR: 0.01, Momentum: 0.9,
			Algo: algo, Seed: 23,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	// The rounds-to-target bar comes from the FedAvg baseline, mirroring
	// the harness's adaptive-target convention.
	ref := runWith("fedavg", algos.Params{})
	target := 0.97 * ref.FinalAccuracy
	fmt.Printf("FedAvg baseline: final %.4f -> target %.4f\n\n", ref.FinalAccuracy, target)

	fmt.Printf("%-6s  %-8s  %-8s  %s\n", "mu", "best", "final", "rounds-to-target")
	for _, mu := range []float64{0.1, 0.4, 1.0, 1.5, 2.5} {
		res := runWith("fedtrip", algos.Params{Mu: mu})
		rt := stats.RoundsToTarget(res.Accuracy, target)
		rtStr := fmt.Sprintf("%d", rt)
		if rt < 0 {
			rtStr = fmt.Sprintf(">%d", rounds)
		}
		fmt.Printf("%-6.2f  %-8.4f  %-8.4f  %s\n", mu, res.BestAccuracy, res.FinalAccuracy, rtStr)
	}
}
