package core

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/tensor"
)

func TestLogfReceivesRounds(t *testing.T) {
	cfg := testConfig(t, NewFedTrip(0.4))
	cfg.Rounds = 3
	var mu sync.Mutex
	var lines []string
	cfg.Logf = func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, format)
		mu.Unlock()
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 {
		t.Fatalf("Logf called %d times, want 3", len(lines))
	}
	if !strings.Contains(lines[0], "round") {
		t.Fatalf("log line %q", lines[0])
	}
}

func TestOnRoundHookSeesLiveServer(t *testing.T) {
	cfg := testConfig(t, NewFedTrip(0.4))
	cfg.Rounds = 4
	var rounds []int
	var globals [][]float64
	cfg.OnRound = func(round int, s *Server) {
		rounds = append(rounds, round)
		globals = append(globals, append([]float64(nil), s.Global()...))
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 4 {
		t.Fatalf("OnRound called %d times", len(rounds))
	}
	for i, r := range rounds {
		if r != i+1 {
			t.Fatalf("rounds sequence %v", rounds)
		}
	}
	// The global model must evolve between rounds.
	if tensor.MaxAbsDiff(globals[0], globals[3]) == 0 {
		t.Fatal("global model did not change across rounds")
	}
}

// Parallel client training must not introduce nondeterminism even for
// algorithms with per-client state and scratch models (MOON-style
// FeatureGradder); this exercises the concurrency contract.
type featAlgo struct {
	Base
}

func (featAlgo) Name() string { return "featalgo" }
func (featAlgo) FeatureGrad(c *Client, x, labels, features, out interface{ Numel() int }) bool {
	return false
}

func TestHistAcrossRoundsFeedsXi(t *testing.T) {
	f := NewFedTrip(0.4)
	cfg := testConfig(t, f)
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clients()[0]
	c.LocalTrain(2, s.Global())
	// Participating again at round 5: gap 3 -> xi = 1/3.
	f.BeginRound(c, 5, s.Global())
	if xi := c.Scalar("fedtrip.xi"); xi != 1.0/3 {
		t.Fatalf("xi = %v want 1/3", xi)
	}
	// Hist must be the round-2 upload, not the new global.
	if c.LastRound != 2 {
		t.Fatalf("LastRound %d", c.LastRound)
	}
}

// The global-pull term must vanish when GlobalWeight is zeroed (history
// ablation) while the repulsion term still applies.
func TestFedTripAblationWeights(t *testing.T) {
	f := NewFedTrip(0.5)
	f.GlobalWeight = 0
	cfg := testConfig(t, f)
	c := newClient(&cfg, 0, []int{0}, 5)
	n := c.NumParams()
	global := make([]float64, n)
	for i := range global {
		global[i] = 7 // would dominate g if the pull term leaked
	}
	hist := make([]float64, n)
	for i := range hist {
		hist[i] = 1
	}
	c.Hist = hist
	c.LastRound = 1
	f.BeginRound(c, 2, global)
	w := make([]float64, n) // zeros
	g := make([]float64, n)
	f.TransformGrad(c, 2, w, g)
	// xi = 1/(2-1) = 1; g = mu * xi * (hist - w) = 0.5 * 1 = 0.5.
	for i := range g {
		if g[i] != 0.5 {
			t.Fatalf("g[%d] = %v want 0.5 (pull term leaked?)", i, g[i])
		}
	}
}

// HistWeight=0 must reduce FedTrip to a pure proximal method even with a
// historical model present.
func TestFedTripHistWeightZero(t *testing.T) {
	f := NewFedTrip(0.5)
	f.HistWeight = 0
	cfg := testConfig(t, f)
	c := newClient(&cfg, 0, []int{0}, 5)
	n := c.NumParams()
	global := make([]float64, n)
	for i := range global {
		global[i] = 2
	}
	c.Hist = make([]float64, n) // zeros, would repel if active
	c.LastRound = 1
	f.BeginRound(c, 2, global)
	w := make([]float64, n)
	g := make([]float64, n)
	f.TransformGrad(c, 2, w, g)
	for i := range g {
		if g[i] != -1.0 { // 0.5 * (0 - 2)
			t.Fatalf("g[%d] = %v want -1", i, g[i])
		}
	}
}

// FedTrip under full participation (K = N) has gap always 1, so xi = 1
// for every round after the first — the regime where the triplet term is
// strongest.
func TestXiFullParticipation(t *testing.T) {
	f := NewFedTrip(0.4)
	for round := 2; round < 10; round++ {
		if xi := f.Xi(round, round-1); xi != 1 {
			t.Fatalf("round %d xi = %v", round, xi)
		}
	}
}
