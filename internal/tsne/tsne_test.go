package tsne

import (
	"math"
	"math/rand"
	"testing"
)

// threeBlobs builds n points in dim dimensions drawn from 3 well-separated
// Gaussian clusters.
func threeBlobs(rng *rand.Rand, n, dim int) ([]float64, []int) {
	x := make([]float64, n*dim)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 3
		labels[i] = c
		for k := 0; k < dim; k++ {
			center := 0.0
			if k == 0 {
				center = float64(c) * 10
			}
			x[i*dim+k] = center + rng.NormFloat64()*0.5
		}
	}
	return x, labels
}

func TestEmbedSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, dim := 90, 5
	x, labels := threeBlobs(rng, n, dim)
	y, err := Embed(x, n, dim, Config{Iters: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != n*2 {
		t.Fatalf("embedding length %d", len(y))
	}
	for _, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite embedding")
		}
	}
	// The embedding must preserve cluster structure: silhouette of the 2-D
	// embedding should be clearly positive.
	sil, err := Silhouette(y, labels, n, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sil < 0.3 {
		t.Fatalf("embedding silhouette %.3f — clusters not preserved", sil)
	}
}

func TestEmbedDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, dim := 30, 4
	x, _ := threeBlobs(rng, n, dim)
	a, err := Embed(x, n, dim, Config{Iters: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Embed(x, n, dim, Config{Iters: 100, Seed: 5})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different embedding")
		}
	}
}

func TestEmbedBadInput(t *testing.T) {
	if _, err := Embed([]float64{1}, 1, 1, Config{}); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := Embed([]float64{1, 2, 3}, 2, 2, Config{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestSilhouetteKnownCases(t *testing.T) {
	// Two tight, distant clusters: silhouette near 1.
	x := []float64{0, 0.01, 0.02, 10, 10.01, 10.02}
	labels := []int{0, 0, 0, 1, 1, 1}
	s, err := Silhouette(x, labels, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.95 {
		t.Fatalf("tight clusters silhouette %.3f", s)
	}
	// Interleaved labels: silhouette near or below 0.
	x2 := []float64{0, 1, 2, 3, 4, 5}
	labels2 := []int{0, 1, 0, 1, 0, 1}
	s2, err := Silhouette(x2, labels2, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s2 > 0.1 {
		t.Fatalf("interleaved silhouette %.3f should be ~<=0", s2)
	}
	if s <= s2 {
		t.Fatal("separated clusters must outscore interleaved ones")
	}
}

func TestSilhouetteSingletonAndSingleClass(t *testing.T) {
	// Singleton class contributes 0.
	s, err := Silhouette([]float64{0, 1, 2}, []int{0, 0, 1}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(s) {
		t.Fatal("NaN silhouette")
	}
	// All one class: defined as 0 here.
	s1, err := Silhouette([]float64{0, 1, 2}, []int{0, 0, 0}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != 0 {
		t.Fatalf("single-class silhouette %v", s1)
	}
}

func TestSilhouetteErrors(t *testing.T) {
	if _, err := Silhouette([]float64{1}, []int{0}, 1, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := Silhouette([]float64{1, 2}, []int{0}, 2, 1); err == nil {
		t.Fatal("label length mismatch accepted")
	}
	if _, err := Silhouette([]float64{1, 2}, []int{0, -1}, 2, 1); err == nil {
		t.Fatal("negative label accepted")
	}
}

func TestPerplexityClamped(t *testing.T) {
	// Tiny n with default (30) perplexity must not blow up.
	rng := rand.New(rand.NewSource(7))
	n, dim := 12, 3
	x, _ := threeBlobs(rng, n, dim)
	y, err := Embed(x, n, dim, Config{Iters: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range y {
		if math.IsNaN(v) {
			t.Fatal("NaN with clamped perplexity")
		}
	}
}
