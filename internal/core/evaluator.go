package core

import (
	"sync"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// evaluator computes test accuracy off the event loop. The loop hands it a
// snapshot of the global parameters (round, copy-of-w) and keeps merging;
// the evaluator goroutine works through snapshots in order and publishes
// results. At EvalEvery=1 this overlaps each round's evaluation with the
// next round's training and merging — previously the single most expensive
// thing the event loop did inline.
//
// The request channel is deliberately small: if evaluation cannot keep up,
// submit blocks, so at most a couple of |w| snapshots are ever alive.
type evaluator struct {
	model *nn.Model
	test  evalDataset
	reqs  chan evalSnap

	mu     sync.Mutex
	cond   *sync.Cond
	accs   map[int]float64 // round -> accuracy, published as computed
	closed sync.WaitGroup
}

type evalSnap struct {
	round  int
	params []float64
}

// evalDataset is the slice of the dataset API evaluation needs.
type evalDataset interface {
	Len() int
	SampleSize() int
	FillBatch(x *tensor.Tensor, labels []int, idx []int)
}

func newEvaluator(cfg *Config) (*evaluator, error) {
	// A dedicated model instance: Server.EvaluateGlobal stays usable from
	// OnRound hooks while the evaluator is mid-batch.
	m, err := cfg.Model.Build(streamSeed(cfg.Seed, streamModel, 0))
	if err != nil {
		return nil, err
	}
	e := &evaluator{
		model: m,
		test:  cfg.Test,
		reqs:  make(chan evalSnap, 2),
		accs:  make(map[int]float64),
	}
	e.cond = sync.NewCond(&e.mu)
	e.closed.Add(1)
	go e.loop()
	return e, nil
}

func (e *evaluator) loop() {
	defer e.closed.Done()
	for req := range e.reqs {
		acc := EvaluateAccuracy(e.model, req.params, e.test, 200)
		paramsPool.put(req.params) // snapshot consumed; recycle it
		e.mu.Lock()
		e.accs[req.round] = acc
		e.cond.Broadcast()
		e.mu.Unlock()
	}
}

// submit queues round's snapshot (the evaluator takes ownership of params).
// Blocks only when the evaluator is more than one round behind.
func (e *evaluator) submit(round int, params []float64) {
	e.reqs <- evalSnap{round: round, params: params}
}

// wait blocks until round's submitted evaluation is done and returns it.
func (e *evaluator) wait(round int) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if acc, ok := e.accs[round]; ok {
			return acc
		}
		e.cond.Wait()
	}
}

// drain waits for every submitted evaluation to finish and stops the
// goroutine. The accumulated results remain readable via take.
func (e *evaluator) drain() {
	close(e.reqs)
	e.closed.Wait()
}

// take returns the accuracy computed for round (after drain, every
// submitted round is present).
func (e *evaluator) take(round int) (float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	acc, ok := e.accs[round]
	return acc, ok
}

// exportAccs returns a copy of every published accuracy. Snapshot calls
// it after recorder.syncEvals, so the map is complete through the last
// submitted round; unlike drain it leaves the goroutine running and the
// run resumable.
func (e *evaluator) exportAccs() map[int]float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[int]float64, len(e.accs))
	for r, a := range e.accs {
		out[r] = a
	}
	return out
}

// preload publishes previously computed accuracies into a fresh
// evaluator — Resume's path for the rounds evaluated before the
// snapshot, which finalize folds into the accuracy series exactly as if
// this process had computed them.
func (e *evaluator) preload(accs map[int]float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for r, a := range accs {
		e.accs[r] = a
	}
}
