package algos

import (
	"repro/internal/core"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// MimeLite (Karimireddy et al., 2020) mimics centralized SGD-with-momentum
// by keeping the momentum state s on the server and applying it unchanged
// during local steps:
//
//	local:  w <- w - lr * ( (1-beta) * g + beta * s )
//	server: s <- (1-beta) * mean_k gradFull_k(w_global) + beta * s
//
// The full-batch gradients at the round's starting point are gathered in
// the pre-round phase (cost n(FP+BP) per client, extra 2|w| communication
// — Appendix A row "MimeLite").
type MimeLite struct {
	core.Base
	// Beta is the momentum coefficient.
	Beta float64

	s       []float64 // server momentum state
	pending []float64 // mean full-batch gradient gathered in PreRound
	scratch []float64 // per-client gradient buffer reused across PreRounds
}

// Name implements core.Algorithm.
func (*MimeLite) Name() string { return "mimelite" }

// NewOptimizer implements core.OptimizerChooser: the momentum lives on the
// server, so local steps are plain SGD on the mimicked update direction.
func (*MimeLite) NewOptimizer(lr, momentum float64) optim.Optimizer {
	return optim.NewSGD(lr)
}

// ExtraCommFactor implements core.CommCoster: s down, full gradient up.
func (*MimeLite) ExtraCommFactor() float64 { return 2 }

// PreRound gathers full-batch gradients at the current global model.
func (m *MimeLite) PreRound(round int, selected []*core.Client, global []float64) {
	if m.s == nil {
		m.s = make([]float64, len(global))
		m.pending = make([]float64, len(global))
		m.scratch = make([]float64, len(global))
	}
	tensor.ZeroVec(m.pending)
	inv := 1 / float64(len(selected))
	for _, c := range selected {
		c.FullGradInto(m.scratch, global)
		tensor.Axpy(inv, m.scratch, m.pending)
	}
}

// TransformGrad rewrites g into the mimicked momentum direction.
func (m *MimeLite) TransformGrad(c *core.Client, round int, w, g []float64) {
	b := m.Beta
	for i := range g {
		g[i] = (1-b)*g[i] + b*m.s[i] // s is stable during the client phase
	}
	c.Counter.Add(int64(3 * len(w)))
}

// Aggregate averages models and advances the server momentum with the
// pre-round full-batch gradients.
func (m *MimeLite) Aggregate(round int, global []float64, updates []core.Update) []float64 {
	n := len(global)
	next := make([]float64, n)
	weights := make([]float64, len(updates))
	vecs := make([][]float64, len(updates))
	var total float64
	for i, u := range updates {
		weights[i] = float64(u.NumSamples)
		vecs[i] = u.Params
		total += weights[i]
	}
	for i := range weights {
		weights[i] /= total
	}
	tensor.WeightedSumInto(next, weights, vecs)
	for i := range m.s {
		m.s[i] = (1-m.Beta)*m.pending[i] + m.Beta*m.s[i]
	}
	return next
}
