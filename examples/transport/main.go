// Transport: real wire-format communication accounting.
//
// The paper's communication columns assume float32 model shipping. This
// example runs the same FedTrip task twice — once with lossless in-memory
// handoff and once through the float32 wire transport (actual
// encode/decode of every transfer) — and reports measured traffic and the
// accuracy impact of transport quantization (spoiler: none that matters,
// which is why the paper's accounting is fair).
//
//	go run ./examples/transport
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
)

func main() {
	const (
		clients   = 10
		perClient = 60
		rounds    = 15
	)
	train, test, err := data.Generate(data.Spec{
		Kind: data.KindMNIST, Train: clients * perClient, Test: 300, Seed: 41,
	})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := partition.Partition(partition.Dirichlet(0.5), train.Y,
		train.Classes, clients, perClient, rand.New(rand.NewSource(42)))
	if err != nil {
		log.Fatal(err)
	}

	runWith := func(tr core.Transport) *core.Result {
		algo, err := core.NewFedTrip(1.0), error(nil)
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Run(core.Config{
			Model: nn.ModelSpec{
				Arch: nn.ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10,
			},
			Train: train, Test: test, Parts: parts,
			Rounds: rounds, ClientsPerRound: 4,
			BatchSize: 10, LocalEpochs: 1,
			LR: 0.01, Momentum: 0.9,
			Algo: algo, Seed: 43,
			Transport: tr,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	lossless := comm.NewLosslessTransport()
	resLossless := runWith(lossless)

	f32 := comm.NewF32Transport()
	resF32 := runWith(f32)

	fmt.Println("transport comparison (FedTrip, MLP, 15 rounds):")
	fmt.Printf("  float64 in-memory: final acc %.4f, wire %s\n",
		resLossless.FinalAccuracy, lossless.Stats())
	fmt.Printf("  float32 wire:      final acc %.4f, wire %s\n",
		resF32.FinalAccuracy, f32.Stats())
	saved := 1 - float64(f32.Stats().TotalBytes())/float64(lossless.Stats().TotalBytes())
	fmt.Printf("  float32 transport saves %.1f%% traffic, accuracy delta %+.4f\n",
		100*saved, resF32.FinalAccuracy-resLossless.FinalAccuracy)
}
