package core

import (
	"math"
	"repro/internal/prng"
	"testing"
)

// Every spec form must parse, round-trip through String, and sample
// nonnegative durations.
func TestParseLatencyForms(t *testing.T) {
	good := []struct {
		spec, str string
	}{
		{"zero", "zero"},
		{"", "zero"}, // empty spec is the zero model
		{"const:2", "const:2"},
		{"const:0", "const:0"},
		{"uniform:0.5,2", "uniform:0.5,2"},
		{"uniform:0,0", "uniform:0,0"},
		{"exp:1.5", "exp:1.5"},
		{"lognormal:0,0.5", "lognormal:0,0.5"},
		{"lognormal:-1,0", "lognormal:-1,0"}, // negative mu is fine: exp(mu) > 0
		{"straggler:1,10,5", "straggler:1,10,5"},
		{"straggler:2,2,1", "straggler:2,2,1"}, // slow == fast degenerates cleanly
		{"const: 2", "const:2"},                // whitespace around args is trimmed
	}
	rng := prng.New(1)
	for _, g := range good {
		m, err := ParseLatency(g.spec)
		if err != nil {
			t.Fatalf("%q: %v", g.spec, err)
		}
		if m.String() != g.str {
			t.Fatalf("%q round-tripped to %s", g.spec, m.String())
		}
		for i := 0; i < 100; i++ {
			if d := m.Sample(i, rng); d < 0 {
				t.Fatalf("%q sampled negative latency %v", g.spec, d)
			}
		}
	}
}

// Malformed specs: unknown names, wrong arity, non-numeric args, and
// out-of-domain parameters must all be rejected with an error.
func TestParseLatencyMalformed(t *testing.T) {
	bad := []string{
		"warp",              // unknown model
		"zero:1",            // zero takes no args
		"const",             // missing arg
		"const:",            // empty arg list
		"const:x",           // non-numeric
		"const:1,2",         // too many args
		"const:-1",          // negative duration
		"uniform:1",         // missing max
		"uniform:2,1",       // max < min
		"uniform:-1,1",      // negative min
		"exp:0",             // zero mean
		"exp:-2",            // negative mean
		"exp:1,2",           // too many args
		"lognormal:0",       // missing sigma
		"lognormal:0,-1",    // negative sigma
		"straggler:1,10",    // missing every
		"straggler:1,0.5,3", // slow < fast
		"straggler:0,2,3",   // zero fast
		"straggler:1,2,0",   // every < 1
	}
	for _, spec := range bad {
		if _, err := ParseLatency(spec); err == nil {
			t.Fatalf("%q accepted", spec)
		}
	}
}

// Parsed models must carry their parameters: spot-check each form's
// sampling behaviour, not just its name.
func TestParseLatencySampling(t *testing.T) {
	rng := prng.New(2)
	sample := func(spec string) LatencyModel {
		t.Helper()
		m, err := ParseLatency(spec)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if d := sample("zero").Sample(3, rng); d != 0 {
		t.Fatalf("zero sampled %v", d)
	}
	if d := sample("const:2.5").Sample(3, rng); d != 2.5 {
		t.Fatalf("const:2.5 sampled %v", d)
	}
	u := sample("uniform:0.5,2")
	for i := 0; i < 200; i++ {
		if d := u.Sample(i, rng); d < 0.5 || d > 2 {
			t.Fatalf("uniform:0.5,2 sampled %v", d)
		}
	}
	// Exponential: the empirical mean over many draws approaches the
	// configured mean.
	e := sample("exp:1.5")
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += e.Sample(i, rng)
	}
	if mean := sum / n; math.Abs(mean-1.5) > 0.1 {
		t.Fatalf("exp:1.5 empirical mean %v", mean)
	}
	// Lognormal: strictly positive.
	l := sample("lognormal:0,0.5")
	for i := 0; i < 200; i++ {
		if d := l.Sample(i, rng); d <= 0 {
			t.Fatalf("lognormal sampled %v", d)
		}
	}
	// Straggler: client 0 is slow (10 +- 10%), client 1 fast (1 +- 10%).
	s := sample("straggler:1,10,5")
	for i := 0; i < 50; i++ {
		if d := s.Sample(0, rng); d < 9 || d > 11 {
			t.Fatalf("straggler slow client sampled %v", d)
		}
		if d := s.Sample(1, rng); d < 0.9 || d > 1.1 {
			t.Fatalf("straggler fast client sampled %v", d)
		}
	}
}

// Models advertising the PerClientLatency capability must keep
// Sample(id, rng) == JitterOn(ClientBase(id), rng) draw-for-draw — the
// contract the population registry's latency cache relies on.
func TestPerClientLatencyCacheContract(t *testing.T) {
	for _, spec := range []string{"zero", "const:3", "straggler:1,10,4"} {
		m, err := ParseLatency(spec)
		if err != nil {
			t.Fatal(err)
		}
		pc, ok := m.(PerClientLatency)
		if !ok {
			t.Fatalf("%q does not implement PerClientLatency", spec)
		}
		direct := prng.New(9)
		cached := prng.New(9)
		for id := 0; id < 20; id++ {
			want := m.Sample(id, direct)
			got := pc.JitterOn(pc.ClientBase(id), cached)
			if got != want {
				t.Fatalf("%q client %d: cached path %v, direct %v", spec, id, got, want)
			}
		}
	}
}
