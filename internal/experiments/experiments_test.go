package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/algos"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
)

func TestProfilesByName(t *testing.T) {
	for _, name := range []string{"fast", "paper", "tiny", ""} {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Rounds <= 0 || p.Clients <= 0 || p.PerRound <= 0 {
			t.Fatalf("profile %q has zero fields: %+v", name, p)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8",
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"theory-xi", "theory-rho", "ext-quant", "tta", "hetero", "comm-tta", "robust", "abl-xi", "abl-hist", "abl-extra",
	}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(ids), len(want))
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("registry[%d] = %q want %q", i, ids[i], id)
		}
		if _, ok := Get(id); !ok {
			t.Fatalf("Get(%q) failed", id)
		}
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("unknown id found")
	}
	if ErrUnknown("x") == nil {
		t.Fatal("ErrUnknown nil")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:      "t",
		Title:   "demo",
		Headers: []string{"A", "Blong"},
		Rows:    [][]string{{"row1cell", "x"}},
		Notes:   []string{"a note"},
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, frag := range []string{"demo", "Blong", "row1cell", "note: a note"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestStaticTables(t *testing.T) {
	p := Tiny()
	for _, id := range []string{"table1", "table2", "table3", "table8"} {
		e, _ := Get(id)
		tabs, err := e.Run(p, nil)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tabs) != 1 || len(tabs[0].Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
	}
}

func TestTable2RowsMatchPaper(t *testing.T) {
	e, _ := Get("table2")
	tabs, err := e.Run(Tiny(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs[0].Rows) != 4 {
		t.Fatalf("Table II must have 4 dataset rows, got %d", len(tabs[0].Rows))
	}
}

func TestTable8HasAllMethods(t *testing.T) {
	e, _ := Get("table8")
	tabs, err := e.Run(Tiny(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs[0].Rows) != 11 {
		t.Fatalf("Table VIII should list 11 methods, got %d", len(tabs[0].Rows))
	}
}

func TestRunCaching(t *testing.T) {
	ResetCaches()
	p := Tiny()
	c := Case{Kind: data.KindMNIST, Arch: nn.ArchMLP, Scheme: partition.Dirichlet(0.5), Algo: "fedavg"}
	r1, err := p.Run(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Run(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("identical case not served from cache")
	}
	// A different method must not hit the same cache entry.
	c2 := c
	c2.Algo = "fedprox"
	r3, err := p.Run(c2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Fatal("different case collided in cache")
	}
}

func TestFactoryKeyDisambiguatesCache(t *testing.T) {
	a := fedTripVariant("variant-a", func(f *core.FedTrip) {})
	b := fedTripVariant("variant-b", func(f *core.FedTrip) { f.Mode = core.XiGap })
	p := Tiny()
	if a.key(p) == b.key(p) {
		t.Fatal("factory variants must have distinct cache keys")
	}
}

// The run cache must not collide across runtimes or aggregation
// policies: the same case on sync, async/fedbuff, and async/fedasync are
// three different runs.
func TestCaseKeyIncludesRuntimeAndPolicy(t *testing.T) {
	p := Tiny()
	base := Case{Kind: data.KindMNIST, Arch: nn.ArchMLP, Scheme: partition.Dirichlet(0.5), Algo: "fedavg"}
	async := base
	async.Runtime = core.RuntimeAsync
	async.Latency = "straggler:1,10,3"
	fedasync := async
	fedasync.Policy = "fedasync"
	keys := map[string]string{
		"sync":     base.key(p),
		"fedbuff":  async.key(p),
		"fedasync": fedasync.key(p),
	}
	seen := map[string]string{}
	for name, k := range keys {
		if prev, ok := seen[k]; ok {
			t.Fatalf("cases %s and %s share cache key %q", prev, name, k)
		}
		seen[k] = name
	}
	// Profile-level runtime selection must shift every key too.
	pAsync := p
	pAsync.Runtime = core.RuntimeAsync
	pAsync.Latency = "exp:2"
	if base.key(p) == base.key(pAsync) {
		t.Fatal("profile runtime override did not change the cache key")
	}
}

func TestDefaultParamsPaperValues(t *testing.T) {
	if MuFedTrip(nn.ArchMLP) != 1.0 || MuFedTrip(nn.ArchCNN) != 0.4 {
		t.Fatal("FedTrip mu defaults")
	}
	if AlphaFedDyn(data.KindMNIST) != 1.0 || AlphaFedDyn(data.KindCIFAR) != 0.1 {
		t.Fatal("FedDyn alpha defaults")
	}
	if DefaultParams("fedtrip", nn.ArchMLP, data.KindMNIST).Mu != 1.0 {
		t.Fatal("DefaultParams fedtrip")
	}
	if DefaultParams("feddyn", nn.ArchCNN, data.KindMNIST).Alpha != 1.0 {
		t.Fatal("DefaultParams feddyn")
	}
	if DefaultParams("fedavg", nn.ArchCNN, data.KindMNIST) != (algos.Params{}) {
		t.Fatal("fedavg should take zero params")
	}
}

func TestAdaptiveHelpers(t *testing.T) {
	if got := formatRounds(12, true); got != "12" {
		t.Fatalf("formatRounds %q", got)
	}
	if got := formatRounds(30, false); got != ">30" {
		t.Fatalf("formatRounds unreached %q", got)
	}
	if got := speedupCell(20, true, 10); got != "20 (2.00x)" {
		t.Fatalf("speedupCell %q", got)
	}
}

// The tiny profile must be able to run a full round-based experiment
// (fig4 is pure partitioning; table7-style runs are covered by the MLP
// case below).
func TestFig4Tiny(t *testing.T) {
	e, _ := Get("fig4")
	tabs, err := e.Run(Tiny(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 5 {
		t.Fatalf("fig4 should emit 4 distribution tables + 1 summary, got %d", len(tabs))
	}
	for _, tab := range tabs[:4] {
		if len(tab.Rows) != Tiny().Clients {
			t.Fatalf("fig4 table has %d rows, want %d", len(tab.Rows), Tiny().Clients)
		}
	}
	if len(tabs[4].Rows) != 4 {
		t.Fatalf("fig4 summary has %d rows, want 4 schemes", len(tabs[4].Rows))
	}
}

func TestMLPComparisonTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ResetCaches()
	p := Tiny()
	bc := benchCase{label: "MLP/MNIST", arch: nn.ArchMLP, kind: data.KindMNIST}
	results, err := methodResults(p, bc, partition.Dirichlet(0.5), 0, 0, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(PaperMethods()) {
		t.Fatalf("got %d methods", len(results))
	}
	target := adaptiveTarget(results["fedavg"])
	if target <= 0 || target > 1 {
		t.Fatalf("adaptive target %v", target)
	}
}
