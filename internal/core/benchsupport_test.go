package core

import (
	"math/rand"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
)

// benchConfigErr builds a small MLP config for benchmarks without a
// *testing.T.
func benchConfigErr() (Config, error) {
	train, test, err := data.Generate(data.Spec{Kind: data.KindMNIST, Train: 800, Test: 100, Seed: 42})
	if err != nil {
		return Config{}, err
	}
	rng := rand.New(rand.NewSource(7))
	parts, err := partition.Partition(partition.Dirichlet(0.5), train.Y, train.Classes, 10, 80, rng)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Model:           nn.ModelSpec{Arch: nn.ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10},
		Train:           train,
		Test:            test,
		Parts:           parts,
		Rounds:          3,
		ClientsPerRound: 4,
		BatchSize:       10,
		LocalEpochs:     1,
		LR:              0.01,
		Momentum:        0.9,
		Algo:            NewFedTrip(0.4),
		Seed:            1,
	}, nil
}
