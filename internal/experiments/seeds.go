package experiments

// Named harness seed streams. Every stochastic draw the experiment
// harnesses make outside a core run — data partitioning, the theory-xi
// participation simulation — derives from Profile.Seed through
// prng.StreamSeed under one of these names, exactly like the runtime's
// registry in internal/core/seeds.go. Before this block existed the
// harnesses seeded raw math/rand generators (rand.NewSource(p.Seed),
// p.Seed+100000*trial, ...), whose 617-word hidden state cannot be
// exported and whose ad-hoc offsets collide silently as harnesses are
// added.
//
// The names are part of the deterministic-run contract: renaming one
// changes every table downstream of it. The fedtripvet seedstream
// analyzer rejects stream names that are not registered here.
const (
	// streamPartition draws a harness run's data partition (the
	// per-trial runner derives trial-distinct run seeds before opening
	// the stream, so one name serves every table).
	streamPartition = "harness/partition"
	// streamXi drives the theory-xi participation simulation (the
	// geometric-gap sampling behind Theorem 1's E[xi] coefficient).
	streamXi = "harness/xi"
)
