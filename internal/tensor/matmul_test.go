package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMatMul is the reference implementation all kernels are checked
// against.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += a.Data[i*k+p] * b.Data[p*n+j]
			}
			c.Data[i*n+j] = s
		}
	}
	return c
}

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	t.RandNormal(rng, 1)
	return t
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 1, 7}, {17, 23, 9}, {64, 31, 64}, {3, 128, 2}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randTensor(rng, m, k), randTensor(rng, k, n)
		c := New(m, n)
		MatMul(c, a, b)
		want := naiveMatMul(a, b)
		if d := MaxAbsDiff(c.Data, want.Data); d > 1e-10 {
			t.Fatalf("MatMul %v: max diff %v", dims, d)
		}
	}
}

func TestMatMulOverwritesOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a, b := randTensor(rng, 3, 4), randTensor(rng, 4, 5)
	c := New(3, 5)
	c.Fill(99) // stale values must be overwritten, not accumulated
	MatMul(c, a, b)
	want := naiveMatMul(a, b)
	if d := MaxAbsDiff(c.Data, want.Data); d > 1e-10 {
		t.Fatalf("stale output leaked: %v", d)
	}
}

func TestMatMulAddBias(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, b := randTensor(rng, 6, 3), randTensor(rng, 3, 4)
	bias := []float64{1, -2, 3, -4}
	c := New(6, 4)
	MatMulAddBias(c, a, b, bias)
	want := naiveMatMul(a, b)
	for i := 0; i < 6; i++ {
		for j := 0; j < 4; j++ {
			want.Data[i*4+j] += bias[j]
		}
	}
	if d := MaxAbsDiff(c.Data, want.Data); d > 1e-10 {
		t.Fatalf("bias broadcast wrong: %v", d)
	}
}

func TestMatMulATB(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, dims := range [][3]int{{2, 3, 4}, {33, 7, 5}, {1, 9, 1}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randTensor(rng, m, k), randTensor(rng, m, n)
		c := New(k, n)
		c.Fill(5)
		MatMulATB(c, a, b)
		// Reference: transpose A explicitly.
		at := New(k, m)
		for i := 0; i < m; i++ {
			for p := 0; p < k; p++ {
				at.Data[p*m+i] = a.Data[i*k+p]
			}
		}
		want := naiveMatMul(at, b)
		if d := MaxAbsDiff(c.Data, want.Data); d > 1e-10 {
			t.Fatalf("MatMulATB %v: max diff %v", dims, d)
		}
	}
}

func TestMatMulABT(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range [][3]int{{2, 3, 4}, {13, 6, 21}, {1, 5, 1}} {
		m, n, k := dims[0], dims[1], dims[2]
		a, b := randTensor(rng, m, n), randTensor(rng, k, n)
		c := New(m, k)
		c.Fill(-3)
		MatMulABT(c, a, b)
		bt := New(n, k)
		for i := 0; i < k; i++ {
			for j := 0; j < n; j++ {
				bt.Data[j*k+i] = b.Data[i*n+j]
			}
		}
		want := naiveMatMul(a, bt)
		if d := MaxAbsDiff(c.Data, want.Data); d > 1e-10 {
			t.Fatalf("MatMulABT %v: max diff %v", dims, d)
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer expectPanic(t, "shape mismatch")
	MatMul(New(2, 2), New(2, 3), New(4, 2))
}

func TestMatMulRankPanics(t *testing.T) {
	defer expectPanic(t, "rank")
	MatMul(New(2, 2), New(4), New(2, 2))
}

// Property: matrix multiplication distributes over addition.
func TestMatMulDistributive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a := randTensor(rng, m, k)
		b1, b2 := randTensor(rng, k, n), randTensor(rng, k, n)
		sum := New(k, n)
		AddInto(sum.Data, b1.Data, b2.Data)
		left := New(m, n)
		MatMul(left, a, sum)
		r1, r2 := New(m, n), New(m, n)
		MatMul(r1, a, b1)
		MatMul(r2, a, b2)
		right := New(m, n)
		AddInto(right.Data, r1.Data, r2.Data)
		return MaxAbsDiff(left.Data, right.Data) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := randTensor(rng, 128, 128), randTensor(rng, 128, 128)
	c := New(128, 128)
	b.SetBytes(128 * 128 * 128 * 2 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(c, x, y)
	}
}
