package experiments

import (
	"fmt"

	"repro/internal/core"
)

// Profile scales the experiment suite. Fast preserves the method ordering
// on a laptop budget; Paper reproduces §V.A's settings; Tiny exists for
// unit tests.
//
// Every experiment is runtime-agnostic: the Runtime / Latency / Policy /
// ServerLR fields select which runtime and aggregation policy the cases
// run on (cmd/fedtrip-tables exposes them as flags), and individual
// experiments may override them per Case (the time-to-accuracy table does,
// to compare policies side by side).
type Profile struct {
	Name string
	// SamplesPerClient overrides Table II's per-client data size
	// (0 keeps the paper value).
	SamplesPerClient int
	// CIFARSamples further overrides SamplesPerClient for the CIFAR-like
	// dataset, whose AlexNet runs dominate compute (0 = SamplesPerClient).
	CIFARSamples int
	// EMNISTSamples further overrides SamplesPerClient for the 47-class
	// EMNIST-like dataset, which needs more data per client to be
	// learnable at fast-profile sizes (0 = SamplesPerClient).
	EMNISTSamples int
	// TestSamples sizes the held-out evaluation set.
	TestSamples int
	// Rounds is the communication-round budget T (paper: 100).
	Rounds int
	// Repeats is the number of independent trials per configuration
	// (paper: 10).
	Repeats int
	// Clients and PerRound are N and K (paper default: 10 and 4;
	// Table VI uses 50 and 4).
	Clients, PerRound int
	// Batch and LocalEpochs follow §V.A (50 and 1).
	Batch, LocalEpochs int
	// LR and Momentum configure SGDm (0.01, 0.9).
	LR, Momentum float64
	// ConvScale and AlexScale shrink CNN / AlexNet widths in the fast
	// profile (1 = paper size).
	ConvScale, AlexScale float64
	// MuSweep lists the FedTrip mu values Fig. 7 sweeps.
	MuSweep []float64
	// Fig5EveryRounds samples the convergence curves every k rounds when
	// rendering Fig. 5 tables.
	Fig5EveryRounds int
	// Seed anchors all randomness.
	Seed int64
	// Runtime selects which runtime cases run on ("" = sync). Methods
	// with server-side hooks (Aggregator/PreRounder) fall back from async
	// to barrier, which joins every client before aggregating.
	Runtime core.Runtime
	// Latency is the latency spec (core.ParseLatency) for the async and
	// barrier runtimes ("" = zero). A non-zero spec on the sync runtime
	// is rejected at Validate (sync has no simulated clock — use
	// barrier), never silently dropped.
	Latency string
	// Policy is the aggregation policy spec (core.ParsePolicy); "" keeps
	// the runtime default (FedAvg sync, FedBuff async).
	Policy string
	// ServerLR is a server learning-rate schedule spec
	// (core.ParseLRSchedule) composed onto the policy ("" = none).
	ServerLR string
	// Concurrency and Buffer are the async knobs (0 = K).
	Concurrency, Buffer int
	// Devices is the device-distribution spec (core.ParseDeviceDist) for
	// the async/barrier runtimes; "" keeps a homogeneous fleet priced by
	// Latency. With a fleet configured, dispatch latency derives from
	// each client's metered FLOPs, so Latency must stay zero.
	Devices string
	// Churn is the availability spec (core.ParseChurn) for the buffered
	// async runtime ("" = always available).
	Churn string
	// Transport is the transport spec (comm.ParseTransport): how model
	// transfers are encoded on the wire ("" = none: analytic float32
	// byte accounting). A fresh transport is built per run, since
	// compressing transports carry per-client state.
	Transport string
	// Bandwidth is the network-distribution spec (core.ParseNetDist) for
	// the async/barrier runtimes ("" = free network). With a spec set,
	// every dispatch additionally pays RTT plus measured-bytes/bandwidth
	// in simulated time, so compressed uplinks finish sooner.
	Bandwidth string
	// AdaptiveSteps scales each client's local step budget with its
	// device speed (requires Devices).
	AdaptiveSteps bool
	// Faults is the adversary spec (core.ParseFaults): which fraction of
	// the fleet uploads corrupted models and how ("" = honest fleet).
	Faults string
}

// Fast is the default profile: small synthetic datasets and scaled-down
// conv nets so the full suite runs in minutes on a laptop while keeping
// the paper's method ordering.
func Fast() Profile {
	return Profile{
		Name:             "fast",
		SamplesPerClient: 80,
		CIFARSamples:     40,
		EMNISTSamples:    200,
		TestSamples:      250,
		Rounds:           30,
		Repeats:          1,
		Clients:          10,
		PerRound:         4,
		Batch:            10,
		LocalEpochs:      1,
		LR:               0.01,
		Momentum:         0.9,
		ConvScale:        0.5,
		AlexScale:        0.10,
		MuSweep:          []float64{0.1, 0.4, 0.8, 1.5, 2.5},
		Fig5EveryRounds:  5,
		Seed:             2023,
	}
}

// Paper reproduces §V.A: Table II dataset sizes, 100 rounds, batch 50,
// full-width models, 10 clients with 4 selected. Expect hours of CPU time.
func Paper() Profile {
	return Profile{
		Name:             "paper",
		SamplesPerClient: 0, // Table II values
		TestSamples:      2000,
		Rounds:           100,
		Repeats:          3, // paper uses 10; 3 keeps CPU cost sane
		Clients:          10,
		PerRound:         4,
		Batch:            50,
		LocalEpochs:      1,
		LR:               0.01,
		Momentum:         0.9,
		ConvScale:        1,
		AlexScale:        1,
		MuSweep:          []float64{0.1, 0.4, 0.8, 1.2, 1.5, 2.0, 2.5},
		Fig5EveryRounds:  10,
		Seed:             2023,
	}
}

// Tiny is for unit tests: MLP-sized work only.
func Tiny() Profile {
	return Profile{
		Name:             "tiny",
		SamplesPerClient: 30,
		TestSamples:      80,
		Rounds:           6,
		Repeats:          1,
		Clients:          10,
		PerRound:         3,
		Batch:            15,
		LocalEpochs:      1,
		LR:               0.01,
		Momentum:         0.9,
		ConvScale:        0.34,
		AlexScale:        0.05,
		MuSweep:          []float64{0.1, 1.0},
		Fig5EveryRounds:  2,
		Seed:             7,
	}
}

// ByName resolves a profile string ("fast", "paper", "tiny").
func ByName(name string) (Profile, error) {
	switch name {
	case "", "fast":
		return Fast(), nil
	case "paper":
		return Paper(), nil
	case "tiny":
		return Tiny(), nil
	}
	return Profile{}, fmt.Errorf("experiments: unknown profile %q (want fast, paper, or tiny)", name)
}
