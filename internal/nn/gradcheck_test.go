package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// lossOf runs forward + softmax-CE on a model and returns the loss.
func lossOf(m *Model, x *tensor.Tensor, labels []int) float64 {
	logits := m.Forward(x, false)
	return SoftmaxCrossEntropy(logits, labels, nil)
}

// analyticGrad computes the full parameter gradient via backprop.
func analyticGrad(m *Model, x *tensor.Tensor, labels []int) []float64 {
	m.ZeroGrad()
	logits := m.Forward(x, false)
	d := tensor.New(logits.Shape()...)
	SoftmaxCrossEntropy(logits, labels, d)
	m.Backward(d, nil)
	g := make([]float64, m.NumParams())
	copy(g, m.Grads())
	return g
}

// checkGradients compares backprop gradients against central finite
// differences on a random subset of parameters. relTol is the maximum
// allowed relative error per coordinate (with an absolute floor for tiny
// gradients).
func checkGradients(t *testing.T, m *Model, x *tensor.Tensor, labels []int, probes int, relTol float64) {
	t.Helper()
	g := analyticGrad(m, x, labels)
	params := m.Params()
	rng := rand.New(rand.NewSource(99))
	const h = 1e-5
	for p := 0; p < probes; p++ {
		i := rng.Intn(len(params))
		orig := params[i]
		params[i] = orig + h
		lp := lossOf(m, x, labels)
		params[i] = orig - h
		lm := lossOf(m, x, labels)
		params[i] = orig
		num := (lp - lm) / (2 * h)
		diff := math.Abs(num - g[i])
		scale := math.Max(1e-4, math.Max(math.Abs(num), math.Abs(g[i])))
		if diff/scale > relTol {
			t.Fatalf("param %d: analytic %.8g vs numeric %.8g (rel err %.3g)", i, g[i], num, diff/scale)
		}
	}
}

func randBatch(rng *rand.Rand, m *Model, n int) (*tensor.Tensor, []int) {
	x := tensor.New(prependBatch(n, m.InShape())...)
	x.RandNormal(rng, 1)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(m.OutDim())
	}
	return x, labels
}

func TestGradCheckDenseOnly(t *testing.T) {
	m, err := NewBuilder(7).Dense(5).Build(1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x, labels := randBatch(rng, m, 4)
	checkGradients(t, m, x, labels, 40, 1e-4)
}

func TestGradCheckMLP(t *testing.T) {
	m, err := NewBuilder(12).Dense(9).ReLU().Dense(4).Build(3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	x, labels := randBatch(rng, m, 6)
	checkGradients(t, m, x, labels, 60, 1e-3)
}

func TestGradCheckConvNet(t *testing.T) {
	b := NewBuilder(2, 8, 8)
	b.Conv2D(3, 3, 1, 1).ReLU().MaxPool2D(2)
	b.Conv2D(4, 3, 1, 0).ReLU()
	b.Flatten().Dense(5)
	m, err := b.Build(5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	x, labels := randBatch(rng, m, 3)
	checkGradients(t, m, x, labels, 80, 2e-3)
}

func TestGradCheckStridedPaddedConv(t *testing.T) {
	b := NewBuilder(1, 9, 9)
	b.Conv2D(2, 3, 2, 1).ReLU()
	b.Flatten().Dense(3)
	m, err := b.Build(7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	x, labels := randBatch(rng, m, 2)
	checkGradients(t, m, x, labels, 50, 2e-3)
}

func TestGradCheckCNNArch(t *testing.T) {
	spec := ModelSpec{Arch: ArchCNN, Channels: 1, Height: 28, Width: 28, Classes: 10, Scale: 0.34}
	m, err := spec.Build(11)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	x, labels := randBatch(rng, m, 2)
	checkGradients(t, m, x, labels, 40, 5e-3)
}

// The extra feature gradient injected at the head boundary must flow
// through the body exactly like a real gradient: check against finite
// differences of an augmented loss L + <c, features>.
func TestGradCheckExtraFeatureGrad(t *testing.T) {
	m, err := NewBuilder(6).Dense(5).ReLU().Dense(3).Build(13)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	x, labels := randBatch(rng, m, 4)
	cvec := tensor.New(4, 5)
	cvec.RandNormal(rng, 1)

	augLoss := func() float64 {
		logits := m.Forward(x, false)
		l := SoftmaxCrossEntropy(logits, labels, nil)
		return l + tensor.Dot(cvec.Data, m.Features().Data)
	}
	m.ZeroGrad()
	logits := m.Forward(x, false)
	d := tensor.New(logits.Shape()...)
	SoftmaxCrossEntropy(logits, labels, d)
	m.Backward(d, cvec)
	g := make([]float64, m.NumParams())
	copy(g, m.Grads())

	params := m.Params()
	const h = 1e-5
	for p := 0; p < 60; p++ {
		i := rng.Intn(len(params))
		orig := params[i]
		params[i] = orig + h
		lp := augLoss()
		params[i] = orig - h
		lm := augLoss()
		params[i] = orig
		num := (lp - lm) / (2 * h)
		diff := math.Abs(num - g[i])
		scale := math.Max(1e-4, math.Max(math.Abs(num), math.Abs(g[i])))
		if diff/scale > 1e-3 {
			t.Fatalf("param %d: analytic %.8g vs numeric %.8g", i, g[i], num)
		}
	}
}
