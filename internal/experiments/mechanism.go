package experiments

import (
	"fmt"
	"math"

	"repro/internal/algos"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/prng"
	"repro/internal/trace"
)

// runFig3 quantifies the mechanism Fig. 3 illustrates conceptually. For
// FedAvg, FedProx, and FedTrip on the same task it measures, over the last
// third of training:
//
//   - mean ||w_k^t - w^{t-1}||  (global-local divergence — what the pull
//     term suppresses), and
//   - mean ||w_k^t - w_k^prev|| (current-historical distance — what the
//     repulsion term keeps from collapsing).
//
// The paper's claim: FedProx shrinks the first at the cost of exploration;
// FedTrip keeps the first small (update consistency) while sustaining the
// second (parameter-space exploration).
func runFig3(p Profile, logf Logf) ([]*Table, error) {
	clients := p.Clients
	perClient, err := p.samplesPerClient(data.KindMNIST)
	if err != nil {
		return nil, err
	}
	train, test, err := p.datasets(data.KindMNIST, clients, perClient, 0)
	if err != nil {
		return nil, err
	}
	spec, err := p.modelSpec(nn.ArchCNN, data.KindMNIST)
	if err != nil {
		return nil, err
	}
	rng := prng.Stream(p.Seed, streamPartition, 0)
	parts, err := partition.Partition(partition.Dirichlet(0.5), train.Y, train.Classes, clients, perClient, rng)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig3",
		Title:   "Update-geometry mechanism (CNN/MNIST Dir-0.5, mean over last third of rounds)",
		Headers: []string{"Method", "||w_k - w_global||", "||w_k - w_hist||", "final accuracy"},
	}
	for _, method := range []string{"fedavg", "fedprox", "fedtrip"} {
		algo, err := algos.New(method, DefaultParams(method, nn.ArchCNN, data.KindMNIST))
		if err != nil {
			return nil, err
		}
		col := trace.NewCollector()
		logf.printf("fig3: tracing %s", method)
		// Case.runSpec routes the trace run through the profile's runtime
		// selection; the collector rides along as OnUpdates, which every
		// runtime honors.
		rspec, err := (Case{Kind: data.KindMNIST, Arch: nn.ArchCNN, Scheme: partition.Dirichlet(0.5), Algo: method}).runSpec(p, core.Config{
			Model: spec, Train: train, Test: test, Parts: parts,
			Rounds: p.Rounds, ClientsPerRound: p.PerRound,
			BatchSize: p.Batch, LocalEpochs: p.LocalEpochs,
			LR: p.LR, Momentum: p.Momentum,
			Algo: algo, Seed: p.Seed,
			OnUpdates: col.Hook(),
		})
		if err != nil {
			return nil, err
		}
		res, err := core.Start(rspec)
		if err != nil {
			return nil, err
		}
		g, h := col.TailMeans(p.Rounds / 3)
		hCell := "n/a"
		if !math.IsNaN(h) {
			hCell = fmt.Sprintf("%.4f", h)
		}
		t.AddRow(method, fmt.Sprintf("%.4f", g), hCell, fmt.Sprintf("%.4f", res.FinalAccuracy))
	}
	t.Notes = append(t.Notes,
		"paper Fig. 3 claim: regularized methods keep local updates near the global model;",
		"FedTrip additionally sustains distance from each client's previous upload (exploration)")
	return []*Table{t}, nil
}

// runTheoryXi empirically validates the staleness-coefficient analysis
// behind Theorem 1: with uniform K-of-N selection the participation gap is
// geometric with success probability p = K/N, and the expectation of
// xi = 1/gap is p*ln(p)/(p-1) (the paper's E[xi_k] coefficient). The
// experiment simulates long selection sequences through the actual FedTrip
// Xi code path and compares against the closed form.
// It is pure selection-sequence simulation — no federated run, so the
// profile's runtime selection has nothing to reach.
func runTheoryXi(p Profile, logf Logf) ([]*Table, error) {
	t := &Table{
		ID:      "theory-xi",
		Title:   "E[xi] vs participation rate (Theorem 1 coefficient p*ln(p)/(p-1))",
		Headers: []string{"p (K/N)", "setting", "empirical E[xi]", "closed form", "rel err"},
	}
	f := core.NewFedTrip(0.4)
	rng := prng.Stream(p.Seed, streamXi, 0)
	settings := []struct {
		k, n  int
		label string
	}{
		{4, 10, "4-of-10 (paper default)"},
		{4, 20, "4-of-20"},
		{4, 50, "4-of-50 (Table VI)"},
		{1, 10, "1-of-10"},
	}
	const rounds = 200000
	for _, s := range settings {
		prob := float64(s.k) / float64(s.n)
		var sum float64
		var count int
		last := 0
		for round := 1; round <= rounds; round++ {
			if rng.Float64() < prob {
				if last > 0 {
					sum += f.Xi(round, last)
					count++
				}
				last = round
			}
		}
		empirical := sum / float64(count)
		closed := prob * math.Log(prob) / (prob - 1)
		t.AddRow(fmt.Sprintf("%.2f", prob), s.label,
			fmt.Sprintf("%.4f", empirical),
			fmt.Sprintf("%.4f", closed),
			fmt.Sprintf("%.2f%%", 100*math.Abs(empirical-closed)/closed))
	}
	t.Notes = append(t.Notes,
		"xi = 1/gap makes E[xi] = sum_g p(1-p)^{g-1}/g = p*ln(p)/(p-1), the coefficient in Theorem 1's Q_t",
		"lower participation -> smaller xi -> weaker history repulsion, matching Sec V.D's scalability discussion")
	return []*Table{t}, nil
}
