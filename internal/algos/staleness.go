package algos

import (
	"fmt"

	"repro/internal/core"
)

// Staleness decorates a client-side method with an explicit staleness
// discount for the asynchronous runtime: the wrapped algorithm's updates
// are down-weighted by (1+staleness)^(-Alpha) at buffered aggregation
// (core.StalenessWeighter). The embedded interface forwards the client
// hooks (Name, BeginRound, TransformGrad, EndRound) untouched.
//
// Server-side optional capabilities (Aggregator, PreRounder,
// OptimizerChooser, CommCoster) do not survive interface embedding, so
// WithStaleness refuses methods that rely on them; it is meant for the
// purely client-side family (fedavg, fedprox, fedtrip, moon, fedgkd).
type Staleness struct {
	core.Algorithm
	// Alpha is the polynomial discount exponent (0 = no discount; 0.5 is
	// the FedBuff-style default).
	Alpha float64
}

// StalenessWeight implements core.StalenessWeighter.
func (s *Staleness) StalenessWeight(staleness int) float64 {
	return core.PolyDiscount(s.Alpha)(staleness)
}

// WithStaleness wraps algo with a polynomial staleness discount of
// exponent alpha. It errors when the method carries server-side optional
// interfaces that the wrapper would silently hide.
func WithStaleness(algo core.Algorithm, alpha float64) (core.Algorithm, error) {
	if alpha < 0 {
		return nil, fmt.Errorf("algos: staleness exponent %g must be >= 0", alpha)
	}
	switch algo.(type) {
	case core.Aggregator, core.PreRounder, core.OptimizerChooser, core.CommCoster:
		return nil, fmt.Errorf("algos: %s has server-side hooks that WithStaleness would hide", algo.Name())
	}
	return &Staleness{Algorithm: algo, Alpha: alpha}, nil
}
