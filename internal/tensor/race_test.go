//go:build race

package tensor

// raceEnabled reports that the race detector is active: allocation-count
// pins are skipped under it, because instrumentation (and sync.Pool's
// deliberate pool-bypass under race) adds allocations the production
// build does not have.
const raceEnabled = true
