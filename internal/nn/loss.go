package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean softmax cross-entropy loss over a
// batch of logits [N, C] against integer labels, and, if dLogits is
// non-nil, writes the mean-reduced gradient dL/dlogits into it (shape
// [N, C]). The computation is the numerically stable log-sum-exp form.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int, dLogits *tensor.Tensor) float64 {
	n, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for batch of %d", len(labels), n))
	}
	if dLogits != nil && (dLogits.Dim(0) != n || dLogits.Dim(1) != c) {
		panic("nn: dLogits shape mismatch")
	}
	var loss float64
	inv := 1 / float64(n)
	for i := 0; i < n; i++ {
		row := logits.Data[i*c : (i+1)*c]
		y := labels[i]
		if y < 0 || y >= c {
			panic(fmt.Sprintf("nn: label %d outside [0,%d)", y, c))
		}
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(v - maxv)
		}
		logZ := maxv + math.Log(sum)
		loss += logZ - row[y]
		if dLogits != nil {
			drow := dLogits.Data[i*c : (i+1)*c]
			for j, v := range row {
				p := math.Exp(v-maxv) / sum
				if j == y {
					drow[j] = (p - 1) * inv
				} else {
					drow[j] = p * inv
				}
			}
		}
	}
	return loss * inv
}

// Accuracy returns the fraction of rows whose argmax matches the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for batch of %d", len(labels), n))
	}
	correct := 0
	for i := 0; i < n; i++ {
		row := logits.Data[i*c : (i+1)*c]
		best := 0
		for j := 1; j < c; j++ {
			if row[j] > row[best] {
				best = j
			}
		}
		if best == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
