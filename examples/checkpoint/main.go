// Checkpoint/resume: a run interrupted at round k and resumed in a fresh
// process is bit-for-bit the run that never stopped.
//
// Everything that shapes a federated trajectory — the global model, every
// client's historical model and RNG position, the virtual event heap with
// its in-flight updates, the aggregation policy's buffer, the churn
// process — lives behind core.RunState and serializes through Snapshot.
// This example runs an async FedTrip fleet with churn three ways:
//
//  1. uninterrupted, via core.Start;
//  2. stepped halfway, snapshotted to a byte buffer, then continued in
//     the same process;
//  3. resumed from those bytes in a fresh RunState (what `fedtrip
//     -resume` does after a kill).
//
// All three print the same Result digest: an FNV fingerprint over every
// metric series at full bit precision.
//
//	go run ./examples/checkpoint
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
)

func main() {
	const (
		clients   = 8
		perClient = 60
		rounds    = 16
		snapAt    = 8
	)
	train, test, err := data.Generate(data.Spec{
		Kind: data.KindMNIST, Train: clients * perClient, Test: 300, Seed: 51,
	})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := partition.Partition(partition.Dirichlet(0.5), train.Y, train.Classes,
		clients, perClient, rand.New(rand.NewSource(51)))
	if err != nil {
		log.Fatal(err)
	}
	spec := core.RunSpec{
		Config: core.Config{
			Model:           nn.ModelSpec{Arch: nn.ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10},
			Train:           train,
			Test:            test,
			Parts:           parts,
			Rounds:          rounds,
			ClientsPerRound: 4,
			BatchSize:       20,
			LocalEpochs:     1,
			LR:              0.01,
			Momentum:        0.9,
			Algo:            core.NewFedTrip(0.4),
			Seed:            7,
		},
		Runtime:     core.RuntimeAsync,
		Concurrency: 4,
		BufferSize:  2,
		Latency:     core.ExponentialLatency{Mean: 2},
		Churn:       &core.ChurnModel{MeanUp: 40, MeanDown: 10},
	}

	// 1. The uninterrupted reference run.
	full, err := core.Start(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uninterrupted run      %s  (best acc %.4f)\n", full.Digest(), full.BestAccuracy)

	// 2. Step halfway, snapshot, keep going in the same process.
	rs, err := core.NewRunState(spec)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < snapAt; i++ {
		if _, err := rs.Step(); err != nil {
			log.Fatal(err)
		}
	}
	var ckpt bytes.Buffer
	if err := rs.Snapshot(&ckpt); err != nil {
		log.Fatal(err)
	}
	cont, err := rs.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot-and-continue  %s  (%d-byte snapshot at round %d)\n",
		cont.Digest(), ckpt.Len(), snapAt)

	// 3. "Fresh process": rebuild the run from the spec, load the bytes.
	rs2, err := core.Resume(bytes.NewReader(ckpt.Bytes()), core.ResumeSpec{Spec: spec})
	if err != nil {
		log.Fatal(err)
	}
	resumed, err := rs2.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot-and-resume    %s\n", resumed.Digest())

	if full.Digest() != cont.Digest() || full.Digest() != resumed.Digest() {
		log.Fatal("digests diverged — checkpoint/resume is broken")
	}
	fmt.Println("all three trajectories are bit-for-bit identical")
}
