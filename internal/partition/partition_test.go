package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// balancedLabels builds n labels cycling through the classes.
func balancedLabels(n, classes int) []int {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % classes
	}
	return labels
}

func checkPartitionInvariants(t *testing.T, parts [][]int, nSamples, clients, perClient int) {
	t.Helper()
	if len(parts) != clients {
		t.Fatalf("got %d parts want %d", len(parts), clients)
	}
	seen := make(map[int]bool)
	for k, part := range parts {
		if len(part) != perClient {
			t.Fatalf("client %d has %d samples, want %d", k, len(part), perClient)
		}
		for _, i := range part {
			if i < 0 || i >= nSamples {
				t.Fatalf("index %d out of range", i)
			}
			if seen[i] {
				t.Fatalf("index %d assigned twice (sampling must be without replacement)", i)
			}
			seen[i] = true
		}
	}
}

func TestIIDInvariants(t *testing.T) {
	labels := balancedLabels(1000, 10)
	rng := rand.New(rand.NewSource(1))
	parts, err := Partition(IID(), labels, 10, 10, 80, rng)
	if err != nil {
		t.Fatal(err)
	}
	checkPartitionInvariants(t, parts, 1000, 10, 80)
	// IID clients should see most classes.
	counts := LabelCounts(parts, labels, 10)
	for k, n := range EffectiveClasses(counts) {
		if n < 7 {
			t.Errorf("IID client %d only has %d classes", k, n)
		}
	}
}

func TestDirichletInvariants(t *testing.T) {
	labels := balancedLabels(2000, 10)
	for _, alpha := range []float64{0.1, 0.5, 10} {
		rng := rand.New(rand.NewSource(2))
		parts, err := Partition(Dirichlet(alpha), labels, 10, 10, 150, rng)
		if err != nil {
			t.Fatal(err)
		}
		checkPartitionInvariants(t, parts, 2000, 10, 150)
	}
}

// The paper's Fig. 4 claims: under Dir-0.1 most clients hold 1-2 dominant
// classes; under Dir-0.5, 3-4; large alpha approaches uniform. We verify
// the skew ordering via the mean effective class count.
func TestDirichletSkewOrdering(t *testing.T) {
	labels := balancedLabels(60000, 10)
	mean := func(alpha float64) float64 {
		rng := rand.New(rand.NewSource(3))
		parts, err := Partition(Dirichlet(alpha), labels, 10, 10, 600, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Count classes holding >5% of a client's data (dominant classes).
		counts := LabelCounts(parts, labels, 10)
		var total float64
		for _, row := range counts {
			n := 0
			for _, c := range row {
				if c > 30 { // 5% of 600
					n++
				}
			}
			total += float64(n)
		}
		return total / float64(len(parts))
	}
	m01, m05, m10 := mean(0.1), mean(0.5), mean(10)
	if !(m01 < m05 && m05 < m10) {
		t.Fatalf("dominant-class counts not ordered: Dir-0.1=%.1f Dir-0.5=%.1f Dir-10=%.1f", m01, m05, m10)
	}
	if m01 > 3.5 {
		t.Errorf("Dir-0.1 mean dominant classes %.1f, paper reports 1-2", m01)
	}
}

func TestOrthogonalDisjointClasses(t *testing.T) {
	labels := balancedLabels(6000, 10)
	for _, clusters := range []int{5, 10} {
		rng := rand.New(rand.NewSource(4))
		parts, err := Partition(Orthogonal(clusters), labels, 10, 10, 200, rng)
		if err != nil {
			t.Fatal(err)
		}
		checkPartitionInvariants(t, parts, 6000, 10, 200)
		counts := LabelCounts(parts, labels, 10)
		wantClasses := 10 / clusters
		for k, row := range counts {
			classes := 0
			for _, c := range row {
				if c > 0 {
					classes++
				}
			}
			if classes != wantClasses {
				t.Errorf("clusters=%d client %d has %d classes, want %d", clusters, k, classes, wantClasses)
			}
		}
		// Clients in different clusters must have non-overlapping classes.
		for a := 0; a < clusters; a++ {
			for b := a + 1; b < clusters; b++ {
				for c := 0; c < 10; c++ {
					if counts[a][c] > 0 && counts[b][c] > 0 {
						t.Errorf("clusters %d and %d share class %d", a, b, c)
					}
				}
			}
		}
	}
}

func TestOrthogonalNonDividingClasses(t *testing.T) {
	// 47 classes over 5 clusters (EMNIST case): round-robin gives 9 or 10
	// classes per cluster.
	labels := balancedLabels(9400, 47)
	rng := rand.New(rand.NewSource(5))
	parts, err := Partition(Orthogonal(5), labels, 47, 10, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	checkPartitionInvariants(t, parts, 9400, 10, 100)
}

func TestPartitionErrors(t *testing.T) {
	labels := balancedLabels(100, 10)
	rng := rand.New(rand.NewSource(6))
	if _, err := Partition(IID(), labels, 10, 0, 10, rng); err == nil {
		t.Error("zero clients accepted")
	}
	if _, err := Partition(IID(), labels, 10, 10, 0, rng); err == nil {
		t.Error("zero perClient accepted")
	}
	if _, err := Partition(IID(), labels, 10, 10, 11, rng); err == nil {
		t.Error("oversubscription accepted")
	}
	if _, err := Partition(Dirichlet(0), labels, 10, 5, 10, rng); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := Partition(Orthogonal(0), labels, 10, 5, 10, rng); err == nil {
		t.Error("0 clusters accepted")
	}
	if _, err := Partition(Orthogonal(6), labels, 10, 5, 10, rng); err == nil {
		t.Error("clusters > clients accepted")
	}
	if _, err := Partition(Orthogonal(12), labels, 10, 20, 5, rng); err == nil {
		t.Error("clusters > classes accepted")
	}
	if _, err := Partition(Scheme{Name: "bogus"}, labels, 10, 5, 10, rng); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestSchemeString(t *testing.T) {
	if s := Dirichlet(0.5).String(); s != "Dir-0.5" {
		t.Errorf("got %q", s)
	}
	if s := Orthogonal(10).String(); s != "Orthogonal-10" {
		t.Errorf("got %q", s)
	}
	if s := IID().String(); s != "IID" {
		t.Errorf("got %q", s)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	labels := balancedLabels(1000, 10)
	a, _ := Partition(Dirichlet(0.5), labels, 10, 10, 50, rand.New(rand.NewSource(7)))
	b, _ := Partition(Dirichlet(0.5), labels, 10, 10, 50, rand.New(rand.NewSource(7)))
	for k := range a {
		for i := range a[k] {
			if a[k][i] != b[k][i] {
				t.Fatal("same seed produced different partitions")
			}
		}
	}
}

func TestLabelCountsSums(t *testing.T) {
	labels := balancedLabels(500, 10)
	rng := rand.New(rand.NewSource(8))
	parts, _ := Partition(Dirichlet(0.5), labels, 10, 5, 50, rng)
	counts := LabelCounts(parts, labels, 10)
	for k, row := range counts {
		sum := 0
		for _, c := range row {
			sum += c
		}
		if sum != 50 {
			t.Fatalf("client %d counts sum %d != 50", k, sum)
		}
	}
}

// Property: gamma samples are positive and Dirichlet vectors sum to 1.
func TestDirichletVectorProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alpha := 0.05 + rng.Float64()*3
		n := 2 + rng.Intn(20)
		p := dirichletVector(rng, n, alpha)
		var sum float64
		for _, v := range p {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGammaSampleMean(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, a := range []float64{0.1, 0.5, 1, 2, 5} {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += gammaSample(rng, a)
		}
		mean := sum / n
		if math.Abs(mean-a) > 0.15*a+0.02 {
			t.Errorf("Gamma(%v) sample mean %.4f far from %v", a, mean, a)
		}
	}
}
