package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// defaultRandSourcePackages are the packages randsource guards. The
// first four are the runtime: every stochastic choice there must flow
// through the internal/prng seed-stream registry, or checkpoint/resume
// stops being bit-for-bit (math/rand.Rand hides 617 words of state) and
// virtual time stops being the only clock. The rest accept caller-
// supplied rngs or synthesize seeded datasets; direct math/rand there is
// legal only under an explicit //fedtripvet:allow with the reason on
// record.
const defaultRandSourcePackages = "repro/internal/core," +
	"repro/internal/comm," +
	"repro/internal/algos," +
	"repro/internal/quantize," +
	"repro/internal/tensor," +
	"repro/internal/data," +
	"repro/internal/partition," +
	"repro/internal/experiments"

// bannedRandPackages are the import paths whose every member reference
// is a randsource diagnostic.
var bannedRandPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// bannedTimeMembers are the wall-clock entry points of package time. The
// runtime's only clock is the simulated one (AsyncServer.Now); wall
// time in a trajectory-relevant path breaks run reproducibility.
var bannedTimeMembers = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// NewRandSource returns the randsource analyzer: no direct math/rand or
// wall-clock use in the packages it guards.
func NewRandSource() *Analyzer {
	a := &Analyzer{
		Name: "randsource",
		Doc: "forbid direct math/rand and wall-clock time in runtime packages\n\n" +
			"Randomness must derive from the internal/prng seed-stream registry\n" +
			"(serializable, collision-free by construction) and time from the\n" +
			"run's virtual clock. Escape hatch: //fedtripvet:allow <reason>.",
	}
	pkgs := a.Flags.String("packages", defaultRandSourcePackages,
		"comma-separated import paths the analyzer guards")
	a.Run = func(pass *Pass) (any, error) {
		guarded := false
		for _, p := range strings.Split(*pkgs, ",") {
			if strings.TrimSpace(p) == pass.Pkg.Path() {
				guarded = true
				break
			}
		}
		if !guarded {
			return nil, nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ImportSpec:
					path, err := strconv.Unquote(n.Path.Value)
					if err == nil && bannedRandPackages[path] && n.Name != nil && n.Name.Name == "." {
						pass.Reportf(n.Pos(), "dot-import of %s hides every use from review; import the package qualified (and justify each use with //fedtripvet:allow)", path)
					}
				case *ast.SelectorExpr:
					pn, ok := importedPkg(pass.TypesInfo, n.X)
					if !ok {
						return true
					}
					switch path := pn.Imported().Path(); {
					case bannedRandPackages[path]:
						pass.Reportf(n.Pos(), "direct %s.%s: randomness must come from a named internal/prng seed stream (or carry //fedtripvet:allow <reason>)", pn.Imported().Name(), n.Sel.Name)
					case path == "time" && bannedTimeMembers[n.Sel.Name]:
						pass.Reportf(n.Pos(), "wall-clock time.%s in a runtime package: use the run's virtual clock (or carry //fedtripvet:allow <reason>)", n.Sel.Name)
					}
				}
				return true
			})
		}
		return nil, nil
	}
	return a
}
