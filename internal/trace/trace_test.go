package trace

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
)

func TestCollectorDistances(t *testing.T) {
	c := NewCollector()
	hook := c.Hook()
	global := []float64{0, 0}
	// Round 1: client 0 uploads (3,4): global dist 5, no history.
	hook(1, global, []core.Update{{ClientID: 0, Params: []float64{3, 4}, NumSamples: 1, TrainLoss: 2}})
	// Round 2: client 0 uploads (3,0): dist to global 3, to prev (3,4) is 4.
	hook(2, global, []core.Update{{ClientID: 0, Params: []float64{3, 0}, NumSamples: 1, TrainLoss: 1}})
	rows := c.Rows()
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].GlobalDist != 5 || !math.IsNaN(rows[0].HistDist) {
		t.Fatalf("row0 %+v", rows[0])
	}
	if rows[1].GlobalDist != 3 || rows[1].HistDist != 4 {
		t.Fatalf("row1 %+v", rows[1])
	}
}

func TestCollectorCopiesParams(t *testing.T) {
	c := NewCollector()
	hook := c.Hook()
	params := []float64{1, 1}
	hook(1, []float64{0, 0}, []core.Update{{ClientID: 0, Params: params}})
	params[0] = 99 // caller reuses the buffer; collector must have copied
	hook(2, []float64{0, 0}, []core.Update{{ClientID: 0, Params: []float64{1, 1}}})
	rows := c.Rows()
	if rows[1].HistDist != 0 {
		t.Fatalf("hist dist %v: collector aliased caller memory", rows[1].HistDist)
	}
}

func TestSummaryAggregation(t *testing.T) {
	c := NewCollector()
	hook := c.Hook()
	global := []float64{0}
	hook(1, global, []core.Update{
		{ClientID: 0, Params: []float64{1}, TrainLoss: 1},
		{ClientID: 1, Params: []float64{3}, TrainLoss: 3},
	})
	sum := c.Summary()
	if len(sum) != 1 {
		t.Fatalf("%d summaries", len(sum))
	}
	s := sum[0]
	if s.Clients != 2 || s.MeanLoss != 2 || s.MeanGlobalDist != 2 {
		t.Fatalf("summary %+v", s)
	}
	if !math.IsNaN(s.MeanHistDist) {
		t.Fatal("round-1 hist dist should be NaN")
	}
}

func TestTailMeans(t *testing.T) {
	c := NewCollector()
	hook := c.Hook()
	global := []float64{0}
	hook(1, global, []core.Update{{ClientID: 0, Params: []float64{2}}})
	hook(2, global, []core.Update{{ClientID: 0, Params: []float64{4}}})
	hook(3, global, []core.Update{{ClientID: 0, Params: []float64{8}}})
	// Tail 2: rounds 2,3 -> global dists 4,8 mean 6; hist dists 2,4 mean 3.
	g, h := c.TailMeans(2)
	if g != 6 || h != 3 {
		t.Fatalf("tail means g=%v h=%v", g, h)
	}
	// Larger k than rounds: uses everything.
	g, _ = c.TailMeans(100)
	if g != (2.0+4+8)/3 {
		t.Fatalf("full tail g=%v", g)
	}
	empty := NewCollector()
	if g, _ := empty.TailMeans(3); !math.IsNaN(g) {
		t.Fatal("empty collector should give NaN")
	}
}

func TestWriteCSV(t *testing.T) {
	c := NewCollector()
	hook := c.Hook()
	hook(1, []float64{0}, []core.Update{{ClientID: 2, Params: []float64{1}, TrainLoss: 0.5}})
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "round,client,train_loss,global_dist,hist_dist") {
		t.Fatalf("csv header: %q", out)
	}
	if !strings.Contains(out, "1,2,0.5,1,") {
		t.Fatalf("csv row missing: %q", out)
	}
}

// End-to-end: the collector plugged into a real run records one row per
// selected client per round.
func TestCollectorEndToEnd(t *testing.T) {
	train, test, err := data.Generate(data.Spec{Kind: data.KindMNIST, Train: 300, Test: 80, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := partition.Partition(partition.Dirichlet(0.5), train.Y, train.Classes, 6, 50, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	cfg := core.Config{
		Model:           nn.ModelSpec{Arch: nn.ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10},
		Train:           train,
		Test:            test,
		Parts:           parts,
		Rounds:          4,
		ClientsPerRound: 3,
		BatchSize:       10,
		LocalEpochs:     1,
		LR:              0.01,
		Momentum:        0.9,
		Algo:            core.NewFedTrip(0.4),
		Seed:            3,
		OnUpdates:       col.Hook(),
	}
	if _, err := core.Run(cfg); err != nil {
		t.Fatal(err)
	}
	rows := col.Rows()
	if len(rows) != 4*3 {
		t.Fatalf("%d rows, want 12", len(rows))
	}
	for _, r := range rows {
		if r.GlobalDist <= 0 {
			t.Fatalf("non-positive global dist: %+v", r)
		}
	}
	if len(col.Summary()) != 4 {
		t.Fatal("summary rounds")
	}
}
