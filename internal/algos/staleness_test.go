package algos

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestWithStaleness(t *testing.T) {
	base, err := New("fedprox", Params{})
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := WithStaleness(base, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if wrapped.Name() != "fedprox" {
		t.Fatalf("wrapper changed name to %q", wrapped.Name())
	}
	sw, ok := wrapped.(core.StalenessWeighter)
	if !ok {
		t.Fatal("wrapper does not implement StalenessWeighter")
	}
	if sw.StalenessWeight(0) != 1 {
		t.Fatal("fresh updates must keep full weight")
	}
	if got := sw.StalenessWeight(3); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("weight(3) = %v want 0.5", got)
	}
	if _, err := WithStaleness(base, -1); err == nil {
		t.Fatal("negative exponent accepted")
	}
	// Server-side methods would lose their optional interfaces behind the
	// wrapper; they must be rejected rather than silently broken.
	for _, name := range []string{"slowmo", "scaffold", "feddane", "mimelite", "feddyn", "fednova"} {
		a, err := New(name, Params{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := WithStaleness(a, 0.5); err == nil {
			t.Errorf("%s accepted despite server-side hooks", name)
		}
	}
}

// End-to-end: the wrapper's discount must drive the async runtime.
func TestWithStalenessAsyncRun(t *testing.T) {
	base, err := New("fedavg", Params{})
	if err != nil {
		t.Fatal(err)
	}
	algo, err := WithStaleness(base, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.AsyncConfig{Config: testConfig(t, algo)}
	cfg.Rounds = 5
	cfg.Concurrency = 4
	cfg.BufferSize = 2
	cfg.Latency = core.UniformLatency{Min: 1, Max: 5}
	res, err := core.RunAsync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != cfg.Rounds {
		t.Fatalf("rounds %d want %d", res.Rounds, cfg.Rounds)
	}
	if res.BestAccuracy <= 0 {
		t.Fatal("async run recorded no accuracy")
	}
}
