package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/stats"
)

// runCommTTA is the communication-pricing payoff table: FedTrip on the
// buffered async runtime over a bandwidth-tiered, churning, FLOP-coupled
// fleet, comparing uplink transports. With the network priced from each
// dispatch's *measured* wire bytes, a sparsifying transport does not just
// shrink the comm column — it finishes uploads sooner, so the
// accuracy/bytes/sim-time trade-off is visible in one table.
//
// Rows: dense float32, 8-bit delta quantization (±error feedback), top-k
// and rand-k sparsification with error feedback. Columns: aggregations,
// wire MB, and simulated seconds to the adaptive target, plus sim-time
// speedup over dense and final accuracy. All rows share the same round
// budget, fleet, and seeds; only the transport differs.
func runCommTTA(p Profile, logf Logf) ([]*Table, error) {
	bandwidth := p.Bandwidth
	if bandwidth == "" || bandwidth == "none" {
		bandwidth = "tiered"
	}
	devices := p.Devices
	if devices == "" || devices == "none" {
		devices = "tiered"
	}
	churn := p.Churn
	if churn == "" || churn == "none" {
		churn = "markov:40,10"
	}
	transports := []string{"f32", "q8", "q8+ef", "topk:0.01+ef", "randk:0.05"}
	mkCase := func(transport string) Case {
		return Case{
			Kind:      data.KindMNIST,
			Arch:      nn.ArchMLP,
			Scheme:    partition.Dirichlet(0.5),
			Algo:      "fedtrip",
			Params:    DefaultParams("fedtrip", nn.ArchMLP, data.KindMNIST),
			Runtime:   core.RuntimeAsync,
			Policy:    "fedbuff",
			Devices:   devices,
			Churn:     churn,
			Bandwidth: bandwidth,
			Transport: transport,
		}
	}
	// The adaptive target calibrates against the dense-f32 row: every
	// compressor is then measured against the same accuracy bar.
	denseRef, err := p.RunTrials(mkCase(transports[0]), logf)
	if err != nil {
		return nil, err
	}
	target := adaptiveTarget(denseRef)

	t := &Table{
		ID:    "comm-tta",
		Title: "Communication-priced time to accuracy (FedTrip, MLP/MNIST, Dir-0.5): transports under a bandwidth-tiered churning fleet",
		Headers: []string{
			"Transport", "Aggs to target", "Wire MB", "Sim time (s)", "Speedup", "Final acc",
		},
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("bandwidth %s, devices %s, churn %s; adaptive target %.4f (0.97x dense-f32 final)", bandwidth, devices, churn, target),
		"wire MB and sim time are cumulative at the target round; each dispatch pays rtt + measured-bytes/bandwidth on top of its FLOP-derived compute time",
		"speedup = dense-f32 sim-time / row sim-time (only when both reached the target); >marks: target not reached, full-run resources shown",
	)
	var denseTime float64
	denseReached := false
	for i, transport := range transports {
		var results []*core.Result
		if i == 0 {
			results = denseRef
		} else {
			results, err = p.RunTrials(mkCase(transport), logf)
			if err != nil {
				return nil, err
			}
		}
		var aggs, mb, simTime, final []float64
		reached := true
		for _, r := range results {
			rt, ok := roundsToTargetClamped(r, target)
			if !ok {
				reached = false
			}
			aggs = append(aggs, float64(rt))
			mb = append(mb, float64(r.CommBytesByRound[rt-1])/1e6)
			simTime = append(simTime, r.SimTimeByRound[rt-1])
			final = append(final, r.FinalAccuracy)
		}
		meanTime := stats.Mean(simTime)
		if i == 0 {
			denseTime = meanTime
			denseReached = reached
		}
		mark := ""
		if !reached {
			mark = ">"
		}
		speedup := "-"
		if i > 0 && meanTime > 0 && reached && denseReached {
			speedup = fmt.Sprintf("%.1fx", denseTime/meanTime)
		}
		t.AddRow(transport,
			mark+fmt.Sprintf("%.0f", stats.Mean(aggs)),
			mark+fmt.Sprintf("%.2f", stats.Mean(mb)),
			mark+fmt.Sprintf("%.1f", meanTime),
			speedup,
			fmt.Sprintf("%.4f", stats.Mean(final)))
	}
	return []*Table{t}, nil
}
