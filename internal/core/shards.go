package core

import (
	"fmt"

	"repro/internal/parallel"
)

// trainJob is one dispatched client round: which client, which round, and
// which global snapshot to start from. The shard worker fills update and
// flops, then signals done (buffered, one token per dispatch — signalled
// rather than closed so the synchronous runtime can re-arm one set of
// jobs round after round). The scheduling fields (finish, seq, heapIdx)
// are used by the asynchronous event loop only.
type trainJob struct {
	c      *Client
	round  int
	global []float64
	update Update
	flops  int64
	done   chan struct{}

	finish  float64 // virtual arrival time
	seq     int     // dispatch order, tie-break for equal arrival times
	heapIdx int     // slot in the event loop's jobHeap (-1 when not queued)
	// remaining is the unserved portion of the job's transfer when its
	// client dropped mid-flight: the churn process parks the job (finish
	// = +Inf) and restores finish = rejoin + remaining at the rejoin,
	// reproducing the old "defer the arrival past the rejoin" semantics
	// without per-client scheduling state. Zero when not parked.
	remaining float64

	// Device-heterogeneity dispatch parameters (zero when no device
	// fleet is configured): steps caps the client's local mini-batch
	// steps this round, speed is its compute multiplier.
	steps int
	speed float64
	// This dispatch's wire traffic (filled by the shard worker alongside
	// update): exact encoded sizes under a SizedTransport, the analytic
	// dense float32 size otherwise. The network pricer turns them into
	// transfer time.
	downBytes, upBytes int64
	// trained marks that the event loop already joined the done channel
	// (device mode joins at dispatch to derive the arrival time from the
	// metered FLOPs); dropped marks an in-flight update lost to a
	// permanent client drop — its arrival is discarded, not merged.
	trained bool
	dropped bool
}

// shardPool runs client training on a bounded set of worker shards, one
// training engine per shard. Both runtimes submit trainJobs to it; the
// number of simultaneously *simulated* clients (async Concurrency) is
// decoupled from the number of engines actually allocated, which is what
// bounds memory at 10k+ clients: jobs queue up behind the shards and each
// shard reuses its engine across every client it serves.
type shardPool struct {
	s    *Server
	pool *parallel.Pool
	// engines[w] belongs exclusively to worker w (built on first use, so a
	// 4-client round on an 8-shard pool allocates 4 engines, not 8).
	engines []*engine
}

// newShardPool starts the worker shards. shards <= 0 selects the default
// (one per available CPU). The count is clamped to the population and to
// maxJobs, the most jobs the caller will ever have in flight at once
// (ClientsPerRound for the lock-step loops, Concurrency for the buffered
// one): the FIFO queue spreads work over every worker over time, so any
// shard beyond the concurrent-job bound would still lazily build a
// model-sized engine it can never use productively.
func newShardPool(s *Server, shards, maxJobs int) *shardPool {
	if shards <= 0 {
		shards = parallel.Workers()
	}
	if shards > len(s.clients) {
		shards = len(s.clients)
	}
	if maxJobs > 0 && shards > maxJobs {
		shards = maxJobs
	}
	return &shardPool{
		s:       s,
		pool:    parallel.NewPool(shards),
		engines: make([]*engine, shards),
	}
}

// submit queues one client round. The job's done channel is closed when
// update and flops are valid. Submission order is preserved per worker but
// not across workers; determinism comes from each client's own RNG stream,
// not from scheduling order.
func (sp *shardPool) submit(j *trainJob) {
	sp.pool.Submit(func(w int) {
		eng := sp.engines[w]
		if eng == nil {
			e, err := newEngine(&sp.s.cfg, streamSeed(sp.s.cfg.Seed, streamEngine, w))
			if err != nil {
				// The same spec already built the server's global and eval
				// models, so this is unreachable short of config mutation
				// mid-run.
				panic(fmt.Sprintf("core: shard %d engine: %v", w, err))
			}
			sp.engines[w] = e
			eng = e
		}
		eng.attach(j.c)
		before := j.c.Counter.Total()
		j.update, j.downBytes, j.upBytes = sp.s.trainClient(j.c, j.round, j.global, j.steps, j.speed)
		j.flops = j.c.Counter.Total() - before
		eng.detach(j.c)
		j.done <- struct{}{}
	})
}

// close waits for every submitted job and releases the shards.
func (sp *shardPool) close() { sp.pool.Close() }
