package nn

import "fmt"

// Arch names one of the paper's model architectures.
type Arch string

const (
	// ArchMLP is the paper's MultiLayer Perceptron: two fully connected
	// layers of 100 and numClasses neurons, ReLU after the first
	// (Table III: ~0.08M params, ~0.3 MB at float32 for 28x28 inputs).
	ArchMLP Arch = "mlp"
	// ArchCNN is the paper's LeNet5-derived CNN: three 5x5 convolutions
	// followed by fully connected layers of 84 and numClasses neurons
	// (Table III: ~0.06M params / 0.24 MB, ~0.42 MFLOPs on 28x28).
	ArchCNN Arch = "cnn"
	// ArchAlexNet is the paper's scaled-down AlexNet for CIFAR-10-like
	// 3-channel inputs (Table III: ~2.7M params, ~10.4 MB, ~146 MFLOPs).
	ArchAlexNet Arch = "alexnet"
)

// ModelSpec describes a model to instantiate: architecture, per-sample
// input shape (C, H, W for images), class count, and a width scale in
// (0, 1] that shrinks channel/neuron counts for fast test profiles
// (scale 1 reproduces the paper's sizes).
type ModelSpec struct {
	Arch                    Arch
	Channels, Height, Width int
	Classes                 int
	Scale                   float64
}

// Validate checks the spec and fills defaults (Scale 0 -> 1).
func (s *ModelSpec) Validate() error {
	if s.Scale == 0 {
		s.Scale = 1
	}
	if s.Scale < 0 || s.Scale > 1 {
		return fmt.Errorf("nn: model scale %v outside (0,1]", s.Scale)
	}
	if s.Channels <= 0 || s.Height <= 0 || s.Width <= 0 || s.Classes <= 1 {
		return fmt.Errorf("nn: invalid model spec %+v", *s)
	}
	return nil
}

func (s ModelSpec) scaled(n int) int {
	v := int(float64(n)*s.Scale + 0.5)
	if v < 1 {
		return 1
	}
	return v
}

// Build instantiates the model with weights drawn deterministically from
// seed.
func (s ModelSpec) Build(seed int64) (*Model, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var b *Builder
	switch s.Arch {
	case ArchMLP:
		b = NewBuilder(s.Channels * s.Height * s.Width)
		b.Dense(s.scaled(100)).ReLU().Dense(s.Classes)
	case ArchCNN:
		// LeNet5-style: conv5x5(6) pad2 -> pool2 -> conv5x5(16) -> pool2
		// -> conv5x5(120) -> FC 84 -> FC classes. With 28x28 input the
		// third conv reduces exactly to 1x1, as in LeNet5.
		b = NewBuilder(s.Channels, s.Height, s.Width)
		b.Conv2D(s.scaled(6), 5, 1, 2).ReLU().MaxPool2D(2)
		b.Conv2D(s.scaled(16), 5, 1, 0).ReLU().MaxPool2D(2)
		b.Conv2D(s.scaled(120), 5, 1, 0).ReLU()
		b.Flatten()
		b.Dense(s.scaled(84)).ReLU().Dense(s.Classes)
	case ArchAlexNet:
		// AlexNet-style for 32x32 RGB: five convolutions with two
		// interleaved poolings, then a compact classifier with dropout.
		b = NewBuilder(s.Channels, s.Height, s.Width)
		b.Conv2D(s.scaled(64), 5, 1, 2).ReLU().MaxPool2D(2)
		b.Conv2D(s.scaled(192), 5, 1, 2).ReLU().MaxPool2D(2)
		b.Conv2D(s.scaled(384), 3, 1, 1).ReLU()
		b.Conv2D(s.scaled(256), 3, 1, 1).ReLU()
		b.Conv2D(s.scaled(256), 3, 1, 1).ReLU().MaxPool2D(2)
		b.Flatten()
		// Dropout strength follows the width scale: a 128-unit classifier
		// tolerates p=0.5, but the scaled-down fast-profile heads would be
		// starved by it.
		b.Dropout(0.5 * s.Scale)
		b.Dense(s.scaled(128)).ReLU()
		b.Dense(s.Classes)
	default:
		return nil, fmt.Errorf("nn: unknown architecture %q", s.Arch)
	}
	return b.Build(seed)
}
