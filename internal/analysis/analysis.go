// Package analysis is the repository's static-analysis layer: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) plus the fedtripvet analyzers
// that mechanically enforce the determinism, hot-path, and snapshot
// invariants everything else in this reproduction rests on:
//
//   - randsource: runtime packages must draw randomness from the
//     internal/prng seed-stream registry, never directly from math/rand
//     or time.Now (bit-for-bit checkpoint/resume cannot serialize a
//     math/rand.Rand, and wall-clock time is not part of a run).
//   - seedstream: every seed-stream lookup must name a string constant
//     registered in the package's seeds.go, so the set of streams a run
//     consumes is a closed, reviewable list and collisions are caught at
//     vet time instead of by the runtime collision test.
//   - maprange: files that write FTRS/FTCK envelopes or recorder series
//     must not let Go's randomized map iteration order reach the bytes
//     they emit.
//   - hotpath: functions annotated //fedtripvet:hotpath (LocalTrain, the
//     GEMM kernels, the async dispatch/arrival path, transport Up/Down)
//     must stay allocation-free: no fmt, no map construction, no
//     unannotated append, no closures over loop variables.
//
// The x/tools module is deliberately not imported: the suite must build
// in a hermetic environment from the standard library alone. The subset
// of the API reimplemented here is shaped so that migrating to the real
// go/analysis framework later is a mechanical import swap.
//
// Escape hatches are comments (see annotate.go for the grammar):
//
//	//fedtripvet:allow <reason>   suppress diagnostics on this (or the next) line
//	//fedtripvet:sorted <reason>  justify a map range in a serialization file
//	//fedtripvet:hotpath          mark a function for hot-path checking
package analysis

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is the analyzer's documentation (first line = summary).
	Doc string
	// Flags holds analyzer-specific configuration.
	Flags flag.FlagSet
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer run with a single type-checked package.
type Pass struct {
	// Analyzer is the check being applied.
	Analyzer *Analyzer
	// Fset maps positions for every file in the package.
	Fset *token.FileSet
	// Files is the package's syntax. Test files are never included: the
	// invariants guard runtime code, and tests legitimately use raw
	// randomness and wall clocks.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the package's type and object resolution.
	TypesInfo *types.Info
	// Report delivers one diagnostic.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, positioned within the package's Fset.
type Diagnostic struct {
	Pos token.Pos
	// Category is the reporting analyzer's name (filled by the driver).
	Category string
	Message  string
}

// pkgPathOf returns the import path of the package an object belongs to
// ("" for builtins and universe-scope objects).
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// importedPkg resolves expr to the *types.PkgName it names, if it is a
// package qualifier (the "rand" in rand.New).
func importedPkg(info *types.Info, expr ast.Expr) (*types.PkgName, bool) {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil, false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return pn, ok
}

// isTestFile reports whether the file's name marks it as a test file.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.File(f.Pos()).Name(), "_test.go")
}
