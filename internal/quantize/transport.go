package quantize

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/tensor"
)

// Transport implements core.Transport with a quantized uplink: the
// downlink ships float32 (as in the paper's accounting), and each client's
// upload is delta-encoded against the model it received this round, then
// uniformly quantized to Bits per element. This mirrors production FL
// compression, where the server reconstructs w_k = w_received + dq(delta).
//
// Memory: the downlink reference is held only while the client's round is
// in flight — Up evicts it and recycles the buffer — so the map is
// bounded by the runtime's dispatch concurrency, not by the fleet size.
type Transport struct {
	// Bits is the uplink quantization width (e.g. 8).
	Bits int

	mu       sync.Mutex
	lastDown map[int][]float64
	free     [][]float64

	downBytes atomic.Int64
	upBytes   atomic.Int64
}

// NewTransport returns a quantized-uplink transport.
func NewTransport(bits int) (*Transport, error) {
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("quantize: transport bits %d outside [1,16]", bits)
	}
	return &Transport{Bits: bits, lastDown: make(map[int][]float64)}, nil
}

// String names the transport for run fingerprints and banners.
func (t *Transport) String() string { return fmt.Sprintf("quant:%d", t.Bits) }

// take returns a zeroing-free scratch buffer of length n, reusing evicted
// downlink references when one of the right size is available.
func (t *Transport) take(n int) []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.free) - 1; i >= 0; i-- {
		if len(t.free[i]) == n {
			buf := t.free[i]
			t.free = append(t.free[:i], t.free[i+1:]...)
			return buf
		}
	}
	return make([]float64, n)
}

// Down implements core.Transport: float32 downlink.
//
//fedtripvet:hotpath
func (t *Transport) Down(clientID, round int, global []float64) []float64 {
	out, _ := t.DownSized(clientID, round, global)
	return out
}

// DownSized implements core.SizedTransport, reporting this transfer's
// exact encoded bytes.
//
//fedtripvet:hotpath
func (t *Transport) DownSized(clientID, round int, global []float64) ([]float64, int64) {
	received := t.take(len(global))
	for i, x := range global {
		received[i] = float64(float32(x))
	}
	t.mu.Lock()
	t.lastDown[clientID] = received
	t.mu.Unlock()
	wire := tensor.VectorWireSizeF32(len(global))
	t.downBytes.Add(wire)
	return received, wire
}

// Up implements core.Transport: delta-quantized uplink.
//
//fedtripvet:hotpath
func (t *Transport) Up(clientID, round int, params []float64) []float64 {
	out, _ := t.UpSized(clientID, round, params)
	return out
}

// UpSized implements core.SizedTransport. It evicts the client's downlink
// reference: a second Up for the same dispatch would fall back to float32.
//
//fedtripvet:hotpath
func (t *Transport) UpSized(clientID, round int, params []float64) ([]float64, int64) {
	t.mu.Lock()
	ref := t.lastDown[clientID]
	delete(t.lastDown, clientID)
	t.mu.Unlock()
	if ref == nil {
		// No recorded downlink (shouldn't happen in a normal round loop):
		// fall back to float32 shipping.
		wire := tensor.VectorWireSizeF32(len(params))
		t.upBytes.Add(wire)
		out := make([]float64, len(params))
		for i, x := range params {
			out[i] = float64(float32(x))
		}
		return out, wire
	}
	delta := make([]float64, len(params))
	tensor.SubInto(delta, params, ref)
	q, err := Quantize(delta, t.Bits)
	if err != nil {
		// Non-finite upload: ship raw and let the server's divergence
		// check handle it.
		t.recycle(ref)
		wire := tensor.VectorWireSizeF32(len(params))
		t.upBytes.Add(wire)
		return params, wire
	}
	wire := q.WireSize()
	t.upBytes.Add(wire)
	rec := q.Dequantize()
	// Reconstruct in place over the reference: it leaves the transport as
	// the returned value (the runtime copies it immediately).
	tensor.AddInto(ref, ref, rec)
	return ref, wire
}

// recycle returns an evicted reference buffer to the free list.
func (t *Transport) recycle(buf []float64) {
	t.mu.Lock()
	t.free = append(t.free, buf)
	t.mu.Unlock()
}

// DownBytes returns total downlink traffic.
func (t *Transport) DownBytes() int64 { return t.downBytes.Load() }

// UpBytes returns total uplink traffic.
func (t *Transport) UpBytes() int64 { return t.upBytes.Load() }

// WireBytes implements core.MeteredTransport, so runs with a quantized
// uplink report their real (compressed) traffic in CommBytesByRound.
func (t *Transport) WireBytes() (down, up int64) {
	return t.DownBytes(), t.UpBytes()
}
