package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

func ExampleEMA() {
	curve := []float64{0.10, 0.50, 0.55, 0.80, 0.82}
	smooth := stats.EMA(curve, 0.5)
	for _, v := range smooth {
		fmt.Printf("%.3f ", v)
	}
	fmt.Println()
	// Output: 0.100 0.300 0.425 0.613 0.716
}

func ExampleRoundsToTarget() {
	accuracy := []float64{0.3, 0.6, 0.85, 0.9}
	fmt.Println(stats.RoundsToTarget(accuracy, 0.85))
	fmt.Println(stats.RoundsToTarget(accuracy, 0.99))
	// Output:
	// 3
	// -1
}

func ExampleBoxStats() {
	b := stats.BoxStats([]float64{0.70, 0.72, 0.74, 0.76, 0.78})
	fmt.Printf("median %.2f, IQR [%.2f, %.2f]\n", b.Median, b.Q1, b.Q3)
	// Output: median 0.74, IQR [0.72, 0.76]
}
