package maprange

// This file is outside maprange's scope (no FTRS/FTCK literal, no
// recorder, no snapshot methods): raw map iteration is legal here.
func flatten(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
