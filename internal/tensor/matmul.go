package tensor

import (
	"fmt"

	"repro/internal/parallel"
)

// MatMul computes C = A x B for A[m,k], B[k,n], writing into C[m,n].
// C must not alias A or B. The kernel parallelises over rows of A and uses
// i-k-j loop order so the inner loop streams contiguous rows of B and C.
func MatMul(c, a, b *Tensor) {
	m, k, n := mmDims(c, a, b)
	ad, bd, cd := a.Data, b.Data, c.Data
	parallel.ForChunked(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := cd[i*n : (i+1)*n]
			for j := range ci {
				ci[j] = 0
			}
			ai := ad[i*k : (i+1)*k]
			for p, av := range ai {
				if av == 0 {
					continue
				}
				bp := bd[p*n : (p+1)*n]
				axpyKernel(ci, bp, av)
			}
		}
	})
}

// MatMulAddBias computes C = A x B + bias, where bias is a length-n vector
// broadcast over rows. This is the dense-layer forward kernel.
func MatMulAddBias(c, a, b *Tensor, bias []float64) {
	m, k, n := mmDims(c, a, b)
	if len(bias) != n {
		panic(fmt.Sprintf("tensor: bias length %d != %d", len(bias), n))
	}
	ad, bd, cd := a.Data, b.Data, c.Data
	parallel.ForChunked(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := cd[i*n : (i+1)*n]
			copy(ci, bias)
			ai := ad[i*k : (i+1)*k]
			for p, av := range ai {
				if av == 0 {
					continue
				}
				bp := bd[p*n : (p+1)*n]
				axpyKernel(ci, bp, av)
			}
		}
	})
}

// MatMulATB computes C = A^T x B for A[m,k], B[m,n], writing into C[k,n].
// This is the weight-gradient kernel of a dense layer (dW = X^T dY).
// Parallelises over rows of the output (columns of A).
func MatMulATB(c, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 || c.Rank() != 2 {
		panic("tensor: MatMulATB requires rank-2 tensors")
	}
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	if b.Dim(0) != m || c.Dim(0) != k || c.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulATB shape mismatch A%v B%v C%v", a.shape, b.shape, c.shape))
	}
	ad, bd, cd := a.Data, b.Data, c.Data
	parallel.ForChunked(k, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			cp := cd[p*n : (p+1)*n]
			for j := range cp {
				cp[j] = 0
			}
			for i := 0; i < m; i++ {
				av := ad[i*k+p]
				if av == 0 {
					continue
				}
				bi := bd[i*n : (i+1)*n]
				axpyKernel(cp, bi, av)
			}
		}
	})
}

// MatMulABT computes C = A x B^T for A[m,n], B[k,n], writing into C[m,k].
// This is the input-gradient kernel of a dense layer (dX = dY W^T): each
// output element is a dot product of two contiguous rows.
func MatMulABT(c, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 || c.Rank() != 2 {
		panic("tensor: MatMulABT requires rank-2 tensors")
	}
	m, n := a.Dim(0), a.Dim(1)
	k := b.Dim(0)
	if b.Dim(1) != n || c.Dim(0) != m || c.Dim(1) != k {
		panic(fmt.Sprintf("tensor: MatMulABT shape mismatch A%v B%v C%v", a.shape, b.shape, c.shape))
	}
	ad, bd, cd := a.Data, b.Data, c.Data
	parallel.ForChunked(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := ad[i*n : (i+1)*n]
			ci := cd[i*k : (i+1)*k]
			for p := 0; p < k; p++ {
				bp := bd[p*n : (p+1)*n]
				ci[p] = dotKernel(ai, bp)
			}
		}
	})
}

func mmDims(c, a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 || c.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k = a.Dim(0), a.Dim(1)
	n = b.Dim(1)
	if b.Dim(0) != k || c.Dim(0) != m || c.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch A%v B%v C%v", a.shape, b.shape, c.shape))
	}
	return m, k, n
}

// axpyKernel computes dst += alpha * src with 4-way unrolling.
func axpyKernel(dst, src []float64, alpha float64) {
	n := len(dst)
	_ = src[n-1]
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += alpha * src[i]
		dst[i+1] += alpha * src[i+1]
		dst[i+2] += alpha * src[i+2]
		dst[i+3] += alpha * src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += alpha * src[i]
	}
}

// dotKernel computes the dot product of equal-length slices with 4-way
// unrolling into independent accumulators.
func dotKernel(a, b []float64) float64 {
	n := len(a)
	_ = b[n-1]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}
