// Command fedtrip-sweep sweeps one hyperparameter of one method over a
// list of values and reports best/final accuracy and rounds-to-target for
// each, on a fixed federated task. It generalises the paper's Fig. 7
// (mu sensitivity) to any method/parameter pair:
//
//	fedtrip-sweep -algo fedtrip -param mu -values 0.1,0.4,1.0,2.5
//	fedtrip-sweep -algo moon   -param tau -values 0.1,0.5,1.0
//	fedtrip-sweep -algo feddyn -param alpha -values 0.01,0.1,1.0
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/algos"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/stats"
)

func main() {
	var (
		algoName = flag.String("algo", "fedtrip", "method to sweep")
		param    = flag.String("param", "mu", "hyperparameter: mu|tau|alpha|beta|slowlr")
		values   = flag.String("values", "0.1,0.4,0.8,1.5,2.5", "comma-separated values")
		dataset  = flag.String("dataset", "mnist", "dataset kind")
		model    = flag.String("model", "cnn", "model architecture")
		alpha    = flag.Float64("dir", 0.5, "Dirichlet alpha of the data partition")
		clients  = flag.Int("clients", 10, "client population")
		perRound = flag.Int("k", 4, "clients per round")
		samples  = flag.Int("samples", 100, "samples per client")
		rounds   = flag.Int("rounds", 30, "communication rounds")
		batch    = flag.Int("batch", 10, "batch size")
		scale    = flag.Float64("scale", 0.5, "model width scale")
		seed     = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()
	if err := run(*algoName, *param, *values, *dataset, *model, *alpha,
		*clients, *perRound, *samples, *rounds, *batch, *scale, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "fedtrip-sweep:", err)
		os.Exit(1)
	}
}

func run(algoName, param, values, dataset, model string, dirAlpha float64,
	clients, perRound, samples, rounds, batch int, scale float64, seed int64) error {

	kind := data.Kind(dataset)
	st, err := data.TableII(kind)
	if err != nil {
		return err
	}
	train, test, err := data.Generate(data.Spec{Kind: kind, Train: clients * samples, Test: 400, Seed: seed})
	if err != nil {
		return err
	}
	parts, err := partition.Partition(partition.Dirichlet(dirAlpha), train.Y, train.Classes, clients, samples, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	spec := nn.ModelSpec{Arch: nn.Arch(model), Channels: st.Channels, Height: st.Height, Width: st.Width, Classes: st.Classes, Scale: scale}

	runOne := func(p algos.Params) (*core.Result, error) {
		algo, err := algos.New(algoName, p)
		if err != nil {
			return nil, err
		}
		return core.Run(core.Config{
			Model: spec, Train: train, Test: test, Parts: parts,
			Rounds: rounds, ClientsPerRound: perRound, BatchSize: batch,
			LocalEpochs: 1, LR: 0.01, Momentum: 0.9, Algo: algo, Seed: seed,
		})
	}

	// FedAvg reference fixes the rounds-to-target bar.
	ref, err := runOne(algos.Params{})
	if err != nil {
		return err
	}
	target := 0.97 * ref.FinalAccuracy

	fmt.Printf("sweep %s.%s on %s/%s Dir-%g (%d-of-%d, %d rounds), target %.4f\n\n",
		algoName, param, model, dataset, dirAlpha, perRound, clients, rounds, target)
	fmt.Printf("%-8s  %-9s  %-9s  %s\n", param, "best", "final", "rounds-to-target")
	for _, vs := range strings.Split(values, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(vs), 64)
		if err != nil {
			return fmt.Errorf("bad value %q: %w", vs, err)
		}
		var p algos.Params
		switch param {
		case "mu":
			p.Mu = v
		case "tau":
			p.Tau = v
		case "alpha":
			p.Alpha = v
		case "beta":
			p.Beta = v
		case "slowlr":
			p.SlowLR = v
		default:
			return fmt.Errorf("unknown param %q", param)
		}
		res, err := runOne(p)
		if err != nil {
			return err
		}
		rt := stats.RoundsToTarget(res.Accuracy, target)
		rtStr := fmt.Sprintf("%d", rt)
		if rt < 0 {
			rtStr = fmt.Sprintf(">%d", rounds)
		}
		fmt.Printf("%-8.3g  %-9.4f  %-9.4f  %s\n", v, res.BestAccuracy, res.FinalAccuracy, rtStr)
	}
	return nil
}
