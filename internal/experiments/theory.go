package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/prng"
	"repro/internal/tensor"
)

// runTheoryRho empirically grounds Theorem 1's convergence condition. The
// theorem's decrease coefficient (with exact local solves, gamma = 0) is
//
//	rho = 1/mu - L*B/mu^2 - L*B^2/(2*mu^2)
//
// where L is the smoothness constant of the local losses (Assumption 1)
// and B bounds the gradient dissimilarity ||grad F_k|| <= B ||grad f||
// (Assumption 2). The experiment estimates L and B on the actual
// synthetic task at several points along a training trajectory, then
// reports rho for the paper's mu choices — positive rho is the paper's
// sufficient condition for per-round objective decrease.
func runTheoryRho(p Profile, logf Logf) ([]*Table, error) {
	clients := p.Clients
	perClient, err := p.samplesPerClient(data.KindMNIST)
	if err != nil {
		return nil, err
	}
	train, test, err := p.datasets(data.KindMNIST, clients, perClient, 0)
	if err != nil {
		return nil, err
	}
	spec, err := p.modelSpec(nn.ArchMLP, data.KindMNIST)
	if err != nil {
		return nil, err
	}
	rng := prng.Stream(p.Seed, streamPartition, 0)
	parts, err := partition.Partition(partition.Dirichlet(0.5), train.Y, train.Classes, clients, perClient, rng)
	if err != nil {
		return nil, err
	}
	// Collect global-model snapshots along a short FedAvg trajectory so
	// the constants are measured where training actually happens.
	var snapshots [][]float64
	algoBase := &fedAvgForTheory{}
	cfg := core.Config{
		Model: spec, Train: train, Test: test, Parts: parts,
		Rounds: minInt(p.Rounds, 10), ClientsPerRound: p.PerRound,
		BatchSize: p.Batch, LocalEpochs: p.LocalEpochs,
		LR: p.LR, Momentum: p.Momentum, Algo: algoBase, Seed: p.Seed,
		OnRound: func(round int, s *core.Server) {
			if round%2 == 1 {
				snapshots = append(snapshots, append([]float64(nil), s.Global()...))
			}
		},
	}
	// The trajectory run goes through Case.runSpec so the profile's
	// runtime selection reaches it; the snapshot hook rides along as
	// OnRound. The FullGrad probes below are measurement, not a run —
	// they read client data through a bare server.
	rspec, err := (Case{Kind: data.KindMNIST, Arch: nn.ArchMLP, Scheme: partition.Dirichlet(0.5), Algo: "fedavg"}).runSpec(p, cfg)
	if err != nil {
		return nil, err
	}
	logf.printf("theory-rho: collecting trajectory snapshots")
	if _, err := core.Start(rspec); err != nil {
		return nil, err
	}
	srv, err := core.NewServer(cfg)
	if err != nil {
		return nil, err
	}

	// Estimate L: max over snapshot pairs and clients of
	// ||grad F_k(w1) - grad F_k(w2)|| / ||w1 - w2||.
	// Estimate B: max over snapshots and clients of
	// ||grad F_k(w)|| / ||grad f(w)||.
	var lEst, bEst float64
	probes := 0
	for si, w := range snapshots {
		grads := make([][]float64, len(srv.Clients()))
		mean := make([]float64, len(w))
		for k, c := range srv.Clients() {
			grads[k] = c.FullGrad(w)
			tensor.Axpy(1/float64(len(srv.Clients())), grads[k], mean)
		}
		gNorm := tensor.Norm2(mean)
		for _, gk := range grads {
			if gNorm > 1e-12 {
				if r := tensor.Norm2(gk) / gNorm; r > bEst {
					bEst = r
				}
			}
		}
		if si+1 < len(snapshots) {
			w2 := snapshots[si+1]
			dw := math.Sqrt(tensor.DistSq(w, w2))
			if dw > 1e-12 {
				for k, c := range srv.Clients() {
					g2 := c.FullGrad(w2)
					dg := math.Sqrt(tensor.DistSq(grads[k], g2))
					if r := dg / dw; r > lEst {
						lEst = r
					}
				}
			}
		}
		probes++
	}

	t := &Table{
		ID: "theory-rho",
		Title: fmt.Sprintf("Theorem 1 constants on the synthetic task (MLP/MNIST Dir-0.5, %d snapshots): L=%.3f, B=%.3f",
			probes, lEst, bEst),
		Headers: []string{"mu", "rho = 1/mu - LB/mu^2 - LB^2/(2mu^2)", "decrease guaranteed"},
	}
	for _, mu := range []float64{0.4, 1.0, 2.0, 4.0, 6 * lEst * bEst * bEst} {
		rho := 1/mu - lEst*bEst/(mu*mu) - lEst*bEst*bEst/(2*mu*mu)
		t.AddRow(fmt.Sprintf("%.3g", mu), fmt.Sprintf("%.5f", rho), yesNo(rho > 0))
	}
	t.Notes = append(t.Notes,
		"L and B are empirical maxima over trajectory snapshots (lower bounds on the true constants)",
		"the paper instantiates mu = 6LB^2 as an example choice that guarantees rho > 0",
		fmt.Sprintf("with these estimates, 6LB^2 = %.3g", 6*lEst*bEst*bEst))
	return []*Table{t}, nil
}

// fedAvgForTheory avoids importing algos (package cycle): plain FedAvg.
type fedAvgForTheory struct{ core.Base }

func (*fedAvgForTheory) Name() string { return "fedavg" }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// rhoOf exposes the Theorem 1 coefficient for tests.
func rhoOf(mu, l, b float64) float64 {
	return 1/mu - l*b/(mu*mu) - l*b*b/(2*mu*mu)
}
