package analysis

// All returns fresh instances of every fedtripvet analyzer, in the
// order they are documented. Instances are not shared: each carries its
// own FlagSet, so a driver and a test configuring the same analyzer
// never race on flag state.
func All() []*Analyzer {
	return []*Analyzer{
		NewRandSource(),
		NewSeedStream(),
		NewMapRange(),
		NewHotPath(),
	}
}
