// Deterministic run snapshots: serialize a RunState at a round boundary
// and reconstruct it bit-for-bit in a fresh process.
//
// The format is a versioned, magic-headered binary stream:
//
//	"FTRS" | version u8 | fingerprint string | common section | runner section
//
// The fingerprint is a canonical string of everything that determines the
// run's trajectory (runtime, method, policy, hyperparameters, seed,
// latency/device/churn models, dataset sizes, a hash of the partition).
// Resume recomputes it from the spec the caller provides and refuses a
// snapshot whose fingerprint differs — a snapshot only carries the *live*
// state (model, RNG positions, event heap, metrics); everything
// re-derivable from the spec (datasets, partitions, device speeds,
// engines) is rebuilt, which keeps snapshots |w|-sized instead of
// dataset-sized.
//
// What makes the resumed run bit-identical to an uninterrupted one:
//
//   - Every RNG is a named splitmix64 stream whose position serializes in
//     17 bytes (internal/prng). Unmaterialized client streams re-derive
//     from the seed registry.
//   - Snapshot quiesces: every in-flight job's local training is joined
//     first. Training physically completes before its virtual arrival in
//     any run, so joining early changes nothing — and afterwards the
//     per-client state and the job's finished update are plain data.
//   - Order-sensitive scheduler state serializes verbatim: the idle set's
//     ids array (a uniform pick indexes into it, so its order is part of
//     the trajectory), the event heap's array layout, the churn heap.
//   - Optimizer state needs no section: every local round begins with
//     opt.Reset() (pinned by the optim package's tests), so there is no
//     cross-round optimizer state to save.
//
// Not snapshottable: methods with server-side aggregation state outside
// RunState (Aggregator/PreRounder implementors — SlowMo's momentum,
// SCAFFOLD's c, ...). Snapshot refuses them with a precise error rather
// than silently resuming a half-restored method.
package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/prng"
)

const (
	snapMagic = "FTRS"
	// snapVersion 2 added per-job wire-byte fields, the pending-wire
	// recorder counter, and the transport-state section (error-feedback
	// residuals). Version 3 added the adversary section (per-client fault
	// assignment, noise-stream RNG positions) and the rejected-updates
	// counter. Version 4 switched the churn section to the compact
	// aggregate process (segment permutation + two clock times instead of
	// per-client phase arrays and an O(N) event heap), added the parked-
	// job remainder to job records, and made the adversary RNG array
	// optional (only the noise mode materializes it) — older snapshots
	// cannot be read by this build.
	snapVersion = 4
	// snapMaxLen bounds every deserialized collection length: corrupt or
	// adversarial length prefixes must not drive allocation.
	snapMaxLen = 1 << 30
)

// snapWriter is a little-endian binary writer with sticky-error
// accumulation: call sites stay linear and flush reports the first
// failure.
type snapWriter struct {
	w   *bufio.Writer
	err error
}

func newSnapWriter(w io.Writer) *snapWriter { return &snapWriter{w: bufio.NewWriter(w)} }

func (s *snapWriter) flush() error {
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

func (s *snapWriter) raw(b []byte) {
	if s.err == nil {
		_, s.err = s.w.Write(b)
	}
}

func (s *snapWriter) u8(v uint8) { s.raw([]byte{v}) }

func (s *snapWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	s.raw(b[:])
}

func (s *snapWriter) i64(v int64)   { s.u64(uint64(v)) }
func (s *snapWriter) num(v int)     { s.i64(int64(v)) }
func (s *snapWriter) f64(v float64) { s.u64(math.Float64bits(v)) }

func (s *snapWriter) boolv(v bool) {
	if v {
		s.u8(1)
	} else {
		s.u8(0)
	}
}

func (s *snapWriter) str(v string) {
	s.num(len(v))
	s.raw([]byte(v))
}

func (s *snapWriter) floats(v []float64) {
	s.num(len(v))
	for _, x := range v {
		s.f64(x)
	}
}

func (s *snapWriter) i64s(v []int64) {
	s.num(len(v))
	for _, x := range v {
		s.i64(x)
	}
}

func (s *snapWriter) i32s(v []int32) {
	s.num(len(v))
	for _, x := range v {
		s.i64(int64(x))
	}
}

func (s *snapWriter) bools(v []bool) {
	s.num(len(v))
	for _, x := range v {
		s.boolv(x)
	}
}

func (s *snapWriter) rngState(st prng.State) {
	s.u64(st.S)
	s.f64(st.Spare)
	s.boolv(st.HasSpare)
}

// snapReader mirrors snapWriter: little-endian reads with a sticky
// error. Truncation surfaces as a precise "truncated snapshot" error,
// not a zero value silently flowing into the run.
type snapReader struct {
	r   *bufio.Reader
	err error
}

func newSnapReader(r io.Reader) *snapReader { return &snapReader{r: bufio.NewReader(r)} }

// fail records the first error.
func (s *snapReader) fail(format string, args ...any) {
	if s.err == nil {
		s.err = fmt.Errorf(format, args...)
	}
}

func (s *snapReader) raw(b []byte) {
	if s.err != nil {
		return
	}
	if _, err := io.ReadFull(s.r, b); err != nil {
		s.err = fmt.Errorf("core: truncated snapshot: %w", err)
	}
}

func (s *snapReader) u8() uint8 {
	var b [1]byte
	s.raw(b[:])
	return b[0]
}

func (s *snapReader) u64() uint64 {
	var b [8]byte
	s.raw(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (s *snapReader) i64() int64   { return int64(s.u64()) }
func (s *snapReader) f64() float64 { return math.Float64frombits(s.u64()) }

func (s *snapReader) boolv() bool {
	switch v := s.u8(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		s.fail("core: corrupt snapshot: bool byte %d", v)
		return false
	}
}

// length reads a collection length and bounds it.
func (s *snapReader) length(what string, max int) int {
	n := s.i64()
	if s.err != nil {
		return 0
	}
	if n < 0 || n > int64(max) {
		s.fail("core: corrupt snapshot: %s length %d outside [0,%d]", what, n, max)
		return 0
	}
	return int(n)
}

func (s *snapReader) num(what string) int {
	n := s.i64()
	if n < math.MinInt32 || n > math.MaxInt32 {
		s.fail("core: corrupt snapshot: %s value %d out of range", what, n)
		return 0
	}
	return int(n)
}

func (s *snapReader) str(what string) string {
	n := s.length(what, snapMaxLen)
	if s.err != nil || n == 0 {
		return ""
	}
	b := make([]byte, n)
	s.raw(b)
	return string(b)
}

func (s *snapReader) floats(what string) []float64 {
	n := s.length(what, snapMaxLen)
	if s.err != nil {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = s.f64()
	}
	return v
}

func (s *snapReader) i64s(what string) []int64 {
	n := s.length(what, snapMaxLen)
	if s.err != nil {
		return nil
	}
	v := make([]int64, n)
	for i := range v {
		v[i] = s.i64()
	}
	return v
}

func (s *snapReader) i32s(what string) []int32 {
	n := s.length(what, snapMaxLen)
	if s.err != nil {
		return nil
	}
	v := make([]int32, n)
	for i := range v {
		x := s.i64()
		if x < math.MinInt32 || x > math.MaxInt32 {
			s.fail("core: corrupt snapshot: %s[%d] value %d out of range", what, i, x)
			return nil
		}
		v[i] = int32(x)
	}
	return v
}

func (s *snapReader) bools(what string) []bool {
	n := s.length(what, snapMaxLen)
	if s.err != nil {
		return nil
	}
	v := make([]bool, n)
	for i := range v {
		v[i] = s.boolv()
	}
	return v
}

func (s *snapReader) rngState() prng.State {
	var st prng.State
	st.S = s.u64()
	st.Spare = s.f64()
	st.HasSpare = s.boolv()
	return st
}

// fingerprint canonically renders everything that determines the run's
// trajectory. Resume compares it string-to-string, so a mismatch error
// names exactly what the caller changed. Function-valued fields (hooks,
// a custom Discount) and Shards cannot be fingerprinted — Shards never
// affects a trajectory by construction, and the resolved policy name
// covers the built-in discount chain; a bespoke Discount function is the
// caller's responsibility to keep identical across resume.
func (sp *RunSpec) fingerprint(numParams int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "runtime=%s algo=%s policy=%s", sp.Runtime, sp.Algo.Name(), sp.Policy.Name())
	fmt.Fprintf(&b, " rounds=%d n=%d k=%d batch=%d epochs=%d", sp.Rounds, len(sp.Parts), sp.ClientsPerRound, sp.BatchSize, sp.LocalEpochs)
	fmt.Fprintf(&b, " lr=%g mom=%g clip=%g seed=%d evalevery=%d", sp.LR, sp.Momentum, sp.ClipNorm, sp.Seed, sp.EvalEvery)
	fmt.Fprintf(&b, " conc=%d buf=%d", sp.Concurrency, sp.BufferSize)
	lat, dev, ch, net, fa := "none", "none", "none", "none", "none"
	if sp.Latency != nil {
		lat = sp.Latency.String()
	}
	if sp.Devices != nil {
		dev = sp.Devices.String()
	}
	if sp.Churn != nil {
		ch = sp.Churn.String()
	}
	if sp.Network != nil {
		net = sp.Network.String()
	}
	if sp.Faults != nil {
		fa = sp.Faults.String()
	}
	fmt.Fprintf(&b, " latency=%s devices=%s floprate=%g adaptive=%t churn=%s network=%s faults=%s", lat, dev, sp.FlopRate, sp.AdaptiveLocalSteps, ch, net, fa)
	fmt.Fprintf(&b, " target=%g stop=%t transport=%s", sp.TargetAccuracy, sp.StopAtTarget, transportName(sp.Transport))
	// The partition is re-derived by the caller; an FNV-1a hash over the
	// per-client sizes catches the common mistake (different -alpha or
	// client count) without embedding N index slices in every header.
	h := uint64(14695981039346656037)
	for _, p := range sp.Parts {
		h = (h ^ uint64(len(p))) * 1099511628211
	}
	fmt.Fprintf(&b, " params=%d train=%d test=%d parts=%016x", numParams, sp.Train.Len(), sp.Test.Len(), h)
	return b.String()
}

// transportName canonically names a transport for the fingerprint: its
// spec string when it has one (every ParseTransport result does), nil as
// "none", anything else as "custom". A resumed run must configure a
// transport with the same name — wire sizes and decode behaviour are
// part of the trajectory once communication is measured or priced.
func transportName(t Transport) string {
	switch t := t.(type) {
	case nil:
		return "none"
	case fmt.Stringer:
		return t.String()
	}
	return "custom"
}

// Snapshot serializes the run's complete live state at the current round
// boundary. The run stays usable afterwards: Snapshot quiesces in-flight
// training (a pure reordering of work that was about to happen anyway)
// but drops nothing, so snapshot-and-continue and snapshot-and-exit both
// work. Returns an error for methods whose aggregation state lives
// outside the runtime (Aggregator/PreRounder implementors).
func (rs *RunState) Snapshot(w io.Writer) error {
	s := rs.run.server()
	if _, ok := s.cfg.Algo.(Aggregator); ok {
		return fmt.Errorf("core: cannot snapshot a %s run: the method keeps server-side aggregation state the runtime cannot serialize", s.cfg.Algo.Name())
	}
	if _, ok := s.cfg.Algo.(PreRounder); ok {
		return fmt.Errorf("core: cannot snapshot a %s run: the method keeps pre-round server state the runtime cannot serialize", s.cfg.Algo.Name())
	}
	rs.run.quiesce()
	rec := rs.run.recorder()
	rec.syncEvals()

	sw := newSnapWriter(w)
	sw.raw([]byte(snapMagic))
	sw.u8(snapVersion)
	sw.str(rs.spec.fingerprint(len(s.global)))
	rs.snapshotCommon(sw)
	if err := snapshotTransport(sw, s.cfg.Transport); err != nil {
		return err
	}
	rs.run.snapshotBody(sw)
	return sw.flush()
}

// snapshotTransport serializes a StatefulTransport's run-long state
// (error-feedback residuals) as a presence flag plus a length-prefixed
// blob. Snapshot runs quiesced, so no transfer is mutating the state.
func snapshotTransport(sw *snapWriter, t Transport) error {
	st, ok := t.(StatefulTransport)
	sw.boolv(ok)
	if !ok {
		return nil
	}
	var buf bytes.Buffer
	if err := st.SnapshotState(&buf); err != nil {
		return fmt.Errorf("core: snapshot transport state: %w", err)
	}
	sw.num(buf.Len())
	sw.raw(buf.Bytes())
	return nil
}

// restoreTransport is snapshotTransport's inverse, run against the fresh
// transport the resume spec configured.
func restoreTransport(sr *snapReader, t Transport) error {
	has := sr.boolv()
	if sr.err != nil {
		return sr.err
	}
	st, ok := t.(StatefulTransport)
	if has != ok {
		return fmt.Errorf("core: snapshot transport state present=%t, spec transport stateful=%t", has, ok)
	}
	if !has {
		return nil
	}
	n := sr.length("transport state", snapMaxLen)
	if sr.err != nil {
		return sr.err
	}
	blob := make([]byte, n)
	sr.raw(blob)
	if sr.err != nil {
		return sr.err
	}
	if err := st.RestoreState(bytes.NewReader(blob)); err != nil {
		return fmt.Errorf("core: restore transport state: %w", err)
	}
	return nil
}

// snapshotCommon serializes the state shared by every runtime: the
// global model, the selection stream, the client population, and the
// recorder (metric series plus the published accuracies).
func (rs *RunState) snapshotCommon(sw *snapWriter) {
	s := rs.run.server()
	sw.floats(s.global)
	sw.rngState(s.rng.State())

	sw.num(len(s.clients))
	for _, c := range s.clients {
		sw.boolv(c.Hist != nil)
		if c.Hist != nil {
			sw.floats(c.Hist)
		}
		sw.num(c.LastRound)
		sw.boolv(c.rng != nil)
		if c.rng != nil {
			sw.rngState(c.rng.State())
		}
		sw.i64(c.Counter.Total())
		writeScalarMap(sw, c.scalars)
		writeVecMap(sw, c.state)
	}

	// Adversary section: the fault assignment (re-derived on resume and
	// cross-checked — it is a pure function of the spec and seed) and the
	// noise clients' private RNG positions, which are live state.
	sw.boolv(s.faults != nil)
	if s.faults != nil {
		sw.num(len(s.faults))
		for _, f := range s.faults {
			sw.u8(uint8(f))
		}
		// Only the noise mode materializes per-client adversary streams;
		// crash/zero/sign fleets carry no such state.
		sw.boolv(s.advRng != nil)
		for _, rng := range s.advRng {
			sw.boolv(rng != nil)
			if rng != nil {
				sw.rngState(rng.State())
			}
		}
	}

	rec := rs.run.recorder()
	res := rec.res
	sw.num(res.Rounds)
	sw.floats(res.TrainLoss)
	sw.i64s(res.CommBytesByRound)
	sw.floats(res.GFLOPsByRound)
	sw.floats(res.SimTimeByRound)
	sw.floats(res.MeanStalenessByRound)
	sw.num(res.DroppedUpdates)
	sw.num(res.RejectedUpdates)
	sw.num(res.RoundsToTarget)
	sw.i64(rec.cumComm)
	sw.i64(rec.wirePending)
	sw.num(rec.prevEval)
	sw.num(rec.lastSubmitted)
	sw.f64(rec.lastAcc)
	accs := rec.ev.exportAccs()
	rounds := make([]int, 0, len(accs))
	for r := range accs {
		rounds = append(rounds, r)
	}
	sort.Ints(rounds)
	sw.num(len(rounds))
	for _, r := range rounds {
		sw.num(r)
		sw.f64(accs[r])
	}
}

// restoreCommon is snapshotCommon's inverse, with structural validation
// against the freshly built run.
func (rs *RunState) restoreCommon(sr *snapReader) {
	s := rs.run.server()
	global := sr.floats("global model")
	if sr.err == nil && len(global) != len(s.global) {
		sr.fail("core: corrupt snapshot: global model has %d parameters, the spec builds %d", len(global), len(s.global))
	}
	if sr.err != nil {
		return
	}
	copy(s.global, global)
	s.rng.SetState(sr.rngState())

	n := sr.num("client count")
	if sr.err == nil && n != len(s.clients) {
		sr.fail("core: corrupt snapshot: %d clients, the spec builds %d", n, len(s.clients))
	}
	for i := 0; i < n && sr.err == nil; i++ {
		c := s.clients[i]
		if sr.boolv() {
			hist := sr.floats("client historical model")
			if sr.err == nil && len(hist) != len(s.global) {
				sr.fail("core: corrupt snapshot: client %d historical model has %d parameters, want %d", i, len(hist), len(s.global))
			}
			c.Hist = hist
		} else {
			c.Hist = nil
		}
		c.LastRound = sr.num("client last round")
		if sr.boolv() {
			if c.rng == nil {
				c.rng = prng.New(0)
			}
			c.rng.SetState(sr.rngState())
		} else {
			c.rng = nil
		}
		total := sr.i64()
		c.Counter.Reset()
		c.Counter.Add(total)
		c.scalars = readScalarMap(sr)
		c.state = readVecMap(sr, len(s.global))
	}

	hasFaults := sr.boolv()
	if sr.err == nil && hasFaults != (s.faults != nil) {
		sr.fail("core: corrupt snapshot: adversary section present=%t, spec faults present=%t", hasFaults, s.faults != nil)
	}
	if sr.err == nil && hasFaults {
		nf := sr.num("fault assignment count")
		if sr.err == nil && nf != len(s.faults) {
			sr.fail("core: corrupt snapshot: %d fault assignments, the spec derives %d", nf, len(s.faults))
		}
		for i := 0; i < nf && sr.err == nil; i++ {
			f := faultClass(sr.u8())
			if sr.err != nil {
				break
			}
			if f > faultClassLimit {
				sr.fail("core: corrupt snapshot: fault class %d", f)
			} else if f != s.faults[i] {
				// The assignment is a pure function of (population, model,
				// seed); a mismatch means the snapshot came from a
				// different adversary stream.
				sr.fail("core: corrupt snapshot: client %d fault class %d, the spec derives %d", i, f, s.faults[i])
			}
		}
		hasAdvRng := sr.boolv()
		if sr.err == nil && hasAdvRng != (s.advRng != nil) {
			sr.fail("core: corrupt snapshot: adversary streams present=%t, spec derives=%t", hasAdvRng, s.advRng != nil)
		}
		for i := 0; hasAdvRng && i < nf && sr.err == nil; i++ {
			if sr.boolv() {
				if s.advRng[i] == nil {
					sr.fail("core: corrupt snapshot: client %d carries an adversary stream the spec does not derive", i)
					break
				}
				s.advRng[i].SetState(sr.rngState())
			} else if sr.err == nil && s.advRng[i] != nil {
				sr.fail("core: corrupt snapshot: client %d is missing its adversary stream position", i)
			}
		}
	}

	rec := rs.run.recorder()
	res := rec.res
	res.Rounds = sr.num("rounds")
	res.TrainLoss = sr.floats("train-loss series")
	res.CommBytesByRound = sr.i64s("comm-bytes series")
	res.GFLOPsByRound = sr.floats("gflops series")
	res.SimTimeByRound = sr.floats("sim-time series")
	res.MeanStalenessByRound = sr.floats("staleness series")
	res.DroppedUpdates = sr.num("dropped updates")
	res.RejectedUpdates = sr.num("rejected updates")
	s.rejectedUpdates = res.RejectedUpdates
	s.rejectLogged = res.RejectedUpdates > 0
	res.RoundsToTarget = sr.num("rounds to target")
	rec.cumComm = sr.i64()
	rec.wirePending = sr.i64()
	rec.prevEval = sr.num("previous evaluation round")
	rec.lastSubmitted = sr.num("last submitted evaluation round")
	rec.lastAcc = sr.f64()
	nAccs := sr.length("accuracy map", snapMaxLen)
	accs := make(map[int]float64, nAccs)
	for i := 0; i < nAccs && sr.err == nil; i++ {
		r := sr.num("accuracy round")
		accs[r] = sr.f64()
	}
	if sr.err == nil {
		rec.ev.preload(accs)
	}
	if sr.err == nil && (len(res.TrainLoss) != res.Rounds || len(res.CommBytesByRound) != res.Rounds || len(res.GFLOPsByRound) != res.Rounds) {
		sr.fail("core: corrupt snapshot: metric series lengths (%d/%d/%d) disagree with %d recorded rounds",
			len(res.TrainLoss), len(res.CommBytesByRound), len(res.GFLOPsByRound), res.Rounds)
	}
}

func writeScalarMap(sw *snapWriter, m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sw.num(len(keys))
	for _, k := range keys {
		sw.str(k)
		sw.f64(m[k])
	}
}

func readScalarMap(sr *snapReader) map[string]float64 {
	n := sr.length("scalar map", snapMaxLen)
	if n == 0 {
		return nil
	}
	m := make(map[string]float64, n)
	for i := 0; i < n && sr.err == nil; i++ {
		k := sr.str("scalar name")
		m[k] = sr.f64()
	}
	return m
}

func writeVecMap(sw *snapWriter, m map[string][]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sw.num(len(keys))
	for _, k := range keys {
		sw.str(k)
		sw.floats(m[k])
	}
}

func readVecMap(sr *snapReader, numParams int) map[string][]float64 {
	n := sr.length("state-vector map", snapMaxLen)
	if n == 0 {
		return nil
	}
	m := make(map[string][]float64, n)
	for i := 0; i < n && sr.err == nil; i++ {
		k := sr.str("state-vector name")
		v := sr.floats("state vector")
		if sr.err == nil && len(v) != numParams {
			sr.fail("core: corrupt snapshot: state vector %q has %d elements, want %d", k, len(v), numParams)
			return nil
		}
		m[k] = v
	}
	return m
}

// writeJob serializes one quiesced in-flight (or buffered) job: its
// scheduling key, dispatch parameters, and the finished update. The
// global-model snapshot the client trained from is NOT serialized — the
// training already consumed it.
func writeJob(sw *snapWriter, j *trainJob) {
	sw.num(j.c.ID)
	sw.num(j.round)
	sw.f64(j.finish)
	sw.num(j.seq)
	sw.num(j.steps)
	sw.f64(j.speed)
	sw.f64(j.remaining)
	sw.boolv(j.dropped)
	sw.i64(j.flops)
	sw.i64(j.downBytes)
	sw.i64(j.upBytes)
	sw.num(j.update.ClientID)
	sw.floats(j.update.Params)
	sw.num(j.update.NumSamples)
	sw.f64(j.update.TrainLoss)
}

// readJob reconstructs a quiesced job. The done channel carries no token
// and trained is true: the arrival path must not (and will not) join it
// again; paramsPool.put(nil) on the absent global snapshot is a no-op.
func readJob(sr *snapReader, s *Server) *trainJob {
	id := sr.num("job client")
	if sr.err == nil && (id < 0 || id >= len(s.clients)) {
		sr.fail("core: corrupt snapshot: job client %d outside population of %d", id, len(s.clients))
	}
	if sr.err != nil {
		return nil
	}
	j := &trainJob{
		c:       s.clients[id],
		done:    make(chan struct{}, 1),
		trained: true,
		heapIdx: -1,
	}
	j.round = sr.num("job round")
	j.finish = sr.f64()
	j.seq = sr.num("job sequence")
	j.steps = sr.num("job steps")
	j.speed = sr.f64()
	j.remaining = sr.f64()
	j.dropped = sr.boolv()
	j.flops = sr.i64()
	j.downBytes = sr.i64()
	j.upBytes = sr.i64()
	j.update.ClientID = sr.num("update client")
	j.update.Params = sr.floats("update params")
	j.update.NumSamples = sr.num("update samples")
	j.update.TrainLoss = sr.f64()
	j.update.pooled = true
	if sr.err == nil && len(j.update.Params) != len(s.global) {
		sr.fail("core: corrupt snapshot: job update has %d parameters, want %d", len(j.update.Params), len(s.global))
		return nil
	}
	return j
}

// writePopulation serializes the scheduler-facing fleet state. The idle
// set's ids array is order-sensitive — a uniform pick indexes into it —
// so it serializes verbatim, not as a set.
func writePopulation(sw *snapWriter, p *population) {
	sw.i32s(p.dispatches)
	sw.i32s(p.idle.ids)
}

func readPopulation(sr *snapReader, p *population) {
	n := len(p.dispatches)
	dispatches := sr.i32s("dispatch counts")
	ids := sr.i32s("idle set")
	if sr.err != nil {
		return
	}
	if len(dispatches) != n || len(ids) > n {
		sr.fail("core: corrupt snapshot: fleet state sized %d/%d, population is %d", len(dispatches), len(ids), n)
		return
	}
	copy(p.dispatches, dispatches)
	p.idle.ids = p.idle.ids[:0]
	for i := range p.idle.pos {
		p.idle.pos[i] = -1
	}
	for i, id := range ids {
		if id < 0 || int(id) >= n {
			sr.fail("core: corrupt snapshot: idle client %d outside population of %d", id, n)
			return
		}
		p.idle.ids = append(p.idle.ids, id)
		p.idle.pos[id] = int32(i)
	}
}

// writeChurn serializes the aggregate availability process: the segment
// permutation (order-sensitive — the which-client pick indexes into it),
// the three live-segment boundaries, the two exponential clock times,
// the scheduled-event heap in array order, and the mass-suspension
// rejoin groups.
func writeChurn(sw *snapWriter, c *churn) {
	sw.i32s(c.order)
	sw.num(c.nUp)
	sw.num(c.nDown)
	sw.num(c.nSusp)
	sw.f64(c.nextDrop)
	sw.f64(c.nextRejoin)
	sw.i64(c.seq)
	sw.rngState(c.rng.State())
	sw.num(len(c.h.es))
	for _, e := range c.h.es {
		sw.f64(e.at)
		sw.i64(e.seq)
		sw.i64(int64(e.id))
		sw.u8(uint8(e.kind))
	}
	sw.num(len(c.groups))
	for _, g := range c.groups {
		sw.i32s(g)
	}
}

func readChurn(sr *snapReader, c *churn) {
	n := c.n
	order := sr.i32s("churn order")
	if sr.err == nil && len(order) != n {
		sr.fail("core: corrupt snapshot: churn order sized %d, population is %d", len(order), n)
	}
	if sr.err != nil {
		return
	}
	copy(c.order, order)
	for i := range c.pos {
		c.pos[i] = -1
	}
	for p, id := range c.order {
		if id < 0 || int(id) >= n || c.pos[id] >= 0 {
			sr.fail("core: corrupt snapshot: churn order is not a permutation (entry %d = %d)", p, id)
			return
		}
		c.pos[id] = int32(p)
	}
	c.nUp = sr.num("churn online count")
	c.nDown = sr.num("churn offline count")
	c.nSusp = sr.num("churn suspended count")
	if sr.err == nil && (c.nUp < 0 || c.nDown < 0 || c.nSusp < 0 || c.nUp+c.nDown+c.nSusp > n) {
		sr.fail("core: corrupt snapshot: churn segments %d/%d/%d exceed population of %d", c.nUp, c.nDown, c.nSusp, n)
		return
	}
	c.nextDrop = sr.f64()
	c.nextRejoin = sr.f64()
	c.seq = sr.i64()
	c.rng.SetState(sr.rngState())
	nEvents := sr.length("churn event heap", snapMaxLen)
	c.h.es = c.h.es[:0]
	for i := 0; i < nEvents && sr.err == nil; i++ {
		var e churnEvent
		e.at = sr.f64()
		e.seq = sr.i64()
		e.id = int32(sr.num("churn event id"))
		e.kind = churnEventKind(sr.u8())
		if sr.err == nil && e.kind > churnGroupRejoin {
			sr.fail("core: corrupt snapshot: churn event kind %d", e.kind)
			return
		}
		c.h.es = append(c.h.es, e)
	}
	nGroups := sr.length("churn rejoin groups", snapMaxLen)
	c.groups = c.groups[:0]
	for i := 0; i < nGroups && sr.err == nil; i++ {
		g := sr.i32s("churn rejoin group")
		for _, id := range g {
			if id < 0 || int(id) >= n {
				sr.fail("core: corrupt snapshot: churn group member %d outside population of %d", id, n)
				return
			}
		}
		c.groups = append(c.groups, g)
	}
	for _, e := range c.h.es {
		if e.kind == churnGroupRejoin && (e.id < 0 || int(e.id) >= len(c.groups)) {
			sr.fail("core: corrupt snapshot: churn group-rejoin event references group %d of %d", e.id, len(c.groups))
			return
		}
	}
}

// --- per-runner bodies ---

func (r *syncRunner) snapshotBody(sw *snapWriter) {
	sw.num(r.t)
}

func (r *syncRunner) restoreBody(sr *snapReader) error {
	r.t = sr.num("completed rounds")
	return sr.err
}

func (r *barrierRunner) snapshotBody(sw *snapWriter) {
	sw.num(r.t)
	sw.i64(r.flopsTotal)
	sw.f64(r.a.now)
	sw.rngState(r.a.latRng.State())
	writePopulation(sw, r.a.pop)
}

func (r *barrierRunner) restoreBody(sr *snapReader) error {
	r.t = sr.num("completed rounds")
	r.flopsTotal = sr.i64()
	r.a.now = sr.f64()
	r.a.latRng.SetState(sr.rngState())
	readPopulation(sr, r.a.pop)
	return sr.err
}

func (r *bufferedRunner) snapshotBody(sw *snapWriter) {
	a := r.a
	sw.num(r.aggs)
	sw.num(r.seq)
	sw.i64(r.flopsTotal)
	sw.f64(a.now)
	sw.rngState(a.latRng.State())
	writePopulation(sw, a.pop)
	// The event heap in array order: restoring verbatim (heapIdx = slot)
	// preserves both the heap invariant and the exact layout, so a
	// resumed run's pops and sift paths replay identically.
	sw.num(len(r.inflight.js))
	for _, j := range r.inflight.js {
		writeJob(sw, j)
	}
	sw.num(len(r.buffer))
	for _, j := range r.buffer {
		writeJob(sw, j)
	}
	sw.boolv(a.churn != nil)
	if a.churn != nil {
		writeChurn(sw, a.churn)
	}
}

func (r *bufferedRunner) restoreBody(sr *snapReader) error {
	a, s := r.a, r.a.s
	r.aggs = sr.num("completed aggregations")
	r.seq = sr.num("dispatch sequence")
	r.flopsTotal = sr.i64()
	a.now = sr.f64()
	a.latRng.SetState(sr.rngState())
	readPopulation(sr, a.pop)
	nInflight := sr.length("in-flight jobs", snapMaxLen)
	r.inflight.js = r.inflight.js[:0]
	for i := 0; i < nInflight && sr.err == nil; i++ {
		j := readJob(sr, s)
		if j == nil {
			break
		}
		j.heapIdx = i
		r.inflight.js = append(r.inflight.js, j)
		r.inflight.slot[j.c.ID] = int32(i) + 1
	}
	nBuffer := sr.length("buffered jobs", snapMaxLen)
	r.buffer = r.buffer[:0]
	for i := 0; i < nBuffer && sr.err == nil; i++ {
		j := readJob(sr, s)
		if j == nil {
			break
		}
		r.buffer = append(r.buffer, j)
	}
	hasChurn := sr.boolv()
	if sr.err == nil && hasChurn != (a.churn != nil) {
		sr.fail("core: corrupt snapshot: churn section present=%t, spec churn present=%t", hasChurn, a.churn != nil)
	}
	if sr.err == nil && hasChurn {
		readChurn(sr, a.churn)
	}
	return sr.err
}

// ResumeSpec describes how to reconstruct a snapshotted run. Spec must
// rebuild the same run the snapshot was taken from: same method, policy,
// hyperparameters, seed, datasets, partition, and transport spec —
// Resume verifies this against the snapshot's fingerprint and reports
// exactly what differs. Function-valued fields (Logf, OnRound,
// OnUpdates) may differ freely; they are not part of the trajectory
// fingerprint. The Transport must be a fresh instance of the same spec
// (same fingerprint name); a StatefulTransport's run-long state
// (error-feedback residuals) is restored from the snapshot.
type ResumeSpec struct {
	Spec RunSpec
}

// Resume reconstructs a run from a Snapshot stream and returns it
// positioned at the snapshotted round boundary, ready to Step (or Run)
// onward. The continuation is bit-for-bit identical to the original run
// having never stopped: same model trajectory, same metric series, same
// RNG draws. SizedTransport comm accounting resumes exactly (per-job
// wire bytes and the pending-wire counter are serialized); one caveat
// remains for legacy MeteredTransport-only transports, whose cumulative
// counters restart at zero in the new process.
func Resume(r io.Reader, rspec ResumeSpec) (*RunState, error) {
	spec := rspec.Spec
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rs, err := newRunState(spec)
	if err != nil {
		return nil, err
	}
	if err := rs.restore(r); err != nil {
		rs.Close()
		return nil, err
	}
	return rs, nil
}

// restore reads a snapshot stream into the freshly built run.
func (rs *RunState) restore(r io.Reader) error {
	sr := newSnapReader(r)
	var magic [4]byte
	sr.raw(magic[:])
	if sr.err != nil {
		return sr.err
	}
	if string(magic[:]) != snapMagic {
		return fmt.Errorf("core: not a run snapshot (magic %q, want %q)", magic[:], snapMagic)
	}
	if v := sr.u8(); sr.err == nil && v != snapVersion {
		return fmt.Errorf("core: run snapshot version %d, this build reads version %d", v, snapVersion)
	}
	theirs := sr.str("fingerprint")
	if sr.err != nil {
		return sr.err
	}
	ours := rs.spec.fingerprint(len(rs.run.server().global))
	if theirs != ours {
		return fmt.Errorf("core: snapshot was taken from a different run:\n  snapshot: %s\n  spec:     %s", theirs, ours)
	}
	rs.restoreCommon(sr)
	if sr.err != nil {
		return sr.err
	}
	if err := restoreTransport(sr, rs.run.server().cfg.Transport); err != nil {
		return err
	}
	return rs.run.restoreBody(sr)
}
