// Package quantize implements communication-compression primitives for
// the federated uplink: uniform b-bit quantization and top-k
// sparsification of model vectors, plus a core.Transport that quantizes
// client uploads as deltas against the last downlink (the standard
// delta-encoding used by production FL systems).
//
// The paper reduces communication by needing fewer rounds; these
// primitives reduce bytes per round, and the ext-quant experiment shows
// the two axes compose: FedTrip at 8-bit uplink keeps its convergence
// while shrinking upload traffic ~4x versus float32.
package quantize

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/prng"
)

// Quantized is a uniformly quantized vector: values are mapped to
// [0, 2^bits-1] over [Min, Max] and packed little-endian, lowest bits
// first.
type Quantized struct {
	Bits     int
	N        int
	Min, Max float64
	Data     []byte
}

// Quantize compresses v to bits per element (1..16). All-equal vectors
// (Max == Min) are representable exactly.
func Quantize(v []float64, bits int) (*Quantized, error) {
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("quantize: bits %d outside [1,16]", bits)
	}
	q := &Quantized{Bits: bits, N: len(v)}
	if len(v) == 0 {
		return q, nil
	}
	q.Min, q.Max = v[0], v[0]
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("quantize: non-finite value %v", x)
		}
		if x < q.Min {
			q.Min = x
		}
		if x > q.Max {
			q.Max = x
		}
	}
	levels := float64(uint64(1)<<bits - 1)
	span := q.Max - q.Min
	q.Data = make([]byte, (len(v)*bits+7)/8)
	var acc uint64
	accBits := 0
	byteIdx := 0
	for _, x := range v {
		var code uint64
		if span > 0 {
			code = uint64(math.Round((x - q.Min) / span * levels))
		}
		acc |= code << accBits
		accBits += bits
		for accBits >= 8 {
			q.Data[byteIdx] = byte(acc)
			acc >>= 8
			accBits -= 8
			byteIdx++
		}
	}
	if accBits > 0 {
		q.Data[byteIdx] = byte(acc)
	}
	return q, nil
}

// Dequantize reconstructs the (lossy) vector.
func (q *Quantized) Dequantize() []float64 {
	out := make([]float64, q.N)
	if q.N == 0 {
		return out
	}
	levels := float64(uint64(1)<<q.Bits - 1)
	span := q.Max - q.Min
	var acc uint64
	accBits := 0
	byteIdx := 0
	mask := uint64(1)<<q.Bits - 1
	for i := 0; i < q.N; i++ {
		for accBits < q.Bits {
			acc |= uint64(q.Data[byteIdx]) << accBits
			accBits += 8
			byteIdx++
		}
		code := acc & mask
		acc >>= q.Bits
		accBits -= q.Bits
		if span > 0 {
			out[i] = q.Min + float64(code)/levels*span
		} else {
			out[i] = q.Min
		}
	}
	return out
}

// WireSize returns the encoded size in bytes: header (bits, n, min, max)
// plus the packed payload.
func (q *Quantized) WireSize() int64 {
	return 1 + 8 + 8 + 8 + int64(len(q.Data))
}

// MaxError returns the worst-case absolute reconstruction error of this
// quantization: half a quantization step.
func (q *Quantized) MaxError() float64 {
	levels := float64(uint64(1)<<q.Bits - 1)
	if levels == 0 || q.Max == q.Min {
		return 0
	}
	return (q.Max - q.Min) / levels / 2
}

// Sparse is a top-k sparsified vector: the k largest-magnitude entries,
// stored as (index, float32 value) pairs.
type Sparse struct {
	N       int
	Indices []int32
	Values  []float32
}

// TopK keeps the k largest-magnitude entries of v.
func TopK(v []float64, k int) (*Sparse, error) {
	if k < 0 || k > len(v) {
		return nil, fmt.Errorf("quantize: top-k %d outside [0,%d]", k, len(v))
	}
	s := &Sparse{N: len(v)}
	if k == 0 {
		return s, nil
	}
	// Threshold selection via quickselect on magnitudes.
	mags := make([]float64, len(v))
	for i, x := range v {
		mags[i] = math.Abs(x)
	}
	thresh := quickselectDesc(mags, k)
	s.Indices = make([]int32, 0, k)
	s.Values = make([]float32, 0, k)
	for i, x := range v {
		if math.Abs(x) > thresh {
			s.Indices = append(s.Indices, int32(i))
			s.Values = append(s.Values, float32(x))
		}
	}
	// Fill remaining slots with entries exactly at the threshold.
	for i, x := range v {
		if len(s.Indices) >= k {
			break
		}
		if math.Abs(x) == thresh {
			s.Indices = append(s.Indices, int32(i))
			s.Values = append(s.Values, float32(x))
		}
	}
	return s, nil
}

// RandK keeps k uniformly random entries of v, sampled without
// replacement from rng — the unbiased sparsifier of the compression
// literature (top-k's cheap, gradient-oblivious cousin). Indices are
// returned in ascending order, so the encoding is canonical for a given
// draw. Callers that need determinism across processes (transports,
// resume) must derive rng statelessly, e.g. from (seed, client, round).
func RandK(v []float64, k int, rng *prng.Rand) (*Sparse, error) {
	if k < 0 || k > len(v) {
		return nil, fmt.Errorf("quantize: rand-k %d outside [0,%d]", k, len(v))
	}
	s := &Sparse{N: len(v)}
	if k == 0 {
		return s, nil
	}
	// Partial Fisher–Yates: after k swaps the first k slots are a uniform
	// sample without replacement.
	idx := make([]int32, len(v))
	for i := range idx {
		idx[i] = int32(i)
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(len(v)-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	sel := idx[:k]
	sort.Slice(sel, func(a, b int) bool { return sel[a] < sel[b] })
	s.Indices = make([]int32, k)
	copy(s.Indices, sel)
	s.Values = make([]float32, k)
	for i, id := range s.Indices {
		s.Values[i] = float32(v[id])
	}
	return s, nil
}

// quickselectDesc returns the k-th largest value of xs (1-based k),
// mutating xs.
func quickselectDesc(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	target := k - 1 // index in descending order
	for lo < hi {
		pivot := xs[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for xs[i] > pivot {
				i++
			}
			for xs[j] < pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		if target <= j {
			hi = j
		} else if target >= i {
			lo = i
		} else {
			break
		}
	}
	return xs[target]
}

// DenseInto scatters the sparse entries into dst (which must have length
// N); untouched entries keep their current values, so callers can apply
// the sparse delta on top of a reference vector.
func (s *Sparse) DenseInto(dst []float64) error {
	if len(dst) != s.N {
		return fmt.Errorf("quantize: dense target %d != %d", len(dst), s.N)
	}
	for i, idx := range s.Indices {
		dst[idx] = float64(s.Values[i])
	}
	return nil
}

// WireSize returns the encoded byte size: header + (int32 index + float32
// value) per kept entry.
func (s *Sparse) WireSize() int64 {
	return 8 + int64(len(s.Indices))*8
}
