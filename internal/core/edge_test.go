package core

import (
	"testing"

	"repro/internal/tensor"
)

// Clients whose data size is not a multiple of the batch size must train
// on a final partial batch without losing samples or crashing.
func TestPartialBatches(t *testing.T) {
	cfg := testConfig(t, NewFedTrip(0.4))
	cfg.BatchSize = 23 // 80 samples -> batches of 23,23,23,11
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clients()[0]
	u := c.LocalTrain(1, s.Global())
	if !tensor.AllFinite(u.Params) {
		t.Fatal("partial-batch training produced non-finite params")
	}
	if u.TrainLoss <= 0 {
		t.Fatal("no loss recorded")
	}
}

// Batch size larger than the client's dataset: a single short batch.
func TestBatchLargerThanData(t *testing.T) {
	cfg := testConfig(t, NewFedTrip(0.4))
	cfg.BatchSize = 10000
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u := s.Clients()[0].LocalTrain(1, s.Global())
	if !tensor.AllFinite(u.Params) {
		t.Fatal("oversized batch training failed")
	}
}

// Multiple local epochs reshuffle every epoch and accumulate more steps.
func TestMultipleLocalEpochs(t *testing.T) {
	one := testConfig(t, NewFedTrip(0.4))
	s1, err := NewServer(one)
	if err != nil {
		t.Fatal(err)
	}
	u1 := s1.Clients()[0].LocalTrain(1, s1.Global())

	five := testConfig(t, NewFedTrip(0.4))
	five.LocalEpochs = 5
	s5, err := NewServer(five)
	if err != nil {
		t.Fatal(err)
	}
	u5 := s5.Clients()[0].LocalTrain(1, s5.Global())

	// Five epochs must move the model farther from the global start.
	d1 := tensor.DistSq(u1.Params, s1.Global())
	d5 := tensor.DistSq(u5.Params, s5.Global())
	if d5 <= d1 {
		t.Fatalf("5 epochs moved less (%v) than 1 epoch (%v)", d5, d1)
	}
	// And cost ~5x the FLOPs.
	f1 := s1.Clients()[0].Counter.Total()
	f5 := s5.Clients()[0].Counter.Total()
	if f5 < 4*f1 || f5 > 6*f1 {
		t.Fatalf("epoch FLOPs scaling off: %d vs %d", f1, f5)
	}
}

// K == N (full participation): every client trains every round.
func TestFullParticipation(t *testing.T) {
	cfg := testConfig(t, NewFedTrip(0.4))
	cfg.ClientsPerRound = len(cfg.Parts)
	cfg.Rounds = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 2 {
		t.Fatal("full participation run incomplete")
	}
}

// A single client population degenerates to centralized training but must
// still work.
func TestSingleClient(t *testing.T) {
	cfg := testConfig(t, NewFedTrip(0.4))
	cfg.Parts = cfg.Parts[:1]
	cfg.ClientsPerRound = 1
	cfg.Rounds = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestAccuracy <= 0 {
		t.Fatal("single-client run did not evaluate")
	}
}

// Transport hook is applied to both directions.
type doublingTransport struct{ downs, ups int }

func (d *doublingTransport) Down(clientID, round int, global []float64) []float64 {
	d.downs++
	return global
}
func (d *doublingTransport) Up(clientID, round int, params []float64) []float64 {
	d.ups++
	return params
}

func TestTransportInvoked(t *testing.T) {
	cfg := testConfig(t, NewFedTrip(0.4))
	tr := &doublingTransport{}
	cfg.Transport = tr
	cfg.Rounds = 2
	// Sequential determinism for counting: single client per round.
	cfg.ClientsPerRound = 1
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if tr.downs != 2 || tr.ups != 2 {
		t.Fatalf("transport calls down=%d up=%d want 2/2", tr.downs, tr.ups)
	}
}
