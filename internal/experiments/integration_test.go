package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
)

// Tiny-profile integration runs for the cheaper round-based experiments.
// These execute real federated training (seconds each) and are skipped in
// -short mode.

func runTiny(t *testing.T, id string) []*Table {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode")
	}
	e, ok := Get(id)
	if !ok {
		t.Fatalf("unknown experiment %s", id)
	}
	tabs, err := e.Run(Tiny(), nil)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tabs) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	return tabs
}

func TestTheoryXiValidatesClosedForm(t *testing.T) {
	tabs := runTiny(t, "theory-xi")
	if len(tabs[0].Rows) != 4 {
		t.Fatalf("rows %d", len(tabs[0].Rows))
	}
	for _, row := range tabs[0].Rows {
		relErr := strings.TrimSuffix(row[4], "%")
		v, err := strconv.ParseFloat(relErr, 64)
		if err != nil {
			t.Fatalf("bad rel err cell %q", row[4])
		}
		if v > 5 {
			t.Fatalf("E[xi] deviates %s%% from the closed form (row %v)", relErr, row)
		}
	}
}

func TestFig3MechanismTiny(t *testing.T) {
	tabs := runTiny(t, "fig3")
	tab := tabs[0]
	if len(tab.Rows) != 3 {
		t.Fatalf("fig3 should compare 3 methods, got %d", len(tab.Rows))
	}
	// Parse the global-local divergence column; the regularized methods
	// must not exceed FedAvg's divergence (paper's core mechanism).
	div := map[string]float64{}
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("bad divergence cell %q", row[1])
		}
		div[row[0]] = v
	}
	if div["fedprox"] > div["fedavg"]*1.05 {
		t.Errorf("fedprox divergence %.4f should be <= fedavg %.4f", div["fedprox"], div["fedavg"])
	}
	if div["fedtrip"] > div["fedavg"]*1.1 {
		t.Errorf("fedtrip divergence %.4f should not exceed fedavg %.4f by >10%%", div["fedtrip"], div["fedavg"])
	}
}

func TestAblationXiTiny(t *testing.T) {
	tabs := runTiny(t, "abl-xi")
	if len(tabs[0].Rows) != 4 {
		t.Fatalf("abl-xi should list 4 variants, got %d", len(tabs[0].Rows))
	}
}

func TestTheoryRhoTiny(t *testing.T) {
	tabs := runTiny(t, "theory-rho")
	tab := tabs[0]
	if len(tab.Rows) != 5 {
		t.Fatalf("theory-rho rows %d", len(tab.Rows))
	}
	// The final row uses the paper's mu = 6LB^2 choice, which must
	// guarantee rho > 0.
	last := tab.Rows[len(tab.Rows)-1]
	if last[2] != "yes" {
		t.Fatalf("mu=6LB^2 must guarantee decrease, got row %v", last)
	}
}

func TestRhoFormula(t *testing.T) {
	// With gamma=0 the paper's example: mu = 6LB^2, rho must be positive
	// for any positive L and B >= 1.
	for _, lb := range [][2]float64{{1, 1}, {5, 2}, {0.3, 4}, {10, 1.5}} {
		l, b := lb[0], lb[1]
		mu := 6 * l * b * b
		if rho := rhoOf(mu, l, b); rho <= 0 {
			t.Fatalf("rho(6LB^2)=%v for L=%v B=%v", rho, l, b)
		}
	}
	// Tiny mu violates the condition when LB is large.
	if rho := rhoOf(0.01, 10, 3); rho >= 0 {
		t.Fatalf("rho should be negative for small mu, got %v", rho)
	}
}

// The time-to-accuracy table: every method runs on the barrier runtime
// and on the buffered runtime under the FedBuff and FedAsync policies,
// priced by the same straggler latency model, all through core.Start.
func TestTTATiny(t *testing.T) {
	tabs := runTiny(t, "tta")
	tab := tabs[0]
	if len(tab.Rows) != 9 {
		t.Fatalf("tta should have 3 methods x 3 variants = 9 rows, got %d", len(tab.Rows))
	}
	variants := map[string]int{}
	for _, row := range tab.Rows {
		variants[row[1]]++
		// The simulated-time column must be a positive duration: the
		// straggler latency model prices every variant.
		v, err := strconv.ParseFloat(strings.TrimPrefix(row[5], ">"), 64)
		if err != nil {
			t.Fatalf("bad sim time cell %q", row[5])
		}
		if v <= 0 {
			t.Fatalf("variant %q reports no simulated time (row %v)", row[1], row)
		}
	}
	for _, want := range []string{"sync barrier", "async fedbuff", "async fedasync"} {
		if variants[want] != 3 {
			t.Fatalf("variant %q has %d rows, want 3 (got %v)", want, variants[want], variants)
		}
	}
	// The policy sweep table: FedAsync alpha vs FedBuff K, plus the
	// importance-weighted buffer and a server-LR schedule (the table
	// coverage for ImportancePolicy and WithServerLR).
	if len(tabs) != 2 {
		t.Fatalf("tta should emit the comparison and the sweep, got %d tables", len(tabs))
	}
	sweep := tabs[1]
	if len(sweep.Rows) != 8 {
		t.Fatalf("tta sweep should have 8 policy rows, got %d", len(sweep.Rows))
	}
	labels := map[string]bool{}
	for _, row := range sweep.Rows {
		labels[row[0]] = true
		if v, err := strconv.ParseFloat(strings.TrimPrefix(row[2], ">"), 64); err != nil || v <= 0 {
			t.Fatalf("sweep row %v has no positive sim time", row)
		}
	}
	for _, want := range []string{"fedasync a=0.6", "importance b=0.1 K=2", "fedbuff K=2, lr=invsqrt"} {
		if !labels[want] {
			t.Fatalf("sweep missing row %q (got %v)", want, labels)
		}
	}
}

// The hetero table: three methods under three FLOP-coupled device
// fleets (uniform, tiered with adaptive steps, lognormal with Markov
// churn and a max-staleness cutoff), update-budget-equalized on the
// buffered async runtime.
func TestHeteroTiny(t *testing.T) {
	tabs := runTiny(t, "hetero")
	tab := tabs[0]
	if len(tab.Rows) != 9 {
		t.Fatalf("hetero should have 3 methods x 3 fleets = 9 rows, got %d", len(tab.Rows))
	}
	fleets := map[string]int{}
	for _, row := range tab.Rows {
		fleets[row[1]]++
		// Every fleet is priced in flop-derived simulated time.
		v, err := strconv.ParseFloat(strings.TrimPrefix(row[4], ">"), 64)
		if err != nil {
			t.Fatalf("bad sim time cell %q", row[4])
		}
		if v <= 0 {
			t.Fatalf("fleet %q reports no simulated time (row %v)", row[1], row)
		}
	}
	for _, want := range []string{"uniform fleet", "tiered devices", "lognormal + churn"} {
		if fleets[want] != 3 {
			t.Fatalf("fleet %q has %d rows, want 3 (got %v)", want, fleets[want], fleets)
		}
	}
}

// The comm-tta table: one transport per row on a bandwidth-tiered
// churning fleet, with accuracy, wire bytes, and sim-time columns. The
// sparsifying rows must move fewer bytes than dense float32, and the
// bandwidth pricing must show up as positive simulated time everywhere.
func TestCommTTATiny(t *testing.T) {
	tabs := runTiny(t, "comm-tta")
	tab := tabs[0]
	if len(tab.Rows) != 5 {
		t.Fatalf("comm-tta should have 5 transport rows, got %d", len(tab.Rows))
	}
	cell := func(row []string, col int) float64 {
		v, err := strconv.ParseFloat(strings.TrimPrefix(row[col], ">"), 64)
		if err != nil {
			t.Fatalf("bad cell %q in row %v", row[col], row)
		}
		return v
	}
	// The wire column is cumulative at the (per-row) target round, so
	// compare per-aggregation traffic, which is rate-comparable across
	// rows that needed different aggregation counts.
	mbPerAgg := map[string]float64{}
	for _, row := range tab.Rows {
		mbPerAgg[row[0]] = cell(row, 2) / cell(row, 1)
		if simTime := cell(row, 3); simTime <= 0 {
			t.Fatalf("transport %q reports no simulated time (row %v)", row[0], row)
		}
		if acc := cell(row, 5); acc <= 0 {
			t.Fatalf("transport %q reports no accuracy (row %v)", row[0], row)
		}
	}
	for _, compressed := range []string{"q8", "q8+ef", "topk:0.01+ef", "randk:0.05"} {
		if mbPerAgg[compressed] >= mbPerAgg["f32"] {
			t.Fatalf("%s moved %.4f MB/agg, not less than dense f32's %.4f MB/agg", compressed, mbPerAgg[compressed], mbPerAgg["f32"])
		}
	}
}

// A profile-level runtime override makes an ordinary experiment run
// asynchronously: the cached results carry the async-only metrics.
func TestProfileRuntimeOverride(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ResetCaches()
	p := Tiny()
	p.Runtime = core.RuntimeAsync
	p.Latency = "straggler:1,10,3"
	c := Case{Kind: data.KindMNIST, Arch: nn.ArchMLP, Scheme: partition.Dirichlet(0.5), Algo: "fedtrip"}
	res, err := p.Run(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SimTimeByRound) != res.Rounds {
		t.Fatalf("async run has %d sim-time entries for %d rounds", len(res.SimTimeByRound), res.Rounds)
	}
	// A server-hook method (SlowMo overrides aggregation) must fall back
	// to the barrier runtime instead of erroring.
	c2 := c
	c2.Algo = "slowmo"
	res2, err := p.Run(c2, nil)
	if err != nil {
		t.Fatalf("server-hook method under async profile: %v", err)
	}
	if len(res2.SimTimeByRound) != res2.Rounds {
		t.Fatal("barrier fallback did not price rounds in simulated time")
	}
}

func TestFig2Tiny(t *testing.T) {
	tabs := runTiny(t, "fig2")
	if len(tabs[0].Rows) != 3 {
		t.Fatalf("fig2 should list 3 snapshots, got %d", len(tabs[0].Rows))
	}
	for _, row := range tabs[0].Rows {
		if _, err := strconv.ParseFloat(row[1], 64); err != nil {
			t.Fatalf("bad silhouette cell %q", row[1])
		}
	}
}
