package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 255, 256, 1000, 4096} {
		seen := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForChunkedPartition(t *testing.T) {
	// Chunks must tile [0,n) exactly once, with lo < hi.
	for _, n := range []int{1, 2, 255, 256, 257, 1024, 100000} {
		var total int64
		ForChunked(n, func(lo, hi int) {
			if lo >= hi || lo < 0 || hi > n {
				t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
			}
			atomic.AddInt64(&total, int64(hi-lo))
		})
		if total != int64(n) {
			t.Fatalf("n=%d covered %d elements", n, total)
		}
	}
}

func TestForChunkedNegativeAndZero(t *testing.T) {
	called := false
	ForChunked(0, func(lo, hi int) { called = true })
	ForChunked(-5, func(lo, hi int) { called = true })
	if called {
		t.Fatal("fn must not be called for n<=0")
	}
}

func TestDoRunsAll(t *testing.T) {
	var count int64
	tasks := make([]func(), 50)
	for i := range tasks {
		tasks[i] = func() { atomic.AddInt64(&count, 1) }
	}
	Do(tasks...)
	if count != 50 {
		t.Fatalf("ran %d of 50 tasks", count)
	}
	Do() // no tasks: must not hang
	Do(func() { atomic.AddInt64(&count, 1) })
	if count != 51 {
		t.Fatalf("single-task Do did not run")
	}
}

func TestMapOrdered(t *testing.T) {
	out := Map(1000, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d]=%d", i, v)
		}
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
}

// Property: parallel sum equals sequential sum for arbitrary slices.
func TestForSumProperty(t *testing.T) {
	f := func(xs []int64) bool {
		var par, seq int64
		For(len(xs), func(i int) { atomic.AddInt64(&par, xs[i]) })
		for _, x := range xs {
			seq += x
		}
		return par == seq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestForChunkedMinCoversRange checks the custom-threshold variant visits
// every index exactly once, both below and above the threshold.
func TestForChunkedMinCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 300} {
		for _, minWork := range []int{1, 8, 1000} {
			var mu sync.Mutex
			seen := make([]int, n)
			ForChunkedMin(n, minWork, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
				}
				mu.Lock()
				for i := lo; i < hi; i++ {
					seen[i]++
				}
				mu.Unlock()
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d minWork=%d: index %d visited %d times", n, minWork, i, c)
				}
			}
		}
	}
}

// TestSerialConsistentWithForChunkedMin pins the contract hot paths rely
// on: whenever Serial reports true, ForChunkedMin runs the body inline on
// the caller's goroutine as a single chunk.
func TestSerialConsistentWithForChunkedMin(t *testing.T) {
	for _, n := range []int{1, 10, 255, 256, 5000} {
		for _, minWork := range []int{1, 256, 10000} {
			if !Serial(n, minWork) {
				continue
			}
			calls := 0
			ForChunkedMin(n, minWork, func(lo, hi int) {
				calls++
				if lo != 0 || hi != n {
					t.Fatalf("Serial=true but chunk [%d,%d) != [0,%d)", lo, hi, n)
				}
			})
			if calls != 1 {
				t.Fatalf("Serial=true but %d chunks for n=%d", calls, n)
			}
		}
	}
}
