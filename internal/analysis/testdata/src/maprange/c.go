package maprange

// SnapshotState's presence scopes this file: a filtered key walk is not
// the pure collection idiom, so it is flagged.
func SnapshotState(m map[string]int) []string {
	var names []string
	for k, v := range m { // want "map iteration order"
		if v > 0 {
			names = append(names, k)
		}
	}
	return names
}
