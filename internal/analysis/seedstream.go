package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"path/filepath"
)

// seedRegistryFile is the file that registers a package's seed-stream
// names: every string constant declared in it is a registered stream.
const seedRegistryFile = "seeds.go"

// streamLookupFuncs maps seed-stream lookup functions to the index of
// their stream-name argument. Package-local names cover internal/core's
// registry trampolines; the qualified prng entries cover any package
// deriving streams directly.
var streamLookupFuncs = map[string]int{
	"seedStream":  1, // seedStream(runSeed, name)
	"seedStreamN": 1, // seedStreamN(runSeed, name, k)
	"streamSeed":  1, // streamSeed(runSeed, name, k)
	"Stream":      1, // prng.Stream(runSeed, name, k)
	"StreamSeed":  1, // prng.StreamSeed(runSeed, name, k)
}

// prngPath is the import path of the seed-derivation package; Stream /
// StreamSeed calls are only checked when they resolve into it.
const prngPath = "repro/internal/prng"

// NewSeedStream returns the seedstream analyzer: every seed-stream
// lookup must pass a string constant registered in the package's
// seeds.go, so the set of streams a run consumes is closed and reviewed,
// name collisions are impossible to introduce silently, and renames
// (which change every downstream trajectory) are loud.
func NewSeedStream() *Analyzer {
	a := &Analyzer{
		Name: "seedstream",
		Doc: "require registered constant names in seed-stream lookups\n\n" +
			"Stream names are part of the deterministic-run contract: they hash\n" +
			"into the stream's seed. Lookups must use a string constant declared\n" +
			"in the package's seeds.go; dynamic names and unregistered literals\n" +
			"are errors.",
	}
	a.Run = func(pass *Pass) (any, error) {
		// Pass 1: collect the registry — every string constant declared
		// in seeds.go — and report duplicate stream names (two constants
		// hashing to the same seed would silently correlate streams;
		// the runtime collision test only sees streams a run opens).
		registered := map[string]bool{}
		firstName := map[string]string{}
		for _, f := range pass.Files {
			if filepath.Base(pass.Fset.File(f.Pos()).Name()) != seedRegistryFile {
				continue
			}
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						c, ok := pass.TypesInfo.Defs[name].(*types.Const)
						if !ok || c.Val().Kind() != constant.String {
							continue
						}
						v := constant.StringVal(c.Val())
						if prev, dup := firstName[v]; dup {
							pass.Reportf(name.Pos(), "stream name %q already registered as %s: identical names derive identical seeds, correlating the streams", v, prev)
							continue
						}
						firstName[v] = name.Name
						registered[v] = true
					}
				}
			}
		}
		// Pass 2: check every lookup call.
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.TypesInfo, call)
				if fn == nil {
					return true
				}
				argIdx, tracked := streamLookupFuncs[fn.Name()]
				if !tracked {
					return true
				}
				// Package-local lookups must be this package's; the
				// exported prng pair must be prng's.
				switch fn.Name() {
				case "Stream", "StreamSeed":
					if pkgPathOf(fn) != prngPath {
						return true
					}
				default:
					if fn.Pkg() != pass.Pkg {
						return true
					}
				}
				if len(call.Args) <= argIdx {
					return true
				}
				arg := call.Args[argIdx]
				tv := pass.TypesInfo.Types[arg]
				if tv.Value == nil || tv.Value.Kind() != constant.String {
					pass.Reportf(arg.Pos(), "dynamic stream name in %s call: the name must be a string constant registered in %s", fn.Name(), seedRegistryFile)
					return true
				}
				name := constant.StringVal(tv.Value)
				if len(registered) == 0 {
					pass.Reportf(arg.Pos(), "package has no %s stream registry; declare stream name %q as a constant there", seedRegistryFile, name)
					return true
				}
				if !registered[name] {
					pass.Reportf(arg.Pos(), "stream name %q is not registered in %s", name, seedRegistryFile)
				}
				return true
			})
		}
		return nil, nil
	}
	return a
}

// calleeFunc resolves a call's callee to the *types.Func it invokes
// (nil for builtins, function values, and type conversions).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
