package experiments

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/flops"
	"repro/internal/nn"
)

// runTable1 reproduces Table I: the qualitative comparison of method
// families on information utilization and resource cost. Rather than
// hard-coding the paper's labels, the table derives them from this
// repository's implementations: "sufficient" information utilization
// means the method consumes both global and historical model information,
// and the resource-cost label comes from the Appendix A attaching-cost
// model evaluated on the paper's CNN setting (High when the attaching
// FLOPs exceed 10% of the base training FLOPs).
func runTable1(p Profile, logf Logf) ([]*Table, error) {
	st, err := data.TableII(data.KindMNIST)
	if err != nil {
		return nil, err
	}
	spec := nn.ModelSpec{Arch: nn.ArchCNN, Channels: st.Channels, Height: st.Height, Width: st.Width, Classes: st.Classes, Scale: 1}
	m, err := spec.Build(1)
	if err != nil {
		return nil, err
	}
	cost := m.Cost()
	rp := flops.RoundParams{K: st.ClientSamples / 50, M: 50, N: st.ClientSamples, P: 1}
	base := float64(rp.K) * float64(rp.M) * (cost.Forward + cost.Backward)

	usesHistory := map[string]bool{"fedtrip": true, "moon": true}
	usesGlobal := map[string]bool{
		"fedtrip": true, "fedprox": true, "moon": true, "feddyn": true,
		"scaffold": true, "feddane": true, "fedgkd": true,
	}
	t := &Table{
		ID:      "table1",
		Title:   "Information utilization vs resource cost (derived from the implementations)",
		Headers: []string{"Method", "Global info", "Historical info", "Utilization", "Attach/base FLOPs", "Resource cost"},
	}
	for _, method := range []string{"fedprox", "feddyn", "moon", "fedgkd", "fedtrip"} {
		mc, err := flops.AttachCost(method, cost, rp)
		if err != nil {
			return nil, err
		}
		util := "Insufficient"
		if usesGlobal[method] && usesHistory[method] {
			util = "Sufficient"
		}
		ratio := mc.AttachFLOPs / base
		label := "Low"
		if ratio > 0.10 {
			label = "High"
		}
		t.AddRow(method,
			yesNo(usesGlobal[method]), yesNo(usesHistory[method]), util,
			fmt.Sprintf("%.4f", ratio), label)
	}
	t.Notes = append(t.Notes,
		"paper Table I: model regularization = insufficient/low, model representation = sufficient/high, FedTrip = sufficient/low")
	return []*Table{t}, nil
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// runTable2 reproduces Table II: the dataset description. These are the
// synthetic datasets' layouts, which match the paper's by construction.
func runTable2(p Profile, logf Logf) ([]*Table, error) {
	t := &Table{
		ID:      "table2",
		Title:   "Description of datasets (synthetic substitutes, layouts per paper Table II)",
		Headers: []string{"Dataset", "Total Samples", "Classes", "Channels", "Dims", "Client Samples"},
	}
	for _, k := range data.Kinds() {
		st, err := data.TableII(k)
		if err != nil {
			return nil, err
		}
		t.AddRow(string(st.Kind),
			fmt.Sprintf("%d", st.TotalSamples),
			fmt.Sprintf("%d", st.Classes),
			fmt.Sprintf("%d", st.Channels),
			fmt.Sprintf("%dx%d", st.Height, st.Width),
			fmt.Sprintf("%d", st.ClientSamples))
	}
	t.Notes = append(t.Notes, "datasets are procedural class-conditional generators (see DESIGN.md substitutions)")
	return []*Table{t}, nil
}

// runTable3 reproduces Table III: communication and computation statistics
// of the three models at paper scale.
func runTable3(p Profile, logf Logf) ([]*Table, error) {
	t := &Table{
		ID:      "table3",
		Title:   "Communication and computation statistics of models (paper-scale widths)",
		Headers: []string{"Model", "Communication(MB)", "Params(M)", "MFLOPs(fwd)", "Paper ref"},
	}
	cases := []struct {
		label string
		arch  nn.Arch
		kind  data.Kind
		ref   string
	}{
		{"MLP", nn.ArchMLP, data.KindMNIST, "0.3 MB / 0.08M / 0.08 MFLOPs"},
		{"CNN", nn.ArchCNN, data.KindMNIST, "0.24 MB / 0.06M / 0.42 MFLOPs"},
		{"AlexNet", nn.ArchAlexNet, data.KindCIFAR, "10.42 MB / 2.72M / 145.93 MFLOPs"},
	}
	for _, c := range cases {
		st, err := data.TableII(c.kind)
		if err != nil {
			return nil, err
		}
		spec := nn.ModelSpec{Arch: c.arch, Channels: st.Channels, Height: st.Height, Width: st.Width, Classes: st.Classes, Scale: 1}
		m, err := spec.Build(1)
		if err != nil {
			return nil, err
		}
		cost := m.Cost()
		t.AddRow(c.label,
			fmt.Sprintf("%.2f", float64(cost.CommBytesFloat32())/1e6),
			fmt.Sprintf("%.3f", float64(cost.Params)/1e6),
			fmt.Sprintf("%.2f", cost.Forward/1e6),
			c.ref)
	}
	t.Notes = append(t.Notes,
		"MFLOPs counts 2 FLOPs per MAC; the paper's column appears to count MACs",
		"the paper's Params(M) column for MLP/CNN is 10x its own Communication column; the byte sizes match our models")
	return []*Table{t}, nil
}

// runTable8 reproduces Appendix A's Table VIII: the analytic attaching
// cost of each method, instantiated for the paper's CNN setting (600
// samples/client, batch 50, 1 epoch -> K=12 iterations).
func runTable8(p Profile, logf Logf) ([]*Table, error) {
	st, err := data.TableII(data.KindMNIST)
	if err != nil {
		return nil, err
	}
	spec := nn.ModelSpec{Arch: nn.ArchCNN, Channels: st.Channels, Height: st.Height, Width: st.Width, Classes: st.Classes, Scale: 1}
	m, err := spec.Build(1)
	if err != nil {
		return nil, err
	}
	cost := m.Cost()
	rp := flops.RoundParams{K: st.ClientSamples / 50, M: 50, N: st.ClientSamples, P: 1}
	t := &Table{
		ID:      "table8",
		Title:   fmt.Sprintf("Attaching cost per client per round (CNN, |w|=%d, K=%d, M=%d, n=%d)", cost.Params, rp.K, rp.M, rp.N),
		Headers: []string{"Method", "Attach MFLOPs", "Extra comm (x|w|)", "Formula"},
	}
	formulas := map[string]string{
		"fedtrip":  "4K|w|",
		"fedavg":   "0",
		"fedprox":  "2K|w|",
		"slowmo":   "4|w| (server)",
		"moon":     "K*M*(1+p)*FP",
		"feddyn":   "4K|w|",
		"scaffold": "2(K+1)|w| + n(FP+BP)",
		"feddane":  "2K|w| + n(FP+BP)",
		"mimelite": "n(FP+BP)",
		"fedgkd":   "K*M*FP (teacher fwd)",
		"fednova":  "4|w| (server)",
	}
	for _, method := range flops.Methods() {
		mc, err := flops.AttachCost(method, cost, rp)
		if err != nil {
			return nil, err
		}
		t.AddRow(method,
			fmt.Sprintf("%.3f", mc.AttachFLOPs/1e6),
			fmt.Sprintf("%.0f", mc.ExtraCommFactor),
			formulas[method])
	}
	t.Notes = append(t.Notes, "FP/BP are per-sample forward/backward FLOPs; BP modelled as 2*FP")
	return []*Table{t}, nil
}
