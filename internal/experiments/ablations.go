package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/stats"
)

// fedTripVariant builds an ablation Case around a customised FedTrip.
func fedTripVariant(key string, mutate func(*core.FedTrip)) Case {
	return Case{
		Kind:   data.KindMNIST,
		Arch:   nn.ArchCNN,
		Scheme: partition.Dirichlet(0.5),
		Algo:   "fedtrip",
		Factory: func() core.Algorithm {
			f := core.NewFedTrip(0.4)
			mutate(f)
			return f
		},
		FactoryKey: key,
	}
}

// ablationBase runs the FedAvg reference the ablation tables use for their
// adaptive target.
func ablationBase(p Profile, logf Logf) ([]*core.Result, float64, error) {
	fedavg, err := p.RunTrials(Case{
		Kind: data.KindMNIST, Arch: nn.ArchCNN,
		Scheme: partition.Dirichlet(0.5), Algo: "fedavg",
	}, logf)
	if err != nil {
		return nil, 0, err
	}
	return fedavg, adaptiveTarget(fedavg), nil
}

// runAblationXi compares FedTrip's xi schedules: the default inverse-gap
// (matching the paper's convergence analysis), the literal gap reading,
// fixed xi=1, and xi=0 (which reduces FedTrip to a proximal term with
// FedTrip's mu).
func runAblationXi(p Profile, logf Logf) ([]*Table, error) {
	_, target, err := ablationBase(p, logf)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "abl-xi",
		Title:   fmt.Sprintf("FedTrip xi schedule ablation (CNN/MNIST, Dir-0.5, target %.4f)", target),
		Headers: []string{"Variant", "Rounds to target", "Best accuracy"},
	}
	variants := []struct {
		label string
		c     Case
	}{
		{"xi = 1/gap (paper analysis, default)", fedTripVariant("xi-inverse", func(f *core.FedTrip) {})},
		{"xi = gap (literal Sec IV.B)", fedTripVariant("xi-gap", func(f *core.FedTrip) { f.Mode = core.XiGap })},
		{"xi = 1 (fixed)", fedTripVariant("xi-fixed-1", func(f *core.FedTrip) { f.Mode = core.XiFixed; f.FixedXi = 1 })},
		{"xi = 0 (history off -> proximal mu=0.4)", fedTripVariant("xi-fixed-0", func(f *core.FedTrip) { f.Mode = core.XiFixed; f.FixedXi = 0 })},
	}
	for _, v := range variants {
		rs, err := p.RunTrials(v.c, logf)
		if err != nil {
			return nil, err
		}
		mean, reached := meanRoundsToTarget(rs, target)
		var best []float64
		for _, r := range rs {
			best = append(best, r.BestAccuracy)
		}
		t.AddRow(v.label, formatRounds(mean, reached), stats.Summarize(best).String())
	}
	return []*Table{t}, nil
}

// runAblationHistory isolates FedTrip's two regularization terms: full
// triplet, history-repulsion only (global pull off), and global pull only
// (history off).
func runAblationHistory(p Profile, logf Logf) ([]*Table, error) {
	_, target, err := ablationBase(p, logf)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "abl-hist",
		Title:   fmt.Sprintf("FedTrip term ablation (CNN/MNIST, Dir-0.5, target %.4f)", target),
		Headers: []string{"Variant", "Rounds to target", "Best accuracy"},
	}
	variants := []struct {
		label string
		c     Case
	}{
		{"full triplet (pull + repel)", fedTripVariant("terms-full", func(f *core.FedTrip) {})},
		{"repel only (GlobalWeight=0)", fedTripVariant("terms-repel", func(f *core.FedTrip) { f.GlobalWeight = 0 })},
		{"pull only (HistWeight=0)", fedTripVariant("terms-pull", func(f *core.FedTrip) { f.HistWeight = 0 })},
	}
	for _, v := range variants {
		rs, err := p.RunTrials(v.c, logf)
		if err != nil {
			return nil, err
		}
		mean, reached := meanRoundsToTarget(rs, target)
		var best []float64
		for _, r := range rs {
			best = append(best, r.BestAccuracy)
		}
		t.AddRow(v.label, formatRounds(mean, reached), stats.Summarize(best).String())
	}
	return []*Table{t}, nil
}

// runAblationAppendix compares FedTrip with the appendix/related-work
// methods (SCAFFOLD, FedDANE, MimeLite) on rounds, compute, and traffic —
// the full resource story of Table VIII brought to an actual run.
func runAblationAppendix(p Profile, logf Logf) ([]*Table, error) {
	_, target, err := ablationBase(p, logf)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "abl-extra",
		Title:   fmt.Sprintf("Appendix methods vs FedTrip (CNN/MNIST, Dir-0.5, target %.4f)", target),
		Headers: []string{"Method", "Rounds to target", "GFLOPs to target", "Comm MB to target"},
	}
	for _, method := range []string{"fedtrip", "fedavg", "scaffold", "feddane", "mimelite"} {
		rs, err := p.RunTrials(Case{
			Kind: data.KindMNIST, Arch: nn.ArchCNN,
			Scheme: partition.Dirichlet(0.5), Algo: method,
			Params: DefaultParams(method, nn.ArchCNN, data.KindMNIST),
		}, logf)
		if err != nil {
			return nil, err
		}
		mean, reached := meanRoundsToTarget(rs, target)
		var gflops, comm []float64
		for _, r := range rs {
			rt, _ := roundsToTargetClamped(r, target)
			gflops = append(gflops, r.GFLOPsByRound[rt-1])
			comm = append(comm, float64(r.CommBytesByRound[rt-1])/1e6)
		}
		t.AddRow(method, formatRounds(mean, reached),
			fmt.Sprintf("%.2f", stats.Mean(gflops)),
			fmt.Sprintf("%.2f", stats.Mean(comm)))
	}
	return []*Table{t}, nil
}
