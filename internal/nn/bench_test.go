package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func benchModel(b *testing.B, spec ModelSpec, batch int) {
	m, err := spec.Build(1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x := tensor.New(append([]int{batch}, m.InShape()...)...)
	x.RandNormal(rng, 1)
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = rng.Intn(m.OutDim())
	}
	d := tensor.New(batch, m.OutDim())
	b.SetBytes(int64(batch) * int64(m.Cost().Forward+m.Cost().Backward))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logits := m.Forward(x, true)
		SoftmaxCrossEntropy(logits, labels, d)
		m.ZeroGrad()
		m.Backward(d, nil)
	}
}

// BenchmarkMLPStep measures one training step (fwd+loss+bwd) of the
// paper's MLP at batch 50.
func BenchmarkMLPStep(b *testing.B) {
	benchModel(b, ModelSpec{Arch: ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10}, 50)
}

// BenchmarkCNNStep measures one training step of the paper's LeNet5-style
// CNN at batch 50, paper-scale width.
func BenchmarkCNNStep(b *testing.B) {
	benchModel(b, ModelSpec{Arch: ArchCNN, Channels: 1, Height: 28, Width: 28, Classes: 10}, 50)
}

// BenchmarkCNNStepHalfScale measures the fast-profile CNN.
func BenchmarkCNNStepHalfScale(b *testing.B) {
	benchModel(b, ModelSpec{Arch: ArchCNN, Channels: 1, Height: 28, Width: 28, Classes: 10, Scale: 0.5}, 50)
}

// BenchmarkAlexNetForward measures AlexNet inference at batch 8 (training
// benches live at the experiment level; a full paper-scale AlexNet step is
// ~1.3 GFLOPs).
func BenchmarkAlexNetForward(b *testing.B) {
	spec := ModelSpec{Arch: ArchAlexNet, Channels: 3, Height: 32, Width: 32, Classes: 10, Scale: 0.25}
	m, err := spec.Build(1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	x := tensor.New(8, 3, 32, 32)
	x.RandNormal(rng, 1)
	b.SetBytes(int64(8 * m.Cost().Forward))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x, false)
	}
}
