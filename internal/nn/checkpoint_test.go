package nn

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	spec := ModelSpec{Arch: ArchMLP, Channels: 1, Height: 8, Width: 8, Classes: 5}
	m1, err := spec.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m1.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	m2, _ := spec.Build(2) // different init
	if tensor.MaxAbsDiff(m1.Params(), m2.Params()) == 0 {
		t.Fatal("test setup: same init")
	}
	if err := m2.LoadParams(&buf); err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(m1.Params(), m2.Params()) != 0 {
		t.Fatal("checkpoint did not restore parameters")
	}
}

func TestCheckpointSizeMismatch(t *testing.T) {
	mlp, _ := (ModelSpec{Arch: ArchMLP, Channels: 1, Height: 8, Width: 8, Classes: 5}).Build(1)
	cnn, _ := (ModelSpec{Arch: ArchCNN, Channels: 1, Height: 28, Width: 28, Classes: 10}).Build(1)
	var buf bytes.Buffer
	if err := mlp.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	before := cnn.ParamsCopy()
	if err := cnn.LoadParams(&buf); err == nil {
		t.Fatal("cross-architecture checkpoint accepted")
	}
	if tensor.MaxAbsDiff(before, cnn.Params()) != 0 {
		t.Fatal("failed load must not mutate the model")
	}
}

func TestCheckpointGarbage(t *testing.T) {
	m, _ := (ModelSpec{Arch: ArchMLP, Channels: 1, Height: 8, Width: 8, Classes: 5}).Build(1)
	if err := m.LoadParams(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestCheckpointLegacyFTV1 keeps pre-envelope checkpoints (a bare tensor
// vector, no FTCK header) loadable.
func TestCheckpointLegacyFTV1(t *testing.T) {
	spec := ModelSpec{Arch: ArchMLP, Channels: 1, Height: 8, Width: 8, Classes: 5}
	m1, err := spec.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tensor.WriteVector(&buf, m1.Params()); err != nil {
		t.Fatal(err)
	}
	m2, _ := spec.Build(2)
	if err := m2.LoadParams(&buf); err != nil {
		t.Fatalf("legacy FTV1 checkpoint rejected: %v", err)
	}
	if tensor.MaxAbsDiff(m1.Params(), m2.Params()) != 0 {
		t.Fatal("legacy checkpoint did not restore parameters")
	}
}

// TestCheckpointRejects pins the precise-error contract: wrong magic,
// wrong version, and truncation at every layer of the envelope each name
// the defect, and a failed load never mutates the model.
func TestCheckpointRejects(t *testing.T) {
	spec := ModelSpec{Arch: ArchMLP, Channels: 1, Height: 8, Width: 8, Classes: 5}
	m, err := spec.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name    string
		data    []byte
		wantErr string
	}{
		{"wrong magic", append([]byte("NOPE"), good[4:]...), "not a model checkpoint"},
		{"wrong version", append(append([]byte("FTCK"), 9), good[5:]...), "version 9"},
		{"empty", nil, "truncated"},
		{"truncated magic", good[:2], "truncated"},
		{"truncated version", good[:4], "truncated"},
		{"truncated vector header", good[:8], "tensor"},
		{"truncated payload", good[:len(good)/2], "tensor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := m.ParamsCopy()
			err := m.LoadParams(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("bad checkpoint accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
			if tensor.MaxAbsDiff(before, m.Params()) != 0 {
				t.Fatal("failed load mutated the model")
			}
		})
	}
}
