package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/stats"
)

// PaperMethods lists the six methods the paper's main tables compare, in
// table order.
func PaperMethods() []string {
	return []string{"fedtrip", "fedavg", "fedprox", "slowmo", "moon", "feddyn"}
}

// benchCase is one model/dataset column of Tables IV and V.
type benchCase struct {
	label string
	arch  nn.Arch
	kind  data.Kind
}

func table4Cases() []benchCase {
	return []benchCase{
		{"MLP/MNIST", nn.ArchMLP, data.KindMNIST},
		{"MLP/FMNIST", nn.ArchMLP, data.KindFMNIST},
		{"CNN/MNIST", nn.ArchCNN, data.KindMNIST},
		{"CNN/FMNIST", nn.ArchCNN, data.KindFMNIST},
		{"CNN/EMNIST", nn.ArchCNN, data.KindEMNIST},
		{"AlexNet/CIFAR", nn.ArchAlexNet, data.KindCIFAR},
	}
}

// methodResults runs every paper method for a case and returns
// method -> trials. clip > 0 enables uniform gradient clipping.
func methodResults(p Profile, bc benchCase, scheme partition.Scheme, clients, perRound, epochs int, clip float64, logf Logf) (map[string][]*core.Result, error) {
	out := make(map[string][]*core.Result)
	for _, method := range PaperMethods() {
		rs, err := p.RunTrials(Case{
			Kind:        bc.kind,
			Arch:        bc.arch,
			Scheme:      scheme,
			Algo:        method,
			Params:      DefaultParams(method, bc.arch, bc.kind),
			Clients:     clients,
			PerRound:    perRound,
			LocalEpochs: epochs,
			ClipNorm:    clip,
		}, logf)
		if err != nil {
			return nil, err
		}
		out[method] = rs
	}
	return out, nil
}

// runTable4 reproduces Table IV: communication rounds until the global
// model achieves the target accuracy, under Dir-0.5 with 4-of-10 clients.
func runTable4(p Profile, logf Logf) ([]*Table, error) {
	t := &Table{
		ID:      "table4",
		Title:   "Communication rounds to target accuracy (Dir-0.5, 4-of-10), ratio vs FedTrip",
		Headers: append([]string{"Method"}, labelsOf(table4Cases())...),
	}
	cells := map[string][]string{}
	scheme := partition.Dirichlet(0.5)
	for _, bc := range table4Cases() {
		results, err := methodResults(p, bc, scheme, 0, 0, 0, 0, logf)
		if err != nil {
			return nil, err
		}
		target := adaptiveTarget(results["fedavg"])
		tripMean, _ := meanRoundsToTarget(results["fedtrip"], target)
		t.Notes = append(t.Notes, fmt.Sprintf("%s: adaptive target %.4f (0.97x FedAvg best)", bc.label, target))
		for _, method := range PaperMethods() {
			mean, reached := meanRoundsToTarget(results[method], target)
			cell := formatRounds(mean, reached)
			if method != "fedtrip" {
				cell = speedupCell(mean, reached, tripMean)
			}
			cells[method] = append(cells[method], cell)
		}
	}
	for _, method := range PaperMethods() {
		t.AddRow(append([]string{method}, cells[method]...)...)
	}
	return []*Table{t}, nil
}

// runTable5 reproduces Table V: total GFLOPs (feedforward, backprop, and
// attaching operations, summed over all clients) until the target
// accuracy. It reuses Table IV's cached runs.
func runTable5(p Profile, logf Logf) ([]*Table, error) {
	t := &Table{
		ID:      "table5",
		Title:   "GFLOPs to target accuracy (Dir-0.5, 4-of-10)",
		Headers: append([]string{"Method"}, labelsOf(table4Cases())...),
	}
	cells := map[string][]string{}
	scheme := partition.Dirichlet(0.5)
	for _, bc := range table4Cases() {
		results, err := methodResults(p, bc, scheme, 0, 0, 0, 0, logf)
		if err != nil {
			return nil, err
		}
		target := adaptiveTarget(results["fedavg"])
		for _, method := range PaperMethods() {
			var g []float64
			for _, r := range results[method] {
				rt, _ := roundsToTargetClamped(r, target)
				g = append(g, r.GFLOPsByRound[rt-1])
			}
			cells[method] = append(cells[method], fmt.Sprintf("%.2f", stats.Mean(g)))
		}
	}
	for _, method := range PaperMethods() {
		t.AddRow(append([]string{method}, cells[method]...)...)
	}
	t.Notes = append(t.Notes, "FLOPs are metered at runtime (model fwd/bwd + each method's attaching ops)")
	return []*Table{t}, nil
}

// runTable6 reproduces Table VI: rounds to target in the 4-of-50 low
// participation setting, CNN on MNIST and FMNIST under three
// heterogeneity types.
func runTable6(p Profile, logf Logf) ([]*Table, error) {
	type col struct {
		kind   data.Kind
		scheme partition.Scheme
	}
	cols := []col{
		{data.KindMNIST, partition.Dirichlet(0.1)},
		{data.KindMNIST, partition.Dirichlet(0.5)},
		{data.KindMNIST, partition.Orthogonal(5)},
		{data.KindFMNIST, partition.Dirichlet(0.1)},
		{data.KindFMNIST, partition.Dirichlet(0.5)},
		{data.KindFMNIST, partition.Orthogonal(5)},
	}
	headers := []string{"Method"}
	for _, c := range cols {
		headers = append(headers, fmt.Sprintf("%s %s", c.kind, c.scheme))
	}
	t := &Table{
		ID:      "table6",
		Title:   "Rounds to target accuracy with 4-of-50 clients (CNN), ratio vs FedTrip",
		Headers: headers,
	}
	cells := map[string][]string{}
	for _, c := range cols {
		bc := benchCase{arch: nn.ArchCNN, kind: c.kind}
		results, err := methodResults(p, bc, c.scheme, 50, 4, 0, 0, logf)
		if err != nil {
			return nil, err
		}
		target := adaptiveTarget(results["fedavg"])
		tripMean, _ := meanRoundsToTarget(results["fedtrip"], target)
		for _, method := range PaperMethods() {
			mean, reached := meanRoundsToTarget(results[method], target)
			cell := formatRounds(mean, reached)
			if method != "fedtrip" {
				cell = speedupCell(mean, reached, tripMean)
			}
			cells[method] = append(cells[method], cell)
		}
	}
	for _, method := range PaperMethods() {
		t.AddRow(append([]string{method}, cells[method]...)...)
	}
	return []*Table{t}, nil
}

// runTable7 reproduces Table VII: test accuracy at rounds 10 and 20 with
// enlarged aggregation intervals (5 and 10 local epochs), CNN on MNIST
// under Dir-0.5.
func runTable7(p Profile, logf Logf) ([]*Table, error) {
	pLocal := p
	if pLocal.Rounds > 20 {
		pLocal.Rounds = 20
	}
	t := &Table{
		ID:      "table7",
		Title:   "Accuracy (%) with 5 and 10 local epochs (CNN/MNIST, Dir-0.5)",
		Headers: []string{"Local epochs", "Round", "FedTrip", "FedAvg", "FedProx", "SlowMo", "MOON", "FedDyn"},
	}
	for _, epochs := range []int{5, 10} {
		bc := benchCase{arch: nn.ArchCNN, kind: data.KindMNIST}
		results, err := methodResults(pLocal, bc, partition.Dirichlet(0.5), 0, 0, epochs, 5, logf)
		if err != nil {
			return nil, err
		}
		for _, round := range []int{10, 20} {
			row := []string{fmt.Sprintf("%d", epochs), fmt.Sprintf("%d", round)}
			for _, method := range PaperMethods() {
				var accs []float64
				for _, r := range results[method] {
					ri := round
					if ri > len(r.Accuracy) {
						ri = len(r.Accuracy)
					}
					accs = append(accs, r.Accuracy[ri-1]*100)
				}
				row = append(row, fmt.Sprintf("%.2f", stats.Mean(accs)))
			}
			t.AddRow(row...)
		}
	}
	return []*Table{t}, nil
}

func labelsOf(cases []benchCase) []string {
	out := make([]string, len(cases))
	for i, c := range cases {
		out[i] = c.label
	}
	return out
}
