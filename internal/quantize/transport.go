package quantize

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/tensor"
)

// Transport implements core.Transport with a quantized uplink: the
// downlink ships float32 (as in the paper's accounting), and each client's
// upload is delta-encoded against the model it received this round, then
// uniformly quantized to Bits per element. This mirrors production FL
// compression, where the server reconstructs w_k = w_received + dq(delta).
type Transport struct {
	// Bits is the uplink quantization width (e.g. 8).
	Bits int

	mu       sync.Mutex
	lastDown map[int][]float64

	downBytes atomic.Int64
	upBytes   atomic.Int64
}

// NewTransport returns a quantized-uplink transport.
func NewTransport(bits int) (*Transport, error) {
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("quantize: transport bits %d outside [1,16]", bits)
	}
	return &Transport{Bits: bits, lastDown: make(map[int][]float64)}, nil
}

// Down implements core.Transport: float32 downlink.
func (t *Transport) Down(clientID, round int, global []float64) []float64 {
	received := make([]float64, len(global))
	for i, x := range global {
		received[i] = float64(float32(x))
	}
	t.mu.Lock()
	t.lastDown[clientID] = received
	t.mu.Unlock()
	t.downBytes.Add(tensor.VectorWireSizeF32(len(global)))
	return received
}

// Up implements core.Transport: delta-quantized uplink.
func (t *Transport) Up(clientID, round int, params []float64) []float64 {
	t.mu.Lock()
	ref := t.lastDown[clientID]
	t.mu.Unlock()
	if ref == nil {
		// No recorded downlink (shouldn't happen in a normal round loop):
		// fall back to float32 shipping.
		t.upBytes.Add(tensor.VectorWireSizeF32(len(params)))
		out := make([]float64, len(params))
		for i, x := range params {
			out[i] = float64(float32(x))
		}
		return out
	}
	delta := make([]float64, len(params))
	tensor.SubInto(delta, params, ref)
	q, err := Quantize(delta, t.Bits)
	if err != nil {
		// Non-finite upload: ship raw and let the server's divergence
		// check handle it.
		t.upBytes.Add(tensor.VectorWireSizeF32(len(params)))
		return params
	}
	t.upBytes.Add(q.WireSize())
	rec := q.Dequantize()
	out := make([]float64, len(params))
	tensor.AddInto(out, ref, rec)
	return out
}

// DownBytes returns total downlink traffic.
func (t *Transport) DownBytes() int64 { return t.downBytes.Load() }

// UpBytes returns total uplink traffic.
func (t *Transport) UpBytes() int64 { return t.upBytes.Load() }

// WireBytes implements core.MeteredTransport, so runs with a quantized
// uplink report their real (compressed) traffic in CommBytesByRound.
func (t *Transport) WireBytes() (down, up int64) {
	return t.DownBytes(), t.UpBytes()
}
