package hotpath

import "fmt"

// step is annotated hot: every allocating construct is flagged.
//
//fedtripvet:hotpath
func step(buf []float64, xs []float64) []float64 {
	fmt.Println("tick")        // want "fmt.Println on the hot path"
	m := make(map[int]float64) // want "make\\(map\\) on the hot path"
	_ = m
	var fns []func()
	for i, x := range xs {
		buf = append(buf, x)                // want "append on the hot path"
		fns = append(fns, func() { _ = i }) // want "append on the hot path" "closure captures loop variable i"
	}
	for _, fn := range fns {
		fn()
	}
	lut := map[string]int{} // want "map literal on the hot path"
	_ = lut
	return buf
}

// cold is not annotated: anything goes.
func cold(xs []float64) []float64 {
	var out []float64
	for _, x := range xs {
		out = append(out, x)
	}
	fmt.Println(len(out))
	return out
}

// pooled appends into a caller-ensured buffer under an allow.
//
//fedtripvet:hotpath
func pooled(buf []float64, n int) []float64 {
	for i := 0; i < n; i++ {
		buf = append(buf, float64(i)) //fedtripvet:allow fixture: capacity ensured by the caller
	}
	return buf
}
