package core

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
)

// snapTestConfig builds a small run for snapshot tests: MNIST-like data,
// MLP, 6 clients.
func snapTestConfig(t *testing.T, rounds int) Config {
	t.Helper()
	train, test, err := data.Generate(data.Spec{Kind: data.KindMNIST, Train: 400, Test: 150, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	parts, err := partition.Partition(partition.Dirichlet(0.5), train.Y, train.Classes, 6, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Model:           nn.ModelSpec{Arch: nn.ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10},
		Train:           train,
		Test:            test,
		Parts:           parts,
		Rounds:          rounds,
		ClientsPerRound: 3,
		BatchSize:       20,
		LocalEpochs:     1,
		LR:              0.01,
		Momentum:        0.9,
		Algo:            NewFedTrip(0.4),
		Seed:            1,
	}
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func sameInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// requireSameResult asserts bit-for-bit identical metric trajectories.
func requireSameResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if got.Rounds != want.Rounds {
		t.Fatalf("%s: rounds %d, want %d", label, got.Rounds, want.Rounds)
	}
	if got.DroppedUpdates != want.DroppedUpdates {
		t.Fatalf("%s: dropped updates %d, want %d", label, got.DroppedUpdates, want.DroppedUpdates)
	}
	if got.RejectedUpdates != want.RejectedUpdates {
		t.Fatalf("%s: rejected updates %d, want %d", label, got.RejectedUpdates, want.RejectedUpdates)
	}
	if got.RoundsToTarget != want.RoundsToTarget {
		t.Fatalf("%s: rounds-to-target %d, want %d", label, got.RoundsToTarget, want.RoundsToTarget)
	}
	series := []struct {
		name      string
		want, got []float64
	}{
		{"Accuracy", want.Accuracy, got.Accuracy},
		{"TrainLoss", want.TrainLoss, got.TrainLoss},
		{"GFLOPsByRound", want.GFLOPsByRound, got.GFLOPsByRound},
		{"SimTimeByRound", want.SimTimeByRound, got.SimTimeByRound},
		{"MeanStalenessByRound", want.MeanStalenessByRound, got.MeanStalenessByRound},
	}
	for _, s := range series {
		if !sameFloats(s.want, s.got) {
			t.Fatalf("%s: %s diverged\n want %v\n  got %v", label, s.name, s.want, s.got)
		}
	}
	if !sameInt64s(want.CommBytesByRound, got.CommBytesByRound) {
		t.Fatalf("%s: CommBytesByRound diverged\n want %v\n  got %v", label, want.CommBytesByRound, got.CommBytesByRound)
	}
	if math.Float64bits(want.BestAccuracy) != math.Float64bits(got.BestAccuracy) ||
		math.Float64bits(want.FinalAccuracy) != math.Float64bits(got.FinalAccuracy) {
		t.Fatalf("%s: summary accuracy diverged: best %v/%v final %v/%v",
			label, want.BestAccuracy, got.BestAccuracy, want.FinalAccuracy, got.FinalAccuracy)
	}
}

// runResumeScenario pins the tentpole guarantee both ways: a run that
// snapshots at round k and keeps going matches the uninterrupted run,
// and a fresh process resumed from that snapshot matches it too —
// bit-for-bit across every metric series.
func runResumeScenario(t *testing.T, spec RunSpec, snapAt int) {
	t.Helper()
	full, err := Start(spec)
	if err != nil {
		t.Fatalf("full run: %v", err)
	}

	rs, err := NewRunState(spec)
	if err != nil {
		t.Fatalf("NewRunState: %v", err)
	}
	for i := 0; i < snapAt; i++ {
		done, err := rs.Step()
		if err != nil {
			t.Fatalf("step %d: %v", i+1, err)
		}
		if done {
			t.Fatalf("run completed at step %d, before the snapshot round %d", i+1, snapAt)
		}
	}
	if rs.Round() != snapAt {
		t.Fatalf("after %d steps Round() = %d", snapAt, rs.Round())
	}
	var buf bytes.Buffer
	if err := rs.Snapshot(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	// Snapshot-and-continue: the quiesce must not perturb the trajectory.
	cont, err := rs.Run()
	if err != nil {
		t.Fatalf("continue after snapshot: %v", err)
	}
	requireSameResult(t, "snapshot-and-continue", full, cont)

	// Resume in a "fresh process": a brand-new RunState from the same
	// spec, state loaded from the snapshot bytes.
	rs2, err := Resume(bytes.NewReader(buf.Bytes()), ResumeSpec{Spec: spec})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if rs2.Round() != snapAt {
		t.Fatalf("resumed Round() = %d, want %d", rs2.Round(), snapAt)
	}
	resumed, err := rs2.Run()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	requireSameResult(t, "snapshot-and-resume", full, resumed)
}

func TestResumeEquivalenceSync(t *testing.T) {
	cfg := snapTestConfig(t, 6)
	runResumeScenario(t, RunSpec{Config: cfg}, 3)
}

func TestResumeEquivalenceAsyncFedBuff(t *testing.T) {
	cfg := snapTestConfig(t, 8)
	runResumeScenario(t, RunSpec{
		Config:      cfg,
		Runtime:     RuntimeAsync,
		Concurrency: 4,
		BufferSize:  2,
		Latency:     ExponentialLatency{Mean: 2},
	}, 4)
}

func TestResumeEquivalenceAsyncChurn(t *testing.T) {
	cfg := snapTestConfig(t, 8)
	runResumeScenario(t, RunSpec{
		Config:      cfg,
		Runtime:     RuntimeAsync,
		Concurrency: 4,
		BufferSize:  2,
		Latency:     ExponentialLatency{Mean: 2},
		Churn: &ChurnModel{
			MeanUp:   30,
			MeanDown: 8,
			Drops:    []MassDrop{{At: 4, Fraction: 0.5, Duration: 6}},
		},
	}, 4)
}

func TestResumeEquivalenceAsyncDevices(t *testing.T) {
	cfg := snapTestConfig(t, 6)
	runResumeScenario(t, RunSpec{
		Config:             cfg,
		Runtime:            RuntimeAsync,
		Concurrency:        4,
		BufferSize:         2,
		Devices:            DefaultTiers(),
		AdaptiveLocalSteps: true,
	}, 3)
}

// TestSnapshotPolicyRoundTrip: for every aggregation policy the CLI can
// spell, a snapshot restored into a fresh run and immediately
// re-snapshotted must reproduce the original stream byte-for-byte —
// pending in-flight updates, scheduler order, RNG positions, and the
// recorder all survive serialization exactly.
func TestSnapshotPolicyRoundTrip(t *testing.T) {
	policies := []struct {
		name string
		p    AggregationPolicy
	}{
		{"fedavg", &FedAvgPolicy{}},
		{"fedbuff", &FedBuffPolicy{}},
		{"fedasync", &FedAsyncPolicy{}},
		{"importance", &ImportancePolicy{}},
		{"fedbuff+maxstale", WithMaxStaleness(&FedBuffPolicy{}, 4)},
		{"fedbuff+lr", WithServerLR(&FedBuffPolicy{}, func(t int) float64 { return 0.5 })},
		{"median", &MedianPolicy{}},
		{"trimmedmean", &TrimmedMeanPolicy{Frac: 0.25}},
		{"krum", &KrumPolicy{Frac: 0.2}},
		{"fedavg+clip", WithNormClip(&FedAvgPolicy{}, 5)},
	}
	for _, tc := range policies {
		t.Run(tc.name, func(t *testing.T) {
			cfg := snapTestConfig(t, 6)
			spec := RunSpec{
				Config:      cfg,
				Runtime:     RuntimeAsync,
				Concurrency: 4,
				BufferSize:  2,
				Latency:     ExponentialLatency{Mean: 1.5},
				Policy:      tc.p,
			}
			rs, err := NewRunState(spec)
			if err != nil {
				t.Fatal(err)
			}
			defer rs.Close()
			for i := 0; i < 3; i++ {
				if _, err := rs.Step(); err != nil {
					t.Fatalf("step %d: %v", i+1, err)
				}
			}
			var a bytes.Buffer
			if err := rs.Snapshot(&a); err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			rs2, err := Resume(bytes.NewReader(a.Bytes()), ResumeSpec{Spec: spec})
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			var b bytes.Buffer
			if err := rs2.Snapshot(&b); err != nil {
				t.Fatalf("re-snapshot: %v", err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("restored state re-serializes differently (%d vs %d bytes)", a.Len(), b.Len())
			}
			// The restored run must also still run.
			if _, err := rs2.Run(); err != nil {
				t.Fatalf("resumed run: %v", err)
			}
		})
	}
}

// TestResumeRejectsBadSnapshots pins the precise-error contract for
// wrong-magic, wrong-version, truncated, and wrong-run streams.
func TestResumeRejectsBadSnapshots(t *testing.T) {
	cfg := snapTestConfig(t, 4)
	spec := RunSpec{Config: cfg}
	rs, err := NewRunState(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Step(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	rs.Close()
	good := buf.Bytes()

	otherSeed := spec
	otherSeed.Seed = 99

	cases := []struct {
		name    string
		data    []byte
		spec    RunSpec
		wantErr string
	}{
		{"wrong magic", append([]byte("NOPE"), good[4:]...), spec, "not a run snapshot"},
		{"wrong version", append(append([]byte(snapMagic), 99), good[5:]...), spec, "version 99"},
		{"empty", nil, spec, "truncated"},
		{"truncated header", good[:3], spec, "truncated"},
		{"truncated body", good[:len(good)/2], spec, "truncated"},
		{"different run", good, otherSeed, "different run"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Resume(bytes.NewReader(tc.data), ResumeSpec{Spec: tc.spec})
			if err == nil {
				t.Fatal("bad snapshot accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestSnapshotRefusesServerSideAggregators: a method with server-side
// aggregation state (async_test.go's aggAlgo) cannot be serialized by
// the runtime; Snapshot must refuse it rather than resume a
// half-restored method.
func TestSnapshotRefusesServerSideAggregators(t *testing.T) {
	cfg := snapTestConfig(t, 4)
	cfg.Algo = aggAlgo{}
	rs, err := NewRunState(RunSpec{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if _, err := rs.Step(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = rs.Snapshot(&buf)
	if err == nil {
		t.Fatal("snapshot of an Aggregator method accepted")
	}
	if !strings.Contains(err.Error(), "cannot snapshot") {
		t.Fatalf("unexpected error: %v", err)
	}
}
