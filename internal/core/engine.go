package core

import (
	"fmt"
	"repro/internal/flops"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/prng"
	"repro/internal/tensor"
)

// engine bundles the expensive, stateless-between-rounds machinery of
// local training: the working model, the local optimizer, the scratch
// models used by representation methods, and the reusable batch buffers.
//
// Before this type existed every Client owned its own engine-sized block of
// memory, which put a hard O(N * |w|) floor under the population size.
// Engines made that O(S * |w|) for S worker shards: a client checks an
// engine out for the duration of one LocalTrain and returns it afterwards.
// The checkout is safe because nothing in the engine carries information
// across rounds — LocalTrain overwrites the model parameters with the
// received global model, resets the optimizer, and the scratch models are
// fully re-loaded by the algorithms that use them (MOON, FedGKD) in
// BeginRound. Everything that does persist across a client's participations
// (Hist, LastRound, per-method state vectors, the data-shuffling RNG) lives
// on the Client itself.
type engine struct {
	cfg   *Config
	model *nn.Model
	opt   optim.Optimizer
	// seedRng drives lazily built scratch-model initialisation. Scratch
	// parameters are always overwritten before use, so these draws never
	// influence a trajectory; a per-engine stream merely keeps construction
	// deterministic without touching any client's RNG.
	seedRng            *prng.Rand
	scratchA, scratchB *nn.Model
	// counter is the attached client's FLOP counter (nil when detached);
	// lazily built scratch models pick it up at construction time.
	counter *flops.Counter

	batchX   *tensor.Tensor
	batchY   []int
	dLogits  *tensor.Tensor
	featGrad *tensor.Tensor

	// perm and idx are the mini-batch shuffling buffers LocalTrain and
	// FullGrad reuse across rounds, and fgSaved parks the model parameters
	// around a FullGrad evaluation. All engine-lifetime scratch: nothing in
	// them survives a round, they only exist to keep the steady-state
	// training loop allocation-free.
	perm    []int
	idx     []int
	fgSaved []float64
	// roundVecs backs Client.RoundVec: named |w|-sized round-scoped
	// snapshots (e.g. an algorithm's copy of the received global model)
	// that live with the engine instead of with each of 10k clients.
	roundVecs map[string][]float64
}

// newEngine builds one training engine. seed determines the (irrelevant,
// always-overwritten) initial model parameters and the scratch-model seed
// stream; it only needs to be deterministic, not coordinated.
func newEngine(cfg *Config, seed int64) (*engine, error) {
	m, err := cfg.Model.Build(seed)
	if err != nil {
		return nil, err
	}
	e := &engine{
		cfg:     cfg,
		model:   m,
		seedRng: seedStream(seed, streamScratch),
	}
	if oc, ok := cfg.Algo.(OptimizerChooser); ok {
		e.opt = oc.NewOptimizer(cfg.LR, cfg.Momentum)
	} else {
		e.opt = optim.NewSGDMomentum(cfg.LR, cfg.Momentum)
	}
	return e, nil
}

// scratch returns the two scratch models, building them on first use.
func (e *engine) scratch() (*nn.Model, *nn.Model) {
	if e.scratchA == nil {
		a, err := e.cfg.Model.Build(e.seedRng.Int63())
		if err != nil {
			panic(fmt.Sprintf("core: scratch model: %v", err))
		}
		b, err := e.cfg.Model.Build(e.seedRng.Int63())
		if err != nil {
			panic(fmt.Sprintf("core: scratch model: %v", err))
		}
		a.SetCounter(e.counter)
		b.SetCounter(e.counter)
		e.scratchA, e.scratchB = a, b
	}
	return e.scratchA, e.scratchB
}

// ensureBatch sizes the reusable batch buffers for n samples, reusing
// backing capacity across sizes so alternating full and tail batches do
// not reallocate every epoch.
func (e *engine) ensureBatch(n int) {
	if e.batchX == nil {
		shape := append([]int{n}, e.model.InShape()...)
		e.batchX = tensor.New(shape...)
		e.batchY = make([]int, n)
		e.dLogits = tensor.New(n, e.model.OutDim())
		return
	}
	if e.batchX.Dim(0) != n {
		e.batchX.SetDim0(n)
		e.dLogits.SetDim0(n)
		if cap(e.batchY) >= n {
			e.batchY = e.batchY[:n]
		} else {
			e.batchY = make([]int, n)
		}
	}
}

// attach points the engine's FLOP metering at the client about to train on
// it and hands the engine to the client for the duration of the round.
func (e *engine) attach(c *Client) {
	e.counter = c.Counter
	e.model.SetCounter(c.Counter)
	if e.scratchA != nil {
		e.scratchA.SetCounter(c.Counter)
		e.scratchB.SetCounter(c.Counter)
	}
	c.eng = e
}

// detach releases the engine. The nil counter keeps any later misuse from
// silently crediting FLOPs to the wrong client (flops.Counter methods are
// nil-safe no-ops).
func (e *engine) detach(c *Client) {
	c.eng = nil
	e.counter = nil
	e.model.SetCounter(nil)
	if e.scratchA != nil {
		e.scratchA.SetCounter(nil)
		e.scratchB.SetCounter(nil)
	}
}

// engineLoaner is the server's single shared engine for sequential
// server-side client work outside the shard pool: PreRound gradient
// exchanges (FedDANE's and MimeLite's FullGrad over the selected
// clients), analysis code walking the population, and tests driving
// clients directly. Routing those through one loaner caps them at one
// engine per server — per-client private engines would quietly rebuild
// the O(N * |w|) footprint the shard pool exists to avoid. Borrowing is
// server-goroutine-sequential by the same contract that makes PreRound
// single-threaded, so the loaner needs no lock.
type engineLoaner struct {
	cfg *Config
	eng *engine
	cur *Client // most recent borrower
}

// borrow attaches the loaner engine to c (building it on first use) and
// returns it. Only a borrower that still holds the loaner is detached on
// handover: a client that has since been attached to a shard engine (or
// already released) is left alone.
func (l *engineLoaner) borrow(c *Client) *engine {
	if l.eng == nil {
		e, err := newEngine(l.cfg, streamSeed(l.cfg.Seed, streamLoaner, 0))
		if err != nil {
			panic(fmt.Sprintf("core: loaner engine: %v", err))
		}
		l.eng = e
	}
	if l.cur != nil && l.cur != c && l.cur.eng == l.eng {
		l.eng.detach(l.cur)
	}
	l.cur = c
	l.eng.attach(c)
	return l.eng
}
