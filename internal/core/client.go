package core

import (
	"fmt"
	"repro/internal/flops"
	"repro/internal/nn"
	"repro/internal/prng"
	"repro/internal/tensor"
)

// Client is one federated participant. It owns only what must survive
// between its participations: its private data indices, its historical
// model, its per-method state, its FLOP meter, and its deterministic
// random stream. The heavy training machinery (model, optimizer, batch
// buffers) is an engine the client borrows for the duration of one
// LocalTrain — either from the server's worker shards or, for standalone
// use in tests and analysis code, a lazily built private one. Keeping
// clients this thin is what lets a population of 10k+ exist in memory at
// once: idle clients cost a few hundred bytes, not a model.
//
// Clients are trained concurrently by the server; a Client is confined to
// one goroutine at a time and owns all of its buffers while training.
type Client struct {
	// ID is the client's index in the population.
	ID int
	// Indices are the client's sample indices in the training set.
	Indices []int
	// Counter meters this client's training FLOPs (model forward/backward
	// plus the method's attaching operations).
	Counter *flops.Counter

	// Hist is the client's historical local model: the parameters it
	// uploaded the last time it participated (Algorithm 1 line 4). nil
	// until the first participation.
	Hist []float64
	// LastRound is the round of the client's previous participation
	// (0 if never). FedTrip's staleness factor xi derives from it.
	LastRound int

	cfg  *Config
	seed int64
	// rng is built on first use: a 10k-client fleet where most clients
	// never participate should not pay for 10k PRNG states up front.
	rng *prng.Rand
	// numParams caches |w| (filled by the server at construction, or from
	// the engine on first demand).
	numParams int
	// state holds named per-method vectors (FedDyn's h_k, SCAFFOLD's c_k,
	// FedDANE's gradients...), allocated on first use.
	state map[string][]float64
	// scalars holds named per-method scalars (FedTrip's xi for the
	// current round).
	scalars map[string]float64

	// labelFlip is a label-flipping Byzantine client's fixed rotation
	// offset (adversary.go): every training label y becomes
	// (y+labelFlip) mod Classes. 0 (honest) leaves batches untouched.
	labelFlip int

	// eng is the engine currently attached (nil when idle). loan is the
	// owning server's shared loaner for engine-needing work outside the
	// shard pool; ownEng is the private fallback for clients built outside
	// any server (tests, analysis helpers).
	eng    *engine
	loan   *engineLoaner
	ownEng *engine
}

func newClient(cfg *Config, id int, indices []int, seed int64) *Client {
	return &Client{
		ID:      id,
		Indices: indices,
		Counter: &flops.Counter{},
		cfg:     cfg,
		seed:    seed,
	}
}

// engine returns the attached engine; otherwise it borrows the server's
// shared loaner, falling back to (and lazily building) a private engine
// only for clients that belong to no server.
func (c *Client) engine() *engine {
	if c.eng != nil {
		return c.eng
	}
	if c.loan != nil {
		return c.loan.borrow(c)
	}
	if c.ownEng == nil {
		e, err := newEngine(c.cfg, c.seed)
		if err != nil {
			panic(fmt.Sprintf("core: client %d engine: %v", c.ID, err))
		}
		c.ownEng = e
	}
	c.ownEng.attach(c)
	return c.ownEng
}

// Model returns the client's working model. During a server run this is
// the borrowed shard engine's model; outside one it borrows the server's
// loaner (or a private instance for serverless clients). Parameters are
// only meaningful between a SetParams/LocalTrain and the end of the round
// that loaded them. Confinement: while a run is active, hooks may only
// call this (or any engine-backed method) for clients that are not in
// flight — an in-flight client's engine handoff is unsynchronized by
// design, like every other piece of its training state.
func (c *Client) Model() *nn.Model { return c.engine().model }

// NumSamples returns |D_k|, the client's data size (the aggregation weight
// numerator in Eq. 2).
func (c *Client) NumSamples() int { return len(c.Indices) }

// NumParams returns |w|.
func (c *Client) NumParams() int {
	if c.numParams == 0 {
		c.numParams = c.engine().model.NumParams()
	}
	return c.numParams
}

// StateVec returns the named per-method state vector of length
// NumParams(), allocating it zeroed on first use.
func (c *Client) StateVec(name string) []float64 {
	v, ok := c.state[name]
	if !ok {
		if c.state == nil {
			c.state = make(map[string][]float64)
		}
		v = make([]float64, c.NumParams())
		c.state[name] = v
	}
	return v
}

// HasStateVec reports whether the named vector has been allocated.
func (c *Client) HasStateVec(name string) bool {
	_, ok := c.state[name]
	return ok
}

// RoundVec returns a named scratch vector of length NumParams() that is
// valid only between an algorithm's BeginRound and EndRound for the
// client currently holding the engine. Unlike StateVec it is backed by
// the borrowed engine, not the client: a population of 10k clients
// sharing a handful of engines holds a handful of these, not 10k.
// Algorithms use it for their per-round global-model snapshots; anything
// that must survive a client's round (control variates, historical
// models) stays in StateVec. Contents are whatever the previous borrower
// left — callers must fully overwrite before reading.
func (c *Client) RoundVec(name string) []float64 {
	e := c.engine()
	if e.roundVecs == nil {
		e.roundVecs = make(map[string][]float64)
	}
	v, ok := e.roundVecs[name]
	if !ok {
		v = make([]float64, c.NumParams())
		e.roundVecs[name] = v
	}
	return v
}

// SetScalar stores a named per-method scalar.
func (c *Client) SetScalar(name string, v float64) {
	if c.scalars == nil {
		c.scalars = make(map[string]float64)
	}
	c.scalars[name] = v
}

// Scalar returns a named per-method scalar (0 if unset).
func (c *Client) Scalar(name string) float64 { return c.scalars[name] }

// Config returns the run configuration (read-only for algorithms).
func (c *Client) Config() *Config { return c.cfg }

// RNG exposes the client's deterministic random source (mini-batch
// shuffling, dropout, method-specific sampling). The stream is keyed to
// the client, not to the worker that happens to train it, which is why
// trajectories do not depend on the shard count.
func (c *Client) RNG() *prng.Rand {
	if c.rng == nil {
		c.rng = prng.New(c.seed)
	}
	return c.rng
}

// ScratchModels returns two scratch model instances with the same
// architecture as the client's model. MOON loads the global and historical
// parameters into them for its extra forward passes; FedGKD loads its
// teacher. They belong to the borrowed engine (their parameters carry no
// client state between rounds) and their FLOPs are metered on the
// client's counter.
func (c *Client) ScratchModels() (*nn.Model, *nn.Model) {
	return c.engine().scratch()
}

// Scalar names under which the runtime surfaces device-heterogeneity
// context to algorithms (the same per-method scalar hook surface FedTrip
// uses for xi): the client's compute-speed multiplier and, when adaptive
// local steps are enabled, this round's mini-batch step budget. Both are
// set before BeginRound, so a method can read them from any hook.
const (
	ScalarDeviceSpeed = "device.speed"
	ScalarDeviceSteps = "device.steps"
)

// LocalTrain runs one participating round: load the global model, run E
// local epochs of mini-batch SGD with the method's hooks, update the
// historical model, and return the upload.
//
//fedtripvet:hotpath
func (c *Client) LocalTrain(round int, global []float64) Update {
	return c.LocalTrainSteps(round, global, 0)
}

// LocalTrainSteps is LocalTrain with a mini-batch step budget: maxSteps
// caps the total steps across the round's local epochs (0 = no cap).
// The device-heterogeneity runtime uses it to make a slow client train
// proportionally fewer steps before its (deadline-style) upload; the
// budget is surfaced to algorithms as the ScalarDeviceSteps scalar. A
// budget equal to the round's full step count draws and trains exactly
// like LocalTrain.
//
//fedtripvet:hotpath
func (c *Client) LocalTrainSteps(round int, global []float64, maxSteps int) Update {
	cfg := c.cfg
	algo := cfg.Algo
	e := c.engine()
	e.model.SetParams(global)
	e.opt.Reset()
	if maxSteps > 0 {
		c.SetScalar(ScalarDeviceSteps, float64(maxSteps))
	}
	algo.BeginRound(c, round, global)
	fg, hasFG := algo.(FeatureGradder)
	lg, hasLG := algo.(LogitGradder)
	rng := c.RNG()

	var lossSum float64
	var batches int
	n := len(c.Indices)
	if cap(e.idx) < cfg.BatchSize {
		e.idx = make([]int, 0, cfg.BatchSize)
	}
	idx := e.idx[:0]
	steps := 0
	for ep := 0; ep < cfg.LocalEpochs; ep++ {
		if maxSteps > 0 && steps >= maxSteps {
			break
		}
		perm := randPermInto(rng, e.perm, n)
		e.perm = perm
		for start := 0; start < n; start += cfg.BatchSize {
			if maxSteps > 0 && steps >= maxSteps {
				break
			}
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			idx = idx[:0]
			for _, p := range perm[start:end] {
				idx = append(idx, c.Indices[p]) //fedtripvet:allow e.idx is pooled with capacity >= BatchSize, ensured above
			}
			e.ensureBatch(len(idx))
			cfg.Train.FillBatch(e.batchX, e.batchY, idx)
			if c.labelFlip != 0 {
				rotateLabels(e.batchY, c.labelFlip, cfg.Model.Classes)
			}

			logits := e.model.Forward(e.batchX, true)
			lossSum += nn.SoftmaxCrossEntropy(logits, e.batchY, e.dLogits)
			batches++

			if hasLG {
				lg.LogitGrad(c, e.batchX, e.batchY, logits, e.dLogits)
			}
			var extra *tensor.Tensor
			if hasFG {
				feat := e.model.Features()
				if e.featGrad == nil || !tensor.SameShape(e.featGrad, feat) {
					e.featGrad = tensor.New(feat.Shape()...)
				}
				if fg.FeatureGrad(c, e.batchX, e.batchY, feat, e.featGrad) {
					extra = e.featGrad
				}
			}
			e.model.ZeroGrad()
			e.model.Backward(e.dLogits, extra)
			algo.TransformGrad(c, round, e.model.Params(), e.model.Grads())
			if cfg.ClipNorm > 0 {
				clipToNorm(e.model.Grads(), cfg.ClipNorm)
			}
			e.opt.Step(e.model.Params(), e.model.Grads())
			steps++
		}
	}
	algo.EndRound(c, round)

	// Historical-model bookkeeping (Algorithm 1 line 4): remember what
	// this client is about to upload, and when.
	if c.Hist == nil {
		c.Hist = make([]float64, e.model.NumParams())
	}
	copy(c.Hist, e.model.Params())
	c.LastRound = round

	var meanLoss float64
	if batches > 0 {
		meanLoss = lossSum / float64(batches)
	}
	// The upload buffer is checked out of the shared pool; the server's
	// merge path returns it once the aggregation has consumed it
	// (recycleUpdates), making the steady-state upload cycle
	// allocation-free. Callers outside a server run that drop the Update
	// on the floor merely forgo recycling.
	return Update{
		ClientID:   c.ID,
		Params:     paramsPool.getCopy(e.model.Params()),
		NumSamples: len(c.Indices),
		TrainLoss:  meanLoss,
		pooled:     true,
	}
}

// clipToNorm rescales g in place so ||g|| <= maxNorm.
func clipToNorm(g []float64, maxNorm float64) {
	n := tensor.Norm2(g)
	if n > maxNorm {
		tensor.Scale(maxNorm/n, g)
	}
}

// FullGrad computes the full-batch gradient of the client's empirical risk
// at the given parameters (used by FedDANE / MimeLite / SCAFFOLD-style
// methods). The model's parameters are restored afterwards. The cost — one
// forward+backward over all local data — lands on the client's FLOP
// counter, matching the n(FP+BP) term of Appendix A.
//
// The returned slice is freshly allocated and safe to retain. Hot paths
// that call this every pre-round should keep a reusable buffer and call
// FullGradInto instead.
func (c *Client) FullGrad(at []float64) []float64 {
	grad := make([]float64, c.NumParams())
	c.FullGradInto(grad, at)
	return grad
}

// FullGradInto is FullGrad writing into dst (length NumParams()), using
// engine-owned scratch for everything else, so repeated gradient
// exchanges allocate nothing.
func (c *Client) FullGradInto(dst, at []float64) {
	e := c.engine()
	if cap(e.fgSaved) < e.model.NumParams() {
		e.fgSaved = make([]float64, e.model.NumParams())
	}
	saved := e.fgSaved[:e.model.NumParams()]
	copy(saved, e.model.Params())
	e.model.SetParams(at)
	tensor.ZeroVec(dst)
	n := len(c.Indices)
	bs := c.cfg.BatchSize
	if cap(e.idx) < bs {
		e.idx = make([]int, 0, bs)
	}
	idx := e.idx[:0]
	for start := 0; start < n; start += bs {
		end := start + bs
		if end > n {
			end = n
		}
		idx = append(idx[:0], c.Indices[start:end]...)
		e.ensureBatch(len(idx))
		c.cfg.Train.FillBatch(e.batchX, e.batchY, idx)
		logits := e.model.Forward(e.batchX, false)
		nn.SoftmaxCrossEntropy(logits, e.batchY, e.dLogits)
		e.model.ZeroGrad()
		e.model.Backward(e.dLogits, nil)
		// SoftmaxCrossEntropy mean-reduces per batch; reweight so the sum
		// over batches is the mean over all n samples.
		tensor.Axpy(float64(len(idx))/float64(n), e.model.Grads(), dst)
	}
	e.model.SetParams(saved)
}
