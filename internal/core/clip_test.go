package core

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestClipToNorm(t *testing.T) {
	g := []float64{3, 4} // norm 5
	clipToNorm(g, 2.5)
	if math.Abs(tensor.Norm2(g)-2.5) > 1e-12 {
		t.Fatalf("norm after clip %v", tensor.Norm2(g))
	}
	// Direction preserved.
	if math.Abs(g[0]/g[1]-0.75) > 1e-12 {
		t.Fatalf("direction changed: %v", g)
	}
	// Under the bound: untouched.
	h := []float64{0.3, 0.4}
	clipToNorm(h, 2.5)
	if h[0] != 0.3 || h[1] != 0.4 {
		t.Fatalf("small gradient clipped: %v", h)
	}
}

// With ClipNorm set, the poison-resistant property: huge regularizer
// gradients cannot blow up the model within a round.
type hugeGradAlgo struct{ Base }

func (hugeGradAlgo) Name() string { return "hugegrad" }
func (hugeGradAlgo) TransformGrad(c *Client, round int, w, g []float64) {
	for i := range g {
		g[i] += 1e9
	}
}

func TestClipNormStabilisesRun(t *testing.T) {
	// Unclipped: the 1e9 gradient blasts the model parameters to a huge
	// norm (or outright divergence).
	cfg := testConfig(t, hugeGradAlgo{})
	cfg.Rounds = 2
	var unclippedNorm float64
	cfg.OnRound = func(round int, s *Server) { unclippedNorm = tensor.Norm2(s.Global()) }
	if _, err := Run(cfg); err == nil && unclippedNorm < 1e6 {
		t.Fatalf("unclipped 1e9 gradients left norm %v — expected blow-up", unclippedNorm)
	}
	// Clipped: the same attack is bounded and the run completes sanely.
	cfg2 := testConfig(t, hugeGradAlgo{})
	cfg2.Rounds = 2
	cfg2.ClipNorm = 1
	var clippedNorm float64
	cfg2.OnRound = func(round int, s *Server) { clippedNorm = tensor.Norm2(s.Global()) }
	res, err := Run(cfg2)
	if err != nil {
		t.Fatalf("clipped run diverged: %v", err)
	}
	if res.Rounds != 2 {
		t.Fatal("clipped run did not finish")
	}
	if clippedNorm > 100 {
		t.Fatalf("clipped norm %v still huge", clippedNorm)
	}
}

// Clipping must leave small-gradient runs bit-identical.
func TestClipNormNoEffectWhenLoose(t *testing.T) {
	a := testConfig(t, NewFedTrip(0.4))
	r1, err := Run(a)
	if err != nil {
		t.Fatal(err)
	}
	b := testConfig(t, NewFedTrip(0.4))
	b.ClipNorm = 1e12
	r2, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Accuracy {
		if r1.Accuracy[i] != r2.Accuracy[i] {
			t.Fatal("loose clip changed the trajectory")
		}
	}
}
