// Package hetero quantifies data heterogeneity across federated clients.
// The paper manipulates heterogeneity qualitatively (Dir-0.1 vs Dir-0.5 vs
// Orthogonal-k, Fig. 4); this package turns a partition's client x class
// count matrix into scalar indices so heterogeneity levels can be
// compared, tabulated, and regressed against convergence speed:
//
//   - MeanEntropy: average normalised label entropy per client
//     (1 = every client perfectly balanced, 0 = single-class clients);
//   - MeanTVDistance: average pairwise total-variation distance between
//     client label distributions (0 = identical, 1 = disjoint);
//   - MeanDivergence: average total-variation distance from each client's
//     distribution to the global one.
package hetero

import (
	"fmt"
	"math"
)

// Summary holds the heterogeneity indices of one partition.
type Summary struct {
	Clients int
	Classes int
	// MeanEntropy in [0,1]: normalised Shannon entropy of client label
	// distributions, averaged over clients.
	MeanEntropy float64
	// MeanTVDistance in [0,1]: mean pairwise total variation.
	MeanTVDistance float64
	// MeanDivergence in [0,1]: mean TV distance to the global label
	// distribution.
	MeanDivergence float64
	// MeanEffectiveClasses: average number of classes with >0 samples.
	MeanEffectiveClasses float64
}

// Analyze computes heterogeneity indices from a client x class count
// matrix (as produced by partition.LabelCounts).
func Analyze(counts [][]int) (Summary, error) {
	if len(counts) == 0 {
		return Summary{}, fmt.Errorf("hetero: empty count matrix")
	}
	classes := len(counts[0])
	if classes == 0 {
		return Summary{}, fmt.Errorf("hetero: zero classes")
	}
	dists := make([][]float64, len(counts))
	global := make([]float64, classes)
	var globalTotal float64
	for k, row := range counts {
		if len(row) != classes {
			return Summary{}, fmt.Errorf("hetero: ragged count matrix (row %d has %d classes, want %d)", k, len(row), classes)
		}
		total := 0
		for _, c := range row {
			if c < 0 {
				return Summary{}, fmt.Errorf("hetero: negative count at client %d", k)
			}
			total += c
		}
		if total == 0 {
			return Summary{}, fmt.Errorf("hetero: client %d has no samples", k)
		}
		d := make([]float64, classes)
		for c, v := range row {
			d[c] = float64(v) / float64(total)
			global[c] += float64(v)
			globalTotal += float64(v)
		}
		dists[k] = d
	}
	for c := range global {
		global[c] /= globalTotal
	}

	s := Summary{Clients: len(counts), Classes: classes}
	logC := math.Log(float64(classes))
	for k, d := range dists {
		var h float64
		eff := 0
		for _, p := range d {
			if p > 0 {
				h -= p * math.Log(p)
				eff++
			}
		}
		s.MeanEntropy += h / logC
		s.MeanEffectiveClasses += float64(eff)
		s.MeanDivergence += tv(d, global)
		for j := k + 1; j < len(dists); j++ {
			s.MeanTVDistance += tv(d, dists[j])
		}
	}
	n := float64(len(counts))
	s.MeanEntropy /= n
	s.MeanEffectiveClasses /= n
	s.MeanDivergence /= n
	pairs := n * (n - 1) / 2
	if pairs > 0 {
		s.MeanTVDistance /= pairs
	}
	return s, nil
}

// tv is the total-variation distance between two distributions.
func tv(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s / 2
}

// String renders the summary for table cells.
func (s Summary) String() string {
	return fmt.Sprintf("entropy %.3f | pairTV %.3f | divTV %.3f | classes %.1f",
		s.MeanEntropy, s.MeanTVDistance, s.MeanDivergence, s.MeanEffectiveClasses)
}
