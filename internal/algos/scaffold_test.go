package algos

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/tensor"
)

func TestSCAFFOLDControlVariateUpdate(t *testing.T) {
	s := &SCAFFOLD{}
	cfg := testConfig(t, s)
	srv, err := core.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := srv.Clients()[0]
	n := c.NumParams()

	global := make([]float64, n)
	for i := range global {
		global[i] = 1
	}
	s.PreRound(1, []*core.Client{c}, global)
	s.BeginRound(c, 1, global)

	// Simulate 2 local steps with the drift correction applied.
	g := make([]float64, n)
	w := make([]float64, n)
	s.TransformGrad(c, 1, w, g)
	s.TransformGrad(c, 1, w, g)
	if got := c.Scalar("scaffold.steps"); got != 2 {
		t.Fatalf("steps %v", got)
	}

	// Set the local model to a known endpoint and close the round.
	end := make([]float64, n)
	for i := range end {
		end[i] = 0.5
	}
	c.Model().SetParams(end)
	s.EndRound(c, 1)

	// c_k was 0, c was 0: c_k^+ = (global - w)/(K*lr) with K=2, lr=0.01.
	want := (1.0 - 0.5) / (2 * cfg.LR)
	ck := c.StateVec("scaffold.ck")
	dc := c.StateVec("scaffold.dc")
	for i := 0; i < 5; i++ {
		if math.Abs(ck[i]-want) > 1e-9 {
			t.Fatalf("ck[%d] = %v want %v", i, ck[i], want)
		}
		if math.Abs(dc[i]-want) > 1e-9 {
			t.Fatalf("dc[%d] = %v want %v", i, dc[i], want)
		}
	}

	// Aggregate folds |S|/N * mean(dc) into the server variate.
	next := s.Aggregate(1, global, []core.Update{{ClientID: 0, Params: end, NumSamples: 10}})
	if tensor.MaxAbsDiff(next, end) != 0 {
		t.Fatal("single-update aggregate should return the update")
	}
	popN := len(cfg.Parts)
	wantC := want * 1.0 / float64(popN)
	for i := 0; i < 5; i++ {
		if math.Abs(s.c[i]-wantC) > 1e-9 {
			t.Fatalf("server c[%d] = %v want %v", i, s.c[i], wantC)
		}
	}
}

func TestSCAFFOLDZeroStepsEndRound(t *testing.T) {
	s := &SCAFFOLD{}
	cfg := testConfig(t, s)
	srv, err := core.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := srv.Clients()[0]
	global := make([]float64, c.NumParams())
	s.PreRound(1, []*core.Client{c}, global)
	s.BeginRound(c, 1, global)
	s.EndRound(c, 1) // no TransformGrad calls: must not divide by zero
	ck := c.StateVec("scaffold.ck")
	if tensor.Norm2(ck) != 0 {
		t.Fatal("c_k must stay zero when no steps ran")
	}
}

// The drift correction g + c - c_k must cancel exactly when c == c_k.
func TestSCAFFOLDNoDriftWhenVariatesEqual(t *testing.T) {
	s := &SCAFFOLD{}
	cfg := testConfig(t, s)
	srv, err := core.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := srv.Clients()[0]
	n := c.NumParams()
	global := make([]float64, n)
	s.PreRound(1, []*core.Client{c}, global)
	s.BeginRound(c, 1, global)
	cSrv := c.StateVec("scaffold.c")
	ck := c.StateVec("scaffold.ck")
	for i := range cSrv {
		cSrv[i] = 0.3
		ck[i] = 0.3
	}
	g := make([]float64, n)
	for i := range g {
		g[i] = 1
	}
	s.TransformGrad(c, 1, make([]float64, n), g)
	for i := range g {
		if g[i] != 1 {
			t.Fatalf("g[%d] = %v, correction should cancel", i, g[i])
		}
	}
}
