package core

import (
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/prng"
)

// scaleConfig builds a 1000-client fleet with tiny per-client datasets and
// a quarter-width MLP — big enough to exercise the population machinery,
// small enough for CI.
func scaleConfig(t *testing.T, shards int) AsyncConfig {
	t.Helper()
	const clients, perClient = 1000, 4
	train, test, err := data.Generate(data.Spec{
		Kind: data.KindMNIST, Train: clients * perClient, Test: 100, Seed: 71,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := partition.Partition(partition.IID(), train.Y, train.Classes,
		clients, perClient, rand.New(rand.NewSource(72)))
	if err != nil {
		t.Fatal(err)
	}
	return AsyncConfig{
		Config: Config{
			Model: nn.ModelSpec{
				Arch: nn.ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10, Scale: 0.25,
			},
			Train: train, Test: test, Parts: parts,
			Rounds: 6, ClientsPerRound: 8,
			BatchSize: 4, LocalEpochs: 1,
			LR: 0.01, Momentum: 0.9,
			Algo: NewFedTrip(0.4), Seed: 73,
			EvalEvery: 100, // population mechanics, not accuracy, under test
			Shards:    shards,
		},
		Concurrency: 64,
		BufferSize:  16,
		Latency:     StragglerLatency{Fast: 1, Slow: 10, SlowEvery: 7},
	}
}

// A 1000-client buffered run must complete, keep its virtual clock
// monotone, and touch a meaningful slice of the fleet.
func TestThousandClientBufferedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	acfg := scaleConfig(t, 0)
	a, err := NewAsyncServer(acfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != acfg.Rounds {
		t.Fatalf("rounds %d", res.Rounds)
	}
	prev := 0.0
	for i, ts := range res.SimTimeByRound {
		if ts < prev {
			t.Fatalf("sim time decreased at aggregation %d", i+1)
		}
		prev = ts
	}
	distinct, dispatches := a.Participation()
	// 6 aggregations x 16 arrivals + up to 64 still in flight.
	if dispatches < int64(acfg.Rounds*acfg.BufferSize) {
		t.Fatalf("only %d dispatches recorded", dispatches)
	}
	if distinct < acfg.Rounds*acfg.BufferSize/2 {
		t.Fatalf("only %d distinct clients touched — dispatch not spreading over the fleet", distinct)
	}
	if distinct > 1000 {
		t.Fatalf("distinct participants %d exceeds the population", distinct)
	}
}

// Trajectories must not depend on the shard count: per-client RNG streams
// make a 1-shard and a 3-shard run bit-for-bit identical.
func TestShardCountDoesNotChangeTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(shards int) *Result {
		res, err := RunAsync(scaleConfig(t, shards))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1 := run(1)
	r3 := run(3)
	if len(r1.TrainLoss) != len(r3.TrainLoss) {
		t.Fatalf("lengths differ: %d vs %d", len(r1.TrainLoss), len(r3.TrainLoss))
	}
	for i := range r1.TrainLoss {
		if r1.TrainLoss[i] != r3.TrainLoss[i] {
			t.Fatalf("aggregation %d loss differs across shard counts: %v vs %v", i+1, r1.TrainLoss[i], r3.TrainLoss[i])
		}
		if r1.SimTimeByRound[i] != r3.SimTimeByRound[i] {
			t.Fatalf("aggregation %d sim time differs across shard counts", i+1)
		}
		if r1.GFLOPsByRound[i] != r3.GFLOPsByRound[i] {
			t.Fatalf("aggregation %d FLOPs differ across shard counts", i+1)
		}
	}
}

// hundredKSpec builds a 100k-client fleet over a small shared sample
// pool: clients overlap in the pool, so the dataset stays tiny while
// the population machinery (idle set, heap slots, aggregate churn,
// stateless per-client derivation) runs at full width.
func hundredKSpec(t *testing.T, shards int) RunSpec {
	t.Helper()
	const clients, perClient, pool = 100_000, 4, 2000
	train, test, err := data.Generate(data.Spec{
		Kind: data.KindMNIST, Train: pool, Test: 100, Seed: 171,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := prng.New(172)
	parts := make([][]int, clients)
	flat := make([]int, clients*perClient)
	for i := range parts {
		p := flat[i*perClient : (i+1)*perClient : (i+1)*perClient]
		for k := range p {
			p[k] = rng.Intn(pool)
		}
		parts[i] = p
	}
	sp := RunSpec{
		Config: Config{
			Model: nn.ModelSpec{
				Arch: nn.ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10, Scale: 0.25,
			},
			Train: train, Test: test, Parts: parts,
			Rounds: 4, ClientsPerRound: 8,
			BatchSize: 4, LocalEpochs: 1,
			LR: 0.01, Momentum: 0.9,
			Algo: NewFedTrip(0.4), Seed: 173,
			EvalEvery: 1 << 20,
			Shards:    shards,
		},
		Runtime:     RuntimeAsync,
		Concurrency: 256,
		BufferSize:  64,
		Devices:     DefaultTiers(),
		Network:     DefaultNetTiers(),
		Churn: &ChurnModel{
			MeanUp:   400,
			MeanDown: 40,
			Drops:    []MassDrop{{At: 6, Fraction: 0.2, Duration: 8}},
		},
	}
	return sp
}

// The shard-independence pin at population scale: a 100k-client churning
// heterogeneous fleet must produce bit-for-bit the same trajectory on 1
// and 3 shards.
func TestHundredKShardCountIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(shards int) *Result {
		res, err := Start(hundredKSpec(t, shards))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1 := run(1)
	r3 := run(3)
	requireSameResult(t, "100k shard independence", r1, r3)
}

// The kill/resume pin at population scale: snapshotting a 100k-client
// churning fleet mid-run — compact churn state, parked jobs, heap slot
// map and all — and resuming in a fresh process must match the
// uninterrupted run bit-for-bit.
func TestHundredKResumeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runResumeScenario(t, hundredKSpec(t, 0), 2)
}
