package hetero_test

import (
	"fmt"

	"repro/internal/hetero"
)

// Quantify how skewed a partition is from its client x class count matrix.
func ExampleAnalyze() {
	// Two single-class clients with disjoint classes (Orthogonal-style).
	counts := [][]int{
		{100, 0},
		{0, 100},
	}
	s, err := hetero.Analyze(counts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("entropy %.1f, pairwise TV %.1f\n", s.MeanEntropy, s.MeanTVDistance)
	// Output: entropy 0.0, pairwise TV 1.0
}
