// Device heterogeneity: per-client compute profiles and availability.
//
// The async runtime's latency models (latency.go) price each dispatch
// with a duration drawn from a distribution that is *independent* of the
// work the client actually does. Real edge fleets are the opposite: a
// device's round time is its compute — FLOPs executed divided by the
// silicon's throughput — and devices come and go. This file supplies
// both missing dimensions:
//
//   - A DeviceDistribution samples one compute-speed multiplier per
//     client at fleet construction (uniform, lognormal, or tiered
//     edge/mobile/server populations). With a device fleet configured,
//     a dispatch's virtual duration derives from the client's *metered*
//     FLOPs for that round — flops / (FlopRate * speed) — instead of an
//     independent latency draw, so compute heterogeneity and the FLOP
//     accounting of the paper's resource tables stay coupled. With
//     RunSpec.AdaptiveLocalSteps, a 0.25x-speed client also trains
//     proportionally fewer local mini-batch steps (deadline-style
//     partial work), surfaced to algorithms through the client scalar
//     hook surface ("device.speed", "device.steps").
//
//   - A ChurnModel makes clients drop out and rejoin: a per-client
//     on/off Markov process (exponential up/down durations) plus a
//     mass-dropout event injector (a fraction of the fleet lost at a
//     scheduled virtual time, temporarily or permanently). Offline
//     clients leave the population registry's idle set, so the
//     dispatcher never picks them; a client that drops mid-flight pauses
//     — its arrival is deferred past the rejoin, which is how genuinely
//     stale updates (the MaxStalenessPolicy regime) arise. Permanently
//     dropped clients lose their in-flight update entirely.
//
// Both processes draw from dedicated named seed streams (streamDevice,
// streamChurn in seeds.go), so enabling them never perturbs the selection or
// latency streams — and a zero-heterogeneity fleet with no churn
// reproduces the plain async trajectory bit-for-bit (pinned by
// TestDeviceUniformFleetMatchesConstLatency).
package core

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/prng"
)

// Speed multipliers are clamped into [minDeviceSpeed, maxDeviceSpeed] at
// sampling time: a heavy-tailed distribution must not mint a client whose
// flop-derived round time is effectively infinite (or zero).
const (
	minDeviceSpeed = 1.0 / 32
	maxDeviceSpeed = 32.0
)

// DeviceDistribution samples per-client compute-speed multipliers
// (1.0 = the reference device that executes RunSpec.FlopRate FLOPs per
// simulated second). SampleSpeed must draw all randomness from the
// supplied rng; the runtime samples every client once at construction
// from a dedicated seed stream, in client-ID order.
type DeviceDistribution interface {
	SampleSpeed(clientID int, rng *prng.Rand) float64
	String() string
}

// UniformDevices draws speeds uniformly from [Min, Max]. uniform:1,1 is
// the homogeneous reference fleet.
type UniformDevices struct{ Min, Max float64 }

func (d UniformDevices) SampleSpeed(_ int, rng *prng.Rand) float64 {
	return d.Min + rng.Float64()*(d.Max-d.Min)
}
func (d UniformDevices) String() string { return fmt.Sprintf("uniform:%g,%g", d.Min, d.Max) }

// LognormalDevices draws exp(Mu + Sigma*N(0,1)) — the heavy-tailed
// device-speed spread observed in production fleets, where a small
// fraction of devices is dramatically slower.
type LognormalDevices struct{ Mu, Sigma float64 }

func (d LognormalDevices) SampleSpeed(_ int, rng *prng.Rand) float64 {
	return math.Exp(d.Mu + d.Sigma*rng.NormFloat64())
}
func (d LognormalDevices) String() string { return fmt.Sprintf("lognormal:%g,%g", d.Mu, d.Sigma) }

// DeviceTier is one slice of a TieredDevices fleet: Frac of the clients
// run at Speed.
type DeviceTier struct{ Speed, Frac float64 }

// TieredDevices assigns each client to a named speed tier by fraction —
// the classic edge/mobile/server split. Fractions are normalized at
// sampling time.
type TieredDevices struct{ Tiers []DeviceTier }

// DefaultTiers is the canonical three-tier fleet: 30% edge devices at
// 0.25x, 60% mobile at 1x, 10% server-class at 4x.
func DefaultTiers() TieredDevices {
	return TieredDevices{Tiers: []DeviceTier{{0.25, 0.3}, {1, 0.6}, {4, 0.1}}}
}

func (d TieredDevices) SampleSpeed(_ int, rng *prng.Rand) float64 {
	var total float64
	for _, t := range d.Tiers {
		total += t.Frac
	}
	u := rng.Float64() * total
	for _, t := range d.Tiers {
		u -= t.Frac
		if u < 0 {
			return t.Speed
		}
	}
	return d.Tiers[len(d.Tiers)-1].Speed
}

func (d TieredDevices) String() string {
	s := "tiered"
	for i, t := range d.Tiers {
		if i == 0 {
			s += ":"
		} else {
			s += ","
		}
		s += fmt.Sprintf("%g,%g", t.Speed, t.Frac)
	}
	return s
}

// ParseDeviceDist parses a CLI device-distribution spec:
//
//	none                 homogeneous fleet (no device profiles)
//	uniform:MIN,MAX      speed uniform in [MIN, MAX]
//	lognormal:MU,SIGMA   speed = exp(MU + SIGMA*N(0,1))
//	tiered               the default 0.25x/1x/4x edge/mobile/server fleet
//	tiered:S1,F1,S2,F2,...  custom tiers (speed, fraction pairs)
func ParseDeviceDist(spec string) (DeviceDistribution, error) {
	name, args, err := parseSpec(spec, "device-dist")
	if err != nil {
		return nil, err
	}
	switch name {
	case "", "none":
		if len(args) != 0 {
			return nil, fmt.Errorf("core: device-dist %q takes no args", name)
		}
		return nil, nil
	case "uniform":
		if len(args) != 2 {
			return nil, fmt.Errorf("core: device-dist uniform wants 2 args, got %d", len(args))
		}
		if args[0] <= 0 || args[1] < args[0] {
			return nil, fmt.Errorf("core: uniform device speeds want 0 < min <= max, got [%g,%g]", args[0], args[1])
		}
		return UniformDevices{Min: args[0], Max: args[1]}, nil
	case "lognormal":
		if len(args) != 2 {
			return nil, fmt.Errorf("core: device-dist lognormal wants 2 args, got %d", len(args))
		}
		if args[1] < 0 {
			return nil, fmt.Errorf("core: lognormal device sigma %g must be >= 0", args[1])
		}
		return LognormalDevices{Mu: args[0], Sigma: args[1]}, nil
	case "tiered":
		if len(args) == 0 {
			return DefaultTiers(), nil
		}
		if len(args)%2 != 0 {
			return nil, fmt.Errorf("core: tiered device-dist wants speed,fraction pairs, got %d args", len(args))
		}
		d := TieredDevices{}
		for i := 0; i < len(args); i += 2 {
			if args[i] <= 0 || args[i+1] <= 0 {
				return nil, fmt.Errorf("core: tiered device-dist wants positive speeds and fractions, got %g,%g", args[i], args[i+1])
			}
			d.Tiers = append(d.Tiers, DeviceTier{Speed: args[i], Frac: args[i+1]})
		}
		return d, nil
	}
	return nil, fmt.Errorf("core: unknown device distribution %q (none|uniform|lognormal|tiered)", name)
}

// deviceSpeed derives client id's compute-speed multiplier statelessly
// from the id-th instance of the device stream, clamped into the
// representable range. scratch is re-seeded in place, so a lookup
// allocates nothing; the same id always yields the same speed, which is
// what lets the runtime drop the fleet-wide speeds array.
func deviceSpeed(id int, dist DeviceDistribution, seed int64, scratch *prng.Rand) float64 {
	scratch.Reseed(streamSeed(seed, streamDevice, id))
	s := dist.SampleSpeed(id, scratch)
	if s < minDeviceSpeed {
		s = minDeviceSpeed
	}
	if s > maxDeviceSpeed {
		s = maxDeviceSpeed
	}
	return s
}

// sampleDeviceSpeeds materializes the per-ID rule for a whole fleet — a
// test/diagnostic helper; the runtime derives speeds on demand instead.
func sampleDeviceSpeeds(n int, dist DeviceDistribution, seed int64) []float64 {
	var scratch prng.Rand
	speeds := make([]float64, n)
	for id := 0; id < n; id++ {
		speeds[id] = deviceSpeed(id, dist, seed, &scratch)
	}
	return speeds
}

// MassDrop is one injected mass-dropout event: at virtual time At, each
// online-or-offline (but not yet dead) client independently drops with
// probability Fraction. Duration > 0 schedules the rejoin; Duration <= 0
// kills the affected clients for the rest of the run (their in-flight
// updates are lost).
type MassDrop struct {
	At, Fraction, Duration float64
}

// ChurnModel describes the fleet's availability process: a per-client
// on/off Markov chain (exponential up/down durations) plus scheduled
// mass-dropout events. The zero value is invalid; a nil *ChurnModel on
// the RunSpec means a fully available fleet.
type ChurnModel struct {
	// MeanUp and MeanDown are the exponential means of the on and off
	// phases in simulated seconds. Both zero disables the Markov chain
	// (mass-dropout events only); otherwise both must be positive. The
	// steady-state offline fraction is MeanDown / (MeanUp + MeanDown).
	MeanUp, MeanDown float64
	// Drops are the injected mass-dropout events, in any order.
	Drops []MassDrop
}

// Validate checks the churn parameters.
func (m *ChurnModel) Validate() error {
	if (m.MeanUp <= 0) != (m.MeanDown <= 0) {
		return fmt.Errorf("core: churn wants both MeanUp and MeanDown positive (or both zero), got %g/%g", m.MeanUp, m.MeanDown)
	}
	if m.MeanUp <= 0 && len(m.Drops) == 0 {
		return fmt.Errorf("core: churn model with neither a Markov process nor mass-dropout events")
	}
	for _, d := range m.Drops {
		if d.At < 0 || d.Fraction <= 0 || d.Fraction > 1 {
			return fmt.Errorf("core: mass drop wants at >= 0 and 0 < fraction <= 1, got %+v", d)
		}
	}
	return nil
}

// String renders the model in ParseChurn's grammar.
func (m *ChurnModel) String() string {
	s := "none"
	if m.MeanUp > 0 {
		s = fmt.Sprintf("markov:%g,%g", m.MeanUp, m.MeanDown)
	}
	for _, d := range m.Drops {
		if s == "none" {
			s = ""
		} else {
			s += "+"
		}
		s += fmt.Sprintf("drop:%g,%g,%g", d.At, d.Fraction, d.Duration)
	}
	return s
}

// ParseChurn parses a CLI churn spec: "+"-separated segments of
//
//	none                   no churn (nil model)
//	markov:UP,DOWN         per-client on/off chain with exponential
//	                       mean up/down durations (seconds)
//	drop:AT,FRAC,DUR       mass dropout: at time AT, fraction FRAC of
//	                       the fleet drops for DUR seconds (DUR <= 0 =
//	                       permanently)
//
// e.g. "markov:90,10" or "markov:90,10+drop:60,0.3,30".
func ParseChurn(spec string) (*ChurnModel, error) {
	if spec == "" || spec == "none" {
		return nil, nil
	}
	m := &ChurnModel{}
	for _, seg := range strings.Split(spec, "+") {
		name, args, err := parseSpec(seg, "dropout")
		if err != nil {
			return nil, err
		}
		switch name {
		case "markov":
			if len(args) != 2 {
				return nil, fmt.Errorf("core: dropout markov wants 2 args, got %d", len(args))
			}
			if m.MeanUp > 0 {
				return nil, fmt.Errorf("core: dropout spec %q repeats markov", spec)
			}
			m.MeanUp, m.MeanDown = args[0], args[1]
		case "drop":
			if len(args) != 3 {
				return nil, fmt.Errorf("core: dropout drop wants 3 args (at,fraction,duration), got %d", len(args))
			}
			m.Drops = append(m.Drops, MassDrop{At: args[0], Fraction: args[1], Duration: args[2]})
		default:
			return nil, fmt.Errorf("core: unknown dropout segment %q (markov:UP,DOWN|drop:AT,FRAC,DUR)", name)
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// churnEventKind discriminates the availability event queue. Only the
// O(#mass-drops) scheduled events live in the queue; the Markov chain's
// drop/rejoin events are sampled from two aggregate clocks (see churn).
type churnEventKind uint8

const (
	churnMass        churnEventKind = iota // a scheduled MassDrop fires (id = Drops index)
	churnGroupRejoin                       // a temporary mass drop's victims return (id = groups index)
)

// churnEvent is one entry of the availability event queue, ordered by
// (at, seq) — seq is the scheduling order, which makes replays
// deterministic even under simultaneous events.
type churnEvent struct {
	at   float64
	seq  int64
	id   int32
	kind churnEventKind
}

// churnHeap is a plain binary min-heap of churn events (push/pop only —
// events are invalidated lazily via the per-client generation counter,
// never removed in place).
type churnHeap struct{ es []churnEvent }

func churnLess(a, b churnEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *churnHeap) len() int { return len(h.es) }

func (h *churnHeap) push(e churnEvent) {
	h.es = append(h.es, e)
	i := len(h.es) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !churnLess(h.es[i], h.es[parent]) {
			break
		}
		h.es[i], h.es[parent] = h.es[parent], h.es[i]
		i = parent
	}
}

func (h *churnHeap) pop() churnEvent {
	e := h.es[0]
	last := len(h.es) - 1
	h.es[0] = h.es[last]
	h.es = h.es[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.es) && churnLess(h.es[l], h.es[smallest]) {
			smallest = l
		}
		if r < len(h.es) && churnLess(h.es[r], h.es[smallest]) {
			smallest = r
		}
		if smallest == i {
			return e
		}
		h.es[i], h.es[smallest] = h.es[smallest], h.es[i]
		i = smallest
	}
}

// churn is the runtime state of one fleet's availability process. All
// mutation happens on the event loop; there is no locking.
//
// The original implementation ran one lazily-scheduled Markov chain per
// client: an O(N) event heap plus offline/dead/generation arrays. At
// 100k–1M clients that is the dominant per-client state, so the chain is
// replaced by the exactly-equivalent aggregate CTMC view: with nUp
// clients online, the fleet's next Markov drop is the minimum of nUp
// i.i.d. Exp(1/MeanUp) clocks — Exp(nUp/MeanUp) — and which client drops
// is uniform over the online set; symmetrically for rejoins over the
// nDown Markov-offline clients with rate nDown/MeanDown. Memorylessness
// licenses resampling both aggregate clocks from the current segment
// sizes after every processed event, so the whole Markov process needs
// two floats of clock state. TestChurnAggregateMatchesPerClientChains
// pins the distribution equivalence against a reference per-client
// simulation at 10k clients.
//
// Per-client state is a permutation: order holds the client IDs
// partitioned into four contiguous segments — [0,nUp) online,
// [nUp,nUp+nDown) Markov-offline, [nUp+nDown,nUp+nDown+nSusp)
// mass-suspended (a temporary MassDrop's victims, which rejoin at the
// drop's fixed deadline, not the exponential clock), and the dead tail —
// and pos is its inverse. Segment moves are O(1) boundary swaps; uniform
// which-client sampling is one Intn over a segment. The event heap holds
// only the O(#Drops) scheduled mass events and group rejoins.
type churn struct {
	model ChurnModel
	rng   *prng.Rand
	n     int
	order []int32
	pos   []int32
	// Segment sizes; the dead count is n - nUp - nDown - nSusp.
	nUp, nDown, nSusp int
	// Absolute virtual times of the next aggregate Markov drop/rejoin;
	// +Inf when the source segment is empty or the chain is disabled.
	nextDrop, nextRejoin float64
	h                    churnHeap
	seq                  int64
	// groups[k] holds the victims of the k-th fired temporary mass drop,
	// restored together by its churnGroupRejoin event (nil afterwards). A
	// victim leaves its group only by dying, which the rejoin detects by
	// segment membership.
	groups [][]int32
}

// newChurn builds the availability process: every client starts online,
// with the aggregate Markov clocks armed and every mass drop
// pre-scheduled.
func newChurn(n int, m *ChurnModel, seed int64) *churn {
	c := &churn{
		model: *m,
		rng:   seedStream(seed, streamChurn),
		n:     n,
		order: make([]int32, n),
		pos:   make([]int32, n),
		nUp:   n,
	}
	for i := 0; i < n; i++ {
		c.order[i] = int32(i)
		c.pos[i] = int32(i)
	}
	for i, d := range m.Drops {
		c.schedule(d.At, int32(i), churnMass)
	}
	c.resample(0)
	return c
}

func (c *churn) schedule(at float64, id int32, kind churnEventKind) {
	c.h.push(churnEvent{at: at, seq: c.seq, id: id, kind: kind})
	c.seq++
}

// resample rearms both aggregate Markov clocks from the current segment
// sizes at virtual time t. Valid after any state change because the
// exponential clocks are memoryless. Draw order (drop, then rejoin) is
// part of the deterministic-run contract.
func (c *churn) resample(t float64) {
	c.nextDrop = math.Inf(1)
	c.nextRejoin = math.Inf(1)
	if c.model.MeanUp <= 0 {
		return
	}
	if c.nUp > 0 {
		c.nextDrop = t + c.rng.ExpFloat64()*c.model.MeanUp/float64(c.nUp)
	}
	if c.nDown > 0 {
		c.nextRejoin = t + c.rng.ExpFloat64()*c.model.MeanDown/float64(c.nDown)
	}
}

// online reports whether the client is currently dispatchable.
func (c *churn) online(id int) bool { return int(c.pos[id]) < c.nUp }

// offlineCount returns how many clients are currently offline or dead.
func (c *churn) offlineCount() int { return c.n - c.nUp }

// next returns the virtual time of the earliest pending availability
// event, or false when the process has run dry (no future drops or
// rejoins — a fully dead fleet stays dead).
func (c *churn) next() (float64, bool) {
	t := math.Inf(1)
	if c.h.len() > 0 {
		t = c.h.es[0].at
	}
	if c.nextDrop < t {
		t = c.nextDrop
	}
	if c.nextRejoin < t {
		t = c.nextRejoin
	}
	if math.IsInf(t, 1) {
		return 0, false
	}
	return t, true
}

// advance processes every availability event with time <= now, in event
// order. onDrop(id, at, permanent) fires when a client goes offline;
// onRejoin(id, at) when it returns. The callbacks run with the churn
// state already updated. Simultaneous events process deterministically:
// scheduled (heap) events first, then the aggregate drop, then the
// aggregate rejoin.
func (c *churn) advance(now float64, onDrop func(id int, at float64, permanent bool), onRejoin func(id int, at float64)) {
	for {
		t := math.Inf(1)
		kind := 0 // 0 = heap event, 1 = aggregate drop, 2 = aggregate rejoin
		if c.h.len() > 0 {
			t = c.h.es[0].at
		}
		if c.nextDrop < t {
			t, kind = c.nextDrop, 1
		}
		if c.nextRejoin < t {
			t, kind = c.nextRejoin, 2
		}
		if t > now {
			return
		}
		switch kind {
		case 1:
			id := int(c.order[c.rng.Intn(c.nUp)])
			c.dropMarkov(id)
			onDrop(id, t, false)
		case 2:
			id := int(c.order[c.nUp+c.rng.Intn(c.nDown)])
			c.rejoinMarkov(id)
			onRejoin(id, t)
		default:
			e := c.h.pop()
			switch e.kind {
			case churnMass:
				c.massDrop(e, onDrop)
			case churnGroupRejoin:
				g := c.groups[e.id]
				c.groups[e.id] = nil
				for _, cid := range g {
					id := int(cid)
					p := int(c.pos[id])
					if p < c.nUp+c.nDown || p >= c.nUp+c.nDown+c.nSusp {
						continue // killed while suspended
					}
					c.unsuspend(id)
					onRejoin(id, e.at)
				}
			}
		}
		c.resample(t)
	}
}

// massDrop fires one scheduled MassDrop event.
func (c *churn) massDrop(e churnEvent, onDrop func(id int, at float64, permanent bool)) {
	d := c.model.Drops[e.id]
	var group []int32
	// Every client draws, in ID order and independent of its current
	// state, so the draw count (and everything downstream of this rng)
	// depends only on the fleet size.
	for id := 0; id < c.n; id++ {
		hit := c.rng.Float64() < d.Fraction
		if !hit {
			continue
		}
		p := int(c.pos[id])
		if p >= c.nUp+c.nDown+c.nSusp {
			continue // already dead
		}
		if d.Duration <= 0 {
			c.kill(id)
			onDrop(id, e.at, true)
			continue
		}
		if p >= c.nUp {
			// Already down (Markov or an earlier drop): its own rejoin
			// stands.
			continue
		}
		c.suspend(id)
		group = append(group, int32(id))
		onDrop(id, e.at, false)
	}
	if len(group) > 0 {
		c.groups = append(c.groups, group)
		c.schedule(e.at+d.Duration, int32(len(c.groups)-1), churnGroupRejoin)
	}
}

// swapPos exchanges the clients at order positions i and k.
func (c *churn) swapPos(i, k int) {
	a, b := c.order[i], c.order[k]
	c.order[i], c.order[k] = b, a
	c.pos[a], c.pos[b] = int32(k), int32(i)
}

// dropMarkov moves an online client to the Markov-offline segment.
func (c *churn) dropMarkov(id int) {
	c.swapPos(int(c.pos[id]), c.nUp-1)
	c.nUp--
	c.nDown++
}

// rejoinMarkov moves a Markov-offline client back online.
func (c *churn) rejoinMarkov(id int) {
	c.swapPos(int(c.pos[id]), c.nUp)
	c.nUp++
	c.nDown--
}

// suspend moves an online client to the mass-suspended segment.
func (c *churn) suspend(id int) {
	c.swapPos(int(c.pos[id]), c.nUp-1)
	c.swapPos(c.nUp-1, c.nUp+c.nDown-1)
	c.nUp--
	c.nSusp++
}

// unsuspend moves a mass-suspended client back online.
func (c *churn) unsuspend(id int) {
	s2 := c.nUp + c.nDown
	c.swapPos(int(c.pos[id]), s2)
	c.swapPos(s2, c.nUp)
	c.nUp++
	c.nSusp--
}

// kill moves a client from any live segment to the dead tail.
func (c *churn) kill(id int) {
	if int(c.pos[id]) < c.nUp {
		c.swapPos(int(c.pos[id]), c.nUp-1)
		c.nUp--
		c.nDown++
	}
	if int(c.pos[id]) < c.nUp+c.nDown {
		c.swapPos(int(c.pos[id]), c.nUp+c.nDown-1)
		c.nDown--
		c.nSusp++
	}
	c.swapPos(int(c.pos[id]), c.nUp+c.nDown+c.nSusp-1)
	c.nSusp--
}
