// Command fedtripvet runs the repository's determinism analyzers (see
// internal/analysis) in two modes:
//
// Standalone, over package patterns:
//
//	go run ./cmd/fedtripvet ./...
//
// As a go vet tool, speaking cmd/go's unitchecker protocol (-V=full
// version handshake, -flags discovery, one .cfg file per package):
//
//	go build -o /tmp/fedtripvet ./cmd/fedtripvet
//	go vet -vettool=/tmp/fedtripvet ./...
//
// Exit status: 0 clean, 1 findings (2 under the vet protocol, which
// reserves 1 for driver errors), >0 on load or type-check failure.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fedtripvet: ")
	args := os.Args[1:]

	// cmd/go's vettool handshakes come before any real work: -V=full
	// identifies the tool for the build cache, -flags asks which
	// analyzer flags the driver may forward.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVet(args[0]))
	}
	os.Exit(runStandalone())
}

// printVersion replicates the output shape cmd/go expects from
// `tool -V=full`: a stable string plus a content hash of the binary, so
// vet results are invalidated when the tool changes.
func printVersion() {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%x\n", name, h.Sum(nil)[:24])
}

// runStandalone loads the argument patterns (default ./...) from the
// current directory and prints every finding.
func runStandalone() int {
	analyzers := analysis.All()
	fs := flag.NewFlagSet("fedtripvet", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: fedtripvet [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		fmt.Fprintf(fs.Output(), "\nFlags:\n")
		fs.PrintDefaults()
	}
	// Analyzer flags are namespaced as -<analyzer>.<flag>.
	for _, a := range analyzers {
		name := a.Name
		a.Flags.VisitAll(func(f *flag.Flag) {
			fs.Var(f.Value, name+"."+f.Name, f.Usage)
		})
	}
	_ = fs.Parse(os.Args[1:])
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		log.Fatal(err)
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		log.Fatal(err)
	}
	findings, err := analysis.AnalyzePackages(pkgs, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s\n", f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "fedtripvet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}

// vetConfig is the subset of cmd/go's vet .cfg file the tool consumes
// (field names fixed by the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVet analyzes one package under the go vet protocol.
func runVet(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		log.Fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Fatalf("parsing %s: %v", cfgPath, err)
	}
	// The driver expects the facts file to exist even though these
	// analyzers exchange no facts.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				log.Fatal(err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}
	// Test-variant packages are listed as "path [path.test]"; analyze
	// them under their base path so per-package analyzer configuration
	// (e.g. randsource's guarded list) applies to them too.
	importPath := cfg.ImportPath
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}
	fset := token.NewFileSet()
	files, err := analysis.ParseFiles(fset, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		log.Fatal(err)
	}
	imp := analysis.NewImporter(fset, analysis.ExportLookup(cfg.PackageFile, cfg.ImportMap))
	tp, info, err := analysis.Check(fset, importPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		log.Fatalf("%s: %v", importPath, err)
	}
	findings, err := analysis.AnalyzePackages([]*analysis.Package{{
		ImportPath: importPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Syntax:     files,
		Types:      tp,
		TypesInfo:  info,
	}}, analysis.All())
	if err != nil {
		log.Fatal(err)
	}
	writeVetx()
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s\n", f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
