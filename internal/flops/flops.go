// Package flops meters floating-point work.
//
// It has two halves:
//
//   - A runtime Counter that hot kernels (matmul, conv, vector ops) add to.
//     The FL core threads one Counter per client so Table V's "total GFLOPs
//     of feedforward and attaching operations" can be measured rather than
//     guessed.
//
//   - The analytic attaching-cost model of the paper's Appendix A
//     (Table VIII): closed-form per-round FLOP and communication overhead of
//     each method's extra operations, parameterised by K (local iterations),
//     M (batch size), n (local samples), |w| (parameter count) and the
//     model's per-sample forward/backward cost.
package flops

import (
	"fmt"
	"sync/atomic"
)

// Counter accumulates floating-point operations. It is safe for concurrent
// use; hot loops should batch their adds (one Add per kernel call, not per
// scalar op).
type Counter struct {
	n atomic.Int64
}

// Add records n floating-point operations.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.n.Add(n)
}

// Total returns the operations recorded so far.
func (c *Counter) Total() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Reset zeroes the counter.
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	c.n.Store(0)
}

// GFLOPs returns the total in units of 1e9 operations.
func (c *Counter) GFLOPs() float64 {
	return float64(c.Total()) / 1e9
}

// ModelCost is the analytic per-sample cost of one model, produced by
// internal/nn from the layer shapes (Table III).
type ModelCost struct {
	Params  int     // |w|: number of scalar parameters
	Forward float64 // FP: FLOPs for one sample's forward pass
	// Backward is the backprop cost for one sample. The standard
	// approximation (used by the paper implicitly via "FP+BP") is
	// Backward ~= 2*Forward.
	Backward float64
}

// CommBytesFloat64 returns the bytes needed to ship the parameters once at
// float64 precision (this library's native precision).
func (m ModelCost) CommBytesFloat64() int64 { return int64(m.Params) * 8 }

// CommBytesFloat32 returns the bytes for float32 transport, matching the
// paper's Table III "Communication (MB)" column (PyTorch ships float32).
func (m ModelCost) CommBytesFloat32() int64 { return int64(m.Params) * 4 }

// RoundParams parameterises Appendix A's per-round attaching-cost formulas.
type RoundParams struct {
	K int // local iterations per round (batches per epoch x epochs)
	M int // batch size
	N int // local data samples at the client
	P int // number of historical models MOON keeps (paper uses 1)
}

// MethodCost is one row of Table VIII: the extra work a method performs on
// top of plain FedAvg local SGD, per communication round per client.
type MethodCost struct {
	Method string
	// AttachFLOPs is the FLOP count of the method's attaching operations.
	AttachFLOPs float64
	// ExtraCommFactor is the additional communication volume in units of
	// |w| transfers (FedAvg's own 2|w| up+down is the baseline and not
	// counted). SCAFFOLD and MimeLite ship an extra 2|w|.
	ExtraCommFactor float64
}

// AttachCost returns the Appendix A analytic cost for the named method.
// Method names follow the package algos registry: "fedavg", "fedprox",
// "fedtrip", "moon", "feddyn", "slowmo", "scaffold", "feddane", "mimelite".
func AttachCost(method string, mc ModelCost, rp RoundParams) (MethodCost, error) {
	k := float64(rp.K)
	m := float64(rp.M)
	n := float64(rp.N)
	w := float64(mc.Params)
	fp := mc.Forward
	bp := mc.Backward
	p := float64(rp.P)
	if p == 0 {
		p = 1
	}
	switch method {
	case "fedavg":
		return MethodCost{Method: method}, nil
	case "fedprox":
		// mu*(w - w_global): one subtract + one axpy over |w|, K times.
		return MethodCost{Method: method, AttachFLOPs: 2 * k * w}, nil
	case "fedtrip":
		// (w - w_global) and xi*(w_hist - w): two subtracts + two axpys.
		return MethodCost{Method: method, AttachFLOPs: 4 * k * w}, nil
	case "feddyn":
		// -h_k + alpha*(w - w_global): same vector-op count as FedTrip.
		return MethodCost{Method: method, AttachFLOPs: 4 * k * w}, nil
	case "slowmo":
		// Server-side slow momentum: 4|w| per round, independent of K.
		return MethodCost{Method: method, AttachFLOPs: 4 * w}, nil
	case "moon":
		// (1+p) extra forward passes per batch element, K batches of M.
		return MethodCost{Method: method, AttachFLOPs: k * m * (1 + p) * fp}, nil
	case "scaffold":
		// 2(K+1)|w| control-variate math + full-batch gradient n(FP+BP),
		// plus 2|w| extra communication (c up and down).
		return MethodCost{Method: method, AttachFLOPs: 2*(k+1)*w + n*(fp+bp), ExtraCommFactor: 2}, nil
	case "feddane":
		// Gradient-correction term: 2K|w| vector ops + one full-batch
		// gradient n(FP+BP), plus an extra gradient exchange 2|w|.
		return MethodCost{Method: method, AttachFLOPs: 2*k*w + n*(fp+bp), ExtraCommFactor: 2}, nil
	case "mimelite":
		// Full-batch gradient at the received model: n(FP+BP); server
		// optimizer state shipped both ways: 2|w|.
		return MethodCost{Method: method, AttachFLOPs: n * (fp + bp), ExtraCommFactor: 2}, nil
	case "fedgkd":
		// One teacher forward pass per batch element (half of MOON's
		// (1+p) passes).
		return MethodCost{Method: method, AttachFLOPs: k * m * fp}, nil
	case "fednova":
		// Server-side normalised averaging: ~4|w| per round.
		return MethodCost{Method: method, AttachFLOPs: 4 * w}, nil
	}
	return MethodCost{}, fmt.Errorf("flops: unknown method %q", method)
}

// Methods lists every method AttachCost understands, in the order the
// paper's tables present them (paper methods first, appendix extras and
// related-work extensions after).
func Methods() []string {
	return []string{"fedtrip", "fedavg", "fedprox", "slowmo", "moon", "feddyn", "scaffold", "feddane", "mimelite", "fedgkd", "fednova"}
}

// TrainFLOPsPerRound returns the analytic total FLOPs one client spends in
// one communication round: K batches of M samples through forward+backward,
// plus the method's attaching operations.
func TrainFLOPsPerRound(method string, mc ModelCost, rp RoundParams) (float64, error) {
	att, err := AttachCost(method, mc, rp)
	if err != nil {
		return 0, err
	}
	base := float64(rp.K) * float64(rp.M) * (mc.Forward + mc.Backward)
	return base + att.AttachFLOPs, nil
}
