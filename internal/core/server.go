package core

import (
	"fmt"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Result summarises a federated run.
type Result struct {
	// Algorithm is the method's registry name.
	Algorithm string
	// Rounds actually executed (may be fewer than Config.Rounds when
	// StopAtTarget fires).
	Rounds int
	// Accuracy[t] is the global model's test accuracy after round t+1
	// (NaN for rounds skipped by EvalEvery).
	Accuracy []float64
	// TrainLoss[t] is the mean local training loss across the selected
	// clients in round t+1.
	TrainLoss []float64
	// GFLOPsByRound[t] is the cumulative training cost (all clients'
	// forward+backward+attaching FLOPs) through round t+1, in GFLOPs.
	GFLOPsByRound []float64
	// CommBytesByRound[t] is the cumulative client<->server traffic
	// through round t+1 (float32 model transfers, as in the paper).
	CommBytesByRound []int64
	// TargetAccuracy echoes the config; RoundsToTarget is the first round
	// whose evaluation reached it (-1 if never reached).
	TargetAccuracy float64
	RoundsToTarget int
	// BestAccuracy is the highest test accuracy observed (Fig. 7 metric).
	BestAccuracy float64
	// FinalAccuracy is the mean accuracy over the last 10 evaluated
	// rounds (Fig. 6 metric).
	FinalAccuracy float64
}

// TotalGFLOPs returns the cumulative training cost of the whole run.
func (r *Result) TotalGFLOPs() float64 {
	if len(r.GFLOPsByRound) == 0 {
		return 0
	}
	return r.GFLOPsByRound[len(r.GFLOPsByRound)-1]
}

// GFLOPsToTarget returns the cumulative cost through the round that
// reached the target accuracy (Table V), or the full-run cost if the
// target was never reached.
func (r *Result) GFLOPsToTarget() float64 {
	if r.RoundsToTarget > 0 && r.RoundsToTarget <= len(r.GFLOPsByRound) {
		return r.GFLOPsByRound[r.RoundsToTarget-1]
	}
	return r.TotalGFLOPs()
}

// CommBytesToTarget returns cumulative traffic through the target round
// (or the whole run if the target was never reached).
func (r *Result) CommBytesToTarget() int64 {
	if r.RoundsToTarget > 0 && r.RoundsToTarget <= len(r.CommBytesByRound) {
		return r.CommBytesByRound[r.RoundsToTarget-1]
	}
	if len(r.CommBytesByRound) == 0 {
		return 0
	}
	return r.CommBytesByRound[len(r.CommBytesByRound)-1]
}

// Server owns the global model and the client population for one run.
type Server struct {
	cfg       Config
	clients   []*Client
	global    []float64
	evalModel *nn.Model
	rng       *rand.Rand
}

// NewServer builds the population and the initial global model.
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	global, err := cfg.Model.Build(cfg.Seed)
	if err != nil {
		return nil, err
	}
	evalModel, err := cfg.Model.Build(cfg.Seed)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		global:    global.ParamsCopy(),
		evalModel: evalModel,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
	for k, part := range cfg.Parts {
		c, err := newClient(&s.cfg, k, part, cfg.Seed+1000+int64(k))
		if err != nil {
			return nil, err
		}
		s.clients = append(s.clients, c)
	}
	return s, nil
}

// Global returns the current global parameter vector (live slice).
func (s *Server) Global() []float64 { return s.global }

// Clients returns the population (read-mostly; used by tests and the
// Fig. 2 harness).
func (s *Server) Clients() []*Client { return s.clients }

// selectClients draws K distinct clients uniformly at random, matching the
// paper's random selection.
func (s *Server) selectClients() []*Client {
	perm := s.rng.Perm(len(s.clients))
	sel := make([]*Client, s.cfg.ClientsPerRound)
	for i := range sel {
		sel[i] = s.clients[perm[i]]
	}
	return sel
}

// aggregate applies Eq. 2 with a_k = |D_k| / |D_St| unless the algorithm
// overrides aggregation.
func (s *Server) aggregate(round int, updates []Update) {
	if agg, ok := s.cfg.Algo.(Aggregator); ok {
		next := agg.Aggregate(round, s.global, updates)
		copy(s.global, next)
		return
	}
	weights := make([]float64, len(updates))
	vecs := make([][]float64, len(updates))
	var total float64
	for i, u := range updates {
		weights[i] = float64(u.NumSamples)
		vecs[i] = u.Params
		total += weights[i]
	}
	for i := range weights {
		weights[i] /= total
	}
	tensor.WeightedSumInto(s.global, weights, vecs)
}

// EvaluateGlobal computes test accuracy of the current global model.
func (s *Server) EvaluateGlobal() float64 {
	return EvaluateAccuracy(s.evalModel, s.global, s.cfg.Test, 200)
}

// EvaluateAccuracy loads params into model and computes accuracy over the
// dataset in batches.
func EvaluateAccuracy(model *nn.Model, params []float64, ds interface {
	Len() int
	SampleSize() int
	FillBatch(x *tensor.Tensor, labels []int, idx []int)
}, batch int) float64 {
	model.SetParams(params)
	n := ds.Len()
	if n == 0 {
		return 0
	}
	correct := 0.0
	idx := make([]int, 0, batch)
	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		idx = idx[:0]
		for i := start; i < end; i++ {
			idx = append(idx, i)
		}
		shape := append([]int{len(idx)}, model.InShape()...)
		x := tensor.New(shape...)
		labels := make([]int, len(idx))
		ds.FillBatch(x, labels, idx)
		logits := model.Forward(x, false)
		correct += nn.Accuracy(logits, labels) * float64(len(idx))
	}
	return correct / float64(n)
}

// Run executes the full federated training loop and collects metrics.
func Run(cfg Config) (*Result, error) {
	s, err := NewServer(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// Run executes the configured number of communication rounds.
func (s *Server) Run() (*Result, error) {
	cfg := &s.cfg
	res := &Result{
		Algorithm:      cfg.Algo.Name(),
		TargetAccuracy: cfg.TargetAccuracy,
		RoundsToTarget: -1,
	}
	commPerClient := int64(4 * len(s.global)) // float32 transfer, one way
	extraComm := 0.0
	if cc, ok := cfg.Algo.(CommCoster); ok {
		extraComm = cc.ExtraCommFactor()
	}
	var cumComm int64
	var lastAcc float64
	for t := 1; t <= cfg.Rounds; t++ {
		selected := s.selectClients()
		if pr, ok := cfg.Algo.(PreRounder); ok {
			pr.PreRound(t, selected, s.global)
		}
		// Local training in parallel (the paper's "clients in St perform
		// local model training ... in parallel").
		updates := parallel.Map(len(selected), func(i int) Update {
			c := selected[i]
			global := s.global
			if cfg.Transport != nil {
				global = cfg.Transport.Down(c.ID, t, global)
			}
			u := c.LocalTrain(t, global)
			if cfg.Transport != nil {
				u.Params = cfg.Transport.Up(c.ID, t, u.Params)
			}
			return u
		})
		if cfg.OnUpdates != nil {
			cfg.OnUpdates(t, s.global, updates)
		}
		s.aggregate(t, updates)
		if !tensor.AllFinite(s.global) {
			return res, fmt.Errorf("core: %s diverged at round %d (non-finite global model)", cfg.Algo.Name(), t)
		}

		var lossSum float64
		for _, u := range updates {
			lossSum += u.TrainLoss
		}
		res.TrainLoss = append(res.TrainLoss, lossSum/float64(len(updates)))

		// Communication accounting: down + up per selected client, plus
		// method extras.
		cumComm += int64(float64(len(selected)) * (2 + extraComm) * float64(commPerClient))
		res.CommBytesByRound = append(res.CommBytesByRound, cumComm)

		// FLOP accounting: sum of client counters (cumulative by design).
		var fl int64
		for _, c := range s.clients {
			fl += c.Counter.Total()
		}
		res.GFLOPsByRound = append(res.GFLOPsByRound, float64(fl)/1e9)

		acc := lastAcc
		if t%cfg.EvalEvery == 0 || t == cfg.Rounds {
			acc = s.EvaluateGlobal()
			lastAcc = acc
		}
		res.Accuracy = append(res.Accuracy, acc)
		if acc > res.BestAccuracy {
			res.BestAccuracy = acc
		}
		if cfg.TargetAccuracy > 0 && res.RoundsToTarget < 0 && acc >= cfg.TargetAccuracy {
			res.RoundsToTarget = t
		}
		if cfg.Logf != nil {
			cfg.Logf("round %3d/%d algo=%s acc=%.4f loss=%.4f gflops=%.2f", t, cfg.Rounds, cfg.Algo.Name(), acc, res.TrainLoss[t-1], res.GFLOPsByRound[t-1])
		}
		if cfg.OnRound != nil {
			cfg.OnRound(t, s)
		}
		res.Rounds = t
		if cfg.StopAtTarget && res.RoundsToTarget > 0 {
			break
		}
	}
	// Final accuracy: mean over the last up-to-10 recorded rounds.
	k := len(res.Accuracy)
	lo := k - 10
	if lo < 0 {
		lo = 0
	}
	var sum float64
	for _, a := range res.Accuracy[lo:] {
		sum += a
	}
	if k > lo {
		res.FinalAccuracy = sum / float64(k-lo)
	}
	return res, nil
}
