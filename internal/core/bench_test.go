package core

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// BenchmarkAggregate measures Eq. 2 weighted averaging of 10 CNN-sized
// updates — the server's per-round vector work.
func BenchmarkAggregate(b *testing.B) {
	const n = 61706 // paper CNN |w|
	rng := rand.New(rand.NewSource(1))
	updates := make([]Update, 10)
	for i := range updates {
		p := make([]float64, n)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		updates[i] = Update{Params: p, NumSamples: 100 + i}
	}
	dst := make([]float64, n)
	weights := make([]float64, len(updates))
	vecs := make([][]float64, len(updates))
	var total float64
	for i, u := range updates {
		weights[i] = float64(u.NumSamples)
		vecs[i] = u.Params
		total += weights[i]
	}
	for i := range weights {
		weights[i] /= total
	}
	b.SetBytes(int64(n * len(updates) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.WeightedSumInto(dst, weights, vecs)
	}
}

// BenchmarkFedTripTransform measures the triplet gradient transform on a
// CNN-sized vector — the paper's 4|w| attaching operation.
func BenchmarkFedTripTransform(b *testing.B) {
	cfg := benchConfig(b)
	f := NewFedTrip(0.4)
	cfg.Algo = f
	s, err := NewServer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	c := s.Clients()[0]
	global := s.Global()
	f.BeginRound(c, 2, global)
	c.Hist = make([]float64, c.NumParams())
	copy(c.Hist, global)
	c.SetScalar("fedtrip.xi", 0.5)
	w := c.Model().Params()
	g := make([]float64, len(w))
	b.SetBytes(int64(4 * len(w) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.TransformGrad(c, 2, w, g)
	}
}

// BenchmarkLocalTrainRound measures one client's full local round (MLP,
// 80 samples, batch 10) under FedTrip, including the steady-state
// upload-buffer recycling the server performs after each merge.
func BenchmarkLocalTrainRound(b *testing.B) {
	cfg := benchConfig(b)
	cfg.Algo = NewFedTrip(0.4)
	s, err := NewServer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	c := s.Clients()[0]
	global := s.Global()
	scratch := make([]Update, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch[0] = c.LocalTrain(i+1, global)
		recycleUpdates(scratch)
	}
}

func benchConfig(b *testing.B) Config {
	b.Helper()
	cfg, err := benchConfigErr()
	if err != nil {
		b.Fatal(err)
	}
	return cfg
}
