// Package prng is the runtime's serializable pseudo-random source. Every
// stochastic choice a federated run makes — client selection, mini-batch
// shuffling, latency draws, device sampling, churn, weight initialisation —
// flows through a prng.Rand instead of math/rand, because a run must be a
// serializable value: checkpoint/resume needs to export the exact position
// of every stream and restore it bit-for-bit, which math/rand.Rand (617
// words of hidden lagged-Fibonacci state, no accessors) cannot do.
//
// The generator is splitmix64 (Steele, Lea & Flood, "Fast Splittable
// Pseudorandom Number Generators", OOPSLA 2014): one uint64 of state, a
// fixed Weyl increment, and a 3-round finalizer. It passes BigCrush, its
// entire state is one word (plus one buffered Gaussian for NormFloat64's
// pair-generating polar method), and seeding is trivially collision-
// resistant under the mixing function — which is what the seed-stream
// registry in internal/core relies on.
//
// A Rand is NOT safe for concurrent use, exactly like math/rand.Rand.
package prng

import (
	"encoding/binary"
	"fmt"
	"math"
)

// State is the full exportable position of one stream: the splitmix64
// counter plus NormFloat64's buffered second Gaussian. Restoring a State
// continues the stream bit-for-bit.
type State struct {
	S        uint64
	Spare    float64
	HasSpare bool
}

// Rand is a deterministic splitmix64 stream.
type Rand struct {
	s        uint64
	spare    float64
	hasSpare bool
}

// New returns a stream seeded with seed. Distinct seeds give statistically
// independent streams; use Mix to derive seeds from names and indices.
func New(seed int64) *Rand {
	return &Rand{s: uint64(seed)}
}

// Reseed resets the stream to the exact state New(seed) returns, without
// allocating. It is the scratch-Rand primitive behind stateless per-
// entity derivation: a caller holding one Rand can re-seed it per lookup
// (device speed, latency base, fault class of client k) instead of
// materializing a fleet-wide array or allocating a Rand per query.
func (r *Rand) Reseed(seed int64) {
	r.s = uint64(seed)
	r.spare = 0
	r.hasSpare = false
}

// Mix scrambles x through the splitmix64 finalizer. It is the seed-
// derivation primitive: Mix(seed ^ Mix(nameHash + index)) spreads any
// structured input over the full 64-bit space.
func Mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// fnv64a is the FNV-1a hash of s (inlined, allocation-free; the constants
// are the standard FNV-64 parameters).
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// StreamSeed derives the seed of the named stream (name, k) under the
// given run seed. Two mixing rounds separate the (name, k) space from the
// run-seed space, so structured inputs (small seeds, sequential indices)
// still land uniformly in 64 bits. This is the one seed-derivation rule
// shared by every named stream in the repository: internal/core's seed
// registry and the experiment harnesses both resolve names through it, so
// streams are independent by construction instead of by offset hygiene.
//
// Stream names are part of the deterministic-run contract: renaming a
// stream changes its seed and therefore every trajectory downstream of
// it. The fedtripvet seedstream analyzer enforces that call sites pass
// names registered in the package's seeds.go.
func StreamSeed(runSeed int64, name string, k int) int64 {
	h := Mix(fnv64a(name) + uint64(k)*0x9E3779B97F4A7C15)
	return int64(Mix(uint64(runSeed) ^ h))
}

// Stream returns a fresh PRNG positioned at the start of the k-th
// instance of the named stream (k = 0 for unindexed streams).
func Stream(runSeed int64, name string, k int) *Rand {
	return New(StreamSeed(runSeed, name, k)) //fedtripvet:allow registry trampoline: name is the caller's registered constant
}

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63 returns a uniform int64 in [0, 1<<63).
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform int in [0, n). It panics if n <= 0. Masked
// rejection sampling keeps the distribution exactly uniform with a
// bounded expected draw count (< 2).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	if n&(n-1) == 0 { // power of two
		return int(r.Uint64() & uint64(n-1))
	}
	mask := uint64(1)
	for mask < uint64(n) {
		mask = mask<<1 | 1
	}
	for {
		v := r.Uint64() & mask
		if v < uint64(n) {
			return int(v)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal deviate via the polar
// (Marsaglia) method. The method produces Gaussians in pairs; the spare
// is buffered and is part of the exportable State, so a snapshot taken
// between the two halves of a pair still resumes bit-for-bit.
func (r *Rand) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// ExpFloat64 returns an exponential deviate with mean 1 by inversion.
func (r *Rand) ExpFloat64() float64 {
	// 1-Float64() is in (0, 1], so the log is finite.
	return -math.Log(1 - r.Float64())
}

// Perm returns a uniform permutation of [0, n) (Fisher–Yates, inside-out),
// drawing exactly n Intn calls.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 0; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements via swap (Fisher–
// Yates, top-down), drawing exactly n-1 Intn calls. It panics if n < 0,
// matching math/rand.Shuffle.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("prng: Shuffle with negative n")
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// State exports the stream's exact position.
func (r *Rand) State() State {
	return State{S: r.s, Spare: r.spare, HasSpare: r.hasSpare}
}

// SetState restores a position exported by State.
func (r *Rand) SetState(st State) {
	r.s, r.spare, r.hasSpare = st.S, st.Spare, st.HasSpare
}

// stateWireSize is the encoded size of a State: counter, spare, flag.
const stateWireSize = 8 + 8 + 1

// MarshalBinary encodes the stream position (17 bytes, little endian).
func (st State) MarshalBinary() ([]byte, error) {
	buf := make([]byte, stateWireSize)
	binary.LittleEndian.PutUint64(buf[0:], st.S)
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(st.Spare))
	if st.HasSpare {
		buf[16] = 1
	}
	return buf, nil
}

// UnmarshalBinary decodes a position written by MarshalBinary.
func (st *State) UnmarshalBinary(b []byte) error {
	if len(b) != stateWireSize {
		return fmt.Errorf("prng: state wants %d bytes, got %d", stateWireSize, len(b))
	}
	st.S = binary.LittleEndian.Uint64(b[0:])
	st.Spare = math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	switch b[16] {
	case 0:
		st.HasSpare = false
	case 1:
		st.HasSpare = true
	default:
		return fmt.Errorf("prng: corrupt state flag %d", b[16])
	}
	return nil
}
