package nn

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/tensor"
)

// Model checkpoint format:
//
//	magic    [4]byte  "FTCK"
//	version  uint8    currently 1
//	params   tensor vector ("FTV1" + count + float64 values)
//
// The magic/version envelope lets the format grow (and lets readers say
// precisely why a file is unreadable) without guessing from the payload.
// LoadParams also accepts the bare pre-envelope "FTV1" vector that early
// checkpoints were, so old -save files keep loading.
const (
	checkpointMagic   = "FTCK"
	checkpointVersion = 1
)

// SaveParams writes the model's parameter vector as a checkpoint (full
// float64 precision) under the versioned FTCK envelope.
func (m *Model) SaveParams(w io.Writer) error {
	if _, err := w.Write([]byte(checkpointMagic)); err != nil {
		return err
	}
	if _, err := w.Write([]byte{checkpointVersion}); err != nil {
		return err
	}
	return tensor.WriteVector(w, m.params)
}

// LoadParams restores a checkpoint written by SaveParams. Wrong-magic,
// wrong-version, and truncated files fail with errors naming the defect;
// the stored vector must match the model's parameter count exactly —
// loading an MLP checkpoint into a CNN is an error, not a silent
// truncation. The model is never mutated on a failed load.
func (m *Model) LoadParams(r io.Reader) error {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("nn: truncated checkpoint: %w", err)
	}
	switch string(magic[:]) {
	case checkpointMagic:
		var ver [1]byte
		if _, err := io.ReadFull(r, ver[:]); err != nil {
			return fmt.Errorf("nn: truncated checkpoint: %w", err)
		}
		if ver[0] != checkpointVersion {
			return fmt.Errorf("nn: checkpoint version %d, this build reads version %d", ver[0], checkpointVersion)
		}
	case "FTV1":
		// Legacy envelope-less checkpoint: the magic we consumed is the
		// vector's own header, so hand it back to the vector reader.
		r = io.MultiReader(bytes.NewReader(magic[:]), r)
	default:
		return fmt.Errorf("nn: not a model checkpoint (magic %q, want %q)", magic[:], checkpointMagic)
	}
	v, err := tensor.ReadVector(r)
	if err != nil {
		return err
	}
	if len(v) != len(m.params) {
		return fmt.Errorf("nn: checkpoint has %d parameters, model has %d", len(v), len(m.params))
	}
	copy(m.params, v)
	return nil
}
