// Robustness study: Byzantine fault injection and robust aggregation.
//
// This example puts an adversarial fleet against four aggregation
// policies. A fifth of the clients sign-flip their trained models before
// upload and another 5% crash mid-upload (their update arrives as
// non-finite garbage). The plain FedAvg mean merges every finite upload
// and degrades; the coordinate-wise median and the trimmed mean shed the
// flipped extremes; the norm-clip guard pulls corrupted updates back
// onto a ball around the global model. Crash uploads never reach the
// model on any policy — the merge screen rejects and counts them.
//
//	go run ./examples/robustness
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
)

func main() {
	const (
		clients   = 10
		perClient = 60
		rounds    = 20
	)
	train, test, err := data.Generate(data.Spec{
		Kind: data.KindMNIST, Train: clients * perClient, Test: 300, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := partition.Partition(partition.Dirichlet(0.5), train.Y,
		train.Classes, clients, perClient, rand.New(rand.NewSource(5)))
	if err != nil {
		log.Fatal(err)
	}
	faults, err := core.ParseFaults("byz:0.2,signflip+crash:0.1")
	if err != nil {
		log.Fatal(err)
	}
	policies := []struct {
		label  string
		policy core.AggregationPolicy
	}{
		{"fedavg", &core.FedAvgPolicy{}},
		{"median", &core.MedianPolicy{}},
		// Frac 0.34 keeps g >= 1 even when the crash rejection shrinks a
		// 4-update merge to 3; at 0.25 a 3-update merge trims nothing.
		{"trimmedmean:0.34", &core.TrimmedMeanPolicy{Frac: 0.34}},
		{"fedavg+clip:1", core.WithNormClip(&core.FedAvgPolicy{}, 1)},
	}
	fmt.Printf("%-18s  %-8s  %-8s  %s\n", "policy", "honest", "attacked", "rejected")
	for _, p := range policies {
		honest, err := run(train, test, parts, nil, p.policy)
		if err != nil {
			log.Fatal(err)
		}
		attacked, err := run(train, test, parts, faults, p.policy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s  %-8.4f  %-8.4f  %d\n",
			p.label, honest.FinalAccuracy, attacked.FinalAccuracy, attacked.RejectedUpdates)
	}
	fmt.Println("\n(final accuracy after", rounds, "aggregations, MLP, buffered async;")
	fmt.Println(" attacked = byz:0.2,signflip+crash:0.1; rejected counts screened non-finite uploads)")
}

func run(train, test *data.Dataset, parts [][]int, faults *core.FaultModel, policy core.AggregationPolicy) (*core.Result, error) {
	spec := core.RunSpec{
		Config: core.Config{
			Model: nn.ModelSpec{
				Arch: nn.ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10,
			},
			Train: train, Test: test, Parts: parts,
			Rounds: 20, ClientsPerRound: 4,
			BatchSize: 10, LocalEpochs: 1,
			LR: 0.01, Momentum: 0.9,
			Algo: core.NewFedTrip(1.0), Seed: 13,
		},
		Runtime:     core.RuntimeAsync,
		Concurrency: 4,
		BufferSize:  4,
		Latency:     core.ExponentialLatency{Mean: 2},
		Policy:      policy,
		Faults:      faults,
	}
	return core.Start(spec)
}
