// Package optim provides the local optimizers the paper uses: plain SGD
// and SGD with momentum (SGDm). Optimizers operate on the flat parameter
// and gradient vectors exposed by internal/nn, i.e. they are the U(.) in
// Algorithm 1 line 8: w <- w - alpha * U(h).
package optim

import (
	"fmt"

	"repro/internal/tensor"
)

// Optimizer updates a parameter vector in place from a gradient vector.
type Optimizer interface {
	// Step applies one update: w <- w - lr * U(g). Implementations may
	// keep state (momentum buffers) sized to len(w) on first use.
	Step(w, g []float64)
	// Reset clears internal state (called when a client receives a fresh
	// global model at the start of a round). Because every local round
	// begins with Reset, optimizer state never crosses a round boundary —
	// the invariant that lets core run snapshots, which are taken at
	// round boundaries, omit optimizer state entirely.
	Reset()
	// Name identifies the optimizer for logging.
	Name() string
}

// Stateful is the optional inspection interface for optimizers that keep
// per-parameter slot state between Steps. Slots returns a copy of each
// named slot; a fresh or Reset optimizer reports all-zero (or empty)
// slots.
type Stateful interface {
	Slots() map[string][]float64
}

// SGD is vanilla stochastic gradient descent.
type SGD struct {
	LR float64
}

// NewSGD returns plain SGD with the given learning rate.
func NewSGD(lr float64) *SGD {
	if lr <= 0 {
		panic(fmt.Sprintf("optim: non-positive learning rate %v", lr))
	}
	return &SGD{LR: lr}
}

func (o *SGD) Step(w, g []float64) {
	tensor.Axpy(-o.LR, g, w)
}

func (o *SGD) Reset()       {}
func (o *SGD) Name() string { return "sgd" }

// SGDMomentum is SGD with (non-Nesterov) momentum, the paper's default
// local optimizer ("SGDm", lr 0.01, momentum 0.9).
type SGDMomentum struct {
	LR       float64
	Momentum float64
	buf      []float64
}

// NewSGDMomentum returns SGD with momentum.
func NewSGDMomentum(lr, momentum float64) *SGDMomentum {
	if lr <= 0 {
		panic(fmt.Sprintf("optim: non-positive learning rate %v", lr))
	}
	if momentum < 0 || momentum >= 1 {
		panic(fmt.Sprintf("optim: momentum %v outside [0,1)", momentum))
	}
	return &SGDMomentum{LR: lr, Momentum: momentum}
}

func (o *SGDMomentum) Step(w, g []float64) {
	if len(o.buf) != len(w) {
		o.buf = make([]float64, len(w))
	}
	m := o.Momentum
	for i := range o.buf {
		o.buf[i] = m*o.buf[i] + g[i]
	}
	tensor.Axpy(-o.LR, o.buf, w)
}

func (o *SGDMomentum) Reset() {
	tensor.ZeroVec(o.buf)
}

func (o *SGDMomentum) Name() string { return "sgdm" }

// Slots exposes the momentum buffer for inspection (Stateful). The
// returned slice is a copy; before the first Step it is empty.
func (o *SGDMomentum) Slots() map[string][]float64 {
	buf := make([]float64, len(o.buf))
	copy(buf, o.buf)
	return map[string][]float64{"momentum": buf}
}
