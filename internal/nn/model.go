package nn

import (
	"fmt"

	"repro/internal/flops"
	"repro/internal/prng"
	"repro/internal/tensor"
)

// Builder assembles a Model layer by layer. Methods are chainable; errors
// are deferred to Build so construction code stays linear.
type Builder struct {
	inShape []int
	layers  []Layer
	err     error
}

// NewBuilder starts a model whose per-sample input shape is inShape
// (e.g. 784 for a flat vector, or 1, 28, 28 for CHW images).
func NewBuilder(inShape ...int) *Builder {
	b := &Builder{inShape: append([]int(nil), inShape...)}
	if len(inShape) == 0 {
		b.fail(fmt.Errorf("nn: empty input shape"))
	}
	for _, d := range inShape {
		if d <= 0 {
			b.fail(fmt.Errorf("nn: non-positive input dim in %v", inShape))
		}
	}
	return b
}

func (b *Builder) add(l Layer) {
	b.layers = append(b.layers, l)
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build resolves shapes, allocates the flat parameter and gradient vectors,
// binds every layer, and initialises weights deterministically from seed.
func (b *Builder) Build(seed int64) (*Model, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.layers) == 0 {
		return nil, fmt.Errorf("nn: model has no layers")
	}
	shape := b.inShape
	var total int
	var fwd float64
	featureDim := numel(shape)
	for i, l := range b.layers {
		if i == len(b.layers)-1 {
			featureDim = numel(shape)
		}
		out, err := l.Resolve(shape)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d (%s): %w", i, l.Name(), err)
		}
		total += l.ParamCount()
		fwd += l.FwdFLOPs()
		shape = out
	}
	if len(shape) != 1 {
		return nil, fmt.Errorf("nn: model output shape %v is not flat (missing Flatten/Dense head?)", shape)
	}
	m := &Model{
		layers:     b.layers,
		inShape:    append([]int(nil), b.inShape...),
		outDim:     shape[0],
		featureDim: featureDim,
		params:     make([]float64, total),
		grads:      make([]float64, total),
		rng:        prng.New(seed),
		fwdFLOPs:   fwd,
	}
	off := 0
	for _, l := range b.layers {
		n := l.ParamCount()
		l.Bind(m.params[off:off+n], m.grads[off:off+n], m.rng)
		off += n
	}
	return m, nil
}

// Model is a feed-forward network with all parameters in one flat vector.
// A Model is NOT safe for concurrent use: each federated client owns its
// own instances.
type Model struct {
	layers     []Layer
	inShape    []int
	outDim     int
	featureDim int
	params     []float64
	grads      []float64
	rng        *prng.Rand
	fwdFLOPs   float64
	counter    *flops.Counter
	features   *tensor.Tensor // input to the final layer, cached by Forward
}

// Params returns the live flat parameter vector. Mutating it mutates the
// model (this is how optimizers and FL aggregation work).
func (m *Model) Params() []float64 { return m.params }

// Grads returns the live flat gradient vector.
func (m *Model) Grads() []float64 { return m.grads }

// NumParams returns |w|.
func (m *Model) NumParams() int { return len(m.params) }

// OutDim returns the classifier width (number of classes).
func (m *Model) OutDim() int { return m.outDim }

// InShape returns the per-sample input shape.
func (m *Model) InShape() []int { return m.inShape }

// ZeroGrad clears the gradient vector.
func (m *Model) ZeroGrad() { tensor.ZeroVec(m.grads) }

// SetParams copies src into the model's parameters.
func (m *Model) SetParams(src []float64) {
	tensor.CopyInto(m.params, src)
}

// ParamsCopy returns a fresh copy of the parameter vector.
func (m *Model) ParamsCopy() []float64 {
	c := make([]float64, len(m.params))
	copy(c, m.params)
	return c
}

// SetCounter installs a FLOP counter; nil disables metering.
func (m *Model) SetCounter(c *flops.Counter) { m.counter = c }

// Cost returns the analytic per-sample cost (Table III row).
func (m *Model) Cost() flops.ModelCost {
	return flops.ModelCost{
		Params:   len(m.params),
		Forward:  m.fwdFLOPs,
		Backward: 2 * m.fwdFLOPs,
	}
}

// Forward runs the network on a batch x of shape [N, inShape...] and
// returns the logits [N, classes]. The representation (input to the final
// layer) is cached and available via Features until the next Forward.
func (m *Model) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dim(0) <= 0 {
		panic("nn: empty batch")
	}
	h := x
	for i, l := range m.layers {
		if i == len(m.layers)-1 {
			m.features = h
		}
		h = l.Forward(h, train)
	}
	m.counter.Add(int64(float64(x.Dim(0)) * m.fwdFLOPs))
	return h
}

// Features returns the representation cached by the last Forward call:
// the input to the model's final layer. MOON's model-contrastive loss is
// computed on these vectors. The returned tensor is shaped [N, D].
func (m *Model) Features() *tensor.Tensor {
	if m.features == nil {
		panic("nn: Features called before Forward")
	}
	f := m.features
	n := f.Dim(0)
	return f.Reshape(n, f.Numel()/n)
}

// FeatureDim returns the width of the representation Features returns
// (the final layer's per-sample input size).
func (m *Model) FeatureDim() int { return m.featureDim }

// Backward backpropagates dLogits [N, classes] through the network,
// accumulating into Grads. If extraFeatureGrad is non-nil it is added to
// the gradient flowing into the representation (the final layer's input);
// this is the hook MOON uses to inject the model-contrastive term without
// an autograd system. Callers must ZeroGrad first if they want fresh
// gradients.
func (m *Model) Backward(dLogits *tensor.Tensor, extraFeatureGrad *tensor.Tensor) {
	last := len(m.layers) - 1
	g := m.layers[last].Backward(dLogits)
	if extraFeatureGrad != nil {
		if g.Numel() != extraFeatureGrad.Numel() {
			panic(fmt.Sprintf("nn: extra feature grad %v incompatible with %v", extraFeatureGrad.Shape(), g.Shape()))
		}
		tensor.Axpy(1, extraFeatureGrad.Data, g.Data)
	}
	for i := last - 1; i >= 0; i-- {
		g = m.layers[i].Backward(g)
	}
	m.counter.Add(int64(float64(dLogits.Dim(0)) * 2 * m.fwdFLOPs))
}

// NumLayers returns the number of layers (diagnostics).
func (m *Model) NumLayers() int { return len(m.layers) }
