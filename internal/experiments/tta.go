package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/stats"
)

// runTTA derives the paper's resource-efficiency comparison (the
// rounds/GFLOPs/communication framing of Tables IV-VI) in *time to
// accuracy* under a straggler fleet, through the unified RunSpec facade:
// the same methods run on the lock-step barrier runtime (every round pays
// the slowest selected client) and on the buffered async runtime under
// the FedBuff and FedAsync aggregation policies, all priced by the same
// latency model. Columns report resources spent until the adaptive target
// accuracy: aggregation rounds, training GFLOPs, communication MB, and
// simulated wall-clock seconds, plus the wall-clock speedup over the
// synchronous barrier.
//
// The latency model defaults to a straggler fleet (every 3rd client 10x
// slower, the regime where lock-step rounds pay the straggler tax) and
// follows the profile's -latency override when one is set.
func runTTA(p Profile, logf Logf) ([]*Table, error) {
	latency := p.Latency
	if latency == "" || latency == "zero" {
		latency = "straggler:1,10,3"
	}
	// Methods must be client-side only: the buffered async runtime cannot
	// run server-hook methods, and falling back to barrier would make the
	// policy columns vacuous.
	methods := []string{"fedtrip", "fedavg", "fedprox"}
	type variant struct {
		label   string
		runtime core.Runtime
		policy  string
	}
	// Policies are pinned explicitly (the barrier baseline to fedavg) so
	// a profile-level -policy override cannot silently contaminate the
	// baseline the adaptive target and speedup column calibrate against.
	variants := []variant{
		{"sync barrier", core.RuntimeBarrier, "fedavg"},
		{"async fedbuff", core.RuntimeAsync, "fedbuff"},
		{"async fedasync", core.RuntimeAsync, "fedasync"},
	}
	perRound := p.PerRound
	buffer := p.Buffer
	if buffer == 0 {
		// Merge at half-round granularity so the buffered runtime
		// genuinely decouples from the lock-step cadence.
		buffer = max(1, perRound/2)
	}
	baseCase := func(method string, v variant) Case {
		c := Case{
			Kind:    data.KindMNIST,
			Arch:    nn.ArchMLP,
			Scheme:  partition.Dirichlet(0.5),
			Algo:    method,
			Params:  DefaultParams(method, nn.ArchMLP, data.KindMNIST),
			Runtime: v.runtime,
			Latency: latency,
			Policy:  v.policy,
			Buffer:  buffer,
		}
		// Rounds counts aggregations on the buffered runtime, and one
		// aggregation merges `buffer` updates where a barrier round
		// merges K — scale the budget so every variant trains the same
		// total number of client updates. Ceiling division: a buffer
		// that does not divide the update budget rounds the aggregation
		// count up (never down to a silent 0, which Profile.Run would
		// read as "no override").
		if v.runtime == core.RuntimeAsync {
			updatesPerAgg := buffer
			if v.policy == "fedasync" {
				updatesPerAgg = 1
			}
			c.Rounds = (p.Rounds*perRound + updatesPerAgg - 1) / updatesPerAgg
		}
		return c
	}
	// The target self-calibrates from the FedAvg barrier baseline, like
	// the round tables do.
	fedavgRef, err := p.RunTrials(baseCase("fedavg", variants[0]), logf)
	if err != nil {
		return nil, err
	}
	target := adaptiveTarget(fedavgRef)

	t := &Table{
		ID:    "tta",
		Title: "Time to accuracy under stragglers (MLP/MNIST, Dir-0.5): barrier vs FedBuff vs FedAsync",
		Headers: []string{
			"Method", "Runtime/Policy", "Aggs to target", "GFLOPs", "Comm MB", "Sim time (s)", "Speedup",
		},
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("latency %s, buffer %d; adaptive target %.4f (0.97x FedAvg barrier final)", latency, buffer, target),
		"speedup = barrier sim-time / variant sim-time for the same method (shown only when both reached the target; >marks: target not reached, full-run resources shown)",
	)
	sweep, err := runTTASweep(p, logf, latency, target, perRound)
	if err != nil {
		return nil, err
	}
	for _, method := range methods {
		var barrierTime float64
		barrierReached := false
		for _, v := range variants {
			results, err := p.RunTrials(baseCase(method, v), logf)
			if err != nil {
				return nil, err
			}
			var aggs, gflops, mb, simTime []float64
			reached := true
			for _, r := range results {
				rt, ok := roundsToTargetClamped(r, target)
				if !ok {
					reached = false
				}
				aggs = append(aggs, float64(rt))
				gflops = append(gflops, r.GFLOPsByRound[rt-1])
				mb = append(mb, float64(r.CommBytesByRound[rt-1])/1e6)
				simTime = append(simTime, r.SimTimeByRound[rt-1])
			}
			meanTime := stats.Mean(simTime)
			if v.runtime == core.RuntimeBarrier {
				barrierTime = meanTime
				barrierReached = reached
			}
			mark := ""
			if !reached {
				mark = ">"
			}
			// The ratio only means "time-to-accuracy speedup" when both
			// sides actually reached the target; a censored side would
			// silently mix full-run time into an exact-looking number.
			speedup := "-"
			if v.runtime != core.RuntimeBarrier && meanTime > 0 && reached && barrierReached {
				speedup = fmt.Sprintf("%.1fx", barrierTime/meanTime)
			}
			t.AddRow(method, v.label,
				mark+fmt.Sprintf("%.0f", stats.Mean(aggs)),
				mark+fmt.Sprintf("%.2f", stats.Mean(gflops)),
				mark+fmt.Sprintf("%.2f", stats.Mean(mb)),
				mark+fmt.Sprintf("%.1f", meanTime),
				speedup)
		}
	}
	return []*Table{t, sweep}, nil
}

// runTTASweep is the aggregation-policy hyperparameter column of the tta
// comparison: FedTrip alone, on the buffered async runtime under the
// same straggler fleet and adaptive target, sweeping FedAsync's mixing
// rate alpha against FedBuff's buffer size K — plus the
// importance-weighted buffer and a server-LR schedule, so
// ImportancePolicy and WithServerLR are exercised by a registered table
// rather than unit tests alone. Budgets stay update-equalized: every row
// trains the same total number of client updates.
func runTTASweep(p Profile, logf Logf, latency string, target float64, perRound int) (*Table, error) {
	type row struct {
		label, policy, serverLR string
		// updatesPerAgg is how many client updates one aggregation
		// consumes (FedAsync merges every single arrival).
		updatesPerAgg int
	}
	rows := []row{
		{"fedbuff K=1", "fedbuff", "", 1},
		{"fedbuff K=2", "fedbuff", "", 2},
		{"fedbuff K=4", "fedbuff", "", 4},
		{"fedasync a=0.3", "fedasync:0.3", "", 1},
		{"fedasync a=0.6", "fedasync:0.6", "", 1},
		{"fedasync a=0.9", "fedasync:0.9", "", 1},
		{"importance b=0.1 K=2", "importance:0.1", "", 2},
		{"fedbuff K=2, lr=invsqrt", "fedbuff", "invsqrt:1", 2},
	}
	t := &Table{
		ID:      "tta-sweep",
		Title:   "Policy sweep under stragglers (FedTrip): FedAsync alpha vs FedBuff K, importance weights, server-LR",
		Headers: []string{"Policy", "Aggs to target", "Sim time (s)", "Final acc"},
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("latency %s, update-budget-equalized; same adaptive target %.4f as the tta table", latency, target),
		"importance = loss-weighted FedBuff buffer (beta 0.1); lr=invsqrt = server rate 1/sqrt(t) on merge",
	)
	totalUpdates := p.Rounds * perRound
	for _, r := range rows {
		c := Case{
			Kind:     data.KindMNIST,
			Arch:     nn.ArchMLP,
			Scheme:   partition.Dirichlet(0.5),
			Algo:     "fedtrip",
			Params:   DefaultParams("fedtrip", nn.ArchMLP, data.KindMNIST),
			Runtime:  core.RuntimeAsync,
			Latency:  latency,
			Policy:   r.policy,
			ServerLR: r.serverLR,
			Buffer:   r.updatesPerAgg,
			Rounds:   (totalUpdates + r.updatesPerAgg - 1) / r.updatesPerAgg,
		}
		results, err := p.RunTrials(c, logf)
		if err != nil {
			return nil, err
		}
		var aggs, simTime, final []float64
		reached := true
		for _, res := range results {
			rt, ok := roundsToTargetClamped(res, target)
			if !ok {
				reached = false
			}
			aggs = append(aggs, float64(rt))
			simTime = append(simTime, res.SimTimeByRound[rt-1])
			final = append(final, res.FinalAccuracy)
		}
		mark := ""
		if !reached {
			mark = ">"
		}
		t.AddRow(r.label,
			mark+fmt.Sprintf("%.0f", stats.Mean(aggs)),
			mark+fmt.Sprintf("%.1f", stats.Mean(simTime)),
			fmt.Sprintf("%.4f", stats.Mean(final)))
	}
	return t, nil
}
