package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The loader type-checks packages against compiler export data instead
// of re-type-checking dependency source: `go list -export -deps -json`
// compiles (or reuses from the build cache) every dependency's export
// file, and the standard library's gc importer reads them back. This is
// exactly how `go vet` feeds its analyzers, works fully offline, and
// costs milliseconds per package once the build cache is warm — where
// re-checking the net/http tree from source would cost tens of seconds
// per run.

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
}

// GoList runs `go list -export -deps -json` for the patterns in dir and
// returns the export-data map (import path -> export file) plus the
// directly matched packages in deterministic order.
func GoList(dir string, patterns ...string) (map[string]string, []*listPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=Dir,ImportPath,Name,Export,Standard,DepOnly,GoFiles",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// Cgo-free file lists keep loads identical across hosts; nothing in
	// this repository uses cgo.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	exports := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	return exports, targets, nil
}

// NewImporter returns a types.Importer that resolves every import
// through lookup (an export-data reader keyed by import path). The
// "unsafe" package is handled by the type checker before the importer is
// consulted.
func NewImporter(fset *token.FileSet, lookup func(path string) (io.ReadCloser, error)) types.Importer {
	return importer.ForCompiler(fset, "gc", lookup)
}

// ExportLookup adapts an import-path -> export-file map (with an
// optional import-path remapping, as the vet protocol supplies) into the
// lookup function NewImporter wants.
func ExportLookup(exports, importMap map[string]string) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
}

// ParseFiles parses the named files (joined onto dir when relative) with
// comments retained.
func ParseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Check type-checks one package's parsed files, resolving imports via
// imp, and returns the package with the object/type resolution the
// analyzers need.
func Check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// Load lists, parses, and type-checks every package matching the
// patterns (run from dir, which must be inside the module).
func Load(dir string, patterns ...string) ([]*Package, error) {
	exports, targets, err := GoList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := NewImporter(fset, ExportLookup(exports, nil))
	var pkgs []*Package
	for _, t := range targets {
		files, err := ParseFiles(fset, t.Dir, t.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", t.ImportPath, err)
		}
		tp, info, err := Check(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Syntax:     files,
			Types:      tp,
			TypesInfo:  info,
		})
	}
	return pkgs, nil
}
