package runserver

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/trace"
)

func testSpec(t *testing.T, rounds int) core.RunSpec {
	t.Helper()
	train, test, err := data.Generate(data.Spec{Kind: data.KindMNIST, Train: 400, Test: 150, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := partition.Partition(partition.Dirichlet(0.5), train.Y, train.Classes, 6, 60, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	return core.RunSpec{
		Config: core.Config{
			Model:           nn.ModelSpec{Arch: nn.ArchMLP, Channels: 1, Height: 28, Width: 28, Classes: 10},
			Train:           train,
			Test:            test,
			Parts:           parts,
			Rounds:          rounds,
			ClientsPerRound: 3,
			BatchSize:       20,
			LocalEpochs:     1,
			LR:              0.01,
			Momentum:        0.9,
			Algo:            core.NewFedTrip(0.4),
			Seed:            1,
		},
		Runtime:     core.RuntimeAsync,
		Concurrency: 4,
		BufferSize:  2,
		Latency:     core.ExponentialLatency{Mean: 2},
	}
}

// TestServeLiveRun drives a run behind the HTTP surface: /status and
// /metrics report live progress, /checkpoint mid-run yields a snapshot
// that resumes to the exact same trajectory as an uninterrupted run.
func TestServeLiveRun(t *testing.T) {
	spec := testSpec(t, 8)
	full, err := core.Start(spec)
	if err != nil {
		t.Fatal(err)
	}

	// The trace hook only observes updates, so the served run keeps the
	// exact trajectory (and snapshot fingerprint) of the plain run.
	served := spec
	collector := trace.NewCollector()
	served.OnUpdates = collector.Hook()
	rs, err := core.NewRunState(served)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	ctrl := New(rs, collector)
	srv := httptest.NewServer(ctrl.Handler())
	defer srv.Close()

	type runOut struct {
		res *core.Result
		err error
	}
	out := make(chan runOut, 1)
	go func() {
		res, err := ctrl.Run(context.Background())
		out <- runOut{res, err}
	}()

	// Poll /status until at least one round has completed.
	var st Status
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/status")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Round >= 1 || st.Done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run made no progress")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Algorithm != "fedtrip" || st.Runtime != "async" || st.TotalRounds != 8 {
		t.Fatalf("status %+v", st)
	}

	// /checkpoint mid-run (or at completion; either boundary must work).
	resp, err := http.Get(srv.URL + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/checkpoint: %d %s", resp.StatusCode, ckpt)
	}

	// /metrics decodes as a Result.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var live core.Result
	err = json.NewDecoder(resp.Body).Decode(&live)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if live.Algorithm != "fedtrip" {
		t.Fatalf("live metrics algorithm %q", live.Algorithm)
	}

	// /trace serves whole-round CSV.
	resp, err = http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	csv, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "round,") {
		t.Fatalf("trace CSV starts %q", string(csv[:min(len(csv), 40)]))
	}

	r := <-out
	if r.err != nil {
		t.Fatalf("run: %v", r.err)
	}
	if r.res.Digest() != full.Digest() {
		t.Fatal("served run diverged from plain Start")
	}

	// The mid-run checkpoint resumes to the identical trajectory.
	rs2, err := core.Resume(bytes.NewReader(ckpt), core.ResumeSpec{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := rs2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Digest() != full.Digest() {
		t.Fatalf("resumed digest %s, want %s", resumed.Digest(), full.Digest())
	}
}

// TestGracefulShutdown cancels the loop mid-run, checkpoints the stopped
// run (the SIGTERM path), and proves the resumed process finishes with a
// trajectory bit-for-bit equal to the uninterrupted run.
func TestGracefulShutdown(t *testing.T) {
	spec := testSpec(t, 8)
	full, err := core.Start(spec)
	if err != nil {
		t.Fatal(err)
	}

	rs, err := core.NewRunState(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	// Advance a few rounds, then cancel before the loop starts.
	for i := 0; i < 3; i++ {
		if _, err := rs.Step(); err != nil {
			t.Fatal(err)
		}
	}
	ctrl := New(rs, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ctrl.Run(ctx); err != context.Canceled {
		t.Fatalf("cancelled Run returned %v", err)
	}
	st := ctrl.Status()
	if st.Round != 3 || st.Done {
		t.Fatalf("status after cancel %+v", st)
	}

	var ckpt bytes.Buffer
	if err := ctrl.Checkpoint(&ckpt); err != nil {
		t.Fatalf("checkpoint after cancel: %v", err)
	}
	rs2, err := core.Resume(bytes.NewReader(ckpt.Bytes()), core.ResumeSpec{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := rs2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Digest() != full.Digest() {
		t.Fatalf("resumed digest %s, want %s", resumed.Digest(), full.Digest())
	}
}
