package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/nn"
	"repro/internal/prng"
	"repro/internal/tensor"
)

// Result summarises a federated run (synchronous or asynchronous; for the
// async runtime "round" means one buffered aggregation).
type Result struct {
	// Algorithm is the method's registry name.
	Algorithm string
	// Rounds actually executed (may be fewer than Config.Rounds when
	// StopAtTarget fires).
	Rounds int
	// Accuracy[t] is the global model's test accuracy after round t+1.
	// Rounds skipped by EvalEvery carry the last evaluated value forward
	// (0 before the first evaluation).
	Accuracy []float64
	// TrainLoss[t] is the mean local training loss across the selected
	// clients in round t+1.
	TrainLoss []float64
	// GFLOPsByRound[t] is the cumulative training cost (all clients'
	// forward+backward+attaching FLOPs) through round t+1, in GFLOPs.
	GFLOPsByRound []float64
	// CommBytesByRound[t] is the cumulative client<->server traffic
	// through round t+1. When the configured Transport implements
	// MeteredTransport these are the actually-encoded wire bytes (plus
	// analytic method extras); otherwise the paper's analytic float32
	// accounting is used.
	CommBytesByRound []int64
	// SimTimeByRound[t] is the simulated wall-clock time (seconds under
	// the configured LatencyModel) at the end of round t+1. Only the
	// asynchronous runtime fills it; nil for Server.Run.
	SimTimeByRound []float64
	// MeanStalenessByRound[t] is the mean staleness (aggregations elapsed
	// since dispatch) of the updates merged in round t+1. Only the
	// asynchronous runtime fills it; nil for Server.Run.
	MeanStalenessByRound []float64
	// DroppedUpdates counts in-flight updates lost to permanently
	// dropped clients (the churn process's mass-dropout injector). Their
	// training FLOPs still meter — the device burned them before dying —
	// but nothing was merged.
	DroppedUpdates int
	// RejectedUpdates counts uploads the merge path zero-weighted out for
	// being non-finite (divergence, nan/crash faults). Unlike a dropped
	// update, a rejected one arrived — its FLOPs and wire bytes are in
	// the totals — but the server refused to let it touch the model.
	RejectedUpdates int
	// TargetAccuracy echoes the config; RoundsToTarget is the first round
	// whose evaluation reached it (-1 if never reached).
	TargetAccuracy float64
	RoundsToTarget int
	// BestAccuracy is the highest test accuracy observed (Fig. 7 metric).
	BestAccuracy float64
	// FinalAccuracy is the mean accuracy over the last up-to-10
	// actually-evaluated rounds (Fig. 6 metric). Rounds that EvalEvery
	// skipped do not contribute — carrying stale values forward would
	// bias the mean toward whatever round happened to precede a gap.
	FinalAccuracy float64
}

// TotalGFLOPs returns the cumulative training cost of the whole run.
func (r *Result) TotalGFLOPs() float64 {
	if len(r.GFLOPsByRound) == 0 {
		return 0
	}
	return r.GFLOPsByRound[len(r.GFLOPsByRound)-1]
}

// GFLOPsToTarget returns the cumulative cost through the round that
// reached the target accuracy (Table V), or the full-run cost if the
// target was never reached.
func (r *Result) GFLOPsToTarget() float64 {
	if r.RoundsToTarget > 0 && r.RoundsToTarget <= len(r.GFLOPsByRound) {
		return r.GFLOPsByRound[r.RoundsToTarget-1]
	}
	return r.TotalGFLOPs()
}

// CommBytesToTarget returns cumulative traffic through the target round
// (or the whole run if the target was never reached).
func (r *Result) CommBytesToTarget() int64 {
	if r.RoundsToTarget > 0 && r.RoundsToTarget <= len(r.CommBytesByRound) {
		return r.CommBytesByRound[r.RoundsToTarget-1]
	}
	if len(r.CommBytesByRound) == 0 {
		return 0
	}
	return r.CommBytesByRound[len(r.CommBytesByRound)-1]
}

// Digest returns a short hex fingerprint over every metric series at
// full bit precision (FNV-1a over the float64 bit patterns). Two runs
// have equal digests exactly when their trajectories are bit-for-bit
// identical — the CI kill/resume smoke test compares an uninterrupted
// run against snapshot+resume with it.
func (r *Result) Digest() string {
	h := fnv.New64a()
	var b [8]byte
	u64 := func(v uint64) { binary.LittleEndian.PutUint64(b[:], v); h.Write(b[:]) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	u64(uint64(r.Rounds))
	u64(uint64(r.DroppedUpdates))
	u64(uint64(r.RejectedUpdates))
	u64(uint64(int64(r.RoundsToTarget)))
	f64(r.BestAccuracy)
	f64(r.FinalAccuracy)
	for _, s := range [][]float64{r.Accuracy, r.TrainLoss, r.GFLOPsByRound, r.SimTimeByRound, r.MeanStalenessByRound} {
		u64(uint64(len(s)))
		for _, v := range s {
			f64(v)
		}
	}
	u64(uint64(len(r.CommBytesByRound)))
	for _, v := range r.CommBytesByRound {
		u64(uint64(v))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// TimeToTarget returns the simulated wall-clock time at which the target
// accuracy was reached, or the full-run time if it never was (0 when the
// run has no simulated clock).
func (r *Result) TimeToTarget() float64 {
	if len(r.SimTimeByRound) == 0 {
		return 0
	}
	if r.RoundsToTarget > 0 && r.RoundsToTarget <= len(r.SimTimeByRound) {
		return r.SimTimeByRound[r.RoundsToTarget-1]
	}
	return r.SimTimeByRound[len(r.SimTimeByRound)-1]
}

// Server owns the global model and the client population for one run.
type Server struct {
	cfg       Config
	clients   []*Client
	global    []float64
	evalModel *nn.Model
	rng       *prng.Rand
	// policy is the aggregation policy Start resolved for this run; nil
	// (the legacy Run/NewServer path) behaves as FedAvgPolicy. clip and
	// robust are installPolicy's resolution of the decorator chain: the
	// norm-clip guard and the leaf robust aggregator (median/trimmed
	// mean/krum), nil when absent.
	policy AggregationPolicy
	clip   *NormClipPolicy
	robust AggregationPolicy
	// Adversary state (installFaults; nil in honest runs): per-client
	// fault assignment, the fault model that produced it, and the noise
	// clients' private RNGs (positions serialize through snapshots).
	faults     []faultClass
	faultModel *FaultModel
	advRng     []*prng.Rand
	// rejectedUpdates counts non-finite uploads screened out of merges
	// (mirrored into Result.RejectedUpdates each round); rejectLogged
	// makes the warning one-shot.
	rejectedUpdates int
	rejectLogged    bool
	// mergeScratch is the reusable weighted-average buffer for rated
	// merges (eta != 1). Merges are single-threaded in every runtime
	// (the sync loop and the async event loop both aggregate with no
	// concurrent merge), so one buffer suffices; FedAsync-style
	// single-arrival runs merge every aggregation and would otherwise
	// allocate a model-sized slice per merge.
	mergeScratch []float64
	// Per-round scratch reused across the run (all touched only from the
	// single-threaded round/event loop): selection permutation and picks,
	// dispatch jobs, gathered updates, and aggregation weights/vector
	// headers.
	selPerm    []int
	selPicks   []*Client
	jobScratch []*trainJob
	updScratch []Update
	aggWeights []float64
	aggVecs    [][]float64
	// Robust-merge scratch (adversary.go): admitted vector headers, the
	// per-coordinate sort column, the krum distance matrix and scores.
	robVecs  [][]float64
	robCol   []float64
	robDist  []float64
	robScore []float64
}

// NewServer builds the population and the initial global model. Clients
// are thin registry entries (data handle, history, meters) — the training
// machinery lives in per-shard engines — so populations of 10k+ construct
// in milliseconds and idle clients cost almost nothing.
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	global, err := cfg.Model.Build(streamSeed(cfg.Seed, streamModel, 0))
	if err != nil {
		return nil, err
	}
	evalModel, err := cfg.Model.Build(streamSeed(cfg.Seed, streamModel, 0))
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		global:    global.ParamsCopy(),
		evalModel: evalModel,
		rng:       seedStream(cfg.Seed, streamSelection),
	}
	numParams := global.NumParams()
	loaner := &engineLoaner{cfg: &s.cfg}
	for k, part := range cfg.Parts {
		c := newClient(&s.cfg, k, part, streamSeed(cfg.Seed, streamClient, k))
		c.numParams = numParams
		c.loan = loaner
		s.clients = append(s.clients, c)
	}
	return s, nil
}

// Global returns the current global parameter vector (live slice).
func (s *Server) Global() []float64 { return s.global }

// Clients returns the population (read-mostly; used by tests and the
// Fig. 2 harness).
func (s *Server) Clients() []*Client { return s.clients }

// selectClients draws K distinct clients uniformly at random, matching the
// paper's random selection. Config.Validate rejects K > N at construction;
// the clamp here is defence in depth so a mutated config degrades to full
// participation instead of an index-out-of-range panic. The returned
// slice is server scratch, valid until the next call.
func (s *Server) selectClients() []*Client {
	k := s.cfg.ClientsPerRound
	if k > len(s.clients) {
		k = len(s.clients)
	}
	s.selPerm = randPermInto(s.rng, s.selPerm, len(s.clients))
	if cap(s.selPicks) < k {
		s.selPicks = make([]*Client, k)
	}
	sel := s.selPicks[:k]
	for i := range sel {
		sel[i] = s.clients[s.selPerm[i]]
	}
	return sel
}

// trainClient runs one client's participating round: ship the global model
// through the transport, train locally, ship the upload back. It is the
// unit of work both runtimes dispatch onto the shard pool (distinct
// clients own all their state; the engine is attached by the shard).
// steps caps the local mini-batch steps and speed is the client's device
// multiplier — both zero outside device-heterogeneity runs.
//
// The returned down/up are this dispatch's wire bytes: exact encoded
// sizes when the transport implements SizedTransport, the analytic dense
// float32 size (4 bytes/param each way) otherwise. The network pricer
// (RunSpec.Network) derives the dispatch's transfer durations from them.
func (s *Server) trainClient(c *Client, round int, global []float64, steps int, speed float64) (u Update, down, up int64) {
	cfg := &s.cfg
	st, sized := cfg.Transport.(SizedTransport)
	down = int64(4 * len(global))
	if sized {
		global, down = st.DownSized(c.ID, round, global)
	} else if cfg.Transport != nil {
		global = cfg.Transport.Down(c.ID, round, global)
	}
	if speed > 0 {
		c.SetScalar(ScalarDeviceSpeed, speed)
	}
	u = c.LocalTrainSteps(round, global, steps)
	// Byzantine corruption happens here — after training (the FLOPs were
	// really burned) and before the transport encodes the upload (the
	// corrupted vector is what rides, and prices, the wire). Downstream
	// the fault flows through staleness, churn, and buffering exactly
	// like an honest update.
	s.applyFault(c, &u)
	up = int64(4 * len(u.Params))
	if cfg.Transport != nil {
		var enc []float64
		if sized {
			enc, up = st.UpSized(c.ID, round, u.Params)
		} else {
			enc = cfg.Transport.Up(c.ID, round, u.Params)
		}
		if len(enc) == len(u.Params) {
			if &enc[0] != &u.Params[0] {
				// Copy the transport's result into the pooled buffer
				// instead of adopting its slice: the transport may retain
				// (and later mutate) what it returned, and a foreign slice
				// must never enter the pool.
				copy(u.Params, enc)
			}
		} else {
			if u.pooled {
				paramsPool.put(u.Params)
			}
			u.Params = enc
			u.pooled = false
		}
	}
	return u, down, up
}

// trainSelected trains the selected clients on the shard pool (the paper's
// "clients in St perform local model training ... in parallel") and
// returns their updates in selection order, plus the round's measured
// wire traffic. The returned slice is server scratch, valid until the
// next round gathers into it.
func (s *Server) trainSelected(round int, selected []*Client, sp *shardPool) ([]Update, int64) {
	jobs := s.growJobs(len(selected))
	for i, c := range selected {
		// All jobs read the same pre-aggregation global; no writer until
		// every one of them has joined below.
		j := jobs[i]
		j.c, j.round, j.global = c, round, s.global
		sp.submit(j)
	}
	updates := s.growUpdates(len(selected))
	var wire int64
	for i, j := range jobs {
		<-j.done
		updates[i] = j.update
		j.update = Update{}
		wire += j.downBytes + j.upBytes
	}
	return updates, wire
}

// growJobs returns n reusable trainJobs (built once, re-armed per round:
// the done channel is buffered and drained by the waiter, so a job object
// can carry any number of dispatches).
func (s *Server) growJobs(n int) []*trainJob {
	for len(s.jobScratch) < n {
		s.jobScratch = append(s.jobScratch, &trainJob{done: make(chan struct{}, 1)})
	}
	return s.jobScratch[:n]
}

// growUpdates returns a length-n update gather buffer.
func (s *Server) growUpdates(n int) []Update {
	if cap(s.updScratch) < n {
		s.updScratch = make([]Update, n)
	}
	return s.updScratch[:n]
}

// aggregate merges one synchronous round. An Algorithm's Aggregator
// override wins; otherwise the run's aggregation policy supplies the
// weights and the merge rate. The nil policy of the legacy Run path is
// FedAvgPolicy — Eq. 2's a_k = |D_k| / |D_St| with full replacement —
// bit-for-bit the historical arithmetic.
func (s *Server) aggregate(round int, updates []Update) {
	if agg, ok := s.cfg.Algo.(Aggregator); ok {
		next := agg.Aggregate(round, s.global, updates)
		copy(s.global, next)
		return
	}
	pol := s.policy
	if pol == nil {
		pol = &FedAvgPolicy{}
	}
	weights := s.growWeights(len(updates))
	for i, u := range updates {
		weights[i] = pol.Weight(u)
	}
	s.aggregateWeightedRate(weights, updates, pol.MergeRate(round, updates))
}

// growWeights returns a length-n aggregation-weight buffer (server
// scratch, single-threaded merge path).
func (s *Server) growWeights(n int) []float64 {
	if cap(s.aggWeights) < n {
		s.aggWeights = make([]float64, n)
	}
	return s.aggWeights[:n]
}

// aggregateWeightedRate normalises the given weights, forms the weighted
// average of the updates, and moves the global model toward it by the
// server learning rate eta: global' = global + eta*(avg - global). Every
// runtime funnels through it: the synchronous server with data-size
// weights, the asynchronous one with policy weights (a rate of exactly 1
// takes the historical replace-with-average path bit-for-bit). A
// fully-discounted buffer (all weights 0 — e.g. a hard staleness cutoff,
// or every update rejected as non-finite) or a zero rate contributes
// nothing rather than dividing the model into NaNs.
//
// Before any weight is consumed the buffer passes the graceful-
// degradation screen (screenUpdates): non-finite uploads are
// zero-weighted and counted, surviving updates are norm-clipped when a
// clip guard is configured. A robust policy (median/trimmed mean/krum)
// then replaces the weighted average with its estimator over the
// admitted updates, at the same merge rate.
func (s *Server) aggregateWeightedRate(weights []float64, updates []Update, eta float64) {
	s.screenUpdates(weights, updates)
	if cap(s.aggVecs) < len(updates) {
		s.aggVecs = make([][]float64, len(updates))
	}
	vecs := s.aggVecs[:len(updates)]
	var total float64
	for i, u := range updates {
		vecs[i] = u.Params
		total += weights[i]
	}
	if total <= 0 || eta == 0 {
		return
	}
	if s.robust != nil {
		s.mergeRobust(weights, vecs, eta)
		return
	}
	for i := range weights {
		weights[i] /= total
	}
	if eta == 1 {
		tensor.WeightedSumInto(s.global, weights, vecs)
		return
	}
	avg := s.mergeBuf()
	tensor.WeightedSumInto(avg, weights, vecs)
	for i := range s.global {
		s.global[i] += eta * (avg[i] - s.global[i])
	}
}

// EvaluateGlobal computes test accuracy of the current global model.
func (s *Server) EvaluateGlobal() float64 {
	return EvaluateAccuracy(s.evalModel, s.global, s.cfg.Test, 200)
}

// EvaluateAccuracy loads params into model and computes accuracy over the
// dataset in batches.
func EvaluateAccuracy(model *nn.Model, params []float64, ds evalDataset, batch int) float64 {
	model.SetParams(params)
	n := ds.Len()
	if n == 0 {
		return 0
	}
	if batch > n {
		batch = n
	}
	correct := 0.0
	idx := make([]int, 0, batch)
	x := tensor.New(append([]int{batch}, model.InShape()...)...)
	labels := make([]int, batch)
	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		idx = idx[:0]
		for i := start; i < end; i++ {
			idx = append(idx, i)
		}
		if x.Dim(0) != len(idx) {
			x.SetDim0(len(idx))
		}
		ds.FillBatch(x, labels[:len(idx)], idx)
		logits := model.Forward(x, false)
		correct += nn.Accuracy(logits, labels[:len(idx)]) * float64(len(idx))
	}
	return correct / float64(n)
}

// recorder accumulates per-round metrics into a Result. It is the half of
// the round machinery shared verbatim by the synchronous and asynchronous
// runtimes, so the two produce directly comparable (and, in the async
// runtime's barrier mode, bit-for-bit identical) metric streams.
//
// Evaluation runs on the off-loop evaluator: record submits a snapshot of
// the global model and keeps going, and finalize joins every pending
// evaluation before the accuracy series and its summary metrics are
// assembled. The exception is an early-stopping run (StopAtTarget with a
// positive target): there the loop's control flow depends on the current
// round's accuracy, so record blocks for it — exactly the old inline
// semantics.
type recorder struct {
	s             *Server
	res           *Result
	commPerClient int64
	extraComm     float64
	cumComm       int64
	wirePending   int64
	lastMeasured  int64
	ev            *evaluator
	blocking      bool
	prevEval      int     // newest round submitted for evaluation before this one
	lastSubmitted int     // newest round ever submitted for evaluation
	lastAcc       float64 // latest known accuracy (exact when blocking)
	finalized     bool
}

func newRecorder(s *Server) (*recorder, error) {
	ev, err := newEvaluator(&s.cfg)
	if err != nil {
		return nil, err
	}
	r := &recorder{
		s: s,
		res: &Result{
			Algorithm:      s.cfg.Algo.Name(),
			TargetAccuracy: s.cfg.TargetAccuracy,
			RoundsToTarget: -1,
		},
		commPerClient: int64(4 * len(s.global)), // float32 transfer, one way
		ev:            ev,
		blocking:      s.cfg.StopAtTarget && s.cfg.TargetAccuracy > 0,
	}
	if cc, ok := s.cfg.Algo.(CommCoster); ok {
		r.extraComm = cc.ExtraCommFactor()
	}
	return r, nil
}

// addWire credits one processed dispatch's measured wire traffic
// (download + upload) to the next recorded round. The runners call it as
// each arrival is processed in virtual-time order — including dropped
// arrivals, whose bytes moved even though nothing merged — which makes
// measured comm accounting deterministic (and snapshot/resume-exact): it
// depends on the event order, never on how far physical training has
// raced ahead of the virtual clock.
func (r *recorder) addWire(bytes int64) { r.wirePending += bytes }

// commDelta returns the traffic added by one round that merged nUpdates
// uploads. A SizedTransport's exact per-dispatch bytes (accumulated via
// addWire) win; a legacy MeteredTransport without per-transfer sizes
// falls back to diffing its cumulative counters (deterministic only when
// every transfer joins before record — the sync and barrier runtimes);
// otherwise the analytic down+up float32 formula is used. Method extras
// such as control variates stay analytic in every case — the Transport
// does not carry them.
func (r *recorder) commDelta(nUpdates int) int64 {
	extra := int64(float64(nUpdates) * r.extraComm * float64(r.commPerClient))
	wire := r.wirePending
	r.wirePending = 0
	if _, ok := r.s.cfg.Transport.(SizedTransport); ok {
		return wire + extra
	}
	if mt, ok := r.s.cfg.Transport.(MeteredTransport); ok {
		down, up := mt.WireBytes()
		delta := down + up - r.lastMeasured
		r.lastMeasured = down + up
		return delta + extra
	}
	return int64(2*nUpdates)*r.commPerClient + extra
}

// record appends the metrics of one completed round t: mean training
// loss over the merged updates, cumulative communication, cumulative
// FLOPs, and (when due under EvalEvery, or on the final round) an
// evaluation submitted to the off-loop evaluator. It returns the latest
// known accuracy for progress logging; the per-round accuracy series is
// assembled in finalize once every evaluation has completed.
func (r *recorder) record(t, totalRounds int, updates []Update, flopsTotal int64) float64 {
	res := r.res
	var lossSum float64
	for _, u := range updates {
		lossSum += u.TrainLoss
	}
	res.TrainLoss = append(res.TrainLoss, lossSum/float64(len(updates)))
	res.RejectedUpdates = r.s.rejectedUpdates

	r.cumComm += r.commDelta(len(updates))
	res.CommBytesByRound = append(res.CommBytesByRound, r.cumComm)
	res.GFLOPsByRound = append(res.GFLOPsByRound, float64(flopsTotal)/1e9)
	res.Rounds = t

	due := t%r.s.cfg.EvalEvery == 0 || t == totalRounds
	if due {
		// Snapshot from the shared pool; the evaluator recycles it once
		// the accuracy is computed.
		r.ev.submit(t, paramsPool.getCopy(r.s.global))
		r.lastSubmitted = t
		if r.blocking {
			acc := r.ev.wait(t)
			r.lastAcc = acc
			if r.s.cfg.TargetAccuracy > 0 && res.RoundsToTarget < 0 && acc >= r.s.cfg.TargetAccuracy {
				res.RoundsToTarget = t
			}
			return acc
		}
	}
	// Progress accuracy for the non-blocking path: the newest evaluation
	// submitted before this round. It has had a full round of training to
	// complete, so this seldom blocks — and, unlike "whatever the
	// evaluator happens to have finished", it is deterministic: identical
	// runs print identical progress lines.
	if r.prevEval > 0 {
		r.lastAcc = r.ev.wait(r.prevEval)
	}
	if due {
		r.prevEval = t
	}
	return r.lastAcc
}

// finalize joins the evaluator and assembles the accuracy series: each
// round carries the last evaluated value forward (0 before the first
// evaluation), and the summary metrics are derived from the evaluated
// rounds only. Idempotent; every exit path of a run must reach it so the
// evaluator goroutine is released and partial results stay well-formed.
func (r *recorder) finalize() {
	if r.finalized {
		return
	}
	r.finalized = true
	r.ev.drain()
	res := r.res
	acc := 0.0
	var evalAccs []float64
	res.Accuracy = res.Accuracy[:0]
	for t := 1; t <= res.Rounds; t++ {
		if a, ok := r.ev.take(t); ok {
			acc = a
			evalAccs = append(evalAccs, a)
			if r.s.cfg.TargetAccuracy > 0 && res.RoundsToTarget < 0 && a >= r.s.cfg.TargetAccuracy {
				res.RoundsToTarget = t
			}
		}
		res.Accuracy = append(res.Accuracy, acc)
		if acc > res.BestAccuracy {
			res.BestAccuracy = acc
		}
	}
	lo := len(evalAccs) - 10
	if lo < 0 {
		lo = 0
	}
	if len(evalAccs) > lo {
		var sum float64
		for _, a := range evalAccs[lo:] {
			sum += a
		}
		res.FinalAccuracy = sum / float64(len(evalAccs)-lo)
	}
}

// finish completes the run's bookkeeping and returns the Result.
func (r *recorder) finish() *Result {
	r.finalize()
	return r.res
}

// syncEvals joins every evaluation submitted so far without stopping the
// evaluator goroutine (unlike finalize/drain, after which no further
// round can evaluate). The evaluator consumes submissions in FIFO order
// and publishes each before taking the next, so once the newest
// submitted round is present every earlier one is too. Snapshot uses
// this to make the published accuracy map complete at a round boundary.
func (r *recorder) syncEvals() {
	if r.lastSubmitted > 0 {
		r.ev.wait(r.lastSubmitted)
	}
}

// clientFlopsTotal sums every client's cumulative FLOP counter. Only
// valid when no client is mid-training (the synchronous barrier); the
// async runtime accumulates per-arrival deltas instead.
func (s *Server) clientFlopsTotal() int64 {
	var fl int64
	for _, c := range s.clients {
		fl += c.Counter.Total()
	}
	return fl
}

// Run executes the full synchronous federated training loop and collects
// metrics — the thin legacy wrapper over the RunSpec facade, equivalent
// to Start(RunSpec{Config: cfg}).
func Run(cfg Config) (*Result, error) {
	s, err := NewServer(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// Run executes the configured number of communication rounds by driving
// the stepper runner to completion (see runstate.go; RunState exposes the
// same loop one round at a time).
func (s *Server) Run() (*Result, error) {
	r, err := newSyncRunner(s)
	if err != nil {
		return nil, err
	}
	return runToCompletion(r)
}
