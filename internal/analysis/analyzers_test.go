package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestRandSource(t *testing.T) {
	a := analysis.NewRandSource()
	if err := a.Flags.Set("packages", "randsource"); err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, "testdata", a, "randsource")
}

func TestRandSourceSkipsUnguardedPackage(t *testing.T) {
	// Default package list: the fixture path is not in it, so even its
	// rand.New lines produce nothing.
	findings := analysistest.RunNoWant(t, "testdata", analysis.NewRandSource(), "randsource")
	if len(findings) != 0 {
		t.Fatalf("expected no findings outside guarded packages, got %v", findings)
	}
}

func TestSeedStream(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.NewSeedStream(), "seedstream")
}

func TestSeedStreamNoRegistry(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.NewSeedStream(), "seedstreamnoreg")
}

func TestMapRange(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.NewMapRange(), "maprange")
}

func TestHotPath(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.NewHotPath(), "hotpath")
}

// TestRepoClean is the meta-test behind the CI gate: the full fedtripvet
// suite must run clean over every package in this repository. A failure
// here means a change introduced raw randomness, an unregistered seed
// stream, ordering-sensitive serialization, or a hot-path allocation —
// fix the code or annotate it with a reviewable reason.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire repository; skipped in -short")
	}
	root := repoRoot(t)
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading repository packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	findings, err := analysis.AnalyzePackages(pkgs, analysis.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// repoRoot walks up from the test's working directory to go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}
