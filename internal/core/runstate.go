// RunState: the steppable form of a federated run.
//
// Historically each runtime was a monolithic loop (Server.Run, the async
// barrier and buffered loops) that could only be driven start-to-finish.
// Checkpoint/resume and the run-server both need finer control: advance
// exactly one round, observe the live metrics at the boundary, serialize
// the whole run, stop, and later continue bit-for-bit in a fresh process.
// RunState is that control surface. Each runtime is refactored into a
// runner — a struct holding the loop's formerly-local state (round
// counter, event heap, merge buffer, virtual clock) with a step() method
// that executes exactly one round/aggregation — and RunState fronts the
// three runners with one facade:
//
//	rs, _ := core.NewRunState(spec)
//	for {
//		done, err := rs.Step()       // one round
//		...
//		rs.Snapshot(w)               // serializable at every boundary
//		if done { break }
//	}
//	res := rs.Finish()
//
// Start(spec) is now literally NewRunState + Run, and the legacy
// Server.Run / AsyncServer.Run entrypoints drive the same runners, so
// every caller goes through one set of loop bodies.
package core

import (
	"fmt"

	"repro/internal/tensor"
)

// runner is one runtime's stepping engine. step executes exactly one
// round (sync/barrier) or one buffered aggregation (async) and reports
// whether the run is complete. Between step calls the run is at a round
// boundary: no merge in progress, metrics recorded through the last
// completed round. quiesce additionally joins any in-flight local
// training so the entire state is serializable; snapshotBody and
// restoreBody handle the runtime-specific live state (the common state —
// global model, clients, recorder — is handled by RunState).
type runner interface {
	step() (done bool, err error)
	quiesce()
	snapshotBody(w *snapWriter)
	restoreBody(r *snapReader) error
	server() *Server
	recorder() *recorder
	close()
}

// RunState is a federated run that can be advanced one round at a time,
// serialized at any round boundary (Snapshot), and reconstructed in a
// fresh process (Resume). It is not safe for concurrent use: Step,
// Snapshot, and the accessors must all be called from one goroutine
// (the run-server serializes HTTP access onto the step loop).
type RunState struct {
	spec   RunSpec
	run    runner
	done   bool
	closed bool
}

// NewRunState validates the spec and builds the run at round 0, training
// nothing yet. The caller must eventually call Close (Run does so
// itself).
func NewRunState(spec RunSpec) (*RunState, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return newRunState(spec)
}

// newRunState builds the runtime from a validated spec.
func newRunState(spec RunSpec) (*RunState, error) {
	if spec.Runtime == RuntimeSync {
		s, err := NewServer(spec.Config)
		if err != nil {
			return nil, err
		}
		s.installPolicy(spec.Policy)
		s.installFaults(spec.Faults)
		r, err := newSyncRunner(s)
		if err != nil {
			return nil, err
		}
		return &RunState{spec: spec, run: r}, nil
	}
	a, err := newAsyncServer(spec)
	if err != nil {
		return nil, err
	}
	var r runner
	if spec.Runtime == RuntimeBarrier {
		r, err = newBarrierRunner(a)
	} else {
		r, err = newBufferedRunner(a)
	}
	if err != nil {
		return nil, err
	}
	return &RunState{spec: spec, run: r}, nil
}

// Spec returns the resolved run specification (defaults filled, policy
// resolved).
func (rs *RunState) Spec() *RunSpec { return &rs.spec }

// Server exposes the underlying server (global model, clients,
// evaluation) for hooks and status reporting. Only touch it at round
// boundaries.
func (rs *RunState) Server() *Server { return rs.run.server() }

// Result returns the live, partially-filled Result. It is owned by the
// run: read it only at round boundaries, and treat it as read-only.
// Finish returns the completed version.
func (rs *RunState) Result() *Result { return rs.run.recorder().res }

// Round returns the number of completed rounds (buffered aggregations in
// the async runtime).
func (rs *RunState) Round() int { return rs.run.recorder().res.Rounds }

// Done reports whether the run has completed (or errored).
func (rs *RunState) Done() bool { return rs.done }

// LastAccuracy returns the latest known test accuracy (0 until the first
// evaluation completes). Unlike Result().Accuracy, which is assembled at
// Finish, it is live during the run — the run-server's /status reads it.
func (rs *RunState) LastAccuracy() float64 { return rs.run.recorder().lastAcc }

// async returns the async runtime handle, nil for the sync runtime.
func (rs *RunState) async() *AsyncServer {
	switch r := rs.run.(type) {
	case *barrierRunner:
		return r.a
	case *bufferedRunner:
		return r.a
	}
	return nil
}

// Now returns the virtual clock in simulated seconds (0 for the sync
// runtime, which has none).
func (rs *RunState) Now() float64 {
	if a := rs.async(); a != nil {
		return a.Now()
	}
	return 0
}

// Offline reports how many clients are currently offline or permanently
// dropped (0 without a churn process).
func (rs *RunState) Offline() int {
	if a := rs.async(); a != nil {
		return a.Offline()
	}
	return 0
}

// Step advances the run by one round (one buffered aggregation in the
// async runtime) and reports whether the run is complete. Calling Step
// on a completed run is a no-op returning true.
func (rs *RunState) Step() (bool, error) {
	if rs.done {
		return true, nil
	}
	done, err := rs.run.step()
	if done || err != nil {
		rs.done = true
	}
	return done, err
}

// Run drives the remaining rounds to completion and closes the run. On a
// divergence error the partially-filled Result is returned alongside the
// error, exactly like the legacy entrypoints.
func (rs *RunState) Run() (*Result, error) {
	defer rs.Close()
	for {
		done, err := rs.Step()
		if err != nil {
			return rs.run.recorder().res, err
		}
		if done {
			return rs.Finish(), nil
		}
	}
}

// Finish completes the run's bookkeeping (joining every pending
// evaluation) and returns the Result. Idempotent.
func (rs *RunState) Finish() *Result {
	rs.done = true
	return rs.run.recorder().finish()
}

// Close releases the run's resources: the shard pool's workers and the
// evaluator goroutine. Idempotent; safe to call on a half-finished run
// (the Result stays readable, Snapshot stays possible — worker tokens
// for joined jobs survive the pool).
func (rs *RunState) Close() {
	if rs.closed {
		return
	}
	rs.closed = true
	rs.run.close()
}

// runToCompletion drives a runner start-to-finish — the shared body of
// the legacy Server.Run / AsyncServer.Run entrypoints.
func runToCompletion(r runner) (*Result, error) {
	// close is deferred so the evaluator goroutine and the shard pool are
	// released even when a user callback or algorithm panics; finalize
	// (inside close) is idempotent and keeps partial results well-formed.
	defer r.close()
	for {
		done, err := r.step()
		if err != nil {
			return r.recorder().res, err
		}
		if done {
			return r.recorder().finish(), nil
		}
	}
}

// syncRunner is the paper's lock-step loop in stepper form: one step =
// select K clients, train them in parallel, aggregate, record.
type syncRunner struct {
	s   *Server
	rec *recorder
	sp  *shardPool
	t   int // completed rounds
}

func newSyncRunner(s *Server) (*syncRunner, error) {
	rec, err := newRecorder(s)
	if err != nil {
		return nil, err
	}
	return &syncRunner{
		s:   s,
		rec: rec,
		sp:  newShardPool(s, s.cfg.Shards, s.cfg.ClientsPerRound),
	}, nil
}

func (r *syncRunner) server() *Server     { return r.s }
func (r *syncRunner) recorder() *recorder { return r.rec }

// quiesce is a no-op: the sync loop joins every client inside step, so a
// round boundary has nothing in flight.
func (r *syncRunner) quiesce() {}

func (r *syncRunner) close() {
	r.sp.close()
	r.rec.finalize()
}

func (r *syncRunner) step() (bool, error) {
	s, cfg, rec, res := r.s, &r.s.cfg, r.rec, r.rec.res
	if r.t >= cfg.Rounds {
		return true, nil
	}
	t := r.t + 1
	selected := s.selectClients()
	if pr, ok := cfg.Algo.(PreRounder); ok {
		pr.PreRound(t, selected, s.global)
	}
	updates, wire := s.trainSelected(t, selected, r.sp)
	rec.addWire(wire)
	if cfg.OnUpdates != nil {
		cfg.OnUpdates(t, s.global, updates)
	}
	s.aggregate(t, updates)
	if !tensor.AllFinite(s.global) {
		return true, fmt.Errorf("core: %s diverged at round %d (non-finite global model)", cfg.Algo.Name(), t)
	}
	acc := rec.record(t, cfg.Rounds, updates, s.clientFlopsTotal())
	// The merge and metrics have consumed this round's uploads; their
	// buffers go back to the pool for the next round's checkouts.
	recycleUpdates(updates)
	if cfg.Logf != nil {
		cfg.Logf("round %3d/%d algo=%s acc=%.4f loss=%.4f gflops=%.2f", t, cfg.Rounds, cfg.Algo.Name(), acc, res.TrainLoss[t-1], res.GFLOPsByRound[t-1])
	}
	if cfg.OnRound != nil {
		cfg.OnRound(t, s)
	}
	r.t = t
	if cfg.StopAtTarget && res.RoundsToTarget > 0 {
		return true, nil
	}
	return t >= cfg.Rounds, nil
}
