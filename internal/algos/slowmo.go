package algos

import (
	"repro/internal/core"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// SlowMo (Wang et al., 2019) leaves local training untouched (plain SGD
// per the paper's setup) and applies slow server-side momentum to the
// aggregated pseudo-gradient:
//
//	d_t = w_{t-1} - avg_k w_k^t
//	m_t = beta * m_{t-1} + d_t
//	w_t = w_{t-1} - slowLR * m_t
//
// With beta=0 and slowLR=1 this reduces exactly to FedAvg.
type SlowMo struct {
	core.Base
	// Beta is the slow momentum coefficient.
	Beta float64
	// SlowLR is the server learning rate.
	SlowLR float64

	m []float64 // server momentum buffer, touched only in Aggregate
}

// Name implements core.Algorithm.
func (*SlowMo) Name() string { return "slowmo" }

// NewOptimizer implements core.OptimizerChooser: SlowMo's local optimizer
// is plain SGD (the slow momentum replaces local momentum).
func (*SlowMo) NewOptimizer(lr, momentum float64) optim.Optimizer {
	return optim.NewSGD(lr)
}

// Aggregate applies the slow momentum update. Cost: 4|w| per round
// (Table VIII row "SlowMo").
func (s *SlowMo) Aggregate(round int, global []float64, updates []core.Update) []float64 {
	n := len(global)
	if s.m == nil {
		s.m = make([]float64, n)
	}
	avg := make([]float64, n)
	weights := make([]float64, len(updates))
	vecs := make([][]float64, len(updates))
	var total float64
	for i, u := range updates {
		weights[i] = float64(u.NumSamples)
		vecs[i] = u.Params
		total += weights[i]
	}
	for i := range weights {
		weights[i] /= total
	}
	tensor.WeightedSumInto(avg, weights, vecs)
	next := make([]float64, n)
	for i := range next {
		s.m[i] = s.Beta*s.m[i] + (global[i] - avg[i])
		next[i] = global[i] - s.SlowLR*s.m[i]
	}
	return next
}
