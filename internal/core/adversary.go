// Adversarial fleets: Byzantine fault injection and the server's
// defenses.
//
// A FaultModel assigns each client a fault class from the dedicated
// "adversary" seed stream — one draw per client in ID order, so enabling
// (or resizing) the adversary never perturbs selection, latency, or any
// other stream, and a zero-fraction model reproduces the honest
// trajectory bit-for-bit. Faults apply at upload time, inside
// Server.trainClient: a Byzantine client really trains (its FLOPs meter,
// its wire bytes price), and its corrupted upload then flows through
// transports, staleness, and churn exactly like an honest one.
//
// The defenses live in the merge path (server.go): non-finite uploads
// are zero-weighted out of every merge and counted in
// Result.RejectedUpdates (graceful degradation — the run survives and
// reports, instead of dying at the divergence backstop), a NormClipPolicy
// decorator bounds each update's distance from the current global model,
// and the robust aggregation policies below (coordinate-wise median,
// trimmed mean, a multi-Krum selector) replace the weighted average with
// order statistics that a bounded Byzantine fraction cannot move far.
package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/prng"
	"repro/internal/tensor"
)

// faultClass is one client's assigned behaviour. The zero value is an
// honest client; the order is part of the FTRS snapshot format.
type faultClass uint8

const (
	faultNone faultClass = iota
	// faultSignFlip uploads the negated parameter vector.
	faultSignFlip
	// faultScale uploads the parameter vector magnified by Arg.
	faultScale
	// faultNoise perturbs every parameter with Arg * N(0,1) drawn from
	// the client's private adversary stream.
	faultNoise
	// faultNaN uploads non-finite parameters (rejected by the server's
	// finite screen and counted in Result.RejectedUpdates).
	faultNaN
	// faultLabelFlip trains on deterministically permuted labels — a
	// data-level fault: the upload itself is a genuine (bad) model.
	faultLabelFlip
	// faultCrash trains, pays FLOPs and wire time, but the upload is
	// garbage (non-finite) — a device that died mid-serialization.
	faultCrash
)

// faultClassLimit bounds snapshot validation of serialized classes.
const faultClassLimit = faultCrash

// FaultModel describes the adversarial composition of a fleet: a
// Byzantine fraction with one behaviour mode, plus an independent
// crash-faulty fraction. Parsed from the CLI grammar by ParseFaults and
// wired as RunSpec.Faults.
type FaultModel struct {
	// ByzFraction is the expected fraction of clients assigned Mode.
	ByzFraction float64
	// Mode is the Byzantine behaviour: signflip | scale | noise | nan |
	// labelflip.
	Mode string
	// Arg parameterizes the mode: the magnification K for scale, the
	// noise standard deviation SIGMA for noise; unused otherwise.
	Arg float64
	// CrashFraction is the expected fraction of clients that are
	// crash-faulty (independent of the Byzantine assignment; a client
	// gets at most one fault).
	CrashFraction float64
}

// Validate checks fractions and the mode grammar.
func (m *FaultModel) Validate() error {
	if m.ByzFraction < 0 || m.ByzFraction > 1 {
		return fmt.Errorf("core: byzantine fraction %g outside [0,1]", m.ByzFraction)
	}
	if m.CrashFraction < 0 || m.CrashFraction > 1 {
		return fmt.Errorf("core: crash fraction %g outside [0,1]", m.CrashFraction)
	}
	if m.ByzFraction+m.CrashFraction > 1 {
		return fmt.Errorf("core: fault fractions %g+%g exceed 1", m.ByzFraction, m.CrashFraction)
	}
	switch m.Mode {
	case "signflip", "nan", "labelflip":
		if m.Arg != 0 {
			return fmt.Errorf("core: fault mode %q takes no argument", m.Mode)
		}
	case "scale":
		if m.Arg <= 0 || math.IsInf(m.Arg, 0) || math.IsNaN(m.Arg) {
			return fmt.Errorf("core: scale fault factor %g must be positive and finite", m.Arg)
		}
	case "noise":
		if m.Arg <= 0 || math.IsInf(m.Arg, 0) || math.IsNaN(m.Arg) {
			return fmt.Errorf("core: noise fault sigma %g must be positive and finite", m.Arg)
		}
	case "":
		if m.ByzFraction > 0 {
			return fmt.Errorf("core: byzantine fraction %g needs a mode (signflip|scale:K|noise:SIGMA|nan|labelflip)", m.ByzFraction)
		}
	default:
		return fmt.Errorf("core: unknown fault mode %q (signflip|scale:K|noise:SIGMA|nan|labelflip)", m.Mode)
	}
	return nil
}

// byzClass maps the validated mode to its fault class.
func (m *FaultModel) byzClass() faultClass {
	switch m.Mode {
	case "signflip":
		return faultSignFlip
	case "scale":
		return faultScale
	case "noise":
		return faultNoise
	case "nan":
		return faultNaN
	case "labelflip":
		return faultLabelFlip
	}
	return faultNone
}

// String renders the model in ParseFaults's grammar (the canonical form
// the snapshot fingerprint embeds).
func (m *FaultModel) String() string {
	var b strings.Builder
	if m.Mode != "" {
		fmt.Fprintf(&b, "byz:%g,%s", m.ByzFraction, m.Mode)
		if m.Mode == "scale" || m.Mode == "noise" {
			fmt.Fprintf(&b, ":%g", m.Arg)
		}
	}
	if m.CrashFraction > 0 {
		if b.Len() > 0 {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "crash:%g", m.CrashFraction)
	}
	if b.Len() == 0 {
		return "none"
	}
	return b.String()
}

// ParseFaults parses a CLI fault-model spec:
//
//	byz:FRAC,MODE        fraction FRAC of clients is Byzantine with MODE:
//	                     signflip | scale:K | noise:SIGMA | nan | labelflip
//	crash:FRAC           fraction FRAC crash-faulty (garbage uploads)
//
// Segments compose with "+" (e.g. "byz:0.2,signflip+crash:0.05"); "" and
// "none" mean no faults (nil model).
func ParseFaults(spec string) (*FaultModel, error) {
	if spec == "" || spec == "none" {
		return nil, nil
	}
	m := &FaultModel{}
	sawByz, sawCrash := false, false
	for _, seg := range strings.Split(spec, "+") {
		name, rest, _ := strings.Cut(strings.TrimSpace(seg), ":")
		switch name {
		case "byz":
			if sawByz {
				return nil, fmt.Errorf("core: fault spec %q repeats byz", spec)
			}
			sawByz = true
			fracStr, modeSpec, ok := strings.Cut(rest, ",")
			if !ok {
				return nil, fmt.Errorf("core: fault spec %q: byz wants FRAC,MODE", spec)
			}
			frac, err := strconv.ParseFloat(strings.TrimSpace(fracStr), 64)
			if err != nil {
				return nil, fmt.Errorf("core: fault spec %q: %v", spec, err)
			}
			m.ByzFraction = frac
			mode, argStr, hasArg := strings.Cut(strings.TrimSpace(modeSpec), ":")
			m.Mode = mode
			if hasArg {
				arg, err := strconv.ParseFloat(strings.TrimSpace(argStr), 64)
				if err != nil {
					return nil, fmt.Errorf("core: fault spec %q: %v", spec, err)
				}
				m.Arg = arg
			}
		case "crash":
			if sawCrash {
				return nil, fmt.Errorf("core: fault spec %q repeats crash", spec)
			}
			sawCrash = true
			frac, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				return nil, fmt.Errorf("core: fault spec %q: %v", spec, err)
			}
			m.CrashFraction = frac
		default:
			return nil, fmt.Errorf("core: unknown fault segment %q (byz:FRAC,MODE|crash:FRAC)", name)
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// clientFaultClass derives client id's fault class statelessly from the
// id-th instance of the adversary stream: one uniform draw, a pure
// function of (id, model, seed). Keying the stream to the client (the
// same discipline as deviceSpeed and clientNetProfile) means the
// assignment needs no sequential pass and can be re-derived — never
// serialized as the source of truth — on resume.
func clientFaultClass(id int, m *FaultModel, byz faultClass, seed int64, scratch *prng.Rand) faultClass {
	scratch.Reseed(streamSeed(seed, streamAdversary, id))
	u := scratch.Float64()
	switch {
	case u < m.ByzFraction:
		return byz
	case u < m.ByzFraction+m.CrashFraction:
		return faultCrash
	}
	return faultNone
}

// sampleFaults materializes the per-ID rule for a whole fleet.
func sampleFaults(n int, m *FaultModel, seed int64) []faultClass {
	var scratch prng.Rand
	faults := make([]faultClass, n)
	byz := m.byzClass()
	for id := 0; id < n; id++ {
		faults[id] = clientFaultClass(id, m, byz, seed, &scratch)
	}
	return faults
}

// installFaults samples the fleet's fault assignment and materializes the
// per-client adversary state: noise clients get their private RNG stream
// (position serialized through snapshots), label-flipping clients get
// their fixed label rotation. The class array itself stays materialized —
// one byte per client — because applyFault indexes it from concurrent
// shard workers, where a shared scratch RNG would race; the RNG-pointer
// array is only allocated for the noise mode. Called once at run
// construction; a nil model leaves the server entirely honest (and the
// adversary stream untouched).
func (s *Server) installFaults(fm *FaultModel) {
	if fm == nil {
		return
	}
	s.faultModel = fm
	s.faults = sampleFaults(len(s.clients), fm, s.cfg.Seed)
	if fm.byzClass() == faultNoise {
		s.advRng = make([]*prng.Rand, len(s.clients))
	}
	classes := s.cfg.Model.Classes
	for id, f := range s.faults {
		switch f {
		case faultNoise:
			s.advRng[id] = seedStreamN(s.cfg.Seed, streamAdvNoise, id)
		case faultLabelFlip:
			// A fixed per-client label rotation: every label moves (the
			// offset is never 0 mod classes), clients disagree on where,
			// and no RNG is consumed.
			s.clients[id].labelFlip = 1 + id%(classes-1)
		}
	}
}

// applyFault corrupts a Byzantine client's finished upload in place,
// after training (FLOPs metered) and before the transport encodes it
// (wire bytes and transfer time price the corrupted vector). Runs on
// shard worker goroutines: it touches only the update buffer and the
// client's private adversary stream, both confined to the one goroutine
// training this client.
//
//fedtripvet:hotpath
func (s *Server) applyFault(c *Client, u *Update) {
	if s.faults == nil {
		return
	}
	switch s.faults[c.ID] {
	case faultSignFlip:
		tensor.Scale(-1, u.Params)
	case faultScale:
		tensor.Scale(s.faultModel.Arg, u.Params)
	case faultNoise:
		sigma := s.faultModel.Arg
		rng := s.advRng[c.ID]
		for i := range u.Params {
			u.Params[i] += sigma * rng.NormFloat64()
		}
	case faultNaN:
		nan := math.NaN()
		for i := range u.Params {
			u.Params[i] = nan
		}
	case faultCrash:
		// Garbage with a recognizable shape: alternating infinities. The
		// server's finite screen rejects it; full length keeps the buffer
		// pool and snapshot layout regular.
		inf := math.Inf(1)
		for i := range u.Params {
			if i&1 == 0 {
				u.Params[i] = inf
			} else {
				u.Params[i] = -inf
			}
		}
	}
}

// rotateLabels applies a label-flipping client's fixed permutation to a
// freshly filled batch: label y becomes (y+off) mod classes.
//
//fedtripvet:hotpath
func rotateLabels(y []int, off, classes int) {
	for i, v := range y {
		y[i] = (v + off) % classes
	}
}

// --- robust aggregation policies ---

// MedianPolicy aggregates the buffer with the coordinate-wise median
// (the classic Byzantine-robust estimator: up to half the buffer can lie
// without moving any coordinate past the honest values). Weights are
// used only for admission — a zero-weighted update (rejected non-finite,
// hard staleness cutoff) is excluded; admitted updates count equally.
type MedianPolicy struct {
	// K is the buffered-mode merge threshold (0 = RunSpec.BufferSize).
	K int
}

func (p *MedianPolicy) Name() string                    { return "median" }
func (p *MedianPolicy) ReadyToMerge(buffered int) bool  { return buffered >= p.K }
func (p *MedianPolicy) Weight(u Update) float64         { return float64(u.NumSamples) }
func (p *MedianPolicy) MergeRate(int, []Update) float64 { return 1 }
func (p *MedianPolicy) defaultBuffer(k int) {
	if p.K <= 0 {
		p.K = k
	}
}

// TrimmedMeanPolicy aggregates with the coordinate-wise trimmed mean:
// per coordinate, drop the floor(Frac*k) largest and smallest admitted
// values and average the rest. Frac in [0, 0.5); a trim that would empty
// the window degrades to the median.
type TrimmedMeanPolicy struct {
	// K is the buffered-mode merge threshold (0 = RunSpec.BufferSize).
	K int
	// Frac is the fraction trimmed from each tail.
	Frac float64
}

func (p *TrimmedMeanPolicy) Name() string                    { return "trimmedmean" }
func (p *TrimmedMeanPolicy) ReadyToMerge(buffered int) bool  { return buffered >= p.K }
func (p *TrimmedMeanPolicy) Weight(u Update) float64         { return float64(u.NumSamples) }
func (p *TrimmedMeanPolicy) MergeRate(int, []Update) float64 { return 1 }
func (p *TrimmedMeanPolicy) defaultBuffer(k int) {
	if p.K <= 0 {
		p.K = k
	}
}

// KrumPolicy is a multi-Krum-style norm-filter selector: score each
// admitted update by the summed squared distances to its closest peers,
// keep the k - f lowest-scoring (f = floor(Frac*k) suspected Byzantine),
// and average them. Outliers — far from every honest cluster — score
// worst and are filtered entirely, which also defends against attacks
// (large-sigma noise) that coordinate-wise statistics only dampen.
type KrumPolicy struct {
	// K is the buffered-mode merge threshold (0 = RunSpec.BufferSize).
	K int
	// Frac is the assumed Byzantine fraction f/k.
	Frac float64
}

func (p *KrumPolicy) Name() string                    { return "krum" }
func (p *KrumPolicy) ReadyToMerge(buffered int) bool  { return buffered >= p.K }
func (p *KrumPolicy) Weight(u Update) float64         { return float64(u.NumSamples) }
func (p *KrumPolicy) MergeRate(int, []Update) float64 { return 1 }
func (p *KrumPolicy) defaultBuffer(k int) {
	if p.K <= 0 {
		p.K = k
	}
}

// NormClipPolicy decorates any policy with a norm-clip guard: an update
// whose parameter distance from the current global model exceeds MaxNorm
// is rescaled onto that ball before the merge (scale attacks collapse to
// bounded steps; honest updates inside the ball are untouched). It
// composes like the other decorators — "fedbuff+clip:5" parses, and
// clonedForRun/resolvePolicy fill a nil inner policy with the runtime
// default.
type NormClipPolicy struct {
	// AggregationPolicy is the decorated policy (nil = the runtime's
	// default policy at Validate time).
	AggregationPolicy
	// MaxNorm is the largest admissible L2 distance from the global model.
	MaxNorm float64
}

// WithNormClip wraps a policy (nil = the runtime's default policy) with
// a norm-clip guard.
func WithNormClip(p AggregationPolicy, maxNorm float64) AggregationPolicy {
	return &NormClipPolicy{AggregationPolicy: p, MaxNorm: maxNorm}
}

func (p *NormClipPolicy) Name() string {
	if p.AggregationPolicy == nil {
		return "+clip"
	}
	return p.AggregationPolicy.Name() + "+clip"
}

func (p *NormClipPolicy) defaultBuffer(k int) {
	if bs, ok := p.AggregationPolicy.(bufferSizer); ok {
		bs.defaultBuffer(k)
	}
}

func (p *NormClipPolicy) defaultDiscount(d func(int) float64, force bool) {
	if dc, ok := p.AggregationPolicy.(discounter); ok {
		dc.defaultDiscount(d, force)
	}
}

// installPolicy records the run's aggregation policy and resolves the
// decorator chain's merge-path capabilities: the outermost norm-clip
// guard and the innermost robust aggregator, both consulted by
// aggregateWeightedRate on every merge.
func (s *Server) installPolicy(p AggregationPolicy) {
	s.policy = p
	s.clip, s.robust = nil, nil
	q := p
	for q != nil {
		switch d := q.(type) {
		case *NormClipPolicy:
			if s.clip == nil {
				s.clip = d
			}
			q = d.AggregationPolicy
		case *MaxStalenessPolicy:
			q = d.AggregationPolicy
		case *ScheduledLR:
			q = d.AggregationPolicy
		case *MedianPolicy, *TrimmedMeanPolicy, *KrumPolicy:
			s.robust = q
			q = nil
		default:
			q = nil
		}
	}
}

// screenUpdates is the merge path's graceful-degradation guard, run on
// every aggregation before any weight is consumed. Non-finite uploads
// (divergence, nan/crash faults, a transport that garbled in transit)
// are zero-weighted out and counted — the global model never sees them —
// and the norm-clip guard, when configured, then rescales surviving
// updates onto the admissible ball around the current global model.
func (s *Server) screenUpdates(weights []float64, updates []Update) {
	for i := range updates {
		if tensor.AllFinite(updates[i].Params) {
			continue
		}
		weights[i] = 0
		s.rejectedUpdates++
		if !s.rejectLogged {
			s.rejectLogged = true
			if s.cfg.Logf != nil {
				s.cfg.Logf("core: rejected non-finite update from client %d (counted in RejectedUpdates; further rejections are silent)", updates[i].ClientID)
			}
		}
	}
	if s.clip == nil {
		return
	}
	maxNorm := s.clip.MaxNorm
	for i := range updates {
		u := &updates[i]
		if weights[i] <= 0 || len(u.Params) != len(s.global) {
			continue
		}
		var sq float64
		for j, v := range u.Params {
			d := v - s.global[j]
			sq += d * d
		}
		if n := math.Sqrt(sq); n > maxNorm {
			scale := maxNorm / n
			for j := range u.Params {
				u.Params[j] = s.global[j] + scale*(u.Params[j]-s.global[j])
			}
		}
	}
}

// mergeRobust replaces the weighted average with the configured robust
// aggregate of the positively weighted updates, then applies the merge
// rate like the standard path. vecs aliases the updates' parameter
// vectors (aggVecs scratch); weights have been screened but not
// normalized.
//
//fedtripvet:hotpath
func (s *Server) mergeRobust(weights []float64, vecs [][]float64, eta float64) {
	if cap(s.robVecs) < len(vecs) {
		s.robVecs = make([][]float64, 0, len(vecs))
	}
	adm := s.robVecs[:0]
	for i, v := range vecs {
		if weights[i] > 0 {
			adm = append(adm, v) //fedtripvet:allow robVecs scratch, capacity grown above
		}
	}
	s.robVecs = adm
	if len(adm) == 0 {
		return
	}
	avg := s.mergeBuf()
	k := len(adm)
	switch p := s.robust.(type) {
	case *MedianPolicy:
		s.coordWindowInto(avg, adm, (k-1)/2, k/2)
	case *TrimmedMeanPolicy:
		g := int(p.Frac * float64(k))
		if 2*g >= k {
			g = (k - 1) / 2
		}
		s.coordWindowInto(avg, adm, g, k-1-g)
	case *KrumPolicy:
		s.krumInto(avg, adm, p.Frac)
	}
	if eta == 1 {
		copy(s.global, avg)
		return
	}
	for i := range s.global {
		s.global[i] += eta * (avg[i] - s.global[i])
	}
}

// coordWindowInto writes the coordinate-wise mean of the sorted window
// [lo, hi] into dst: the median for the maximal trim, the trimmed mean
// otherwise. Column gather + in-place heapsort over the robCol scratch —
// no per-merge allocation, O(|w| * k log k).
//
//fedtripvet:hotpath
func (s *Server) coordWindowInto(dst []float64, vecs [][]float64, lo, hi int) {
	k := len(vecs)
	if cap(s.robCol) < k {
		s.robCol = make([]float64, k)
	}
	col := s.robCol[:k]
	inv := 1 / float64(hi-lo+1)
	for j := range dst {
		for i, v := range vecs {
			col[i] = v[j]
		}
		heapSortFloats(col)
		var sum float64
		for i := lo; i <= hi; i++ {
			sum += col[i]
		}
		dst[j] = sum * inv
	}
}

// heapSortFloats sorts in place without allocating: the column buffers
// are small (one element per buffered update) and the O(k log k) worst
// case holds for any input, unlike quicksort's.
//
//fedtripvet:hotpath
func heapSortFloats(a []float64) {
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownFloats(a, i, n)
	}
	for i := n - 1; i > 0; i-- {
		a[0], a[i] = a[i], a[0]
		siftDownFloats(a, 0, i)
	}
}

//fedtripvet:hotpath
func siftDownFloats(a []float64, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && a[child+1] > a[child] {
			child++
		}
		if a[root] >= a[child] {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}

// krumInto writes the multi-Krum aggregate into dst: pairwise squared
// distances, each update scored by the sum of its k-f-2 closest, the
// k-f best-scoring averaged (ties broken by buffer index, so the
// selection is deterministic). O(k^2 |w|) distances dominate; all
// scratch is server-owned.
//
//fedtripvet:hotpath
func (s *Server) krumInto(dst []float64, vecs [][]float64, frac float64) {
	k := len(vecs)
	f := int(frac * float64(k))
	if f > k-1 {
		f = k - 1
	}
	keep := k - f
	closest := k - f - 2
	if closest < 1 {
		closest = 1
	}
	if closest > k-1 {
		closest = k - 1
	}
	if cap(s.robDist) < k*k {
		s.robDist = make([]float64, k*k)
	}
	dist := s.robDist[:k*k]
	for i := 0; i < k; i++ {
		dist[i*k+i] = 0
		vi := vecs[i]
		for j := i + 1; j < k; j++ {
			vj := vecs[j]
			var sq float64
			for x := range vi {
				d := vi[x] - vj[x]
				sq += d * d
			}
			dist[i*k+j] = sq
			dist[j*k+i] = sq
		}
	}
	if cap(s.robCol) < k {
		s.robCol = make([]float64, k)
	}
	if cap(s.robScore) < k {
		s.robScore = make([]float64, k)
	}
	col := s.robCol[:k]
	score := s.robScore[:k]
	for i := 0; i < k; i++ {
		m := 0
		for j := 0; j < k; j++ {
			if j == i {
				continue
			}
			col[m] = dist[i*k+j]
			m++
		}
		heapSortFloats(col[:m])
		var sum float64
		for j := 0; j < closest && j < m; j++ {
			sum += col[j]
		}
		score[i] = sum
	}
	// Equal-weight average of the keep best-scoring updates, selected by
	// repeated minimum scan (scores are poisoned as they are taken; index
	// order breaks ties).
	for i := range dst {
		dst[i] = 0
	}
	inv := 1 / float64(keep)
	for sel := 0; sel < keep; sel++ {
		best := -1
		for i := 0; i < k; i++ {
			if score[i] >= 0 && (best < 0 || score[i] < score[best]) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		score[best] = -1
		v := vecs[best]
		for i := range dst {
			dst[i] += inv * v[i]
		}
	}
}

// mergeBuf returns the |w|-sized merge scratch (shared with the rated
// weighted-average path; merges are single-threaded in every runtime).
func (s *Server) mergeBuf() []float64 {
	if len(s.mergeScratch) != len(s.global) {
		s.mergeScratch = make([]float64, len(s.global))
	}
	return s.mergeScratch
}
